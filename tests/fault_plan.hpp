// fault_plan.hpp - deterministic fault-injection plans for daemon trees.
//
// A FaultPlan is a scripted set of (time, rank) kill events armed against a
// wired fabric's pid list. Because the simulator is single-threaded and
// seeded, an armed plan produces the *same* interleaving of failure vs.
// in-flight collective traffic on every run - the self-heal tests and the
// availability bench both script their failures here instead of hand-timing
// run_until()/exit() pairs.
//
// Builders cover the shapes the PR cares about:
//   * single(t, r)            - one interior/leaf/root-child death
//   * correlated(t, {r...})   - simultaneous deaths (a rack power loss)
//   * subtree(t, topo, r)     - correlated death of r and every descendant
//                               (the "whole-rack" case when placement is
//                               contiguous, which all three fabrics give)
//   * cascading(t, gap, {r...}) - staggered deaths, each `gap` apart (a
//                               failing switch taking neighbors down one by
//                               one; exercises re-reparenting of ranks that
//                               already healed once)
//
// Plans compose: `plan.then(other)` concatenates event lists.
#pragma once

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "cluster/machine.hpp"
#include "cluster/process.hpp"
#include "comm/topology.hpp"
#include "simkernel/simulator.hpp"

namespace lmon::testing {

struct FaultEvent {
  sim::Time when = 0;       ///< absolute simulation time of the kill
  std::uint32_t rank = 0;   ///< fabric rank to kill
};

class FaultPlan {
 public:
  FaultPlan() = default;

  static FaultPlan single(sim::Time when, std::uint32_t rank) {
    FaultPlan p;
    p.events_.push_back({when, rank});
    return p;
  }

  /// Simultaneous deaths - one rack losing power. Every rank dies in the
  /// same scheduled event, so no victim observes another victim's close.
  static FaultPlan correlated(sim::Time when,
                              std::vector<std::uint32_t> ranks) {
    FaultPlan p;
    for (const std::uint32_t r : ranks) p.events_.push_back({when, r});
    return p;
  }

  /// Correlated loss of `root_rank` and its whole subtree in `topo`.
  static FaultPlan subtree(sim::Time when, const comm::Topology& topo,
                           std::uint32_t root_rank) {
    return correlated(when, topo.subtree_of(root_rank));
  }

  /// Staggered deaths: ranks[i] dies at start + i * gap. With gap larger
  /// than the heal time this exercises repeated re-reparenting; with gap
  /// smaller it exercises climbs past still-dying ancestors.
  static FaultPlan cascading(sim::Time start, sim::Time gap,
                             std::vector<std::uint32_t> ranks) {
    FaultPlan p;
    sim::Time t = start;
    for (const std::uint32_t r : ranks) {
      p.events_.push_back({t, r});
      t += gap;
    }
    return p;
  }

  /// Concatenates another plan's events (ordering is by time at arm()).
  FaultPlan& then(const FaultPlan& other) {
    events_.insert(events_.end(), other.events_.begin(),
                   other.events_.end());
    return *this;
  }

  /// Schedules every kill against `machine`. `pids[r]` must be rank r's
  /// process (wire_fabric order). Kills are SIGKILL-style: the process
  /// exits inside the scheduled event, its channels close, and any events
  /// it had posted die with it. A rank already gone at fire time (killed
  /// twice, or exited on its own) is skipped silently, so plans may
  /// overlap. Times are absolute; arm() before running past them.
  void arm(cluster::Machine& machine,
           const std::vector<cluster::Pid>& pids) const {
    for (const FaultEvent& ev : events_) {
      const cluster::Pid pid = pids.at(ev.rank);
      machine.sim().schedule_at(ev.when, [&machine, pid] {
        if (cluster::Process* proc = machine.find_process(pid)) {
          proc->exit(9);
        }
      });
    }
  }

  /// Ranks this plan kills (for survivor-side assertions).
  [[nodiscard]] std::set<std::uint32_t> dead_ranks() const {
    std::set<std::uint32_t> out;
    for (const FaultEvent& ev : events_) out.insert(ev.rank);
    return out;
  }

  /// Time of the last kill (recovery clocks start here).
  [[nodiscard]] sim::Time last_kill() const {
    sim::Time t = 0;
    for (const FaultEvent& ev : events_) t = std::max(t, ev.when);
    return t;
  }

  [[nodiscard]] const std::vector<FaultEvent>& events() const {
    return events_;
  }
  [[nodiscard]] bool empty() const { return events_.empty(); }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace lmon::testing
