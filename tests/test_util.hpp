// test_util.hpp - shared fixtures for integration tests and benches.
#pragma once

#include <memory>

#include "apps/mpi_app.hpp"
#include "apps/test_programs.hpp"
#include "cluster/machine.hpp"
#include "rm/resource_manager.hpp"
#include "rsh/launchers.hpp"
#include "rsh/rshd.hpp"
#include "simkernel/simulator.hpp"

namespace lmon::testing {

/// A booted simulated cluster: RM installed, rshd everywhere, standard
/// program images registered. Construct, then drive `sim`.
struct TestCluster {
  explicit TestCluster(int compute_nodes, int middleware_nodes = 0,
                       cluster::CostModel costs = {},
                       std::uint64_t seed = 42)
      : simulator(seed),
        machine(simulator, cluster::MachineConfig{compute_nodes,
                                                  middleware_nodes, "atlas",
                                                  costs}) {
    auto st = rm::install(machine);
    if (!st.is_ok()) throw std::runtime_error("rm install: " + st.to_string());
    if (costs.has_remote_access) {
      st = rsh::install(machine);
      if (!st.is_ok()) {
        throw std::runtime_error("rshd install: " + st.to_string());
      }
      rsh::install_tree_agent(machine);
    }
    apps::MpiApp::install(machine);
    apps::SleeperDaemon::install(machine);
    apps::HelloBeDaemon::install(machine);
    // Let the RM/rshd daemons finish booting before tests launch work.
    simulator.run(sim::ms(50));
  }

  /// Spawns a scripted tool front end on the FE node.
  cluster::Pid spawn_fe(apps::ScriptedFrontEnd::Script script,
                        double image_mb = 6.0) {
    cluster::SpawnOptions opts;
    opts.executable = "tool_fe";
    opts.image_mb = image_mb;
    auto res = machine.front_end().spawn(
        std::make_unique<apps::ScriptedFrontEnd>(std::move(script)),
        std::move(opts));
    if (!res.is_ok()) {
      throw std::runtime_error("spawn_fe: " + res.status.to_string());
    }
    return res.value;
  }

  /// Runs the simulation until `pred` holds or `timeout` elapses. Returns
  /// true when the predicate fired.
  template <typename Pred>
  bool run_until(Pred pred, sim::Time timeout = sim::seconds(300)) {
    const sim::Time deadline = simulator.now() + timeout;
    while (simulator.now() <= deadline) {
      if (pred()) return true;
      if (!simulator.step()) return pred();
    }
    return pred();
  }

  sim::Simulator simulator;
  cluster::Machine machine;
};

}  // namespace lmon::testing
