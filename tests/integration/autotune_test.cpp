// Integration tests for self-tuning sessions: the engine's auto-tuner
// (core::auto_tune driven from SpawnConfig via --launch-strategy=auto /
// --fabric-topo=auto / --rndv=...) resolving real sessions end to end, the
// TunedConfig decision record riding back to the FE, and the rendezvous
// setting spellings steering the live fabric.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>

#include "cluster/cost_model_registry.hpp"
#include "core/fe_api.hpp"
#include "core/perf_model.hpp"
#include "obs/metrics.hpp"
#include "tests/test_util.hpp"

namespace lmon {
namespace {

using testing::TestCluster;

struct SessionResult {
  bool done = false;
  Status status;
  core::TunedConfig tuned;
  bool have_tuned = false;
};

/// Launches one session under `cfg` and copies the FE-side decision record
/// into `out` when the operation completes.
void run_session(TestCluster& tc, core::FrontEnd::SpawnConfig cfg, int nnodes,
                 int tpn, SessionResult* out,
                 std::shared_ptr<core::FrontEnd>* fe_keep) {
  tc.spawn_fe([out, fe_keep, cfg = std::move(cfg), nnodes,
               tpn](cluster::Process& self) mutable {
    auto fe = std::make_shared<core::FrontEnd>(self);
    *fe_keep = fe;
    ASSERT_TRUE(fe->init().is_ok());
    auto sid = fe->create_session();
    ASSERT_TRUE(sid.is_ok());
    cfg.daemon_exe = "hello_be";
    rm::JobSpec job{nnodes, tpn, "mpi_app", {}};
    fe->launch_and_spawn(sid.value, job, std::move(cfg),
                         [out, fe, sid = sid.value](Status st) {
                           out->done = true;
                           out->status = st;
                           if (const core::TunedConfig* t =
                                   fe->tuned_config(sid)) {
                             out->tuned = *t;
                             out->have_tuned = true;
                           }
                         });
  });
}

TEST(AutoTune, DefaultSessionIsTunedAndRecordsTheDecision) {
  TestCluster tc(8);
  SessionResult r;
  std::shared_ptr<core::FrontEnd> fe;
  run_session(tc, {}, 8, 2, &r, &fe);
  ASSERT_TRUE(tc.run_until([&] { return r.done; }));
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();

  // Every knob was unset, so every decision is the model's, and the record
  // rode back on DaemonsSpawned.
  ASSERT_TRUE(r.have_tuned);
  EXPECT_TRUE(r.tuned.strategy_from_model);
  EXPECT_TRUE(r.tuned.topology_from_model);
  EXPECT_TRUE(r.tuned.rndv_from_model);
  EXPECT_GT(r.tuned.predicted_total_s, 0.0);
  EXPECT_NE(r.tuned.rndv_threshold, 0u);
  const cluster::CostModel costs;
  const core::PerfModel model(
      costs, static_cast<std::uint32_t>(costs.rm_launch_fanout));
  EXPECT_FALSE(model.predicts_failure(r.tuned.strategy, 8));
}

TEST(AutoTune, FiveTwelveNodeAutoSessionNeverPicksSerialRsh) {
  // The paper's point at scale: past the fork limit serial-rsh cannot even
  // complete, and well before that it is never the cheapest. An auto-tuned
  // 512-node session must not come anywhere near it.
  TestCluster tc(512);
  SessionResult r;
  std::shared_ptr<core::FrontEnd> fe;
  run_session(tc, {}, 512, 1, &r, &fe);
  ASSERT_TRUE(tc.run_until([&] { return r.done; }, sim::seconds(600)));
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  ASSERT_TRUE(r.have_tuned);
  EXPECT_NE(r.tuned.strategy, comm::LaunchStrategyKind::SerialRsh);
  const cluster::CostModel costs;
  const core::PerfModel model(
      costs, static_cast<std::uint32_t>(costs.rm_launch_fanout));
  EXPECT_FALSE(model.predicts_failure(r.tuned.strategy, 512));
}

TEST(AutoTune, ExplicitKnobsWinOverTheModel) {
  TestCluster tc(8);
  SessionResult r;
  std::shared_ptr<core::FrontEnd> fe;
  core::FrontEnd::SpawnConfig cfg;
  cfg.launch_strategy = comm::LaunchStrategyKind::TreeRsh;
  cfg.topology = comm::TopologySpec{comm::TopologyKind::KAry, 2};
  cfg.rndv = {core::RndvSetting::Mode::Bytes, 7777};
  run_session(tc, cfg, 8, 2, &r, &fe);
  ASSERT_TRUE(tc.run_until([&] { return r.done; }));
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  ASSERT_TRUE(r.have_tuned);
  EXPECT_EQ(r.tuned.strategy, comm::LaunchStrategyKind::TreeRsh);
  EXPECT_EQ(r.tuned.topology,
            (comm::TopologySpec{comm::TopologyKind::KAry, 2}));
  EXPECT_EQ(r.tuned.rndv_threshold, 7777u);
  EXPECT_FALSE(r.tuned.strategy_from_model);
  EXPECT_FALSE(r.tuned.topology_from_model);
  EXPECT_FALSE(r.tuned.rndv_from_model);
}

TEST(AutoTune, RndvSpellingsPinTheSessionThreshold) {
  struct Case {
    core::RndvSetting setting;
    std::uint32_t expect;
  };
  const cluster::CostModel costs;
  const Case cases[] = {
      {{core::RndvSetting::Mode::AlwaysEager, 0},
       std::numeric_limits<std::uint32_t>::max()},
      {{core::RndvSetting::Mode::AlwaysRndv, 0}, 1},
      {{core::RndvSetting::Mode::Bytes, 4096}, 4096},
      {{core::RndvSetting::Mode::PlatformDefault, 0},
       costs.iccl_rndv_threshold_bytes},
  };
  for (const Case& c : cases) {
    TestCluster tc(4);
    SessionResult r;
    std::shared_ptr<core::FrontEnd> fe;
    core::FrontEnd::SpawnConfig cfg;
    cfg.rndv = c.setting;
    run_session(tc, cfg, 4, 1, &r, &fe);
    ASSERT_TRUE(tc.run_until([&] { return r.done; }))
        << c.setting.to_string();
    ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
    ASSERT_TRUE(r.have_tuned) << c.setting.to_string();
    EXPECT_EQ(r.tuned.rndv_threshold, c.expect) << c.setting.to_string();
    EXPECT_FALSE(r.tuned.rndv_from_model) << c.setting.to_string();
  }
}

TEST(AutoTune, LegacyThresholdBytesStillWins) {
  // The pre-RndvSetting spelling (nonzero rndv_threshold_bytes) keeps its
  // meaning and takes precedence over the new setting.
  TestCluster tc(4);
  SessionResult r;
  std::shared_ptr<core::FrontEnd> fe;
  core::FrontEnd::SpawnConfig cfg;
  cfg.rndv_threshold_bytes = 2048;
  cfg.rndv = {core::RndvSetting::Mode::AlwaysEager, 0};
  run_session(tc, cfg, 4, 1, &r, &fe);
  ASSERT_TRUE(tc.run_until([&] { return r.done; }));
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  ASSERT_TRUE(r.have_tuned);
  EXPECT_EQ(r.tuned.rndv_threshold, 2048u);
}

TEST(AutoTune, PlatformProfileSteersTheTunerAndIsRecorded) {
  // A bluegene-profile session on a matching machine: every rsh flavor
  // predicts failure, so the tuner must land on rm-bulk, and the profile
  // name rides back in the decision record.
  TestCluster tc(8, 0, cluster::CostModel::bluegene_like());
  SessionResult r;
  std::shared_ptr<core::FrontEnd> fe;
  core::FrontEnd::SpawnConfig cfg;
  cfg.platform_profile = "bluegene";
  run_session(tc, cfg, 8, 1, &r, &fe);
  ASSERT_TRUE(tc.run_until([&] { return r.done; }));
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  ASSERT_TRUE(r.have_tuned);
  EXPECT_EQ(r.tuned.platform, "bluegene");
  EXPECT_EQ(r.tuned.strategy, comm::LaunchStrategyKind::RmBulk);
}

TEST(AutoTune, UnknownPlatformProfileFailsTheSessionCleanly) {
  TestCluster tc(4);
  SessionResult r;
  std::shared_ptr<core::FrontEnd> fe;
  core::FrontEnd::SpawnConfig cfg;
  cfg.platform_profile = "asci-q";
  run_session(tc, cfg, 4, 1, &r, &fe);
  ASSERT_TRUE(tc.run_until([&] { return r.done; }));
  EXPECT_FALSE(r.status.is_ok());
  EXPECT_FALSE(r.have_tuned);
}

TEST(AutoTune, TunerEmitsMetricsGauges) {
  TestCluster tc(8);
  obs::Metrics metrics;
  tc.machine.set_metrics(&metrics);
  SessionResult r;
  std::shared_ptr<core::FrontEnd> fe;
  run_session(tc, {}, 8, 2, &r, &fe);
  ASSERT_TRUE(tc.run_until([&] { return r.done; }));
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  tc.machine.set_metrics(nullptr);
  EXPECT_GT(metrics.gauge("autotune.predicted_total_s"), 0.0);
  EXPECT_GT(metrics.gauge("autotune.rndv_threshold_bytes"), 0.0);
  EXPECT_GT(metrics.gauge("autotune.fabric_arity"), 0.0);
}

}  // namespace
}  // namespace lmon
