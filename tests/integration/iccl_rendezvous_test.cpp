// Integration tests for the ICCL eager/rendezvous protocol switch, driven
// through a raw Iccl harness (no FE/RM session): one daemon per node wires
// the fabric straight from bootstrap argv, which lets the tests permute the
// rank->node placement, tap the wire-frame sequence, and kill daemons
// mid-collective deterministically.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <vector>

#include "comm/bootstrap.hpp"
#include "core/be_api.hpp"
#include "core/fe_api.hpp"
#include "core/iccl.hpp"
#include "tests/flight_check.hpp"
#include "tests/test_util.hpp"

namespace lmon::core {
namespace {

using testing::TestCluster;

struct FrameEvent {
  std::uint32_t observer;  ///< rank that received the frame
  Iccl::Kind kind;
  std::uint32_t tag;
  std::uint32_t src;
  std::size_t bytes;
};

struct Shared {
  std::vector<FrameEvent> frames;
  std::map<std::uint32_t, Bytes> bcast_delivered;   // rank -> last payload
  /// rank -> tag -> payload (for rounds that overlap in flight).
  std::map<std::uint32_t, std::map<std::uint32_t, Bytes>> bcast_by_tag;
  std::map<std::uint32_t, Bytes> scatter_delivered; // rank -> part
  /// tag -> rank-sorted entries delivered at the root's gather handler.
  std::map<std::uint32_t, std::vector<std::pair<std::uint32_t, Bytes>>>
      gather_by_tag;
  std::map<std::uint32_t, Iccl*> iccls;             // rank -> live instance
  int ready = 0;
};

class RawIcclDaemon : public cluster::Program {
 public:
  explicit RawIcclDaemon(Shared* sh) : sh_(sh) {}
  [[nodiscard]] std::string_view name() const override { return "raw_iccl"; }

  void on_start(cluster::Process& self) override {
    auto params = Iccl::params_from_args(self.args(), self.node().hostname());
    ASSERT_TRUE(params.has_value());
    iccl_ = std::make_unique<Iccl>(self, std::move(*params));
    const std::uint32_t rank = iccl_->rank();
    iccl_->set_frame_tap([this, rank](Iccl::Kind kind, std::uint32_t tag,
                                      std::uint32_t src, std::size_t bytes) {
      sh_->frames.push_back(FrameEvent{rank, kind, tag, src, bytes});
    });
    iccl_->set_bcast_handler([this, rank](std::uint32_t tag,
                                          const Bytes& data) {
      sh_->bcast_delivered[rank] = data;
      sh_->bcast_by_tag[rank][tag] = data;
    });
    iccl_->set_scatter_handler([this, rank](std::uint32_t,
                                            const Bytes& data) {
      sh_->scatter_delivered[rank] = data;
    });
    iccl_->set_gather_handler(
        [this](std::uint32_t tag,
               std::vector<std::pair<std::uint32_t, Bytes>> entries) {
          sh_->gather_by_tag[tag] = std::move(entries);
        });
    sh_->iccls[rank] = iccl_.get();
    iccl_->start([this](Status st) {
      if (st.is_ok()) sh_->ready += 1;
    });
  }

 private:
  Shared* sh_;
  std::unique_ptr<Iccl> iccl_;
};

/// Spawns one raw daemon per rank; rank r runs on node `placement[r]`, so
/// tests can make the rank order disagree with the node order. Returns the
/// spawned pids in rank order.
std::vector<cluster::Pid> wire_fabric(TestCluster& tc, Shared& sh,
                                      const comm::TopologySpec& topo,
                                      const std::vector<int>& placement,
                                      std::uint32_t rndv_threshold) {
  comm::BootstrapSpec spec;
  spec.size = static_cast<std::uint32_t>(placement.size());
  spec.topology = topo;
  spec.port = cluster::kToolFabricBasePort;
  spec.session = "raw";
  spec.rndv_threshold = rndv_threshold;
  for (int node : placement) {
    spec.hosts.push_back(tc.machine.compute_node(node).hostname());
  }
  std::vector<cluster::Pid> pids;
  for (std::uint32_t r = 0; r < spec.size; ++r) {
    cluster::SpawnOptions opts;
    opts.executable = "raw_iccl";
    opts.args = comm::bootstrap_args(spec, r);
    auto res = tc.machine.compute_node(placement[r])
                   .spawn(std::make_unique<RawIcclDaemon>(&sh),
                          std::move(opts));
    EXPECT_TRUE(res.is_ok());
    pids.push_back(res.value);
  }
  return pids;
}

std::vector<int> identity_placement(int n) {
  std::vector<int> p(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) p[static_cast<std::size_t>(i)] = i;
  return p;
}

int count_frames(const Shared& sh, std::uint32_t observer, Iccl::Kind kind) {
  int c = 0;
  for (const auto& f : sh.frames) {
    if (f.observer == observer && f.kind == kind) ++c;
  }
  return c;
}

constexpr std::uint32_t kEagerOnly = 0xffffffffu;
constexpr std::uint32_t kRndvAlways = 1;
constexpr std::uint32_t kChunk = 64 * 1024;  // CostModel default

TEST(IcclProtocol, SmallPayloadStaysEagerOnTheWire) {
  const int n = 7;
  TestCluster tc(n);
  Shared sh;
  wire_fabric(tc, sh, {comm::TopologyKind::KAry, 2}, identity_placement(n),
              256 * 1024);
  ASSERT_TRUE(tc.run_until([&] { return sh.ready == n; }));

  sh.frames.clear();
  sh.iccls[0]->broadcast(7, Bytes(512, 0xAA));
  ASSERT_TRUE(tc.run_until(
      [&] { return static_cast<int>(sh.bcast_delivered.size()) == n; }));

  for (std::uint32_t r = 1; r < static_cast<std::uint32_t>(n); ++r) {
    EXPECT_EQ(count_frames(sh, r, Iccl::Kind::Bcast), 1) << "rank " << r;
    EXPECT_EQ(count_frames(sh, r, Iccl::Kind::RndvRts), 0) << "rank " << r;
    EXPECT_EQ(count_frames(sh, r, Iccl::Kind::RndvChunk), 0) << "rank " << r;
    EXPECT_EQ(sh.bcast_delivered[r], Bytes(512, 0xAA));
  }
  EXPECT_EQ(count_frames(sh, 0, Iccl::Kind::RndvCts), 0);
}

TEST(IcclProtocol, LargePayloadRunsRtsCtsChunkSequence) {
  const int n = 7;
  const std::size_t payload_bytes = 3 * kChunk + 1000;  // 4 chunks
  TestCluster tc(n);
  Shared sh;
  wire_fabric(tc, sh, {comm::TopologyKind::KAry, 2}, identity_placement(n),
              64 * 1024);
  ASSERT_TRUE(tc.run_until([&] { return sh.ready == n; }));

  sh.frames.clear();
  Bytes payload(payload_bytes);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i * 31);
  }
  sh.iccls[0]->broadcast(9, payload);
  ASSERT_TRUE(tc.run_until(
      [&] { return static_cast<int>(sh.bcast_delivered.size()) == n; }));

  // Every non-root rank saw exactly one RTS, then its chunks in sequence
  // order - and never a full-payload eager frame.
  for (std::uint32_t r = 1; r < static_cast<std::uint32_t>(n); ++r) {
    EXPECT_EQ(count_frames(sh, r, Iccl::Kind::Bcast), 0) << "rank " << r;
    EXPECT_EQ(count_frames(sh, r, Iccl::Kind::RndvRts), 1) << "rank " << r;
    EXPECT_EQ(count_frames(sh, r, Iccl::Kind::RndvChunk), 4) << "rank " << r;
    bool saw_rts = false;
    std::size_t chunk_bytes = 0;
    for (const auto& f : sh.frames) {
      if (f.observer != r) continue;
      if (f.kind == Iccl::Kind::RndvRts) saw_rts = true;
      if (f.kind == Iccl::Kind::RndvChunk) {
        EXPECT_TRUE(saw_rts) << "chunk before RTS at rank " << r;
        chunk_bytes += f.bytes;
      }
    }
    EXPECT_EQ(chunk_bytes, payload_bytes) << "rank " << r;
    EXPECT_EQ(sh.bcast_delivered[r], payload) << "rank " << r;
  }
  // Interior ranks collected one CTS per child before streaming; the root
  // has two children in a 7-rank binary tree.
  EXPECT_EQ(count_frames(sh, 0, Iccl::Kind::RndvCts), 2);
  // Chunk sequence numbers arrive in order at every rank.
  std::map<std::uint32_t, std::uint32_t> next_seq;
  for (const auto& f : sh.frames) {
    if (f.kind != Iccl::Kind::RndvChunk) continue;
    EXPECT_EQ(f.tag, 9u);
  }
}

class IcclProtocolTopology
    : public ::testing::TestWithParam<comm::TopologySpec> {};

TEST_P(IcclProtocolTopology, RendezvousDeliversIdenticalBytesEverywhere) {
  const int n = 12;
  TestCluster tc(n);
  Shared sh;
  wire_fabric(tc, sh, GetParam(), identity_placement(n), kRndvAlways);
  ASSERT_TRUE(tc.run_until([&] { return sh.ready == n; }));

  Bytes payload(2 * kChunk + 77);
  for (std::size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<std::uint8_t>(i ^ (i >> 7));
  }
  sh.iccls[0]->broadcast(3, payload);
  ASSERT_TRUE(tc.run_until(
      [&] { return static_cast<int>(sh.bcast_delivered.size()) == n; }));
  for (const auto& [rank, data] : sh.bcast_delivered) {
    EXPECT_EQ(data, payload) << "rank " << rank;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Fabrics, IcclProtocolTopology,
    ::testing::Values(comm::TopologySpec{comm::TopologyKind::KAry, 2},
                      comm::TopologySpec{comm::TopologyKind::KAry, 4},
                      comm::TopologySpec{comm::TopologyKind::Binomial, 0},
                      comm::TopologySpec{comm::TopologyKind::Flat, 0}),
    [](const ::testing::TestParamInfo<comm::TopologySpec>& pinfo) {
      std::string name = pinfo.param.to_string();
      for (char& c : name) {
        if (c == ':' || c == '-') c = '_';
      }
      return name;
    });

TEST(IcclProtocol, EmptyBroadcastUnderRendezvousThresholdStaysEager) {
  const int n = 5;
  TestCluster tc(n);
  Shared sh;
  wire_fabric(tc, sh, {comm::TopologyKind::KAry, 2}, identity_placement(n),
              kRndvAlways);
  ASSERT_TRUE(tc.run_until([&] { return sh.ready == n; }));

  sh.frames.clear();
  sh.iccls[0]->broadcast(1, {});
  ASSERT_TRUE(tc.run_until(
      [&] { return static_cast<int>(sh.bcast_delivered.size()) == n; }));
  for (std::uint32_t r = 1; r < static_cast<std::uint32_t>(n); ++r) {
    EXPECT_EQ(count_frames(sh, r, Iccl::Kind::Bcast), 1);
    EXPECT_EQ(count_frames(sh, r, Iccl::Kind::RndvRts), 0);
    EXPECT_TRUE(sh.bcast_delivered[r].empty());
  }
}

TEST(IcclProtocol, MidRendezvousChildDeathDoesNotStallSurvivors) {
  // 7-rank binary tree: rank 1's subtree is {1, 3, 4}. Kill rank 1 the
  // moment the root issues a rendezvous broadcast: the root must not wait
  // forever on the dead child's CTS - the surviving subtree {2, 5, 6}
  // still gets every chunk.
  const int n = 7;
  TestCluster tc(n);
  Shared sh;
  const auto pids = wire_fabric(tc, sh, {comm::TopologyKind::KAry, 2},
                                identity_placement(n), kRndvAlways);
  ASSERT_TRUE(tc.run_until([&] { return sh.ready == n; }));

  Bytes payload(2 * kChunk, 0x5C);
  sh.iccls[0]->broadcast(4, payload);
  tc.machine.find_process(pids[1])->exit(9);

  ASSERT_TRUE(tc.run_until([&] {
    return sh.bcast_delivered.count(2) != 0 &&
           sh.bcast_delivered.count(5) != 0 && sh.bcast_delivered.count(6) != 0;
  }));
  for (std::uint32_t r : {2u, 5u, 6u}) {
    EXPECT_EQ(sh.bcast_delivered[r], payload) << "rank " << r;
  }
  // The dead subtree never delivered.
  EXPECT_EQ(sh.bcast_delivered.count(1), 0u);
  EXPECT_EQ(sh.bcast_delivered.count(3), 0u);
  EXPECT_EQ(sh.bcast_delivered.count(4), 0u);

  // A follow-up rendezvous round still completes for the survivors: the
  // dead child is out of the fan-out, not wedging the CTS collection.
  Bytes second(kChunk + 11, 0x77);
  sh.bcast_delivered.clear();
  sh.iccls[0]->broadcast(5, second);
  ASSERT_TRUE(tc.run_until([&] {
    return sh.bcast_delivered.count(2) != 0 &&
           sh.bcast_delivered.count(5) != 0 && sh.bcast_delivered.count(6) != 0;
  }));
  for (std::uint32_t r : {2u, 5u, 6u}) {
    EXPECT_EQ(sh.bcast_delivered[r], second) << "rank " << r;
  }
}

TEST(IcclProtocol, OverlappingRendezvousRoundsWithDistinctTagsBothDeliver) {
  // Two large broadcasts issued in the same event run their RTS/CTS/chunk
  // pipelines concurrently; per-tag state must keep the rounds separate.
  // (This is why DaemonRuntime::broadcast_command allocates one tag per
  // round instead of reusing a fixed command tag.)
  const int n = 7;
  TestCluster tc(n);
  Shared sh;
  wire_fabric(tc, sh, {comm::TopologyKind::KAry, 2}, identity_placement(n),
              kRndvAlways);
  ASSERT_TRUE(tc.run_until([&] { return sh.ready == n; }));

  Bytes first(2 * kChunk + 17, 0x21);
  Bytes second(kChunk + 5, 0x42);
  sh.iccls[0]->broadcast(11, first);
  sh.iccls[0]->broadcast(12, second);
  ASSERT_TRUE(tc.run_until([&] {
    for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(n); ++r) {
      if (sh.bcast_by_tag[r].size() != 2) return false;
    }
    return true;
  }));
  for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(n); ++r) {
    EXPECT_EQ(sh.bcast_by_tag[r][11], first) << "rank " << r;
    EXPECT_EQ(sh.bcast_by_tag[r][12], second) << "rank " << r;
  }
}

TEST(IcclProtocol, ScatterDeliversCorrectPartsUnderNonContiguousPlacement) {
  // Regression for the placement work: scatter partitions by *rank* subtree,
  // so it must deliver rank r its part even when the rank->node mapping is
  // scrambled (the old round-robin-style striding) instead of the new
  // contiguous blocks.
  const int n = 9;
  TestCluster tc(n);
  Shared sh;
  const std::vector<int> placement = {4, 7, 1, 8, 0, 3, 6, 2, 5};
  wire_fabric(tc, sh, {comm::TopologyKind::KAry, 3}, placement, kEagerOnly);
  ASSERT_TRUE(tc.run_until([&] { return sh.ready == n; }));

  std::vector<std::pair<std::uint32_t, Bytes>> entries;
  std::vector<Bytes> parts;
  for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(n); ++r) {
    parts.push_back(Bytes(5, static_cast<std::uint8_t>(0x10 + r)));
  }
  std::vector<Bytes> parts_copy = parts;
  // Drive the raw scatter: root partitions parts[i] -> rank i.
  sh.iccls[0]->scatter(2, std::move(parts_copy));
  ASSERT_TRUE(tc.run_until(
      [&] { return static_cast<int>(sh.scatter_delivered.size()) == n; }));
  for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(n); ++r) {
    EXPECT_EQ(sh.scatter_delivered[r], parts[r]) << "rank " << r;
  }
}

// --- rendezvous gathers (upstream data plane) ------------------------------

/// Deterministic per-origin fill so an entry's bytes identify its origin.
Bytes origin_payload(std::uint32_t rank, std::size_t size) {
  return Bytes(size, static_cast<std::uint8_t>(0x30 + rank));
}

TEST(IcclProtocol, LargeGatherRunsRtsCtsChunkSequenceUpward) {
  const int n = 7;
  TestCluster tc(n);
  testing::FlightRecorderOnFailure flight(tc.machine);
  Shared sh;
  wire_fabric(tc, sh, {comm::TopologyKind::KAry, 2}, identity_placement(n),
              kRndvAlways);
  ASSERT_TRUE(tc.run_until([&] { return sh.ready == n; }));

  sh.frames.clear();
  const std::size_t payload_bytes = 2 * kChunk;
  for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(n); ++r) {
    sh.iccls[r]->contribute(21, origin_payload(r, payload_bytes));
  }
  ASSERT_TRUE(tc.run_until([&] { return sh.gather_by_tag.count(21) != 0; }));

  const auto& entries = sh.gather_by_tag[21];
  ASSERT_EQ(entries.size(), static_cast<std::size_t>(n));
  for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(n); ++r) {
    EXPECT_EQ(entries[r].first, r);
    EXPECT_EQ(entries[r].second, origin_payload(r, payload_bytes));
  }
  // The upstream plane really ran rendezvous: the root collected one RTS
  // per child, streamed chunks, and never saw a whole-subtree eager frame.
  EXPECT_EQ(count_frames(sh, 0, Iccl::Kind::GatherUp), 0);
  EXPECT_EQ(count_frames(sh, 0, Iccl::Kind::GatherRts), 2);
  // Every non-root origin's payload reaches the root chunk by chunk (6
  // origins x 2 chunks), relayed cut-through by the interior ranks.
  EXPECT_EQ(count_frames(sh, 0, Iccl::Kind::GatherChunk), (n - 1) * 2);
}

/// One kill scenario per fabric: `kill` dies mid-gather and `dead` is its
/// whole subtree (every origin whose path to the root crosses it).
struct GatherFaultCase {
  comm::TopologySpec topo;
  int n;
  std::uint32_t kill;
  std::vector<std::uint32_t> dead;
};

class IcclGatherFault : public ::testing::TestWithParam<GatherFaultCase> {
 protected:
  static bool is_dead(const GatherFaultCase& c, std::uint32_t rank) {
    return std::find(c.dead.begin(), c.dead.end(), rank) != c.dead.end();
  }

  /// Asserts the root's delivery for `tag`: every survivor present with its
  /// exact payload; dead-subtree origins absent unless `allow_dead_partial`
  /// (a mid-stream kill may land after an origin fully arrived, which is a
  /// completed contribution, not a corrupt one).
  static void check_delivery(const Shared& sh, const GatherFaultCase& c,
                             std::uint32_t tag,
                             const std::vector<std::size_t>& sizes,
                             bool allow_dead_partial) {
    const auto it = sh.gather_by_tag.find(tag);
    ASSERT_NE(it, sh.gather_by_tag.end());
    std::map<std::uint32_t, Bytes> got(it->second.begin(), it->second.end());
    EXPECT_EQ(got.size(), it->second.size()) << "duplicate origin delivered";
    for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(c.n); ++r) {
      if (is_dead(c, r)) {
        if (!allow_dead_partial) {
          EXPECT_EQ(got.count(r), 0u) << "dead origin " << r << " delivered";
        } else if (got.count(r) != 0) {
          // Whatever survived must be the complete contribution.
          EXPECT_EQ(got[r], origin_payload(r, sizes[r])) << "origin " << r;
        }
      } else {
        ASSERT_EQ(got.count(r), 1u) << "survivor " << r << " missing";
        EXPECT_EQ(got[r], origin_payload(r, sizes[r])) << "origin " << r;
      }
    }
  }
};

TEST_P(IcclGatherFault, ChildDeathDuringRtsCtsDropsItsSubtreeOnly) {
  const GatherFaultCase c = GetParam();
  TestCluster tc(c.n);
  testing::FlightRecorderOnFailure flight(tc.machine);
  Shared sh;
  const auto pids = wire_fabric(tc, sh, c.topo, identity_placement(c.n),
                                kRndvAlways);
  ASSERT_TRUE(tc.run_until([&] { return sh.ready == c.n; }));

  // Kill in the same sim instant as the contributions: the victim's RTS
  // may be in flight, but no CTS can have cleared it to stream - nothing
  // of its subtree's payload ever moves.
  std::vector<std::size_t> sizes(static_cast<std::size_t>(c.n), 2 * kChunk);
  for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(c.n); ++r) {
    sh.iccls[r]->contribute(31, origin_payload(r, sizes[r]));
  }
  tc.machine.find_process(pids[c.kill])->exit(9);

  ASSERT_TRUE(tc.run_until([&] { return sh.gather_by_tag.count(31) != 0; }));
  check_delivery(sh, c, 31, sizes, /*allow_dead_partial=*/false);

  // The fabric is still usable: a follow-up rendezvous gather completes
  // with exactly the surviving subtree (orphaned ranks below the victim
  // contribute into a void, and must not wedge the root).
  for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(c.n); ++r) {
    if (r == c.kill) continue;
    sh.iccls[r]->contribute(32, origin_payload(r, sizes[r]));
  }
  ASSERT_TRUE(tc.run_until([&] { return sh.gather_by_tag.count(32) != 0; }));
  check_delivery(sh, c, 32, sizes, /*allow_dead_partial=*/false);
}

TEST_P(IcclGatherFault, ChildDeathMidChunkStreamDeliversSurvivors) {
  const GatherFaultCase c = GetParam();
  TestCluster tc(c.n);
  testing::FlightRecorderOnFailure flight(tc.machine);
  Shared sh;
  const auto pids = wire_fabric(tc, sh, c.topo, identity_placement(c.n),
                                kRndvAlways);
  ASSERT_TRUE(tc.run_until([&] { return sh.ready == c.n; }));

  // Give the victim a long contribution so the first observed chunk frame
  // is guaranteed to land mid-round, then kill it while its (and possibly
  // its descendants') chunks are still streaming.
  std::vector<std::size_t> sizes(static_cast<std::size_t>(c.n), 2 * kChunk);
  sizes[c.kill] = 6 * kChunk;
  sh.frames.clear();
  for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(c.n); ++r) {
    sh.iccls[r]->contribute(41, origin_payload(r, sizes[r]));
  }
  ASSERT_TRUE(tc.run_until([&] {
    for (const auto& f : sh.frames) {
      if (f.kind == Iccl::Kind::GatherChunk) return true;
    }
    return false;
  }));
  ASSERT_EQ(sh.gather_by_tag.count(41), 0u) << "round finished before kill";
  tc.machine.find_process(pids[c.kill])->exit(9);

  ASSERT_TRUE(tc.run_until([&] { return sh.gather_by_tag.count(41) != 0; }));
  check_delivery(sh, c, 41, sizes, /*allow_dead_partial=*/true);

  // Survivors still gather cleanly afterwards.
  for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(c.n); ++r) {
    if (r == c.kill) continue;
    sh.iccls[r]->contribute(42, origin_payload(r, sizes[r]));
  }
  ASSERT_TRUE(tc.run_until([&] { return sh.gather_by_tag.count(42) != 0; }));
  check_delivery(sh, c, 42, sizes, /*allow_dead_partial=*/false);
}

INSTANTIATE_TEST_SUITE_P(
    Fabrics, IcclGatherFault,
    ::testing::Values(
        // kary:2, 7 ranks: rank 1's subtree is {1, 3, 4}.
        GatherFaultCase{{comm::TopologyKind::KAry, 2}, 7, 1, {1, 3, 4}},
        // binomial, 8 ranks: rank 4 owns the contiguous subtree {4..7}.
        GatherFaultCase{{comm::TopologyKind::Binomial, 0}, 8, 4, {4, 5, 6, 7}},
        // flat: every rank is a leaf of the root; only the victim is lost.
        GatherFaultCase{{comm::TopologyKind::Flat, 0}, 6, 3, {3}}),
    [](const ::testing::TestParamInfo<GatherFaultCase>& pinfo) {
      std::string name = pinfo.param.topo.to_string();
      for (char& ch : name) {
        if (ch == ':' || ch == '-') ch = '_';
      }
      return name;
    });

// --- broadcast_command through a real session ------------------------------

struct CommandState {
  std::map<std::uint32_t, std::vector<Bytes>> received;  // rank -> payloads
  int ready = 0;
};

/// BE daemon whose master fires two large commands back-to-back the moment
/// the session is ready: with the session pinned to rendezvous, both
/// rounds' chunk pipelines are in flight at once.
class CommandDaemon : public cluster::Program {
 public:
  explicit CommandDaemon(CommandState* state) : state_(state) {}
  [[nodiscard]] std::string_view name() const override { return "cmd_be"; }

  void on_start(cluster::Process& self) override {
    be_ = std::make_unique<BackEnd>(self);
    BackEnd::Callbacks cbs;
    cbs.on_init = [](const Rpdtab&, const Bytes&,
                     std::function<void(Status)> done) { done(Status::ok()); };
    cbs.on_command = [this](const Bytes& data) {
      state_->received[be_->rank()].push_back(data);
    };
    cbs.on_ready = [this](Status st) {
      if (!st.is_ok()) return;
      state_->ready += 1;
      if (be_->is_master()) {
        (void)be_->broadcast_command(Bytes(150 * 1024, 0x61));
        (void)be_->broadcast_command(Bytes(70 * 1024, 0x62));
      }
    };
    ASSERT_TRUE(be_->init(std::move(cbs)).is_ok());
  }

  static void install(cluster::Machine& machine, CommandState* state) {
    cluster::ProgramImage image;
    image.image_mb = 2.0;
    image.factory = [state](const std::vector<std::string>&) {
      return std::make_unique<CommandDaemon>(state);
    };
    machine.install_program("cmd_be", std::move(image));
  }

 private:
  CommandState* state_;
  std::unique_ptr<BackEnd> be_;
};

TEST(IcclProtocol, OverlappingLargeCommandsDeliverIntactUnderRendezvous) {
  const int n = 8;
  TestCluster tc(n);
  CommandState state;
  CommandDaemon::install(tc.machine, &state);

  std::shared_ptr<FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<FrontEnd>(self);
    ASSERT_TRUE(fe->init().is_ok());
    auto sid = fe->create_session();
    FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "cmd_be";
    cfg.rndv_threshold_bytes = 1;  // every non-empty broadcast rendezvous
    rm::JobSpec job{n, 1, "mpi_app", {}};
    fe->launch_and_spawn(sid.value, job, cfg, [](Status) {});
  });
  ASSERT_TRUE(tc.run_until([&] {
    if (state.ready != n) return false;
    for (const auto& [rank, payloads] : state.received) {
      (void)rank;
      if (payloads.size() != 2) return false;
    }
    return static_cast<int>(state.received.size()) == n;
  }));

  // Every rank (including the master) got both command payloads intact,
  // whatever order the concurrent rounds completed in.
  for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(n); ++r) {
    ASSERT_EQ(state.received[r].size(), 2u) << "rank " << r;
    std::vector<Bytes> got = state.received[r];
    std::sort(got.begin(), got.end(),
              [](const Bytes& a, const Bytes& b) { return a.size() > b.size(); });
    EXPECT_EQ(got[0], Bytes(150 * 1024, 0x61)) << "rank " << r;
    EXPECT_EQ(got[1], Bytes(70 * 1024, 0x62)) << "rank " << r;
  }
}

}  // namespace
}  // namespace lmon::core
