// Integration tests for the O|SS instrumentor comparison (paper §5.3,
// Table 1): DPCL full-binary-parse APAI access vs LaunchMON.
#include <gtest/gtest.h>

#include "rm/resource_manager.hpp"
#include "tests/test_util.hpp"
#include "tools/dpcl/dpcl.hpp"
#include "tools/oss/instrumentor.hpp"

namespace lmon {
namespace {

using testing::TestCluster;
using tools::oss::ApaiResult;
using tools::oss::DpclInstrumentor;
using tools::oss::LmonInstrumentor;

cluster::Pid start_job(TestCluster& tc, int nnodes, int tpn) {
  auto res = rm::run_job(tc.machine, rm::JobSpec{nnodes, tpn, "mpi_app", {}});
  EXPECT_TRUE(res.is_ok());
  tc.simulator.run(tc.simulator.now() + sim::seconds(3));
  return res.value;
}

template <typename InstrumentorT>
ApaiResult acquire(TestCluster& tc, cluster::Pid launcher) {
  tools::oss::OssBe::install(tc.machine);
  ApaiResult result;
  bool done = false;
  auto instrumentor = std::make_shared<InstrumentorT>();
  tc.spawn_fe([&, instrumentor](cluster::Process& self) {
    instrumentor->acquire(self, launcher, [&](ApaiResult r) {
      result = std::move(r);
      done = true;
    });
  });
  EXPECT_TRUE(tc.run_until([&] { return done; }, sim::seconds(900)));
  return result;
}

TEST(Oss, DpclAcquiresApaiButSlowly) {
  TestCluster tc(4);
  ASSERT_TRUE(tools::dpcl::install(tc.machine).is_ok());
  const cluster::Pid launcher = start_job(tc, 4, 8);
  ApaiResult r = acquire<DpclInstrumentor>(tc, launcher);
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(r.table.size(), 32u);
  // Dominated by the full parse of the ~110 MB launcher image (Table 1:
  // ~34 s on the paper's testbed).
  EXPECT_GT(sim::to_seconds(r.elapsed), 20.0);
  EXPECT_LT(sim::to_seconds(r.elapsed), 50.0);
}

TEST(Oss, LaunchMonAcquiresApaiFast) {
  TestCluster tc(4);
  const cluster::Pid launcher = start_job(tc, 4, 8);
  ApaiResult r = acquire<LmonInstrumentor>(tc, launcher);
  ASSERT_TRUE(r.status.is_ok()) << r.status.to_string();
  EXPECT_EQ(r.table.size(), 32u);
  EXPECT_LT(sim::to_seconds(r.elapsed), 1.0);
}

TEST(Oss, BothInstrumentorsReturnIdenticalTables) {
  TestCluster tc(4);
  ASSERT_TRUE(tools::dpcl::install(tc.machine).is_ok());
  const cluster::Pid launcher = start_job(tc, 4, 4);
  ApaiResult dpcl_r = acquire<DpclInstrumentor>(tc, launcher);
  ApaiResult lmon_r = acquire<LmonInstrumentor>(tc, launcher);
  ASSERT_TRUE(dpcl_r.status.is_ok());
  ASSERT_TRUE(lmon_r.status.is_ok());
  EXPECT_EQ(dpcl_r.table, lmon_r.table);
}

TEST(Oss, ApaiTimesAreRoughlyConstantInNodeCount) {
  // Table 1's defining shape: both columns ~flat from 2 to 32 nodes.
  double dpcl_small = 0;
  double dpcl_large = 0;
  double lmon_small = 0;
  double lmon_large = 0;
  {
    TestCluster tc(2);
    ASSERT_TRUE(tools::dpcl::install(tc.machine).is_ok());
    auto launcher = start_job(tc, 2, 8);
    dpcl_small = sim::to_seconds(acquire<DpclInstrumentor>(tc, launcher).elapsed);
    lmon_small = sim::to_seconds(acquire<LmonInstrumentor>(tc, launcher).elapsed);
  }
  {
    TestCluster tc(32);
    ASSERT_TRUE(tools::dpcl::install(tc.machine).is_ok());
    auto launcher = start_job(tc, 32, 8);
    dpcl_large = sim::to_seconds(acquire<DpclInstrumentor>(tc, launcher).elapsed);
    lmon_large = sim::to_seconds(acquire<LmonInstrumentor>(tc, launcher).elapsed);
  }
  EXPECT_LT(dpcl_large / dpcl_small, 1.2);
  EXPECT_LT(lmon_large / lmon_small, 3.0);
  // And the order-of-magnitude gap (paper: 34 s vs 0.6 s).
  EXPECT_GT(dpcl_small / lmon_small, 10.0);
  EXPECT_GT(dpcl_large / lmon_large, 10.0);
}

}  // namespace
}  // namespace lmon
