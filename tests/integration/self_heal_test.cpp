// Self-healing daemon tree tests: kill comm daemons under a raw ICCL
// fabric (heal enabled) and assert the tree reparents onto surviving
// ancestors, in-flight collectives recover byte-identically, and nothing
// is delivered twice. Fault timing is scripted through tests/fault_plan.hpp
// so every interleaving of death vs. in-flight traffic is deterministic.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "comm/bootstrap.hpp"
#include "comm/topology.hpp"
#include "core/iccl.hpp"
#include "obs/metrics.hpp"
#include "tests/fault_plan.hpp"
#include "tests/flight_check.hpp"
#include "tests/test_util.hpp"

namespace lmon::core {
namespace {

using testing::FaultPlan;
using testing::TestCluster;

constexpr std::uint32_t kEagerOnly = 0xffffffffu;
constexpr std::uint32_t kRndvAlways = 1;
constexpr std::uint32_t kChunk = 64 * 1024;  // CostModel default

struct Shared {
  /// rank -> tag -> (delivery count, payload): duplicates are a bug even
  /// when the wire legitimately carries replayed frames.
  std::map<std::uint32_t, std::map<std::uint32_t, int>> bcast_count;
  std::map<std::uint32_t, std::map<std::uint32_t, Bytes>> bcast_by_tag;
  /// tag -> times the root handler fired; entries of the last firing.
  std::map<std::uint32_t, int> gather_fired;
  std::map<std::uint32_t, std::vector<std::pair<std::uint32_t, Bytes>>>
      gather_by_tag;
  std::map<std::uint32_t, Iccl*> iccls;  ///< live instances only
  int ready = 0;
};

class RawHealDaemon : public cluster::Program {
 public:
  explicit RawHealDaemon(Shared* sh) : sh_(sh) {}
  ~RawHealDaemon() override {
    if (rank_ != kNoRank) sh_->iccls.erase(rank_);
  }
  [[nodiscard]] std::string_view name() const override { return "raw_heal"; }

  void on_start(cluster::Process& self) override {
    auto params = Iccl::params_from_args(self.args(), self.node().hostname());
    ASSERT_TRUE(params.has_value());
    iccl_ = std::make_unique<Iccl>(self, std::move(*params));
    rank_ = iccl_->rank();
    const std::uint32_t rank = rank_;
    iccl_->set_bcast_handler([this, rank](std::uint32_t tag,
                                          const Bytes& data) {
      sh_->bcast_count[rank][tag] += 1;
      sh_->bcast_by_tag[rank][tag] = data;
    });
    iccl_->set_gather_handler(
        [this](std::uint32_t tag,
               std::vector<std::pair<std::uint32_t, Bytes>> entries) {
          sh_->gather_fired[tag] += 1;
          sh_->gather_by_tag[tag] = std::move(entries);
        });
    sh_->iccls[rank] = iccl_.get();
    iccl_->start([this](Status st) {
      if (st.is_ok()) sh_->ready += 1;
    });
  }

 private:
  static constexpr std::uint32_t kNoRank = 0xffffffffu;
  Shared* sh_;
  std::uint32_t rank_ = kNoRank;
  std::unique_ptr<Iccl> iccl_;
};

/// One healing daemon per rank on its own node; returns pids in rank order.
std::vector<cluster::Pid> wire_heal_fabric(TestCluster& tc, Shared& sh,
                                           const comm::TopologySpec& topo,
                                           int n,
                                           std::uint32_t rndv_threshold,
                                           std::uint32_t grace_ms = 0) {
  comm::BootstrapSpec spec;
  spec.size = static_cast<std::uint32_t>(n);
  spec.topology = topo;
  spec.port = cluster::kToolFabricBasePort;
  spec.session = "heal";
  spec.rndv_threshold = rndv_threshold;
  spec.heal = true;
  spec.heal_grace_ms = grace_ms;
  for (int i = 0; i < n; ++i) {
    spec.hosts.push_back(tc.machine.compute_node(i).hostname());
  }
  std::vector<cluster::Pid> pids;
  for (std::uint32_t r = 0; r < spec.size; ++r) {
    cluster::SpawnOptions opts;
    opts.executable = "raw_heal";
    opts.args = comm::bootstrap_args(spec, r);
    auto res = tc.machine.compute_node(static_cast<int>(r))
                   .spawn(std::make_unique<RawHealDaemon>(&sh),
                          std::move(opts));
    EXPECT_TRUE(res.is_ok());
    pids.push_back(res.value);
  }
  return pids;
}

Bytes patterned(std::size_t size, std::uint8_t salt) {
  Bytes b(size);
  for (std::size_t i = 0; i < size; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 31) ^ salt);
  }
  return b;
}

/// Survivors = all ranks minus the plan's victims.
std::set<std::uint32_t> survivors_of(int n, const FaultPlan& plan) {
  std::set<std::uint32_t> out;
  for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(n); ++r) {
    out.insert(r);
  }
  for (const std::uint32_t d : plan.dead_ranks()) out.erase(d);
  return out;
}

/// True once every survivor reports heal_idle() (no open adoption slots,
/// nobody mid-climb).
bool fabric_idle(const Shared& sh, const std::set<std::uint32_t>& alive) {
  for (const std::uint32_t r : alive) {
    auto it = sh.iccls.find(r);
    if (it == sh.iccls.end() || !it->second->heal_idle()) return false;
  }
  return true;
}

/// Non-asserting settle check: every survivor's upstream link targets a
/// live rank that owns it back. (Dead ranks linger as zombies in the sim,
/// so "the victim disappeared" is not observable; the healed link is.)
bool tree_healed(const Shared& sh, const std::set<std::uint32_t>& alive) {
  for (const std::uint32_t r : alive) {
    if (r == 0) continue;
    auto it = sh.iccls.find(r);
    if (it == sh.iccls.end()) return false;
    const std::uint32_t parent = it->second->parent_rank();
    if (alive.count(parent) == 0 || sh.iccls.count(parent) == 0) {
      return false;
    }
    const auto kids = sh.iccls.at(parent)->live_children();
    if (std::find(kids.begin(), kids.end(), r) == kids.end()) return false;
  }
  return true;
}

/// The standard post-kill settle predicate.
bool settled(const TestCluster& tc, const Shared& sh, const FaultPlan& plan,
             const std::set<std::uint32_t>& alive) {
  return tc.simulator.now() > plan.last_kill() && fabric_idle(sh, alive) &&
         tree_healed(sh, alive);
}

/// Tree invariants after healing: every survivor's upstream link targets a
/// live rank, the parent agrees it owns the child, and walking parents from
/// any survivor reaches the root without cycles.
void check_reparented_tree(const Shared& sh,
                           const std::set<std::uint32_t>& alive) {
  for (const std::uint32_t r : alive) {
    if (r == 0) continue;
    ASSERT_TRUE(sh.iccls.count(r) != 0) << "rank " << r << " not alive";
    const std::uint32_t parent = sh.iccls.at(r)->parent_rank();
    ASSERT_TRUE(alive.count(parent) != 0)
        << "rank " << r << " parented on dead rank " << parent;
    const auto kids = sh.iccls.at(parent)->live_children();
    EXPECT_TRUE(std::find(kids.begin(), kids.end(), r) != kids.end())
        << "rank " << parent << " does not own child " << r;
    // Climb to the root; a cycle would loop past `alive.size()` hops.
    std::uint32_t cur = r;
    std::size_t hops = 0;
    while (cur != 0) {
      ASSERT_LT(hops++, alive.size()) << "parent cycle at rank " << r;
      cur = sh.iccls.at(cur)->parent_rank();
      ASSERT_TRUE(alive.count(cur) != 0);
    }
  }
}

/// Broadcasts `payload` post-heal and asserts exactly-once byte-identical
/// delivery at every survivor, then gathers and asserts the root assembles
/// exactly the survivor set byte-identically.
void check_collectives_whole(TestCluster& tc, Shared& sh,
                             const std::set<std::uint32_t>& alive,
                             std::uint32_t tag, const Bytes& payload) {
  sh.iccls[0]->broadcast(tag, payload);
  ASSERT_TRUE(tc.run_until([&] {
    for (const std::uint32_t r : alive) {
      if (sh.bcast_by_tag[r].count(tag) == 0) return false;
    }
    return true;
  })) << "post-heal broadcast did not reach every survivor";
  for (const std::uint32_t r : alive) {
    EXPECT_EQ(sh.bcast_by_tag[r][tag], payload) << "rank " << r;
    EXPECT_EQ(sh.bcast_count[r][tag], 1) << "duplicate delivery at " << r;
  }

  const std::uint32_t gtag = tag + 1000;
  for (const std::uint32_t r : alive) {
    sh.iccls[r]->contribute(gtag, patterned(96 + r, static_cast<std::uint8_t>(r)));
  }
  ASSERT_TRUE(tc.run_until([&] { return sh.gather_fired[gtag] != 0; }))
      << "post-heal gather never completed";
  EXPECT_EQ(sh.gather_fired[gtag], 1);
  const auto& entries = sh.gather_by_tag[gtag];
  ASSERT_EQ(entries.size(), alive.size());
  std::set<std::uint32_t> seen;
  for (const auto& [origin, data] : entries) {
    EXPECT_TRUE(seen.insert(origin).second) << "dup origin " << origin;
    EXPECT_TRUE(alive.count(origin) != 0) << "dead origin " << origin;
    EXPECT_EQ(data, patterned(96 + origin, static_cast<std::uint8_t>(origin)))
        << "origin " << origin;
  }
}

// ---------------------------------------------------------------------------
// Idle kills, parametrized across the three fabrics (interior / mid-tree /
// leaf victims chosen per shape).

struct HealCase {
  comm::TopologySpec topo;
  int n;
  std::uint32_t kill;
};

class SelfHealFabric : public ::testing::TestWithParam<HealCase> {};

TEST_P(SelfHealFabric, IdleKillReparentsAndCollectivesRecover) {
  const HealCase c = GetParam();
  Shared sh;
  TestCluster tc(c.n);
  lmon::testing::FlightRecorderOnFailure flight(tc.machine);
  obs::Metrics metrics;
  tc.machine.set_metrics(&metrics);
  const auto pids = wire_heal_fabric(tc, sh, c.topo, c.n, kRndvAlways);
  ASSERT_TRUE(tc.run_until([&] { return sh.ready == c.n; }));

  const FaultPlan plan =
      FaultPlan::single(tc.simulator.now() + sim::ms(5), c.kill);
  plan.arm(tc.machine, pids);
  const auto alive = survivors_of(c.n, plan);

  // Orphan count = the victim's direct children in the original tree.
  const comm::Topology topo(c.topo, static_cast<std::uint32_t>(c.n));
  const std::size_t orphans = topo.children_of(c.kill).size();

  ASSERT_TRUE(tc.run_until([&] { return settled(tc, sh, plan, alive); }))
      << "fabric never settled after the kill";
  check_reparented_tree(sh, alive);
  EXPECT_EQ(metrics.counter("iccl.heal.reattaches"),
            static_cast<double>(orphans));
  EXPECT_EQ(metrics.counter("iccl.heal.adoptions"),
            static_cast<double>(orphans));
  EXPECT_EQ(metrics.counter("iccl.heal.give_ups"), 0.0);

  check_collectives_whole(tc, sh, alive, 50, patterned(kChunk + 333, 0x5A));
}

INSTANTIATE_TEST_SUITE_P(
    Fabrics, SelfHealFabric,
    ::testing::Values(
        // k-ary:2, 7 ranks: rank 1 is a root child with children {3,4}.
        HealCase{{comm::TopologyKind::KAry, 2}, 7, 1},
        // binomial, 8 ranks: rank 4 heads the {4,5,6,7} subtree.
        HealCase{{comm::TopologyKind::Binomial, 0}, 8, 4},
        // flat, 6 ranks: every rank is a leaf under the root.
        HealCase{{comm::TopologyKind::Flat, 0}, 6, 3}),
    [](const ::testing::TestParamInfo<HealCase>& pinfo) {
      std::string name = pinfo.param.topo.to_string() + "_kill" +
                         std::to_string(pinfo.param.kill);
      for (char& c : name) {
        if (c == ':' || c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Mid-collective kills: the victim dies while a broadcast/gather is in
// flight through it.

TEST(SelfHeal, MidBcastEagerKillReplaysToOrphans) {
  const int n = 7;
  Shared sh;
  TestCluster tc(n);
  lmon::testing::FlightRecorderOnFailure flight(tc.machine);
  const auto pids = wire_heal_fabric(tc, sh, {comm::TopologyKind::KAry, 2},
                                     n, kEagerOnly);
  ASSERT_TRUE(tc.run_until([&] { return sh.ready == n; }));

  // Rank 1 receives the eager frame ~45us after send but only relays it
  // ~600us later (iccl_msg_handle); a kill in between means ranks 3/4 never
  // saw tag 60 and must get it from the root's replay after reattach.
  const Bytes payload = patterned(4096, 0x11);
  sh.iccls[0]->broadcast(60, payload);
  const FaultPlan plan =
      FaultPlan::single(tc.simulator.now() + sim::us(300), 1);
  plan.arm(tc.machine, pids);
  const auto alive = survivors_of(n, plan);

  ASSERT_TRUE(tc.run_until([&] {
    if (!settled(tc, sh, plan, alive)) return false;
    for (const std::uint32_t r : alive) {
      if (sh.bcast_by_tag[r].count(60) == 0) return false;
    }
    return true;
  })) << "broadcast never recovered across the kill";
  check_reparented_tree(sh, alive);
  for (const std::uint32_t r : alive) {
    EXPECT_EQ(sh.bcast_by_tag[r][60], payload) << "rank " << r;
    EXPECT_EQ(sh.bcast_count[r][60], 1) << "duplicate delivery at " << r;
  }
  check_collectives_whole(tc, sh, alive, 61, patterned(2048, 0x22));
}

TEST(SelfHeal, MidBcastRendezvousKillResumesChunkStream) {
  const int n = 7;
  Shared sh;
  TestCluster tc(n);
  lmon::testing::FlightRecorderOnFailure flight(tc.machine);
  const auto pids = wire_heal_fabric(tc, sh, {comm::TopologyKind::KAry, 2},
                                     n, kRndvAlways);
  ASSERT_TRUE(tc.run_until([&] { return sh.ready == n; }));

  // 6 chunks; the kill lands while rank 1 is mid-relay of the chunk train.
  const Bytes payload = patterned(5 * kChunk + 777, 0x33);
  sh.iccls[0]->broadcast(70, payload);
  const FaultPlan plan =
      FaultPlan::single(tc.simulator.now() + sim::ms(2), 1);
  plan.arm(tc.machine, pids);
  const auto alive = survivors_of(n, plan);

  ASSERT_TRUE(tc.run_until([&] {
    if (!settled(tc, sh, plan, alive)) return false;
    for (const std::uint32_t r : alive) {
      if (sh.bcast_by_tag[r].count(70) == 0) return false;
    }
    return true;
  })) << "rendezvous broadcast never recovered across the kill";
  check_reparented_tree(sh, alive);
  for (const std::uint32_t r : alive) {
    EXPECT_EQ(sh.bcast_by_tag[r][70], payload) << "rank " << r;
    EXPECT_EQ(sh.bcast_count[r][70], 1) << "duplicate delivery at " << r;
  }
  check_collectives_whole(tc, sh, alive, 71, patterned(kChunk, 0x44));
}

TEST(SelfHeal, MidGatherKillRecoversSurvivorPayloads) {
  const int n = 7;
  Shared sh;
  TestCluster tc(n);
  lmon::testing::FlightRecorderOnFailure flight(tc.machine);
  const auto pids = wire_heal_fabric(tc, sh, {comm::TopologyKind::KAry, 2},
                                     n, kRndvAlways);
  ASSERT_TRUE(tc.run_until([&] { return sh.ready == n; }));

  // Big enough that rank 1 dies while relaying its subtree's chunk trains.
  const std::uint32_t tag = 80;
  std::map<std::uint32_t, Bytes> contrib;
  for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(n); ++r) {
    contrib[r] = patterned(kChunk + 100 * r,
                           static_cast<std::uint8_t>(0x50 + r));
    sh.iccls[r]->contribute(tag, contrib[r]);
  }
  const FaultPlan plan =
      FaultPlan::single(tc.simulator.now() + sim::ms(2), 1);
  plan.arm(tc.machine, pids);
  const auto alive = survivors_of(n, plan);

  ASSERT_TRUE(tc.run_until([&] {
    return sh.gather_fired[tag] != 0 && settled(tc, sh, plan, alive);
  })) << "gather never completed across the kill";
  check_reparented_tree(sh, alive);
  EXPECT_EQ(sh.gather_fired[tag], 1);
  const auto& entries = sh.gather_by_tag[tag];
  std::map<std::uint32_t, Bytes> got;
  for (const auto& [origin, data] : entries) {
    EXPECT_TRUE(got.emplace(origin, data).second)
        << "dup origin " << origin;
  }
  // Every survivor's payload assembles byte-identically; the victim's own
  // contribution may legitimately be present (already relayed) or absent
  // (died with it) - it must not be corrupt if present.
  for (const std::uint32_t r : alive) {
    ASSERT_TRUE(got.count(r) != 0) << "lost survivor payload " << r;
    EXPECT_EQ(got.at(r), contrib.at(r)) << "origin " << r;
  }
  if (got.count(1) != 0) {
    EXPECT_EQ(got.at(1), contrib.at(1));
  }

  check_collectives_whole(tc, sh, alive, 81, patterned(512, 0x66));
}

TEST(SelfHeal, MidRoundKillWithTwoActiveSessionsReplaysPerSessionOnce) {
  // Persistent multiplexed service under failure: two virtual sessions run
  // rendezvous collectives over one healing fabric, a comm daemon dies
  // mid-relay of both chunk trains, and each session's replay must be
  // exactly-once with zero cross-session frame leaks. Both sessions use
  // the *same* within-session tag so a mis-keyed frame would surface as a
  // wrong-payload delivery, not just a count skew.
  const int n = 7;
  Shared sh;
  TestCluster tc(n);
  lmon::testing::FlightRecorderOnFailure flight(tc.machine);
  obs::Metrics metrics;
  tc.machine.set_metrics(&metrics);
  const auto pids = wire_heal_fabric(tc, sh, {comm::TopologyKind::KAry, 2},
                                     n, kRndvAlways);
  ASSERT_TRUE(tc.run_until([&] { return sh.ready == n; }));

  // Per-session observation state, keyed by virtual session id.
  struct VsObs {
    std::map<std::uint32_t, std::map<std::uint32_t, int>> bcast_count;
    std::map<std::uint32_t, std::map<std::uint32_t, Bytes>> bcast_by_tag;
    std::map<std::uint32_t, int> gather_fired;
    std::map<std::uint32_t, std::vector<std::pair<std::uint32_t, Bytes>>>
        gather_by_tag;
  };
  std::map<std::uint32_t, VsObs> vs;
  int stray_session_frames = 0;  // data frame keyed outside {0, 1, 2}
  for (auto& [rank, iccl] : sh.iccls) {
    for (const std::uint32_t vsid : {1u, 2u}) {
      Iccl::SessionHandlers h;
      const std::uint32_t r = rank;
      h.on_bcast = [&vs, vsid, r](std::uint32_t tag, const Bytes& d) {
        vs[vsid].bcast_count[r][tag] += 1;
        vs[vsid].bcast_by_tag[r][tag] = d;
      };
      h.on_gather = [&vs, vsid](
                        std::uint32_t tag,
                        std::vector<std::pair<std::uint32_t, Bytes>> e) {
        vs[vsid].gather_fired[tag] += 1;
        vs[vsid].gather_by_tag[tag] = std::move(e);
      };
      iccl->bind_session(vsid, std::move(h));
    }
    iccl->set_keyed_frame_tap(
        [&stray_session_frames](Iccl::Kind, StreamKey key, std::uint32_t,
                                std::size_t) {
          if (key.session > 2) ++stray_session_frames;
        });
  }

  // Same tag, different per-session payloads; chunk trains long enough
  // that rank 1 dies mid-relay with both sessions' streams open.
  const std::uint32_t tag = 120;
  const Bytes pay1 = patterned(5 * kChunk + 777, 0xA1);
  const Bytes pay2 = patterned(5 * kChunk + 333, 0xB2);
  sh.iccls[0]->broadcast(StreamKey{1, tag}, pay1);
  sh.iccls[0]->broadcast(StreamKey{2, tag}, pay2);
  const std::uint32_t gtag = 121;
  std::map<std::uint32_t, std::map<std::uint32_t, Bytes>> contrib;
  for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(n); ++r) {
    for (const std::uint32_t vsid : {1u, 2u}) {
      contrib[vsid][r] = patterned(
          kChunk / 2 + 64 * r, static_cast<std::uint8_t>(0x10 * vsid + r));
      sh.iccls[r]->contribute(StreamKey{vsid, gtag}, contrib[vsid][r]);
    }
  }

  const FaultPlan plan =
      FaultPlan::single(tc.simulator.now() + sim::ms(2), 1);
  plan.arm(tc.machine, pids);
  const auto alive = survivors_of(n, plan);

  ASSERT_TRUE(tc.run_until([&] {
    if (!settled(tc, sh, plan, alive)) return false;
    for (const std::uint32_t vsid : {1u, 2u}) {
      if (vs[vsid].gather_fired[gtag] == 0) return false;
      for (const std::uint32_t r : alive) {
        if (vs[vsid].bcast_by_tag[r].count(tag) == 0) return false;
      }
    }
    return true;
  })) << "multiplexed collectives never recovered across the kill";
  check_reparented_tree(sh, alive);

  for (const std::uint32_t vsid : {1u, 2u}) {
    const Bytes& want = vsid == 1 ? pay1 : pay2;
    for (const std::uint32_t r : alive) {
      EXPECT_EQ(vs[vsid].bcast_by_tag[r][tag], want)
          << "session " << vsid << " rank " << r;
      EXPECT_EQ(vs[vsid].bcast_count[r][tag], 1)
          << "duplicate session-" << vsid << " delivery at rank " << r;
    }
    EXPECT_EQ(vs[vsid].gather_fired[gtag], 1) << "session " << vsid;
    std::map<std::uint32_t, Bytes> got;
    for (const auto& [origin, data] : vs[vsid].gather_by_tag[gtag]) {
      EXPECT_TRUE(got.emplace(origin, data).second)
          << "session " << vsid << " dup origin " << origin;
    }
    for (const std::uint32_t r : alive) {
      ASSERT_TRUE(got.count(r) != 0)
          << "session " << vsid << " lost survivor payload " << r;
      EXPECT_EQ(got.at(r), contrib[vsid].at(r))
          << "session " << vsid << " origin " << r;
    }
    if (got.count(1) != 0) {
      EXPECT_EQ(got.at(1), contrib[vsid].at(1));
    }
  }

  // No frame was ever keyed outside the bound sessions and none was
  // dropped for want of a handler: the namespaces stayed watertight.
  EXPECT_EQ(stray_session_frames, 0);
  EXPECT_EQ(metrics.counter("iccl.mux.unbound_drops"), 0.0);

  // The infrastructure session is untouched by the multiplexed traffic.
  check_collectives_whole(tc, sh, alive, 130, patterned(1024, 0xCC));
}

// ---------------------------------------------------------------------------
// Correlated and cascading failures.

TEST(SelfHeal, CorrelatedSubtreeLossResolvesByGraceTimer) {
  const int n = 7;
  Shared sh;
  TestCluster tc(n);
  lmon::testing::FlightRecorderOnFailure flight(tc.machine);
  obs::Metrics metrics;
  tc.machine.set_metrics(&metrics);
  const auto pids = wire_heal_fabric(tc, sh, {comm::TopologyKind::KAry, 2},
                                     n, kRndvAlways, /*grace_ms=*/50);
  ASSERT_TRUE(tc.run_until([&] { return sh.ready == n; }));

  // The whole {1,3,4} rack dies at once: no orphan ever reattaches, so the
  // root's adoption slot must resolve by grace expiry, not coverage.
  const comm::Topology topo({comm::TopologyKind::KAry, 2},
                            static_cast<std::uint32_t>(n));
  const FaultPlan plan =
      FaultPlan::subtree(tc.simulator.now() + sim::ms(5), topo, 1);
  plan.arm(tc.machine, pids);
  const auto alive = survivors_of(n, plan);

  // A gather opened before the loss completes with the survivor set once
  // the grace window closes.
  const std::uint32_t tag = 90;
  for (const std::uint32_t r : alive) {
    sh.iccls[r]->contribute(tag, patterned(256, static_cast<std::uint8_t>(r)));
  }
  ASSERT_TRUE(tc.run_until([&] {
    return sh.gather_fired[tag] != 0 && settled(tc, sh, plan, alive);
  })) << "gather never completed after whole-subtree loss";
  check_reparented_tree(sh, alive);
  EXPECT_GE(metrics.counter("iccl.heal.grace_expired"), 1.0);
  EXPECT_EQ(metrics.counter("iccl.heal.reattaches"), 0.0);
  const auto& entries = sh.gather_by_tag[tag];
  std::set<std::uint32_t> origins;
  for (const auto& [origin, data] : entries) origins.insert(origin);
  EXPECT_EQ(origins, alive);

  check_collectives_whole(tc, sh, alive, 91, patterned(1024, 0x77));
}

TEST(SelfHeal, CascadingKillsRehealAlreadyHealedRanks) {
  const int n = 15;  // kary:2 depth 3: 3's children {7,8}, 1's {3,4}
  Shared sh;
  TestCluster tc(n);
  lmon::testing::FlightRecorderOnFailure flight(tc.machine);
  const auto pids = wire_heal_fabric(tc, sh, {comm::TopologyKind::KAry, 2},
                                     n, kRndvAlways);
  ASSERT_TRUE(tc.run_until([&] { return sh.ready == n; }));

  // 3 dies first (7/8 reattach to 1), then 1 dies (7/8 must reparent a
  // second time, 4 a first time; everyone lands under the root).
  const FaultPlan plan = FaultPlan::cascading(
      tc.simulator.now() + sim::ms(5), sim::seconds(1), {3, 1});
  plan.arm(tc.machine, pids);
  const auto alive = survivors_of(n, plan);

  ASSERT_TRUE(tc.run_until([&] { return settled(tc, sh, plan, alive); }))
      << "fabric never settled after the cascade";
  check_reparented_tree(sh, alive);
  // 7 and 8 were orphaned twice and must have climbed to a live ancestor.
  EXPECT_EQ(sh.iccls[7]->parent_rank(), 0u);
  EXPECT_EQ(sh.iccls[8]->parent_rank(), 0u);
  EXPECT_EQ(sh.iccls[4]->parent_rank(), 0u);

  check_collectives_whole(tc, sh, alive, 100, patterned(3000, 0x88));
}

TEST(SelfHeal, CorrelatedAncestorChainLossClimbsPastDeadRanks) {
  const int n = 15;
  Shared sh;
  TestCluster tc(n);
  lmon::testing::FlightRecorderOnFailure flight(tc.machine);
  const auto pids = wire_heal_fabric(tc, sh, {comm::TopologyKind::KAry, 2},
                                     n, kRndvAlways);
  ASSERT_TRUE(tc.run_until([&] { return sh.ready == n; }));

  // 1 and 3 die in the same instant: 7/8 dial dead 1, exhaust the retry
  // budget, and climb on to the root; 4 reattaches directly.
  const FaultPlan plan = FaultPlan::correlated(
      tc.simulator.now() + sim::ms(5), {1, 3});
  plan.arm(tc.machine, pids);
  const auto alive = survivors_of(n, plan);

  ASSERT_TRUE(tc.run_until([&] { return settled(tc, sh, plan, alive); }))
      << "fabric never settled after correlated ancestor loss";
  check_reparented_tree(sh, alive);
  EXPECT_EQ(sh.iccls[7]->parent_rank(), 0u);
  EXPECT_EQ(sh.iccls[8]->parent_rank(), 0u);

  check_collectives_whole(tc, sh, alive, 110, patterned(2222, 0x99));
}

// ---------------------------------------------------------------------------
// Elastic shrink: a graceful leave() heals like a death but is accounted
// as a departure, and in-flight payloads still assemble.

TEST(SelfHeal, GracefulLeaveShrinksWithoutPayloadLoss) {
  const int n = 7;
  Shared sh;
  TestCluster tc(n);
  lmon::testing::FlightRecorderOnFailure flight(tc.machine);
  obs::Metrics metrics;
  tc.machine.set_metrics(&metrics);
  wire_heal_fabric(tc, sh, {comm::TopologyKind::KAry, 2}, n, kRndvAlways);
  ASSERT_TRUE(tc.run_until([&] { return sh.ready == n; }));

  std::set<std::uint32_t> alive;
  for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(n); ++r) {
    alive.insert(r);
  }
  alive.erase(1);
  sh.iccls[1]->leave();
  ASSERT_TRUE(tc.run_until([&] {
    return metrics.counter("iccl.heal.leaves_observed") >= 1.0 &&
           fabric_idle(sh, alive) && tree_healed(sh, alive);
  })) << "fabric never settled after the leave";
  check_reparented_tree(sh, alive);
  EXPECT_EQ(metrics.counter("iccl.heal.leaves"), 1.0);
  EXPECT_EQ(metrics.counter("iccl.heal.leaves_observed"), 1.0);
  EXPECT_EQ(metrics.counter("iccl.heal.give_ups"), 0.0);

  check_collectives_whole(tc, sh, alive, 120, patterned(kChunk + 50, 0xAB));
}

// Heal disabled keeps the historical semantics: the dead subtree stays
// detached and nobody reparents (regression guard for the default path).
TEST(SelfHeal, DisabledHealKeepsLegacyDropSemantics) {
  const int n = 7;
  Shared sh;
  TestCluster tc(n);
  comm::BootstrapSpec spec;
  spec.size = n;
  spec.topology = {comm::TopologyKind::KAry, 2};
  spec.port = cluster::kToolFabricBasePort;
  spec.session = "noheal";
  spec.rndv_threshold = kRndvAlways;
  for (int i = 0; i < n; ++i) {
    spec.hosts.push_back(tc.machine.compute_node(i).hostname());
  }
  std::vector<cluster::Pid> pids;
  for (std::uint32_t r = 0; r < spec.size; ++r) {
    cluster::SpawnOptions opts;
    opts.executable = "raw_heal";
    opts.args = comm::bootstrap_args(spec, r);
    auto res = tc.machine.compute_node(static_cast<int>(r))
                   .spawn(std::make_unique<RawHealDaemon>(&sh),
                          std::move(opts));
    ASSERT_TRUE(res.is_ok());
    pids.push_back(res.value);
  }
  ASSERT_TRUE(tc.run_until([&] { return sh.ready == n; }));
  ASSERT_FALSE(sh.iccls[3]->heal_enabled());

  tc.machine.find_process(pids[1])->exit(9);
  tc.simulator.run(tc.simulator.now() + sim::seconds(2));
  // Orphans 3/4 never re-dial anyone; their upstream link simply stays the
  // (dead) topology parent.
  ASSERT_TRUE(sh.iccls.count(3) != 0);
  EXPECT_EQ(sh.iccls[3]->parent_rank(), 1u);
  const auto kids = sh.iccls[0]->live_children();
  EXPECT_TRUE(std::find(kids.begin(), kids.end(), 3u) == kids.end());
}

}  // namespace
}  // namespace lmon::core
