// Platform-portability tests (paper §4's BlueGene/L port paragraph): the
// engine and APIs run unmodified on a different RM cost profile; only the
// RM-attributed regions change.
#include <gtest/gtest.h>

#include <memory>

#include "core/fe_api.hpp"
#include "tests/test_util.hpp"

namespace lmon {
namespace {

using testing::TestCluster;

struct Observed {
  bool ok = false;
  double total = 0;
  double launchmon = 0;
  core::Rpdtab proctable;
};

Observed run(int ndaemons, const cluster::CostModel& costs) {
  TestCluster tc(ndaemons, 0, costs);
  sim::Timeline timeline;
  sim::CostLedger ledger;
  tc.machine.set_timeline(&timeline);
  tc.machine.set_ledger(&ledger);

  Observed obs;
  bool done = false;
  Status status;
  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    (void)fe->init();
    auto sid = fe->create_session();
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    rm::JobSpec job{ndaemons, 8, "mpi_app", {}};
    fe->launch_and_spawn(sid.value, job, cfg,
                         [&, sid = sid.value](Status st) {
                           status = st;
                           done = true;
                           if (auto* pt = fe->proctable(sid)) {
                             obs.proctable = *pt;
                           }
                         });
  });
  EXPECT_TRUE(tc.run_until([&] { return done; }, sim::seconds(900)));
  if (!status.is_ok()) return obs;
  obs.ok = true;
  obs.total = sim::to_seconds(timeline.between("e0_fe_call", "e11_return"));
  obs.launchmon = sim::to_seconds(ledger.total("tracing")) +
                  sim::to_seconds(ledger.total("other"));
  return obs;
}

TEST(Platform, SameToolRunsUnmodifiedOnBlueGeneLikeRm) {
  const Observed atlas = run(16, cluster::CostModel{});
  const Observed bgl = run(16, cluster::CostModel::bluegene_like());
  ASSERT_TRUE(atlas.ok);
  ASSERT_TRUE(bgl.ok);
  // Identical functional outcome: the tool sees the same RPDTAB shape.
  EXPECT_EQ(atlas.proctable.size(), bgl.proctable.size());
  EXPECT_EQ(atlas.proctable.hosts().size(), bgl.proctable.hosts().size());
}

TEST(Platform, RmCostsDifferButLaunchmonOverheadDoesNot) {
  const Observed atlas = run(64, cluster::CostModel{});
  const Observed bgl = run(64, cluster::CostModel::bluegene_like());
  ASSERT_TRUE(atlas.ok);
  ASSERT_TRUE(bgl.ok);
  // "T(job) and T(daemon) ... significantly higher" on the mpirun platform:
  EXPECT_GT(bgl.total / atlas.total, 2.0);
  // "...LaunchMON has similar overheads on it": identical fixed costs.
  EXPECT_DOUBLE_EQ(atlas.launchmon, bgl.launchmon);
}

TEST(Platform, BlueGeneHasNoAdHocFallback) {
  // Compute nodes run no remote-access service (paper §2: BG/L and the
  // Cray XT3 "do not support direct remote access services"), so the ad hoc
  // baseline is not merely slow - its connections are refused outright.
  const cluster::CostModel bgl = cluster::CostModel::bluegene_like();
  EXPECT_FALSE(bgl.has_remote_access);

  TestCluster tc(2, 0, bgl);
  bool done = false;
  Status result;
  tc.spawn_fe([&](cluster::Process& self) {
    self.connect(tc.machine.compute_node(0).hostname(),
                 cluster::kRshDaemonPort,
                 [&](Status st, cluster::ChannelPtr) {
                   result = st;
                   done = true;
                 });
  });
  ASSERT_TRUE(tc.run_until([&] { return done; }));
  EXPECT_FALSE(result.is_ok());
}

}  // namespace
}  // namespace lmon
