// Calibration-anchor tests: assert that the simulated Atlas reproduces the
// paper's published result *shapes* (DESIGN.md §5). These are the
// regression guards for the reproduction itself - if a cost-model change
// breaks an anchor, a figure has silently drifted.
#include <gtest/gtest.h>

#include <memory>

#include "bench/ablation_rsh_lib.hpp"
#include "core/fe_api.hpp"
#include "core/perf_model.hpp"
#include "rsh/launchers.hpp"
#include "tests/test_util.hpp"
#include "tools/jobsnap/jobsnap_be.hpp"
#include "tools/jobsnap/jobsnap_fe.hpp"

namespace lmon {
namespace {

using testing::TestCluster;

double launch_and_spawn_seconds(int ndaemons, int tpn) {
  TestCluster tc(ndaemons);
  bool done = false;
  Status status;
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    (void)fe->init();
    auto sid = fe->create_session();
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    rm::JobSpec job{ndaemons, tpn, "mpi_app", {}};
    t0 = self.sim().now();
    fe->launch_and_spawn(sid.value, job, cfg, [&](Status st) {
      status = st;
      t1 = self.sim().now();
      done = true;
    });
  });
  EXPECT_TRUE(tc.run_until([&] { return done; }, sim::seconds(600)));
  EXPECT_TRUE(status.is_ok()) << status.to_string();
  return sim::to_seconds(t1 - t0);
}

TEST(Calibration, LaunchAndSpawnUnderOneSecondAt128Nodes) {
  // Paper Fig. 3: "launchAndSpawn scales well, taking less than one second
  // at 128 nodes (1024 MPI tasks)".
  const double secs = launch_and_spawn_seconds(128, 8);
  EXPECT_LT(secs, 1.0);
  EXPECT_GT(secs, 0.2);  // and it is not free
}

TEST(Calibration, LaunchmonShareAboutFivePercentAt128Nodes) {
  // Paper Fig. 3: "the portions due to LaunchMON constitute only about
  // 5.2% of that total time."
  TestCluster tc(128);
  sim::Timeline timeline;
  sim::CostLedger ledger;
  tc.machine.set_timeline(&timeline);
  tc.machine.set_ledger(&ledger);

  bool done = false;
  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    (void)fe->init();
    auto sid = fe->create_session();
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    rm::JobSpec job{128, 8, "mpi_app", {}};
    fe->launch_and_spawn(sid.value, job, cfg, [&](Status) { done = true; });
  });
  ASSERT_TRUE(tc.run_until([&] { return done; }));

  const double total =
      sim::to_seconds(timeline.between("e0_fe_call", "e11_return"));
  const double lmon = sim::to_seconds(ledger.total("tracing")) +
                      sim::to_seconds(ledger.total("rpdtab_fetch")) +
                      sim::to_seconds(ledger.total("other"));
  const double share = lmon / total;
  EXPECT_GT(share, 0.02);
  EXPECT_LT(share, 0.10);
  // Tracing cost is 18 ms at any scale (12 events x 1.5 ms).
  EXPECT_EQ(ledger.total("tracing"), sim::ms(18));
}

TEST(Calibration, SerialRshIsRoughlyQuarterSecondPerNode) {
  // Paper Fig. 6: 60.8 s at 256 nodes serial => ~237 ms per target.
  TestCluster tc(8);
  bool done = false;
  sim::Time t0 = 0;
  sim::Time t1 = 0;
  std::vector<rsh::LaunchTarget> targets;
  for (int i = 0; i < 8; ++i) {
    targets.push_back(rsh::LaunchTarget{
        tc.machine.compute_node(i).hostname(), "sleeperd", {}});
  }
  std::vector<cluster::ChannelPtr> keep;
  tc.spawn_fe([&](cluster::Process& self) {
    t0 = self.sim().now();
    rsh::SerialRshLauncher::launch(self, targets,
                                   [&](rsh::LaunchOutcome out) {
                                     ASSERT_TRUE(out.status.is_ok());
                                     keep = std::move(out.sessions);
                                     t1 = self.sim().now();
                                     done = true;
                                   });
  });
  ASSERT_TRUE(tc.run_until([&] { return done; }));
  const double per_node = sim::to_seconds(t1 - t0) / 8.0;
  EXPECT_NEAR(per_node, 0.237, 0.05);
}

TEST(Calibration, RshFailsNearThePaperForkLimit) {
  // Paper: the ad hoc launch "consistently fails" at 512 nodes; our model
  // puts the per-user limit at 500 concurrent helpers.
  const cluster::CostModel costs;
  EXPECT_GE(costs.rsh_fork_limit, 400);
  EXPECT_LT(costs.rsh_fork_limit, 512);
}

TEST(Calibration, SerialRshModelHitsThePaperRateAt256Nodes) {
  // Paper Fig. 6: serial ad hoc launching costs 60.8 s at 256 nodes. The
  // per-strategy analytic model's T(daemon) must land on that anchor.
  const cluster::CostModel costs;
  const core::PerfModel model(
      costs, static_cast<std::uint32_t>(costs.rm_launch_fanout));
  const auto p = model.predict(comm::LaunchStrategyKind::SerialRsh,
                               comm::TopologySpec{comm::TopologyKind::KAry, 0},
                               256, 8);
  EXPECT_NEAR(p.t_daemon, 60.8, 3.0);
}

TEST(Calibration, SerialRshConsistentlyFailsAt512ThroughTheFeApi) {
  // The paper's hard 512-node failure, end to end: the same launchAndSpawn
  // that works under rm-bulk fails under serial-rsh at 512 nodes, and the
  // analytic model predicts exactly that. Uses the bench's own measurement
  // harness (negative = launch failed).
  const int n = 512;
  EXPECT_LT(bench::measure_launch_and_spawn(
                comm::LaunchStrategyKind::SerialRsh,
                comm::TopologySpec{comm::TopologyKind::KAry, 0}, n, 1),
            0.0);

  const cluster::CostModel costs;
  const core::PerfModel model(
      costs, static_cast<std::uint32_t>(costs.rm_launch_fanout));
  EXPECT_TRUE(
      model.predicts_failure(comm::LaunchStrategyKind::SerialRsh, n));
  EXPECT_FALSE(
      model.predicts_failure(comm::LaunchStrategyKind::SerialRsh, 256));
}

TEST(Calibration, ModelCrossoversPutRmBulkFirstFromTheStart) {
  // Figure 4's story in crossover form: with the calibrated constants the
  // rsh tree overtakes the serial loop almost immediately, and the
  // RM-native launch wins outright from the smallest scales - there is no
  // regime where an ad hoc strategy is the right choice on Atlas.
  const cluster::CostModel costs;
  const core::PerfModel model(
      costs, static_cast<std::uint32_t>(costs.rm_launch_fanout));
  const comm::TopologySpec tree_topo{comm::TopologyKind::KAry, 8};
  const auto tree_over_serial =
      model.crossover(comm::LaunchStrategyKind::TreeRsh,
                      comm::LaunchStrategyKind::SerialRsh, tree_topo, 8);
  ASSERT_TRUE(tree_over_serial.has_value());
  EXPECT_LE(*tree_over_serial, 4);
  const auto rm_over_tree =
      model.crossover(comm::LaunchStrategyKind::RmBulk,
                      comm::LaunchStrategyKind::TreeRsh, tree_topo, 8);
  ASSERT_TRUE(rm_over_tree.has_value());
  EXPECT_LE(*rm_over_tree, 4);
}

TEST(Calibration, JobsnapLastDoublingIsSuperLinear) {
  // Paper Fig. 5: 512->1024 daemons more than doubles the time ("the
  // sub-optimal scaling characteristics of the RM functionality").
  auto run = [](int ndaemons) {
    TestCluster tc(ndaemons);
    tools::jobsnap::JobsnapBe::install(tc.machine);
    auto job =
        rm::run_job(tc.machine, rm::JobSpec{ndaemons, 8, "mpi_app", {}});
    EXPECT_TRUE(job.is_ok());
    tc.simulator.run(tc.simulator.now() + sim::seconds(10));
    tools::jobsnap::JobsnapOutcome out;
    cluster::SpawnOptions opts;
    opts.executable = "jobsnap_fe";
    auto res = tc.machine.front_end().spawn(
        std::make_unique<tools::jobsnap::JobsnapFe>(job.value, &out),
        std::move(opts));
    EXPECT_TRUE(res.is_ok());
    EXPECT_TRUE(tc.run_until([&] { return out.done; }, sim::seconds(900)));
    EXPECT_TRUE(out.status.is_ok());
    return sim::to_seconds(out.t_done - out.t_start);
  };
  const double at512 = run(512);
  const double at1024 = run(1024);
  EXPECT_GT(at1024 / at512, 2.0);   // super-linear doubling
  EXPECT_LT(at512, 1.5);            // paper: well under 1.5 s at 4096 tasks
  EXPECT_GT(at1024, 1.5);
  EXPECT_LT(at1024, 4.0);           // paper: 2.92 s
}

TEST(Calibration, DpclParseDominatedByLauncherImage) {
  const cluster::CostModel costs;
  const double parse_secs =
      costs.launcher_image_mb * sim::to_seconds(costs.dpcl_parse_per_mb);
  // Paper Table 1: ~34 s, flat.
  EXPECT_GT(parse_secs, 25.0);
  EXPECT_LT(parse_secs, 45.0);
}

}  // namespace
}  // namespace lmon
