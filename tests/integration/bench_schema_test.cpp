// Golden-file test for bench_ablation_rsh's machine-readable output: the
// BENCH_*.json trajectory tooling diffs these reports across PRs, so the
// key set and nesting must stay stable. The sweep runs at toy scale
// (n <= 16) through the exact code path the bench binary uses
// (bench/ablation_rsh_lib.hpp), the emitted JSON is reduced to its
// structural skeleton (keys + value types; see json_shape), and that
// skeleton is string-compared against the checked-in golden. Value drift
// passes; renaming, dropping, or ragged keys fail.
//
// To update the golden after an intentional schema change:
//   build/bench_ablation_rsh --json --max-nodes=16  (inspect the output)
//   then re-run this test with the new skeleton written to
//   tests/golden/bench_ablation_rsh.schema.txt (the failure message prints
//   the live skeleton verbatim).
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "bench/ablation_autotune_lib.hpp"
#include "bench/ablation_heal_lib.hpp"
#include "bench/ablation_iccl_lib.hpp"
#include "bench/ablation_mux_lib.hpp"
#include "bench/ablation_rsh_lib.hpp"
#include "bench/fig5_jobsnap_lib.hpp"
#include "bench/fig6_stat_lib.hpp"

#ifndef LMON_SOURCE_DIR
#error "LMON_SOURCE_DIR must point at the repo root (set by CMakeLists.txt)"
#endif

namespace lmon {
namespace {

std::string read_golden(const std::string& name) {
  const std::string path =
      std::string(LMON_SOURCE_DIR) + "/tests/golden/" + name;
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  std::string text = out.str();
  // Normalize the trailing newline editors/generators append.
  while (!text.empty() && (text.back() == '\n' || text.back() == '\r')) {
    text.pop_back();
  }
  return text;
}

TEST(BenchSchema, AblationRshJsonShapeMatchesGolden) {
  bench::RshAblationOptions opts;
  opts.max_nodes = 16;  // toy scale: same code path, seconds not minutes
  const bench::RshAblationReport report = bench::run_rsh_ablation(opts);
  const std::string json = bench::to_json(report);
  const std::string live_shape = bench::json_shape(json);

  const std::string golden =
      read_golden("bench_ablation_rsh.schema.txt");
  ASSERT_FALSE(golden.empty())
      << "missing golden file tests/golden/bench_ablation_rsh.schema.txt";
  EXPECT_EQ(live_shape, golden)
      << "bench_ablation_rsh --json schema drifted.\nlive skeleton:\n"
      << live_shape << "\nif intentional, update the golden file.";
}

TEST(BenchSchema, ReportIsWellFormedAtToyScale) {
  bench::RshAblationOptions opts;
  opts.max_nodes = 16;
  const bench::RshAblationReport report = bench::run_rsh_ablation(opts);

  // Every strategy in the registry appears, with one point per scale.
  ASSERT_EQ(report.strategies.size(), comm::kAllLaunchStrategies.size());
  ASSERT_FALSE(report.scales.empty());
  EXPECT_EQ(report.points.size(),
            report.strategies.size() * report.scales.size());

  // At toy scale nothing fails, and the model stays inside the bench's
  // own 15% residual gate.
  for (const auto& p : report.points) {
    EXPECT_TRUE(p.measured_ok) << p.strategy << " n=" << p.nodes;
    EXPECT_FALSE(p.model_predicts_failure) << p.strategy << " n=" << p.nodes;
  }
  EXPECT_LE(report.max_abs_residual_pct, 15.0);
  EXPECT_EQ(report.model_measured_disagreements, 0);

  // Crossovers solved: the ad hoc tree overtakes serial quickly, and the
  // paper's contribution wins outright.
  EXPECT_GT(report.tree_over_serial, 0);
  EXPECT_GT(report.rm_over_serial, 0);
  EXPECT_GT(report.rm_over_tree, 0);
}

TEST(BenchSchema, AblationIcclJsonShapeMatchesGolden) {
  const bench::IcclAblationReport report =
      bench::run_iccl_ablation(bench::IcclAblationOptions::smoke());
  const std::string json = bench::to_json(report);
  const std::string live_shape = bench::json_shape(json);

  const std::string golden = read_golden("bench_ablation_iccl.schema.txt");
  ASSERT_FALSE(golden.empty())
      << "missing golden file tests/golden/bench_ablation_iccl.schema.txt";
  EXPECT_EQ(live_shape, golden)
      << "bench_ablation_iccl --json schema drifted.\nlive skeleton:\n"
      << live_shape << "\nif intentional, update the golden file.";
}

TEST(BenchSchema, IcclReportIsWellFormedAtToyScale) {
  const bench::IcclAblationOptions opts = bench::IcclAblationOptions::smoke();
  const bench::IcclAblationReport report = bench::run_iccl_ablation(opts);

  // Both protocols appear, with one point per (topology, payload).
  ASSERT_EQ(report.protocols.size(), 2u);
  ASSERT_EQ(report.topologies.size(), opts.topologies.size());
  EXPECT_EQ(report.points.size(), report.topologies.size() *
                                      report.protocols.size() *
                                      opts.payloads.size());
  EXPECT_EQ(report.crossovers.size(), report.topologies.size());

  // The bench's own gates hold at toy scale: every point measured, tight
  // residuals, measured and modeled crossovers agree, and rendezvous beats
  // eager at the largest swept payload on every topology.
  EXPECT_EQ(report.measurement_failures, 0);
  for (const auto& p : report.points) {
    EXPECT_TRUE(p.measured_ok) << p.topology << " " << p.protocol;
  }
  EXPECT_LE(report.max_abs_residual_pct, 15.0);
  EXPECT_LE(report.max_abs_crossover_pct, 15.0);
  EXPECT_TRUE(report.rendezvous_wins_at_max_everywhere);
  for (const auto& c : report.crossovers) {
    EXPECT_GT(c.measured_bytes, 0.0) << c.topology;
    EXPECT_GT(c.model_bytes, 0.0) << c.topology;
  }

  // The model-only scatter sweep rides along: one point per
  // (topology, payload) and one crossover verdict per topology.
  EXPECT_EQ(report.scatter_model.size(),
            report.topologies.size() * opts.payloads.size());
  EXPECT_EQ(report.scatter_crossovers.size(), report.topologies.size());
  for (const auto& p : report.scatter_model) {
    EXPECT_GE(p.eager_s, 0.0) << p.topology;
    EXPECT_GE(p.rndv_s, 0.0) << p.topology;
  }
}

TEST(BenchSchema, AblationAutotuneJsonShapeMatchesGolden) {
  const bench::AutotuneAblationReport report =
      bench::run_autotune_ablation(bench::AutotuneAblationOptions::smoke());
  const std::string json = bench::to_json(report);
  const std::string live_shape = bench::json_shape(json);

  const std::string golden = read_golden("bench_ablation_autotune.schema.txt");
  ASSERT_FALSE(golden.empty())
      << "missing golden file tests/golden/bench_ablation_autotune.schema.txt";
  EXPECT_EQ(live_shape, golden)
      << "bench_ablation_autotune --json schema drifted.\nlive skeleton:\n"
      << live_shape << "\nif intentional, update the golden file.";
}

TEST(BenchSchema, AutotuneReportIsWellFormedAtToyScale) {
  const bench::AutotuneAblationOptions opts =
      bench::AutotuneAblationOptions::smoke();
  const bench::AutotuneAblationReport report =
      bench::run_autotune_ablation(opts);

  ASSERT_EQ(report.points.size(), opts.platforms.size() *
                                      opts.scales.size() *
                                      opts.tasks_per_node.size());
  // The bench's own gates hold at toy scale: every session measured, auto
  // matches or beats the hand-picked best within tolerance, the tuner's
  // prediction lands within the residual gate, and no predicted-failure
  // strategy is ever selected (the sweep includes bluegene, where every
  // rsh flavor predicts failure).
  EXPECT_EQ(report.measurement_failures, 0);
  EXPECT_TRUE(report.auto_matches_or_beats_everywhere);
  EXPECT_LE(report.max_auto_vs_best_pct, opts.tolerance_pct);
  EXPECT_LE(report.max_abs_residual_pct, 15.0);
  EXPECT_EQ(report.predicted_failure_selections, 0);
  for (const auto& p : report.points) {
    EXPECT_TRUE(p.auto_ok) << p.platform << " n=" << p.nodes;
    EXPECT_TRUE(p.best_ok) << p.platform << " n=" << p.nodes;
    EXPECT_FALSE(p.predicted_failure_selected)
        << p.platform << " n=" << p.nodes << " picked " << p.auto_strategy;
  }
}

TEST(BenchSchema, Fig5JobsnapJsonShapeMatchesGolden) {
  const bench::JobsnapReport report =
      bench::run_jobsnap_sweep(bench::JobsnapOptions::smoke());
  const std::string json = bench::to_json(report);
  const std::string live_shape = bench::json_shape(json);

  const std::string golden = read_golden("bench_fig5_jobsnap.schema.txt");
  ASSERT_FALSE(golden.empty())
      << "missing golden file tests/golden/bench_fig5_jobsnap.schema.txt";
  EXPECT_EQ(live_shape, golden)
      << "bench_fig5_jobsnap --json schema drifted.\nlive skeleton:\n"
      << live_shape << "\nif intentional, update the golden file.";

  // The sweep itself succeeds at toy scale, and the metrics block carries
  // accumulated protocol counters (the channel layer counts every send).
  for (const auto& p : report.points) {
    EXPECT_TRUE(p.ok) << "jobsnap failed at n=" << p.daemons;
    EXPECT_GT(p.total_s, 0.0);
    EXPECT_GE(p.total_s, p.init_to_spawn_s);
  }
  EXPECT_GT(report.metrics.counter("net.messages_total"), 0.0);
  EXPECT_NE(report.metrics.histogram("net.message_bytes"), nullptr);
}

TEST(BenchSchema, Fig6StatJsonShapeMatchesGolden) {
  const bench::StatBenchReport report =
      bench::run_stat_sweep(bench::StatBenchOptions::smoke());
  const std::string json = bench::to_json(report);
  const std::string live_shape = bench::json_shape(json);

  const std::string golden = read_golden("bench_fig6_stat.schema.txt");
  ASSERT_FALSE(golden.empty())
      << "missing golden file tests/golden/bench_fig6_stat.schema.txt";
  EXPECT_EQ(live_shape, golden)
      << "bench_fig6_stat --json schema drifted.\nlive skeleton:\n"
      << live_shape << "\nif intentional, update the golden file.";

  // Both modes succeed at toy scale, LaunchMON wins, and the TBON layer's
  // packet counters made it into the accumulated metrics block.
  ASSERT_EQ(report.points.size(), 2 * report.scales.size());
  for (std::size_t i = 0; i + 1 < report.points.size(); i += 2) {
    const auto& adhoc = report.points[i];
    const auto& lmon = report.points[i + 1];
    EXPECT_TRUE(adhoc.ok) << "adhoc failed at n=" << adhoc.daemons;
    EXPECT_TRUE(lmon.ok) << "launchmon failed at n=" << lmon.daemons;
  }
  EXPECT_GT(report.metrics.counter("tbon.packets"), 0.0);
  EXPECT_GT(report.metrics.counter("net.messages_total"), 0.0);
}

TEST(BenchSchema, AblationHealJsonShapeMatchesGolden) {
  const bench::HealAblationReport report =
      bench::run_heal_ablation(bench::HealAblationOptions::smoke());
  const std::string json = bench::to_json(report);
  const std::string live_shape = bench::json_shape(json);

  const std::string golden = read_golden("bench_ablation_heal.schema.txt");
  ASSERT_FALSE(golden.empty())
      << "missing golden file tests/golden/bench_ablation_heal.schema.txt";
  EXPECT_EQ(live_shape, golden)
      << "bench_ablation_heal --json schema drifted.\nlive skeleton:\n"
      << live_shape << "\nif intentional, update the golden file.";
}

TEST(BenchSchema, HealReportIsWellFormedAtToyScale) {
  const bench::HealAblationOptions opts =
      bench::HealAblationOptions::smoke();
  const bench::HealAblationReport report = bench::run_heal_ablation(opts);

  // One point per (topology, kill fraction), and the bench's own gates
  // hold at toy scale: every point heals inside the budget and the healed
  // fabric neither loses nor duplicates a single payload.
  ASSERT_EQ(report.points.size(),
            opts.topologies.size() * opts.kill_fractions.size());
  EXPECT_TRUE(report.all_recovered);
  EXPECT_LE(report.max_recovery_s, report.recovery_gate_s);
  EXPECT_EQ(report.total_lost_payloads, 0);
  EXPECT_EQ(report.total_duplicates, 0);
  EXPECT_EQ(report.total_give_ups, 0.0);
  for (const auto& p : report.points) {
    EXPECT_TRUE(p.recovered)
        << p.topology << " fraction=" << p.kill_fraction;
    EXPECT_GE(p.recovery_s, 0.0);
    // Reattaches and adoptions pair up: every orphan that re-Helloed was
    // adopted by exactly one survivor.
    EXPECT_EQ(p.reattaches, p.adoptions)
        << p.topology << " fraction=" << p.kill_fraction;
  }
}

TEST(BenchSchema, AblationMuxJsonShapeMatchesGolden) {
  const bench::MuxAblationReport report =
      bench::run_mux_ablation(bench::MuxAblationOptions::smoke());
  const std::string json = bench::to_json(report);
  const std::string live_shape = bench::json_shape(json);

  const std::string golden = read_golden("bench_ablation_mux.schema.txt");
  ASSERT_FALSE(golden.empty())
      << "missing golden file tests/golden/bench_ablation_mux.schema.txt";
  EXPECT_EQ(live_shape, golden)
      << "bench_ablation_mux --json schema drifted.\nlive skeleton:\n"
      << live_shape << "\nif intentional, update the golden file.";
}

TEST(BenchSchema, MuxReportIsWellFormedAtToyScale) {
  const bench::MuxAblationOptions opts = bench::MuxAblationOptions::smoke();
  const bench::MuxAblationReport report = bench::run_mux_ablation(opts);

  // One point per (session count, arrival interval), every arrival attached
  // (admission never fires at toy scale), and the bench's own gate holds:
  // a virtual attach onto the shared tree beats per-session bootstrap p99
  // by at least the configured factor.
  ASSERT_EQ(report.points.size(),
            opts.session_counts.size() * opts.arrival_intervals_ms.size());
  EXPECT_EQ(report.baseline.measured, opts.baseline_samples);
  EXPECT_GT(report.baseline.p99_ms, 0.0);
  for (const auto& p : report.points) {
    EXPECT_EQ(p.attached, p.sessions)
        << "sessions=" << p.sessions << " dt=" << p.arrival_interval_ms;
    EXPECT_EQ(p.rejected, 0);
    EXPECT_GT(p.attach_p99_ms, 0.0);
    EXPECT_GT(p.throughput_sps, 0.0);
    EXPECT_GE(p.speedup_p99, opts.speedup_gate);
  }
  EXPECT_EQ(report.total_rejected, 0);
  EXPECT_GE(report.min_speedup_at_scale, opts.speedup_gate);
  EXPECT_TRUE(report.gate_met);
}

/// The skeleton reducer itself: malformed/ragged rows must be visible.
TEST(BenchSchema, JsonShapeFlagsRaggedRows) {
  EXPECT_EQ(bench::json_shape("{\"a\": 1, \"b\": [true, false]}"),
            "{a:num,b:[bool]}");
  EXPECT_EQ(bench::json_shape("[{\"x\": 1}, {\"x\": 2}]"), "[{x:num}]");
  // A row with a missing key produces a second distinct element shape.
  EXPECT_EQ(bench::json_shape("[{\"x\": 1}, {\"y\": 2}]"),
            "[{x:num}|{y:num}]");
  EXPECT_EQ(bench::json_shape("{\"s\": \"v\", \"n\": null}"),
            "{s:str,n:null}");
}

}  // namespace
}  // namespace lmon
