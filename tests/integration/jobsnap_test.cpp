// Integration tests for the Jobsnap tool (paper §5.1, Fig. 4/5).
#include <gtest/gtest.h>

#include "tools/jobsnap/jobsnap_be.hpp"
#include "tools/jobsnap/jobsnap_fe.hpp"
#include "rm/resource_manager.hpp"
#include "tests/test_util.hpp"

namespace lmon {
namespace {

using testing::TestCluster;
using tools::jobsnap::JobsnapFe;
using tools::jobsnap::JobsnapOutcome;

cluster::Pid start_job(TestCluster& tc, int nnodes, int tpn) {
  auto res = rm::run_job(tc.machine, rm::JobSpec{nnodes, tpn, "mpi_app", {}});
  EXPECT_TRUE(res.is_ok());
  tc.simulator.run(tc.simulator.now() + sim::seconds(3));
  return res.value;
}

JobsnapOutcome snap(TestCluster& tc, cluster::Pid launcher) {
  tools::jobsnap::JobsnapBe::install(tc.machine);
  JobsnapOutcome out;
  cluster::SpawnOptions opts;
  opts.executable = "jobsnap_fe";
  opts.image_mb = 3.0;
  auto res = tc.machine.front_end().spawn(
      std::make_unique<JobsnapFe>(launcher, &out), std::move(opts));
  EXPECT_TRUE(res.is_ok());
  EXPECT_TRUE(tc.run_until([&] { return out.done; }));
  return out;
}

TEST(Jobsnap, ProducesOneLinePerTask) {
  TestCluster tc(8);
  const cluster::Pid launcher = start_job(tc, 8, 8);
  JobsnapOutcome out = snap(tc, launcher);

  ASSERT_TRUE(out.status.is_ok()) << out.status.to_string();
  EXPECT_EQ(out.tasks, 64u);
  // Header + one line per task.
  const auto lines = static_cast<std::size_t>(
      std::count(out.report.begin(), out.report.end(), '\n'));
  EXPECT_EQ(lines, 65u);
  // Ranks appear in order; spot-check first and last.
  EXPECT_NE(out.report.find("mpi_app"), std::string::npos);
  EXPECT_NE(out.report.find("atlas1"), std::string::npos);
}

TEST(Jobsnap, SnapshotsCarryLiveProcState) {
  TestCluster tc(4);
  const cluster::Pid launcher = start_job(tc, 4, 4);
  // Let the app accumulate /proc state.
  tc.simulator.run(tc.simulator.now() + sim::seconds(2));
  JobsnapOutcome out = snap(tc, launcher);
  ASSERT_TRUE(out.status.is_ok());
  // All tasks running, nonzero utime (the app ticks every 50 ms).
  const auto lines = std::count(out.report.begin(), out.report.end(), '\n');
  EXPECT_EQ(lines, 17);
  EXPECT_EQ(out.report.find(" Z "), std::string::npos);
}

TEST(Jobsnap, TimingSplitsLaunchFromCollection) {
  TestCluster tc(16);
  const cluster::Pid launcher = start_job(tc, 16, 8);
  JobsnapOutcome out = snap(tc, launcher);
  ASSERT_TRUE(out.status.is_ok());
  EXPECT_GT(out.t_spawned, out.t_start);
  EXPECT_GT(out.t_done, out.t_spawned);
  // At 16 daemons everything is sub-second (paper Fig. 5 starts ~0.6 s).
  EXPECT_LT(sim::to_seconds(out.t_done - out.t_start), 1.5);
}

TEST(Jobsnap, DetachLeavesJobRunning) {
  TestCluster tc(4);
  const cluster::Pid launcher = start_job(tc, 4, 2);
  JobsnapOutcome out = snap(tc, launcher);
  ASSERT_TRUE(out.status.is_ok());
  tc.simulator.run(tc.simulator.now() + sim::seconds(1));
  cluster::Process* srun = tc.machine.find_process(launcher);
  ASSERT_NE(srun, nullptr);
  EXPECT_EQ(srun->state(), cluster::ProcState::Running);
  // And the daemons are gone (session teardown killed them).
  int jobsnap_daemons = 0;
  for (int i = 0; i < tc.machine.num_compute_nodes(); ++i) {
    for (cluster::Process* p : tc.machine.compute_node(i).live_processes()) {
      if (p->options().executable == "jobsnap_be") ++jobsnap_daemons;
    }
  }
  EXPECT_EQ(jobsnap_daemons, 0);
}

}  // namespace
}  // namespace lmon
