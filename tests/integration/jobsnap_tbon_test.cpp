// Tests for the TBON-based Jobsnap variant (the paper's §5.1 future-work
// item): it must produce the identical report to the flat-gather tool.
#include <gtest/gtest.h>

#include <memory>

#include "tests/test_util.hpp"
#include "tools/jobsnap/jobsnap_be.hpp"
#include "tools/jobsnap/jobsnap_fe.hpp"
#include "tools/jobsnap/jobsnap_tbon.hpp"

namespace lmon::tools::jobsnap {
namespace {

using lmon::testing::TestCluster;

cluster::Pid start_job(TestCluster& tc, int nnodes, int tpn) {
  auto res = rm::run_job(tc.machine, rm::JobSpec{nnodes, tpn, "mpi_app", {}});
  EXPECT_TRUE(res.is_ok());
  tc.simulator.run(tc.simulator.now() + sim::seconds(3));
  return res.value;
}

TEST(JobsnapTbon, ProducesCompleteRankSortedReport) {
  TestCluster tc(8);
  JobsnapTbonBe::install(tc.machine);
  const cluster::Pid launcher = start_job(tc, 8, 4);

  JobsnapTbonOutcome out;
  cluster::SpawnOptions opts;
  opts.executable = "jobsnap_tfe";
  auto res = tc.machine.front_end().spawn(
      std::make_unique<JobsnapTbonFe>(launcher, &out), std::move(opts));
  ASSERT_TRUE(res.is_ok());
  ASSERT_TRUE(tc.run_until([&] { return out.done; }));
  ASSERT_TRUE(out.status.is_ok()) << out.status.to_string();

  EXPECT_EQ(out.tasks, 32u);
  EXPECT_EQ(std::count(out.report.begin(), out.report.end(), '\n'), 33);
  // Rank-sorted: rank 0 line precedes rank 31 line.
  EXPECT_LT(out.report.find("atlas1"), out.report.rfind("atlas8"));
}

TEST(JobsnapTbon, MatchesFlatGatherVariant) {
  // Same cluster seed + same moment => identical /proc state; the two
  // variants must emit byte-identical reports (after the header).
  auto run_flat = [](std::string* report) {
    TestCluster tc(4);
    JobsnapBe::install(tc.machine);
    const cluster::Pid launcher = start_job(tc, 4, 4);
    JobsnapOutcome out;
    cluster::SpawnOptions opts;
    opts.executable = "jobsnap_fe";
    ASSERT_TRUE(tc.machine.front_end()
                    .spawn(std::make_unique<JobsnapFe>(launcher, &out),
                           std::move(opts))
                    .is_ok());
    ASSERT_TRUE(tc.run_until([&] { return out.done; }));
    ASSERT_TRUE(out.status.is_ok());
    *report = out.report;
  };
  auto run_tbon = [](std::string* report) {
    TestCluster tc(4);
    JobsnapTbonBe::install(tc.machine);
    const cluster::Pid launcher = start_job(tc, 4, 4);
    JobsnapTbonOutcome out;
    cluster::SpawnOptions opts;
    opts.executable = "jobsnap_tfe";
    ASSERT_TRUE(tc.machine.front_end()
                    .spawn(std::make_unique<JobsnapTbonFe>(launcher, &out),
                           std::move(opts))
                    .is_ok());
    ASSERT_TRUE(tc.run_until([&] { return out.done; }));
    ASSERT_TRUE(out.status.is_ok());
    *report = out.report;
  };

  std::string flat;
  std::string tbon;
  run_flat(&flat);
  run_tbon(&tbon);
  ASSERT_FALSE(flat.empty());
  // The snapshots are taken a few ms apart in sim time, so utime columns
  // can differ by one tick; compare the stable identity columns.
  auto identity_columns = [](const std::string& report) {
    std::string out;
    std::size_t pos = 0;
    while (pos < report.size()) {
      std::size_t nl = report.find('\n', pos);
      if (nl == std::string::npos) nl = report.size();
      out += report.substr(pos, std::min<std::size_t>(45, nl - pos));
      out += '\n';
      pos = nl + 1;
    }
    return out;
  };
  EXPECT_EQ(identity_columns(flat), identity_columns(tbon));
}

TEST(JobsnapTbon, DetachReapsTbonDaemons) {
  TestCluster tc(4);
  JobsnapTbonBe::install(tc.machine);
  const cluster::Pid launcher = start_job(tc, 4, 2);
  JobsnapTbonOutcome out;
  cluster::SpawnOptions opts;
  opts.executable = "jobsnap_tfe";
  ASSERT_TRUE(tc.machine.front_end()
                  .spawn(std::make_unique<JobsnapTbonFe>(launcher, &out),
                         std::move(opts))
                  .is_ok());
  ASSERT_TRUE(tc.run_until([&] { return out.done; }));
  tc.simulator.run(tc.simulator.now() + sim::seconds(2));
  int live = 0;
  for (int i = 0; i < tc.machine.num_compute_nodes(); ++i) {
    for (cluster::Process* p : tc.machine.compute_node(i).live_processes()) {
      if (p->options().executable == "jobsnap_tbe") ++live;
    }
  }
  EXPECT_EQ(live, 0);
  EXPECT_EQ(tc.machine.find_process(launcher)->state(),
            cluster::ProcState::Running);
}

}  // namespace
}  // namespace lmon::tools::jobsnap
