// Integration tests for STAT (paper §5.2, Fig. 6): both startup paths.
#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "rm/resource_manager.hpp"
#include "tbon/comm_node.hpp"
#include "tests/test_util.hpp"
#include "tools/stat/stat_be.hpp"
#include "tools/stat/stat_fe.hpp"

namespace lmon {
namespace {

using testing::TestCluster;
using tools::stat::StartupMode;
using tools::stat::StatConfig;
using tools::stat::StatFe;
using tools::stat::StatOutcome;

struct JobHandle {
  cluster::Pid launcher;
  std::vector<std::string> hosts;
};

JobHandle start_job(TestCluster& tc, int nnodes, int tpn) {
  auto res = rm::run_job(tc.machine, rm::JobSpec{nnodes, tpn, "mpi_app", {}});
  EXPECT_TRUE(res.is_ok());
  tc.simulator.run(tc.simulator.now() + sim::seconds(3));
  JobHandle h;
  h.launcher = res.value;
  for (int i = 0; i < nnodes; ++i) {
    h.hosts.push_back(tc.machine.compute_node(i).hostname());
  }
  return h;
}

StatOutcome run_stat(TestCluster& tc, StatConfig cfg) {
  tools::stat::StatBe::install(tc.machine);
  tbon::AdHocCommNode::install(tc.machine);
  tbon::LmonCommNode::install(tc.machine);
  StatOutcome out;
  cluster::SpawnOptions opts;
  opts.executable = "stat_fe";
  opts.image_mb = 12.0;
  auto res = tc.machine.front_end().spawn(
      std::make_unique<StatFe>(std::move(cfg), &out), std::move(opts));
  EXPECT_TRUE(res.is_ok());
  EXPECT_TRUE(tc.run_until([&] { return out.done; }, sim::seconds(600)));
  return out;
}

void check_tree(const StatOutcome& out, int expected_tasks) {
  ASSERT_TRUE(out.tree.has_value());
  EXPECT_EQ(out.tree->all_ranks().size(),
            static_cast<std::size_t>(expected_tasks));
  // The synthetic app produces a handful of behaviour classes, far fewer
  // than tasks - the whole point of the prefix-tree reduction.
  EXPECT_GE(out.classes.size(), 2u);
  EXPECT_LE(out.classes.size(), 8u);
  // Classes partition the ranks.
  std::set<std::int32_t> seen;
  std::size_t total = 0;
  for (const auto& c : out.classes) {
    total += c.ranks.size();
    seen.insert(c.ranks.begin(), c.ranks.end());
  }
  EXPECT_EQ(total, seen.size());
  EXPECT_EQ(seen.size(), static_cast<std::size_t>(expected_tasks));
  // Every class path starts at the program entry.
  for (const auto& c : out.classes) {
    ASSERT_FALSE(c.path.empty());
    EXPECT_EQ(c.path.front(), "_start");
  }
}

TEST(Stat, LaunchMonOneDeepGathersMergedTree) {
  TestCluster tc(8);
  JobHandle job = start_job(tc, 8, 8);
  StatConfig cfg;
  cfg.mode = StartupMode::LaunchMon;
  cfg.launcher_pid = job.launcher;
  StatOutcome out = run_stat(tc, cfg);
  ASSERT_TRUE(out.status.is_ok()) << out.status.to_string();
  check_tree(out, 64);
  EXPECT_GT(out.t_tree_connected, out.t_start);
  EXPECT_GT(out.t_sampled, out.t_tree_connected);
}

TEST(Stat, AdHocRshOneDeepGathersSameTree) {
  TestCluster tc(8);
  JobHandle job = start_job(tc, 8, 8);
  StatConfig cfg;
  cfg.mode = StartupMode::AdHocRsh;
  cfg.launcher_pid = job.launcher;
  cfg.adhoc_hosts = job.hosts;  // manual host list, as the paper laments
  StatOutcome out = run_stat(tc, cfg);
  ASSERT_TRUE(out.status.is_ok()) << out.status.to_string();
  check_tree(out, 64);
}

TEST(Stat, LaunchMonIsFasterThanAdHocAtModestScale) {
  const int nodes = 16;
  double lmon_secs = 0;
  double adhoc_secs = 0;
  {
    TestCluster tc(nodes);
    JobHandle job = start_job(tc, nodes, 8);
    StatConfig cfg;
    cfg.mode = StartupMode::LaunchMon;
    cfg.launcher_pid = job.launcher;
    StatOutcome out = run_stat(tc, cfg);
    ASSERT_TRUE(out.status.is_ok());
    lmon_secs = out.launch_connect_seconds();
  }
  {
    TestCluster tc(nodes);
    JobHandle job = start_job(tc, nodes, 8);
    StatConfig cfg;
    cfg.mode = StartupMode::AdHocRsh;
    cfg.launcher_pid = job.launcher;
    cfg.adhoc_hosts = job.hosts;
    StatOutcome out = run_stat(tc, cfg);
    ASSERT_TRUE(out.status.is_ok());
    adhoc_secs = out.launch_connect_seconds();
  }
  // Paper Fig. 6: LaunchMON wins even at 4 nodes (0.46 s vs 0.77 s) and the
  // gap widens linearly; at 16 nodes ad hoc should cost several times more.
  EXPECT_LT(lmon_secs, adhoc_secs);
  EXPECT_GT(adhoc_secs / lmon_secs, 2.0);
}

TEST(Stat, AdHocFailsPastTheForkLimit) {
  // The paper: "At 512 compute nodes, the ad hoc approach consistently
  // fails when forking an rsh process." Use a lowered limit to keep the
  // test fast: behaviourally identical.
  cluster::CostModel costs;
  costs.rsh_fork_limit = 24;
  TestCluster tc(32, 0, costs);
  JobHandle job = start_job(tc, 32, 2);
  StatConfig cfg;
  cfg.mode = StartupMode::AdHocRsh;
  cfg.launcher_pid = job.launcher;
  cfg.adhoc_hosts = job.hosts;
  StatOutcome out = run_stat(tc, cfg);
  EXPECT_FALSE(out.status.is_ok());
  EXPECT_EQ(out.status.rc(), Rc::Esys);
}

TEST(Stat, LaunchMonSurvivesWhereAdHocFails) {
  cluster::CostModel costs;
  costs.rsh_fork_limit = 24;
  TestCluster tc(32, 0, costs);
  JobHandle job = start_job(tc, 32, 2);
  StatConfig cfg;
  cfg.mode = StartupMode::LaunchMon;
  cfg.launcher_pid = job.launcher;
  StatOutcome out = run_stat(tc, cfg);
  ASSERT_TRUE(out.status.is_ok()) << out.status.to_string();
  check_tree(out, 64);
}

TEST(Stat, DeepTopologyViaMiddlewareApi) {
  TestCluster tc(16, /*middleware=*/4);
  JobHandle job = start_job(tc, 16, 4);
  StatConfig cfg;
  cfg.mode = StartupMode::LaunchMon;
  cfg.launcher_pid = job.launcher;
  cfg.n_comm_nodes = 4;
  cfg.tbon_fanout = 4;
  StatOutcome out = run_stat(tc, cfg);
  ASSERT_TRUE(out.status.is_ok()) << out.status.to_string();
  check_tree(out, 64);
}

TEST(Stat, ChunkStreamedSampleMatchesWholePayloadByteForByte) {
  // Shrinking the chunk threshold to a few bytes makes every back end
  // flush per-task partial trees (UpPart) and every interior node
  // early-flush its accumulator, so the whole sample flows as
  // chunk-granularity partial aggregates. The merged tree at the FE must
  // be byte-identical to the whole-payload run - the associativity
  // contract the in-tree fold depends on.
  auto run_with_chunk = [](std::uint32_t chunk_bytes, obs::Metrics* metrics) {
    cluster::CostModel costs;
    costs.iccl_rndv_chunk_bytes = chunk_bytes;
    TestCluster tc(16, /*middleware=*/4, costs);
    tc.machine.set_metrics(metrics);
    JobHandle job = start_job(tc, 16, 4);
    StatConfig cfg;
    cfg.mode = StartupMode::LaunchMon;
    cfg.launcher_pid = job.launcher;
    cfg.n_comm_nodes = 4;
    cfg.tbon_fanout = 4;
    StatOutcome out = run_stat(tc, cfg);
    tc.machine.set_metrics(nullptr);
    return out;
  };
  obs::Metrics streamed_metrics;
  obs::Metrics whole_metrics;
  StatOutcome streamed = run_with_chunk(64, &streamed_metrics);
  StatOutcome whole = run_with_chunk(64 * 1024, &whole_metrics);
  // The tiny chunk really exercised the partial-aggregate path; the
  // default chunk kept the toy-scale sample whole.
  EXPECT_GT(streamed_metrics.counter("tbon.up_parts"), 0.0);
  EXPECT_EQ(whole_metrics.counter("tbon.up_parts"), 0.0);
  ASSERT_TRUE(streamed.status.is_ok()) << streamed.status.to_string();
  ASSERT_TRUE(whole.status.is_ok()) << whole.status.to_string();
  check_tree(streamed, 64);
  check_tree(whole, 64);
  ASSERT_TRUE(streamed.tree.has_value());
  ASSERT_TRUE(whole.tree.has_value());
  EXPECT_EQ(streamed.tree->pack(), whole.tree->pack());
  EXPECT_EQ(streamed.classes.size(), whole.classes.size());
}

}  // namespace
}  // namespace lmon
