// Integration tests for the Middleware API (paper §3.4): personality
// handles, separate allocations, RPDTAB distribution to TBON daemons.
#include <gtest/gtest.h>

#include <memory>

#include "core/fe_api.hpp"
#include "core/mw_api.hpp"
#include "tests/test_util.hpp"

namespace lmon {
namespace {

using testing::TestCluster;

struct MwState {
  std::map<std::uint32_t, std::string> personalities;  // rank -> host
  std::map<std::uint32_t, std::size_t> proctable_sizes;
  std::map<std::uint32_t, Bytes> usrdata;
  int ready = 0;
};

class ProbeMwDaemon : public cluster::Program {
 public:
  explicit ProbeMwDaemon(MwState* state) : state_(state) {}
  [[nodiscard]] std::string_view name() const override { return "probe_mw"; }

  void on_start(cluster::Process& self) override {
    mw_ = std::make_unique<core::MiddleWare>(self);
    core::MiddleWare::Callbacks cbs;
    cbs.on_init = [this, &self](const core::Rpdtab& table,
                                const Bytes& usrdata,
                                std::function<void(Status)> done) {
      state_->personalities[mw_->rank()] = self.node().hostname();
      state_->proctable_sizes[mw_->rank()] = table.size();
      state_->usrdata[mw_->rank()] = usrdata;
      done(Status::ok());
    };
    cbs.on_ready = [this](Status st) {
      if (st.is_ok()) state_->ready += 1;
    };
    ASSERT_TRUE(mw_->init(std::move(cbs)).is_ok());
  }

  static void install(cluster::Machine& machine, MwState* state) {
    cluster::ProgramImage image;
    image.image_mb = 5.0;
    image.factory = [state](const std::vector<std::string>&) {
      return std::make_unique<ProbeMwDaemon>(state);
    };
    machine.install_program("probe_mw", std::move(image));
  }

 private:
  MwState* state_;
  std::unique_ptr<core::MiddleWare> mw_;
};

TEST(MiddleWare, DaemonsGetPersonalitiesAndJobRpdtab) {
  TestCluster tc(8, /*middleware=*/4);
  MwState state;
  ProbeMwDaemon::install(tc.machine, &state);

  std::shared_ptr<core::FrontEnd> fe;
  int sid = -1;
  bool be_done = false;
  bool mw_done = false;
  Status be_status;
  Status mw_status;

  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    ASSERT_TRUE(fe->init().is_ok());
    sid = fe->create_session().value;
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    rm::JobSpec job{8, 4, "mpi_app", {}};
    fe->launch_and_spawn(sid, job, cfg, [&](Status st) {
      be_status = st;
      be_done = true;
      ASSERT_TRUE(st.is_ok()) << st.to_string();
      core::FrontEnd::SpawnConfig mw_cfg;
      mw_cfg.daemon_exe = "probe_mw";
      mw_cfg.fe_to_be_data = Bytes{0xAB};
      fe->launch_mw_daemons(sid, 4, mw_cfg, [&](Status mst) {
        mw_status = mst;
        mw_done = true;
      });
    });
  });

  ASSERT_TRUE(tc.run_until([&] { return be_done && mw_done; }));
  ASSERT_TRUE(mw_status.is_ok()) << mw_status.to_string();
  ASSERT_TRUE(tc.run_until([&] { return state.ready == 4; }));

  // "assigns to each simultaneously launched TBON daemon a unique
  // personality handle that is similar to an MPI rank"
  ASSERT_EQ(state.personalities.size(), 4u);
  for (std::uint32_t r = 0; r < 4; ++r) {
    ASSERT_TRUE(state.personalities.count(r)) << "missing personality " << r;
  }
  // MW daemons run on the middleware partition, not on job nodes.
  std::set<std::string> mw_hosts;
  for (const auto& [rank, host] : state.personalities) {
    mw_hosts.insert(host);
  }
  const core::Rpdtab* pt = fe->proctable(sid);
  ASSERT_NE(pt, nullptr);
  for (const auto& h : pt->hosts()) {
    EXPECT_EQ(mw_hosts.count(h), 0u) << "MW daemon landed on a job node";
  }

  // "LaunchMON's middleware initialization also distributes the RPDTAB to
  // the TBON daemons."
  for (const auto& [rank, size] : state.proctable_sizes) {
    EXPECT_EQ(size, 32u);  // 8 nodes x 4 tasks
  }
  // Piggybacked MW tool data arrived everywhere.
  for (const auto& [rank, data] : state.usrdata) {
    EXPECT_EQ(data, Bytes{0xAB});
  }
  // The MW daemon table is exposed to the tool.
  const core::Rpdtab* mw_table = fe->mw_table(sid);
  ASSERT_NE(mw_table, nullptr);
  EXPECT_EQ(mw_table->size(), 4u);
}

TEST(MiddleWare, FailsWhenMiddlewarePartitionTooSmall) {
  TestCluster tc(4, /*middleware=*/1);
  MwState state;
  ProbeMwDaemon::install(tc.machine, &state);
  std::shared_ptr<core::FrontEnd> fe;
  bool mw_done = false;
  Status mw_status;

  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    ASSERT_TRUE(fe->init().is_ok());
    const int sid = fe->create_session().value;
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    rm::JobSpec job{4, 1, "mpi_app", {}};
    fe->launch_and_spawn(sid, job, cfg, [&, sid](Status st) {
      ASSERT_TRUE(st.is_ok());
      core::FrontEnd::SpawnConfig mw_cfg;
      mw_cfg.daemon_exe = "probe_mw";
      fe->launch_mw_daemons(sid, 3, mw_cfg, [&](Status mst) {
        mw_status = mst;
        mw_done = true;
      });
    });
  });
  ASSERT_TRUE(tc.run_until([&] { return mw_done; }));
  EXPECT_FALSE(mw_status.is_ok());
}

TEST(MiddleWare, RequiresAnActiveSession) {
  TestCluster tc(2, 2);
  MwState state;
  ProbeMwDaemon::install(tc.machine, &state);
  bool done = false;
  Status status;
  tc.spawn_fe([&](cluster::Process& self) {
    auto fe = std::make_shared<core::FrontEnd>(self);
    ASSERT_TRUE(fe->init().is_ok());
    const int sid = fe->create_session().value;
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "probe_mw";
    fe->launch_mw_daemons(sid, 2, cfg, [&, fe](Status st) {
      status = st;
      done = true;
    });
  });
  ASSERT_TRUE(tc.run_until([&] { return done; }));
  EXPECT_EQ(status.rc(), Rc::Einval);  // no engine yet
}

}  // namespace
}  // namespace lmon
