// Integration tests for the BE API's minimal collectives (paper §3.3:
// "we only support simple barriers, broadcasts, gathers and scatters"),
// exercised over live daemon sessions at several sizes and fan-outs.
#include <gtest/gtest.h>

#include <memory>

#include "core/be_api.hpp"
#include "core/fe_api.hpp"
#include "tests/test_util.hpp"

namespace lmon {
namespace {

using testing::TestCluster;

/// Shared observation state for one collective scenario (owned by test).
struct CollectiveState {
  int ready_count = 0;
  int barrier_done = 0;
  std::vector<std::pair<std::uint32_t, Bytes>> gathered;
  std::map<std::uint32_t, Bytes> bcast_received;   // rank -> data
  std::map<std::uint32_t, Bytes> scatter_received; // rank -> data
  bool master_reported = false;
};

/// BE daemon that runs a scripted sequence of collectives after ready.
class CollectiveDaemon : public cluster::Program {
 public:
  explicit CollectiveDaemon(CollectiveState* state) : state_(state) {}

  [[nodiscard]] std::string_view name() const override { return "coll_be"; }

  void on_start(cluster::Process& self) override {
    be_ = std::make_unique<core::BackEnd>(self);
    core::BackEnd::Callbacks cbs;
    cbs.on_init = [](const core::Rpdtab&, const Bytes&,
                     std::function<void(Status)> done) { done(Status::ok()); };
    cbs.on_ready = [this, &self](Status st) {
      if (!st.is_ok()) {
        self.exit(1);
        return;
      }
      state_->ready_count += 1;
      run_script(self);
    };
    ASSERT_TRUE(be_->init(std::move(cbs)).is_ok());
  }

  static void install(cluster::Machine& machine, CollectiveState* state) {
    cluster::ProgramImage image;
    image.image_mb = 2.0;
    image.factory = [state](const std::vector<std::string>&) {
      return std::make_unique<CollectiveDaemon>(state);
    };
    machine.install_program("coll_be", std::move(image));
  }

 private:
  void run_script(cluster::Process& self) {
    (void)self;
    // SPMD discipline: every rank issues the same collective sequence.
    // Gather completion is observable at the master only, so the chain
    // advances through primitives that fire everywhere (barrier/bcast).
    be_->barrier([this] {
      state_->barrier_done += 1;
      // 2. gather: every rank contributes its rank squared (observed at
      // the master via its handler; leaves proceed immediately).
      ByteWriter w;
      w.u32(be_->rank() * be_->rank());
      be_->gather(std::move(w).take(), [this](auto entries) {
        state_->gathered = std::move(entries);
      });
      // 3. master broadcasts a blob to everyone.
      Bytes blob{0xCA, 0xFE};
      be_->broadcast(be_->is_master() ? blob : Bytes{},
                     [this](const Bytes& data) {
                       state_->bcast_received[be_->rank()] = data;
                       // 4. scatter: part i = {i, i, i}.
                       std::vector<Bytes> parts;
                       if (be_->is_master()) {
                         for (std::uint32_t i = 0; i < be_->size(); ++i) {
                           parts.push_back(
                               Bytes(3, static_cast<std::uint8_t>(i)));
                         }
                       }
                       be_->scatter(std::move(parts),
                                    [this](const Bytes& mine) {
                                      state_->scatter_received[be_->rank()] =
                                          mine;
                                    });
                     });
    });
  }

  CollectiveState* state_;
  std::unique_ptr<core::BackEnd> be_;
};

struct Param {
  int nodes;
  comm::TopologySpec topology;
};

class CollectivesTest : public ::testing::TestWithParam<Param> {};

TEST_P(CollectivesTest, FullSequenceAcrossSizesAndTopologies) {
  const auto [nodes, topology] = GetParam();
  TestCluster tc(nodes);
  CollectiveState state;
  CollectiveDaemon::install(tc.machine, &state);

  bool done = false;
  Status status;
  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    ASSERT_TRUE(fe->init().is_ok());
    auto sid = fe->create_session();
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "coll_be";
    cfg.topology = topology;
    rm::JobSpec job{nodes, 2, "mpi_app", {}};
    fe->launch_and_spawn(sid.value, job, cfg, [&](Status st) {
      status = st;
      done = true;
    });
  });
  ASSERT_TRUE(tc.run_until([&] { return done; }));
  ASSERT_TRUE(status.is_ok()) << status.to_string();

  // Let the collective script complete (the gather result can trail the
  // scatter since leaves contribute after their own barrier release).
  ASSERT_TRUE(tc.run_until([&] {
    return static_cast<int>(state.scatter_received.size()) == nodes &&
           static_cast<int>(state.gathered.size()) == nodes;
  }));

  EXPECT_EQ(state.ready_count, nodes);
  EXPECT_EQ(state.barrier_done, nodes);

  // Gather delivered rank^2 in rank order at the master only.
  ASSERT_EQ(state.gathered.size(), static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    EXPECT_EQ(state.gathered[static_cast<std::size_t>(i)].first,
              static_cast<std::uint32_t>(i));
    ByteReader r(state.gathered[static_cast<std::size_t>(i)].second);
    EXPECT_EQ(r.u32(), static_cast<std::uint32_t>(i * i));
  }

  // Broadcast reached every rank with identical bytes.
  ASSERT_EQ(state.bcast_received.size(), static_cast<std::size_t>(nodes));
  for (const auto& [rank, data] : state.bcast_received) {
    EXPECT_EQ(data, (Bytes{0xCA, 0xFE})) << "rank " << rank;
  }

  // Scatter delivered each rank its own slice.
  for (const auto& [rank, data] : state.scatter_received) {
    EXPECT_EQ(data, Bytes(3, static_cast<std::uint8_t>(rank)))
        << "rank " << rank;
  }
}

constexpr auto kKAry = comm::TopologyKind::KAry;
constexpr auto kBinomial = comm::TopologyKind::Binomial;
constexpr auto kFlat = comm::TopologyKind::Flat;

INSTANTIATE_TEST_SUITE_P(
    SizesAndTopologies, CollectivesTest,
    ::testing::Values(Param{1, {kKAry, 2}}, Param{2, {kKAry, 2}},
                      Param{3, {kKAry, 2}}, Param{8, {kKAry, 2}},
                      Param{8, {kKAry, 4}}, Param{16, {kKAry, 2}},
                      Param{16, {kKAry, 16}}, Param{31, {kKAry, 3}},
                      Param{32, {kKAry, 32}}, Param{17, {kKAry, 1}},
                      // The same collective sequence must hold over every
                      // fabric shape the comm layer offers.
                      Param{1, {kBinomial, 0}}, Param{2, {kBinomial, 0}},
                      Param{16, {kBinomial, 0}}, Param{31, {kBinomial, 0}},
                      Param{32, {kBinomial, 0}}, Param{1, {kFlat, 0}},
                      Param{2, {kFlat, 0}}, Param{17, {kFlat, 0}},
                      Param{32, {kFlat, 0}}),
    [](const ::testing::TestParamInfo<Param>& pinfo) {
      std::string topo = pinfo.param.topology.to_string();
      for (char& c : topo) {
        if (c == ':' || c == '-') c = '_';
      }
      return "n" + std::to_string(pinfo.param.nodes) + "_" + topo;
    });

}  // namespace
}  // namespace lmon
