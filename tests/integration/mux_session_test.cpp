// Integration tests for the persistent multiplexed service: virtual
// sessions attaching to an existing daemon tree (SpawnConfig::attach_to),
// per-session collective isolation, admission control, and detach leaving
// the shared tree up. See docs/ARCHITECTURE.md "Persistent multiplexed
// service".
#include <gtest/gtest.h>

#include <memory>

#include "core/be_api.hpp"
#include "core/fe_api.hpp"
#include "obs/metrics.hpp"
#include "tests/test_util.hpp"

namespace lmon {
namespace {

using testing::TestCluster;

/// Shared observation state for one multiplexed scenario (owned by test).
struct MuxState {
  int ready_count = 0;
  std::map<std::uint32_t, int> attached;       // vsid -> daemons that saw it
  std::map<std::uint32_t, int> detached;       // vsid -> daemons that saw it
  std::map<std::uint32_t, int> vbarrier_done;  // vsid -> ranks released
  /// Master-side gather result per virtual session.
  std::map<std::uint32_t, std::vector<std::pair<std::uint32_t, Bytes>>>
      vgathered;
};

/// BE daemon that runs a per-virtual-session collective script on attach:
/// vbarrier, then vgather of a session-tagged payload. Any cross-session
/// frame leak shows up as a wrong payload or entry count in `vgathered`.
class MuxDaemon : public cluster::Program {
 public:
  explicit MuxDaemon(MuxState* state) : state_(state) {}

  [[nodiscard]] std::string_view name() const override { return "mux_be"; }

  void on_start(cluster::Process& self) override {
    be_ = std::make_unique<core::BackEnd>(self);
    core::BackEnd::Callbacks cbs;
    cbs.on_init = [](const core::Rpdtab&, const Bytes&,
                     std::function<void(Status)> done) { done(Status::ok()); };
    cbs.on_ready = [this, &self](Status st) {
      if (!st.is_ok()) {
        self.exit(1);
        return;
      }
      state_->ready_count += 1;
    };
    cbs.on_vsession_attach = [this](std::uint32_t vsid) {
      state_->attached[vsid] += 1;
      run_session_script(vsid);
    };
    cbs.on_vsession_detach = [this](std::uint32_t vsid) {
      state_->detached[vsid] += 1;
    };
    ASSERT_TRUE(be_->init(std::move(cbs)).is_ok());
  }

  static void install(cluster::Machine& machine, MuxState* state) {
    cluster::ProgramImage image;
    image.image_mb = 2.0;
    image.factory = [state](const std::vector<std::string>&) {
      return std::make_unique<MuxDaemon>(state);
    };
    machine.install_program("mux_be", std::move(image));
  }

 private:
  void run_session_script(std::uint32_t vsid) {
    // SPMD per session: barrier, then gather a payload that encodes the
    // session id so a frame delivered to the wrong session is detectable.
    auto st = be_->vbarrier(vsid, [this, vsid] {
      state_->vbarrier_done[vsid] += 1;
      ByteWriter w;
      w.u32(vsid * 1000 + be_->rank());
      auto gst = be_->vgather(vsid, std::move(w).take(),
                              [this, vsid](auto entries) {
                                state_->vgathered[vsid] = std::move(entries);
                              });
      ASSERT_TRUE(gst.is_ok()) << gst.to_string();
    });
    ASSERT_TRUE(st.is_ok()) << st.to_string();
  }

  MuxState* state_;
  std::unique_ptr<core::BackEnd> be_;
};

/// Boots a cluster + owner session running MuxDaemon; returns when Ready.
struct MuxFixture {
  explicit MuxFixture(int nodes, std::uint32_t max_tree_sessions = 0)
      : tc(nodes), nodes(nodes) {
    MuxDaemon::install(tc.machine, &state);
    const sim::Time boot_begin = tc.simulator.now();
    bool done = false;
    Status status;
    tc.spawn_fe([&, this](cluster::Process& self) {
      fe = std::make_shared<core::FrontEnd>(self);
      ASSERT_TRUE(fe->init().is_ok());
      auto sid = fe->create_session();
      ASSERT_TRUE(sid.is_ok());
      owner = sid.value;
      core::FrontEnd::SpawnConfig cfg;
      cfg.daemon_exe = "mux_be";
      cfg.topology = comm::TopologySpec{comm::TopologyKind::KAry, 2};
      cfg.max_tree_sessions = max_tree_sessions;
      rm::JobSpec job{nodes, 2, "mpi_app", {}};
      fe->launch_and_spawn(owner, job, cfg, [&](Status st) {
        status = st;
        done = true;
      });
    });
    if (!tc.run_until([&] { return done; })) {
      throw std::runtime_error("owner bootstrap timed out");
    }
    if (!status.is_ok()) {
      throw std::runtime_error("owner bootstrap: " + status.to_string());
    }
    bootstrap_time = tc.simulator.now() - boot_begin;
  }

  /// Attaches a fresh virtual session to the owner's tree; returns
  /// {sid, status} once the attach completes.
  std::pair<int, Status> attach() {
    auto sid = fe->create_session();
    if (!sid.is_ok()) return {-1, sid.status};
    bool done = false;
    Status status;
    core::FrontEnd::SpawnConfig cfg;
    cfg.attach_to = fe->infra_of(owner);
    rm::JobSpec job{nodes, 2, "mpi_app", {}};
    fe->launch_and_spawn(sid.value, job, cfg, [&](Status st) {
      status = st;
      done = true;
    });
    if (!tc.run_until([&] { return done; })) {
      return {sid.value, Status(Rc::Etout, "attach timed out")};
    }
    return {sid.value, status};
  }

  TestCluster tc;
  int nodes;
  MuxState state;
  std::shared_ptr<core::FrontEnd> fe;
  int owner = -1;
  sim::Time bootstrap_time = 0;
};

TEST(MuxSessionTest, VirtualAttachSharesTreeInOneRoundTrip) {
  MuxFixture fx(16);

  const sim::Time attach_begin = fx.tc.simulator.now();
  auto [sid, st] = fx.attach();
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  const sim::Time attach_time = fx.tc.simulator.now() - attach_begin;

  // The virtual session is Ready and bound to the owner's tree under a
  // fresh vsid; the owner keeps vsid 0.
  EXPECT_EQ(fx.fe->state(sid), core::FrontEnd::SessionState::Ready);
  EXPECT_EQ(fx.fe->vsid_of(sid), 1u);
  EXPECT_EQ(fx.fe->vsid_of(fx.owner), 0u);
  EXPECT_EQ(fx.fe->infra_of(sid).owner_sid, fx.owner);
  EXPECT_EQ(fx.fe->tree_session_count(fx.owner), 2u);
  EXPECT_EQ(fx.fe->tree_session_count(sid), 2u);

  // Cached infrastructure state is shared, not refetched: identical
  // pointers into the one Infra record.
  EXPECT_EQ(fx.fe->proctable(sid), fx.fe->proctable(fx.owner));
  EXPECT_EQ(fx.fe->daemon_table(sid), fx.fe->daemon_table(fx.owner));
  EXPECT_EQ(fx.fe->tuned_config(sid), fx.fe->tuned_config(fx.owner));
  EXPECT_EQ(fx.fe->fabric_port_of(sid), fx.fe->fabric_port_of(fx.owner));

  // O(1) attach: no engine start, no RM round, no daemon spawn. One LMONP
  // round trip plus a tree broadcast/gather is at least an order of
  // magnitude below the full bootstrap.
  EXPECT_LT(attach_time * 10, fx.bootstrap_time)
      << "attach took " << attach_time << " vs bootstrap "
      << fx.bootstrap_time;

  // Every daemon observed the attach and ran the session script.
  ASSERT_TRUE(fx.tc.run_until([&] {
    return fx.state.vgathered.count(1) != 0;
  }));
  EXPECT_EQ(fx.state.attached[1], fx.nodes);
  EXPECT_EQ(fx.state.vbarrier_done[1], fx.nodes);
}

TEST(MuxSessionTest, ConcurrentSessionCollectivesStayIsolated) {
  MuxFixture fx(8);
  obs::Metrics metrics;
  fx.tc.machine.set_metrics(&metrics);

  // Launch two virtual attaches back to back so their per-session
  // collective scripts overlap on the shared fabric.
  std::map<std::uint32_t, Status> results;
  for (std::uint32_t i = 0; i < 2; ++i) {
    auto sid = fx.fe->create_session();
    ASSERT_TRUE(sid.is_ok());
    core::FrontEnd::SpawnConfig cfg;
    cfg.attach_to = fx.fe->infra_of(fx.owner);
    rm::JobSpec job{fx.nodes, 2, "mpi_app", {}};
    fx.fe->launch_and_spawn(sid.value, job, cfg,
                            [&results, i](Status st) { results[i] = st; });
  }
  ASSERT_TRUE(fx.tc.run_until([&] { return results.size() == 2; }));
  for (const auto& [i, st] : results) {
    EXPECT_TRUE(st.is_ok()) << "attach " << i << ": " << st.to_string();
  }
  ASSERT_TRUE(fx.tc.run_until([&] {
    return fx.state.vgathered.count(1) != 0 &&
           fx.state.vgathered.count(2) != 0;
  }));

  // Each session's master-side gather holds exactly its own ranks with
  // the session-tagged payloads - any cross-session frame leak would
  // corrupt count or contents.
  for (std::uint32_t vsid : {1u, 2u}) {
    const auto& got = fx.state.vgathered[vsid];
    ASSERT_EQ(got.size(), static_cast<std::size_t>(fx.nodes))
        << "vsid " << vsid;
    for (int r = 0; r < fx.nodes; ++r) {
      const auto& [rank, data] = got[static_cast<std::size_t>(r)];
      EXPECT_EQ(rank, static_cast<std::uint32_t>(r));
      ByteReader rd(data);
      EXPECT_EQ(rd.u32(), vsid * 1000 + static_cast<std::uint32_t>(r))
          << "vsid " << vsid << " rank " << r;
    }
  }

  // Attribution: traffic landed under both per-session counter prefixes,
  // and no frame ever arrived for an unbound session.
  EXPECT_GT(metrics.counter("iccl.s1.gather_bytes_contributed"), 0.0);
  EXPECT_GT(metrics.counter("iccl.s2.gather_bytes_contributed"), 0.0);
  EXPECT_EQ(metrics.counter("iccl.mux.unbound_drops"), 0.0);

  fx.tc.machine.set_metrics(nullptr);
}

TEST(MuxSessionTest, AdmissionBoundRejectsCleanly) {
  MuxFixture fx(4, /*max_tree_sessions=*/2);

  auto [s1, st1] = fx.attach();
  auto [s2, st2] = fx.attach();
  ASSERT_TRUE(st1.is_ok()) << st1.to_string();
  ASSERT_TRUE(st2.is_ok()) << st2.to_string();

  // Third attach exceeds the advertised bound: clean Enomem, no partial
  // binding left behind.
  auto [s3, st3] = fx.attach();
  EXPECT_EQ(st3.rc(), Rc::Enomem) << st3.to_string();
  EXPECT_NE(st3.to_string().find("full"), std::string::npos)
      << st3.to_string();
  EXPECT_EQ(fx.fe->vsid_of(s3), 0u);
  EXPECT_FALSE(fx.fe->infra_of(s3).valid());

  // The tree and its admitted sessions are unharmed.
  EXPECT_EQ(fx.fe->state(fx.owner), core::FrontEnd::SessionState::Ready);
  EXPECT_EQ(fx.fe->state(s1), core::FrontEnd::SessionState::Ready);
  EXPECT_EQ(fx.fe->state(s2), core::FrontEnd::SessionState::Ready);
  EXPECT_EQ(fx.fe->tree_session_count(fx.owner), 3u);
  ASSERT_TRUE(fx.tc.run_until([&] {
    return fx.state.vgathered.count(1) != 0 &&
           fx.state.vgathered.count(2) != 0;
  }));
  EXPECT_EQ(fx.state.vgathered.count(3), 0u);
}

TEST(MuxSessionTest, VirtualDetachLeavesTreeUpAndSlotsRecycle) {
  MuxFixture fx(8);

  auto [sid, st] = fx.attach();
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  ASSERT_TRUE(
      fx.tc.run_until([&] { return fx.state.vgathered.count(1) != 0; }));

  bool detached = false;
  Status dst;
  fx.fe->detach(sid, [&](Status s) {
    dst = s;
    detached = true;
  });
  ASSERT_TRUE(fx.tc.run_until([&] { return detached; }));
  EXPECT_TRUE(dst.is_ok()) << dst.to_string();
  EXPECT_EQ(fx.fe->state(sid), core::FrontEnd::SessionState::Torn);

  // Every daemon closed the virtual session; the tree and owner survive.
  ASSERT_TRUE(fx.tc.run_until(
      [&] { return fx.state.detached[1] == fx.nodes; }));
  EXPECT_EQ(fx.fe->state(fx.owner), core::FrontEnd::SessionState::Ready);
  EXPECT_EQ(fx.fe->tree_session_count(fx.owner), 1u);

  // The freed descriptor is reusable and a fresh attach lands on a new
  // vsid with working collectives.
  ASSERT_TRUE(fx.fe->destroy_session(sid).is_ok());
  auto [sid2, st2] = fx.attach();
  ASSERT_TRUE(st2.is_ok()) << st2.to_string();
  EXPECT_EQ(sid2, sid);  // lowest freed id handed out first
  EXPECT_EQ(fx.fe->vsid_of(sid2), 2u);
  ASSERT_TRUE(
      fx.tc.run_until([&] { return fx.state.vgathered.count(2) != 0; }));
  EXPECT_EQ(fx.state.attached[2], fx.nodes);
}

}  // namespace
}  // namespace lmon
