// End-to-end integration tests for launchAndSpawn / attachAndSpawn.
#include <gtest/gtest.h>

#include "core/fe_api.hpp"
#include "rm/resource_manager.hpp"
#include "tests/test_util.hpp"

namespace lmon {
namespace {

using testing::TestCluster;

struct LaunchResult {
  bool done = false;
  Status status;
  core::Rpdtab proctable;
  core::Rpdtab daemon_table;
  sim::Time started = 0;
  sim::Time finished = 0;
};

/// Drives a full launchAndSpawn and reports into `out` (owned by the test).
apps::ScriptedFrontEnd::Script make_launch_script(
    LaunchResult* out, int nnodes, int tpn,
    std::shared_ptr<core::FrontEnd>* fe_keep) {
  return [out, nnodes, tpn, fe_keep](cluster::Process& self) {
    auto fe = std::make_shared<core::FrontEnd>(self);
    *fe_keep = fe;
    ASSERT_TRUE(fe->init().is_ok());
    auto sid = fe->create_session();
    ASSERT_TRUE(sid.is_ok());

    rm::JobSpec job;
    job.nnodes = nnodes;
    job.tasks_per_node = tpn;
    job.executable = "mpi_app";

    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";

    out->started = self.sim().now();
    fe->launch_and_spawn(sid.value, job, cfg,
                         [out, fe, sid = sid.value, &self](Status st) {
                           out->done = true;
                           out->status = st;
                           out->finished = self.sim().now();
                           if (auto* pt = fe->proctable(sid)) {
                             out->proctable = *pt;
                           }
                           if (auto* dt = fe->daemon_table(sid)) {
                             out->daemon_table = *dt;
                           }
                         });
  };
}

TEST(LaunchSpawn, FourNodeJobLaunchesDaemonsAndTasks) {
  TestCluster tc(4);
  LaunchResult result;
  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe(make_launch_script(&result, 4, 8, &fe));

  ASSERT_TRUE(tc.run_until([&] { return result.done; }));
  EXPECT_TRUE(result.status.is_ok()) << result.status.to_string();

  // RPDTAB: 4 nodes x 8 tasks, ranks 0..31, valid pids, 4 distinct hosts.
  ASSERT_EQ(result.proctable.size(), 32u);
  EXPECT_EQ(result.proctable.hosts().size(), 4u);
  for (std::size_t i = 0; i < result.proctable.size(); ++i) {
    const auto& e = result.proctable.entries()[i];
    EXPECT_EQ(e.rank, static_cast<std::int32_t>(i));
    EXPECT_EQ(e.executable, "mpi_app");
    EXPECT_GT(e.pid, 0);
  }

  // Daemon table: one daemon per node, co-located with the tasks.
  ASSERT_EQ(result.daemon_table.size(), 4u);
  auto task_hosts = result.proctable.hosts();
  auto daemon_hosts = result.daemon_table.hosts();
  std::sort(task_hosts.begin(), task_hosts.end());
  std::sort(daemon_hosts.begin(), daemon_hosts.end());
  EXPECT_EQ(task_hosts, daemon_hosts);

  // All daemons actually run.
  for (const auto& d : result.daemon_table.entries()) {
    cluster::Process* p = tc.machine.find_process(d.pid);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->state(), cluster::ProcState::Running);
    EXPECT_EQ(p->options().executable, "hello_be");
  }
}

TEST(LaunchSpawn, CompletesWellUnderASecondAt16Nodes) {
  TestCluster tc(16);
  LaunchResult result;
  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe(make_launch_script(&result, 16, 8, &fe));
  ASSERT_TRUE(tc.run_until([&] { return result.done; }));
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  const double secs = sim::to_seconds(result.finished - result.started);
  EXPECT_LT(secs, 1.0);
  EXPECT_GT(secs, 0.05);  // it does cost something
}

TEST(LaunchSpawn, AttachToRunningJob) {
  TestCluster tc(4);
  // Start the job without any tool.
  auto job_res = rm::run_job(tc.machine, rm::JobSpec{4, 8, "mpi_app", {}});
  ASSERT_TRUE(job_res.is_ok());
  const cluster::Pid launcher_pid = job_res.value;
  tc.simulator.run(tc.simulator.now() + sim::seconds(2));
  ASSERT_EQ(tc.machine.find_process(launcher_pid)->state(),
            cluster::ProcState::Running);

  LaunchResult result;
  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    ASSERT_TRUE(fe->init().is_ok());
    auto sid = fe->create_session();
    ASSERT_TRUE(sid.is_ok());
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    result.started = self.sim().now();
    fe->attach_and_spawn(sid.value, launcher_pid, cfg,
                         [&, sid = sid.value](Status st) {
                           result.done = true;
                           result.status = st;
                           result.finished = self.sim().now();
                           if (auto* pt = fe->proctable(sid)) {
                             result.proctable = *pt;
                           }
                           if (auto* dt = fe->daemon_table(sid)) {
                             result.daemon_table = *dt;
                           }
                         });
  });

  ASSERT_TRUE(tc.run_until([&] { return result.done; }));
  EXPECT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(result.proctable.size(), 32u);
  EXPECT_EQ(result.daemon_table.size(), 4u);
  // The job keeps running after attach.
  EXPECT_EQ(tc.machine.find_process(launcher_pid)->state(),
            cluster::ProcState::Running);
}

TEST(LaunchSpawn, FailsCleanlyWhenAllocationTooLarge) {
  TestCluster tc(2);
  LaunchResult result;
  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe(make_launch_script(&result, 8, 1, &fe));
  ASSERT_TRUE(tc.run_until([&] { return result.done; }));
  EXPECT_FALSE(result.status.is_ok());
}

TEST(LaunchSpawn, SessionReusedIsRejected) {
  TestCluster tc(2);
  bool second_done = false;
  Status second_status;
  LaunchResult result;
  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    ASSERT_TRUE(fe->init().is_ok());
    auto sid = fe->create_session();
    ASSERT_TRUE(sid.is_ok());
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    rm::JobSpec job{2, 1, "mpi_app", {}};
    fe->launch_and_spawn(sid.value, job, cfg, [&](Status st) {
      result.done = true;
      result.status = st;
    });
    fe->launch_and_spawn(sid.value, job, cfg, [&](Status st) {
      second_done = true;
      second_status = st;
    });
  });
  ASSERT_TRUE(tc.run_until([&] { return result.done && second_done; }));
  EXPECT_TRUE(result.status.is_ok()) << result.status.to_string();
  EXPECT_EQ(second_status.rc(), Rc::Ebusy);
}

}  // namespace
}  // namespace lmon
