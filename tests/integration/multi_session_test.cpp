// Tests for concurrent session management: one tool front end driving
// several jobs/daemon fleets at once (the paper's session abstraction is
// exactly what makes commands bindable to one of many daemon groups).
#include <gtest/gtest.h>

#include <memory>

#include "core/fe_api.hpp"
#include "tests/test_util.hpp"

namespace lmon {
namespace {

using testing::TestCluster;

TEST(MultiSession, TwoConcurrentLaunchesStayIsolated) {
  TestCluster tc(8);
  std::shared_ptr<core::FrontEnd> fe;
  int sid_a = -1;
  int sid_b = -1;
  bool done_a = false;
  bool done_b = false;
  Status st_a;
  Status st_b;

  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    ASSERT_TRUE(fe->init().is_ok());
    sid_a = fe->create_session().value;
    sid_b = fe->create_session().value;
    EXPECT_NE(sid_a, sid_b);

    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    // Both launches in flight simultaneously; the RM partitions nodes.
    fe->launch_and_spawn(sid_a, rm::JobSpec{4, 2, "mpi_app", {}}, cfg,
                         [&](Status st) {
                           st_a = st;
                           done_a = true;
                         });
    fe->launch_and_spawn(sid_b, rm::JobSpec{4, 4, "mpi_app", {}}, cfg,
                         [&](Status st) {
                           st_b = st;
                           done_b = true;
                         });
  });
  ASSERT_TRUE(tc.run_until([&] { return done_a && done_b; }));
  ASSERT_TRUE(st_a.is_ok()) << st_a.to_string();
  ASSERT_TRUE(st_b.is_ok()) << st_b.to_string();

  // Each session sees its own job only.
  const core::Rpdtab* table_a = fe->proctable(sid_a);
  const core::Rpdtab* table_b = fe->proctable(sid_b);
  ASSERT_NE(table_a, nullptr);
  ASSERT_NE(table_b, nullptr);
  EXPECT_EQ(table_a->size(), 8u);   // 4 nodes x 2
  EXPECT_EQ(table_b->size(), 16u);  // 4 nodes x 4

  // Disjoint node sets (the controller never double-books).
  std::set<std::string> hosts_a;
  for (const auto& h : table_a->hosts()) hosts_a.insert(h);
  for (const auto& h : table_b->hosts()) {
    EXPECT_EQ(hosts_a.count(h), 0u) << h << " in both sessions";
  }

  // Distinct fabric ports per session (no daemon cross-talk).
  EXPECT_NE(fe->fabric_port_of(sid_a), fe->fabric_port_of(sid_b));
  EXPECT_EQ(fe->daemon_table(sid_a)->size(), 4u);
  EXPECT_EQ(fe->daemon_table(sid_b)->size(), 4u);
}

TEST(MultiSession, KillingOneSessionLeavesTheOther) {
  TestCluster tc(8);
  std::shared_ptr<core::FrontEnd> fe;
  int sid_a = -1;
  int sid_b = -1;
  int ready = 0;

  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    ASSERT_TRUE(fe->init().is_ok());
    sid_a = fe->create_session().value;
    sid_b = fe->create_session().value;
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    fe->launch_and_spawn(sid_a, rm::JobSpec{4, 1, "mpi_app", {}}, cfg,
                         [&](Status st) {
                           ASSERT_TRUE(st.is_ok());
                           ++ready;
                         });
    fe->launch_and_spawn(sid_b, rm::JobSpec{4, 1, "mpi_app", {}}, cfg,
                         [&](Status st) {
                           ASSERT_TRUE(st.is_ok());
                           ++ready;
                         });
  });
  ASSERT_TRUE(tc.run_until([&] { return ready == 2; }));

  const core::Rpdtab table_a = *fe->proctable(sid_a);
  const core::Rpdtab table_b = *fe->proctable(sid_b);

  bool killed = false;
  fe->kill(sid_a, [&](Status) { killed = true; });
  ASSERT_TRUE(tc.run_until([&] { return killed; }));
  tc.simulator.run(tc.simulator.now() + sim::seconds(2));

  // Session A's tasks are gone; session B's keep running.
  for (const auto& e : table_a.entries()) {
    EXPECT_EQ(tc.machine.find_process(e.pid)->state(),
              cluster::ProcState::Exited);
  }
  for (const auto& e : table_b.entries()) {
    EXPECT_EQ(tc.machine.find_process(e.pid)->state(),
              cluster::ProcState::Running);
  }
  EXPECT_EQ(fe->state(sid_b), core::FrontEnd::SessionState::Ready);
}

TEST(MultiSession, SessionTableCapacityEnforced) {
  TestCluster tc(2);
  int created = 0;
  Status last;
  tc.spawn_fe([&](cluster::Process& self) {
    auto fe = std::make_shared<core::FrontEnd>(self);
    ASSERT_TRUE(fe->init().is_ok());
    for (int i = 0; i < 100; ++i) {
      auto res = fe->create_session();
      last = res.status;
      if (!res.is_ok()) break;
      ++created;
    }
  });
  tc.simulator.run(tc.simulator.now() + sim::ms(10));
  EXPECT_EQ(created, core::FrontEnd::kDefaultMaxSessions);
  EXPECT_EQ(last.rc(), Rc::Enomem);
}

TEST(MultiSession, SessionBoundIsAConstructorKnob) {
  // The 64-descriptor default is a knob, not a hard cap: a mux-heavy tool
  // can raise it (virtual sessions need no port block) and a constrained
  // one can lower it. Exhaustion keeps the clean Enomem reject either way.
  TestCluster tc(2);
  int small_created = 0;
  int large_created = 0;
  Status small_last;
  tc.spawn_fe([&](cluster::Process& self) {
    auto fe = std::make_shared<core::FrontEnd>(self, /*max_sessions=*/3);
    ASSERT_TRUE(fe->init().is_ok());
    for (int i = 0; i < 10; ++i) {
      auto res = fe->create_session();
      small_last = res.status;
      if (!res.is_ok()) break;
      ++small_created;
    }
    auto big = std::make_shared<core::FrontEnd>(self, /*max_sessions=*/200);
    ASSERT_TRUE(big->init().is_ok());
    for (int i = 0; i < 200; ++i) {
      if (!big->create_session().is_ok()) break;
      ++large_created;
    }
  });
  tc.simulator.run(tc.simulator.now() + sim::ms(10));
  EXPECT_EQ(small_created, 3);
  EXPECT_EQ(small_last.rc(), Rc::Enomem);
  // Descriptors beyond 64 exist; only bootstrapping ones consume a port
  // block, so a >64 bound serves trees-plus-virtual-session workloads.
  EXPECT_EQ(large_created, 200);
}

TEST(MultiSession, DestroyedSessionIdsAreReused) {
  TestCluster tc(2);
  tc.spawn_fe([&](cluster::Process& self) {
    auto fe = std::make_shared<core::FrontEnd>(self);
    ASSERT_TRUE(fe->init().is_ok());
    int s0 = fe->create_session().value;
    int s1 = fe->create_session().value;
    int s2 = fe->create_session().value;
    ASSERT_EQ(s0, 0);
    ASSERT_EQ(s1, 1);
    ASSERT_EQ(s2, 2);

    // Unknown and live-but-Idle handling.
    EXPECT_EQ(fe->destroy_session(99).rc(), Rc::Enosession);
    ASSERT_TRUE(fe->destroy_session(s1).is_ok());
    EXPECT_EQ(fe->destroy_session(s1).rc(), Rc::Enosession);

    // The lowest freed id is handed out first, then fresh ids resume.
    ASSERT_TRUE(fe->destroy_session(s0).is_ok());
    EXPECT_EQ(fe->create_session().value, 0);
    EXPECT_EQ(fe->create_session().value, 1);
    EXPECT_EQ(fe->create_session().value, 3);

    // Destroy-then-recreate cycles never leak descriptors: a full
    // churn of the table stays under the bound.
    auto churn = std::make_shared<core::FrontEnd>(self, /*max_sessions=*/4);
    ASSERT_TRUE(churn->init().is_ok());
    for (int round = 0; round < 10; ++round) {
      std::vector<int> ids;
      for (int i = 0; i < 4; ++i) {
        auto res = churn->create_session();
        ASSERT_TRUE(res.is_ok()) << "round " << round;
        ids.push_back(res.value);
      }
      EXPECT_EQ(churn->create_session().status.rc(), Rc::Enomem);
      for (int id : ids) ASSERT_TRUE(churn->destroy_session(id).is_ok());
    }
  });
  tc.simulator.run(tc.simulator.now() + sim::ms(10));
}

TEST(MultiSession, TwoFrontEndProcessesCoexist) {
  // Two separate tool FE processes on the same login node: the FE port
  // probing must keep them apart.
  TestCluster tc(8);
  std::shared_ptr<core::FrontEnd> fe1;
  std::shared_ptr<core::FrontEnd> fe2;
  bool done1 = false;
  bool done2 = false;

  tc.spawn_fe([&](cluster::Process& self) {
    fe1 = std::make_shared<core::FrontEnd>(self);
    ASSERT_TRUE(fe1->init().is_ok());
    auto sid = fe1->create_session();
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    fe1->launch_and_spawn(sid.value, rm::JobSpec{4, 1, "mpi_app", {}}, cfg,
                          [&](Status st) {
                            EXPECT_TRUE(st.is_ok()) << st.to_string();
                            done1 = true;
                          });
  });
  tc.spawn_fe([&](cluster::Process& self) {
    fe2 = std::make_shared<core::FrontEnd>(self);
    ASSERT_TRUE(fe2->init().is_ok());
    EXPECT_NE(fe2->port(), fe1 ? fe1->port() : 0);
    auto sid = fe2->create_session();
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    // Second tool watches its own job on the remaining nodes.
    fe2->launch_and_spawn(sid.value, rm::JobSpec{4, 1, "mpi_app", {}}, cfg,
                          [&](Status st) {
                            EXPECT_TRUE(st.is_ok()) << st.to_string();
                            done2 = true;
                          });
  });
  EXPECT_TRUE(tc.run_until([&] { return done1 && done2; }));
}

}  // namespace
}  // namespace lmon
