// Failure-injection tests: the robustness properties a production launch
// infrastructure needs (paper abstract: "scalable, robust, portable,
// secure").
#include <gtest/gtest.h>

#include <memory>

#include "core/fe_api.hpp"
#include "rm/resource_manager.hpp"
#include "tests/flight_check.hpp"
#include "tests/test_util.hpp"

namespace lmon {
namespace {

using testing::TestCluster;

struct Driver {
  std::shared_ptr<core::FrontEnd> fe;
  int sid = -1;
  bool done = false;
  Status status;
};

void launch(TestCluster& tc, Driver& d, const std::string& daemon_exe,
            int nnodes) {
  tc.spawn_fe([&, daemon_exe, nnodes](cluster::Process& self) {
    d.fe = std::make_shared<core::FrontEnd>(self);
    ASSERT_TRUE(d.fe->init().is_ok());
    auto sid = d.fe->create_session();
    d.sid = sid.value;
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = daemon_exe;
    rm::JobSpec job{nnodes, 2, "mpi_app", {}};
    d.fe->launch_and_spawn(d.sid, job, cfg, [&](Status st) {
      d.status = st;
      d.done = true;
    });
  });
}

TEST(Failure, MissingDaemonExecutableReportsCleanly) {
  TestCluster tc(4);
  testing::FlightRecorderOnFailure flight(tc.machine);
  Driver d;
  launch(tc, d, "no_such_daemon", 4);
  ASSERT_TRUE(tc.run_until([&] { return d.done; }));
  EXPECT_FALSE(d.status.is_ok());
  EXPECT_EQ(d.fe->state(d.sid), core::FrontEnd::SessionState::Failed);
}

TEST(Failure, MissingAppExecutableReportsCleanly) {
  TestCluster tc(4);
  testing::FlightRecorderOnFailure flight(tc.machine);
  Driver d;
  tc.spawn_fe([&](cluster::Process& self) {
    d.fe = std::make_shared<core::FrontEnd>(self);
    ASSERT_TRUE(d.fe->init().is_ok());
    auto sid = d.fe->create_session();
    d.sid = sid.value;
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    rm::JobSpec job{4, 2, "no_such_app", {}};
    d.fe->launch_and_spawn(d.sid, job, cfg, [&](Status st) {
      d.status = st;
      d.done = true;
    });
  });
  ASSERT_TRUE(tc.run_until([&] { return d.done; }));
  EXPECT_FALSE(d.status.is_ok());
}

TEST(Failure, AttachToNonexistentLauncherFails) {
  TestCluster tc(2);
  testing::FlightRecorderOnFailure flight(tc.machine);
  Driver d;
  tc.spawn_fe([&](cluster::Process& self) {
    d.fe = std::make_shared<core::FrontEnd>(self);
    ASSERT_TRUE(d.fe->init().is_ok());
    auto sid = d.fe->create_session();
    d.sid = sid.value;
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    d.fe->attach_and_spawn(d.sid, 987654, cfg, [&](Status st) {
      d.status = st;
      d.done = true;
    });
  });
  ASSERT_TRUE(tc.run_until([&] { return d.done; }));
  EXPECT_FALSE(d.status.is_ok());
}

TEST(Failure, KillTearsDownJobAndDaemons) {
  TestCluster tc(4);
  testing::FlightRecorderOnFailure flight(tc.machine);
  Driver d;
  launch(tc, d, "hello_be", 4);
  ASSERT_TRUE(tc.run_until([&] { return d.done; }));
  ASSERT_TRUE(d.status.is_ok()) << d.status.to_string();

  bool killed = false;
  Status kill_status;
  const core::Rpdtab proctable = *d.fe->proctable(d.sid);
  d.fe->kill(d.sid, [&](Status st) {
    kill_status = st;
    killed = true;
  });
  ASSERT_TRUE(tc.run_until([&] { return killed; }));
  EXPECT_TRUE(kill_status.is_ok());
  tc.simulator.run(tc.simulator.now() + sim::seconds(2));

  // Tasks and daemons are gone.
  for (const auto& e : proctable.entries()) {
    cluster::Process* p = tc.machine.find_process(e.pid);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->state(), cluster::ProcState::Exited);
  }
  int live_daemons = 0;
  for (int i = 0; i < tc.machine.num_compute_nodes(); ++i) {
    for (cluster::Process* p : tc.machine.compute_node(i).live_processes()) {
      if (p->options().executable == "hello_be") ++live_daemons;
    }
  }
  EXPECT_EQ(live_daemons, 0);
}

TEST(Failure, FeDeathCleansUpEntireSession) {
  TestCluster tc(4);
  testing::FlightRecorderOnFailure flight(tc.machine);
  Driver d;
  cluster::Pid fe_pid = cluster::kInvalidPid;
  tc.spawn_fe([&](cluster::Process& self) {
    fe_pid = self.pid();
    d.fe = std::make_shared<core::FrontEnd>(self);
    ASSERT_TRUE(d.fe->init().is_ok());
    auto sid = d.fe->create_session();
    d.sid = sid.value;
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    rm::JobSpec job{4, 2, "mpi_app", {}};
    d.fe->launch_and_spawn(d.sid, job, cfg, [&](Status st) {
      d.status = st;
      d.done = true;
    });
  });
  ASSERT_TRUE(tc.run_until([&] { return d.done; }));
  ASSERT_TRUE(d.status.is_ok());

  // The tool front end dies (crash / ctrl-c). Engine notices the LMONP
  // channel close and reaps the daemons.
  tc.machine.find_process(fe_pid)->exit(137);
  tc.simulator.run(tc.simulator.now() + sim::seconds(5));

  int live_daemons = 0;
  int live_engines = 0;
  for (int i = 0; i < tc.machine.num_nodes(); ++i) {
    for (cluster::Process* p : tc.machine.node(i).live_processes()) {
      if (p->options().executable == "hello_be") ++live_daemons;
      if (p->options().executable == "lmon_engine") ++live_engines;
    }
  }
  EXPECT_EQ(live_daemons, 0);
  EXPECT_EQ(live_engines, 0);
}

TEST(Failure, AllocationExhaustionAcrossSessions) {
  TestCluster tc(4);
  testing::FlightRecorderOnFailure flight(tc.machine);
  // First job takes all nodes.
  auto first = rm::run_job(tc.machine, rm::JobSpec{4, 1, "mpi_app", {}});
  ASSERT_TRUE(first.is_ok());
  tc.simulator.run(tc.simulator.now() + sim::seconds(3));

  Driver d;
  launch(tc, d, "hello_be", 2);  // wants 2 more nodes; none free
  ASSERT_TRUE(tc.run_until([&] { return d.done; }));
  EXPECT_FALSE(d.status.is_ok());
}

TEST(Failure, DeadNodeDaemonFailsSubtreeNotWholeRm) {
  TestCluster tc(8);
  testing::FlightRecorderOnFailure flight(tc.machine);
  // Kill the slurmd on one node before launching.
  for (cluster::Process* p : tc.machine.compute_node(5).live_processes()) {
    if (p->options().executable == "slurmd") p->exit(1);
  }
  tc.simulator.run(tc.simulator.now() + sim::ms(10));

  Driver d;
  launch(tc, d, "hello_be", 8);
  ASSERT_TRUE(tc.run_until([&] { return d.done; }, sim::seconds(300)));
  // The launch fails (a subtree could not be reached) but the FE gets a
  // clean error instead of hanging forever.
  EXPECT_FALSE(d.status.is_ok());
}

TEST(Failure, DetachAfterFailureIsSafe) {
  TestCluster tc(2);
  testing::FlightRecorderOnFailure flight(tc.machine);
  Driver d;
  launch(tc, d, "no_such_daemon", 2);
  ASSERT_TRUE(tc.run_until([&] { return d.done; }));
  ASSERT_FALSE(d.status.is_ok());
  bool detached = false;
  d.fe->detach(d.sid, [&](Status) { detached = true; });
  EXPECT_TRUE(tc.run_until([&] { return detached; }));
}

}  // namespace
}  // namespace lmon
