// Integration tests for the TBON overlay itself: deep topologies, filters,
// multiple streams, round synchronization, via the ad hoc startup path.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "common/argparse.hpp"
#include "tbon/comm_node.hpp"
#include "tbon/endpoint.hpp"
#include "tbon/startup.hpp"
#include "obs/metrics.hpp"
#include "tests/test_util.hpp"

namespace lmon::tbon {
namespace {

using lmon::testing::TestCluster;

/// Leaf daemon: on Down(tag), replies with its be_rank as a u64 payload.
class LeafDaemon : public cluster::Program {
 public:
  [[nodiscard]] std::string_view name() const override { return "leaf_be"; }
  void on_start(cluster::Process& self) override {
    auto topo_hex = arg_value(self.args(), "--tbon-topology=");
    auto index = arg_int(self.args(), "--tbon-index=");
    ASSERT_TRUE(topo_hex && index);
    auto topo = Topology::unpack(*from_hex(*topo_hex));
    ASSERT_TRUE(topo.has_value());
    const int my_index = static_cast<int>(*index);
    const std::int32_t rank =
        topo->nodes()[static_cast<std::size_t>(my_index)].be_rank;
    TbonEndpoint::Callbacks cbs;
    cbs.on_down = [this, rank](std::uint32_t stream, std::uint32_t tag,
                               const Bytes&) {
      ByteWriter w;
      w.u64(static_cast<std::uint64_t>(rank));
      endpoint_->send_up(stream, tag, std::move(w).take());
    };
    endpoint_ = std::make_unique<TbonEndpoint>(self, std::move(*topo),
                                               my_index, std::move(cbs));
    endpoint_->start();
  }
  static void install(cluster::Machine& machine) {
    cluster::ProgramImage image;
    image.image_mb = 2.0;
    image.factory = [](const std::vector<std::string>&) {
      return std::make_unique<LeafDaemon>();
    };
    machine.install_program("leaf_be", std::move(image));
  }

 private:
  std::unique_ptr<TbonEndpoint> endpoint_;
};

/// Root-side driver program with a scripted body.
class RootFe : public cluster::Program {
 public:
  using Go = std::function<void(cluster::Process&, RootFe&)>;
  explicit RootFe(Go go) : go_(std::move(go)) {}
  [[nodiscard]] std::string_view name() const override { return "root_fe"; }
  void on_start(cluster::Process& self) override { go_(self, *this); }

  std::unique_ptr<TbonEndpoint> endpoint;

 private:
  Go go_;
};

struct NetParam {
  int backends;
  int comm_nodes;
  int fanout;
};

class TbonNetTest : public ::testing::TestWithParam<NetParam> {};

TEST_P(TbonNetTest, SumFilterReducesAcrossTopologies) {
  const auto [nbe, ncomm, fanout] = GetParam();
  TestCluster tc(nbe + ncomm);
  LeafDaemon::install(tc.machine);
  AdHocCommNode::install(tc.machine);

  std::vector<std::string> be_hosts;
  std::vector<std::string> comm_hosts;
  for (int i = 0; i < nbe; ++i) {
    be_hosts.push_back(tc.machine.compute_node(i).hostname());
  }
  for (int i = 0; i < ncomm; ++i) {
    comm_hosts.push_back(tc.machine.compute_node(nbe + i).hostname());
  }

  bool tree_ready = false;
  bool got_sum = false;
  std::uint64_t sum = 0;
  std::vector<std::uint32_t> contributing_ranks;

  cluster::SpawnOptions opts;
  opts.executable = "root_fe";
  auto res = tc.machine.front_end().spawn(
      std::make_unique<RootFe>([&](cluster::Process& self, RootFe& prog) {
        Topology topo =
            comm_hosts.empty()
                ? Topology::one_deep(self.node().hostname(),
                                     cluster::kTbonBasePort, be_hosts)
                : Topology::balanced(self.node().hostname(),
                                     cluster::kTbonBasePort, comm_hosts,
                                     be_hosts, fanout,
                                     cluster::kTbonBasePort + 1);
        ASSERT_TRUE(topo.valid());
        TbonEndpoint::Callbacks cbs;
        cbs.on_tree_ready = [&, topo](Status st) {
          ASSERT_TRUE(st.is_ok()) << st.to_string();
          tree_ready = true;
          const std::uint32_t stream =
              prog.endpoint->new_stream(kFilterSumU64);
          prog.endpoint->send_down(stream, /*tag=*/7, {});
        };
        cbs.on_up = [&](std::uint32_t, std::uint32_t tag, const Bytes& data,
                        const std::vector<std::uint32_t>& ranks) {
          EXPECT_EQ(tag, 7u);
          ByteReader r(data);
          sum = r.u64().value_or(0);
          contributing_ranks = ranks;
          got_sum = true;
        };
        prog.endpoint = std::make_unique<TbonEndpoint>(self, topo, 0,
                                                       std::move(cbs));
        prog.endpoint->start();
        adhoc_launch(self, topo, "tbon_commd", "leaf_be", {},
                     [](rsh::LaunchOutcome out) {
                       ASSERT_TRUE(out.status.is_ok())
                           << out.status.to_string();
                     });
      }),
      std::move(opts));
  ASSERT_TRUE(res.is_ok());
  ASSERT_TRUE(tc.run_until([&] { return got_sum; }, sim::seconds(1800)));

  // Sum of be ranks 0..n-1 and full rank coverage.
  EXPECT_EQ(sum, static_cast<std::uint64_t>(nbe) * (nbe - 1) / 2);
  ASSERT_EQ(contributing_ranks.size(), static_cast<std::size_t>(nbe));
  for (int i = 0; i < nbe; ++i) {
    EXPECT_EQ(contributing_ranks[static_cast<std::size_t>(i)],
              static_cast<std::uint32_t>(i));
  }
  EXPECT_TRUE(tree_ready);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TbonNetTest,
    ::testing::Values(NetParam{4, 0, 0},    // 1-deep
                      NetParam{8, 2, 2},    // one comm layer
                      NetParam{16, 6, 2},   // two comm layers
                      NetParam{12, 3, 3}),
    [](const ::testing::TestParamInfo<NetParam>& pinfo) {
      return "be" + std::to_string(pinfo.param.backends) + "_c" +
             std::to_string(pinfo.param.comm_nodes) + "_k" +
             std::to_string(std::max(pinfo.param.fanout, 1));
    });

/// Packs a topology with the *old* round-robin BE attachment: 2 leaf comm
/// daemons, consecutive BE ranks striding across them. Regression for the
/// contiguous-block placement change - overlay delivery and up-gather must
/// never assume a leaf daemon owns a contiguous rank range.
Topology round_robin_topology(const std::string& fe_host,
                              const std::vector<std::string>& comm_hosts,
                              const std::vector<std::string>& be_hosts) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(1 + comm_hosts.size() + be_hosts.size()));
  w.str(fe_host);
  w.u16(cluster::kTbonBasePort);
  w.i32(-1);
  w.boolean(false);
  w.i32(-1);
  for (const auto& host : comm_hosts) {
    w.str(host);
    w.u16(cluster::kTbonBasePort + 1);
    w.i32(0);
    w.boolean(false);
    w.i32(-1);
  }
  for (std::size_t b = 0; b < be_hosts.size(); ++b) {
    w.str(be_hosts[b]);
    w.u16(0);
    w.i32(1 + static_cast<std::int32_t>(b % comm_hosts.size()));
    w.boolean(true);
    w.i32(static_cast<std::int32_t>(b));
  }
  auto t = Topology::unpack(std::move(w).take());
  EXPECT_TRUE(t.has_value());
  return *t;
}

TEST(TbonNet, NonContiguousBePlacementStillDeliversAndGathers) {
  const int nbe = 8;
  const int ncomm = 2;
  TestCluster tc(nbe + ncomm);
  LeafDaemon::install(tc.machine);
  AdHocCommNode::install(tc.machine);

  std::vector<std::string> be_hosts;
  std::vector<std::string> comm_hosts;
  for (int i = 0; i < nbe; ++i) {
    be_hosts.push_back(tc.machine.compute_node(i).hostname());
  }
  for (int i = 0; i < ncomm; ++i) {
    comm_hosts.push_back(tc.machine.compute_node(nbe + i).hostname());
  }

  bool got_sum = false;
  std::uint64_t sum = 0;
  std::vector<std::uint32_t> contributing_ranks;
  cluster::SpawnOptions opts;
  opts.executable = "root_fe";
  auto res = tc.machine.front_end().spawn(
      std::make_unique<RootFe>([&](cluster::Process& self, RootFe& prog) {
        Topology topo = round_robin_topology(self.node().hostname(),
                                             comm_hosts, be_hosts);
        ASSERT_TRUE(topo.valid());
        TbonEndpoint::Callbacks cbs;
        cbs.on_tree_ready = [&](Status st) {
          ASSERT_TRUE(st.is_ok()) << st.to_string();
          const std::uint32_t stream =
              prog.endpoint->new_stream(kFilterSumU64);
          prog.endpoint->send_down(stream, /*tag=*/5, {});
        };
        cbs.on_up = [&](std::uint32_t, std::uint32_t, const Bytes& data,
                        const std::vector<std::uint32_t>& ranks) {
          ByteReader r(data);
          sum = r.u64().value_or(0);
          contributing_ranks = ranks;
          got_sum = true;
        };
        prog.endpoint = std::make_unique<TbonEndpoint>(self, topo, 0,
                                                       std::move(cbs));
        prog.endpoint->start();
        adhoc_launch(self, topo, "tbon_commd", "leaf_be", {},
                     [](rsh::LaunchOutcome out) {
                       ASSERT_TRUE(out.status.is_ok())
                           << out.status.to_string();
                     });
      }),
      std::move(opts));
  ASSERT_TRUE(res.is_ok());
  ASSERT_TRUE(tc.run_until([&] { return got_sum; }, sim::seconds(1800)));

  EXPECT_EQ(sum, static_cast<std::uint64_t>(nbe) * (nbe - 1) / 2);
  ASSERT_EQ(contributing_ranks.size(), static_cast<std::size_t>(nbe));
  for (int i = 0; i < nbe; ++i) {
    EXPECT_EQ(contributing_ranks[static_cast<std::size_t>(i)],
              static_cast<std::uint32_t>(i));
  }
}

TEST(TbonNet, MultipleStreamsKeepRoundsSeparate) {
  TestCluster tc(4);
  LeafDaemon::install(tc.machine);

  std::map<std::uint32_t, std::uint64_t> sums;  // stream -> result
  cluster::SpawnOptions opts;
  opts.executable = "root_fe";
  std::vector<std::string> be_hosts;
  for (int i = 0; i < 4; ++i) {
    be_hosts.push_back(tc.machine.compute_node(i).hostname());
  }
  auto res = tc.machine.front_end().spawn(
      std::make_unique<RootFe>([&](cluster::Process& self, RootFe& prog) {
        Topology topo = Topology::one_deep(self.node().hostname(),
                                           cluster::kTbonBasePort, be_hosts);
        TbonEndpoint::Callbacks cbs;
        cbs.on_tree_ready = [&](Status st) {
          ASSERT_TRUE(st.is_ok());
          const auto s1 = prog.endpoint->new_stream(kFilterSumU64);
          const auto s2 = prog.endpoint->new_stream(kFilterMaxU64);
          prog.endpoint->send_down(s1, 1, {});
          prog.endpoint->send_down(s2, 1, {});
          prog.endpoint->send_down(s1, 2, {});
        };
        cbs.on_up = [&](std::uint32_t stream, std::uint32_t tag,
                        const Bytes& data, const auto&) {
          ByteReader r(data);
          sums[stream * 100 + tag] = r.u64().value_or(9999);
        };
        prog.endpoint = std::make_unique<TbonEndpoint>(self, topo, 0,
                                                       std::move(cbs));
        prog.endpoint->start();
        adhoc_launch(self, topo, "tbon_commd", "leaf_be", {},
                     [](rsh::LaunchOutcome) {});
      }),
      std::move(opts));
  ASSERT_TRUE(res.is_ok());
  ASSERT_TRUE(tc.run_until([&] { return sums.size() == 3; },
                           sim::seconds(600)));
  EXPECT_EQ(sums[101], 6u);   // stream 1 (sum), tag 1: 0+1+2+3
  EXPECT_EQ(sums[201], 3u);   // stream 2 (max), tag 1
  EXPECT_EQ(sums[102], 6u);   // stream 1, tag 2 (separate round)
}


// --- self-healing overlay (TbonEndpoint::set_heal) ---------------------------

struct HealShared {
  std::map<int, cluster::Pid> pids;           ///< topo index -> pid
  std::map<int, TbonEndpoint*> endpoints;     ///< live endpoints by index
  std::map<std::uint32_t, int> up_count;      ///< tag -> root on_up firings
  std::map<std::uint32_t, std::uint64_t> sums;
  std::map<std::uint32_t, std::vector<std::uint32_t>> up_ranks;
  /// be_rank -> tag -> deliveries (duplicates are a heal bug).
  std::map<int, std::map<std::uint32_t, int>> down_count;
};

/// Leaf with heal enabled: echoes its be_rank per Down, counts deliveries.
class HealLeaf : public cluster::Program {
 public:
  explicit HealLeaf(HealShared* sh) : sh_(sh) {}
  [[nodiscard]] std::string_view name() const override {
    return "leaf_be_heal";
  }
  void on_start(cluster::Process& self) override {
    auto topo_hex = arg_value(self.args(), "--tbon-topology=");
    auto index = arg_int(self.args(), "--tbon-index=");
    ASSERT_TRUE(topo_hex && index);
    auto topo = Topology::unpack(*from_hex(*topo_hex));
    ASSERT_TRUE(topo.has_value());
    const int my_index = static_cast<int>(*index);
    const std::int32_t rank =
        topo->nodes()[static_cast<std::size_t>(my_index)].be_rank;
    TbonEndpoint::Callbacks cbs;
    cbs.on_down = [this, rank](std::uint32_t stream, std::uint32_t tag,
                               const Bytes&) {
      sh_->down_count[rank][tag] += 1;
      ByteWriter w;
      w.u64(static_cast<std::uint64_t>(rank));
      endpoint_->send_up(stream, tag, std::move(w).take());
    };
    endpoint_ = std::make_unique<TbonEndpoint>(self, std::move(*topo),
                                               my_index, std::move(cbs));
    endpoint_->set_heal(true);
    sh_->pids[my_index] = self.pid();
    sh_->endpoints[my_index] = endpoint_.get();
    endpoint_->start();
  }
  static void install(cluster::Machine& machine, HealShared* sh) {
    cluster::ProgramImage image;
    image.image_mb = 2.0;
    image.factory = [sh](const std::vector<std::string>&) {
      return std::make_unique<HealLeaf>(sh);
    };
    machine.install_program("leaf_be_heal", std::move(image));
  }

 private:
  HealShared* sh_;
  std::unique_ptr<TbonEndpoint> endpoint_;
};

/// Pure forwarding comm node with heal enabled.
class HealComm : public cluster::Program {
 public:
  explicit HealComm(HealShared* sh) : sh_(sh) {}
  [[nodiscard]] std::string_view name() const override {
    return "tbon_commd_heal";
  }
  void on_start(cluster::Process& self) override {
    auto topo_hex = arg_value(self.args(), "--tbon-topology=");
    auto index = arg_int(self.args(), "--tbon-index=");
    ASSERT_TRUE(topo_hex && index);
    auto topo = Topology::unpack(*from_hex(*topo_hex));
    ASSERT_TRUE(topo.has_value());
    const int my_index = static_cast<int>(*index);
    endpoint_ = std::make_unique<TbonEndpoint>(
        self, std::move(*topo), my_index, TbonEndpoint::Callbacks{});
    endpoint_->set_heal(true);
    sh_->pids[my_index] = self.pid();
    sh_->endpoints[my_index] = endpoint_.get();
    endpoint_->start();
  }
  static void install(cluster::Machine& machine, HealShared* sh) {
    cluster::ProgramImage image;
    image.image_mb = 6.0;
    image.factory = [sh](const std::vector<std::string>&) {
      return std::make_unique<HealComm>(sh);
    };
    machine.install_program("tbon_commd_heal", std::move(image));
  }

 private:
  HealShared* sh_;
  std::unique_ptr<TbonEndpoint> endpoint_;
};

TEST(TbonNet, HealedOverlaySurvivesCommDeathsWithoutDuplicates) {
  const int nbe = 4;
  const int ncomm = 3;
  HealShared hs;
  TestCluster tc(nbe + ncomm);
  obs::Metrics metrics;
  tc.machine.set_metrics(&metrics);
  HealLeaf::install(tc.machine, &hs);
  HealComm::install(tc.machine, &hs);

  std::vector<std::string> be_hosts;
  std::vector<std::string> comm_hosts;
  for (int i = 0; i < nbe; ++i) {
    be_hosts.push_back(tc.machine.compute_node(i).hostname());
  }
  for (int i = 0; i < ncomm; ++i) {
    comm_hosts.push_back(tc.machine.compute_node(nbe + i).hostname());
  }

  // fanout 2, 3 comm nodes: index 1 under the root, 2 and 3 under 1, two
  // leaves under each of 2/3 (indices 4..7).
  bool tree_ready = false;
  std::uint32_t stream = 0;
  cluster::SpawnOptions opts;
  opts.executable = "root_fe";
  auto res = tc.machine.front_end().spawn(
      std::make_unique<RootFe>([&](cluster::Process& self, RootFe& prog) {
        Topology topo = Topology::balanced(
            self.node().hostname(), cluster::kTbonBasePort, comm_hosts,
            be_hosts, /*fanout=*/2, cluster::kTbonBasePort + 1);
        ASSERT_TRUE(topo.valid());
        TbonEndpoint::Callbacks cbs;
        cbs.on_tree_ready = [&](Status st) {
          ASSERT_TRUE(st.is_ok()) << st.to_string();
          tree_ready = true;
          stream = prog.endpoint->new_stream(kFilterSumU64);
        };
        cbs.on_up = [&](std::uint32_t, std::uint32_t tag, const Bytes& data,
                        const std::vector<std::uint32_t>& ranks) {
          ByteReader r(data);
          hs.up_count[tag] += 1;
          hs.sums[tag] = r.u64().value_or(0);
          hs.up_ranks[tag] = ranks;
        };
        prog.endpoint = std::make_unique<TbonEndpoint>(self, topo, 0,
                                                       std::move(cbs));
        prog.endpoint->set_heal(true);
        hs.endpoints[0] = prog.endpoint.get();
        prog.endpoint->start();
        adhoc_launch(self, topo, "tbon_commd_heal", "leaf_be_heal", {},
                     [](rsh::LaunchOutcome out) {
                       ASSERT_TRUE(out.status.is_ok())
                           << out.status.to_string();
                     });
      }),
      std::move(opts));
  ASSERT_TRUE(res.is_ok());
  ASSERT_TRUE(tc.run_until([&] { return tree_ready && stream != 0; },
                           sim::seconds(1800)));

  // Pre-failure baseline round.
  hs.endpoints[0]->send_down(stream, 7, {});
  ASSERT_TRUE(tc.run_until([&] { return hs.up_count[7] != 0; }));
  EXPECT_EQ(hs.sums[7], 6u);  // 0+1+2+3
  EXPECT_EQ(hs.up_count[7], 1);

  // Kill comm index 3: its two leaves re-Hello comm 1.
  tc.machine.find_process(hs.pids[3])->exit(9);
  ASSERT_TRUE(tc.run_until(
      [&] { return metrics.counter("tbon.heal.adoptions") >= 2.0; }))
      << "orphaned leaves were never adopted";
  EXPECT_EQ(hs.endpoints[0]->live_children(), std::set<int>{1});

  hs.endpoints[0]->send_down(stream, 8, {});
  ASSERT_TRUE(tc.run_until([&] { return hs.up_count[8] != 0; }))
      << "post-heal round never reduced";
  EXPECT_EQ(hs.sums[8], 6u) << "lost a leaf contribution after heal";
  ASSERT_EQ(hs.up_ranks[8].size(), 4u);
  EXPECT_EQ(hs.up_count[8], 1);

  // Cascade: kill comm 1 (the root's only child). Its children - comm 2
  // plus the two adopted leaves - climb to the root itself.
  tc.machine.find_process(hs.pids[1])->exit(9);
  ASSERT_TRUE(tc.run_until(
      [&] { return metrics.counter("tbon.heal.adoptions") >= 5.0; }))
      << "second-wave orphans were never adopted";
  EXPECT_EQ(hs.endpoints[0]->live_children(), (std::set<int>{2, 6, 7}));
  EXPECT_EQ(hs.endpoints[6]->parent_index(), 0);
  EXPECT_EQ(hs.endpoints[7]->parent_index(), 0);

  hs.endpoints[0]->send_down(stream, 9, {});
  ASSERT_TRUE(tc.run_until([&] { return hs.up_count[9] != 0; }))
      << "post-cascade round never reduced";
  EXPECT_EQ(hs.sums[9], 6u);
  ASSERT_EQ(hs.up_ranks[9].size(), 4u);
  EXPECT_EQ(hs.up_count[9], 1);

  // Exactly-once at every surviving endpoint for every round that ran
  // while that leaf was attached: no duplicate TBON packets delivered.
  for (int rank = 0; rank < nbe; ++rank) {
    for (const std::uint32_t tag : {7u, 8u, 9u}) {
      EXPECT_LE(hs.down_count[rank][tag], 1)
          << "duplicate Down at be " << rank << " tag " << tag;
    }
    EXPECT_EQ(hs.down_count[rank][9], 1) << "be " << rank;
  }
}

}  // namespace
}  // namespace lmon::tbon
