// trace_session_test - the observability plane end to end: run a real FE
// launch-and-spawn session with a Tracer attached, export a Perfetto trace,
// and check the acceptance properties of the obs subsystem:
//
//   1. Spans exist for the bootstrap (session/engine/cospawn), the RM
//      per-level tree fan-out, the daemons, and the handshake collective -
//      with correct causal parent links across process boundaries.
//   2. The critical-path extractor's region sums reproduce
//      bench_fig3_launchspawn's e0..e11 arithmetic *exactly* (double
//      equality, not tolerance - both read the same marks).
//   3. Tracing is purely observational: a traced run and an untraced run of
//      the same cluster produce bit-identical e0..e11 timelines and cost
//      ledgers.
//
// The exported Chrome-trace JSON's structural skeleton is held to a golden
// (tests/golden/trace_event.schema.txt), same regime as the bench reports.
#include <gtest/gtest.h>

#include <fstream>
#include <memory>
#include <sstream>
#include <string_view>
#include <vector>

#include "bench/ablation_rsh_lib.hpp"  // bench::json_shape
#include "core/fe_api.hpp"
#include "obs/critical_path.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/trace.hpp"
#include "simkernel/stats.hpp"
#include "tests/test_util.hpp"

#ifndef LMON_SOURCE_DIR
#error "LMON_SOURCE_DIR must point at the repo root (set by CMakeLists.txt)"
#endif

namespace lmon {
namespace {

using testing::TestCluster;

struct SessionRun {
  bool ok = false;
  sim::Timeline timeline;
  sim::CostLedger ledger;
  obs::Metrics metrics;
  obs::FlightRecorderHub flight;
  /// Inspect-only after run_session returns (the simulator it references is
  /// gone, but spans/instants/marks are plain data).
  std::unique_ptr<obs::Tracer> tracer;
};

/// Runs one hello_be launch-and-spawn session at `ndaemons` scale. The
/// timeline/ledger are always attached so traced and untraced runs can be
/// compared mark for mark; the tracer/metrics/flight hub only when
/// `traced`.
SessionRun run_session(int ndaemons, bool traced,
                       comm::LaunchStrategyKind strategy =
                           comm::LaunchStrategyKind::RmBulk) {
  TestCluster tc(ndaemons);
  SessionRun run;
  tc.machine.set_timeline(&run.timeline);
  tc.machine.set_ledger(&run.ledger);
  std::unique_ptr<obs::LogBridge> bridge;
  if (traced) {
    run.tracer = std::make_unique<obs::Tracer>(tc.simulator);
    bridge = std::make_unique<obs::LogBridge>(*run.tracer);
    tc.machine.set_tracer(run.tracer.get());
    tc.machine.set_metrics(&run.metrics);
    tc.machine.set_flight_recorder(&run.flight);
  }

  bool done = false;
  Status status;
  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    (void)fe->init();
    auto sid = fe->create_session();
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    cfg.launch_strategy = strategy;
    rm::JobSpec job{ndaemons, 8, "mpi_app", {}};
    fe->launch_and_spawn(sid.value, job, cfg, [&](Status st) {
      status = st;
      done = true;
    });
  });
  tc.run_until([&] { return done; }, sim::seconds(600));
  run.ok = done && status.is_ok();

  // Detach before the cluster (and its simulator) dies; the tracer is only
  // inspected from here on.
  tc.machine.set_timeline(nullptr);
  tc.machine.set_ledger(nullptr);
  tc.machine.set_tracer(nullptr);
  tc.machine.set_metrics(nullptr);
  tc.machine.set_flight_recorder(nullptr);
  return run;
}

/// All spans with this exact name.
std::vector<const obs::SpanRecord*> spans_named(const obs::Tracer& tracer,
                                                std::string_view name) {
  std::vector<const obs::SpanRecord*> out;
  for (const auto& s : tracer.spans()) {
    if (s.name == name) out.push_back(&s);
  }
  return out;
}

TEST(TraceSession, BootstrapSpansHaveCorrectParentLinks) {
  const SessionRun run = run_session(16, /*traced=*/true);
  ASSERT_TRUE(run.ok);
  const obs::Tracer& tr = *run.tracer;

  // FE session -> engine -> cospawn chain, crossing the FE/engine process
  // boundary via the "session:<cookie>" anchor.
  const obs::SpanRecord* session = tr.find_span("session");
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->parent, obs::kNoSpan);
  EXPECT_FALSE(session->open());

  const obs::SpanRecord* engine = tr.find_span("engine");
  ASSERT_NE(engine, nullptr);
  EXPECT_EQ(engine->parent, session->id);

  for (std::string_view stage :
       {"engine.rm_launch", "engine.rpdtab_fetch", "engine.cospawn"}) {
    const obs::SpanRecord* s = tr.find_span(stage);
    ASSERT_NE(s, nullptr) << stage;
    EXPECT_EQ(s->parent, engine->id) << stage;
    EXPECT_FALSE(s->open()) << stage;
  }

  // The RM's bulk daemon launch hangs off the cospawn span (the strategy
  // layer anchored "cospawn:<session>" before calling into the RM).
  const obs::SpanRecord* cospawn = tr.find_span("engine.cospawn");
  const obs::SpanRecord* daemon_launch = tr.find_span("rm.daemon_launch");
  ASSERT_NE(daemon_launch, nullptr);
  EXPECT_EQ(daemon_launch->parent, cospawn->id);
}

TEST(TraceSession, FanoutDaemonAndCollectiveSpans) {
  const SessionRun run = run_session(16, /*traced=*/true);
  ASSERT_TRUE(run.ok);
  const obs::Tracer& tr = *run.tracer;
  const obs::SpanRecord* job_launch = tr.find_span("rm.job_launch");
  const obs::SpanRecord* daemon_launch = tr.find_span("rm.daemon_launch");
  ASSERT_NE(job_launch, nullptr);
  ASSERT_NE(daemon_launch, nullptr);

  // Per-level fan-out: the launcher runs one slurmd tree per phase (the
  // MPI job, then the daemon bulk launch), so exactly one tree-launch
  // level roots on each launch span; every other level parents on the
  // level that forwarded its chunk.
  const auto tree = spans_named(tr, "rm.tree_launch");
  ASSERT_GE(tree.size(), 2u);
  int job_roots = 0;
  int daemon_roots = 0;
  int chained = 0;
  for (const obs::SpanRecord* level : tree) {
    EXPECT_FALSE(level->open());
    if (level->parent == job_launch->id) {
      ++job_roots;
      continue;
    }
    if (level->parent == daemon_launch->id) {
      ++daemon_roots;
      continue;
    }
    const obs::SpanRecord* parent = tr.span(level->parent);
    ASSERT_NE(parent, nullptr);
    EXPECT_EQ(parent->name, "rm.tree_launch");
    ++chained;
  }
  EXPECT_EQ(job_roots, 1);
  EXPECT_EQ(daemon_roots, 1);
  EXPECT_GT(chained, 0);

  // One daemon span per node, each parented on the tree-launch level that
  // spawned it - on the same node (the level launches its first host
  // locally).
  const auto daemons = spans_named(tr, "daemon");
  EXPECT_EQ(daemons.size(), 16u);
  for (const obs::SpanRecord* d : daemons) {
    const obs::SpanRecord* parent = tr.span(d->parent);
    ASSERT_NE(parent, nullptr);
    EXPECT_EQ(parent->name, "rm.tree_launch");
    EXPECT_EQ(parent->node, d->node);
  }

  // The handshake collective hangs off a daemon span.
  const auto collectives = spans_named(tr, "iccl.handshake_collective");
  ASSERT_FALSE(collectives.empty());
  for (const obs::SpanRecord* c : collectives) {
    const obs::SpanRecord* parent = tr.span(c->parent);
    ASSERT_NE(parent, nullptr);
    EXPECT_EQ(parent->name, "daemon");
    EXPECT_EQ(parent->node, c->node);
  }

  // critical_path() walks back to a root span.
  const auto chain = obs::critical_path(tr);
  ASSERT_FALSE(chain.empty());
  EXPECT_EQ(chain.front()->parent, obs::kNoSpan);
}

TEST(TraceSession, TreeRshFanoutSpansChainPerLevel) {
  const SessionRun run =
      run_session(16, /*traced=*/true, comm::LaunchStrategyKind::TreeRsh);
  ASSERT_TRUE(run.ok);
  const obs::Tracer& tr = *run.tracer;

  // The FE-side tree launcher roots on the engine's cospawn span.
  const obs::SpanRecord* cospawn = tr.find_span("engine.cospawn");
  const obs::SpanRecord* tree = tr.find_span("rsh.tree_launch");
  ASSERT_NE(cospawn, nullptr);
  ASSERT_NE(tree, nullptr);
  EXPECT_EQ(tree->parent, cospawn->id);
  EXPECT_FALSE(tree->open());

  // Every remote agent parents either on the FE launcher (level 1) or on
  // the agent that rsh'd it (deeper levels), and every daemon on the agent
  // that spawned it locally.
  const auto agents = spans_named(tr, "rsh.agent");
  ASSERT_FALSE(agents.empty());
  for (const obs::SpanRecord* a : agents) {
    const obs::SpanRecord* parent = tr.span(a->parent);
    ASSERT_NE(parent, nullptr);
    EXPECT_TRUE(parent->name == "rsh.tree_launch" ||
                parent->name == "rsh.agent")
        << "agent parented on " << parent->name;
  }
  const auto daemons = spans_named(tr, "daemon");
  EXPECT_EQ(daemons.size(), 16u);
  for (const obs::SpanRecord* d : daemons) {
    const obs::SpanRecord* parent = tr.span(d->parent);
    ASSERT_NE(parent, nullptr);
    EXPECT_EQ(parent->name, "rsh.agent");
    EXPECT_EQ(parent->node, d->node);
  }
}

TEST(TraceSession, CriticalPathReproducesFig3Arithmetic) {
  const SessionRun run = run_session(16, /*traced=*/true);
  ASSERT_TRUE(run.ok);

  // bench_fig3_launchspawn's Measurement arithmetic, verbatim.
  const sim::Timeline& tl = run.timeline;
  const sim::CostLedger& lg = run.ledger;
  const double total = sim::to_seconds(tl.between("e0_fe_call", "e11_return"));
  const double t_job = sim::to_seconds(tl.between("t_job_begin", "t_job_end"));
  const double t_daemon =
      sim::to_seconds(tl.between("t_daemon_begin", "t_daemon_end"));
  const double t_setup =
      sim::to_seconds(tl.between("be_e8_setup_begin", "be_e9_setup_done"));
  const double t_collective = sim::to_seconds(
      tl.between("be_t_collective_begin", "be_t_collective_end"));
  const double tracing = sim::to_seconds(lg.total("tracing"));
  const double rpdtab = sim::to_seconds(lg.total("rpdtab_fetch"));
  double handshake = sim::to_seconds(
      tl.between("be_e10_ready", "e11_return") +
      tl.between("e7_handshake_begin", "be_t_collective_begin") -
      tl.between("be_e8_setup_begin", "be_e9_setup_done"));
  if (handshake < 0) handshake = 0;
  const double other = sim::to_seconds(lg.total("other"));

  // The timeline-side extractor and the tracer-side extractor (fed by the
  // marks the Tracer absorbed through Machine::mark/charge) must both
  // reproduce the bench numbers exactly - no tolerance.
  for (const obs::RegionBreakdown& r :
       {obs::extract_regions(tl, lg), obs::extract_regions(*run.tracer)}) {
    EXPECT_EQ(r.total, total);
    EXPECT_EQ(r.t_job, t_job);
    EXPECT_EQ(r.t_daemon, t_daemon);
    EXPECT_EQ(r.t_setup, t_setup);
    EXPECT_EQ(r.t_collective, t_collective);
    EXPECT_EQ(r.tracing, tracing);
    EXPECT_EQ(r.rpdtab, rpdtab);
    EXPECT_EQ(r.handshake, handshake);
    EXPECT_EQ(r.other, other);
    EXPECT_EQ(r.lmon_overhead(), tracing + rpdtab + handshake + other);
  }
  EXPECT_GT(total, 0.0);
  EXPECT_GT(t_daemon, 0.0);
}

TEST(TraceSession, TracingAddsZeroObservableCost) {
  const SessionRun traced = run_session(8, /*traced=*/true);
  const SessionRun plain = run_session(8, /*traced=*/false);
  ASSERT_TRUE(traced.ok);
  ASSERT_TRUE(plain.ok);

  // Same simulated instants for every mark, same cost charges: the
  // observability plane never perturbs the simulation.
  EXPECT_EQ(traced.timeline.marks(), plain.timeline.marks());
  EXPECT_EQ(traced.ledger.entries(), plain.ledger.entries());
}

TEST(TraceSession, MetricsAndFlightRecorderCaptureTheRun) {
  SessionRun run = run_session(8, /*traced=*/true);
  ASSERT_TRUE(run.ok);

  EXPECT_GT(run.metrics.counter("net.messages_total"), 0.0);
  EXPECT_GT(run.metrics.counter("net.bytes_total"), 0.0);
  EXPECT_GT(run.metrics.counter("rm.tree_launch.requests"), 0.0);
  const obs::Metrics::Histogram* bytes = run.metrics.histogram("net.message_bytes");
  ASSERT_NE(bytes, nullptr);
  EXPECT_GT(bytes->count, 0u);

  // Every daemon left at least its init entry in the flight recorder, and
  // the dump is a readable report.
  const std::string dump = run.flight.dump();
  EXPECT_NE(dump.find("daemon"), std::string::npos);
  EXPECT_NE(dump.find("init rank="), std::string::npos);
}

TEST(TraceSession, ConcurrentVirtualSessionsCarryPerSessionLabels) {
  // Persistent multiplexed service attribution: two virtual sessions on
  // one tree each get a closed "vsession" span (parented on the owner's
  // session span, labeled with its vsid) and their fabric traffic lands
  // under iccl.s<vsid>.* counters alongside the aggregate.
  TestCluster tc(8);
  obs::Tracer tracer(tc.simulator);
  obs::Metrics metrics;
  tc.machine.set_tracer(&tracer);
  tc.machine.set_metrics(&metrics);

  int vready = 0;
  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    (void)fe->init();
    const int owner = fe->create_session().value;
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    rm::JobSpec job{8, 2, "mpi_app", {}};
    fe->launch_and_spawn(owner, job, cfg, [&, owner](Status st) {
      ASSERT_TRUE(st.is_ok()) << st.to_string();
      // Two concurrent virtual attaches onto the owner's tree.
      for (int i = 0; i < 2; ++i) {
        const int vsid = fe->create_session().value;
        core::FrontEnd::SpawnConfig vcfg;
        vcfg.attach_to = fe->infra_of(owner);
        fe->launch_and_spawn(vsid, rm::JobSpec{}, vcfg, [&](Status vst) {
          EXPECT_TRUE(vst.is_ok()) << vst.to_string();
          ++vready;
        });
      }
    });
  });
  ASSERT_TRUE(tc.run_until([&] { return vready == 2; }));

  const obs::SpanRecord* session = tracer.find_span("session");
  ASSERT_NE(session, nullptr);
  const auto vspans = spans_named(tracer, "vsession");
  ASSERT_EQ(vspans.size(), 2u);
  bool saw1 = false;
  bool saw2 = false;
  for (const obs::SpanRecord* v : vspans) {
    EXPECT_FALSE(v->open());
    EXPECT_EQ(v->parent, session->id);
    saw1 = saw1 || v->detail.find("vsid=1") != std::string::npos;
    saw2 = saw2 || v->detail.find("vsid=2") != std::string::npos;
  }
  EXPECT_TRUE(saw1) << "no vsession span labeled vsid=1";
  EXPECT_TRUE(saw2) << "no vsession span labeled vsid=2";

  // Per-session fabric attribution (the attach-ack gather rides the
  // virtual session's stream key) plus the FE-side attach counter; no
  // frame was ever dropped for want of a session binding.
  EXPECT_EQ(metrics.counter("fe.vattach"), 2.0);
  EXPECT_EQ(metrics.counter("iccl.s1.gather_contributions"), 8.0);
  EXPECT_EQ(metrics.counter("iccl.s2.gather_contributions"), 8.0);
  EXPECT_EQ(metrics.counter("iccl.mux.unbound_drops"), 0.0);

  tc.machine.set_tracer(nullptr);
  tc.machine.set_metrics(nullptr);
}

TEST(TraceSession, PerfettoExportMatchesGoldenSchema) {
  SessionRun run = run_session(8, /*traced=*/true);
  ASSERT_TRUE(run.ok);

  const std::string json = obs::to_chrome_trace_json(*run.tracer);
  const std::string live_shape = bench::json_shape(json);

  const std::string golden_path =
      std::string(LMON_SOURCE_DIR) + "/tests/golden/trace_event.schema.txt";
  std::ifstream in(golden_path);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path;
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string golden = buf.str();
  while (!golden.empty() && (golden.back() == '\n' || golden.back() == '\r')) {
    golden.pop_back();
  }
  EXPECT_EQ(live_shape, golden)
      << "Chrome-trace export schema drifted.\nlive skeleton:\n"
      << live_shape << "\nif intentional, update the golden file.";

  // And the file-writing path round-trips the same bytes.
  const std::string out_path = "trace_session_test.trace.json";
  ASSERT_TRUE(obs::write_chrome_trace(*run.tracer, out_path).is_ok());
  std::ifstream back(out_path);
  std::ostringstream written;
  written << back.rdbuf();
  EXPECT_EQ(written.str(), json);
}

}  // namespace
}  // namespace lmon
