// Integration tests for the pluggable launch strategies: the same
// launchAndSpawn call must produce a working daemon session whether the
// daemons were bootstrapped through the RM's bulk launch (paper §4), a
// serial front-end rsh loop, or the recursive tree-rsh protocol (§2) - and
// over any fabric topology. The daemons themselves cannot tell the
// difference: every strategy feeds them the same comm/bootstrap argv.
#include <gtest/gtest.h>

#include <memory>

#include "core/fe_api.hpp"
#include "tests/flight_check.hpp"
#include "tests/test_util.hpp"

namespace lmon {
namespace {

using testing::TestCluster;

struct Param {
  comm::LaunchStrategyKind strategy;
  comm::TopologySpec topology;
  int nodes;
};

class LaunchStrategyTest : public ::testing::TestWithParam<Param> {};

TEST_P(LaunchStrategyTest, SessionComesUpAndTearsDown) {
  const auto [strategy, topology, nodes] = GetParam();
  TestCluster tc(nodes);
  testing::FlightRecorderOnFailure flight(tc.machine);

  bool done = false;
  Status status;
  int sid = -1;
  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    ASSERT_TRUE(fe->init().is_ok());
    auto s = fe->create_session();
    sid = s.value;
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    cfg.launch_strategy = strategy;
    cfg.topology = topology;
    rm::JobSpec job{nodes, 2, "mpi_app", {}};
    fe->launch_and_spawn(sid, job, cfg, [&](Status st) {
      status = st;
      done = true;
    });
  });
  ASSERT_TRUE(tc.run_until([&] { return done; }, sim::seconds(600)));
  ASSERT_TRUE(status.is_ok()) << status.to_string();
  EXPECT_EQ(fe->state(sid), core::FrontEnd::SessionState::Ready);

  // Every strategy must deliver the full daemon table, rank-ordered.
  const core::Rpdtab* daemons = fe->daemon_table(sid);
  ASSERT_NE(daemons, nullptr);
  ASSERT_EQ(daemons->entries().size(), static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    EXPECT_EQ(daemons->entries()[static_cast<std::size_t>(i)].rank, i);
  }

  // And one daemon actually runs on every compute node.
  int live_daemons = 0;
  for (int i = 0; i < tc.machine.num_compute_nodes(); ++i) {
    for (cluster::Process* p : tc.machine.compute_node(i).live_processes()) {
      if (p->options().executable == "hello_be") ++live_daemons;
    }
  }
  EXPECT_EQ(live_daemons, nodes);

  // Teardown reaps the daemons regardless of how they were launched.
  bool killed = false;
  fe->kill(sid, [&](Status) { killed = true; });
  ASSERT_TRUE(tc.run_until([&] { return killed; }));
  tc.simulator.run(tc.simulator.now() + sim::seconds(2));
  live_daemons = 0;
  for (int i = 0; i < tc.machine.num_compute_nodes(); ++i) {
    for (cluster::Process* p : tc.machine.compute_node(i).live_processes()) {
      if (p->options().executable == "hello_be") ++live_daemons;
    }
  }
  EXPECT_EQ(live_daemons, 0);
}

constexpr auto kRm = comm::LaunchStrategyKind::RmBulk;
constexpr auto kSerial = comm::LaunchStrategyKind::SerialRsh;
constexpr auto kTree = comm::LaunchStrategyKind::TreeRsh;
constexpr auto kKAry = comm::TopologyKind::KAry;
constexpr auto kBinomial = comm::TopologyKind::Binomial;
constexpr auto kFlat = comm::TopologyKind::Flat;

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndTopologies, LaunchStrategyTest,
    ::testing::Values(Param{kRm, {kKAry, 2}, 8}, Param{kRm, {kBinomial, 0}, 8},
                      Param{kSerial, {kKAry, 2}, 8},
                      Param{kSerial, {kBinomial, 0}, 6},
                      Param{kSerial, {kFlat, 0}, 4},
                      Param{kTree, {kKAry, 2}, 8},
                      Param{kTree, {kBinomial, 0}, 7},
                      Param{kTree, {kKAry, 4}, 16},
                      Param{kSerial, {kKAry, 2}, 1},
                      Param{kTree, {kKAry, 2}, 1}),
    [](const ::testing::TestParamInfo<Param>& pinfo) {
      std::string name =
          std::string(comm::to_string(pinfo.param.strategy)) + "_" +
          pinfo.param.topology.to_string() + "_n" +
          std::to_string(pinfo.param.nodes);
      for (char& c : name) {
        if (c == ':' || c == '-') c = '_';
      }
      return name;
    });

// --- fault injection ---------------------------------------------------------
//
// Deterministic fault harness for the tree-rsh bootstrap: kill the
// mid-tree launch agent and assert the ack-channel keepalive cascade
// reaps its whole subtree - no leaked daemons - over every fabric
// topology. With 8 nodes and launch fan-out 2 the agent tree is
//
//   FE ── agent@0 ── agent@1 ── agent@2      (subtree of the victim:
//    │        └───── agent@3                  hosts 1 and 2)
//    └── agent@4 ── agent@5 ── agent@6
//             └───── agent@7
//
// so killing agent@1 must take down exactly the daemons on hosts 1-2 while
// hosts 0 and 3-7 stay up.

constexpr int kFaultNodes = 8;
constexpr int kVictimHost = 1;
const int kVictimSubtree[] = {1, 2};
const int kSurvivors[] = {0, 3, 4, 5, 6, 7};

int count_on_node(TestCluster& tc, int node, std::string_view exe) {
  int count = 0;
  for (cluster::Process* p : tc.machine.compute_node(node).live_processes()) {
    if (p->options().executable == exe) ++count;
  }
  return count;
}

cluster::Process* find_on_node(TestCluster& tc, int node,
                               std::string_view exe) {
  for (cluster::Process* p : tc.machine.compute_node(node).live_processes()) {
    if (p->options().executable == exe) return p;
  }
  return nullptr;
}

int count_everywhere(TestCluster& tc, std::string_view exe) {
  int count = 0;
  for (int i = 0; i < tc.machine.num_compute_nodes(); ++i) {
    count += count_on_node(tc, i, exe);
  }
  return count;
}

class TreeRshFaultTest : public ::testing::TestWithParam<comm::TopologySpec> {
 protected:
  /// Starts a tree-rsh launchAndSpawn over the param fabric (arity 2 keeps
  /// the launch fan-out at 2, so mid-tree agents exist for every fabric).
  void start(TestCluster& tc, std::shared_ptr<core::FrontEnd>& fe, int& sid,
             bool& done, Status& status) {
    tc.spawn_fe([&, this](cluster::Process& self) {
      fe = std::make_shared<core::FrontEnd>(self);
      ASSERT_TRUE(fe->init().is_ok());
      auto s = fe->create_session();
      sid = s.value;
      core::FrontEnd::SpawnConfig cfg;
      cfg.daemon_exe = "hello_be";
      cfg.launch_strategy = comm::LaunchStrategyKind::TreeRsh;
      cfg.topology = GetParam();
      rm::JobSpec job{kFaultNodes, 2, "mpi_app", {}};
      fe->launch_and_spawn(sid, job, cfg, [&](Status st) {
        status = st;
        done = true;
      });
    });
  }

  void expect_subtree_reaped(TestCluster& tc) {
    for (int host : kVictimSubtree) {
      EXPECT_EQ(count_on_node(tc, host, "hello_be"), 0)
          << "leaked daemon on node " << host;
      EXPECT_EQ(count_on_node(tc, host, "rsh_tree_agent"), 0)
          << "leaked agent on node " << host;
    }
  }
};

TEST_P(TreeRshFaultTest, MidTreeAgentDeathAfterReadyReapsSubtree) {
  TestCluster tc(kFaultNodes);
  testing::FlightRecorderOnFailure flight(tc.machine);
  std::shared_ptr<core::FrontEnd> fe;
  int sid = -1;
  bool done = false;
  Status status;
  start(tc, fe, sid, done, status);
  ASSERT_TRUE(tc.run_until([&] { return done; }, sim::seconds(600)));
  ASSERT_TRUE(status.is_ok()) << status.to_string();

  // Kill the mid-tree agent; the keepalive cascade must reap its subtree.
  cluster::Process* victim = find_on_node(tc, kVictimHost, "rsh_tree_agent");
  ASSERT_NE(victim, nullptr);
  victim->exit(9);
  tc.simulator.run(tc.simulator.now() + sim::seconds(2));

  expect_subtree_reaped(tc);
  for (int host : kSurvivors) {
    EXPECT_EQ(count_on_node(tc, host, "hello_be"), 1)
        << "survivor daemon missing on node " << host;
  }

  // Full teardown still reaps everything that remains.
  bool killed = false;
  fe->kill(sid, [&](Status) { killed = true; });
  ASSERT_TRUE(tc.run_until([&] { return killed; }));
  tc.simulator.run(tc.simulator.now() + sim::seconds(2));
  EXPECT_EQ(count_everywhere(tc, "hello_be"), 0);
  EXPECT_EQ(count_everywhere(tc, "rsh_tree_agent"), 0);
}

TEST_P(TreeRshFaultTest, MidTreeAgentDeathDuringBootstrapFailsAndReaps) {
  TestCluster tc(kFaultNodes);
  testing::FlightRecorderOnFailure flight(tc.machine);
  std::shared_ptr<core::FrontEnd> fe;
  int sid = -1;
  bool done = false;
  Status status;
  start(tc, fe, sid, done, status);

  // Wait until the victim's child agent exists (the victim is alive and has
  // not acked yet - its ack waits on the grandchild), then kill mid-launch.
  ASSERT_TRUE(tc.run_until(
      [&] { return find_on_node(tc, 2, "rsh_tree_agent") != nullptr; },
      sim::seconds(600)));
  ASSERT_FALSE(done);
  cluster::Process* victim = find_on_node(tc, kVictimHost, "rsh_tree_agent");
  ASSERT_NE(victim, nullptr);
  victim->exit(9);

  // The launch must complete *with an error* (no hang): either the parent
  // agent detects the lost unacked session ("lost tree agent") or the
  // victim's already-wired fabric neighbours notice its daemon vanish
  // ("fabric child lost") - whichever layer reports first, the failure is
  // deterministic and attributed.
  ASSERT_TRUE(tc.run_until([&] { return done; }, sim::seconds(600)));
  EXPECT_FALSE(status.is_ok());
  const std::string why = status.to_string();
  EXPECT_TRUE(why.find("lost tree agent") != std::string::npos ||
              why.find("fabric child lost") != std::string::npos)
      << why;
  tc.simulator.run(tc.simulator.now() + sim::seconds(2));
  expect_subtree_reaped(tc);

  // Teardown after the failed launch leaks nothing anywhere.
  bool killed = false;
  fe->kill(sid, [&](Status) { killed = true; });
  ASSERT_TRUE(tc.run_until([&] { return killed; }));
  tc.simulator.run(tc.simulator.now() + sim::seconds(2));
  EXPECT_EQ(count_everywhere(tc, "hello_be"), 0);
  EXPECT_EQ(count_everywhere(tc, "rsh_tree_agent"), 0);
}

INSTANTIATE_TEST_SUITE_P(
    Fabrics, TreeRshFaultTest,
    ::testing::Values(comm::TopologySpec{kKAry, 2},
                      comm::TopologySpec{kBinomial, 2},
                      comm::TopologySpec{kFlat, 2}),
    [](const ::testing::TestParamInfo<comm::TopologySpec>& pinfo) {
      std::string name = pinfo.param.to_string();
      for (char& c : name) {
        if (c == ':' || c == '-') c = '_';
      }
      return name;
    });

/// Minimal front end for driving TreeRshLauncher without any fabric: the
/// daemons are plain sleepers, so a lost child session can only surface
/// through the launcher itself.
class RawTreeFe : public cluster::Program {
 public:
  using Go = std::function<void(cluster::Process&)>;
  explicit RawTreeFe(Go go) : go_(std::move(go)) {}
  [[nodiscard]] std::string_view name() const override { return "raw_tree_fe"; }
  void on_start(cluster::Process& self) override { go_(self); }
  void on_message(cluster::Process& self, const cluster::ChannelPtr& ch,
                  cluster::Message msg) override {
    (void)rsh::TreeRshLauncher::handle_report(self, ch, msg);
  }

 private:
  Go go_;
};

TEST(TreeRshLauncherFault, RootDeathDuringSiblingLaunchKeepsSurvivorsReapable) {
  // Regression: a root agent dying while a *sibling* root chunk's rsh exec
  // is still in flight (the ~230 ms serialized-session window) must not
  // abort the collection early - finishing immediately would drop the
  // survivor's session and ack channel, leaving its whole subtree
  // unreapable. The collector instead stops expecting the dead subtree and
  // still hands back every surviving keepalive.
  TestCluster tc(kFaultNodes);
  testing::FlightRecorderOnFailure flight(tc.machine);
  bool done = false;
  rsh::LaunchOutcome outcome;
  cluster::Process* fe_proc = nullptr;
  std::vector<std::string> hosts;
  for (int i = 0; i < kFaultNodes; ++i) {
    hosts.push_back(tc.machine.compute_node(i).hostname());
  }
  cluster::SpawnOptions opts;
  opts.executable = "raw_tree_fe";
  auto res = tc.machine.front_end().spawn(
      std::make_unique<RawTreeFe>([&](cluster::Process& self) {
        fe_proc = &self;
        rsh::TreeRshLauncher::launch(self, hosts, "sleeperd", {}, 2,
                                     [&](rsh::LaunchOutcome out) {
                                       outcome = std::move(out);
                                       done = true;
                                     });
      }),
      std::move(opts));
  ASSERT_TRUE(res.is_ok());

  // Kill the root agent on host 0 the moment it exists: the sibling root
  // chunk (hosts 4-7) is still inside its serialized session setup.
  ASSERT_TRUE(tc.run_until(
      [&] { return find_on_node(tc, 0, "rsh_tree_agent") != nullptr; },
      sim::seconds(600)));
  ASSERT_FALSE(done);
  EXPECT_EQ(count_on_node(tc, 4, "rsh_tree_agent"), 0)
      << "sibling launched too early for this scenario";
  find_on_node(tc, 0, "rsh_tree_agent")->exit(9);

  // The launch completes with an error once the surviving subtree acked.
  ASSERT_TRUE(tc.run_until([&] { return done; }, sim::seconds(600)));
  EXPECT_FALSE(outcome.status.is_ok());
  EXPECT_NE(outcome.status.to_string().find("lost tree agent"),
            std::string::npos)
      << outcome.status.to_string();
  tc.simulator.run(tc.simulator.now() + sim::seconds(2));

  // Hosts 0-3 (the dead subtree) reaped themselves; hosts 4-7 are up and,
  // crucially, their keepalives were collected.
  for (int host : {0, 1, 2, 3}) {
    EXPECT_EQ(count_on_node(tc, host, "sleeperd"), 0) << host;
    EXPECT_EQ(count_on_node(tc, host, "rsh_tree_agent"), 0) << host;
  }
  for (int host : {4, 5, 6, 7}) {
    EXPECT_EQ(count_on_node(tc, host, "sleeperd"), 1) << host;
  }
  ASSERT_EQ(outcome.ack_channels.size(), 1u);

  // Dropping the collected keepalives reaps the survivors - nothing leaks.
  for (auto& ch : outcome.ack_channels) {
    if (ch != nullptr && ch->is_open()) fe_proc->close_channel(ch);
  }
  for (auto& ch : outcome.sessions) {
    if (ch != nullptr && ch->is_open()) fe_proc->close_channel(ch);
  }
  tc.simulator.run(tc.simulator.now() + sim::seconds(2));
  EXPECT_EQ(count_everywhere(tc, "sleeperd"), 0);
  EXPECT_EQ(count_everywhere(tc, "rsh_tree_agent"), 0);
}

TEST(TreeRshLauncherFault, LostUnackedChildSessionFailsLaunch) {
  TestCluster tc(kFaultNodes);
  testing::FlightRecorderOnFailure flight(tc.machine);
  bool done = false;
  rsh::LaunchOutcome outcome;
  std::vector<std::string> hosts;
  for (int i = 0; i < kFaultNodes; ++i) {
    hosts.push_back(tc.machine.compute_node(i).hostname());
  }
  cluster::SpawnOptions opts;
  opts.executable = "raw_tree_fe";
  auto res = tc.machine.front_end().spawn(
      std::make_unique<RawTreeFe>([&](cluster::Process& self) {
        rsh::TreeRshLauncher::launch(self, hosts, "sleeperd", {}, 2,
                                     [&](rsh::LaunchOutcome out) {
                                       outcome = std::move(out);
                                       done = true;
                                     });
      }),
      std::move(opts));
  ASSERT_TRUE(res.is_ok());

  // Kill the mid-tree agent once its child agent exists but before it
  // acked (its ack waits on the grandchild's).
  ASSERT_TRUE(tc.run_until(
      [&] { return find_on_node(tc, 2, "rsh_tree_agent") != nullptr; },
      sim::seconds(600)));
  ASSERT_FALSE(done);
  cluster::Process* victim = find_on_node(tc, kVictimHost, "rsh_tree_agent");
  ASSERT_NE(victim, nullptr);
  victim->exit(9);

  // The launcher must detect the dead subtree (no hang, attributed error)
  // and the ack-channel/die-with-parent cascade must reap hosts 1-2.
  ASSERT_TRUE(tc.run_until([&] { return done; }, sim::seconds(600)));
  EXPECT_FALSE(outcome.status.is_ok());
  EXPECT_NE(outcome.status.to_string().find("lost tree agent"),
            std::string::npos)
      << outcome.status.to_string();
  tc.simulator.run(tc.simulator.now() + sim::seconds(2));
  for (int host : kVictimSubtree) {
    EXPECT_EQ(count_on_node(tc, host, "sleeperd"), 0)
        << "leaked daemon on node " << host;
    EXPECT_EQ(count_on_node(tc, host, "rsh_tree_agent"), 0)
        << "leaked agent on node " << host;
  }
}

}  // namespace
}  // namespace lmon
