// Integration tests for the pluggable launch strategies: the same
// launchAndSpawn call must produce a working daemon session whether the
// daemons were bootstrapped through the RM's bulk launch (paper §4), a
// serial front-end rsh loop, or the recursive tree-rsh protocol (§2) - and
// over any fabric topology. The daemons themselves cannot tell the
// difference: every strategy feeds them the same comm/bootstrap argv.
#include <gtest/gtest.h>

#include <memory>

#include "core/fe_api.hpp"
#include "tests/test_util.hpp"

namespace lmon {
namespace {

using testing::TestCluster;

struct Param {
  comm::LaunchStrategyKind strategy;
  comm::TopologySpec topology;
  int nodes;
};

class LaunchStrategyTest : public ::testing::TestWithParam<Param> {};

TEST_P(LaunchStrategyTest, SessionComesUpAndTearsDown) {
  const auto [strategy, topology, nodes] = GetParam();
  TestCluster tc(nodes);

  bool done = false;
  Status status;
  int sid = -1;
  std::shared_ptr<core::FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    ASSERT_TRUE(fe->init().is_ok());
    auto s = fe->create_session();
    sid = s.value;
    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    cfg.launch_strategy = strategy;
    cfg.topology = topology;
    rm::JobSpec job{nodes, 2, "mpi_app", {}};
    fe->launch_and_spawn(sid, job, cfg, [&](Status st) {
      status = st;
      done = true;
    });
  });
  ASSERT_TRUE(tc.run_until([&] { return done; }, sim::seconds(600)));
  ASSERT_TRUE(status.is_ok()) << status.to_string();
  EXPECT_EQ(fe->state(sid), core::FrontEnd::SessionState::Ready);

  // Every strategy must deliver the full daemon table, rank-ordered.
  const core::Rpdtab* daemons = fe->daemon_table(sid);
  ASSERT_NE(daemons, nullptr);
  ASSERT_EQ(daemons->entries().size(), static_cast<std::size_t>(nodes));
  for (int i = 0; i < nodes; ++i) {
    EXPECT_EQ(daemons->entries()[static_cast<std::size_t>(i)].rank, i);
  }

  // And one daemon actually runs on every compute node.
  int live_daemons = 0;
  for (int i = 0; i < tc.machine.num_compute_nodes(); ++i) {
    for (cluster::Process* p : tc.machine.compute_node(i).live_processes()) {
      if (p->options().executable == "hello_be") ++live_daemons;
    }
  }
  EXPECT_EQ(live_daemons, nodes);

  // Teardown reaps the daemons regardless of how they were launched.
  bool killed = false;
  fe->kill(sid, [&](Status) { killed = true; });
  ASSERT_TRUE(tc.run_until([&] { return killed; }));
  tc.simulator.run(tc.simulator.now() + sim::seconds(2));
  live_daemons = 0;
  for (int i = 0; i < tc.machine.num_compute_nodes(); ++i) {
    for (cluster::Process* p : tc.machine.compute_node(i).live_processes()) {
      if (p->options().executable == "hello_be") ++live_daemons;
    }
  }
  EXPECT_EQ(live_daemons, 0);
}

constexpr auto kRm = comm::LaunchStrategyKind::RmBulk;
constexpr auto kSerial = comm::LaunchStrategyKind::SerialRsh;
constexpr auto kTree = comm::LaunchStrategyKind::TreeRsh;
constexpr auto kKAry = comm::TopologyKind::KAry;
constexpr auto kBinomial = comm::TopologyKind::Binomial;
constexpr auto kFlat = comm::TopologyKind::Flat;

INSTANTIATE_TEST_SUITE_P(
    StrategiesAndTopologies, LaunchStrategyTest,
    ::testing::Values(Param{kRm, {kKAry, 2}, 8}, Param{kRm, {kBinomial, 0}, 8},
                      Param{kSerial, {kKAry, 2}, 8},
                      Param{kSerial, {kBinomial, 0}, 6},
                      Param{kSerial, {kFlat, 0}, 4},
                      Param{kTree, {kKAry, 2}, 8},
                      Param{kTree, {kBinomial, 0}, 7},
                      Param{kTree, {kKAry, 4}, 16},
                      Param{kSerial, {kKAry, 2}, 1},
                      Param{kTree, {kKAry, 2}, 1}),
    [](const ::testing::TestParamInfo<Param>& pinfo) {
      std::string name =
          std::string(comm::to_string(pinfo.param.strategy)) + "_" +
          pinfo.param.topology.to_string() + "_n" +
          std::to_string(pinfo.param.nodes);
      for (char& c : name) {
        if (c == ':' || c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace lmon
