// Integration tests for tool-data transfer: piggybacked handshake payloads
// (paper §3.2/§3.4), the registered pack function, BE->FE ready payloads and
// post-startup UsrData in both directions.
#include <gtest/gtest.h>

#include <memory>

#include "core/be_api.hpp"
#include "core/fe_api.hpp"
#include "tests/test_util.hpp"

namespace lmon {
namespace {

using testing::TestCluster;

struct EchoState {
  std::map<std::uint32_t, Bytes> init_usrdata;  // rank -> handshake payload
  Bytes master_received_usrdata;
  int usrdata_messages = 0;
};

/// BE daemon that records handshake payloads, piggybacks a reply onto
/// Ready, and echoes post-startup FE UsrData back.
class EchoDaemon : public cluster::Program {
 public:
  explicit EchoDaemon(EchoState* state) : state_(state) {}
  [[nodiscard]] std::string_view name() const override { return "echo_be"; }

  void on_start(cluster::Process& self) override {
    be_ = std::make_unique<core::BackEnd>(self);
    core::BackEnd::Callbacks cbs;
    cbs.on_init = [this](const core::Rpdtab&, const Bytes& usrdata,
                         std::function<void(Status)> done) {
      state_->init_usrdata[be_->rank()] = usrdata;
      if (be_->is_master()) {
        be_->set_ready_usr_payload(Bytes{0x42, 0x43});
      }
      done(Status::ok());
    };
    cbs.on_usrdata = [this](const Bytes& data) {
      state_->master_received_usrdata = data;
      state_->usrdata_messages += 1;
      Bytes reply = data;
      std::reverse(reply.begin(), reply.end());
      (void)be_->send_usrdata_fe(std::move(reply));
    };
    ASSERT_TRUE(be_->init(std::move(cbs)).is_ok());
  }

  static void install(cluster::Machine& machine, EchoState* state) {
    cluster::ProgramImage image;
    image.image_mb = 2.0;
    image.factory = [state](const std::vector<std::string>&) {
      return std::make_unique<EchoDaemon>(state);
    };
    machine.install_program("echo_be", std::move(image));
  }

 private:
  EchoState* state_;
  std::unique_ptr<core::BackEnd> be_;
};

struct Scenario {
  TestCluster tc{4};
  EchoState state;
  std::shared_ptr<core::FrontEnd> fe;
  int sid = -1;
  bool done = false;
  Status status;

  void launch(core::FrontEnd::SpawnConfig cfg) {
    EchoDaemon::install(tc.machine, &state);
    tc.spawn_fe([&, cfg](cluster::Process& self) {
      fe = std::make_shared<core::FrontEnd>(self);
      ASSERT_TRUE(fe->init().is_ok());
      auto s = fe->create_session();
      sid = s.value;
      rm::JobSpec job{4, 2, "mpi_app", {}};
      fe->launch_and_spawn(sid, job, cfg, [&](Status st) {
        status = st;
        done = true;
      });
    });
    ASSERT_TRUE(tc.run_until([&] { return done; }));
    ASSERT_TRUE(status.is_ok()) << status.to_string();
  }
};

TEST(UsrData, PiggybackedPayloadReachesEveryDaemon) {
  Scenario run;
  core::FrontEnd::SpawnConfig cfg;
  cfg.daemon_exe = "echo_be";
  cfg.fe_to_be_data = Bytes{1, 2, 3, 4, 5};
  run.launch(cfg);

  ASSERT_EQ(run.state.init_usrdata.size(), 4u);
  for (const auto& [rank, data] : run.state.init_usrdata) {
    EXPECT_EQ(data, (Bytes{1, 2, 3, 4, 5})) << "rank " << rank;
  }
}

TEST(UsrData, ProviderOverridesStaticDataAndSeesProctable) {
  Scenario run;
  core::FrontEnd::SpawnConfig cfg;
  cfg.daemon_exe = "echo_be";
  cfg.fe_to_be_data = Bytes{9};
  bool provider_called = false;
  // The provider runs at handshake time, when the RPDTAB is available -
  // the LMON_fe_regPackForFeToBe pattern.
  cfg.fe_data_provider = [&]() -> Bytes {
    provider_called = true;
    const core::Rpdtab* pt = run.fe->proctable(run.sid);
    EXPECT_NE(pt, nullptr);
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(pt->size()));
    return std::move(w).take();
  };
  run.launch(cfg);

  EXPECT_TRUE(provider_called);
  for (const auto& [rank, data] : run.state.init_usrdata) {
    ByteReader r(data);
    EXPECT_EQ(r.u32(), 8u);  // 4 nodes x 2 tasks
  }
}

TEST(UsrData, NonPiggybackedDataArrivesAfterReady) {
  Scenario run;
  core::FrontEnd::SpawnConfig cfg;
  cfg.daemon_exe = "echo_be";
  cfg.fe_to_be_data = Bytes{7, 7, 7};
  cfg.piggyback = false;  // ablation path: separate round trip
  run.launch(cfg);

  // Handshake payload was empty...
  for (const auto& [rank, data] : run.state.init_usrdata) {
    EXPECT_TRUE(data.empty());
  }
  // ...but the master receives the data via UsrData shortly after.
  ASSERT_TRUE(
      run.tc.run_until([&] { return run.state.usrdata_messages > 0; }));
  EXPECT_EQ(run.state.master_received_usrdata, (Bytes{7, 7, 7}));
}

TEST(UsrData, ReadyPayloadPiggybacksBackToFe) {
  Scenario run;
  core::FrontEnd::SpawnConfig cfg;
  cfg.daemon_exe = "echo_be";
  run.launch(cfg);
  const Bytes* ready = run.fe->ready_usrdata(run.sid);
  ASSERT_NE(ready, nullptr);
  EXPECT_EQ(*ready, (Bytes{0x42, 0x43}));
}

TEST(UsrData, PostStartupRoundTripFeToBeToFe) {
  Scenario run;
  core::FrontEnd::SpawnConfig cfg;
  cfg.daemon_exe = "echo_be";
  run.launch(cfg);

  Bytes echoed;
  run.fe->set_be_usrdata_handler(run.sid,
                                 [&](const Bytes& data) { echoed = data; });
  ASSERT_TRUE(run.fe->send_usrdata_be(run.sid, Bytes{1, 2, 3}).is_ok());
  ASSERT_TRUE(run.tc.run_until([&] { return !echoed.empty(); }));
  EXPECT_EQ(echoed, (Bytes{3, 2, 1}));  // daemon reverses
}

TEST(UsrData, SendToUnknownSessionFails) {
  Scenario run;
  core::FrontEnd::SpawnConfig cfg;
  cfg.daemon_exe = "echo_be";
  run.launch(cfg);
  EXPECT_EQ(run.fe->send_usrdata_be(999, Bytes{1}).rc(), Rc::Enosession);
}

}  // namespace
}  // namespace lmon
