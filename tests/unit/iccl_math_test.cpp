// Unit tests for ICCL tree arithmetic (children/parent/subtree relations).
#include <gtest/gtest.h>

#include "core/iccl.hpp"

namespace lmon::core {
namespace {

TEST(IcclMath, BinaryTreeRelations) {
  EXPECT_EQ(Iccl::children_of(0, 7, 2), (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(Iccl::children_of(1, 7, 2), (std::vector<std::uint32_t>{3, 4}));
  EXPECT_EQ(Iccl::children_of(2, 7, 2), (std::vector<std::uint32_t>{5, 6}));
  EXPECT_TRUE(Iccl::children_of(3, 7, 2).empty());
  EXPECT_FALSE(Iccl::parent_of(0, 2).has_value());
  EXPECT_EQ(Iccl::parent_of(1, 2), 0u);
  EXPECT_EQ(Iccl::parent_of(6, 2), 2u);
}

TEST(IcclMath, FanoutOneIsAChain) {
  EXPECT_EQ(Iccl::children_of(0, 4, 1), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(Iccl::children_of(2, 4, 1), (std::vector<std::uint32_t>{3}));
  EXPECT_EQ(Iccl::parent_of(3, 1), 2u);
}

TEST(IcclMath, ZeroFanoutTreatedAsOne) {
  EXPECT_EQ(Iccl::children_of(0, 3, 0), (std::vector<std::uint32_t>{1}));
  EXPECT_EQ(Iccl::parent_of(2, 0), 1u);
}

TEST(IcclMath, SubtreeOfRootIsEverything) {
  auto sub = Iccl::subtree_of(0, 13, 3);
  ASSERT_EQ(sub.size(), 13u);
  for (std::uint32_t i = 0; i < 13; ++i) EXPECT_EQ(sub[i], i);
}

struct TreeParam {
  std::uint32_t size;
  std::uint32_t fanout;
};

class IcclTreeProperty : public ::testing::TestWithParam<TreeParam> {};

TEST_P(IcclTreeProperty, ParentChildConsistency) {
  const auto [size, fanout] = GetParam();
  for (std::uint32_t r = 0; r < size; ++r) {
    for (std::uint32_t c : Iccl::children_of(r, size, fanout)) {
      EXPECT_EQ(Iccl::parent_of(c, fanout), r);
      EXPECT_LT(c, size);
    }
    if (r != 0) {
      auto p = Iccl::parent_of(r, fanout);
      ASSERT_TRUE(p.has_value());
      auto siblings = Iccl::children_of(*p, size, fanout);
      EXPECT_NE(std::find(siblings.begin(), siblings.end(), r),
                siblings.end());
    }
  }
}

TEST_P(IcclTreeProperty, SubtreesPartitionTheTree) {
  const auto [size, fanout] = GetParam();
  // The root's children's subtrees plus the root itself cover all ranks
  // exactly once.
  std::vector<bool> covered(size, false);
  covered[0] = true;
  for (std::uint32_t c : Iccl::children_of(0, size, fanout)) {
    for (std::uint32_t r : Iccl::subtree_of(c, size, fanout)) {
      EXPECT_FALSE(covered[r]) << "rank " << r << " covered twice";
      covered[r] = true;
    }
  }
  for (std::uint32_t r = 0; r < size; ++r) {
    EXPECT_TRUE(covered[r]) << "rank " << r << " not covered";
  }
}

TEST_P(IcclTreeProperty, EveryRankReachesRoot) {
  const auto [size, fanout] = GetParam();
  for (std::uint32_t r = 0; r < size; ++r) {
    std::uint32_t cur = r;
    std::uint32_t hops = 0;
    while (cur != 0) {
      auto p = Iccl::parent_of(cur, fanout);
      ASSERT_TRUE(p.has_value());
      cur = *p;
      ASSERT_LE(++hops, size);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IcclTreeProperty,
    ::testing::Values(TreeParam{1, 2}, TreeParam{2, 2}, TreeParam{15, 2},
                      TreeParam{16, 2}, TreeParam{17, 2}, TreeParam{100, 3},
                      TreeParam{64, 8}, TreeParam{1000, 32},
                      TreeParam{1024, 32}, TreeParam{5, 64},
                      TreeParam{333, 7}, TreeParam{2, 1}, TreeParam{9, 1}));

TEST(IcclMath, ParamsFromArgsParsesBootstrapArgv) {
  std::vector<std::string> args{
      "--lmon-rank=3",    "--lmon-size=8",          "--lmon-fanout=2",
      "--lmon-port=7100", "--lmon-session=s1p1000",
      "--lmon-hosts=a,b,c,d,e,f,g,h"};
  auto p = Iccl::params_from_args(args);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->rank, 3u);
  EXPECT_EQ(p->size, 8u);
  EXPECT_EQ(p->topology.kind, comm::TopologyKind::KAry);
  EXPECT_EQ(p->topology.arity, 2u);
  EXPECT_EQ(p->port, 7100);
  EXPECT_EQ(p->session, "s1p1000");
  EXPECT_EQ(p->hosts.size(), 8u);
}

TEST(IcclMath, ParamsRejectInconsistentArgv) {
  // rank >= size
  EXPECT_FALSE(Iccl::params_from_args({"--lmon-rank=8", "--lmon-size=8",
                                       "--lmon-port=1", "--lmon-hosts=a"})
                   .has_value());
  // host list length mismatch
  EXPECT_FALSE(Iccl::params_from_args({"--lmon-rank=0", "--lmon-size=2",
                                       "--lmon-port=1", "--lmon-hosts=a"})
                   .has_value());
  // missing everything (a daemon started outside LaunchMON)
  EXPECT_FALSE(Iccl::params_from_args({"--verbose"}).has_value());
}

}  // namespace
}  // namespace lmon::core
