// Behavioural tests for the rsh substrate and the ad hoc launchers.
#include <gtest/gtest.h>

#include <memory>

#include "rsh/client.hpp"
#include "rsh/launchers.hpp"
#include "tests/test_util.hpp"

namespace lmon::rsh {
namespace {

using lmon::testing::TestCluster;

TEST(Rsh, RemoteExecSpawnsCommandOnTarget) {
  TestCluster tc(2);
  RemoteExec result;
  bool done = false;
  tc.spawn_fe([&](cluster::Process& self) {
    RshSession::run(self, tc.machine.compute_node(1).hostname(), "sleeperd",
                    {}, [&](RemoteExec r) {
                      result = std::move(r);
                      done = true;
                    });
  });
  ASSERT_TRUE(tc.run_until([&] { return done; }));
  ASSERT_TRUE(result.status.is_ok()) << result.status.to_string();
  // Let the remote command finish its exec (the ExecResp is sent at fork
  // time, like rsh returning before the command is fully up).
  tc.simulator.run(tc.simulator.now() + sim::ms(50));
  cluster::Process* remote = tc.machine.find_process(result.remote_pid);
  ASSERT_NE(remote, nullptr);
  EXPECT_EQ(remote->node().hostname(), tc.machine.compute_node(1).hostname());
  EXPECT_EQ(remote->state(), cluster::ProcState::Running);
  // The local helper child occupies a process slot, like blocking rsh.
  cluster::Process* helper = tc.machine.find_process(result.helper_pid);
  ASSERT_NE(helper, nullptr);
  EXPECT_EQ(helper->state(), cluster::ProcState::Running);
}

TEST(Rsh, UnknownCommandReportsError) {
  TestCluster tc(1);
  RemoteExec result;
  bool done = false;
  tc.spawn_fe([&](cluster::Process& self) {
    RshSession::run(self, tc.machine.compute_node(0).hostname(), "nonesuch",
                    {}, [&](RemoteExec r) {
                      result = std::move(r);
                      done = true;
                    });
  });
  ASSERT_TRUE(tc.run_until([&] { return done; }));
  EXPECT_FALSE(result.status.is_ok());
  EXPECT_EQ(result.status.rc(), Rc::Esubcom);
}

TEST(Rsh, ClosingSessionKillsRemoteCommand) {
  TestCluster tc(1);
  RemoteExec result;
  bool done = false;
  tc.spawn_fe([&](cluster::Process& self) {
    RshSession::run(self, tc.machine.compute_node(0).hostname(), "sleeperd",
                    {}, [&, ptr = &self](RemoteExec r) {
                      result = std::move(r);
                      done = true;
                      ptr->post(sim::ms(10), [&, ptr] {
                        ptr->close_channel(result.session);
                      });
                    });
  });
  ASSERT_TRUE(tc.run_until([&] { return done; }));
  tc.simulator.run(tc.simulator.now() + sim::seconds(1));
  cluster::Process* remote = tc.machine.find_process(result.remote_pid);
  ASSERT_NE(remote, nullptr);
  EXPECT_EQ(remote->state(), cluster::ProcState::Exited);
}

TEST(Rsh, SerialLauncherPreservesTargetOrder) {
  TestCluster tc(4);
  LaunchOutcome outcome;
  bool done = false;
  std::vector<rsh::LaunchTarget> targets;
  for (int i = 0; i < 4; ++i) {
    targets.push_back(LaunchTarget{tc.machine.compute_node(i).hostname(),
                                   "sleeperd",
                                   {}});
  }
  tc.spawn_fe([&](cluster::Process& self) {
    SerialRshLauncher::launch(self, targets, [&](LaunchOutcome out) {
      outcome = std::move(out);
      done = true;
    });
  });
  ASSERT_TRUE(tc.run_until([&] { return done; }));
  ASSERT_TRUE(outcome.status.is_ok());
  ASSERT_EQ(outcome.daemons.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(outcome.daemons[static_cast<std::size_t>(i)].first,
              tc.machine.compute_node(i).hostname());
  }
  EXPECT_EQ(outcome.sessions.size(), 4u);
}

TEST(Rsh, SerialLauncherAbortsAtForkLimit) {
  cluster::CostModel costs;
  costs.rsh_fork_limit = 3;
  TestCluster tc(8, 0, costs);
  LaunchOutcome outcome;
  bool done = false;
  std::vector<rsh::LaunchTarget> targets;
  for (int i = 0; i < 8; ++i) {
    targets.push_back(LaunchTarget{tc.machine.compute_node(i).hostname(),
                                   "sleeperd",
                                   {}});
  }
  tc.spawn_fe([&](cluster::Process& self) {
    SerialRshLauncher::launch(self, targets, [&](LaunchOutcome out) {
      outcome = std::move(out);
      done = true;
    });
  });
  ASSERT_TRUE(tc.run_until([&] { return done; }));
  EXPECT_EQ(outcome.status.rc(), Rc::Esys);
  // The daemons started before the failure are leaked (paper: the ugly
  // failure mode of ad hoc launching).
  EXPECT_EQ(outcome.daemons.size(), 3u);
}

/// FE program that forwards tree-agent reports (required by the tree
/// launcher contract).
class TreeFe : public cluster::Program {
 public:
  using Go = std::function<void(cluster::Process&)>;
  explicit TreeFe(Go go) : go_(std::move(go)) {}
  [[nodiscard]] std::string_view name() const override { return "tree_fe"; }
  void on_start(cluster::Process& self) override { go_(self); }
  void on_message(cluster::Process& self, const cluster::ChannelPtr& ch,
                  cluster::Message msg) override {
    (void)TreeRshLauncher::handle_report(self, ch, msg);
  }

 private:
  Go go_;
};

class TreeLauncherTest : public ::testing::TestWithParam<int> {};

TEST_P(TreeLauncherTest, LaunchesEveryHostExactlyOnce) {
  const int fanout = GetParam();
  const int n = 13;
  TestCluster tc(n);
  LaunchOutcome outcome;
  bool done = false;
  std::vector<std::string> hosts;
  for (int i = 0; i < n; ++i) {
    hosts.push_back(tc.machine.compute_node(i).hostname());
  }
  cluster::SpawnOptions opts;
  opts.executable = "tree_fe";
  auto res = tc.machine.front_end().spawn(
      std::make_unique<TreeFe>([&](cluster::Process& self) {
        TreeRshLauncher::launch(self, hosts, "sleeperd", {}, fanout,
                                [&](LaunchOutcome out) {
                                  outcome = std::move(out);
                                  done = true;
                                });
      }),
      std::move(opts));
  ASSERT_TRUE(res.is_ok());
  ASSERT_TRUE(tc.run_until([&] { return done; }, sim::seconds(600)));
  ASSERT_TRUE(outcome.status.is_ok()) << outcome.status.to_string();

  std::set<std::string> launched;
  for (const auto& [host, pid] : outcome.daemons) {
    EXPECT_TRUE(launched.insert(host).second) << host << " launched twice";
    cluster::Process* p = tc.machine.find_process(pid);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->options().executable, "sleeperd");
  }
  EXPECT_EQ(launched.size(), static_cast<std::size_t>(n));
}

INSTANTIATE_TEST_SUITE_P(Fanouts, TreeLauncherTest,
                         ::testing::Values(1, 2, 3, 8, 16));

}  // namespace
}  // namespace lmon::rsh
