// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/status.hpp"
#include "common/argparse.hpp"
#include "simkernel/log.hpp"
#include "simkernel/simulator.hpp"
#include "simkernel/stats.hpp"

namespace lmon::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(30, [&] { fired.push_back(3); });
  q.push(10, [&] { fired.push_back(1); });
  q.push(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoForEqualTimestamps) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  std::vector<int> fired;
  q.push(1, [&] { fired.push_back(1); });
  EventId id = q.push(2, [&] { fired.push_back(2); });
  q.push(3, [&] { fired.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelUnknownIsNoop) {
  EventQueue q;
  q.push(1, [] {});
  q.cancel(EventId{9999});
  EXPECT_FALSE(q.empty());
}

TEST(Simulator, TimeAdvancesMonotonically) {
  Simulator sim;
  std::vector<Time> times;
  sim.schedule(ms(5), [&] { times.push_back(sim.now()); });
  sim.schedule(ms(1), [&] {
    times.push_back(sim.now());
    sim.schedule(ms(1), [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], ms(1));
  EXPECT_EQ(times[1], ms(2));
  EXPECT_EQ(times[2], ms(5));
}

TEST(Simulator, RunUntilBound) {
  Simulator sim;
  int fired = 0;
  sim.schedule(ms(1), [&] { ++fired; });
  sim.schedule(ms(10), [&] { ++fired; });
  sim.run(ms(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), ms(1));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule(ms(3), [&] {
    sim.schedule(-ms(10), [&] { EXPECT_EQ(sim.now(), ms(3)); });
  });
  sim.run();
}

TEST(Simulator, EventLimitThrowsOnLivelock) {
  Simulator sim;
  sim.set_event_limit(100);
  std::function<void()> loop = [&] { sim.schedule(1, loop); };
  sim.schedule(1, loop);
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NormalHasRoughlyRightMoments) {
  Rng rng(11);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng b = a.fork();
  EXPECT_NE(a.next(), b.next());
}

TEST(Stats, AccumulatorMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 0.001);
}

TEST(Stats, TimelineBetween) {
  Timeline t;
  t.mark("a", ms(10));
  t.mark("b", ms(35));
  EXPECT_EQ(t.between("a", "b"), ms(25));
  EXPECT_EQ(t.between("a", "missing"), 0);
  EXPECT_TRUE(t.has("a"));
  EXPECT_FALSE(t.has("c"));
}

TEST(Stats, TimelineBetweenWithMissingMarks) {
  Timeline t;
  t.mark("a", ms(10));
  // Either endpoint missing (or both) yields 0, never garbage; has()
  // distinguishes "missing" from "zero-length region".
  EXPECT_EQ(t.between("missing", "a"), 0);
  EXPECT_EQ(t.between("a", "missing"), 0);
  EXPECT_EQ(t.between("nope", "also_nope"), 0);
  EXPECT_EQ(Timeline{}.between("a", "b"), 0);
  // Re-marking overwrites; marks() exposes the full map.
  t.mark("a", ms(20));
  EXPECT_EQ(t.at("a"), ms(20));
  EXPECT_EQ(t.marks().size(), 1u);
}

TEST(Stats, AccumulatorDegenerateCounts) {
  Accumulator empty;
  EXPECT_EQ(empty.count(), 0u);
  EXPECT_EQ(empty.mean(), 0.0);
  EXPECT_EQ(empty.min(), 0.0);
  EXPECT_EQ(empty.max(), 0.0);
  EXPECT_EQ(empty.variance(), 0.0);  // no samples: variance defined as 0
  EXPECT_EQ(empty.stddev(), 0.0);

  Accumulator one;
  one.add(42.0);
  EXPECT_EQ(one.count(), 1u);
  EXPECT_DOUBLE_EQ(one.mean(), 42.0);
  EXPECT_EQ(one.variance(), 0.0);  // single sample: no spread
  EXPECT_EQ(one.stddev(), 0.0);
}

TEST(Stats, LedgerAccumulates) {
  CostLedger l;
  l.charge("x", ms(5));
  l.charge("x", ms(7));
  l.charge("y", ms(1));
  EXPECT_EQ(l.total("x"), ms(12));
  EXPECT_EQ(l.events("x"), 2u);
  EXPECT_EQ(l.total("z"), 0);
}

TEST(Log, SinkCapturesLevelPassingLinesOnly) {
  const LogLevel saved = Log::level();
  std::vector<std::string> captured;
  Log::set_level(LogLevel::Info);
  Log::set_sink([&](LogLevel, Time, std::string_view component,
                    std::string_view message) {
    captured.push_back(std::string(component) + ": " + std::string(message));
  });

  LogLine(LogLevel::Info, ms(1), "unit") << "visible";
  LogLine(LogLevel::Debug, ms(2), "unit") << "filtered";

  Log::set_sink(nullptr);  // restore the stderr formatter
  Log::set_level(saved);
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_EQ(captured[0], "unit: visible");
}

TEST(Log, TapSeesEveryLineRegardlessOfLevel) {
  const LogLevel saved = Log::level();
  Log::set_level(LogLevel::Off);
  int lines = 0;
  Log::set_tap([&](LogLevel, Time, std::string_view, std::string_view) {
    ++lines;
  });
  EXPECT_TRUE(Log::has_tap());
  EXPECT_TRUE(Log::enabled(LogLevel::Debug));  // tap forces line formatting

  LogLine(LogLevel::Debug, ms(1), "unit") << "tapped";
  Log::set_tap(nullptr);
  Log::set_level(saved);
  EXPECT_FALSE(Log::has_tap());
  EXPECT_EQ(lines, 1);
}

TEST(Log, ParseLogLevelRecognisesTheDocumentedVocabulary) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::Debug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::Info);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::Warn);
  EXPECT_EQ(parse_log_level("off"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("none"), LogLevel::Off);
  EXPECT_EQ(parse_log_level("0"), LogLevel::Off);
  EXPECT_EQ(parse_log_level(""), LogLevel::Off);
  // Unknown values are nullopt - the env reader warns instead of silently
  // disabling the log.
  EXPECT_FALSE(parse_log_level("verbose").has_value());
  EXPECT_FALSE(parse_log_level("DEBUG2").has_value());
}

TEST(TimeFormat, HumanReadable) {
  EXPECT_EQ(format_time(seconds(1.5)), "1.500s");
  EXPECT_EQ(format_time(ms(2.25)), "2.250ms");
  EXPECT_EQ(format_time(us(750)), "750us");
}

}  // namespace
}  // namespace lmon::sim

namespace lmon {
namespace {

TEST(Status, RoundTripAndMessages) {
  Status ok;
  EXPECT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.to_string(), "Ok");
  Status err(Rc::Esys, "fork failed");
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.rc(), Rc::Esys);
  EXPECT_EQ(err.to_string(), "Esys: fork failed");
  EXPECT_EQ(to_string(Rc::Etout), "Etout");
}

TEST(Argparse, ValueAndIntAndFlag) {
  std::vector<std::string> args{"--mode=job", "--nnodes=16", "--verbose",
                                "--empty="};
  EXPECT_EQ(arg_value(args, "--mode="), "job");
  EXPECT_EQ(arg_int(args, "--nnodes="), 16);
  EXPECT_FALSE(arg_value(args, "--missing=").has_value());
  EXPECT_FALSE(arg_int(args, "--mode=").has_value());
  EXPECT_TRUE(arg_flag(args, "--verbose"));
  EXPECT_FALSE(arg_flag(args, "--quiet"));
  EXPECT_FALSE(arg_value(args, "--empty=").has_value());
}

TEST(Argparse, SplitCsv) {
  EXPECT_EQ(split_csv("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv(""), (std::vector<std::string>{}));
  EXPECT_EQ(split_csv("one"), (std::vector<std::string>{"one"}));
  EXPECT_EQ(split_csv("a,,b"), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace lmon
