// Unit tests for the discrete-event simulation kernel.
#include <gtest/gtest.h>

#include "common/status.hpp"
#include "common/argparse.hpp"
#include "simkernel/simulator.hpp"
#include "simkernel/stats.hpp"

namespace lmon::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue q;
  std::vector<int> fired;
  q.push(30, [&] { fired.push_back(3); });
  q.push(10, [&] { fired.push_back(1); });
  q.push(20, [&] { fired.push_back(2); });
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoForEqualTimestamps) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.push(5, [&fired, i] { fired.push_back(i); });
  }
  while (!q.empty()) q.pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[static_cast<size_t>(i)], i);
}

TEST(EventQueue, CancelSkipsEvent) {
  EventQueue q;
  std::vector<int> fired;
  q.push(1, [&] { fired.push_back(1); });
  EventId id = q.push(2, [&] { fired.push_back(2); });
  q.push(3, [&] { fired.push_back(3); });
  q.cancel(id);
  while (!q.empty()) q.pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 3}));
}

TEST(EventQueue, CancelUnknownIsNoop) {
  EventQueue q;
  q.push(1, [] {});
  q.cancel(EventId{9999});
  EXPECT_FALSE(q.empty());
}

TEST(Simulator, TimeAdvancesMonotonically) {
  Simulator sim;
  std::vector<Time> times;
  sim.schedule(ms(5), [&] { times.push_back(sim.now()); });
  sim.schedule(ms(1), [&] {
    times.push_back(sim.now());
    sim.schedule(ms(1), [&] { times.push_back(sim.now()); });
  });
  sim.run();
  ASSERT_EQ(times.size(), 3u);
  EXPECT_EQ(times[0], ms(1));
  EXPECT_EQ(times[1], ms(2));
  EXPECT_EQ(times[2], ms(5));
}

TEST(Simulator, RunUntilBound) {
  Simulator sim;
  int fired = 0;
  sim.schedule(ms(1), [&] { ++fired; });
  sim.schedule(ms(10), [&] { ++fired; });
  sim.run(ms(5));
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.now(), ms(1));
  sim.run();
  EXPECT_EQ(fired, 2);
}

TEST(Simulator, NegativeDelayClampsToNow) {
  Simulator sim;
  sim.schedule(ms(3), [&] {
    sim.schedule(-ms(10), [&] { EXPECT_EQ(sim.now(), ms(3)); });
  });
  sim.run();
}

TEST(Simulator, EventLimitThrowsOnLivelock) {
  Simulator sim;
  sim.set_event_limit(100);
  std::function<void()> loop = [&] { sim.schedule(1, loop); };
  sim.schedule(1, loop);
  EXPECT_THROW(sim.run(), std::runtime_error);
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NormalHasRoughlyRightMoments) {
  Rng rng(11);
  double sum = 0;
  double sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng a(5);
  Rng b = a.fork();
  EXPECT_NE(a.next(), b.next());
}

TEST(Stats, AccumulatorMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 0.001);
}

TEST(Stats, TimelineBetween) {
  Timeline t;
  t.mark("a", ms(10));
  t.mark("b", ms(35));
  EXPECT_EQ(t.between("a", "b"), ms(25));
  EXPECT_EQ(t.between("a", "missing"), 0);
  EXPECT_TRUE(t.has("a"));
  EXPECT_FALSE(t.has("c"));
}

TEST(Stats, LedgerAccumulates) {
  CostLedger l;
  l.charge("x", ms(5));
  l.charge("x", ms(7));
  l.charge("y", ms(1));
  EXPECT_EQ(l.total("x"), ms(12));
  EXPECT_EQ(l.events("x"), 2u);
  EXPECT_EQ(l.total("z"), 0);
}

TEST(TimeFormat, HumanReadable) {
  EXPECT_EQ(format_time(seconds(1.5)), "1.500s");
  EXPECT_EQ(format_time(ms(2.25)), "2.250ms");
  EXPECT_EQ(format_time(us(750)), "750us");
}

}  // namespace
}  // namespace lmon::sim

namespace lmon {
namespace {

TEST(Status, RoundTripAndMessages) {
  Status ok;
  EXPECT_TRUE(ok.is_ok());
  EXPECT_EQ(ok.to_string(), "Ok");
  Status err(Rc::Esys, "fork failed");
  EXPECT_FALSE(err.is_ok());
  EXPECT_EQ(err.rc(), Rc::Esys);
  EXPECT_EQ(err.to_string(), "Esys: fork failed");
  EXPECT_EQ(to_string(Rc::Etout), "Etout");
}

TEST(Argparse, ValueAndIntAndFlag) {
  std::vector<std::string> args{"--mode=job", "--nnodes=16", "--verbose",
                                "--empty="};
  EXPECT_EQ(arg_value(args, "--mode="), "job");
  EXPECT_EQ(arg_int(args, "--nnodes="), 16);
  EXPECT_FALSE(arg_value(args, "--missing=").has_value());
  EXPECT_FALSE(arg_int(args, "--mode=").has_value());
  EXPECT_TRUE(arg_flag(args, "--verbose"));
  EXPECT_FALSE(arg_flag(args, "--quiet"));
  EXPECT_FALSE(arg_value(args, "--empty=").has_value());
}

TEST(Argparse, SplitCsv) {
  EXPECT_EQ(split_csv("a,b,c"), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split_csv(""), (std::vector<std::string>{}));
  EXPECT_EQ(split_csv("one"), (std::vector<std::string>{"one"}));
  EXPECT_EQ(split_csv("a,,b"), (std::vector<std::string>{"a", "b"}));
}

}  // namespace
}  // namespace lmon
