// Unit + property tests for the LMONP protocol (paper §3.5).
#include <gtest/gtest.h>

#include "core/lmonp.hpp"
#include "core/payloads.hpp"
#include "simkernel/rng.hpp"

namespace lmon::core {
namespace {

TEST(Lmonp, HeaderIsExactlySixteenBytes) {
  LmonpMessage m = LmonpMessage::fe_engine(FeEngineMsg::Hello);
  EXPECT_EQ(m.encode().size(), kHeaderSize);
  EXPECT_EQ(kHeaderSize, 16u);
}

TEST(Lmonp, WireSizeIsHeaderPlusPayloads) {
  LmonpMessage m = LmonpMessage::fe_daemon(
      MsgClass::FeBe, FeDaemonMsg::HandshakeInit, Bytes(100, 1), Bytes(37, 2));
  EXPECT_EQ(m.wire_size(), 16u + 100u + 37u);
  EXPECT_EQ(m.encode().size(), m.wire_size());
}

TEST(Lmonp, RoundTripPreservesEverything) {
  LmonpMessage m;
  m.msg_class = MsgClass::FeMw;
  m.type = static_cast<std::uint8_t>(FeDaemonMsg::Ready);
  m.flags = 0x1234;
  m.seq = 987654;
  m.lmon_payload = Bytes{1, 2, 3};
  m.usr_payload = Bytes{9, 8, 7, 6};

  auto decoded = LmonpMessage::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->msg_class, MsgClass::FeMw);
  EXPECT_EQ(decoded->type, m.type);
  EXPECT_EQ(decoded->flags, 0x1234);
  EXPECT_EQ(decoded->seq, 987654u);
  EXPECT_EQ(decoded->lmon_payload, m.lmon_payload);
  EXPECT_EQ(decoded->usr_payload, m.usr_payload);
}

TEST(Lmonp, MsgClassOccupiesThreeBits) {
  // The class field shares byte 0 with the version; only 3 bits of class.
  LmonpMessage m = LmonpMessage::fe_daemon(MsgClass::FeBe,
                                           FeDaemonMsg::Hello);
  const auto encoded = m.encode();
  const std::uint8_t b0 = encoded.bytes[0];
  EXPECT_EQ(b0 & 0x07, static_cast<int>(MsgClass::FeBe));
  EXPECT_EQ(b0 >> 3, kLmonpVersion);
}

TEST(Lmonp, ReservedClassEncodingsRejected) {
  // Classes 3..7 are reserved for future pairs (e.g. MW-MW).
  for (std::uint8_t cls = 3; cls < 8; ++cls) {
    LmonpMessage m;
    m.msg_class = static_cast<MsgClass>(cls);
    auto decoded = LmonpMessage::decode(m.encode());
    EXPECT_FALSE(decoded.has_value()) << "class " << int(cls);
  }
}

TEST(Lmonp, WrongVersionRejected) {
  LmonpMessage m = LmonpMessage::fe_engine(FeEngineMsg::Hello);
  auto encoded = m.encode();
  encoded.bytes[0] = static_cast<std::uint8_t>(
      (encoded.bytes[0] & 0x07) | ((kLmonpVersion + 1) << 3));
  EXPECT_FALSE(LmonpMessage::decode(encoded).has_value());
}

TEST(Lmonp, TruncatedPayloadRejected) {
  LmonpMessage m = LmonpMessage::fe_engine(FeEngineMsg::ProctableData,
                                           Bytes(64, 0xAA));
  auto encoded = m.encode();
  encoded.bytes.resize(encoded.bytes.size() - 10);
  EXPECT_FALSE(LmonpMessage::decode(encoded).has_value());
}

TEST(Lmonp, TrailingGarbageRejected) {
  LmonpMessage m = LmonpMessage::fe_engine(FeEngineMsg::Hello);
  auto encoded = m.encode();
  encoded.bytes.push_back(0xFF);
  EXPECT_FALSE(LmonpMessage::decode(encoded).has_value());
}

TEST(Lmonp, ShortBufferRejected) {
  cluster::Message m;
  m.bytes = Bytes(7, 0);
  EXPECT_FALSE(LmonpMessage::decode(m).has_value());
}

class LmonpPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LmonpPropertyTest, RandomMessagesRoundTrip) {
  sim::Rng rng(GetParam() * 31 + 7);
  LmonpMessage m;
  m.msg_class = static_cast<MsgClass>(rng.next_below(3));
  m.type = static_cast<std::uint8_t>(rng.next_below(256));
  m.flags = static_cast<std::uint16_t>(rng.next_below(1 << 16));
  m.seq = static_cast<std::uint32_t>(rng.next());
  m.lmon_payload.resize(rng.next_below(2048));
  for (auto& b : m.lmon_payload) {
    b = static_cast<std::uint8_t>(rng.next_below(256));
  }
  m.usr_payload.resize(rng.next_below(2048));
  for (auto& b : m.usr_payload) {
    b = static_cast<std::uint8_t>(rng.next_below(256));
  }
  auto decoded = LmonpMessage::decode(m.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->msg_class, m.msg_class);
  EXPECT_EQ(decoded->type, m.type);
  EXPECT_EQ(decoded->flags, m.flags);
  EXPECT_EQ(decoded->seq, m.seq);
  EXPECT_EQ(decoded->lmon_payload, m.lmon_payload);
  EXPECT_EQ(decoded->usr_payload, m.usr_payload);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LmonpPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 30));

// --- payload schemas -------------------------------------------------------

TEST(Payloads, HelloRoundTrip) {
  payload::Hello h{"s3p1001", 5, 4242, "atlas17"};
  auto back = payload::Hello::decode(h.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->session, "s3p1001");
  EXPECT_EQ(back->rank, 5u);
  EXPECT_EQ(back->pid, 4242);
  EXPECT_EQ(back->host, "atlas17");
}

TEST(Payloads, DaemonsSpawnedRoundTrip) {
  payload::DaemonsSpawned d;
  d.ok = true;
  d.daemon_table = Bytes{1, 2, 3, 4};
  auto back = payload::DaemonsSpawned::decode(d.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->ok);
  EXPECT_EQ(back->daemon_table, d.daemon_table);
}

TEST(Payloads, EngineErrorRoundTrip) {
  payload::EngineError e{"co-spawn", "allocation failed"};
  auto back = payload::EngineError::decode(e.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->stage, "co-spawn");
  EXPECT_EQ(back->error, "allocation failed");
}

TEST(Payloads, LaunchMwReqRoundTrip) {
  payload::LaunchMwReq r;
  r.nnodes = 8;
  r.daemon_exe = "tbon_commd_lmon";
  r.daemon_args = {"--x=1", "--y=2"};
  r.fabric_port = 7102;
  r.fabric_fanout = 4;
  auto back = payload::LaunchMwReq::decode(r.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->nnodes, 8u);
  EXPECT_EQ(back->daemon_exe, "tbon_commd_lmon");
  EXPECT_EQ(back->daemon_args, r.daemon_args);
  EXPECT_EQ(back->fabric_port, 7102);
  EXPECT_EQ(back->fabric_fanout, 4u);
}

TEST(Payloads, MalformedPayloadsRejected) {
  EXPECT_FALSE(payload::Hello::decode(Bytes{1, 2}).has_value());
  EXPECT_FALSE(payload::Ready::decode(Bytes{}).has_value());
  EXPECT_FALSE(payload::LaunchMwReq::decode(Bytes{0xFF}).has_value());
}

}  // namespace
}  // namespace lmon::core
