// Unit tests for the cluster substrate: processes, channels, tracing.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/machine.hpp"
#include "cluster/tracing.hpp"
#include "simkernel/simulator.hpp"

namespace lmon::cluster {
namespace {

/// Program whose behaviour is supplied by std::functions, for direct tests.
class Hooks : public Program {
 public:
  std::function<void(Process&)> start;
  std::function<void(Process&, ChannelPtr)> connection;
  std::function<void(Process&, const ChannelPtr&, Message)> message;
  std::function<void(Process&, const ChannelPtr&)> closed;
  std::function<void(Process&, Pid, int)> child_exit;

  [[nodiscard]] std::string_view name() const override { return "hooks"; }
  void on_start(Process& self) override {
    if (start) start(self);
  }
  void on_connection(Process& self, ChannelPtr ch) override {
    if (connection) connection(self, std::move(ch));
  }
  void on_message(Process& self, const ChannelPtr& ch, Message m) override {
    if (message) message(self, ch, std::move(m));
  }
  void on_channel_closed(Process& self, const ChannelPtr& ch) override {
    if (closed) closed(self, ch);
  }
  void on_child_exit(Process& self, Pid child, int code) override {
    if (child_exit) child_exit(self, child, code);
  }
};

struct Fixture {
  Fixture() : machine(sim, MachineConfig{4, 0, "test", CostModel{}.deterministic()}) {}
  sim::Simulator sim;
  Machine machine;

  Pid spawn_hooks(Node& node, std::unique_ptr<Hooks> hooks,
                  SpawnOptions opts = {}) {
    auto res = node.spawn(std::move(hooks), std::move(opts));
    EXPECT_TRUE(res.is_ok());
    return res.value;
  }
};

TEST(Cluster, SpawnChargesForkExecCost) {
  Fixture f;
  sim::Time started_at = -1;
  auto hooks = std::make_unique<Hooks>();
  hooks->start = [&](Process& self) { started_at = self.sim().now(); };
  SpawnOptions opts;
  opts.image_mb = 10.0;
  f.spawn_hooks(f.machine.node(0), std::move(hooks), std::move(opts));
  f.sim.run();
  const auto& c = f.machine.costs();
  const sim::Time expected = c.fork_cost + c.exec_base_cost +
                             static_cast<sim::Time>(
                                 10.0 * static_cast<double>(c.exec_per_mb)) +
                             c.sched_latency;
  EXPECT_EQ(started_at, expected);
}

TEST(Cluster, HostnameLayout) {
  Fixture f;
  EXPECT_EQ(f.machine.front_end().hostname(), "test-fe");
  EXPECT_EQ(f.machine.compute_node(0).hostname(), "test1");
  EXPECT_EQ(f.machine.compute_node(3).hostname(), "test4");
  EXPECT_NE(f.machine.find_host("test2"), nullptr);
  EXPECT_EQ(f.machine.find_host("nonesuch"), nullptr);
}

TEST(Cluster, ConnectAndExchangeMessages) {
  Fixture f;
  std::vector<std::string> server_got;
  std::vector<std::string> client_got;

  auto server = std::make_unique<Hooks>();
  server->start = [](Process& self) { ASSERT_TRUE(self.listen(9000).is_ok()); };
  server->message = [&](Process& self, const ChannelPtr& ch, Message m) {
    server_got.emplace_back(m.bytes.begin(), m.bytes.end());
    ByteWriter w;
    w.raw(as_bytes("pong"));
    self.send(ch, Message(std::move(w).take()));
  };
  f.spawn_hooks(f.machine.compute_node(0), std::move(server));

  auto client = std::make_unique<Hooks>();
  client->start = [&](Process& self) {
    self.connect("test1", 9000, [&self](Status st, ChannelPtr ch) {
      ASSERT_TRUE(st.is_ok());
      ByteWriter w;
      w.raw(as_bytes("ping"));
      self.send(ch, Message(std::move(w).take()));
    });
  };
  client->message = [&](Process&, const ChannelPtr&, Message m) {
    client_got.emplace_back(m.bytes.begin(), m.bytes.end());
  };
  f.spawn_hooks(f.machine.front_end(), std::move(client));

  f.sim.run();
  ASSERT_EQ(server_got.size(), 1u);
  EXPECT_EQ(server_got[0], "ping");
  ASSERT_EQ(client_got.size(), 1u);
  EXPECT_EQ(client_got[0], "pong");
}

TEST(Cluster, ConnectionRefusedWithoutListener) {
  Fixture f;
  Status result;
  bool called = false;
  auto client = std::make_unique<Hooks>();
  client->start = [&](Process& self) {
    self.connect("test1", 12345, [&](Status st, ChannelPtr) {
      result = st;
      called = true;
    });
  };
  f.spawn_hooks(f.machine.front_end(), std::move(client));
  f.sim.run();
  EXPECT_TRUE(called);
  EXPECT_EQ(result.rc(), Rc::Esubcom);
}

TEST(Cluster, ConnectToUnknownHostFails) {
  Fixture f;
  Status result;
  auto client = std::make_unique<Hooks>();
  client->start = [&](Process& self) {
    self.connect("mars", 80, [&](Status st, ChannelPtr) { result = st; });
  };
  f.spawn_hooks(f.machine.front_end(), std::move(client));
  f.sim.run();
  EXPECT_EQ(result.rc(), Rc::Esubcom);
}

TEST(Cluster, MessagesArriveInFifoOrderDespiteJitter) {
  sim::Simulator sim;
  CostModel jittery;  // keep default jitter on
  Machine machine(sim, MachineConfig{2, 0, "test", jittery});

  std::vector<int> received;
  auto server = std::make_unique<Hooks>();
  server->start = [](Process& self) { (void)self.listen(9001); };
  server->message = [&](Process&, const ChannelPtr&, Message m) {
    ByteReader r(m.bytes);
    received.push_back(static_cast<int>(*r.u32()));
  };
  auto sres = machine.compute_node(0).spawn(std::move(server), {});
  ASSERT_TRUE(sres.is_ok());

  auto client = std::make_unique<Hooks>();
  client->start = [&](Process& self) {
    self.connect("test1", 9001, [&self](Status st, ChannelPtr ch) {
      ASSERT_TRUE(st.is_ok());
      for (int i = 0; i < 50; ++i) {
        ByteWriter w;
        w.u32(static_cast<std::uint32_t>(i));
        self.send(ch, Message(std::move(w).take()));
      }
    });
  };
  auto cres = machine.front_end().spawn(std::move(client), {});
  ASSERT_TRUE(cres.is_ok());
  sim.run();
  ASSERT_EQ(received.size(), 50u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(received[static_cast<size_t>(i)], i);
}

TEST(Cluster, PeerGetsClosedNotification) {
  Fixture f;
  bool closed = false;
  auto server = std::make_unique<Hooks>();
  server->start = [](Process& self) { (void)self.listen(9002); };
  server->closed = [&](Process&, const ChannelPtr&) { closed = true; };
  f.spawn_hooks(f.machine.compute_node(0), std::move(server));

  auto client = std::make_unique<Hooks>();
  client->start = [&](Process& self) {
    self.connect("test1", 9002, [&self](Status st, ChannelPtr ch) {
      ASSERT_TRUE(st.is_ok());
      self.close_channel(ch);
    });
  };
  f.spawn_hooks(f.machine.front_end(), std::move(client));
  f.sim.run();
  EXPECT_TRUE(closed);
}

TEST(Cluster, ProcessExitClosesChannelsAndNotifiesParent) {
  Fixture f;
  bool peer_saw_close = false;
  int child_code = -1;
  Pid child_pid = kInvalidPid;

  auto server = std::make_unique<Hooks>();
  server->start = [](Process& self) { (void)self.listen(9003); };
  server->closed = [&](Process&, const ChannelPtr&) { peer_saw_close = true; };
  f.spawn_hooks(f.machine.compute_node(0), std::move(server));

  auto parent = std::make_unique<Hooks>();
  parent->start = [&](Process& self) {
    auto child = std::make_unique<Hooks>();
    child->start = [](Process& me) {
      me.connect("test1", 9003, [&me](Status st, ChannelPtr) {
        ASSERT_TRUE(st.is_ok());
        me.post(sim::ms(1), [&me] { me.exit(7); });
      });
    };
    auto res = self.spawn_child(std::move(child), {});
    ASSERT_TRUE(res.is_ok());
    child_pid = res.value;
  };
  parent->child_exit = [&](Process&, Pid c, int code) {
    EXPECT_EQ(c, child_pid);
    child_code = code;
  };
  f.spawn_hooks(f.machine.front_end(), std::move(parent));
  f.sim.run();
  EXPECT_TRUE(peer_saw_close);
  EXPECT_EQ(child_code, 7);
  EXPECT_EQ(f.machine.find_process(child_pid)->state(), ProcState::Exited);
}

TEST(Cluster, ChildLimitCausesForkFailure) {
  Fixture f;
  std::vector<Status> results;
  auto parent = std::make_unique<Hooks>();
  parent->start = [&](Process& self) {
    self.set_child_limit(3);
    for (int i = 0; i < 5; ++i) {
      auto res = self.spawn_child(std::make_unique<Hooks>(), {});
      results.push_back(res.status);
    }
  };
  f.spawn_hooks(f.machine.front_end(), std::move(parent));
  f.sim.run();
  ASSERT_EQ(results.size(), 5u);
  EXPECT_TRUE(results[0].is_ok());
  EXPECT_TRUE(results[2].is_ok());
  EXPECT_EQ(results[3].rc(), Rc::Esys);
  EXPECT_EQ(results[4].rc(), Rc::Esys);
}

TEST(Cluster, StartedCallbackFiresAfterChildStart) {
  Fixture f;
  bool child_started = false;
  bool callback_fired = false;
  auto parent = std::make_unique<Hooks>();
  parent->start = [&](Process& self) {
    auto child = std::make_unique<Hooks>();
    child->start = [&](Process&) { child_started = true; };
    SpawnOptions opts;
    opts.started_callback = [&](Pid) {
      EXPECT_TRUE(child_started);
      callback_fired = true;
    };
    ASSERT_TRUE(self.spawn_child(std::move(child), std::move(opts)).is_ok());
  };
  f.spawn_hooks(f.machine.front_end(), std::move(parent));
  f.sim.run();
  EXPECT_TRUE(callback_fired);
}

TEST(Cluster, ChannelHandlerOverridesProgramRouting) {
  Fixture f;
  int handler_msgs = 0;
  int program_msgs = 0;
  auto server = std::make_unique<Hooks>();
  server->start = [&handler_msgs](Process& self) {
    (void)self.listen(9004, [&handler_msgs, &self](ChannelPtr ch) {
      self.set_channel_handler(
          ch, [&handler_msgs](const ChannelPtr&, Message) { ++handler_msgs; });
    });
  };
  server->message = [&](Process&, const ChannelPtr&, Message) {
    ++program_msgs;
  };
  f.spawn_hooks(f.machine.compute_node(0), std::move(server));

  auto client = std::make_unique<Hooks>();
  client->start = [&](Process& self) {
    self.connect("test1", 9004, [&self](Status st, ChannelPtr ch) {
      ASSERT_TRUE(st.is_ok());
      self.send(ch, Message(Bytes{1, 2, 3}));
      self.send(ch, Message(Bytes{4}));
    });
  };
  f.spawn_hooks(f.machine.front_end(), std::move(client));
  f.sim.run();
  EXPECT_EQ(handler_msgs, 2);
  EXPECT_EQ(program_msgs, 0);
}

TEST(Cluster, ListenTwiceOnSamePortFails) {
  Fixture f;
  Status second;
  auto p = std::make_unique<Hooks>();
  p->start = [&](Process& self) {
    EXPECT_TRUE(self.listen(9005).is_ok());
    second = self.listen(9005);
  };
  f.spawn_hooks(f.machine.front_end(), std::move(p));
  f.sim.run();
  EXPECT_EQ(second.rc(), Rc::Esys);
}

// --- tracing ----------------------------------------------------------------

TEST(Tracing, BreakpointStopsOnlyWhenTraced) {
  Fixture f;
  bool resumed_untraced = false;
  auto p = std::make_unique<Hooks>();
  p->start = [&](Process& self) {
    self.breakpoint("SYM", [&] { resumed_untraced = true; });
  };
  f.spawn_hooks(f.machine.front_end(), std::move(p));
  f.sim.run();
  EXPECT_TRUE(resumed_untraced);
}

TEST(Tracing, SpawnTracedBreakpointContinueCycle) {
  Fixture f;
  std::vector<std::string> events;
  bool tracee_resumed = false;

  auto tracer = std::make_unique<Hooks>();
  tracer->start = [&](Process& self) {
    auto tracee = std::make_unique<Hooks>();
    tracee->start = [&](Process& me) {
      me.symbols().write("DATA", Bytes{9, 9, 9});
      me.breakpoint("BP", [&] { tracee_resumed = true; });
    };
    auto res = self.spawn_traced(
        std::move(tracee), {}, [&](const DebugEvent& ev) {
          if (ev.type == DebugEventType::Stopped) {
            events.push_back("stop@" + ev.symbol);
            Process* t = f.machine.find_process(ev.target);
            EXPECT_EQ(t->state(), ProcState::Stopped);
            EXPECT_FALSE(tracee_resumed);
          }
        });
    ASSERT_TRUE(res.is_ok());
    TraceSession* session = res.value.second;
    // Drive from a timer: once stopped, read target memory, then continue.
    self.post(sim::seconds(1), [&, session] {
      session->read_symbol("DATA", [&, session](Status st, Bytes data) {
        EXPECT_TRUE(st.is_ok());
        EXPECT_EQ(data, (Bytes{9, 9, 9}));
        events.push_back("read");
        session->continue_target();
      });
    });
  };
  f.spawn_hooks(f.machine.front_end(), std::move(tracer));
  f.sim.run();
  ASSERT_GE(events.size(), 2u);
  EXPECT_EQ(events[0], "stop@BP");
  EXPECT_EQ(events[1], "read");
  EXPECT_TRUE(tracee_resumed);
}

TEST(Tracing, AttachStopsRunningProcessAndDetachResumes) {
  Fixture f;
  Pid target_pid = kInvalidPid;
  int ticks = 0;

  auto target = std::make_unique<Hooks>();
  target->start = [&ticks](Process& self) {
    auto tick = std::make_shared<std::function<void()>>();
    *tick = [&self, &ticks, tick] {
      ++ticks;
      self.post(sim::ms(10), *tick);
    };
    self.post(sim::ms(10), *tick);
  };
  target_pid = f.spawn_hooks(f.machine.compute_node(0), std::move(target));

  f.sim.run(sim::ms(100));
  const int ticks_before = ticks;
  EXPECT_GT(ticks_before, 0);

  TraceSession* session = nullptr;
  auto tracer = std::make_unique<Hooks>();
  tracer->start = [&](Process& self) {
    auto res = self.trace_attach(target_pid, [&](const DebugEvent& ev) {
      EXPECT_EQ(ev.type, DebugEventType::Attached);
    });
    ASSERT_TRUE(res.is_ok());
    session = res.value;
  };
  f.spawn_hooks(f.machine.front_end(), std::move(tracer));
  f.sim.run(sim::ms(200));
  EXPECT_EQ(f.machine.find_process(target_pid)->state(), ProcState::Stopped);

  // Stopped: no ticks accumulate.
  const int frozen = ticks;
  f.sim.run(sim::ms(500));
  EXPECT_EQ(ticks, frozen);

  session->detach();
  f.sim.run(sim::ms(800));
  EXPECT_EQ(f.machine.find_process(target_pid)->state(), ProcState::Running);
  EXPECT_GT(ticks, frozen);
}

TEST(Tracing, AttachToDeadProcessFails) {
  Fixture f;
  Status result;
  auto victim = std::make_unique<Hooks>();
  victim->start = [](Process& self) { self.exit(0); };
  Pid dead = f.spawn_hooks(f.machine.compute_node(0), std::move(victim));
  f.sim.run(sim::ms(50));

  auto tracer = std::make_unique<Hooks>();
  tracer->start = [&](Process& self) {
    auto res = self.trace_attach(dead, [](const DebugEvent&) {});
    result = res.status;
  };
  f.spawn_hooks(f.machine.front_end(), std::move(tracer));
  f.sim.run();
  EXPECT_EQ(result.rc(), Rc::Edead);
}

TEST(Tracing, DoubleAttachRejected) {
  Fixture f;
  Status second;
  Pid target_pid = f.spawn_hooks(f.machine.compute_node(0),
                                 std::make_unique<Hooks>());
  auto tracer = std::make_unique<Hooks>();
  tracer->start = [&](Process& self) {
    ASSERT_TRUE(self.trace_attach(target_pid, [](const DebugEvent&) {}).is_ok());
    second = self.trace_attach(target_pid, [](const DebugEvent&) {}).status;
  };
  f.spawn_hooks(f.machine.front_end(), std::move(tracer));
  f.sim.run();
  EXPECT_EQ(second.rc(), Rc::Ebusy);
}

TEST(Tracing, ExitedTargetEmitsExitedEvent) {
  Fixture f;
  std::vector<DebugEventType> seen;
  auto tracer = std::make_unique<Hooks>();
  tracer->start = [&](Process& self) {
    auto tracee = std::make_unique<Hooks>();
    tracee->start = [](Process& me) {
      me.post(sim::ms(5), [&me] { me.exit(3); });
    };
    auto res = self.spawn_traced(std::move(tracee), {},
                                 [&](const DebugEvent& ev) {
                                   seen.push_back(ev.type);
                                   if (ev.type == DebugEventType::Exited) {
                                     EXPECT_EQ(ev.exit_code, 3);
                                   }
                                 });
    ASSERT_TRUE(res.is_ok());
  };
  f.spawn_hooks(f.machine.front_end(), std::move(tracer));
  f.sim.run();
  ASSERT_FALSE(seen.empty());
  EXPECT_EQ(seen.back(), DebugEventType::Exited);
}

TEST(Tracing, KillTargetTerminatesEvenWhenStopped) {
  Fixture f;
  Pid target_pid = f.spawn_hooks(f.machine.compute_node(0),
                                 std::make_unique<Hooks>());
  TraceSession* session = nullptr;
  auto tracer = std::make_unique<Hooks>();
  tracer->start = [&](Process& self) {
    auto res = self.trace_attach(target_pid, [&](const DebugEvent& ev) {
      if (ev.type == DebugEventType::Attached && session != nullptr) {
        session->kill_target();
      }
    });
    ASSERT_TRUE(res.is_ok());
    session = res.value;
  };
  f.spawn_hooks(f.machine.front_end(), std::move(tracer));
  f.sim.run();
  EXPECT_EQ(f.machine.find_process(target_pid)->state(), ProcState::Exited);
}

TEST(Tracing, ReadMissingSymbolReturnsEinval) {
  Fixture f;
  Status result;
  Pid target_pid = f.spawn_hooks(f.machine.compute_node(0),
                                 std::make_unique<Hooks>());
  auto tracer = std::make_unique<Hooks>();
  tracer->start = [&](Process& self) {
    auto res = self.trace_attach(target_pid, [](const DebugEvent&) {});
    ASSERT_TRUE(res.is_ok());
    res.value->read_symbol("NOPE", [&](Status st, Bytes) { result = st; });
  };
  f.spawn_hooks(f.machine.front_end(), std::move(tracer));
  f.sim.run();
  EXPECT_EQ(result.rc(), Rc::Einval);
}

}  // namespace
}  // namespace lmon::cluster
