// Behavioural tests for the SLURM-like RM: allocation lifecycle, tree
// launch correctness, kill, and the MPIR stop protocol.
#include <gtest/gtest.h>

#include <memory>

#include "cluster/tracing.hpp"
#include "rm/apai.hpp"
#include "rm/node_daemon.hpp"
#include "tests/test_util.hpp"

namespace lmon::rm {
namespace {

using lmon::testing::TestCluster;

/// Minimal controller client usable from a scripted FE.
void rpc(cluster::Process& self, cluster::Message msg,
         std::function<void(cluster::Message)> on_reply) {
  self.connect(self.machine().front_end().hostname(),
               cluster::kRmControllerPort,
               [&self, msg = std::move(msg), on_reply = std::move(on_reply)](
                   Status st, cluster::ChannelPtr ch) mutable {
                 ASSERT_TRUE(st.is_ok());
                 self.set_channel_handler(
                     ch, [on_reply](const cluster::ChannelPtr&,
                                    cluster::Message reply) {
                       on_reply(std::move(reply));
                     });
                 self.send(ch, std::move(msg));
               });
}

TEST(RmController, AllocatesDistinctNodesPerJob) {
  TestCluster tc(6);
  std::vector<AllocResp> resps;
  tc.spawn_fe([&](cluster::Process& self) {
    rpc(self, AllocReq{4, false}.encode(), [&](cluster::Message m) {
      resps.push_back(*AllocResp::decode(m));
    });
    rpc(self, AllocReq{2, false}.encode(), [&](cluster::Message m) {
      resps.push_back(*AllocResp::decode(m));
    });
    rpc(self, AllocReq{1, false}.encode(), [&](cluster::Message m) {
      resps.push_back(*AllocResp::decode(m));
    });
  });
  ASSERT_TRUE(tc.run_until([&] { return resps.size() == 3; }));

  // Jobs 1 and 2 succeed on disjoint nodes; job 3 finds none free.
  EXPECT_TRUE(resps[0].ok);
  EXPECT_TRUE(resps[1].ok);
  EXPECT_FALSE(resps[2].ok);
  std::set<std::string> seen;
  for (const auto& r : {resps[0], resps[1]}) {
    for (const auto& n : r.nodes) {
      EXPECT_TRUE(seen.insert(n.host).second) << n.host << " double-booked";
    }
  }
  EXPECT_NE(resps[0].jobid, resps[1].jobid);
}

TEST(RmController, FreeingAJobReleasesItsNodes) {
  TestCluster tc(4);
  bool freed_alloc_ok = false;
  tc.spawn_fe([&](cluster::Process& self) {
    rpc(self, AllocReq{4, false}.encode(), [&](cluster::Message m) {
      auto first = AllocResp::decode(m);
      ASSERT_TRUE(first->ok);
      rpc(self, JobFreeReq{first->jobid}.encode(),
          [](cluster::Message) {});  // no reply expected for free
      self.post(sim::ms(50), [&] {
        rpc(self, AllocReq{4, false}.encode(), [&](cluster::Message m2) {
          freed_alloc_ok = AllocResp::decode(m2)->ok;
        });
      });
    });
  });
  ASSERT_TRUE(tc.run_until([&] { return freed_alloc_ok; }));
}

TEST(RmController, JobInfoReflectsAllocation) {
  TestCluster tc(3);
  bool checked = false;
  tc.spawn_fe([&](cluster::Process& self) {
    rpc(self, AllocReq{3, false}.encode(), [&](cluster::Message m) {
      auto alloc = AllocResp::decode(m);
      ASSERT_TRUE(alloc->ok);
      rpc(self, JobInfoReq{alloc->jobid}.encode(),
          [&, alloc = *alloc](cluster::Message m2) {
            auto info = JobInfoResp::decode(m2);
            ASSERT_TRUE(info.has_value());
            EXPECT_TRUE(info->ok);
            EXPECT_EQ(info->nodes.size(), alloc.nodes.size());
            for (std::size_t i = 0; i < info->nodes.size(); ++i) {
              EXPECT_EQ(info->nodes[i].host, alloc.nodes[i].host);
              EXPECT_EQ(info->nodes[i].index, alloc.nodes[i].index);
            }
            checked = true;
          });
    });
  });
  ASSERT_TRUE(tc.run_until([&] { return checked; }));
}

TEST(RmController, UnknownJobInfoFails) {
  TestCluster tc(2);
  bool checked = false;
  tc.spawn_fe([&](cluster::Process& self) {
    rpc(self, JobInfoReq{777}.encode(), [&](cluster::Message m) {
      auto info = JobInfoResp::decode(m);
      ASSERT_TRUE(info.has_value());
      EXPECT_FALSE(info->ok);
      checked = true;
    });
  });
  ASSERT_TRUE(tc.run_until([&] { return checked; }));
}

TEST(RmLauncher, JobModeProducesBlockDistributedRanks) {
  TestCluster tc(4);
  auto job = run_job(tc.machine, rm::JobSpec{4, 4, "mpi_app", {}});
  ASSERT_TRUE(job.is_ok());
  tc.simulator.run(tc.simulator.now() + sim::seconds(3));

  cluster::Process* launcher = tc.machine.find_process(job.value);
  ASSERT_NE(launcher, nullptr);
  EXPECT_EQ(launcher->state(), cluster::ProcState::Running);

  // MPIR symbols are published even without a tool (attach-later support).
  auto entries =
      apai::decode_proctable(*launcher->symbols().find(apai::kProctable));
  ASSERT_TRUE(entries.has_value());
  ASSERT_EQ(entries->size(), 16u);
  // Block distribution: ranks 0..3 on node 0, etc.
  for (int i = 0; i < 16; ++i) {
    const auto& e = (*entries)[static_cast<std::size_t>(i)];
    EXPECT_EQ(e.rank, i);
    EXPECT_EQ(e.host, tc.machine.compute_node(i / 4).hostname());
    cluster::Process* task = tc.machine.find_process(e.pid);
    ASSERT_NE(task, nullptr);
    EXPECT_EQ(task->state(), cluster::ProcState::Running);
  }
}

TEST(RmLauncher, TracedLauncherStopsAtMpirBreakpoint) {
  TestCluster tc(2);
  bool stopped_at_bp = false;
  cluster::Pid launcher_pid = cluster::kInvalidPid;
  tc.spawn_fe([&](cluster::Process& self) {
    const cluster::ProgramImage* image = tc.machine.find_program("srun");
    ASSERT_NE(image, nullptr);
    cluster::SpawnOptions opts;
    opts.executable = "srun";
    opts.image_mb = image->image_mb;
    opts.args = job_args(rm::JobSpec{2, 2, "mpi_app", {}});
    auto res = self.spawn_traced(image->factory(opts.args), std::move(opts),
                                 [&](const cluster::DebugEvent& ev) {
                                   if (ev.type ==
                                           cluster::DebugEventType::Stopped &&
                                       ev.symbol == apai::kBreakpoint) {
                                     stopped_at_bp = true;
                                   }
                                 });
    ASSERT_TRUE(res.is_ok());
    launcher_pid = res.value.first;
  });
  ASSERT_TRUE(tc.run_until([&] { return stopped_at_bp; }));
  cluster::Process* launcher = tc.machine.find_process(launcher_pid);
  EXPECT_EQ(launcher->state(), cluster::ProcState::Stopped);
  // totalview_jobid is exported for tools.
  EXPECT_TRUE(launcher->symbols().has(apai::kJobId));
}

TEST(RmNodeDaemon, SubtreeSplittingIsBalanced) {
  // White-box check of the chunking used for tree forwarding (first node
  // is handled locally, the rest fans out).
  std::vector<AllocatedNode> nodes;
  for (int i = 0; i < 65; ++i) {
    nodes.push_back(AllocatedNode{"n" + std::to_string(i),
                                  static_cast<std::uint32_t>(i)});
  }
  // Use the tree-launch path end to end instead: launch 65 nodes and count
  // max per-daemon children via the resulting proctable integrity.
  TestCluster tc(65);
  auto job = run_job(tc.machine, rm::JobSpec{65, 1, "mpi_app", {}});
  ASSERT_TRUE(job.is_ok());
  tc.simulator.run(tc.simulator.now() + sim::seconds(5));
  cluster::Process* launcher = tc.machine.find_process(job.value);
  auto entries =
      apai::decode_proctable(*launcher->symbols().find(apai::kProctable));
  ASSERT_TRUE(entries.has_value());
  EXPECT_EQ(entries->size(), 65u);
  std::set<std::string> hosts;
  for (const auto& e : *entries) hosts.insert(e.host);
  EXPECT_EQ(hosts.size(), 65u);
}

}  // namespace
}  // namespace lmon::rm
