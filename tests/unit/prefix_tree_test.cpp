// Unit + property tests for STAT's call-graph prefix tree.
#include <gtest/gtest.h>

#include "simkernel/rng.hpp"
#include "tools/stat/prefix_tree.hpp"

namespace lmon::tools::stat {
namespace {

TEST(PrefixTree, SingleTraceSingleClass) {
  PrefixTree t;
  t.add_trace({"main", "solve", "MPI_Waitall"}, 0);
  auto classes = t.equivalence_classes();
  ASSERT_EQ(classes.size(), 1u);
  EXPECT_EQ(classes[0].path,
            (std::vector<std::string>{"main", "solve", "MPI_Waitall"}));
  EXPECT_EQ(classes[0].ranks, (std::set<std::int32_t>{0}));
}

TEST(PrefixTree, SharedPrefixGroupsRanks) {
  PrefixTree t;
  t.add_trace({"main", "compute"}, 0);
  t.add_trace({"main", "compute"}, 1);
  t.add_trace({"main", "io"}, 2);
  auto classes = t.equivalence_classes();
  ASSERT_EQ(classes.size(), 2u);
  EXPECT_EQ(t.node_count(), 3u);  // main, compute, io
  EXPECT_EQ(t.all_ranks().size(), 3u);
}

TEST(PrefixTree, MergeCombinesRankSets) {
  PrefixTree a;
  a.add_trace({"main", "x"}, 0);
  PrefixTree b;
  b.add_trace({"main", "x"}, 1);
  b.add_trace({"main", "y"}, 2);
  a.merge(b);
  auto classes = a.equivalence_classes();
  ASSERT_EQ(classes.size(), 2u);
  for (const auto& c : classes) {
    if (c.path.back() == "x") {
      EXPECT_EQ(c.ranks, (std::set<std::int32_t>{0, 1}));
    } else {
      EXPECT_EQ(c.ranks, (std::set<std::int32_t>{2}));
    }
  }
}

TEST(PrefixTree, PackUnpackRoundTrip) {
  PrefixTree t;
  t.add_trace({"_start", "main", "a", "b"}, 3);
  t.add_trace({"_start", "main", "a", "c"}, 4);
  t.add_trace({"_start", "main", "d"}, 5);
  auto back = PrefixTree::unpack(t.pack());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->node_count(), t.node_count());
  EXPECT_EQ(back->all_ranks(), t.all_ranks());
  EXPECT_EQ(back->equivalence_classes().size(),
            t.equivalence_classes().size());
}

TEST(PrefixTree, RenderMentionsFramesAndCounts) {
  PrefixTree t;
  t.add_trace({"main", "kernel"}, 0);
  t.add_trace({"main", "kernel"}, 1);
  const std::string r = t.render();
  EXPECT_NE(r.find("main"), std::string::npos);
  EXPECT_NE(r.find("kernel"), std::string::npos);
  EXPECT_NE(r.find("[2 tasks]"), std::string::npos);
}

TEST(PrefixTree, UnpackRejectsGarbage) {
  EXPECT_FALSE(PrefixTree::unpack(Bytes{1, 2, 3}).has_value());
}

/// Generates a random trace set and checks merge properties.
class PrefixTreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

std::vector<std::vector<std::string>> random_traces(sim::Rng& rng, int n) {
  static const std::vector<std::string> frames = {
      "main", "solve", "exchange", "MPI_Waitall", "io", "kernel", "bc"};
  std::vector<std::vector<std::string>> out;
  for (int i = 0; i < n; ++i) {
    std::vector<std::string> trace{"_start"};
    const auto depth = 1 + rng.next_below(5);
    for (std::uint64_t d = 0; d < depth; ++d) {
      trace.push_back(frames[rng.next_below(frames.size())]);
    }
    out.push_back(std::move(trace));
  }
  return out;
}

TEST_P(PrefixTreeProperty, MergeOrderIndependent) {
  sim::Rng rng(GetParam() * 73 + 5);
  auto traces = random_traces(rng, 30);

  // Insert all into one tree; also split across three trees merged in
  // different orders; all must agree.
  PrefixTree whole;
  PrefixTree parts[3];
  for (std::size_t i = 0; i < traces.size(); ++i) {
    whole.add_trace(traces[i], static_cast<std::int32_t>(i));
    parts[i % 3].add_trace(traces[i], static_cast<std::int32_t>(i));
  }
  PrefixTree m1;
  m1.merge(parts[0]);
  m1.merge(parts[1]);
  m1.merge(parts[2]);
  PrefixTree m2;
  m2.merge(parts[2]);
  m2.merge(parts[0]);
  m2.merge(parts[1]);

  EXPECT_EQ(m1.node_count(), whole.node_count());
  EXPECT_EQ(m2.node_count(), whole.node_count());
  EXPECT_EQ(m1.all_ranks(), whole.all_ranks());
  EXPECT_EQ(m1.equivalence_classes().size(),
            whole.equivalence_classes().size());
  EXPECT_EQ(m2.equivalence_classes().size(),
            whole.equivalence_classes().size());
}

TEST_P(PrefixTreeProperty, ClassesPartitionRanks) {
  sim::Rng rng(GetParam() * 191 + 9);
  auto traces = random_traces(rng, 50);
  PrefixTree t;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    t.add_trace(traces[i], static_cast<std::int32_t>(i));
  }
  // Note: identical traces share a leaf, different traces may still share
  // a leaf only if equal. Ranks across leaf classes with distinct paths
  // may overlap when one trace is a prefix of another - in that case the
  // inner node is not a leaf, so each rank lands in >= 1 class.
  std::set<std::int32_t> covered;
  for (const auto& c : t.equivalence_classes()) {
    covered.insert(c.ranks.begin(), c.ranks.end());
  }
  EXPECT_EQ(covered.size(), traces.size());
}

TEST_P(PrefixTreeProperty, ChunkBoundaryPartialsFoldToTheWholeTree) {
  // The streaming back end (stat_be) flushes a partial tree upward whenever
  // the packed size crosses the chunk threshold and the TBON left-folds the
  // parts into its round accumulator. Splitting the same trace stream at
  // arbitrary points and folding must reproduce the whole-payload tree
  // byte-for-byte (children are name-keyed and ranks are sets, so pack()
  // is canonical regardless of arrival order).
  sim::Rng rng(GetParam() * 257 + 13);
  auto traces = random_traces(rng, 40);

  PrefixTree whole;
  std::vector<Bytes> parts;
  PrefixTree pending;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    whole.add_trace(traces[i], static_cast<std::int32_t>(i));
    pending.add_trace(traces[i], static_cast<std::int32_t>(i));
    if (rng.next_below(4) == 0) {  // arbitrary flush boundary
      parts.push_back(pending.pack());
      pending = PrefixTree{};
    }
  }
  parts.push_back(pending.pack());

  PrefixTree fold;
  for (const Bytes& packed : parts) {
    auto t = PrefixTree::unpack(packed);
    ASSERT_TRUE(t.has_value());
    fold.merge(*t);
  }
  EXPECT_EQ(fold.pack(), whole.pack());
}

TEST_P(PrefixTreeProperty, PackUnpackIsLossless) {
  sim::Rng rng(GetParam() * 401 + 11);
  auto traces = random_traces(rng, 40);
  PrefixTree t;
  for (std::size_t i = 0; i < traces.size(); ++i) {
    t.add_trace(traces[i], static_cast<std::int32_t>(i));
  }
  auto back = PrefixTree::unpack(t.pack());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->pack(), t.pack());
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrefixTreeProperty,
                         ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace lmon::tools::stat
