// Unit tests for the comm::Topology layer: parent/children consistency,
// subtree partitions, depth and edge counts for every tree family, across
// rank/size sweeps including size=1 and non-power-of-two sizes.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "comm/bootstrap.hpp"
#include "comm/heal.hpp"
#include "comm/topology.hpp"

namespace lmon::comm {
namespace {

// --- spec parsing ------------------------------------------------------------

TEST(TopologySpec, RoundTripsThroughString) {
  for (const TopologySpec spec :
       {TopologySpec{TopologyKind::KAry, 7}, TopologySpec{TopologyKind::KAry, 1},
        TopologySpec{TopologyKind::Binomial, 0},
        TopologySpec{TopologyKind::Flat, 0}}) {
    auto back = TopologySpec::parse(spec.to_string());
    ASSERT_TRUE(back.has_value()) << spec.to_string();
    EXPECT_EQ(back->kind, spec.kind);
    if (spec.kind == TopologyKind::KAry) {
      EXPECT_EQ(back->arity, spec.arity);
    }
  }
}

TEST(TopologySpec, ParseRejectsGarbage) {
  EXPECT_FALSE(TopologySpec::parse("").has_value());
  EXPECT_FALSE(TopologySpec::parse("ring").has_value());
  EXPECT_FALSE(TopologySpec::parse("kary:x").has_value());
}

TEST(TopologySpec, ParseAcceptsBareKindAndArity) {
  auto k = TopologySpec::parse("kary:32");
  ASSERT_TRUE(k.has_value());
  EXPECT_EQ(k->kind, TopologyKind::KAry);
  EXPECT_EQ(k->arity, 32u);
  EXPECT_EQ(TopologySpec::parse("binomial")->kind, TopologyKind::Binomial);
  EXPECT_EQ(TopologySpec::parse("flat")->kind, TopologyKind::Flat);
}

// --- fixed small shapes ------------------------------------------------------

TEST(Topology, KAryMatchesHeapLayout) {
  Topology t({TopologyKind::KAry, 2}, 7);
  EXPECT_EQ(t.children_of(0), (std::vector<std::uint32_t>{1, 2}));
  EXPECT_EQ(t.children_of(1), (std::vector<std::uint32_t>{3, 4}));
  EXPECT_EQ(t.children_of(2), (std::vector<std::uint32_t>{5, 6}));
  EXPECT_TRUE(t.children_of(3).empty());
  EXPECT_FALSE(t.parent_of(0).has_value());
  EXPECT_EQ(t.parent_of(6), 2u);
  EXPECT_EQ(t.depth(), 2u);
}

TEST(Topology, BinomialClearsLowestSetBit) {
  Topology t({TopologyKind::Binomial, 0}, 8);
  // Root owns every power of two.
  EXPECT_EQ(t.children_of(0), (std::vector<std::uint32_t>{1, 2, 4}));
  EXPECT_EQ(t.children_of(4), (std::vector<std::uint32_t>{5, 6}));
  EXPECT_EQ(t.children_of(6), (std::vector<std::uint32_t>{7}));
  EXPECT_EQ(t.parent_of(7), 6u);
  EXPECT_EQ(t.parent_of(6), 4u);
  EXPECT_EQ(t.parent_of(5), 4u);
  // log2(8) levels.
  EXPECT_EQ(t.depth(), 3u);
}

TEST(Topology, FlatHangsEveryoneOffRoot) {
  Topology t({TopologyKind::Flat, 0}, 5);
  EXPECT_EQ(t.children_of(0), (std::vector<std::uint32_t>{1, 2, 3, 4}));
  for (std::uint32_t r = 1; r < 5; ++r) {
    EXPECT_EQ(t.parent_of(r), 0u);
    EXPECT_TRUE(t.children_of(r).empty());
  }
  EXPECT_EQ(t.depth(), 1u);
}

TEST(Topology, SingletonHasNoEdges) {
  for (const TopologyKind kind :
       {TopologyKind::KAry, TopologyKind::Binomial, TopologyKind::Flat}) {
    Topology t({kind, 2}, 1);
    EXPECT_TRUE(t.children_of(0).empty());
    EXPECT_FALSE(t.parent_of(0).has_value());
    EXPECT_EQ(t.depth(), 0u);
    EXPECT_EQ(t.edge_count(), 0u);
    EXPECT_EQ(t.subtree_of(0), (std::vector<std::uint32_t>{0}));
  }
}

TEST(Topology, OutOfRangeQueriesAreEmpty) {
  Topology t({TopologyKind::KAry, 2}, 4);
  EXPECT_TRUE(t.children_of(9).empty());
  EXPECT_FALSE(t.parent_of(9).has_value());
  EXPECT_TRUE(t.subtree_of(9).empty());
}

// --- property sweep over every family ----------------------------------------

struct SweepParam {
  TopologySpec spec;
  std::uint32_t size;
};

class TopologyProperty : public ::testing::TestWithParam<SweepParam> {};

TEST_P(TopologyProperty, ParentChildConsistency) {
  const auto [spec, size] = GetParam();
  Topology t(spec, size);
  for (std::uint32_t r = 0; r < size; ++r) {
    for (std::uint32_t c : t.children_of(r)) {
      EXPECT_LT(c, size);
      EXPECT_EQ(t.parent_of(c), r);
    }
    if (r != 0) {
      auto p = t.parent_of(r);
      ASSERT_TRUE(p.has_value());
      EXPECT_LT(*p, r) << "parents precede children in rank order";
      auto siblings = t.children_of(*p);
      EXPECT_NE(std::find(siblings.begin(), siblings.end(), r),
                siblings.end());
    }
  }
}

TEST_P(TopologyProperty, EveryRankReachesRootAndDepthAgrees) {
  const auto [spec, size] = GetParam();
  Topology t(spec, size);
  std::uint32_t max_depth = 0;
  for (std::uint32_t r = 0; r < size; ++r) {
    std::uint32_t cur = r;
    std::uint32_t hops = 0;
    while (cur != 0) {
      auto p = t.parent_of(cur);
      ASSERT_TRUE(p.has_value());
      cur = *p;
      ASSERT_LE(++hops, size);
    }
    EXPECT_EQ(t.depth_of(r), hops);
    max_depth = std::max(max_depth, hops);
  }
  EXPECT_EQ(t.depth(), max_depth);
}

TEST_P(TopologyProperty, ConnectedTreeHasSizeMinusOneEdges) {
  const auto [spec, size] = GetParam();
  Topology t(spec, size);
  EXPECT_EQ(t.edge_count(), size == 0 ? 0u : static_cast<std::uint64_t>(size) - 1u);
}

TEST_P(TopologyProperty, RootSubtreeCoversAllRanksExactlyOnce) {
  const auto [spec, size] = GetParam();
  Topology t(spec, size);
  const auto all = t.subtree_of(0);
  ASSERT_EQ(all.size(), size);
  for (std::uint32_t r = 0; r < size; ++r) EXPECT_EQ(all[r], r);

  // The root's children's subtrees partition the non-root ranks.
  std::vector<bool> covered(size, false);
  covered[0] = true;
  for (std::uint32_t c : t.children_of(0)) {
    for (std::uint32_t r : t.subtree_of(c)) {
      EXPECT_FALSE(covered[r]) << "rank " << r << " covered twice";
      covered[r] = true;
    }
  }
  for (std::uint32_t r = 0; r < size; ++r) {
    EXPECT_TRUE(covered[r]) << "rank " << r << " not covered";
  }
}

std::vector<SweepParam> sweep_params() {
  std::vector<SweepParam> out;
  // size=1, powers of two, off-by-ones and awkward non-powers-of-two.
  const std::uint32_t sizes[] = {1, 2, 3, 5, 15, 16, 17, 64, 100, 333, 1000, 1024};
  for (std::uint32_t size : sizes) {
    for (std::uint32_t k : {1u, 2u, 3u, 7u, 32u, 64u}) {
      out.push_back({{TopologyKind::KAry, k}, size});
    }
    out.push_back({{TopologyKind::Binomial, 0}, size});
    out.push_back({{TopologyKind::Flat, 0}, size});
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TopologyProperty, ::testing::ValuesIn(sweep_params()),
    [](const ::testing::TestParamInfo<SweepParam>& pinfo) {
      std::string name = pinfo.param.spec.to_string() + "_n" +
                         std::to_string(pinfo.param.size);
      for (char& c : name) {
        if (c == ':' || c == '-') c = '_';
      }
      return name;
    });

// --- contiguous chunking (launch-protocol subtree splits) --------------------

TEST(SplitContiguous, CoversEveryIndexOnceInOrder) {
  for (std::size_t count : {0u, 1u, 2u, 7u, 8u, 64u, 513u}) {
    for (std::uint32_t fanout : {0u, 1u, 2u, 3u, 32u, 1000u}) {
      const auto chunks = split_contiguous(count, fanout);
      std::size_t pos = 0;
      for (const auto& [begin, len] : chunks) {
        EXPECT_EQ(begin, pos);
        EXPECT_GT(len, 0u);
        pos += len;
      }
      EXPECT_EQ(pos, count);
      if (count > 0) {
        EXPECT_LE(chunks.size(),
                  static_cast<std::size_t>(fanout == 0 ? 1 : fanout));
      }
    }
  }
}

TEST(SplitContiguous, BalancesWithinOne) {
  const auto chunks = split_contiguous(10, 3);
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].second, 4u);
  EXPECT_EQ(chunks[1].second, 3u);
  EXPECT_EQ(chunks[2].second, 3u);
}

// --- capacity-weighted chunking (topology-aware placement) --------------------

TEST(SplitWeighted, CoversEveryIndexOnceInOrder) {
  for (std::size_t count : {0u, 1u, 2u, 7u, 64u, 513u}) {
    for (const auto& weights :
         {std::vector<double>{1},
          std::vector<double>{1, 1, 1},
          std::vector<double>{3, 1},
          std::vector<double>{0.5, 0.25, 0.25},
          std::vector<double>{0, 2, 1},
          std::vector<double>{1e-9, 1e9}}) {
      const auto chunks = split_weighted(count, weights);
      if (count == 0) {
        EXPECT_TRUE(chunks.empty());
        continue;
      }
      ASSERT_EQ(chunks.size(), weights.size());
      std::size_t pos = 0;
      for (const auto& [begin, len] : chunks) {
        EXPECT_EQ(begin, pos);
        pos += len;
      }
      EXPECT_EQ(pos, count);
    }
  }
}

TEST(SplitWeighted, ProportionalWithLargestRemainder) {
  // 10 items at weights 3:1:1 -> exact shares 6:2:2.
  const auto exact = split_weighted(10, {3, 1, 1});
  ASSERT_EQ(exact.size(), 3u);
  EXPECT_EQ(exact[0].second, 6u);
  EXPECT_EQ(exact[1].second, 2u);
  EXPECT_EQ(exact[2].second, 2u);
  // 10 items at 1:1:1 -> ideal 3.33 each; the leftover item goes to the
  // lowest index among equal fractional parts (deterministic tie-break).
  const auto tied = split_weighted(10, {1, 1, 1});
  EXPECT_EQ(tied[0].second, 4u);
  EXPECT_EQ(tied[1].second, 3u);
  EXPECT_EQ(tied[2].second, 3u);
}

TEST(SplitWeighted, ZeroWeightsYieldEmptyBlocks) {
  const auto chunks = split_weighted(8, {0, 1, 0, 1});
  ASSERT_EQ(chunks.size(), 4u);
  EXPECT_EQ(chunks[0].second, 0u);
  EXPECT_EQ(chunks[1].second, 4u);
  EXPECT_EQ(chunks[2].second, 0u);
  EXPECT_EQ(chunks[3].second, 4u);
  // Negative weights are clamped to zero, not allowed to steal items.
  const auto clamped = split_weighted(6, {-5, 1, 2});
  EXPECT_EQ(clamped[0].second, 0u);
  EXPECT_EQ(clamped[1].second, 2u);
  EXPECT_EQ(clamped[2].second, 4u);
}

TEST(SplitWeighted, AllZeroWeightsFallBackToNearEqual) {
  const auto chunks = split_weighted(10, {0, 0, 0});
  ASSERT_EQ(chunks.size(), 3u);
  EXPECT_EQ(chunks[0].second, 4u);
  EXPECT_EQ(chunks[1].second, 3u);
  EXPECT_EQ(chunks[2].second, 3u);
}

TEST(SplitWeighted, MatchesEqualSplitForUniformWeights) {
  for (std::size_t count : {1u, 9u, 64u, 100u}) {
    const auto weighted = split_weighted(count, {2, 2, 2, 2});
    const auto equal = split_contiguous(count, 4);
    for (std::size_t i = 0; i < equal.size(); ++i) {
      EXPECT_EQ(weighted[i].first, equal[i].first) << count << " " << i;
      EXPECT_EQ(weighted[i].second, equal[i].second) << count << " " << i;
    }
  }
}

// --- bootstrap argv round trip ----------------------------------------------

TEST(Bootstrap, ArgsRoundTripWithExplicitRank) {
  BootstrapSpec spec;
  spec.size = 4;
  spec.topology = {TopologyKind::Binomial, 0};
  spec.port = 9100;
  spec.session = "s3p77";
  spec.fe_host = "atlas-fe";
  spec.fe_port = 7050;
  spec.hosts = {"a0", "a1", "a2", "a3"};

  const auto args = bootstrap_args(spec, 2u);
  const auto p = parse_bootstrap(args);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->rank, 2u);
  EXPECT_EQ(p->size, 4u);
  EXPECT_EQ(p->topology.kind, TopologyKind::Binomial);
  EXPECT_EQ(p->port, 9100);
  EXPECT_EQ(p->session, "s3p77");
  EXPECT_EQ(p->fe_host, "atlas-fe");
  EXPECT_EQ(p->fe_port, 7050);
  EXPECT_EQ(p->hosts, spec.hosts);
}

TEST(Bootstrap, RankDerivedFromHostPosition) {
  BootstrapSpec spec;
  spec.size = 3;
  spec.port = 9100;
  spec.session = "s0";
  spec.hosts = {"n0", "n1", "n2"};

  const auto args = bootstrap_args(spec, std::nullopt);
  // Each daemon resolves its own rank from its hostname.
  for (std::uint32_t r = 0; r < 3; ++r) {
    const auto p = parse_bootstrap(args, spec.hosts[r]);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->rank, r);
  }
  // Unknown host or no host at all: not a LaunchMON daemon.
  EXPECT_FALSE(parse_bootstrap(args, "stranger").has_value());
  EXPECT_FALSE(parse_bootstrap(args).has_value());
}

TEST(Bootstrap, LegacyFanoutSpellingStillParses) {
  const std::vector<std::string> args{
      "--lmon-rank=1", "--lmon-size=2", "--lmon-fanout=4", "--lmon-port=9000",
      "--lmon-hosts=x,y"};
  const auto p = parse_bootstrap(args);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->topology.kind, TopologyKind::KAry);
  EXPECT_EQ(p->topology.arity, 4u);
}

TEST(Bootstrap, RejectsInconsistentArgv) {
  // rank >= size
  EXPECT_FALSE(parse_bootstrap({"--lmon-rank=8", "--lmon-size=8",
                                "--lmon-port=1", "--lmon-hosts=a"})
                   .has_value());
  // host list length mismatch
  EXPECT_FALSE(parse_bootstrap({"--lmon-rank=0", "--lmon-size=2",
                                "--lmon-port=1", "--lmon-hosts=a"})
                   .has_value());
  // bad topology spelling
  EXPECT_FALSE(parse_bootstrap({"--lmon-rank=0", "--lmon-size=1",
                                "--lmon-topo=moebius", "--lmon-port=1",
                                "--lmon-hosts=a"})
                   .has_value());
  // missing everything (a daemon started outside LaunchMON)
  EXPECT_FALSE(parse_bootstrap({"--verbose"}).has_value());
}


// --- self-heal reparent math (comm/heal.hpp) ---------------------------------

TEST(HealMath, AncestorChainClimbsToRoot) {
  const Topology topo({TopologyKind::KAry, 2}, 15);
  // rank 11: parent 5, grandparent 2, root.
  EXPECT_EQ(ancestor_chain(topo, 11),
            (std::vector<std::uint32_t>{5, 2, 0}));
  EXPECT_TRUE(ancestor_chain(topo, 0).empty());
  EXPECT_TRUE(ancestor_chain(topo, 99).empty());
}

TEST(HealMath, NearestLiveAncestorSkipsDeadChain) {
  const Topology topo({TopologyKind::KAry, 2}, 15);
  EXPECT_EQ(nearest_live_ancestor(topo, 11, {5}), 2u);
  EXPECT_EQ(nearest_live_ancestor(topo, 11, {5, 2}), 0u);
  // Root dead: the whole chain is gone.
  EXPECT_FALSE(nearest_live_ancestor(topo, 11, {5, 2, 0}).has_value());
  // Root itself has no ancestor to find.
  EXPECT_FALSE(nearest_live_ancestor(topo, 0, {}).has_value());
}

TEST(HealMath, ReparentPlanSingleInteriorDeath) {
  const Topology topo({TopologyKind::KAry, 2}, 7);
  const auto plan = reparent_plan(topo, {1});
  // 1's children {3,4} both land on the root.
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0], (Adoption{3, 0}));
  EXPECT_EQ(plan[1], (Adoption{4, 0}));
}

TEST(HealMath, ReparentPlanRootChildDeath) {
  // Degenerate: the dead rank is a direct child of the root; orphans can
  // climb exactly one level.
  const Topology topo({TopologyKind::Flat, 0}, 6);
  // Flat: every rank is a leaf; killing one orphans nobody.
  EXPECT_TRUE(reparent_plan(topo, {3}).empty());
}

TEST(HealMath, ReparentPlanLastLeafDeath) {
  // Degenerate: the last leaf has no children; plan is empty for all shapes.
  for (const TopologySpec spec :
       {TopologySpec{TopologyKind::KAry, 2}, TopologySpec{TopologyKind::Binomial, 0},
        TopologySpec{TopologyKind::Flat, 0}}) {
    const Topology topo(spec, 9);
    EXPECT_TRUE(reparent_plan(topo, {8}).empty()) << spec.to_string();
  }
}

TEST(HealMath, ReparentPlanWholeRackLoss) {
  // Correlated loss of a whole subtree {1,3,4,7,8,9,10}: nothing inside it
  // survives to be adopted, and ranks outside it are unaffected.
  const Topology topo({TopologyKind::KAry, 2}, 15);
  std::set<std::uint32_t> dead;
  for (const std::uint32_t r : topo.subtree_of(1)) dead.insert(r);
  EXPECT_TRUE(reparent_plan(topo, dead).empty());

  // Losing the rack *except* its deepest leaves re-homes exactly those
  // leaves onto the root (their whole private chain is dead).
  dead.erase(7);
  dead.erase(8);
  const auto plan = reparent_plan(topo, dead);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0], (Adoption{7, 0}));
  EXPECT_EQ(plan[1], (Adoption{8, 0}));
}

TEST(HealMath, ReparentPlanOmitsUnrecoverableOrphans) {
  const Topology topo({TopologyKind::KAry, 2}, 7);
  // Root dead: children 1/2 have no live ancestor and are omitted; deeper
  // ranks still have live parents and are not orphans at all.
  EXPECT_TRUE(reparent_plan(topo, {0}).empty());
}

TEST(HealMath, ReparentPlanAdopterIsOnOrphansOldRootPath) {
  // The invariant the collective-replay rules rely on: an adoption never
  // moves a rank off its original root path.
  for (const TopologySpec spec :
       {TopologySpec{TopologyKind::KAry, 2}, TopologySpec{TopologyKind::KAry, 3},
        TopologySpec{TopologyKind::Binomial, 0}}) {
    const Topology topo(spec, 13);
    for (std::uint32_t dead = 1; dead < 13; ++dead) {
      for (const Adoption& a : reparent_plan(topo, {dead})) {
        const auto chain = ancestor_chain(topo, a.orphan);
        EXPECT_TRUE(std::find(chain.begin(), chain.end(), a.new_parent) !=
                    chain.end())
            << spec.to_string() << " dead=" << dead;
      }
    }
  }
}

TEST(HealMath, OrphanBlocksAreContiguousAndExhaustive) {
  const std::vector<std::uint32_t> orphans{10, 11, 12, 13, 14, 15, 16};
  const std::vector<std::uint32_t> adopters{1, 2, 3};
  const auto plan = assign_orphan_blocks(orphans, adopters);
  ASSERT_EQ(plan.size(), orphans.size());
  // Blocks are contiguous runs in orphan order: 3/2/2 with the remainder
  // taken by earlier adopters.
  std::vector<std::uint32_t> parents;
  for (const Adoption& a : plan) parents.push_back(a.new_parent);
  EXPECT_EQ(parents,
            (std::vector<std::uint32_t>{1, 1, 1, 2, 2, 3, 3}));
  for (std::size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].orphan, orphans[i]);
  }
  EXPECT_TRUE(assign_orphan_blocks({}, adopters).empty());
  EXPECT_TRUE(assign_orphan_blocks(orphans, {}).empty());
}

TEST(HealMath, WeightedBlocksFollowCapacity) {
  const std::vector<std::uint32_t> orphans{20, 21, 22, 23, 24, 25};
  const std::vector<std::uint32_t> adopters{7, 8};
  // 2:1 capacity -> 4/2 split.
  const auto plan =
      assign_orphan_blocks_weighted(orphans, adopters, {2.0, 1.0});
  ASSERT_EQ(plan.size(), 6u);
  int first = 0;
  for (const Adoption& a : plan) {
    if (a.new_parent == 7) ++first;
  }
  EXPECT_EQ(first, 4);
  // All-zero weights fall back to the near-equal split.
  const auto fallback =
      assign_orphan_blocks_weighted(orphans, adopters, {0.0, 0.0});
  ASSERT_EQ(fallback.size(), 6u);
  int fb_first = 0;
  for (const Adoption& a : fallback) {
    if (a.new_parent == 7) ++fb_first;
  }
  EXPECT_EQ(fb_first, 3);
}

}  // namespace
}  // namespace lmon::comm
