// Tests for cluster::CostModelRegistry - the named per-platform calibration
// profiles behind --lmon-platform= and the engine auto-tuner - and for the
// knob-precedence contract of core::auto_tune (explicit > profile > model).
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "cluster/cost_model_registry.hpp"
#include "core/auto_tune.hpp"
#include "core/perf_model.hpp"

namespace lmon::cluster {
namespace {

TEST(CostModelRegistry, BuiltinShipsTheTableOnePlatforms) {
  const CostModelRegistry& reg = CostModelRegistry::builtin();
  for (const char* name : {"atlas", "thunder", "zeus", "bluegene"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    EXPECT_TRUE(reg.find(name).has_value()) << name;
  }
  EXPECT_FALSE(reg.contains("asci-q"));
  EXPECT_FALSE(reg.find("asci-q").has_value());
  EXPECT_EQ(reg.names().size(), 4u);

  // Atlas is the defaults; the other platforms genuinely differ in the
  // constants the tuner keys decisions on.
  const CostModel atlas = *reg.find("atlas");
  EXPECT_EQ(atlas.rm_launch_fanout, CostModel{}.rm_launch_fanout);
  EXPECT_EQ(reg.find("thunder")->rm_launch_fanout, 16);
  EXPECT_EQ(reg.find("zeus")->rm_launch_fanout, 64);
  EXPECT_FALSE(reg.find("bluegene")->has_remote_access);
  EXPECT_TRUE(atlas.has_remote_access);
}

TEST(CostModelRegistry, CalibrationTextRoundTrips) {
  const CostModel thunder = thunder_profile();
  const std::string text = CostModelRegistry::calibration_text(thunder);

  CostModel rebuilt;  // defaults (= atlas), then overlay thunder's dump
  const Status st =
      CostModelRegistry::apply_calibration_text(text, rebuilt);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_EQ(rebuilt.net_latency, thunder.net_latency);
  EXPECT_EQ(rebuilt.bandwidth_bytes_per_sec,
            thunder.bandwidth_bytes_per_sec);
  EXPECT_EQ(rebuilt.rsh_session_cost, thunder.rsh_session_cost);
  EXPECT_EQ(rebuilt.rm_launch_fanout, thunder.rm_launch_fanout);
  EXPECT_EQ(rebuilt.has_remote_access, thunder.has_remote_access);
  // The emitted text is a fixed point: dump(apply(dump(m))) == dump(m).
  EXPECT_EQ(CostModelRegistry::calibration_text(rebuilt), text);
}

TEST(CostModelRegistry, CalibrationParsesUnitsCommentsAndBlanks) {
  CostModel m;
  const Status st = CostModelRegistry::apply_calibration_text(
      "# site re-fit 2008-03\n"
      "\n"
      "net_latency = 2ms   # was 28us\n"
      "rm_launch_fanout = 12\n"
      "has_remote_access = false\n"
      "iccl_rndv_threshold_bytes = 4096\n",
      m);
  ASSERT_TRUE(st.is_ok()) << st.to_string();
  EXPECT_EQ(m.net_latency, sim::ms(2));
  EXPECT_EQ(m.rm_launch_fanout, 12);
  EXPECT_FALSE(m.has_remote_access);
  EXPECT_EQ(m.iccl_rndv_threshold_bytes, 4096u);
}

TEST(CostModelRegistry, RejectsGarbageWithLineNumbers) {
  const CostModel pristine;
  struct Case {
    const char* text;
    const char* needle;
  };
  const Case cases[] = {
      {"net_latency = 10us\n\nthis is not a line\n", "line 3"},
      {"no_such_knob = 5\n", "unknown key \"no_such_knob\""},
      {"net_latency = fast\n", "bad value \"fast\""},
      {"net_latency =\n", "empty value"},
      {"= 5\n", "empty key"},
      {"has_remote_access = maybe\n", "bad value \"maybe\""},
  };
  for (const Case& c : cases) {
    CostModel m;
    const Status st = CostModelRegistry::apply_calibration_text(c.text, m);
    EXPECT_FALSE(st.is_ok()) << c.text;
    EXPECT_NE(st.to_string().find(c.needle), std::string::npos)
        << "message \"" << st.to_string() << "\" lacks \"" << c.needle
        << "\"";
    // All-or-nothing: a rejected calibration leaves the model untouched,
    // even when earlier lines were valid.
    EXPECT_EQ(m.net_latency, pristine.net_latency) << c.text;
  }
}

TEST(CostModelRegistry, UnreadableCalibrationFileIsAnError) {
  CostModel m;
  const Status st = CostModelRegistry::apply_calibration_file(
      "/nonexistent/calibration.conf", m);
  EXPECT_FALSE(st.is_ok());
  EXPECT_NE(st.to_string().find("cannot read"), std::string::npos);
}

// --- auto_tune precedence: explicit > profile > model -------------------------

TEST(AutoTunePrecedence, ExplicitKnobsOverrideTheModel) {
  const CostModel costs;
  core::AutoTuneRequest req;
  req.n_nodes = 64;
  req.tasks_per_node = 4;
  // The model would never pick serial-rsh with a flat fabric at 64 nodes;
  // explicit knobs force both and the decision record says so.
  req.strategy = comm::LaunchStrategyKind::SerialRsh;
  req.topology = comm::TopologySpec{comm::TopologyKind::Flat, 0};
  req.rndv = {core::RndvSetting::Mode::Bytes, 12345};
  const core::TunedConfig cfg = core::auto_tune(costs, req);
  EXPECT_EQ(cfg.strategy, comm::LaunchStrategyKind::SerialRsh);
  EXPECT_EQ(cfg.topology.kind, comm::TopologyKind::Flat);
  EXPECT_EQ(cfg.rndv_threshold, 12345u);
  EXPECT_FALSE(cfg.strategy_from_model);
  EXPECT_FALSE(cfg.topology_from_model);
  EXPECT_FALSE(cfg.rndv_from_model);
}

TEST(AutoTunePrecedence, ProfileDefaultBeatsModelWhenAskedFor) {
  // "platform-default" pins the profile's threshold even where the model's
  // crossover would choose differently; "auto" consults the model.
  const CostModel thunder = thunder_profile();
  core::AutoTuneRequest req;
  req.n_nodes = 64;
  req.tasks_per_node = 4;
  req.rndv = {core::RndvSetting::Mode::PlatformDefault, 0};
  const core::TunedConfig pinned = core::auto_tune(thunder, req);
  EXPECT_EQ(pinned.rndv_threshold, thunder.iccl_rndv_threshold_bytes);
  EXPECT_FALSE(pinned.rndv_from_model);

  req.rndv = {core::RndvSetting::Mode::Auto, 0};
  const core::TunedConfig modeled = core::auto_tune(thunder, req);
  EXPECT_TRUE(modeled.rndv_from_model);
  // Model-driven: either the solved crossover or the eager pin (no
  // crossover in the probe range) - never the old 0 sentinel.
  EXPECT_NE(modeled.rndv_threshold, 0u);
}

TEST(AutoTunePrecedence, ModelSkipsPredictedFailureStrategies) {
  // On a no-remote-access machine every rsh flavor predicts failure; the
  // tuner must land on rm-bulk without being told.
  const CostModel bg = CostModel::bluegene_like();
  core::AutoTuneRequest req;
  req.n_nodes = 512;
  req.tasks_per_node = 8;
  const core::TunedConfig cfg = core::auto_tune(bg, req);
  EXPECT_EQ(cfg.strategy, comm::LaunchStrategyKind::RmBulk);
  EXPECT_TRUE(cfg.strategy_from_model);
  const core::PerfModel model(
      bg, static_cast<std::uint32_t>(bg.rm_launch_fanout));
  EXPECT_FALSE(model.predicts_failure(cfg.strategy, req.n_nodes));
}

TEST(AutoTunePrecedence, RndvSettingSpellingsRoundTrip) {
  using M = core::RndvSetting::Mode;
  for (const char* spelling :
       {"auto", "platform-default", "always-eager", "always-rndv", "65536"}) {
    const auto parsed = core::RndvSetting::parse(spelling);
    ASSERT_TRUE(parsed.has_value()) << spelling;
    EXPECT_EQ(parsed->to_string(), spelling);
  }
  // "0" was the legacy "platform default" sentinel; it parses to the mode
  // with that meaning instead of resurrecting an eager-always-unreachable
  // threshold of zero.
  const auto zero = core::RndvSetting::parse("0");
  ASSERT_TRUE(zero.has_value());
  EXPECT_EQ(zero->mode, M::PlatformDefault);
  EXPECT_FALSE(core::RndvSetting::parse("sometimes").has_value());
  EXPECT_FALSE(core::RndvSetting::parse("").has_value());
  EXPECT_FALSE(core::RndvSetting::parse("12cows").has_value());
}

TEST(AutoTunePrecedence, TunedConfigEncodeDecodeRoundTrips) {
  core::TunedConfig cfg;
  cfg.strategy = comm::LaunchStrategyKind::TreeRsh;
  cfg.topology = {comm::TopologyKind::Binomial, 7};
  cfg.rndv_threshold = std::numeric_limits<std::uint32_t>::max();
  cfg.strategy_from_model = true;
  cfg.rndv_from_model = true;
  cfg.predicted_total_s = 1.25;
  cfg.bcast_crossover = 101254;
  cfg.gather_crossover = 0;
  cfg.platform = "thunder";
  const auto decoded = core::TunedConfig::decode(cfg.encode());
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->strategy, cfg.strategy);
  EXPECT_EQ(decoded->topology, cfg.topology);
  EXPECT_EQ(decoded->rndv_threshold, cfg.rndv_threshold);
  EXPECT_EQ(decoded->strategy_from_model, cfg.strategy_from_model);
  EXPECT_EQ(decoded->topology_from_model, cfg.topology_from_model);
  EXPECT_EQ(decoded->rndv_from_model, cfg.rndv_from_model);
  EXPECT_DOUBLE_EQ(decoded->predicted_total_s, cfg.predicted_total_s);
  EXPECT_EQ(decoded->bcast_crossover, cfg.bcast_crossover);
  EXPECT_EQ(decoded->gather_crossover, cfg.gather_crossover);
  EXPECT_EQ(decoded->platform, cfg.platform);
  // Garbage does not decode.
  EXPECT_FALSE(core::TunedConfig::decode(Bytes{1, 2, 3}).has_value());
}

}  // namespace
}  // namespace lmon::cluster
