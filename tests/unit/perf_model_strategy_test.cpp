// Tests for the per-strategy launch cost model family (paper §2/§4,
// Figure 4): serial-rsh is linear in n, tree-rsh is depth-dominated
// (O(k log_k n) serialized sessions), rm-bulk is ~flat by comparison, the
// crossover solver finds analytic roots, and every strategy's prediction
// tracks the simulated implementation.
#include <gtest/gtest.h>

#include <memory>

#include "bench/ablation_iccl_lib.hpp"
#include "bench/ablation_rsh_lib.hpp"
#include "core/fe_api.hpp"
#include "core/perf_model.hpp"
#include "tests/test_util.hpp"

namespace lmon::core {
namespace {

constexpr auto kSerial = comm::LaunchStrategyKind::SerialRsh;
constexpr auto kTree = comm::LaunchStrategyKind::TreeRsh;
constexpr auto kRm = comm::LaunchStrategyKind::RmBulk;

comm::TopologySpec kary(std::uint32_t k) {
  return comm::TopologySpec{comm::TopologyKind::KAry, k};
}

/// A cost model where only the rsh session constant is nonzero: every
/// strategy total becomes an exact multiple of S, so crossovers have
/// hand-derivable analytic roots.
cluster::CostModel session_only_costs() {
  cluster::CostModel c = cluster::CostModel{}.deterministic();
  c.fork_cost = 0;
  c.exec_base_cost = 0;
  c.exec_per_mb = 0;
  c.sched_latency = 0;
  c.net_latency = 0;
  c.local_latency = 0;
  c.bandwidth_bytes_per_sec = 1e18;
  c.connect_cost = 0;
  c.proc_read_cost = 0;
  c.trace_attach_cost = 0;
  c.trace_event_latency = 0;
  c.mem_read_base = 0;
  c.mem_read_per_kb = 0;
  c.rsh_client_fork = 0;
  c.rshd_spawn_cost = 0;
  c.rm_controller_rpc = 0;
  c.rm_allocate_cost = 0;
  c.rm_slurmd_handle = 0;
  c.rm_task_setup = 0;
  c.rm_launcher_per_node = 0;
  c.rm_launcher_startup = 0;
  c.rm_quadratic_ns_per_node2 = 0;
  c.rm_debug_events = 0;
  c.engine_handler_cost = 0;
  c.engine_fixed_cost = 0;
  c.fabric_endpoint_init = 0;
  c.iccl_msg_handle = 0;
  c.rsh_session_cost = sim::ms(100);
  return c;
}

TEST(PerStrategyModel, LegacyEntryIsRmBulkOverKAryFabric) {
  const cluster::CostModel costs;
  PerfModel m(costs, static_cast<std::uint32_t>(costs.rm_launch_fanout));
  for (int n : {16, 128, 512}) {
    const auto legacy = m.predict(n, 8);
    const auto per_strategy = m.predict(
        kRm, kary(static_cast<std::uint32_t>(costs.rm_launch_fanout)), n, 8);
    EXPECT_DOUBLE_EQ(legacy.total(), per_strategy.total()) << "n=" << n;
  }
}

TEST(PerStrategyModel, OnlyTDaemonDependsOnTheStrategy) {
  const cluster::CostModel costs;
  PerfModel m(costs, static_cast<std::uint32_t>(costs.rm_launch_fanout));
  const auto serial = m.predict(kSerial, kary(8), 64, 4);
  const auto tree = m.predict(kTree, kary(8), 64, 4);
  const auto rm = m.predict(kRm, kary(8), 64, 4);
  // Shared calibration constants: every non-T(daemon) term is identical.
  EXPECT_DOUBLE_EQ(serial.t_job, tree.t_job);
  EXPECT_DOUBLE_EQ(serial.t_job, rm.t_job);
  EXPECT_DOUBLE_EQ(serial.t_setup, tree.t_setup);
  EXPECT_DOUBLE_EQ(serial.t_collective, rm.t_collective);
  EXPECT_DOUBLE_EQ(serial.handshake, tree.handshake);
  EXPECT_DOUBLE_EQ(serial.tracing, rm.tracing);
  EXPECT_DOUBLE_EQ(serial.other, tree.other);
  // And T(daemon) orders the strategies the paper's way.
  EXPECT_GT(serial.t_daemon, tree.t_daemon);
  EXPECT_GT(tree.t_daemon, rm.t_daemon);
}

TEST(PerStrategyModel, SerialRshIsLinearInN) {
  const cluster::CostModel costs;
  PerfModel m(costs, 32);
  const double at64 = m.predict(kSerial, kary(0), 64, 1).t_daemon;
  const double at128 = m.predict(kSerial, kary(0), 128, 1).t_daemon;
  const double at256 = m.predict(kSerial, kary(0), 256, 1).t_daemon;
  // Constant per-node slope (the host list's transfer term is negligible).
  EXPECT_NEAR(at128 / at64, 2.0, 0.01);
  EXPECT_NEAR(at256 / at64, 4.0, 0.01);
  // And the slope is the paper's ~0.24 s per target.
  EXPECT_NEAR(at64 / 64.0, 0.237, 0.02);
}

TEST(PerStrategyModel, TreeRshIsDepthDominated) {
  const cluster::CostModel costs = session_only_costs();
  PerfModel m(costs, 32);
  const double s = sim::to_seconds(costs.rsh_session_cost);
  const std::uint32_t k = 8;
  // At n = k^d the critical path is ~depth levels of k serialized
  // sessions: O(k log_k n), far below serial's O(n).
  for (int d : {1, 2, 3}) {
    double n = 1;
    for (int i = 0; i < d; ++i) n *= k;
    const double t = m.predict(kTree, kary(k), static_cast<int>(n), 1)
                         .t_daemon;
    EXPECT_GE(t, 0.5 * d * k * s) << "n=" << n;
    EXPECT_LE(t, 2.0 * d * k * s) << "n=" << n;
  }
  // Doubling depth adds ~one level, not ~k x the cost: strongly sublinear.
  const double t64 = m.predict(kTree, kary(k), 64, 1).t_daemon;
  const double t512 = m.predict(kTree, kary(k), 512, 1).t_daemon;
  EXPECT_LT(t512 / t64, 2.0);
  // While serial grows 8x over the same span.
  const double s64 = m.predict(kSerial, kary(k), 64, 1).t_daemon;
  const double s512 = m.predict(kSerial, kary(k), 512, 1).t_daemon;
  EXPECT_NEAR(s512 / s64, 8.0, 0.01);
}

TEST(PerStrategyModel, RmBulkIsFlattest) {
  const cluster::CostModel costs;
  PerfModel m(costs, 32);
  // Per-added-node cost: the RM's bookkeeping is ~1000x cheaper than one
  // rsh session, which is what makes Figure 4's rm-bulk curve look flat.
  const double rm_slope = (m.predict(kRm, kary(0), 1024, 1).t_daemon -
                           m.predict(kRm, kary(0), 64, 1).t_daemon) /
                          960.0;
  const double serial_slope = (m.predict(kSerial, kary(0), 256, 1).t_daemon -
                               m.predict(kSerial, kary(0), 64, 1).t_daemon) /
                              192.0;
  EXPECT_LT(rm_slope, 0.005);
  EXPECT_NEAR(serial_slope, 0.237, 0.02);
  EXPECT_LT(rm_slope * 40.0, serial_slope);
  // Totals: rm-bulk beats tree-rsh by ~an order of magnitude at 512.
  EXPECT_LT(m.predict(kRm, kary(8), 512, 1).total() * 2.0,
            m.predict(kTree, kary(8), 512, 1).total());
}

TEST(PerStrategyModel, CrossoverMatchesAnalyticRootOnSyntheticConstants) {
  // With only the session constant S alive, serial costs n*S total while
  // the tree (k=2) costs 2S at n=2,3 (two root chunks, depth folded into
  // the idle first chunk): the analytic crossover is n=3, where 2S < 3S
  // first holds strictly.
  const cluster::CostModel costs = session_only_costs();
  PerfModel m(costs, 2);
  const auto tree_over_serial = m.crossover(kTree, kSerial, kary(2), 1, 512);
  ASSERT_TRUE(tree_over_serial.has_value());
  EXPECT_NEAR(*tree_over_serial, 3, 1);
  // rm-bulk costs zero here, so it wins as soon as serial pays anything.
  const auto rm_over_serial = m.crossover(kRm, kSerial, kary(2), 1, 512);
  ASSERT_TRUE(rm_over_serial.has_value());
  EXPECT_EQ(*rm_over_serial, 2);
  const auto rm_over_tree = m.crossover(kRm, kTree, kary(2), 1, 512);
  ASSERT_TRUE(rm_over_tree.has_value());
  EXPECT_EQ(*rm_over_tree, 2);
}

TEST(PerStrategyModel, CrossoverNeverReachedIsNullopt) {
  const cluster::CostModel costs = session_only_costs();
  PerfModel m(costs, 2);
  // Serial never overtakes the tree.
  EXPECT_FALSE(m.crossover(kSerial, kTree, kary(2), 1, 256).has_value());
}

TEST(PerStrategyModel, FabricClosedFormsMatchCommTopology) {
  // The model's O(1)/O(n) closed forms must mirror the authoritative tree
  // shapes in comm/topology.cpp; if a shape changes there, this is the
  // tripwire that keeps the model honest.
  const std::vector<comm::TopologySpec> specs = {
      kary(1), kary(2), kary(3), kary(8), kary(32),
      comm::TopologySpec{comm::TopologyKind::Binomial, 0},
      comm::TopologySpec{comm::TopologyKind::Flat, 0}};
  std::vector<int> sizes;
  for (int n = 1; n <= 66; ++n) sizes.push_back(n);
  sizes.insert(sizes.end(), {100, 257, 512, 1000, 1024, 1025});
  for (const auto& spec : specs) {
    for (int n : sizes) {
      const comm::Topology topo(spec, static_cast<std::uint32_t>(n));
      EXPECT_EQ(PerfModel::fabric_depth(spec, n),
                static_cast<int>(topo.depth()))
          << spec.to_string() << " n=" << n;

      // Reference pipelined-quanta DP straight off Topology::children_of
      // (children always outrank their parent, so ascending rank order is
      // a valid schedule order).
      std::vector<double> arrival(static_cast<std::size_t>(n), 0.0);
      double worst = 0.0;
      for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(n); ++r) {
        const auto children = topo.children_of(r);
        for (std::size_t i = 0; i < children.size(); ++i) {
          arrival[children[i]] = arrival[r] + static_cast<double>(i + 1);
          worst = std::max(worst, arrival[children[i]]);
        }
      }
      EXPECT_DOUBLE_EQ(PerfModel::fabric_pipeline_quanta(spec, n), worst)
          << spec.to_string() << " n=" << n;
    }
  }
}

// --- collective protocol family (eager vs rendezvous) ------------------------

constexpr auto kEager = core::CollectiveProtocol::Eager;
constexpr auto kRndv = core::CollectiveProtocol::Rendezvous;

const std::vector<comm::TopologySpec> kCollectiveFabrics = {
    kary(2), kary(8),
    comm::TopologySpec{comm::TopologyKind::Binomial, 0},
    comm::TopologySpec{comm::TopologyKind::Flat, 0}};

TEST(CollectiveModel, EagerGrowsWithPayloadAndDegenerateCasesAreFree) {
  const cluster::CostModel costs = cluster::CostModel{}.deterministic();
  PerfModel m(costs, 32);
  EXPECT_EQ(m.collective_bcast(kEager, kary(2), 1, 1 << 20), 0.0);
  EXPECT_EQ(m.collective_bcast(kRndv, kary(2), 1, 1 << 20), 0.0);
  for (const auto& spec : kCollectiveFabrics) {
    double prev = 0.0;
    for (std::size_t s : {1u << 10, 64u << 10, 1u << 20, 4u << 20}) {
      const double t = m.collective_bcast(kEager, spec, 32, s);
      EXPECT_GT(t, prev) << spec.to_string() << " payload " << s;
      prev = t;
    }
  }
}

TEST(CollectiveModel, RendezvousWinsLargePayloadsOnEveryFabric) {
  const cluster::CostModel costs = cluster::CostModel{}.deterministic();
  PerfModel m(costs, 32);
  for (const auto& spec : kCollectiveFabrics) {
    const double eager = m.collective_bcast(kEager, spec, 32, 4u << 20);
    const double rndv = m.collective_bcast(kRndv, spec, 32, 4u << 20);
    EXPECT_LT(rndv, eager) << spec.to_string();
  }
}

TEST(CollectiveModel, EagerWinsSmallPayloadsOnEveryFabric) {
  // The RTS/CTS round trip plus per-chunk overheads must not pay off for a
  // payload the eager path ships in one cheap frame.
  const cluster::CostModel costs = cluster::CostModel{}.deterministic();
  PerfModel m(costs, 32);
  for (const auto& spec : kCollectiveFabrics) {
    const double eager = m.collective_bcast(kEager, spec, 32, 1u << 10);
    const double rndv = m.collective_bcast(kRndv, spec, 32, 1u << 10);
    EXPECT_LT(eager, rndv) << spec.to_string();
  }
}

TEST(CollectiveModel, CrossoverSeparatesTheRegimes) {
  const cluster::CostModel costs = cluster::CostModel{}.deterministic();
  PerfModel m(costs, 32);
  for (const auto& spec : kCollectiveFabrics) {
    const auto cross = m.collective_crossover(spec, 32, 16u << 20);
    ASSERT_TRUE(cross.has_value()) << spec.to_string();
    // Rendezvous stays cheaper from the crossover on (probe a few points).
    for (double mult : {1.1, 2.0, 8.0}) {
      const auto s = static_cast<std::size_t>(
          static_cast<double>(*cross) * mult);
      EXPECT_LT(m.collective_bcast(kRndv, spec, 32, s),
                m.collective_bcast(kEager, spec, 32, s))
          << spec.to_string() << " payload " << s;
    }
    // And eager won at the smallest modeled payload (the crossover is real).
    EXPECT_GT(*cross, 1024u) << spec.to_string();
  }
}

TEST(CollectiveModel, DeepTreesCrossOverBeforeFlatFanOut) {
  // Rendezvous' chunk pipeline pays off per level, so the deep binary tree
  // switches at a smaller payload than the serialization-bound flat tree.
  const cluster::CostModel costs = cluster::CostModel{}.deterministic();
  PerfModel m(costs, 32);
  const auto deep = m.collective_crossover(kary(2), 32);
  const auto flat = m.collective_crossover(
      comm::TopologySpec{comm::TopologyKind::Flat, 0}, 32);
  ASSERT_TRUE(deep.has_value());
  ASSERT_TRUE(flat.has_value());
  EXPECT_LT(*deep, *flat);
}

TEST(CollectiveModel, TracksSimulatedBroadcastWithinTolerance) {
  // Same jitter-free harness as bench_ablation_iccl: every (protocol,
  // payload) point of a toy sweep must match the closed form tightly.
  const cluster::CostModel costs = cluster::CostModel{}.deterministic();
  PerfModel m(costs, static_cast<std::uint32_t>(costs.rm_launch_fanout));
  const comm::TopologySpec spec = kary(2);
  const std::vector<std::size_t> payloads = {4u << 10, 1u << 20};
  const auto eager = bench::measure_bcast_sweep(
      spec, 8, std::numeric_limits<std::uint32_t>::max(), payloads);
  const auto rndv = bench::measure_bcast_sweep(spec, 8, 1, payloads);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    ASSERT_GT(eager[i], 0.0);
    ASSERT_GT(rndv[i], 0.0);
    EXPECT_NEAR(m.collective_bcast(kEager, spec, 8, payloads[i]) / eager[i],
                1.0, 0.02)
        << "eager payload " << payloads[i];
    EXPECT_NEAR(m.collective_bcast(kRndv, spec, 8, payloads[i]) / rndv[i],
                1.0, 0.02)
        << "rendezvous payload " << payloads[i];
  }
}

TEST(PerStrategyModel, PredictsFailureAtTheForkLimit) {
  const cluster::CostModel costs;
  PerfModel m(costs, 32);
  EXPECT_FALSE(m.predicts_failure(kSerial, costs.rsh_fork_limit));
  EXPECT_TRUE(m.predicts_failure(kSerial, costs.rsh_fork_limit + 1));
  EXPECT_TRUE(m.predicts_failure(kSerial, 512));
  EXPECT_FALSE(m.predicts_failure(kSerial, 256));
  for (int n : {256, 512, 4096}) {
    EXPECT_FALSE(m.predicts_failure(kTree, n));
    EXPECT_FALSE(m.predicts_failure(kRm, n));
  }
}

/// Per-strategy Figure 3/4 validation: every strategy's model tracks the
/// jitter-free simulated implementation tightly.
struct ValidationCase {
  comm::LaunchStrategyKind strategy;
  comm::TopologySpec fabric;
  int nodes;
};

class PerStrategyValidation
    : public ::testing::TestWithParam<ValidationCase> {};

TEST_P(PerStrategyValidation, TracksSimulationWithinTolerance) {
  const auto [strategy, fabric, nodes] = GetParam();
  const int tpn = 2;
  // Same jitter-free harness as bench_ablation_rsh: the model validates
  // against the identical measurement protocol the bench gates on.
  const double measured =
      bench::measure_launch_and_spawn(strategy, fabric, nodes, tpn);
  ASSERT_GT(measured, 0.0) << comm::to_string(strategy);

  const cluster::CostModel costs = cluster::CostModel{}.deterministic();
  const PerfModel model(costs,
                        static_cast<std::uint32_t>(costs.rm_launch_fanout));
  const double predicted = model.predict(strategy, fabric, nodes, tpn).total();
  EXPECT_NEAR(predicted / measured, 1.0, 0.05)
      << comm::to_string(strategy) << " model " << predicted
      << "s vs measured " << measured << "s at " << nodes << " daemons";
}

INSTANTIATE_TEST_SUITE_P(
    Fig4Sweep, PerStrategyValidation,
    ::testing::Values(ValidationCase{kSerial, kary(0), 16},
                      ValidationCase{kSerial, kary(0), 48},
                      ValidationCase{kTree, kary(8), 16},
                      ValidationCase{kTree, kary(8), 64},
                      ValidationCase{kTree, kary(2), 32},
                      ValidationCase{kRm, kary(0), 64},
                      ValidationCase{kRm, kary(0), 128}),
    [](const ::testing::TestParamInfo<ValidationCase>& pinfo) {
      std::string name =
          std::string(comm::to_string(pinfo.param.strategy)) + "_" +
          pinfo.param.fabric.to_string() + "_n" +
          std::to_string(pinfo.param.nodes);
      for (char& c : name) {
        if (c == ':' || c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace lmon::core
