// Unit tests for the engine's event pipeline (paper §3.1's Driver /
// EventManager / EventDecoder decomposition) and the DPCL message layer.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "rm/apai.hpp"
#include "tools/dpcl/dpcl.hpp"

namespace lmon::core {
namespace {

TEST(EventDecoder, MpirBreakpointStopDecodesToJobStopped) {
  EventDecoder decoder;
  cluster::DebugEvent native;
  native.type = cluster::DebugEventType::Stopped;
  native.target = 42;
  native.symbol = rm::apai::kBreakpoint;
  EXPECT_EQ(decoder.decode(native).type,
            LmonEventType::JobStoppedAtBreakpoint);
}

TEST(EventDecoder, OtherStopsAreIgnored) {
  EventDecoder decoder;
  cluster::DebugEvent native;
  native.type = cluster::DebugEventType::Stopped;
  native.symbol = "some_other_symbol";
  EXPECT_EQ(decoder.decode(native).type, LmonEventType::Ignored);
}

TEST(EventDecoder, AttachAndExitMapDirectly) {
  EventDecoder decoder;
  cluster::DebugEvent attached;
  attached.type = cluster::DebugEventType::Attached;
  EXPECT_EQ(decoder.decode(attached).type, LmonEventType::AttachComplete);

  cluster::DebugEvent exited;
  exited.type = cluster::DebugEventType::Exited;
  exited.exit_code = 3;
  const LmonEvent ev = decoder.decode(exited);
  EXPECT_EQ(ev.type, LmonEventType::JobExited);
  EXPECT_EQ(ev.native.exit_code, 3);
}

TEST(EventManager, FifoQueue) {
  EventManager mgr;
  EXPECT_TRUE(mgr.empty());
  for (int i = 0; i < 5; ++i) {
    cluster::DebugEvent ev;
    ev.exit_code = i;
    mgr.push(ev);
  }
  for (int i = 0; i < 5; ++i) {
    ASSERT_FALSE(mgr.empty());
    EXPECT_EQ(mgr.pop().exit_code, i);
  }
  EXPECT_TRUE(mgr.empty());
}

}  // namespace
}  // namespace lmon::core

namespace lmon::tools::dpcl {
namespace {

TEST(DpclProtocol, RoundTrips) {
  {
    auto back = AttachParseReq::decode(AttachParseReq{123}.encode());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->pid, 123);
  }
  {
    AttachParseResp resp{true, "", 110.0};
    auto back = AttachParseResp::decode(resp.encode());
    ASSERT_TRUE(back.has_value());
    EXPECT_TRUE(back->ok);
    EXPECT_DOUBLE_EQ(back->parsed_mb, 110.0);
  }
  {
    auto back = ReadSymReq::decode(ReadSymReq{7, "MPIR_proctable"}.encode());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->symbol, "MPIR_proctable");
  }
  {
    ReadSymResp resp{true, "", Bytes{1, 2, 3}};
    auto back = ReadSymResp::decode(resp.encode());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->data, (Bytes{1, 2, 3}));
  }
  {
    auto back = InstrumentReq::decode(InstrumentReq{9}.encode());
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->pid, 9);
  }
}

TEST(DpclProtocol, CrossDecodeRejected) {
  auto msg = AttachParseReq{1}.encode();
  EXPECT_FALSE(ReadSymReq::decode(msg).has_value());
  EXPECT_FALSE(InstrumentResp::decode(msg).has_value());
}

}  // namespace
}  // namespace lmon::tools::dpcl
