// Tests for the §4 analytic model, including validation against the
// simulated implementation (the paper's Figure 3 comparison as an assertion).
#include <gtest/gtest.h>

#include <memory>

#include "core/fe_api.hpp"
#include "core/perf_model.hpp"
#include "tests/test_util.hpp"

namespace lmon::core {
namespace {

TEST(PerfModel, DepthMatchesTreeGeometry) {
  const cluster::CostModel costs;
  PerfModel m(costs, 32);
  EXPECT_EQ(m.depth(1), 0);
  EXPECT_EQ(m.depth(2), 1);
  EXPECT_EQ(m.depth(32), 1);
  EXPECT_EQ(m.depth(33), 2);
  EXPECT_EQ(m.depth(1024), 2);
  EXPECT_EQ(m.depth(1025), 3);
  PerfModel bin(costs, 2);
  EXPECT_EQ(bin.depth(8), 3);
  EXPECT_EQ(bin.depth(9), 4);
}

TEST(PerfModel, TotalsGrowMonotonically) {
  const cluster::CostModel costs;
  PerfModel m(costs, static_cast<std::uint32_t>(costs.rm_launch_fanout));
  double prev = 0;
  for (int n : {16, 32, 64, 128, 256, 512, 1024}) {
    const double total = m.predict(n, 8).total();
    EXPECT_GT(total, prev) << "at n=" << n;
    prev = total;
  }
}

TEST(PerfModel, ScaleIndependentTermsAreConstant) {
  const cluster::CostModel costs;
  PerfModel m(costs, 32);
  const auto small = m.predict(16, 8);
  const auto large = m.predict(1024, 8);
  EXPECT_DOUBLE_EQ(small.tracing, large.tracing);
  EXPECT_DOUBLE_EQ(small.other, large.other);
  // Paper: tracing 18 ms, other 12 ms (plus engine spawn/connect in ours).
  EXPECT_NEAR(small.tracing, 0.018, 1e-9);
  EXPECT_GT(small.other, 0.012);
}

TEST(PerfModel, LaunchmonShareShrinksWithScale) {
  const cluster::CostModel costs;
  PerfModel m(costs, 32);
  // The RM terms grow with n while LaunchMON's stay near-constant, so the
  // share falls - the paper's headline scalability claim.
  EXPECT_GT(m.predict(16, 8).launchmon_share(),
            m.predict(128, 8).launchmon_share());
  // And at 128 daemons it is in the paper's ~5% neighbourhood.
  EXPECT_LT(m.predict(128, 8).launchmon_share(), 0.10);
  EXPECT_GT(m.predict(128, 8).launchmon_share(), 0.02);
}

/// The Figure 3 validation: model vs simulated measurement within
/// tolerance across the paper's sweep.
class ModelValidation : public ::testing::TestWithParam<int> {};

TEST_P(ModelValidation, PredictsMeasuredTotalWithinTolerance) {
  const int ndaemons = GetParam();
  const int tpn = 8;

  lmon::testing::TestCluster tc(ndaemons);
  sim::Timeline timeline;
  tc.machine.set_timeline(&timeline);

  bool done = false;
  Status status;
  std::shared_ptr<FrontEnd> fe;
  tc.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<FrontEnd>(self);
    (void)fe->init();
    auto sid = fe->create_session();
    FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";
    rm::JobSpec job{ndaemons, tpn, "mpi_app", {}};
    fe->launch_and_spawn(sid.value, job, cfg, [&](Status st) {
      status = st;
      done = true;
    });
  });
  ASSERT_TRUE(tc.run_until([&] { return done; }));
  ASSERT_TRUE(status.is_ok()) << status.to_string();

  const double measured =
      sim::to_seconds(timeline.between("e0_fe_call", "e11_return"));
  const cluster::CostModel costs;
  PerfModel model(costs, static_cast<std::uint32_t>(costs.rm_launch_fanout));
  const double predicted = model.predict(ndaemons, tpn).total();

  EXPECT_NEAR(predicted / measured, 1.0, 0.25)
      << "model " << predicted << "s vs measured " << measured << "s at "
      << ndaemons << " daemons";
}

INSTANTIATE_TEST_SUITE_P(Fig3Sweep, ModelValidation,
                         ::testing::Values(16, 48, 96, 128, 256));

}  // namespace
}  // namespace lmon::core
