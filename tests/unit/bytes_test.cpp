// Unit + property tests for the wire serialization layer.
#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "simkernel/rng.hpp"

namespace lmon {
namespace {

TEST(Bytes, PrimitiveRoundTrip) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i32(-42);
  w.i64(-1234567890123LL);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);
  w.str("hello");
  w.blob(as_bytes("world"));

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i32(), -42);
  EXPECT_EQ(r.i64(), -1234567890123LL);
  EXPECT_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.boolean(), true);
  EXPECT_EQ(r.boolean(), false);
  EXPECT_EQ(r.str(), "hello");
  auto blob = r.blob();
  ASSERT_TRUE(blob.has_value());
  EXPECT_EQ(blob->size(), 5u);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.u32(0x04030201);
  const Bytes& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x01);
  EXPECT_EQ(b[1], 0x02);
  EXPECT_EQ(b[2], 0x03);
  EXPECT_EQ(b[3], 0x04);
}

TEST(Bytes, TruncatedReadsReturnNullopt) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.u16().has_value());
  EXPECT_FALSE(r.u16().has_value());
  EXPECT_FALSE(r.u32().has_value());
  EXPECT_FALSE(r.str().has_value());
}

TEST(Bytes, StringWithBogusLengthRejected) {
  ByteWriter w;
  w.u32(1000);  // claims 1000 bytes follow
  w.u8('x');
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.str().has_value());
}

TEST(Bytes, EmptyStringAndBlob) {
  ByteWriter w;
  w.str("");
  w.blob({});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  auto b = r.blob();
  ASSERT_TRUE(b.has_value());
  EXPECT_TRUE(b->empty());
}

TEST(Bytes, PatchU32) {
  ByteWriter w;
  w.u32(0);
  w.str("payload");
  w.patch_u32(0, 77);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u32(), 77u);
  EXPECT_EQ(r.str(), "payload");
}

TEST(Bytes, HexRoundTrip) {
  const Bytes data = {0x00, 0x01, 0xAB, 0xFF, 0x10};
  const std::string hex = to_hex(data);
  EXPECT_EQ(hex, "0001abff10");
  auto back = from_hex(hex);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

TEST(Bytes, HexRejectsMalformed) {
  EXPECT_FALSE(from_hex("abc").has_value());   // odd length
  EXPECT_FALSE(from_hex("zz").has_value());    // bad digit
  EXPECT_TRUE(from_hex("").has_value());       // empty is fine
}

// Property: random mixed-value sequences always round-trip.
class BytesPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BytesPropertyTest, RandomSequenceRoundTrips) {
  sim::Rng rng(GetParam());
  const int ops = 1 + static_cast<int>(rng.next_below(40));
  std::vector<int> kinds;
  std::vector<std::uint64_t> ints;
  std::vector<std::string> strs;

  ByteWriter w;
  for (int i = 0; i < ops; ++i) {
    const int kind = static_cast<int>(rng.next_below(4));
    kinds.push_back(kind);
    switch (kind) {
      case 0: {
        const std::uint64_t v = rng.next();
        ints.push_back(v);
        w.u64(v);
        break;
      }
      case 1: {
        const std::uint64_t v = rng.next_below(1 << 16);
        ints.push_back(v);
        w.u16(static_cast<std::uint16_t>(v));
        break;
      }
      case 2: {
        std::string s;
        const auto len = rng.next_below(64);
        for (std::uint64_t c = 0; c < len; ++c) {
          s.push_back(static_cast<char>('a' + rng.next_below(26)));
        }
        strs.push_back(s);
        w.str(s);
        break;
      }
      default: {
        const std::uint64_t v = rng.next_below(2);
        ints.push_back(v);
        w.boolean(v != 0);
        break;
      }
    }
  }

  ByteReader r(w.bytes());
  std::size_t int_idx = 0;
  std::size_t str_idx = 0;
  for (int kind : kinds) {
    switch (kind) {
      case 0:
        EXPECT_EQ(r.u64(), ints[int_idx++]);
        break;
      case 1:
        EXPECT_EQ(r.u16(), static_cast<std::uint16_t>(ints[int_idx++]));
        break;
      case 2:
        EXPECT_EQ(r.str(), strs[str_idx++]);
        break;
      default:
        EXPECT_EQ(r.boolean(), ints[int_idx++] != 0);
        break;
    }
  }
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BytesPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 25));

// Property: hex always round-trips random blobs.
class HexPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HexPropertyTest, RandomBlobRoundTrips) {
  sim::Rng rng(GetParam() * 977 + 3);
  Bytes data;
  const auto len = rng.next_below(256);
  for (std::uint64_t i = 0; i < len; ++i) {
    data.push_back(static_cast<std::uint8_t>(rng.next_below(256)));
  }
  auto back = from_hex(to_hex(data));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, data);
}

INSTANTIATE_TEST_SUITE_P(Seeds, HexPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace lmon
