// Unit tests for the RM control protocol encode/decode layer.
#include <gtest/gtest.h>

#include "rm/protocol.hpp"
#include "simkernel/rng.hpp"

namespace lmon::rm {
namespace {

TEST(RmProtocol, PeekTypeIdentifiesFrames) {
  EXPECT_EQ(peek_type(AllocReq{4, false}.encode()), MsgType::AllocReq);
  EXPECT_EQ(peek_type(JobInfoReq{7}.encode()), MsgType::JobInfoReq);
  EXPECT_EQ(peek_type(KillDaemons{}.encode()), MsgType::KillDaemons);
  cluster::Message junk;
  junk.bytes = {0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_FALSE(peek_type(junk).has_value());
  cluster::Message empty;
  EXPECT_FALSE(peek_type(empty).has_value());
}

TEST(RmProtocol, AllocRoundTrip) {
  AllocReq req{16, true};
  auto back = AllocReq::decode(req.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->nnodes, 16u);
  EXPECT_TRUE(back->middleware);

  AllocResp resp;
  resp.ok = true;
  resp.jobid = 42;
  resp.nodes = {{"atlas1", 0}, {"atlas2", 1}};
  auto resp_back = AllocResp::decode(resp.encode());
  ASSERT_TRUE(resp_back.has_value());
  EXPECT_TRUE(resp_back->ok);
  EXPECT_EQ(resp_back->jobid, 42u);
  ASSERT_EQ(resp_back->nodes.size(), 2u);
  EXPECT_EQ(resp_back->nodes[1].host, "atlas2");
  EXPECT_EQ(resp_back->nodes[1].index, 1u);
}

TEST(RmProtocol, TreeLaunchReqRoundTrip) {
  TreeLaunchReq req;
  req.jobid = 9;
  req.seq = 77;
  req.mode = LaunchMode::Daemons;
  req.executable = "stat_be";
  req.extra_args = {"--a=1", "--b=two"};
  req.tasks_per_node = 8;
  req.nodes = {{"atlas3", 2}, {"atlas4", 3}};
  req.all_hosts = {"atlas1", "atlas2", "atlas3", "atlas4"};
  req.fabric = FabricSpec{7100,   32,     4,    "atlas-fe",
                          7050,   "s0p1", comm::TopologyKind::Binomial,
                          524288, "thunder"};

  auto back = TreeLaunchReq::decode(req.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->jobid, 9u);
  EXPECT_EQ(back->seq, 77u);
  EXPECT_EQ(back->mode, LaunchMode::Daemons);
  EXPECT_EQ(back->executable, "stat_be");
  EXPECT_EQ(back->extra_args, req.extra_args);
  EXPECT_EQ(back->tasks_per_node, 8u);
  ASSERT_EQ(back->nodes.size(), 2u);
  EXPECT_EQ(back->nodes[0].host, "atlas3");
  EXPECT_EQ(back->all_hosts, req.all_hosts);
  EXPECT_EQ(back->fabric.port, 7100);
  EXPECT_EQ(back->fabric.fanout, 32u);
  EXPECT_EQ(back->fabric.total, 4u);
  EXPECT_EQ(back->fabric.fe_host, "atlas-fe");
  EXPECT_EQ(back->fabric.fe_port, 7050);
  EXPECT_EQ(back->fabric.session, "s0p1");
  EXPECT_EQ(back->fabric.topo_kind, comm::TopologyKind::Binomial);
  EXPECT_EQ(back->fabric.rndv_threshold, 524288u);
  EXPECT_EQ(back->fabric.platform, "thunder");
}

TEST(RmProtocol, TreeLaunchAckRoundTrip) {
  TreeLaunchAck ack;
  ack.seq = 5;
  ack.ok = false;
  ack.error = "spawn failed on atlas9";
  ack.entries = {{"atlas9", "stat_be", 555, 8}};
  auto back = TreeLaunchAck::decode(ack.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->seq, 5u);
  EXPECT_FALSE(back->ok);
  EXPECT_EQ(back->error, "spawn failed on atlas9");
  ASSERT_EQ(back->entries.size(), 1u);
  EXPECT_EQ(back->entries[0], ack.entries[0]);
}

TEST(RmProtocol, KillRoundTrips) {
  TreeKillReq req;
  req.jobid = 3;
  req.seq = 11;
  req.mode = LaunchMode::Daemons;
  req.session = "s2p9";
  req.nodes = {{"atlas1", 0}};
  auto back = TreeKillReq::decode(req.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->session, "s2p9");

  TreeKillAck ack{11, true, 16};
  auto aback = TreeKillAck::decode(ack.encode());
  ASSERT_TRUE(aback.has_value());
  EXPECT_EQ(aback->killed, 16u);
}

TEST(RmProtocol, LaunchDoneRoundTrip) {
  LaunchDone done;
  done.ok = true;
  done.jobid = 12;
  done.daemons = {{"atlas1", "jobsnap_be", 700, 0},
                  {"atlas2", "jobsnap_be", 701, 1}};
  auto back = LaunchDone::decode(done.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->ok);
  EXPECT_EQ(back->jobid, 12u);
  EXPECT_EQ(back->daemons, done.daemons);
}

TEST(RmProtocol, CrossDecodeRejected) {
  // Decoding a frame as a different message type must fail cleanly.
  auto msg = AllocReq{4, false}.encode();
  EXPECT_FALSE(JobInfoReq::decode(msg).has_value());
  EXPECT_FALSE(TreeLaunchReq::decode(msg).has_value());
  EXPECT_FALSE(LaunchDone::decode(msg).has_value());
}

// Property: decoding random byte soup never crashes and mostly fails.
class RmFuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RmFuzzTest, RandomBytesDecodeSafely) {
  sim::Rng rng(GetParam() * 911 + 1);
  cluster::Message m;
  m.bytes.resize(rng.next_below(128));
  for (auto& b : m.bytes) b = static_cast<std::uint8_t>(rng.next_below(256));
  // None of these may crash; results are simply optional.
  (void)AllocReq::decode(m);
  (void)AllocResp::decode(m);
  (void)JobInfoReq::decode(m);
  (void)JobInfoResp::decode(m);
  (void)TreeLaunchReq::decode(m);
  (void)TreeLaunchAck::decode(m);
  (void)TreeKillReq::decode(m);
  (void)TreeKillAck::decode(m);
  (void)LaunchDone::decode(m);
  (void)peek_type(m);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RmFuzzTest,
                         ::testing::Range<std::uint64_t>(0, 50));

}  // namespace
}  // namespace lmon::rm
