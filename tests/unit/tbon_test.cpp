// Unit tests for TBON topology, packets and filters.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "simkernel/rng.hpp"
#include "tbon/endpoint.hpp"
#include "tbon/filter.hpp"
#include "tbon/packet.hpp"
#include "tbon/topology.hpp"
#include "tools/jobsnap/jobsnap_tbon.hpp"
#include "tools/stat/stat_be.hpp"

namespace lmon::tbon {
namespace {

std::vector<std::string> hosts(int n, const std::string& prefix = "n") {
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) out.push_back(prefix + std::to_string(i));
  return out;
}

TEST(Topology, OneDeepShape) {
  Topology t = Topology::one_deep("fe", 8300, hosts(5));
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.num_backends(), 5);
  EXPECT_EQ(t.num_comm_nodes(), 0);
  EXPECT_EQ(t.depth(), 1);
  EXPECT_EQ(t.children_of(0).size(), 5u);
  for (int rank = 0; rank < 5; ++rank) {
    const int idx = t.index_of_backend(rank);
    ASSERT_GE(idx, 0);
    EXPECT_EQ(t.nodes()[static_cast<std::size_t>(idx)].parent, 0);
  }
}

TEST(Topology, BalancedShape) {
  Topology t = Topology::balanced("fe", 8300, hosts(3, "c"), hosts(12, "b"),
                                  2, 8301);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.num_backends(), 12);
  EXPECT_EQ(t.num_comm_nodes(), 3);
  EXPECT_GE(t.depth(), 2);
  // Back ends are distributed over the deepest comm layer.
  for (const auto& n : t.nodes()) {
    if (n.is_backend) {
      EXPECT_FALSE(
          t.nodes()[static_cast<std::size_t>(n.parent)].is_backend);
    }
  }
}

TEST(Topology, BalancedWithoutCommNodesDegeneratesToOneDeep) {
  Topology t = Topology::balanced("fe", 8300, {}, hosts(4), 2, 8301);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.depth(), 1);
  EXPECT_EQ(t.num_comm_nodes(), 0);
}

/// BE ranks attached to each comm-layer attach point, in node-index order.
std::vector<std::vector<int>> be_ranges_by_parent(const Topology& t) {
  std::map<int, std::vector<int>> by_parent;
  for (const auto& n : t.nodes()) {
    if (n.is_backend) by_parent[n.parent].push_back(n.be_rank);
  }
  std::vector<std::vector<int>> out;
  for (auto& [parent, ranks] : by_parent) out.push_back(std::move(ranks));
  return out;
}

TEST(Topology, ShapedAttachesBackEndsInContiguousBlocks) {
  // Each leaf comm daemon owns one contiguous, near-equal slice of the BE
  // rank range (the old round-robin layout strided consecutive ranks
  // across every leaf daemon).
  Topology t = Topology::shaped("fe", 8300, hosts(3, "c"), hosts(14, "b"),
                                {comm::TopologyKind::KAry, 2}, 8301);
  ASSERT_TRUE(t.valid());
  const auto ranges = be_ranges_by_parent(t);
  ASSERT_EQ(ranges.size(), 2u);  // comm ranks 1 and 2 are the leaves
  int expected_next = 0;
  std::size_t largest = 0;
  std::size_t smallest = 14;
  for (const auto& ranks : ranges) {
    for (std::size_t i = 0; i < ranks.size(); ++i) {
      EXPECT_EQ(ranks[i], expected_next) << "non-contiguous block";
      expected_next += 1;
    }
    largest = std::max(largest, ranks.size());
    smallest = std::min(smallest, ranks.size());
  }
  EXPECT_EQ(expected_next, 14);
  EXPECT_LE(largest - smallest, 1u);  // near-equal split
}

TEST(Topology, ShapedCommSubtreesOwnContiguousRankIntervals) {
  // Every comm subtree must cover one contiguous BE rank interval - the
  // property that keeps scatter partitions and rank-range filters
  // subtree-local. Checked across all three tree families.
  const std::vector<comm::TopologySpec> specs = {
      {comm::TopologyKind::KAry, 2},
      {comm::TopologyKind::KAry, 3},
      {comm::TopologyKind::Binomial, 0},
      {comm::TopologyKind::Flat, 0}};
  for (const auto& spec : specs) {
    Topology t = Topology::shaped("fe", 8300, hosts(7, "c"), hosts(29, "b"),
                                  spec, 8301);
    ASSERT_TRUE(t.valid()) << spec.to_string();
    for (std::size_t i = 1; i < t.nodes().size(); ++i) {
      if (t.nodes()[i].is_backend) continue;
      // Collect the BE ranks below comm node i.
      std::vector<int> ranks;
      std::vector<int> frontier{static_cast<int>(i)};
      while (!frontier.empty()) {
        const int cur = frontier.back();
        frontier.pop_back();
        for (int c : t.children_of(cur)) {
          if (t.nodes()[static_cast<std::size_t>(c)].is_backend) {
            ranks.push_back(t.nodes()[static_cast<std::size_t>(c)].be_rank);
          } else {
            frontier.push_back(c);
          }
        }
      }
      std::sort(ranks.begin(), ranks.end());
      for (std::size_t k = 1; k < ranks.size(); ++k) {
        EXPECT_EQ(ranks[k], ranks[k - 1] + 1)
            << spec.to_string() << " comm node " << i
            << " owns a non-contiguous rank set";
      }
    }
  }
}

TEST(Topology, ShapedBlockPlacementHandlesFewerBackEndsThanLeaves) {
  Topology t = Topology::shaped("fe", 8300, hosts(6, "c"), hosts(2, "b"),
                                {comm::TopologyKind::Flat, 0}, 8301);
  ASSERT_TRUE(t.valid());
  EXPECT_EQ(t.num_backends(), 2);
  // index_of_backend stays total even with idle leaf daemons.
  EXPECT_GE(t.index_of_backend(0), 0);
  EXPECT_GE(t.index_of_backend(1), 0);
}

TEST(Topology, ShapedHonorsAttachWeights) {
  // kary:2 over 3 comm daemons -> leaves are comm ranks 1 and 2; weights
  // 3:1 over 12 back ends give them 9 and 3.
  Topology t = Topology::shaped("fe", 8300, hosts(3, "c"), hosts(12, "b"),
                                {comm::TopologyKind::KAry, 2}, 8301,
                                {3.0, 1.0});
  ASSERT_TRUE(t.valid());
  const auto ranges = be_ranges_by_parent(t);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0].size(), 9u);
  EXPECT_EQ(ranges[1].size(), 3u);
  // Blocks stay contiguous and in rank order.
  EXPECT_EQ(ranges[0].front(), 0);
  EXPECT_EQ(ranges[0].back(), 8);
  EXPECT_EQ(ranges[1].front(), 9);
  // A weight vector that doesn't match the attach-point count is ignored
  // (near-equal fallback), not misapplied.
  Topology fallback = Topology::shaped(
      "fe", 8300, hosts(3, "c"), hosts(12, "b"),
      {comm::TopologyKind::KAry, 2}, 8301, {1.0, 2.0, 3.0});
  const auto fb = be_ranges_by_parent(fallback);
  ASSERT_EQ(fb.size(), 2u);
  EXPECT_EQ(fb[0].size(), 6u);
  EXPECT_EQ(fb[1].size(), 6u);
}

TEST(Topology, ShapedColocatedPlacesDaemonsOnTheirSubtreesFirstHost) {
  const std::vector<comm::TopologySpec> specs = {
      {comm::TopologyKind::KAry, 2},
      {comm::TopologyKind::KAry, 3},
      {comm::TopologyKind::Binomial, 0},
      {comm::TopologyKind::Flat, 0}};
  for (const auto& spec : specs) {
    Topology t = Topology::shaped_colocated("fe", 8300, 5, hosts(17, "b"),
                                            spec, 8301);
    ASSERT_TRUE(t.valid()) << spec.to_string();
    EXPECT_EQ(t.num_backends(), 17);
    EXPECT_EQ(t.num_comm_nodes(), 5);
    // Every comm daemon sits on the host of the lowest-rank back end in
    // its subtree (node-local first hop, no dedicated middleware hosts).
    for (std::size_t i = 1; i < t.nodes().size(); ++i) {
      if (t.nodes()[i].is_backend) continue;
      std::vector<int> ranks;
      std::vector<int> frontier{static_cast<int>(i)};
      while (!frontier.empty()) {
        const int cur = frontier.back();
        frontier.pop_back();
        for (int c : t.children_of(cur)) {
          if (t.nodes()[static_cast<std::size_t>(c)].is_backend) {
            ranks.push_back(t.nodes()[static_cast<std::size_t>(c)].be_rank);
          } else {
            frontier.push_back(c);
          }
        }
      }
      ASSERT_FALSE(ranks.empty()) << spec.to_string() << " comm " << i;
      const int first = *std::min_element(ranks.begin(), ranks.end());
      const int be_index = t.index_of_backend(first);
      ASSERT_GE(be_index, 0);
      EXPECT_EQ(t.nodes()[i].host,
                t.nodes()[static_cast<std::size_t>(be_index)].host)
          << spec.to_string() << " comm " << i;
    }
    // Co-located listeners on a shared host must not collide on a port.
    std::set<std::pair<std::string, int>> listeners;
    for (const auto& n : t.nodes()) {
      if (n.port == 0) continue;
      EXPECT_TRUE(listeners.insert({n.host, n.port}).second)
          << spec.to_string() << " duplicate listener " << n.host << ":"
          << n.port;
    }
  }
}

TEST(Topology, ShapedColocatedHonorsWeightsAndDegenerateInputs) {
  // kary:2 over 3 comm daemons -> leaves are ranks 1 and 2; weights 3:1
  // over 8 back ends give them blocks of 6 and 2.
  Topology t = Topology::shaped_colocated("fe", 8300, 3, hosts(8, "b"),
                                          {comm::TopologyKind::KAry, 2},
                                          8301, {3.0, 1.0});
  ASSERT_TRUE(t.valid());
  const auto ranges = be_ranges_by_parent(t);
  ASSERT_EQ(ranges.size(), 2u);
  EXPECT_EQ(ranges[0].size(), 6u);
  EXPECT_EQ(ranges[1].size(), 2u);
  // Zero comm daemons degenerates to the 1-deep attachment.
  Topology flat = Topology::shaped_colocated(
      "fe", 8300, 0, hosts(4, "b"), {comm::TopologyKind::KAry, 2}, 8301);
  ASSERT_TRUE(flat.valid());
  EXPECT_EQ(flat.num_comm_nodes(), 0);
  EXPECT_EQ(flat.depth(), 1);
}

/// Builds a topology with the *old* round-robin BE attachment by packing
/// the wire form directly (Topology::unpack is the only public way to
/// construct an arbitrary layout - deliberately, but it keeps this
/// regression honest: nothing downstream may assume contiguity).
Topology round_robin_topology(int ncomm_leaves, int nbe) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(1 + ncomm_leaves + nbe));
  w.str("fe");
  w.u16(8300);
  w.i32(-1);
  w.boolean(false);
  w.i32(-1);
  for (int c = 0; c < ncomm_leaves; ++c) {
    w.str("c" + std::to_string(c));
    w.u16(8301);
    w.i32(0);
    w.boolean(false);
    w.i32(-1);
  }
  for (int b = 0; b < nbe; ++b) {
    w.str("b" + std::to_string(b));
    w.u16(0);
    w.i32(1 + b % ncomm_leaves);  // the old striding
    w.boolean(true);
    w.i32(b);
  }
  auto t = Topology::unpack(std::move(w).take());
  EXPECT_TRUE(t.has_value());
  return *t;
}

TEST(Topology, RoundRobinPlacementStillValidatesAndResolvesRanks) {
  Topology t = round_robin_topology(3, 10);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.num_backends(), 10);
  EXPECT_EQ(t.num_comm_nodes(), 3);
  std::set<int> indices;
  for (int r = 0; r < 10; ++r) {
    const int idx = t.index_of_backend(r);
    ASSERT_GE(idx, 0);
    EXPECT_TRUE(indices.insert(idx).second);
  }
  // And it is genuinely non-contiguous: comm leaf 1 holds ranks 0,3,6,9.
  const auto children = t.children_of(1);
  std::vector<int> ranks;
  for (int c : children) {
    ranks.push_back(t.nodes()[static_cast<std::size_t>(c)].be_rank);
  }
  EXPECT_EQ(ranks, (std::vector<int>{0, 3, 6, 9}));
}

TEST(Topology, PackUnpackRoundTrip) {
  Topology t = Topology::balanced("fe", 8300, hosts(7, "c"), hosts(31, "b"),
                                  3, 8301);
  auto back = Topology::unpack(t.pack());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, t);
  EXPECT_TRUE(back->valid());
}

TEST(Topology, ValidationCatchesCorruption) {
  Topology t = Topology::one_deep("fe", 8300, hosts(3));
  auto packed = t.pack();
  auto mutated = Topology::unpack(packed);
  ASSERT_TRUE(mutated.has_value());
  // An empty topology and self-parent loops are invalid.
  EXPECT_FALSE(Topology().valid());
  EXPECT_FALSE(Topology::unpack(Bytes{9, 9}).has_value());
}

TEST(Topology, SubtreeHasBackend) {
  Topology t = Topology::balanced("fe", 8300, hosts(2, "c"), hosts(4, "b"),
                                  2, 8301);
  EXPECT_TRUE(subtree_has_backend(t, 0));
  for (int i = 1; i <= t.num_comm_nodes(); ++i) {
    // In this balanced layout every comm node leads to back ends.
    EXPECT_TRUE(subtree_has_backend(t, i));
  }
}

TEST(Packet, RoundTrip) {
  Packet p;
  p.kind = PacketKind::Up;
  p.stream = 3;
  p.tag = 99;
  p.node_index = 17;
  p.ranks = {0, 5, 9};
  p.data = Bytes{1, 2, 3};
  auto back = Packet::decode(p.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, PacketKind::Up);
  EXPECT_EQ(back->stream, 3u);
  EXPECT_EQ(back->tag, 99u);
  EXPECT_EQ(back->node_index, 17);
  EXPECT_EQ(back->ranks, p.ranks);
  EXPECT_EQ(back->data, p.data);
}

TEST(Filter, ConcatFlattensNestedFrames) {
  const Bytes a = wrap_leaf_payload(Bytes{1});
  const Bytes b = wrap_leaf_payload(Bytes{2, 2});
  const Bytes ab = concat_payloads({a, b});
  const Bytes c = wrap_leaf_payload(Bytes{3, 3, 3});
  const Bytes all = concat_payloads({ab, c});
  auto parts = split_concat(all);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], Bytes{1});
  EXPECT_EQ(parts[1], (Bytes{2, 2}));
  EXPECT_EQ(parts[2], (Bytes{3, 3, 3}));
}

TEST(Filter, SumU64Elementwise) {
  ByteWriter a;
  a.u64(1);
  a.u64(10);
  ByteWriter b;
  b.u64(2);
  b.u64(20);
  const Bytes out = FilterRegistry::instance().apply(
      kFilterSumU64, {a.bytes(), b.bytes()});
  ByteReader r(out);
  EXPECT_EQ(r.u64(), 3u);
  EXPECT_EQ(r.u64(), 30u);
}

TEST(Filter, MaxU64Elementwise) {
  ByteWriter a;
  a.u64(7);
  ByteWriter b;
  b.u64(3);
  const Bytes out = FilterRegistry::instance().apply(
      kFilterMaxU64, {a.bytes(), b.bytes()});
  ByteReader r(out);
  EXPECT_EQ(r.u64(), 7u);
}

TEST(Filter, UnknownIdFallsBackToConcat) {
  const Bytes a = wrap_leaf_payload(Bytes{5});
  const Bytes out = FilterRegistry::instance().apply(424242, {a});
  EXPECT_EQ(split_concat(out).size(), 1u);
}

/// The incremental UpPart fold (TbonEndpoint::fold_into_round): first part
/// applied alone, every later part folded pairwise into the accumulator.
/// For every filter the tree uses this must be byte-identical to the
/// all-at-once apply, or streamed and unstreamed rounds would diverge.
Bytes left_fold(std::uint32_t id, const std::vector<Bytes>& inputs) {
  const FilterRegistry& reg = FilterRegistry::instance();
  Bytes acc = reg.apply(id, {inputs.front()});
  for (std::size_t i = 1; i < inputs.size(); ++i) {
    acc = reg.apply(id, {acc, inputs[i]});
  }
  return acc;
}

TEST(Filter, BuiltinFoldsMatchAllAtOnceApplyByteForByte) {
  const FilterRegistry& reg = FilterRegistry::instance();
  const std::vector<Bytes> frames = {
      wrap_leaf_payload(Bytes{1}), wrap_leaf_payload(Bytes{2, 2}),
      wrap_leaf_payload(Bytes{3, 3, 3}), wrap_leaf_payload(Bytes{4})};
  EXPECT_EQ(left_fold(kFilterConcat, frames),
            reg.apply(kFilterConcat, frames));

  std::vector<Bytes> vecs;
  for (std::uint64_t seed : {3u, 7u, 11u}) {
    ByteWriter w;
    w.u64(seed);
    w.u64(seed * 1000);
    vecs.push_back(w.bytes());
  }
  EXPECT_EQ(left_fold(kFilterSumU64, vecs), reg.apply(kFilterSumU64, vecs));
  EXPECT_EQ(left_fold(kFilterMaxU64, vecs), reg.apply(kFilterMaxU64, vecs));
}

TEST(Filter, StatMergeFoldsChunkPartialsToTheWholePayloadTree) {
  tools::stat::register_stat_filter();
  // Three partial trees the way a streaming stat_be flushes them: disjoint
  // rank slices of one logical sample, overlapping call paths.
  tools::stat::PrefixTree whole;
  std::vector<Bytes> parts;
  const std::vector<std::vector<std::string>> paths = {
      {"_start", "main", "solve"},
      {"_start", "main", "io"},
      {"_start", "main", "solve", "MPI_Waitall"}};
  int rank = 0;
  for (const auto& path : paths) {
    tools::stat::PrefixTree part;
    for (int i = 0; i < 3; ++i, ++rank) {
      part.add_trace(path, rank);
      whole.add_trace(path, rank);
    }
    parts.push_back(wrap_leaf_payload(part.pack()));
  }
  const Bytes expected = concat_payloads({wrap_leaf_payload(whole.pack())});
  EXPECT_EQ(FilterRegistry::instance().apply(tools::stat::kFilterStatMerge,
                                             parts),
            expected);
  EXPECT_EQ(left_fold(tools::stat::kFilterStatMerge, parts), expected);
}

TEST(Filter, SnapshotMergeFoldsChunkPartialsToTheSortedBatch) {
  tools::jobsnap::register_jobsnap_filter();
  auto snap = [](std::int32_t rank) {
    tools::jobsnap::TaskSnapshot s;
    s.rank = rank;
    s.host = "n" + std::to_string(rank % 4);
    s.pid = 1000 + rank;
    s.executable = "mpi_app";
    return s;
  };
  // Batches arrive rank-unordered across parts (daemon order, not rank
  // order); the fold must still converge on one globally sorted batch.
  std::vector<tools::jobsnap::TaskSnapshot> all;
  std::vector<Bytes> parts;
  for (const auto& ranks :
       std::vector<std::vector<std::int32_t>>{{8, 2}, {5}, {0, 11, 3}}) {
    std::vector<tools::jobsnap::TaskSnapshot> batch;
    for (std::int32_t r : ranks) {
      batch.push_back(snap(r));
      all.push_back(snap(r));
    }
    parts.push_back(
        wrap_leaf_payload(tools::jobsnap::encode_snapshots(batch)));
  }
  std::sort(all.begin(), all.end(),
            [](const auto& a, const auto& b) { return a.rank < b.rank; });
  const Bytes expected = concat_payloads(
      {wrap_leaf_payload(tools::jobsnap::encode_snapshots(all))});
  EXPECT_EQ(FilterRegistry::instance().apply(
                tools::jobsnap::kFilterSnapshotMerge, parts),
            expected);
  EXPECT_EQ(left_fold(tools::jobsnap::kFilterSnapshotMerge, parts), expected);
}

TEST(Filter, RegistrationAndOverride) {
  FilterRegistry::instance().register_filter(
      9000, [](const std::vector<Bytes>&) { return Bytes{42}; });
  EXPECT_EQ(FilterRegistry::instance().apply(9000, {}), Bytes{42});
  FilterRegistry::instance().register_filter(
      9000, [](const std::vector<Bytes>&) { return Bytes{43}; });
  EXPECT_EQ(FilterRegistry::instance().apply(9000, {}), Bytes{43});
}

class TopologyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TopologyPropertyTest, RandomBalancedTopologiesAreValid) {
  sim::Rng rng(GetParam() * 51 + 2);
  const int ncomm = static_cast<int>(rng.next_below(10));
  const int nbe = 1 + static_cast<int>(rng.next_below(60));
  const int fanout = 1 + static_cast<int>(rng.next_below(8));
  Topology t = Topology::balanced("fe", 8300, hosts(ncomm, "c"),
                                  hosts(nbe, "b"), fanout, 8301);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.num_backends(), nbe);
  EXPECT_EQ(t.num_comm_nodes(), ncomm);
  auto back = Topology::unpack(t.pack());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, t);
  // Every backend rank is findable and unique.
  std::set<int> indices;
  for (int r = 0; r < nbe; ++r) {
    const int idx = t.index_of_backend(r);
    ASSERT_GE(idx, 0);
    EXPECT_TRUE(indices.insert(idx).second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace lmon::tbon
