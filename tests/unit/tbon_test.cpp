// Unit tests for TBON topology, packets and filters.
#include <gtest/gtest.h>

#include "simkernel/rng.hpp"
#include "tbon/endpoint.hpp"
#include "tbon/filter.hpp"
#include "tbon/packet.hpp"
#include "tbon/topology.hpp"

namespace lmon::tbon {
namespace {

std::vector<std::string> hosts(int n, const std::string& prefix = "n") {
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) out.push_back(prefix + std::to_string(i));
  return out;
}

TEST(Topology, OneDeepShape) {
  Topology t = Topology::one_deep("fe", 8300, hosts(5));
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.size(), 6u);
  EXPECT_EQ(t.num_backends(), 5);
  EXPECT_EQ(t.num_comm_nodes(), 0);
  EXPECT_EQ(t.depth(), 1);
  EXPECT_EQ(t.children_of(0).size(), 5u);
  for (int rank = 0; rank < 5; ++rank) {
    const int idx = t.index_of_backend(rank);
    ASSERT_GE(idx, 0);
    EXPECT_EQ(t.nodes()[static_cast<std::size_t>(idx)].parent, 0);
  }
}

TEST(Topology, BalancedShape) {
  Topology t = Topology::balanced("fe", 8300, hosts(3, "c"), hosts(12, "b"),
                                  2, 8301);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.num_backends(), 12);
  EXPECT_EQ(t.num_comm_nodes(), 3);
  EXPECT_GE(t.depth(), 2);
  // Back ends are distributed over the deepest comm layer.
  for (const auto& n : t.nodes()) {
    if (n.is_backend) {
      EXPECT_FALSE(
          t.nodes()[static_cast<std::size_t>(n.parent)].is_backend);
    }
  }
}

TEST(Topology, BalancedWithoutCommNodesDegeneratesToOneDeep) {
  Topology t = Topology::balanced("fe", 8300, {}, hosts(4), 2, 8301);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.depth(), 1);
  EXPECT_EQ(t.num_comm_nodes(), 0);
}

TEST(Topology, PackUnpackRoundTrip) {
  Topology t = Topology::balanced("fe", 8300, hosts(7, "c"), hosts(31, "b"),
                                  3, 8301);
  auto back = Topology::unpack(t.pack());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, t);
  EXPECT_TRUE(back->valid());
}

TEST(Topology, ValidationCatchesCorruption) {
  Topology t = Topology::one_deep("fe", 8300, hosts(3));
  auto packed = t.pack();
  auto mutated = Topology::unpack(packed);
  ASSERT_TRUE(mutated.has_value());
  // An empty topology and self-parent loops are invalid.
  EXPECT_FALSE(Topology().valid());
  EXPECT_FALSE(Topology::unpack(Bytes{9, 9}).has_value());
}

TEST(Topology, SubtreeHasBackend) {
  Topology t = Topology::balanced("fe", 8300, hosts(2, "c"), hosts(4, "b"),
                                  2, 8301);
  EXPECT_TRUE(subtree_has_backend(t, 0));
  for (int i = 1; i <= t.num_comm_nodes(); ++i) {
    // In this balanced layout every comm node leads to back ends.
    EXPECT_TRUE(subtree_has_backend(t, i));
  }
}

TEST(Packet, RoundTrip) {
  Packet p;
  p.kind = PacketKind::Up;
  p.stream = 3;
  p.tag = 99;
  p.node_index = 17;
  p.ranks = {0, 5, 9};
  p.data = Bytes{1, 2, 3};
  auto back = Packet::decode(p.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->kind, PacketKind::Up);
  EXPECT_EQ(back->stream, 3u);
  EXPECT_EQ(back->tag, 99u);
  EXPECT_EQ(back->node_index, 17);
  EXPECT_EQ(back->ranks, p.ranks);
  EXPECT_EQ(back->data, p.data);
}

TEST(Filter, ConcatFlattensNestedFrames) {
  const Bytes a = wrap_leaf_payload(Bytes{1});
  const Bytes b = wrap_leaf_payload(Bytes{2, 2});
  const Bytes ab = concat_payloads({a, b});
  const Bytes c = wrap_leaf_payload(Bytes{3, 3, 3});
  const Bytes all = concat_payloads({ab, c});
  auto parts = split_concat(all);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], Bytes{1});
  EXPECT_EQ(parts[1], (Bytes{2, 2}));
  EXPECT_EQ(parts[2], (Bytes{3, 3, 3}));
}

TEST(Filter, SumU64Elementwise) {
  ByteWriter a;
  a.u64(1);
  a.u64(10);
  ByteWriter b;
  b.u64(2);
  b.u64(20);
  const Bytes out = FilterRegistry::instance().apply(
      kFilterSumU64, {a.bytes(), b.bytes()});
  ByteReader r(out);
  EXPECT_EQ(r.u64(), 3u);
  EXPECT_EQ(r.u64(), 30u);
}

TEST(Filter, MaxU64Elementwise) {
  ByteWriter a;
  a.u64(7);
  ByteWriter b;
  b.u64(3);
  const Bytes out = FilterRegistry::instance().apply(
      kFilterMaxU64, {a.bytes(), b.bytes()});
  ByteReader r(out);
  EXPECT_EQ(r.u64(), 7u);
}

TEST(Filter, UnknownIdFallsBackToConcat) {
  const Bytes a = wrap_leaf_payload(Bytes{5});
  const Bytes out = FilterRegistry::instance().apply(424242, {a});
  EXPECT_EQ(split_concat(out).size(), 1u);
}

TEST(Filter, RegistrationAndOverride) {
  FilterRegistry::instance().register_filter(
      9000, [](const std::vector<Bytes>&) { return Bytes{42}; });
  EXPECT_EQ(FilterRegistry::instance().apply(9000, {}), Bytes{42});
  FilterRegistry::instance().register_filter(
      9000, [](const std::vector<Bytes>&) { return Bytes{43}; });
  EXPECT_EQ(FilterRegistry::instance().apply(9000, {}), Bytes{43});
}

class TopologyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(TopologyPropertyTest, RandomBalancedTopologiesAreValid) {
  sim::Rng rng(GetParam() * 51 + 2);
  const int ncomm = static_cast<int>(rng.next_below(10));
  const int nbe = 1 + static_cast<int>(rng.next_below(60));
  const int fanout = 1 + static_cast<int>(rng.next_below(8));
  Topology t = Topology::balanced("fe", 8300, hosts(ncomm, "c"),
                                  hosts(nbe, "b"), fanout, 8301);
  EXPECT_TRUE(t.valid());
  EXPECT_EQ(t.num_backends(), nbe);
  EXPECT_EQ(t.num_comm_nodes(), ncomm);
  auto back = Topology::unpack(t.pack());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, t);
  // Every backend rank is findable and unique.
  std::set<int> indices;
  for (int r = 0; r < nbe; ++r) {
    const int idx = t.index_of_backend(r);
    ASSERT_GE(idx, 0);
    EXPECT_TRUE(indices.insert(idx).second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TopologyPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace lmon::tbon
