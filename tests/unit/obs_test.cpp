// Unit tests for the observability plane primitives: the span tracer and
// its anchor table, the metrics registry (counters/gauges/histograms and
// their JSON embedding), the critical-path walk, the bounded flight
// recorder, and the Chrome-trace exporter's well-formedness.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/critical_path.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/perfetto.hpp"
#include "obs/trace.hpp"
#include "simkernel/log.hpp"
#include "simkernel/simulator.hpp"

namespace lmon {
namespace {

/// Advances simulated time to `when` (spans timestamp via sim.now()).
void advance_to(sim::Simulator& sim, sim::Time when) {
  sim.schedule_at(when, [] {});
  sim.run();
}

TEST(Tracer, SpansRecordTimesAndParents) {
  sim::Simulator sim;
  obs::Tracer tracer(sim);

  const obs::SpanId root = tracer.begin_span("root", "test", 0, 1);
  advance_to(sim, sim::ms(5));
  const obs::SpanId child =
      tracer.begin_span("child", "test", 0, 1, root, "k=v");
  advance_to(sim, sim::ms(9));
  tracer.end_span(child);
  advance_to(sim, sim::ms(12));
  tracer.end_span(root, "done");

  const obs::SpanRecord* r = tracer.find_span("root");
  const obs::SpanRecord* c = tracer.find_span("child");
  ASSERT_NE(r, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(r->parent, obs::kNoSpan);
  EXPECT_EQ(c->parent, r->id);
  EXPECT_EQ(c->begin, sim::ms(5));
  EXPECT_EQ(c->end, sim::ms(9));
  EXPECT_EQ(c->duration(), sim::ms(4));
  EXPECT_EQ(c->detail, "k=v");
  EXPECT_EQ(r->end, sim::ms(12));
  EXPECT_EQ(r->detail, "done");
  EXPECT_FALSE(r->open());

  // span() resolves ids; kNoSpan and unknown ids are null.
  EXPECT_EQ(tracer.span(c->parent), r);
  EXPECT_EQ(tracer.span(obs::kNoSpan), nullptr);
  EXPECT_EQ(tracer.span(9999), nullptr);
}

TEST(Tracer, EndSpanIsIdempotentAndIgnoresUnknownIds) {
  sim::Simulator sim;
  obs::Tracer tracer(sim);
  const obs::SpanId id = tracer.begin_span("s", "test", 0, 1);
  advance_to(sim, sim::ms(3));
  tracer.end_span(id);
  advance_to(sim, sim::ms(7));
  tracer.end_span(id);          // second close must not move the end time
  tracer.end_span(obs::kNoSpan);  // and bogus ids must be no-ops
  tracer.end_span(42);
  EXPECT_EQ(tracer.find_span("s")->end, sim::ms(3));
}

TEST(Tracer, AnchorsResolveAcrossComponents) {
  sim::Simulator sim;
  obs::Tracer tracer(sim);
  EXPECT_EQ(tracer.anchor("spawn:s:host0"), obs::kNoSpan);
  const obs::SpanId id = tracer.begin_span("launch", "rm", 0, 1);
  tracer.set_anchor("spawn:s:host0", id);
  EXPECT_EQ(tracer.anchor("spawn:s:host0"), id);
  tracer.set_anchor("spawn:s:host0", obs::kNoSpan);  // re-anchoring wins
  EXPECT_EQ(tracer.anchor("spawn:s:host0"), obs::kNoSpan);
}

TEST(Tracer, MarksAndChargesAreAbsorbed) {
  sim::Simulator sim;
  obs::Tracer tracer(sim);
  advance_to(sim, sim::ms(2));
  tracer.mark("e0_fe_call");
  advance_to(sim, sim::ms(10));
  tracer.mark("e11_return");
  tracer.charge("tracing", sim::ms(3));
  tracer.charge("tracing", sim::ms(1));

  EXPECT_EQ(tracer.marks().between("e0_fe_call", "e11_return"), sim::ms(8));
  EXPECT_EQ(tracer.charges().total("tracing"), sim::ms(4));
  EXPECT_EQ(tracer.charges().events("tracing"), 2u);

  // Marks double as instants so they land in the exported trace.
  bool seen = false;
  for (const auto& i : tracer.instants()) {
    if (i.name == "e0_fe_call") seen = true;
  }
  EXPECT_TRUE(seen);
}

TEST(Tracer, LogBridgeMirrorsLogLinesAndRestoresTap) {
  sim::Simulator sim;
  obs::Tracer tracer(sim);
  {
    obs::LogBridge bridge(tracer);
    EXPECT_TRUE(sim::Log::has_tap());
    sim::LogLine(sim::LogLevel::Info, sim.now(), "unit_test")
        << "hello bridge";
  }
  EXPECT_FALSE(sim::Log::has_tap());
  bool seen = false;
  for (const auto& i : tracer.instants()) {
    if (i.category == "log" && i.detail.find("hello bridge") !=
                                   std::string::npos) {
      seen = true;
    }
  }
  EXPECT_TRUE(seen);
}

TEST(CriticalPath, WalksParentChainFromLatestEnd) {
  sim::Simulator sim;
  obs::Tracer tracer(sim);
  const obs::SpanId a = tracer.begin_span("a", "t", 0, 1);
  const obs::SpanId b = tracer.begin_span("b", "t", 0, 1, a);
  const obs::SpanId c = tracer.begin_span("c", "t", 0, 1, b);
  const obs::SpanId d = tracer.begin_span("d", "t", 0, 1, a);  // side branch
  advance_to(sim, sim::ms(4));
  tracer.end_span(d);
  advance_to(sim, sim::ms(6));
  tracer.end_span(b);
  advance_to(sim, sim::ms(8));
  tracer.end_span(a);
  advance_to(sim, sim::ms(9));
  tracer.end_span(c);  // latest end -> the a->b->c chain bounds the run

  const auto chain = obs::critical_path(tracer);
  ASSERT_EQ(chain.size(), 3u);
  EXPECT_EQ(chain[0]->id, a);
  EXPECT_EQ(chain[1]->id, b);
  EXPECT_EQ(chain[2]->id, c);
}

TEST(CriticalPath, EmptyTracerYieldsEmptyChain) {
  sim::Simulator sim;
  obs::Tracer tracer(sim);
  EXPECT_TRUE(obs::critical_path(tracer).empty());
}

TEST(Metrics, CountersGaugesHistograms) {
  obs::Metrics m;
  EXPECT_EQ(m.counter("x"), 0.0);
  m.add("x");
  m.add("x", 2.5);
  EXPECT_EQ(m.counter("x"), 3.5);

  m.set_gauge("depth", 7);
  m.set_gauge("depth", 3);  // gauges overwrite
  EXPECT_EQ(m.gauge("depth"), 3.0);

  EXPECT_EQ(m.histogram("lat"), nullptr);
  m.observe("lat", 10);
  m.observe("lat", 2);
  m.observe("lat", 30);
  const obs::Metrics::Histogram* h = m.histogram("lat");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count, 3u);
  EXPECT_EQ(h->sum, 42.0);
  EXPECT_EQ(h->min, 2.0);
  EXPECT_EQ(h->max, 30.0);
}

TEST(Metrics, ToJsonIsSortedAndEmbeddable) {
  obs::Metrics m;
  m.add("b.second");
  m.add("a.first", 2);
  m.set_gauge("g", 1.5);
  m.observe("h", 4);
  const std::string json = m.to_json(2);

  // Sorted by name: a.first before b.second.
  EXPECT_LT(json.find("a.first"), json.find("b.second"));
  // Embeddable: starts at the brace (no leading padding), no trailing
  // newline - callers splice it after `"metrics": `.
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
}

TEST(FlightRecorder, RingOverwritesOldestAndCountsDrops) {
  obs::FlightRecorder ring(3);
  for (int i = 0; i < 5; ++i) {
    ring.record(sim::ms(i), "comp", "step " + std::to_string(i));
  }
  EXPECT_EQ(ring.size(), 3u);
  EXPECT_EQ(ring.dropped(), 2u);
  const auto entries = ring.entries();
  ASSERT_EQ(entries.size(), 3u);
  // Oldest first, and the two oldest entries were overwritten.
  EXPECT_EQ(entries[0].message, "step 2");
  EXPECT_EQ(entries[2].message, "step 4");
  EXPECT_EQ(entries[0].at, sim::ms(2));
}

TEST(FlightRecorder, HubDumpGroupsByPid) {
  obs::FlightRecorderHub hub(4);
  hub.record(10, sim::ms(1), "daemon", "init rank=0");
  hub.record(11, sim::ms(2), "daemon", "init rank=1");
  hub.record(10, sim::ms(3), "iccl", "connect retry");
  EXPECT_FALSE(hub.empty());
  ASSERT_EQ(hub.rings().size(), 2u);
  const std::string dump = hub.dump();
  EXPECT_NE(dump.find("init rank=0"), std::string::npos);
  EXPECT_NE(dump.find("init rank=1"), std::string::npos);
  EXPECT_NE(dump.find("connect retry"), std::string::npos);
}

TEST(Perfetto, ExportIsBalancedAndClampsOpenSpans) {
  sim::Simulator sim;
  obs::Tracer tracer(sim);
  tracer.name_track(0, "node0");
  const obs::SpanId a = tracer.begin_span("done", "t", 0, 1);
  advance_to(sim, sim::ms(2));
  tracer.instant("tick", "t", 0, 1, a);
  advance_to(sim, sim::ms(5));
  tracer.end_span(a);
  tracer.begin_span("still_open", "t", 0, 1);  // never closed

  const std::string json = obs::to_chrome_trace_json(tracer);
  int depth = 0;
  for (char ch : json) {
    if (ch == '{' || ch == '[') ++depth;
    if (ch == '}' || ch == ']') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"done\""), std::string::npos);
  EXPECT_NE(json.find("\"tick\""), std::string::npos);
  // Open spans are exported (clamped to capture end) and labeled.
  EXPECT_NE(json.find("[open]"), std::string::npos);
}

}  // namespace
}  // namespace lmon
