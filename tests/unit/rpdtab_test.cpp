// Unit + property tests for the RPDTAB and the MPIR APAI encoding.
#include <gtest/gtest.h>

#include "cluster/machine.hpp"
#include "core/rpdtab.hpp"
#include "rm/apai.hpp"
#include "rm/protocol.hpp"
#include "simkernel/rng.hpp"

namespace lmon::core {
namespace {

std::vector<rm::TaskDesc> sample_entries() {
  return {
      {"atlas1", "mpi_app", 1001, 0},
      {"atlas1", "mpi_app", 1002, 1},
      {"atlas2", "mpi_app", 1003, 2},
      {"atlas3", "mpi_app", 1004, 3},
      {"atlas2", "mpi_app", 1005, 4},
  };
}

TEST(Rpdtab, PackUnpackRoundTrip) {
  Rpdtab t(sample_entries());
  auto back = Rpdtab::unpack(t.pack());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, t);
}

TEST(Rpdtab, HostsInFirstAppearanceOrder) {
  Rpdtab t(sample_entries());
  EXPECT_EQ(t.hosts(),
            (std::vector<std::string>{"atlas1", "atlas2", "atlas3"}));
}

TEST(Rpdtab, EntriesForHost) {
  Rpdtab t(sample_entries());
  auto on2 = t.entries_for_host("atlas2");
  ASSERT_EQ(on2.size(), 2u);
  EXPECT_EQ(on2[0].rank, 2);
  EXPECT_EQ(on2[1].rank, 4);
  EXPECT_TRUE(t.entries_for_host("atlas9").empty());
}

TEST(Rpdtab, EmptyTableRoundTrips) {
  Rpdtab t;
  auto back = Rpdtab::unpack(t.pack());
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(back->empty());
  EXPECT_TRUE(back->hosts().empty());
}

TEST(Rpdtab, MalformedBlobRejected) {
  EXPECT_FALSE(Rpdtab::unpack(Bytes{1, 2, 3}).has_value());
  // Claims 5 entries but contains none.
  ByteWriter w;
  w.u32(5);
  EXPECT_FALSE(Rpdtab::unpack(std::move(w).take()).has_value());
}

TEST(Rpdtab, PackedSizeLinearInEntries) {
  std::vector<rm::TaskDesc> entries;
  for (int i = 0; i < 100; ++i) {
    entries.push_back({"atlas" + std::to_string(i % 10), "mpi_app",
                       2000 + i, i});
  }
  const std::size_t n100 = Rpdtab(entries).pack().size();
  entries.resize(50);
  const std::size_t n50 = Rpdtab(entries).pack().size();
  // Linear growth: the Region B / Region C terms of the paper's model.
  EXPECT_NEAR(static_cast<double>(n100) / static_cast<double>(n50), 2.0, 0.1);
}

class RpdtabPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RpdtabPropertyTest, RandomTablesRoundTrip) {
  sim::Rng rng(GetParam() * 131 + 17);
  std::vector<rm::TaskDesc> entries;
  const auto n = rng.next_below(200);
  for (std::uint64_t i = 0; i < n; ++i) {
    rm::TaskDesc d;
    d.host = "node" + std::to_string(rng.next_below(64));
    d.executable = rng.next_below(2) == 0 ? "mpi_app" : "other_app";
    d.pid = static_cast<cluster::Pid>(rng.next_below(1 << 20));
    d.rank = static_cast<std::int32_t>(i);
    entries.push_back(std::move(d));
  }
  Rpdtab t(entries);
  auto back = Rpdtab::unpack(t.pack());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, t);
  // Host partitions cover all entries exactly once.
  std::size_t total = 0;
  for (const auto& h : back->hosts()) {
    total += back->entries_for_host(h).size();
  }
  EXPECT_EQ(total, back->size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RpdtabPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 20));

TEST(Apai, PublishExposesMpirSymbols) {
  sim::Simulator simulator;
  cluster::Machine machine(simulator, cluster::MachineConfig{1, 0, "t", {}});

  class Inert : public cluster::Program {
   public:
    [[nodiscard]] std::string_view name() const override { return "inert"; }
    void on_start(cluster::Process&) override {}
  };
  auto res = machine.front_end().spawn(std::make_unique<Inert>(), {});
  ASSERT_TRUE(res.is_ok());
  simulator.run();
  cluster::Process* p = machine.find_process(res.value);

  rm::apai::publish(*p, sample_entries());
  EXPECT_TRUE(p->symbols().has(rm::apai::kProctable));
  EXPECT_TRUE(p->symbols().has(rm::apai::kProctableSize));
  EXPECT_TRUE(p->symbols().has(rm::apai::kDebugState));

  auto entries =
      rm::apai::decode_proctable(*p->symbols().find(rm::apai::kProctable));
  ASSERT_TRUE(entries.has_value());
  EXPECT_EQ(*entries, sample_entries());

  ByteReader size_r(*p->symbols().find(rm::apai::kProctableSize));
  EXPECT_EQ(size_r.u32(), 5u);
}

}  // namespace
}  // namespace lmon::core
