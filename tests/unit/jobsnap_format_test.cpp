// Unit tests for Jobsnap's snapshot record format.
#include <gtest/gtest.h>

#include "simkernel/rng.hpp"
#include "tools/jobsnap/format.hpp"

namespace lmon::tools::jobsnap {
namespace {

TaskSnapshot sample() {
  TaskSnapshot s;
  s.rank = 17;
  s.host = "atlas18";
  s.pid = 54321;
  s.executable = "mpi_app";
  s.state = 'R';
  s.program_counter = 0x400abc;
  s.num_threads = 3;
  s.vm_hwm_kb = 123456;
  s.vm_lck_kb = 64;
  s.utime_ms = 9876;
  s.stime_ms = 123;
  s.maj_faults = 2;
  return s;
}

TEST(JobsnapFormat, SingleRoundTrip) {
  ByteWriter w;
  sample().encode(w);
  ByteReader r(w.bytes());
  auto back = TaskSnapshot::decode(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->rank, 17);
  EXPECT_EQ(back->host, "atlas18");
  EXPECT_EQ(back->pid, 54321);
  EXPECT_EQ(back->state, 'R');
  EXPECT_EQ(back->program_counter, 0x400abcu);
  EXPECT_EQ(back->num_threads, 3u);
  EXPECT_EQ(back->vm_hwm_kb, 123456u);
  EXPECT_EQ(back->vm_lck_kb, 64u);
  EXPECT_EQ(back->utime_ms, 9876u);
  EXPECT_EQ(back->stime_ms, 123u);
  EXPECT_EQ(back->maj_faults, 2u);
}

TEST(JobsnapFormat, BatchRoundTrip) {
  std::vector<TaskSnapshot> snaps;
  sim::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    TaskSnapshot s = sample();
    s.rank = i;
    s.pid = 1000 + i;
    s.utime_ms = rng.next_below(100000);
    snaps.push_back(s);
  }
  auto back = decode_snapshots(encode_snapshots(snaps));
  ASSERT_TRUE(back.has_value());
  ASSERT_EQ(back->size(), 100u);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ((*back)[static_cast<std::size_t>(i)].rank, i);
    EXPECT_EQ((*back)[static_cast<std::size_t>(i)].utime_ms,
              snaps[static_cast<std::size_t>(i)].utime_ms);
  }
}

TEST(JobsnapFormat, LineContainsTheKeyFields) {
  const std::string line = sample().format_line();
  EXPECT_NE(line.find("17"), std::string::npos);
  EXPECT_NE(line.find("atlas18"), std::string::npos);
  EXPECT_NE(line.find("54321"), std::string::npos);
  EXPECT_NE(line.find("mpi_app"), std::string::npos);
  EXPECT_NE(line.find("R"), std::string::npos);
  EXPECT_NE(line.find("123456"), std::string::npos);
}

TEST(JobsnapFormat, HeaderNamesTheColumns) {
  const std::string h = report_header();
  for (const char* col : {"RANK", "HOST", "PID", "EXE", "PC", "VmHWM",
                          "VmLck", "utime", "stime", "majflt"}) {
    EXPECT_NE(h.find(col), std::string::npos) << col;
  }
}

TEST(JobsnapFormat, DecodeRejectsTruncation) {
  ByteWriter w;
  sample().encode(w);
  Bytes bytes = w.bytes();
  bytes.resize(bytes.size() / 2);
  ByteReader r(bytes);
  EXPECT_FALSE(TaskSnapshot::decode(r).has_value());
  EXPECT_FALSE(decode_snapshots(Bytes{1, 0, 0, 0}).has_value());
}

}  // namespace
}  // namespace lmon::tools::jobsnap
