// flight_check.hpp - post-mortem hook for fault-injection tests.
//
// Attach one of these right after constructing a TestCluster: every daemon
// then streams its last protocol steps into a bounded per-pid ring
// (obs::FlightRecorderHub via Machine::flight_record), and if the test has
// FAILED by the time the scope closes, the rings are dumped to stderr -
// so "the launch timed out" comes with the actual last steps each daemon
// took. Passing tests print nothing.
//
// Kept separate from tests/test_util.hpp because this depends on gtest
// (HasFailure) and test_util is also included by the benches.
#pragma once

#include <gtest/gtest.h>

#include <cstdio>

#include "cluster/machine.hpp"
#include "obs/flight_recorder.hpp"

namespace lmon::testing {

class FlightRecorderOnFailure {
 public:
  explicit FlightRecorderOnFailure(cluster::Machine& machine)
      : machine_(machine) {
    machine_.set_flight_recorder(&hub_);
  }

  FlightRecorderOnFailure(const FlightRecorderOnFailure&) = delete;
  FlightRecorderOnFailure& operator=(const FlightRecorderOnFailure&) = delete;

  ~FlightRecorderOnFailure() {
    machine_.set_flight_recorder(nullptr);
    if (::testing::Test::HasFailure() && !hub_.empty()) {
      std::fprintf(stderr,
                   "\n--- flight recorder (last steps per daemon) ---\n%s",
                   hub_.dump().c_str());
    }
  }

  [[nodiscard]] obs::FlightRecorderHub& hub() noexcept { return hub_; }

 private:
  cluster::Machine& machine_;
  obs::FlightRecorderHub hub_;
};

}  // namespace lmon::testing
