#!/usr/bin/env bash
# check.sh - the repo's CI gate: configure + build (warnings are errors) +
# full ctest. Run from anywhere; builds out-of-source into build-check/.
#
# Modes:
#   (default)      full gate: configure + -Werror build + entire ctest suite
#   --bench-smoke  build the Release preset and run only the `bench-smoke`
#                  ctest label: every bench_* binary at minimal scale
#                  (LMON_BENCH_SMOKE=1), so bench bit-rot is caught in
#                  seconds without paying for the full sweeps.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-check}
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

if [[ "${1:-}" == "--bench-smoke" ]]; then
  cmake --preset release
  cmake --build --preset release -j "$JOBS"
  ctest --test-dir build-release -L bench-smoke --output-on-failure -j "$JOBS"
  exit 0
fi

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DLMON_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
