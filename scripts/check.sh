#!/usr/bin/env bash
# check.sh - the repo's CI gate: configure + build (warnings are errors) +
# full ctest. Run from anywhere; builds out-of-source into build-check/.
#
# Modes:
#   (default)      full gate: configure + -Werror build + entire ctest suite
#   --bench-smoke  build the Release preset and run only the `bench-smoke`
#                  ctest label: every bench_* binary at minimal scale
#                  (LMON_BENCH_SMOKE=1), so bench bit-rot is caught in
#                  seconds without paying for the full sweeps.
#   --trace-smoke  build the Release preset, run one traced bench
#                  (bench_fig3_launchspawn --trace-out=...) at smoke scale,
#                  and validate the exported Chrome-trace JSON against the
#                  golden structural schema (tests/golden/
#                  trace_event.schema.txt) - catches exporter bit-rot the
#                  same way the bench --json goldens catch report drift.
#   --fault-smoke  build the Release preset and run only the fault-injection
#                  surface: the self-heal suite, the subtree-reparent math
#                  units, the TBON overlay heal test, and the availability
#                  bench at smoke scale - the fast "did a refactor break
#                  failure recovery" gate.
#   --mux-smoke    build the Release preset and run only the multiplexed-
#                  service surface: the virtual-session integration suite,
#                  the session-table knob/reuse tests, and the mux ablation
#                  bench at smoke scale - the fast "did a refactor break
#                  session multiplexing" gate.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-check}
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

if [[ "${1:-}" == "--bench-smoke" ]]; then
  cmake --preset release
  cmake --build --preset release -j "$JOBS"
  ctest --test-dir build-release -L bench-smoke --output-on-failure -j "$JOBS"
  exit 0
fi

if [[ "${1:-}" == "--fault-smoke" ]]; then
  cmake --preset release
  cmake --build --preset release -j "$JOBS" \
    --target self_heal_test comm_topology_test tbon_net_test \
    bench_ablation_heal
  build-release/self_heal_test
  build-release/comm_topology_test --gtest_filter='HealMath.*'
  build-release/tbon_net_test --gtest_filter='TbonNet.HealedOverlay*'
  LMON_BENCH_SMOKE=1 build-release/bench_ablation_heal
  echo "fault-smoke OK"
  exit 0
fi

if [[ "${1:-}" == "--mux-smoke" ]]; then
  cmake --preset release
  cmake --build --preset release -j "$JOBS" \
    --target mux_session_test multi_session_test bench_ablation_mux
  build-release/mux_session_test
  build-release/multi_session_test \
    --gtest_filter='MultiSession.SessionBound*:MultiSession.Destroyed*'
  LMON_BENCH_SMOKE=1 build-release/bench_ablation_mux
  echo "mux-smoke OK"
  exit 0
fi

if [[ "${1:-}" == "--trace-smoke" ]]; then
  cmake --preset release
  cmake --build --preset release -j "$JOBS"
  trace_out=build-release/trace_smoke.json
  rm -f "$trace_out"
  LMON_BENCH_SMOKE=1 build-release/bench_fig3_launchspawn \
    "--trace-out=$trace_out" >/dev/null
  [[ -s "$trace_out" ]] || { echo "trace-smoke: no trace exported" >&2; exit 1; }
  python3 - "$trace_out" tests/golden/trace_event.schema.txt <<'PY'
import json, sys

# Mirrors bench::json_shape (bench/ablation_rsh_lib.hpp): object keys in
# emitted order, array element shapes deduped in first-seen order.
def shape(v):
    if isinstance(v, dict):
        return "{" + ",".join(f"{k}:{shape(x)}" for k, x in v.items()) + "}"
    if isinstance(v, list):
        seen, shapes = set(), []
        for x in v:
            s = shape(x)
            if s not in seen:
                seen.add(s)
                shapes.append(s)
        return "[" + "|".join(shapes) + "]"
    if isinstance(v, bool):
        return "bool"
    if v is None:
        return "null"
    if isinstance(v, (int, float)):
        return "num"
    return "str"

trace = json.load(open(sys.argv[1]))
events = trace.get("traceEvents")
if not isinstance(events, list) or not events:
    sys.exit("trace-smoke: exported trace has no traceEvents")
phases = {e.get("ph") for e in events}
missing = {"M", "X", "i"} - phases
if missing:
    sys.exit(f"trace-smoke: missing event phases {sorted(missing)}")
# Same structural-skeleton regime as the bench --json goldens; the golden
# is shared with tests/integration/trace_session_test.cpp.
live = shape(trace)
golden = open(sys.argv[2]).read().strip()
if live != golden:
    sys.exit("trace-smoke: trace schema drifted from "
             f"tests/golden/trace_event.schema.txt\nlive skeleton:\n{live}")
print(f"trace-smoke OK: {len(events)} events, schema matches golden")
PY
  exit 0
fi

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DLMON_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
