#!/usr/bin/env bash
# check.sh - the repo's CI gate: configure + build (warnings are errors) +
# full ctest. Run from anywhere; builds out-of-source into build-check/.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-check}
JOBS=${JOBS:-$(nproc 2>/dev/null || echo 4)}

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DLMON_WERROR=ON
cmake --build "$BUILD_DIR" -j "$JOBS"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
