// attach_and_control - session lifecycle walkthrough.
//
// Demonstrates the control surface beyond launchAndSpawn: attaching to a
// running job, exchanging tool data with the daemon fleet (piggybacked and
// post-startup), the BE collectives, and the two teardown modes (detach
// leaves the job running; kill reaps everything).
#include <cstdio>
#include <memory>

#include "core/be_api.hpp"
#include "core/fe_api.hpp"
#include "tests/test_util.hpp"

using namespace lmon;

namespace {

/// A daemon that reports its host back over a gather when poked.
class RollCallDaemon : public cluster::Program {
 public:
  [[nodiscard]] std::string_view name() const override { return "rollcall"; }
  void on_start(cluster::Process& self) override {
    be_ = std::make_unique<core::BackEnd>(self);
    core::BackEnd::Callbacks cbs;
    cbs.on_init = [](const core::Rpdtab&, const Bytes&,
                     std::function<void(Status)> done) { done(Status::ok()); };
    cbs.on_usrdata = [this](const Bytes&) {
      // FE poked the master: fan the roll-call command out to the fleet.
      (void)be_->broadcast_command(Bytes{1});
    };
    cbs.on_command = [this, &self](const Bytes&) {
      // Every daemon (master included) contributes to the roll call.
      ByteWriter w;
      w.str(self.node().hostname());
      w.u32(static_cast<std::uint32_t>(be_->my_entries().size()));
      be_->gather(std::move(w).take(), [this](auto entries) {
        std::string report;
        for (auto& [rank, data] : entries) {
          ByteReader r(data);
          const auto host = r.str();    // reader calls must be sequenced
          const auto ntasks = r.u32();
          if (!host || !ntasks) continue;
          report += "  daemon " + std::to_string(rank) + " on " + *host +
                    " watches " + std::to_string(*ntasks) + " tasks\n";
        }
        (void)be_->send_usrdata_fe(Bytes(report.begin(), report.end()));
      });
    };
    if (!be_->init(std::move(cbs)).is_ok()) self.exit(1);
  }
  static void install(cluster::Machine& machine) {
    cluster::ProgramImage image;
    image.image_mb = 2.0;
    image.factory = [](const std::vector<std::string>&) {
      return std::make_unique<RollCallDaemon>();
    };
    machine.install_program("rollcall", std::move(image));
  }

 private:
  std::unique_ptr<core::BackEnd> be_;
};

}  // namespace

int main() {
  testing::TestCluster cluster(8);
  RollCallDaemon::install(cluster.machine);

  auto job = rm::run_job(cluster.machine, rm::JobSpec{8, 4, "mpi_app", {}});
  cluster.simulator.run(cluster.simulator.now() + sim::seconds(2));
  std::printf("attached target: launcher pid %lld\n",
              static_cast<long long>(job.value));

  std::shared_ptr<core::FrontEnd> fe;
  int sid = -1;
  std::string roll_call;
  bool detached = false;

  cluster.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);
    (void)fe->init();
    sid = fe->create_session().value;

    fe->set_be_usrdata_handler(sid, [&](const Bytes& data) {
      roll_call.assign(data.begin(), data.end());
      // Done with the daemons: detach, leaving the job running.
      fe->detach(sid, [&](Status) { detached = true; });
    });

    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "rollcall";
    fe->attach_and_spawn(sid, job.value, cfg, [&](Status st) {
      if (!st.is_ok()) {
        std::fprintf(stderr, "attach failed: %s\n", st.to_string().c_str());
        return;
      }
      std::printf("session ready: %zu tasks, %zu daemons\n",
                  fe->proctable(sid)->size(),
                  fe->daemon_table(sid)->size());
      // Poke the master to start the roll call.
      (void)fe->send_usrdata_be(sid, Bytes{0});
    });
  });

  cluster.run_until([&] { return detached; });
  std::printf("\nroll call via ICCL gather:\n%s", roll_call.c_str());

  cluster.simulator.run(cluster.simulator.now() + sim::seconds(1));
  cluster::Process* launcher = cluster.machine.find_process(job.value);
  std::printf("\nafter detach: job launcher is %s\n",
              launcher->state() == cluster::ProcState::Running
                  ? "still running (detach leaves the job alone)"
                  : "gone (unexpected!)");

  int live_daemons = 0;
  for (int i = 0; i < cluster.machine.num_compute_nodes(); ++i) {
    for (cluster::Process* p :
         cluster.machine.compute_node(i).live_processes()) {
      if (p->options().executable == "rollcall") ++live_daemons;
    }
  }
  std::printf("tool daemons remaining: %d (session teardown reaped them)\n",
              live_daemons);
  return 0;
}
