// stat_demo - the paper's §5.2 tool end to end, both startup paths.
//
// Attaches STAT to a running 256-task job twice: once with the MRNet-native
// ad hoc (serial rsh) startup and once through LaunchMON. Prints the merged
// call-graph prefix tree, the process equivalence classes, and the startup
// comparison that Fig. 6 quantifies.
#include <cstdio>
#include <memory>

#include "tbon/comm_node.hpp"
#include "tests/test_util.hpp"
#include "tools/stat/stat_be.hpp"
#include "tools/stat/stat_fe.hpp"

using namespace lmon;

namespace {

tools::stat::StatOutcome run(testing::TestCluster& cluster,
                             tools::stat::StatConfig cfg) {
  tools::stat::StatOutcome out;
  cluster::SpawnOptions opts;
  opts.executable = "stat_fe";
  opts.image_mb = 12.0;
  auto res = cluster.machine.front_end().spawn(
      std::make_unique<tools::stat::StatFe>(std::move(cfg), &out),
      std::move(opts));
  if (!res.is_ok()) {
    out.status = res.status;
    out.done = true;
    return out;
  }
  cluster.run_until([&] { return out.done; }, sim::seconds(600));
  return out;
}

}  // namespace

int main() {
  const int nodes = 32;
  double adhoc_secs = 0;
  double lmon_secs = 0;

  {
    testing::TestCluster cluster(nodes);
    tools::stat::StatBe::install(cluster.machine);
    tbon::AdHocCommNode::install(cluster.machine);
    auto job =
        rm::run_job(cluster.machine, rm::JobSpec{nodes, 8, "mpi_app", {}});
    cluster.simulator.run(cluster.simulator.now() + sim::seconds(3));

    tools::stat::StatConfig cfg;
    cfg.mode = tools::stat::StartupMode::AdHocRsh;
    cfg.launcher_pid = job.value;
    // Without LaunchMON the user must name the nodes by hand.
    for (int i = 0; i < nodes; ++i) {
      cfg.adhoc_hosts.push_back(cluster.machine.compute_node(i).hostname());
    }
    auto out = run(cluster, cfg);
    if (!out.status.is_ok()) {
      std::fprintf(stderr, "ad hoc run failed: %s\n",
                   out.status.to_string().c_str());
      return 1;
    }
    adhoc_secs = out.launch_connect_seconds();
  }

  {
    testing::TestCluster cluster(nodes);
    tools::stat::StatBe::install(cluster.machine);
    tbon::LmonCommNode::install(cluster.machine);
    auto job =
        rm::run_job(cluster.machine, rm::JobSpec{nodes, 8, "mpi_app", {}});
    cluster.simulator.run(cluster.simulator.now() + sim::seconds(3));

    tools::stat::StatConfig cfg;
    cfg.mode = tools::stat::StartupMode::LaunchMon;
    cfg.launcher_pid = job.value;  // everything else comes from the RPDTAB
    auto out = run(cluster, cfg);
    if (!out.status.is_ok()) {
      std::fprintf(stderr, "LaunchMON run failed: %s\n",
                   out.status.to_string().c_str());
      return 1;
    }
    lmon_secs = out.launch_connect_seconds();

    std::printf("merged call-graph prefix tree (%d tasks):\n\n",
                nodes * 8);
    std::printf("%s\n", out.tree->render().c_str());
    std::printf("process equivalence classes:\n");
    for (const auto& c : out.classes) {
      std::string path;
      for (const auto& f : c.path) {
        if (!path.empty()) path += " > ";
        path += f;
      }
      std::printf("  %4zu tasks: %s\n", c.ranks.size(), path.c_str());
    }
  }

  std::printf("\nstartup comparison at %d daemons (Fig. 6):\n", nodes);
  std::printf("  MRNet-native (serial rsh): %6.2f s\n", adhoc_secs);
  std::printf("  LaunchMON                : %6.2f s  (%.0fx faster)\n",
              lmon_secs, adhoc_secs / lmon_secs);
  return 0;
}
