// jobsnap_demo - the paper's §5.1 tool end to end.
//
// Launches a 128-task job plainly (no tool), lets it compute for a while,
// then runs Jobsnap: attachAndSpawn lightweight daemons, snapshot every
// task's /proc state, gather through ICCL, print the merged per-task table,
// detach leaving the job running.
#include <cstdio>
#include <memory>

#include "tests/test_util.hpp"
#include "tools/jobsnap/jobsnap_be.hpp"
#include "tools/jobsnap/jobsnap_fe.hpp"

using namespace lmon;

int main() {
  testing::TestCluster cluster(16);
  tools::jobsnap::JobsnapBe::install(cluster.machine);

  // A running application the user wants to inspect.
  auto job = rm::run_job(cluster.machine, rm::JobSpec{16, 8, "mpi_app", {}});
  if (!job.is_ok()) {
    std::fprintf(stderr, "job launch failed\n");
    return 1;
  }
  // Let it run for 5 simulated seconds so /proc state accumulates.
  cluster.simulator.run(cluster.simulator.now() + sim::seconds(5));
  std::printf("application running (launcher pid %lld); taking a snapshot\n\n",
              static_cast<long long>(job.value));

  tools::jobsnap::JobsnapOutcome outcome;
  cluster::SpawnOptions opts;
  opts.executable = "jobsnap_fe";
  opts.image_mb = 3.0;
  auto fe = cluster.machine.front_end().spawn(
      std::make_unique<tools::jobsnap::JobsnapFe>(job.value, &outcome),
      std::move(opts));
  if (!fe.is_ok()) return 1;

  cluster.run_until([&] { return outcome.done; });
  if (!outcome.status.is_ok()) {
    std::fprintf(stderr, "jobsnap failed: %s\n",
                 outcome.status.to_string().c_str());
    return 1;
  }

  // Print the first dozen lines of the report plus the tail.
  std::size_t shown = 0;
  std::size_t pos = 0;
  while (pos < outcome.report.size() && shown < 13) {
    const std::size_t nl = outcome.report.find('\n', pos);
    std::printf("%.*s\n", static_cast<int>(nl - pos),
                outcome.report.c_str() + pos);
    pos = nl + 1;
    ++shown;
  }
  std::printf("  ... (%u tasks total)\n\n", outcome.tasks);
  std::printf("total time          : %.3f s\n",
              sim::to_seconds(outcome.t_done - outcome.t_start));
  std::printf("init->attachAndSpawn: %.3f s (the LaunchMON share, Fig. 5)\n",
              sim::to_seconds(outcome.t_spawned - outcome.t_start));
  return 0;
}
