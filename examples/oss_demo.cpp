// oss_demo - the paper's §5.3 integration: Open|SpeedShop's Instrumentor
// abstraction with the DPCL baseline and the LaunchMON replacement.
//
// Acquires the APAI (proctable) for a running job through both paths and
// prints the Table-1-style comparison, then shows why: the DPCL path parses
// the whole RM launcher binary; LaunchMON reads the proctable directly.
#include <cstdio>
#include <memory>

#include "tests/test_util.hpp"
#include "tools/dpcl/dpcl.hpp"
#include "tools/oss/instrumentor.hpp"

using namespace lmon;

namespace {

tools::oss::ApaiResult acquire(testing::TestCluster& cluster,
                               tools::oss::Instrumentor& instrumentor,
                               cluster::Pid launcher) {
  tools::oss::ApaiResult result;
  bool done = false;
  cluster.spawn_fe([&](cluster::Process& self) {
    instrumentor.acquire(self, launcher, [&](tools::oss::ApaiResult r) {
      result = std::move(r);
      done = true;
    });
  });
  cluster.run_until([&] { return done; }, sim::seconds(3600));
  return result;
}

}  // namespace

int main() {
  testing::TestCluster cluster(8);
  tools::oss::OssBe::install(cluster.machine);
  if (!tools::dpcl::install(cluster.machine).is_ok()) return 1;

  auto job = rm::run_job(cluster.machine, rm::JobSpec{8, 8, "mpi_app", {}});
  cluster.simulator.run(cluster.simulator.now() + sim::seconds(3));
  std::printf("running performance experiment on a %d-task job\n\n", 64);

  tools::oss::DpclInstrumentor dpcl_path;
  auto dpcl_result = acquire(cluster, dpcl_path, job.value);
  if (!dpcl_result.status.is_ok()) {
    std::fprintf(stderr, "DPCL path failed: %s\n",
                 dpcl_result.status.to_string().c_str());
    return 1;
  }

  tools::oss::LmonInstrumentor lmon_path;
  auto lmon_result = acquire(cluster, lmon_path, job.value);
  if (!lmon_result.status.is_ok()) {
    std::fprintf(stderr, "LaunchMON path failed: %s\n",
                 lmon_result.status.to_string().c_str());
    return 1;
  }

  std::printf("APAI access time (Table 1 at 8 nodes):\n");
  std::printf("  DPCL instrumentor     : %7.2f s  (full parse of the %.0f MB "
              "launcher image)\n",
              sim::to_seconds(dpcl_result.elapsed),
              cluster.machine.costs().launcher_image_mb);
  std::printf("  LaunchMON instrumentor: %7.3f s  (direct APAI read + daemon "
              "co-spawn)\n",
              sim::to_seconds(lmon_result.elapsed));
  std::printf("  speedup               : %6.0fx\n\n",
              sim::to_seconds(dpcl_result.elapsed) /
                  sim::to_seconds(lmon_result.elapsed));

  std::printf("both instrumentors agree on the proctable: %s (%zu tasks)\n",
              dpcl_result.table == lmon_result.table ? "yes" : "NO",
              lmon_result.table.size());
  std::printf(
      "\nusability note (paper §5.3): the DPCL path additionally requires "
      "persistent root daemons\non every node; the LaunchMON path launches "
      "unprivileged daemons on demand.\n");
  return 0;
}
