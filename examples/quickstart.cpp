// quickstart - the smallest complete LaunchMON tool.
//
// Boots a simulated 8-node cluster with the SLURM-like RM, launches a
// 64-task MPI job under tool control with one back-end daemon co-located
// per node (launchAndSpawn), and prints the RPDTAB and daemon table the
// session produced. Start here to see the whole API surface in ~80 lines.
#include <cstdio>
#include <memory>

#include "core/fe_api.hpp"
#include "tests/test_util.hpp"

using namespace lmon;

int main() {
  // A booted cluster: 8 compute nodes, RM installed, images registered.
  testing::TestCluster cluster(8);

  bool done = false;
  Status status;
  std::shared_ptr<core::FrontEnd> fe;
  int sid = -1;

  // Tool front ends are event-driven processes on the front-end node.
  cluster.spawn_fe([&](cluster::Process& self) {
    fe = std::make_shared<core::FrontEnd>(self);

    // 1. Initialize the FE runtime (binds the LMONP port).
    Status st = fe->init();
    if (!st.is_ok()) {
      std::fprintf(stderr, "init failed: %s\n", st.to_string().c_str());
      return;
    }

    // 2. Create a session: the handle that binds job + daemons together.
    auto session = fe->create_session();
    sid = session.value;

    // 3. launchAndSpawn: start the job under tool control and co-locate
    //    one "hello_be" daemon with its tasks on every node.
    rm::JobSpec job;
    job.nnodes = 8;
    job.tasks_per_node = 8;
    job.executable = "mpi_app";

    core::FrontEnd::SpawnConfig cfg;
    cfg.daemon_exe = "hello_be";

    fe->launch_and_spawn(sid, job, cfg, [&](Status result) {
      status = result;
      done = true;
    });
  });

  // Drive the simulation until the session is ready.
  cluster.run_until([&] { return done; });
  if (!status.is_ok()) {
    std::fprintf(stderr, "launchAndSpawn failed: %s\n",
                 status.to_string().c_str());
    return 1;
  }

  std::printf("launchAndSpawn completed in %.3f simulated seconds\n\n",
              sim::to_seconds(cluster.simulator.now()));

  const core::Rpdtab* proctable = fe->proctable(sid);
  std::printf("RPDTAB (%zu tasks):\n", proctable->size());
  for (const auto& e : proctable->entries()) {
    if (e.rank < 4 || e.rank >= static_cast<int>(proctable->size()) - 2) {
      std::printf("  rank %3d  host %-8s pid %lld  exe %s\n", e.rank,
                  e.host.c_str(), static_cast<long long>(e.pid),
                  e.executable.c_str());
    } else if (e.rank == 4) {
      std::printf("  ...\n");
    }
  }

  const core::Rpdtab* daemons = fe->daemon_table(sid);
  std::printf("\ntool daemons (%zu, one per node):\n", daemons->size());
  for (const auto& d : daemons->entries()) {
    std::printf("  daemon %2d  host %-8s pid %lld\n", d.rank, d.host.c_str(),
                static_cast<long long>(d.pid));
  }
  std::printf("\nquickstart OK\n");
  return 0;
}
