// critical_path.hpp - attribute end-to-end session latency to the paper's
// model regions.
//
// Two complementary views of "where did the time go":
//   * extract_regions() reproduces the paper's §4 region decomposition
//     (Fig. 3: T(job), T(daemon), T(setup), T(collective), tracing, RPDTAB
//     fetch, handshake, other) from a Tracer's absorbed e0..e11 marks and
//     cost charges. The arithmetic is *identical* to
//     bench_fig3_launchspawn's, so the extractor's sums match the bench's
//     measured columns exactly - model-vs-measured residuals become
//     diagnosable per PerfModel term.
//   * critical_path() walks span parent links backward from the
//     latest-ending span to its root, yielding the causal chain that
//     bounded the run (e.g. session -> engine -> cospawn -> deepest
//     tree-launch level -> slowest daemon).
#pragma once

#include <string>
#include <vector>

#include "obs/trace.hpp"
#include "simkernel/stats.hpp"

namespace lmon::obs {

/// Fig. 3 region durations, in seconds (same units as the bench tables).
struct RegionBreakdown {
  double total = 0;        ///< e0_fe_call .. e11_return
  double t_job = 0;        ///< RM job launch
  double t_daemon = 0;     ///< RM daemon bulk launch
  double t_setup = 0;      ///< fabric wire-up (e8..e9)
  double t_collective = 0; ///< handshake collective (bcast + gather)
  double tracing = 0;      ///< RM debug-event handling (ledger)
  double rpdtab = 0;       ///< proctable fetch (ledger)
  double handshake = 0;    ///< FE<->master handshaking share
  double other = 0;        ///< scale-independent engine bookkeeping (ledger)

  /// The LaunchMON-attributed share (Fig. 3's "lmon%" numerator).
  [[nodiscard]] double lmon_overhead() const noexcept {
    return tracing + rpdtab + handshake + other;
  }
};

/// Region decomposition from explicit marks + charges. `prefix` selects the
/// daemon-side mark vocabulary ("be_" for back ends, "mw_" for middleware).
[[nodiscard]] RegionBreakdown extract_regions(const sim::Timeline& marks,
                                              const sim::CostLedger& charges,
                                              const std::string& prefix = "be_");

/// Same, over the marks/charges a Tracer absorbed from Machine::mark() /
/// Machine::charge().
[[nodiscard]] RegionBreakdown extract_regions(const Tracer& tracer,
                                              const std::string& prefix = "be_");

/// The causal chain bounding the capture: starts at the span with the
/// latest end time and follows parent links to the root. Returned
/// root-first. Empty when no spans were recorded.
[[nodiscard]] std::vector<const SpanRecord*> critical_path(
    const Tracer& tracer);

}  // namespace lmon::obs
