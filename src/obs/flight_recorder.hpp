// flight_recorder.hpp - bounded per-daemon event rings for post-mortem
// debugging of fault-injection runs.
//
// Every daemon (keyed by simulated pid) gets a fixed-capacity ring of
// {time, component, message} entries; old entries are overwritten, so the
// ring always holds the *last* N protocol steps before a failure. Tests
// attach a hub to the Machine, and the fault-injection fixtures dump it
// automatically when a test fails (see launch_strategy_test.cpp), turning
// "the 512-node rsh launch timed out" into the actual last steps each
// daemon took.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "simkernel/time.hpp"

namespace lmon::obs {

class FlightRecorder {
 public:
  struct Entry {
    sim::Time at = 0;
    std::string component;
    std::string message;
  };

  explicit FlightRecorder(std::size_t capacity = 128)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void record(sim::Time at, std::string component, std::string message);

  /// Retained entries, oldest first.
  [[nodiscard]] std::vector<Entry> entries() const;
  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Entries overwritten since attach.
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  ///< overwrite position once full
  std::uint64_t dropped_ = 0;
  std::vector<Entry> ring_;
};

/// One ring per simulated pid. Attached to a cluster::Machine; daemons feed
/// it through Machine::flight_record().
class FlightRecorderHub {
 public:
  explicit FlightRecorderHub(std::size_t capacity_per_ring = 128)
      : capacity_(capacity_per_ring) {}

  void record(std::uint64_t pid, sim::Time at, std::string component,
              std::string message) {
    ring(pid).record(at, std::move(component), std::move(message));
  }

  [[nodiscard]] FlightRecorder& ring(std::uint64_t pid);
  [[nodiscard]] const std::map<std::uint64_t, FlightRecorder>& rings() const {
    return rings_;
  }
  [[nodiscard]] bool empty() const noexcept { return rings_.empty(); }

  /// Human-readable dump of every ring, grouped by pid, oldest first -
  /// what the fault-injection fixtures print on failure.
  [[nodiscard]] std::string dump() const;

 private:
  std::size_t capacity_;
  std::map<std::uint64_t, FlightRecorder> rings_;
};

}  // namespace lmon::obs
