// metrics.hpp - counters/gauges/histograms for the simulated stack.
//
// A Metrics registry attached to a cluster::Machine collects protocol-level
// quantities the spans cannot: bytes per link, messages per channel, ICCL
// connect-backoff retries, early-arrival buffer depth, rendezvous chunks
// relayed. Snapshots embed into the golden-schema'd bench --json reports as
// arrays of {name, value} objects, so the *schema* stays stable as
// instruments come and go (only the name set drifts, which the shape
// reducer collapses).
//
// Like the tracer, recording is purely observational: no simulator events,
// no cost charges. Instruments are named hierarchically
// ("net.link.a->b.bytes"); emission is sorted by name, so output is
// deterministic.
//
// Counting disciplines (double-count audit). Multi-hop fabrics make it easy
// to count one payload once per hop and then read the total as traffic
// volume. Every counter below picks exactly one discipline, and new
// instruments must declare theirs:
//
// - Injected-once: incremented at the instant a payload *enters* the plane,
//   never on relay. "iccl.gather_bytes_contributed" counts each rank's
//   contribution exactly once (at Iccl::contribute); summed over the fleet
//   it equals the application-level gather size regardless of tree depth.
// - Per-hop: incremented at every traversal, so the value scales with tree
//   depth by design. "iccl.gather_bytes_relayed"/"iccl.gather_chunks_relayed"
//   count cut-through forwarding work at interior ranks;
//   "net.bytes_total"/"net.link.*" count wire traffic per link. Per-hop ÷
//   injected-once is the fabric's effective relay amplification.
// - Per-endpoint-event: incremented once per protocol event at one endpoint
//   ("iccl.gather_rts_sent" at the announcer, "iccl.gather_cts_sent" at the
//   clearer, "iccl.gather_chunks_received" at every receiver - the receive
//   side of the per-hop pair, root assembly included).
//   "tbon.up_parts"/"tbon.up_part_bytes" count UpPart packets where they
//   are *received*; an interior fold rewrites the payload before any
//   re-flush, so there is no injected-once byte identity to preserve - the
//   pair measures partial-aggregate traffic into endpoints, while
//   "tbon.part_flushes" tallies the early-flush decisions at senders.
// - Occurrence: plain event tallies with no byte meaning
//   ("iccl.gather_drops", "iccl.children_lost", "tbon.part_flushes",
//   "tbon.rounds_reduced").
//
// Thus "bytes a gather moved end-to-end" is gather_bytes_contributed, and
// "bytes the fabric worked to move it" is contributed + relayed; adding
// received-side byte counters on top of these would double-count.
//
// Self-heal instruments (iccl.heal.*). Occurrence counters:
// "iccl.heal.orphaned" (a daemon lost its post-ready parent and started a
// climb), "iccl.heal.reattaches"/"iccl.heal.reattach_retries"/
// "iccl.heal.give_ups" (orphan side of the climb outcome),
// "iccl.heal.adoptions" (adopter side; equals reattaches fleet-wide),
// "iccl.heal.slots_opened"/"iccl.heal.slots_resolved"/
// "iccl.heal.grace_expired" (dead-child adoption slots),
// "iccl.heal.gather_reannounces"/"iccl.heal.gather_resumes"/
// "iccl.heal.gather_resumes_sent" (gather recovery handshakes),
// "iccl.heal.bcast_replays", "iccl.heal.leaves"/
// "iccl.heal.leaves_observed" (elastic shrink). Byte counters
// "iccl.heal.bcast_replay_bytes"/"iccl.heal.gather_requeued_bytes" are
// per-link *re-send* volume (the recovery overhead), NOT injected-once:
// they deliberately re-count payload bytes the normal-path counters
// already saw, so replay-bytes ÷ injected-once bytes reads directly as
// the fault's data-plane overhead ratio.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace lmon::obs {

class Metrics {
 public:
  struct Histogram {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    void observe(double v) noexcept {
      if (count == 0) {
        min = max = v;
      } else {
        if (v < min) min = v;
        if (v > max) max = v;
      }
      count += 1;
      sum += v;
    }
    [[nodiscard]] double mean() const noexcept {
      return count != 0 ? sum / static_cast<double>(count) : 0.0;
    }
  };

  /// Monotonic counter increment.
  void add(const std::string& name, double delta = 1.0) {
    counters_[name] += delta;
  }
  /// Last-write-wins gauge.
  void set_gauge(const std::string& name, double value) {
    gauges_[name] = value;
  }
  /// Distribution sample.
  void observe(const std::string& name, double value) {
    histograms_[name].observe(value);
  }

  [[nodiscard]] double counter(const std::string& name) const {
    auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second;
  }
  [[nodiscard]] double gauge(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }
  [[nodiscard]] const Histogram* histogram(const std::string& name) const {
    auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] const std::map<std::string, double>& counters() const {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, double>& gauges() const {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  void clear() {
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
  }

  /// Deterministic JSON snapshot:
  ///   {"counters": [{"name": ..., "value": ...}, ...],
  ///    "gauges": [...],
  ///    "histograms": [{"name", "count", "sum", "min", "max"}, ...]}
  /// `indent` spaces prefix every emitted line (for embedding in a larger
  /// hand-rolled document).
  [[nodiscard]] std::string to_json(int indent = 0) const;

 private:
  std::map<std::string, double> counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace lmon::obs
