#include "obs/perfetto.hpp"

#include <algorithm>
#include <cstdio>

#include "simkernel/time.hpp"

namespace lmon::obs {

namespace {

/// Track for records not bound to a simulated node (marks, log lines).
constexpr int kSimTrack = 9999;

int track_of(int node) { return node >= 0 ? node : kSimTrack; }

double to_us(sim::Time t) {
  return static_cast<double>(t) / static_cast<double>(sim::kMicrosecond);
}

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3f", v);
  return buf;
}

void escape_into(std::string& out, std::string_view s) {
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void meta_event(std::string& out, const char* kind, int pid,
                std::uint64_t tid, std::string_view name) {
  out += "  {\"name\": \"";
  out += kind;
  out += "\", \"ph\": \"M\", \"pid\": " + std::to_string(pid) +
         ", \"tid\": " + std::to_string(tid) + ", \"args\": {\"name\": \"";
  escape_into(out, name);
  out += "\"}},\n";
}

/// Shared argument block so every X/i event has one JSON shape.
void args_block(std::string& out, SpanId id, SpanId parent,
                std::string_view detail) {
  out += "\"args\": {\"id\": " + std::to_string(id) +
         ", \"parent\": " + std::to_string(parent) + ", \"detail\": \"";
  escape_into(out, detail);
  out += "\"}";
}

}  // namespace

std::string to_chrome_trace_json(const Tracer& tracer) {
  // Open spans are clamped to the latest recorded timestamp so the trace
  // stays well-formed even when a component outlived the capture.
  sim::Time latest = 0;
  for (const SpanRecord& s : tracer.spans()) {
    latest = std::max(latest, s.open() ? s.begin : s.end);
  }
  for (const InstantRecord& i : tracer.instants()) {
    latest = std::max(latest, i.at);
  }

  std::string out = "{\n\"displayTimeUnit\": \"ms\",\n\"traceEvents\": [\n";

  // Track/lane names. Records may reference nodes never explicitly named;
  // collect those too so every track gets a label.
  std::map<int, std::string> tracks = tracer.track_names();
  for (const SpanRecord& s : tracer.spans()) {
    tracks.emplace(track_of(s.node), "node" + std::to_string(s.node));
  }
  for (const InstantRecord& i : tracer.instants()) {
    tracks.emplace(track_of(i.node), "node" + std::to_string(i.node));
  }
  tracks[kSimTrack] = "sim";
  for (const auto& [node, name] : tracks) {
    meta_event(out, "process_name", track_of(node), 0, name);
  }
  for (const auto& [key, name] : tracer.lane_names()) {
    meta_event(out, "thread_name", track_of(key.first), key.second, name);
  }

  for (const SpanRecord& s : tracer.spans()) {
    const sim::Time end = s.open() ? latest : s.end;
    out += "  {\"name\": \"";
    escape_into(out, s.name);
    out += "\", \"cat\": \"";
    escape_into(out, s.category);
    out += "\", \"ph\": \"X\", \"ts\": " + num(to_us(s.begin)) +
           ", \"dur\": " + num(to_us(end - s.begin)) +
           ", \"pid\": " + std::to_string(track_of(s.node)) +
           ", \"tid\": " + std::to_string(s.pid) + ", ";
    args_block(out, s.id, s.parent,
               s.open() ? s.detail + " [open]" : s.detail);
    out += "},\n";
  }

  for (const InstantRecord& i : tracer.instants()) {
    out += "  {\"name\": \"";
    escape_into(out, i.name);
    out += "\", \"cat\": \"";
    escape_into(out, i.category);
    out += "\", \"ph\": \"i\", \"s\": \"t\", \"ts\": " + num(to_us(i.at)) +
           ", \"pid\": " + std::to_string(track_of(i.node)) +
           ", \"tid\": " + std::to_string(i.pid) + ", ";
    args_block(out, kNoSpan, i.parent, i.detail);
    out += "},\n";
  }

  // Trailing comma is legal in the trace-event format, but keep the
  // document strict JSON for the golden-schema gate.
  if (out.size() >= 2 && out[out.size() - 2] == ',') {
    out.erase(out.size() - 2, 1);
  }
  out += "]\n}\n";
  return out;
}

Status write_chrome_trace(const Tracer& tracer, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status(Rc::Esys, "cannot open trace output: " + path);
  }
  const std::string doc = to_chrome_trace_json(tracer);
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  std::fclose(f);
  if (written != doc.size()) {
    return Status(Rc::Esys, "short write to trace output: " + path);
  }
  return Status::ok();
}

}  // namespace lmon::obs
