#include "obs/trace.hpp"

namespace lmon::obs {

SpanId Tracer::begin_span(std::string name, std::string category, int node,
                          std::uint64_t pid, SpanId parent,
                          std::string detail) {
  SpanRecord rec;
  rec.id = static_cast<SpanId>(spans_.size() + 1);
  rec.parent = parent;
  rec.name = std::move(name);
  rec.category = std::move(category);
  rec.detail = std::move(detail);
  rec.node = node;
  rec.pid = pid;
  rec.begin = sim_.now();
  spans_.push_back(std::move(rec));
  return spans_.back().id;
}

void Tracer::end_span(SpanId id) {
  if (id == kNoSpan || id > spans_.size()) return;
  SpanRecord& rec = spans_[id - 1];
  if (!rec.open()) return;
  rec.end = sim_.now();
}

void Tracer::end_span(SpanId id, std::string detail) {
  if (id == kNoSpan || id > spans_.size()) return;
  spans_[id - 1].detail = std::move(detail);
  end_span(id);
}

void Tracer::instant(std::string name, std::string category, int node,
                     std::uint64_t pid, SpanId parent, std::string detail) {
  InstantRecord rec;
  rec.name = std::move(name);
  rec.category = std::move(category);
  rec.detail = std::move(detail);
  rec.node = node;
  rec.pid = pid;
  rec.at = sim_.now();
  rec.parent = parent;
  instants_.push_back(std::move(rec));
}

void Tracer::mark(const std::string& label) {
  marks_.mark(label, sim_.now());
  instant(label, "mark", -1, 0);
}

void Tracer::charge(const std::string& label, sim::Time amount) {
  charges_.charge(label, amount);
}

void Tracer::log_line(sim::LogLevel lv, sim::Time at,
                      std::string_view component, std::string_view message) {
  InstantRecord rec;
  rec.name = std::string(component);
  rec.category = "log";
  rec.detail = std::string(message);
  rec.at = at;
  rec.pid = static_cast<std::uint64_t>(lv);  // lane per level on the log track
  instants_.push_back(std::move(rec));
}

const SpanRecord* Tracer::span(SpanId id) const {
  if (id == kNoSpan || id > spans_.size()) return nullptr;
  return &spans_[id - 1];
}

const SpanRecord* Tracer::find_span(std::string_view name) const {
  for (const SpanRecord& s : spans_) {
    if (s.name == name) return &s;
  }
  return nullptr;
}

LogBridge::LogBridge(Tracer& tracer) {
  sim::Log::set_tap([&tracer](sim::LogLevel lv, sim::Time at,
                              std::string_view component,
                              std::string_view message) {
    tracer.log_line(lv, at, component, message);
  });
}

LogBridge::~LogBridge() { sim::Log::set_tap(nullptr); }

}  // namespace lmon::obs
