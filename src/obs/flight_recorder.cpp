#include "obs/flight_recorder.hpp"

#include <cstdio>
#include <utility>

namespace lmon::obs {

void FlightRecorder::record(sim::Time at, std::string component,
                            std::string message) {
  Entry e{at, std::move(component), std::move(message)};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
    return;
  }
  ring_[next_] = std::move(e);
  next_ = (next_ + 1) % capacity_;
  ++dropped_;
}

std::vector<FlightRecorder::Entry> FlightRecorder::entries() const {
  std::vector<Entry> out;
  out.reserve(ring_.size());
  // Once the ring wrapped, next_ points at the oldest entry.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(next_ + i) % ring_.size()]);
  }
  return out;
}

FlightRecorder& FlightRecorderHub::ring(std::uint64_t pid) {
  auto it = rings_.find(pid);
  if (it == rings_.end()) {
    it = rings_.emplace(pid, FlightRecorder(capacity_)).first;
  }
  return it->second;
}

std::string FlightRecorderHub::dump() const {
  std::string out;
  for (const auto& [pid, ring] : rings_) {
    out += "=== flight recorder pid " + std::to_string(pid);
    if (ring.dropped() > 0) {
      out += " (" + std::to_string(ring.dropped()) + " older entries dropped)";
    }
    out += " ===\n";
    for (const FlightRecorder::Entry& e : ring.entries()) {
      char stamp[32];
      std::snprintf(stamp, sizeof stamp, "[%12.6fs] ", sim::to_seconds(e.at));
      out += stamp;
      out += e.component;
      out += ": ";
      out += e.message;
      out += '\n';
    }
  }
  return out;
}

}  // namespace lmon::obs
