#include "obs/critical_path.hpp"

#include <algorithm>

#include "simkernel/time.hpp"

namespace lmon::obs {

RegionBreakdown extract_regions(const sim::Timeline& marks,
                                const sim::CostLedger& charges,
                                const std::string& prefix) {
  // This arithmetic is bench_fig3_launchspawn's, verbatim: the integration
  // gate (trace_session_test) asserts exact equality against the bench's
  // own Measurement, so keep the two in lock step.
  RegionBreakdown r;
  r.total = sim::to_seconds(marks.between("e0_fe_call", "e11_return"));
  r.t_job = sim::to_seconds(marks.between("t_job_begin", "t_job_end"));
  r.t_daemon =
      sim::to_seconds(marks.between("t_daemon_begin", "t_daemon_end"));
  r.t_setup = sim::to_seconds(
      marks.between(prefix + "e8_setup_begin", prefix + "e9_setup_done"));
  r.t_collective = sim::to_seconds(marks.between(
      prefix + "t_collective_begin", prefix + "t_collective_end"));
  r.tracing = sim::to_seconds(charges.total("tracing"));
  r.rpdtab = sim::to_seconds(charges.total("rpdtab_fetch"));
  r.handshake = sim::to_seconds(
      marks.between(prefix + "e10_ready", "e11_return") +
      marks.between("e7_handshake_begin", prefix + "t_collective_begin") -
      marks.between(prefix + "e8_setup_begin", prefix + "e9_setup_done"));
  if (r.handshake < 0) r.handshake = 0;
  r.other = sim::to_seconds(charges.total("other"));
  return r;
}

RegionBreakdown extract_regions(const Tracer& tracer,
                                const std::string& prefix) {
  return extract_regions(tracer.marks(), tracer.charges(), prefix);
}

std::vector<const SpanRecord*> critical_path(const Tracer& tracer) {
  const auto& spans = tracer.spans();
  if (spans.empty()) return {};

  // Latest end bounds the run; ties resolve to the earliest-recorded span
  // (deterministic).
  const SpanRecord* tail = nullptr;
  sim::Time tail_end = -1;
  for (const SpanRecord& s : spans) {
    if (s.open()) continue;
    if (s.end > tail_end) {
      tail_end = s.end;
      tail = &s;
    }
  }
  if (tail == nullptr) tail = &spans.front();

  std::vector<const SpanRecord*> chain;
  for (const SpanRecord* s = tail; s != nullptr;
       s = tracer.span(s->parent)) {
    chain.push_back(s);
    if (chain.size() > spans.size()) break;  // cycle guard (corrupt links)
  }
  std::reverse(chain.begin(), chain.end());
  return chain;
}

}  // namespace lmon::obs
