// trace.hpp - span/event tracer keyed on simulated time.
//
// The observability plane for the whole stack: FE sessions, the engine,
// launch strategies, daemons, ICCL collectives, TBON packet flow and raw
// channel sends all record spans (durations with causal parent links) and
// instants (point events) here. Everything is keyed on sim::Time, and the
// simulator is deterministic, so an exported trace is a replayable artifact:
// the same seed produces the same trace bit-for-bit.
//
// Instrumentation is strictly observational. Recording never schedules
// simulator events and never charges cost, so attaching a Tracer does not
// perturb simulated timings - a traced run and an untraced run of the same
// seed measure identical e0..e11 timelines (asserted by
// tests/integration/trace_session_test.cpp).
//
// Cross-process causality uses *anchors* instead of wire-format changes:
// a parent registers its span under a well-known key ("spawn:<session>:
// <host>"), and the child process looks the key up when its own span
// begins. The simulator's monotonic event order guarantees the anchor is
// set before the child can observe it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "simkernel/log.hpp"
#include "simkernel/simulator.hpp"
#include "simkernel/stats.hpp"

namespace lmon::obs {

using SpanId = std::uint64_t;
inline constexpr SpanId kNoSpan = 0;

/// One duration with a causal parent. `node`/`pid` place the span on the
/// exporter's track (node) and lane (pid); -1/0 mean "not process-bound"
/// (e.g. the log bridge).
struct SpanRecord {
  SpanId id = kNoSpan;
  SpanId parent = kNoSpan;
  std::string name;
  std::string category;
  std::string detail;  ///< free-form annotation, e.g. "hosts=8"
  int node = -1;
  std::uint64_t pid = 0;
  sim::Time begin = 0;
  sim::Time end = -1;  ///< -1 while open

  [[nodiscard]] bool open() const noexcept { return end < begin; }
  [[nodiscard]] sim::Time duration() const noexcept {
    return open() ? 0 : end - begin;
  }
};

/// A point event (packet arrival, retry, chunk forward, log line).
struct InstantRecord {
  std::string name;
  std::string category;
  std::string detail;
  int node = -1;
  std::uint64_t pid = 0;
  sim::Time at = 0;
  SpanId parent = kNoSpan;
};

class Tracer {
 public:
  explicit Tracer(sim::Simulator& sim) : sim_(sim) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // --- spans ---------------------------------------------------------------
  SpanId begin_span(std::string name, std::string category, int node,
                    std::uint64_t pid, SpanId parent = kNoSpan,
                    std::string detail = {});
  /// Closes the span at the current simulated time. Unknown/closed ids are
  /// ignored (a span may outlive the component that opened it).
  void end_span(SpanId id);
  void end_span(SpanId id, std::string detail);

  void instant(std::string name, std::string category, int node,
               std::uint64_t pid, SpanId parent = kNoSpan,
               std::string detail = {});

  // --- timeline absorption -------------------------------------------------
  /// Machine::mark() forwards every critical-path label (the paper's
  /// e0..e11 vocabulary) here: recorded both as a Timeline mark (for
  /// critical-path extraction) and as an instant (for the exported trace).
  void mark(const std::string& label);
  /// Machine::charge() mirror (tracing/rpdtab_fetch/other region costs).
  void charge(const std::string& label, sim::Time amount);
  [[nodiscard]] const sim::Timeline& marks() const noexcept { return marks_; }
  [[nodiscard]] const sim::CostLedger& charges() const noexcept {
    return charges_;
  }

  // --- anchors -------------------------------------------------------------
  void set_anchor(const std::string& key, SpanId id) { anchors_[key] = id; }
  [[nodiscard]] SpanId anchor(const std::string& key) const {
    auto it = anchors_.find(key);
    return it == anchors_.end() ? kNoSpan : it->second;
  }

  // --- exporter metadata ---------------------------------------------------
  void name_track(int node, std::string name) {
    track_names_[node] = std::move(name);
  }
  void name_lane(int node, std::uint64_t pid, std::string name) {
    lane_names_[{node, pid}] = std::move(name);
  }
  [[nodiscard]] const std::map<int, std::string>& track_names() const {
    return track_names_;
  }
  [[nodiscard]] const std::map<std::pair<int, std::uint64_t>, std::string>&
  lane_names() const {
    return lane_names_;
  }

  // --- log bridge ----------------------------------------------------------
  /// Routes one sim::Log line into the event stream (see LogBridge): the
  /// text log and the spans share the timestamp/component vocabulary.
  void log_line(sim::LogLevel lv, sim::Time at, std::string_view component,
                std::string_view message);

  // --- inspection ----------------------------------------------------------
  [[nodiscard]] const std::vector<SpanRecord>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] const std::vector<InstantRecord>& instants() const noexcept {
    return instants_;
  }
  /// nullptr for kNoSpan/unknown ids.
  [[nodiscard]] const SpanRecord* span(SpanId id) const;
  /// First span with this exact name (nullptr if absent).
  [[nodiscard]] const SpanRecord* find_span(std::string_view name) const;
  [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }

 private:
  sim::Simulator& sim_;
  std::vector<SpanRecord> spans_;  ///< id == index + 1 (append-only)
  std::vector<InstantRecord> instants_;
  std::map<std::string, SpanId> anchors_;
  std::map<int, std::string> track_names_;
  std::map<std::pair<int, std::uint64_t>, std::string> lane_names_;
  sim::Timeline marks_;
  sim::CostLedger charges_;
};

/// RAII bridge: while alive, every sim::Log line (at any level, even with
/// LMON_SIM_LOG unset) is mirrored into `tracer` as a "log" instant. The
/// previous tap is restored on destruction.
class LogBridge {
 public:
  explicit LogBridge(Tracer& tracer);
  ~LogBridge();

  LogBridge(const LogBridge&) = delete;
  LogBridge& operator=(const LogBridge&) = delete;
};

}  // namespace lmon::obs
