// perfetto.hpp - Chrome trace-event JSON export for obs::Tracer.
//
// Emits the legacy Chrome trace-event format, which Perfetto
// (https://ui.perfetto.dev) and chrome://tracing both load directly:
//   * one process track per simulated node (pid = node id, named after the
//     hostname),
//   * one thread lane per simulated process on that node (tid = sim pid),
//   * complete events ("ph":"X") for closed spans, instant events
//     ("ph":"i") for point events and timeline marks, and metadata events
//     ("ph":"M") carrying track/lane names.
// Timestamps are microseconds of simulated time. The simulator is
// deterministic, so the exported file is a replayable artifact: re-running
// the same seed regenerates it byte-for-byte.
#pragma once

#include <string>

#include "common/status.hpp"
#include "obs/trace.hpp"

namespace lmon::obs {

/// The full trace document (see header comment for the event layout).
[[nodiscard]] std::string to_chrome_trace_json(const Tracer& tracer);

/// Writes to_chrome_trace_json() to `path` (truncating).
Status write_chrome_trace(const Tracer& tracer, const std::string& path);

}  // namespace lmon::obs
