#include "obs/metrics.hpp"

#include <cstdio>

namespace lmon::obs {

namespace {

std::string num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string Metrics::to_json(int indent) const {
  const std::string pad(static_cast<std::size_t>(indent), ' ');
  std::string out = "{\n";

  out += pad + "  \"counters\": [";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) out += ",";
    out += "\n" + pad + "    {\"name\": \"" + name +
           "\", \"value\": " + num(value) + "}";
    first = false;
  }
  out += first ? "],\n" : "\n" + pad + "  ],\n";

  out += pad + "  \"gauges\": [";
  first = true;
  for (const auto& [name, value] : gauges_) {
    if (!first) out += ",";
    out += "\n" + pad + "    {\"name\": \"" + name +
           "\", \"value\": " + num(value) + "}";
    first = false;
  }
  out += first ? "],\n" : "\n" + pad + "  ],\n";

  out += pad + "  \"histograms\": [";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    out += "\n" + pad + "    {\"name\": \"" + name +
           "\", \"count\": " + std::to_string(h.count) +
           ", \"sum\": " + num(h.sum) + ", \"min\": " + num(h.min) +
           ", \"max\": " + num(h.max) + "}";
    first = false;
  }
  out += first ? "]\n" : "\n" + pad + "  ]\n";

  out += pad + "}";
  return out;
}

}  // namespace lmon::obs
