// rng.hpp - deterministic pseudo-random numbers (splitmix64 core).
//
// Used for the stochastic components of the cost model (fork jitter, network
// jitter) and for the synthetic workloads (simulated stack traces, /proc
// statistics). Deliberately not <random>: identical streams across platforms
// and standard-library versions matter more than statistical sophistication.
#pragma once

#include <cstdint>

namespace lmon::sim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0) noexcept : state_(seed + kGamma) {}

  /// Uniform 64-bit value.
  std::uint64_t next() noexcept;

  /// Uniform in [0, bound); bound == 0 returns 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Approximately normal(mean, sigma) via the sum of uniforms (Irwin-Hall,
  /// n=12); tails are clipped to +/- 6 sigma which is fine for cost jitter.
  double normal(double mean, double sigma) noexcept;

  /// Derives an independent stream (e.g. one per node) from this one.
  Rng fork() noexcept { return Rng(next()); }

 private:
  static constexpr std::uint64_t kGamma = 0x9E3779B97F4A7C15ULL;
  std::uint64_t state_;
};

}  // namespace lmon::sim
