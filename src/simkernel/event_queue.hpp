// event_queue.hpp - the pending-event set of the discrete-event simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "simkernel/time.hpp"

namespace lmon::sim {

/// Opaque handle to a scheduled event; used to cancel timers.
struct EventId {
  std::uint64_t seq = 0;
  friend bool operator==(EventId a, EventId b) { return a.seq == b.seq; }
};

/// Min-heap of timestamped callbacks with stable FIFO ordering for equal
/// timestamps. Cancellation is lazy: cancelled ids are skipped at pop time,
/// which keeps cancel O(1) and is safe because event ids are never reused.
class EventQueue {
 public:
  EventId push(Time when, std::function<void()> fn);

  /// Marks an event so it will be skipped when popped. Cancelling an already
  /// fired or unknown event is a no-op.
  void cancel(EventId id);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t size() const;

  /// Timestamp of the next live event; only valid when !empty().
  [[nodiscard]] Time next_time() const;

  /// Removes and returns the next live event's callback, advancing past any
  /// cancelled entries. Precondition: !empty().
  std::pair<Time, std::function<void()>> pop();

 private:
  struct Entry {
    Time when;
    std::uint64_t seq;
    // Heap entries hold an index into pending_ rather than the callback so
    // that cancel() can drop the closure immediately.
    bool operator>(const Entry& o) const {
      return when != o.when ? when > o.when : seq > o.seq;
    }
  };

  void skip_cancelled() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  mutable std::unordered_map<std::uint64_t, std::function<void()>> pending_;
  std::uint64_t next_seq_ = 1;
};

}  // namespace lmon::sim
