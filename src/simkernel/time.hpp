// time.hpp - simulated time.
//
// All durations in the simulation are integral nanoseconds. Integral time
// keeps event ordering exact and runs identical on every host, which is the
// property that makes the benchmark harnesses deterministic (a re-run of any
// experiment reproduces the same microsecond-level numbers).
#pragma once

#include <cstdint>
#include <string>

namespace lmon::sim {

/// Simulated time or duration, in nanoseconds since simulation start.
using Time = std::int64_t;

inline constexpr Time kNanosecond = 1;
inline constexpr Time kMicrosecond = 1000 * kNanosecond;
inline constexpr Time kMillisecond = 1000 * kMicrosecond;
inline constexpr Time kSecond = 1000 * kMillisecond;

/// 1.5ms -> ms(1.5); fractional arguments are fine, result is truncated to ns.
constexpr Time ns(double v) { return static_cast<Time>(v); }
constexpr Time us(double v) { return static_cast<Time>(v * kMicrosecond); }
constexpr Time ms(double v) { return static_cast<Time>(v * kMillisecond); }
constexpr Time seconds(double v) { return static_cast<Time>(v * kSecond); }

/// Duration expressed in (floating) seconds, for reporting.
constexpr double to_seconds(Time t) {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}
constexpr double to_ms(Time t) {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

/// "1.234s" / "5.6ms" / "780us" - human-readable rendering for logs.
std::string format_time(Time t);

}  // namespace lmon::sim
