#include "simkernel/stats.hpp"

#include <cmath>

namespace lmon::sim {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

void Timeline::mark(const std::string& name, Time when) {
  marks_[name] = when;
}

bool Timeline::has(const std::string& name) const {
  return marks_.count(name) != 0;
}

Time Timeline::at(const std::string& name) const {
  auto it = marks_.find(name);
  return it == marks_.end() ? 0 : it->second;
}

Time Timeline::between(const std::string& a, const std::string& b) const {
  if (!has(a) || !has(b)) return 0;
  return at(b) - at(a);
}

void CostLedger::charge(const std::string& name, Time amount) {
  auto& e = entries_[name];
  e.first += amount;
  e.second += 1;
}

Time CostLedger::total(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.first;
}

std::size_t CostLedger::events(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.second;
}

}  // namespace lmon::sim
