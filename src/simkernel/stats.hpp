// stats.hpp - small statistics accumulators used by the bench harnesses and
// by the instrumented LaunchMON engine (region cost attribution).
#pragma once

#include <algorithm>
#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "simkernel/time.hpp"

namespace lmon::sim {

/// Streaming min/max/mean/stddev accumulator (Welford).
class Accumulator {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sum() const noexcept { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Named timestamps recorded along an operation's critical path.
///
/// The instrumented engine marks the paper's events e0..e11 on a Timeline;
/// bench_fig3 then reads the region durations straight off of it.
class Timeline {
 public:
  void mark(const std::string& name, Time when);

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] Time at(const std::string& name) const;

  /// at(b) - at(a); returns 0 and flags missing marks via has().
  [[nodiscard]] Time between(const std::string& a, const std::string& b) const;

  [[nodiscard]] const std::map<std::string, Time>& marks() const {
    return marks_;
  }
  void clear() { marks_.clear(); }

 private:
  std::map<std::string, Time> marks_;
};

/// Named duration counters, e.g. accumulated debug-event handler time.
class CostLedger {
 public:
  void charge(const std::string& name, Time amount);
  [[nodiscard]] Time total(const std::string& name) const;
  [[nodiscard]] std::size_t events(const std::string& name) const;
  [[nodiscard]] const std::map<std::string, std::pair<Time, std::size_t>>&
  entries() const {
    return entries_;
  }
  void clear() { entries_.clear(); }

 private:
  std::map<std::string, std::pair<Time, std::size_t>> entries_;
};

}  // namespace lmon::sim
