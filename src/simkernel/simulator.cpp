#include "simkernel/simulator.hpp"

#include <cassert>
#include <stdexcept>

namespace lmon::sim {

Simulator::Simulator(std::uint64_t seed) : rng_(seed) {}

EventId Simulator::schedule(Time delay, std::function<void()> fn) {
  if (delay < 0) delay = 0;
  return queue_.push(now_ + delay, std::move(fn));
}

EventId Simulator::schedule_at(Time when, std::function<void()> fn) {
  if (when < now_) when = now_;
  return queue_.push(when, std::move(fn));
}

std::size_t Simulator::run(Time until) {
  std::size_t count = 0;
  while (!queue_.empty() && queue_.next_time() <= until) {
    auto [when, fn] = queue_.pop();
    assert(when >= now_ && "time must be monotonic");
    now_ = when;
    fn();
    ++count;
    ++executed_;
    if (event_limit_ != 0 && count > event_limit_) {
      throw std::runtime_error(
          "Simulator event limit exceeded: likely a protocol livelock");
    }
  }
  return count;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [when, fn] = queue_.pop();
  now_ = when;
  fn();
  ++executed_;
  return true;
}

}  // namespace lmon::sim
