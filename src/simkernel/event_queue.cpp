#include "simkernel/event_queue.hpp"

#include <cassert>

namespace lmon::sim {

EventId EventQueue::push(Time when, std::function<void()> fn) {
  const std::uint64_t seq = next_seq_++;
  heap_.push(Entry{when, seq});
  pending_.emplace(seq, std::move(fn));
  return EventId{seq};
}

void EventQueue::cancel(EventId id) { pending_.erase(id.seq); }

void EventQueue::skip_cancelled() const {
  while (!heap_.empty() && pending_.find(heap_.top().seq) == pending_.end()) {
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  skip_cancelled();
  return heap_.empty();
}

std::size_t EventQueue::size() const { return pending_.size(); }

Time EventQueue::next_time() const {
  skip_cancelled();
  assert(!heap_.empty());
  return heap_.top().when;
}

std::pair<Time, std::function<void()>> EventQueue::pop() {
  skip_cancelled();
  assert(!heap_.empty());
  const Entry e = heap_.top();
  heap_.pop();
  auto it = pending_.find(e.seq);
  assert(it != pending_.end());
  std::function<void()> fn = std::move(it->second);
  pending_.erase(it);
  return {e.when, std::move(fn)};
}

}  // namespace lmon::sim
