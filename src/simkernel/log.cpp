#include "simkernel/log.hpp"

#include <cstdio>
#include <cstdlib>

namespace lmon::sim {

namespace {

Log::Sink& g_sink() {
  static Log::Sink sink;
  return sink;
}

Log::Sink& g_tap() {
  static Log::Sink tap;
  return tap;
}

void default_sink(LogLevel, Time now, std::string_view component,
                  std::string_view message) {
  std::fprintf(stderr, "[%12.6fs] %-14.*s %.*s\n", to_seconds(now),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

LogLevel g_level = [] {
  const char* env = std::getenv("LMON_SIM_LOG");
  if (env == nullptr) return LogLevel::Off;
  if (auto lv = parse_log_level(env)) return *lv;
  // An unrecognised value almost always means the user *wanted* logging;
  // silently running quiet would hide that mistake.
  std::fprintf(stderr,
               "lmon: unknown LMON_SIM_LOG value '%s' "
               "(expected debug|info|warn|off); logging disabled\n",
               env);
  return LogLevel::Off;
}();

}  // namespace

std::optional<LogLevel> parse_log_level(std::string_view text) {
  if (text == "debug") return LogLevel::Debug;
  if (text == "info") return LogLevel::Info;
  if (text == "warn") return LogLevel::Warn;
  if (text == "off" || text == "none" || text == "0" || text.empty()) {
    return LogLevel::Off;
  }
  return std::nullopt;
}

LogLevel Log::level() { return g_level; }
void Log::set_level(LogLevel lv) { g_level = lv; }

void Log::set_sink(Sink sink) { g_sink() = std::move(sink); }

void Log::set_tap(Sink tap) { g_tap() = std::move(tap); }
bool Log::has_tap() { return static_cast<bool>(g_tap()); }

void Log::write(LogLevel lv, Time now, std::string_view component,
                std::string_view message) {
  if (lv <= g_level) {
    if (g_sink()) {
      g_sink()(lv, now, component, message);
    } else {
      default_sink(lv, now, component, message);
    }
  }
  if (g_tap()) g_tap()(lv, now, component, message);
}

std::string format_time(Time t) {
  char buf[64];
  if (t >= kSecond) {
    std::snprintf(buf, sizeof buf, "%.3fs", to_seconds(t));
  } else if (t >= kMillisecond) {
    std::snprintf(buf, sizeof buf, "%.3fms", to_ms(t));
  } else {
    std::snprintf(buf, sizeof buf, "%lldus",
                  static_cast<long long>(t / kMicrosecond));
  }
  return buf;
}

}  // namespace lmon::sim
