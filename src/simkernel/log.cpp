#include "simkernel/log.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace lmon::sim {

namespace {

LogLevel g_level = [] {
  const char* env = std::getenv("LMON_SIM_LOG");
  if (env == nullptr) return LogLevel::Off;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  return LogLevel::Off;
}();

}  // namespace

LogLevel Log::level() { return g_level; }
void Log::set_level(LogLevel lv) { g_level = lv; }

void Log::write(LogLevel, Time now, std::string_view component,
                std::string_view message) {
  std::fprintf(stderr, "[%12.6fs] %-14.*s %.*s\n", to_seconds(now),
               static_cast<int>(component.size()), component.data(),
               static_cast<int>(message.size()), message.data());
}

std::string format_time(Time t) {
  char buf[64];
  if (t >= kSecond) {
    std::snprintf(buf, sizeof buf, "%.3fs", to_seconds(t));
  } else if (t >= kMillisecond) {
    std::snprintf(buf, sizeof buf, "%.3fms", to_ms(t));
  } else {
    std::snprintf(buf, sizeof buf, "%lldus",
                  static_cast<long long>(t / kMicrosecond));
  }
  return buf;
}

}  // namespace lmon::sim
