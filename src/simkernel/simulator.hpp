// simulator.hpp - single-threaded deterministic discrete-event simulator.
//
// The whole reproduction runs inside one Simulator: cluster nodes, processes,
// the resource manager, LaunchMON components and the tools are all actors
// whose interactions are mediated by scheduled events. Wall-clock time plays
// no role; "measured" times in the benches are differences of sim timestamps.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <string>

#include "simkernel/event_queue.hpp"
#include "simkernel/rng.hpp"
#include "simkernel/time.hpp"

namespace lmon::sim {

class Simulator {
 public:
  /// `seed` drives every stochastic cost draw in the simulation; two runs
  /// with the same seed produce bit-identical results.
  explicit Simulator(std::uint64_t seed = 0x1a57c40eULL);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules `fn` to run at now()+delay. Negative delays are clamped to 0
  /// (events never run in the past).
  EventId schedule(Time delay, std::function<void()> fn);

  /// Schedules at an absolute timestamp (>= now()).
  EventId schedule_at(Time when, std::function<void()> fn);

  void cancel(EventId id) { queue_.cancel(id); }

  /// Runs events until the queue drains or `until` is passed. Returns the
  /// number of events executed.
  std::size_t run(Time until = std::numeric_limits<Time>::max());

  /// Executes exactly one event if available; returns false when idle.
  bool step();

  [[nodiscard]] bool idle() const { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::size_t executed_events() const { return executed_; }

  [[nodiscard]] Rng& rng() noexcept { return rng_; }

  /// Safety valve for runaway protocols: run() aborts (via assert/throw) if
  /// more than this many events execute in one call. 0 disables the check.
  void set_event_limit(std::size_t limit) { event_limit_ = limit; }

 private:
  Time now_ = 0;
  EventQueue queue_;
  Rng rng_;
  std::size_t executed_ = 0;
  std::size_t event_limit_ = 0;
};

}  // namespace lmon::sim
