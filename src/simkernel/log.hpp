// log.hpp - simulation trace logging.
//
// Off by default so benches run quietly; enable with LMON_SIM_LOG=debug (or
// info/warn) to watch protocol traffic with simulated timestamps, which is
// the main debugging aid for distributed-protocol issues in this repo.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

#include "simkernel/time.hpp"

namespace lmon::sim {

enum class LogLevel { Off = 0, Warn = 1, Info = 2, Debug = 3 };

/// Global log configuration (read once from the environment, overridable in
/// tests). The simulator is single-threaded so no synchronization is needed.
class Log {
 public:
  static LogLevel level();
  static void set_level(LogLevel lv);

  /// Emits "[ 1.234567s] <component> message" to stderr if `lv` is enabled.
  static void write(LogLevel lv, Time now, std::string_view component,
                    std::string_view message);

  static bool enabled(LogLevel lv) { return lv <= level(); }
};

/// Streaming helper: LMON_SIM_LOG_AT(Debug, now, "rm") << "launching " << n;
class LogLine {
 public:
  LogLine(LogLevel lv, Time now, std::string_view component)
      : lv_(lv), now_(now), component_(component) {}
  ~LogLine() {
    if (Log::enabled(lv_)) Log::write(lv_, now_, component_, oss_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (Log::enabled(lv_)) oss_ << v;
    return *this;
  }

 private:
  LogLevel lv_;
  Time now_;
  std::string component_;
  std::ostringstream oss_;
};

}  // namespace lmon::sim
