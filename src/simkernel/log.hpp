// log.hpp - simulation trace logging.
//
// Off by default so benches run quietly; enable with LMON_SIM_LOG=debug (or
// info/warn) to watch protocol traffic with simulated timestamps, which is
// the main debugging aid for distributed-protocol issues in this repo.
//
// Two attachment points beyond the level gate:
//   * the *sink* replaces the stderr formatter (tests capture and assert on
//     log output instead of scraping stderr); it only sees level-passing
//     lines.
//   * the *tap* observes every line regardless of level - obs::LogBridge
//     uses it to fold the text log into the structured trace stream so log
//     lines land on the same simulated-time axis as spans and metrics.
#pragma once

#include <functional>
#include <optional>
#include <sstream>
#include <string>
#include <string_view>

#include "simkernel/time.hpp"

namespace lmon::sim {

enum class LogLevel { Off = 0, Warn = 1, Info = 2, Debug = 3 };

/// Global log configuration (read once from the environment, overridable in
/// tests). The simulator is single-threaded so no synchronization is needed.
class Log {
 public:
  using Sink =
      std::function<void(LogLevel, Time, std::string_view /*component*/,
                         std::string_view /*message*/)>;

  static LogLevel level();
  static void set_level(LogLevel lv);

  /// Replaces the stderr formatter; nullptr restores the default. The sink
  /// only receives lines that pass the level gate.
  static void set_sink(Sink sink);

  /// Observer that sees *every* line, independent of level. At most one tap
  /// at a time; nullptr detaches. Owned by obs::LogBridge in practice.
  static void set_tap(Sink tap);
  static bool has_tap();

  /// Routes "[ 1.234567s] <component> message" to the sink (stderr by
  /// default) when `lv` passes the level gate, and to the tap always.
  static void write(LogLevel lv, Time now, std::string_view component,
                    std::string_view message);

  /// True when a line at `lv` would reach the sink or the tap - i.e. when
  /// building the message string is worth the cost.
  static bool enabled(LogLevel lv) { return lv <= level() || has_tap(); }
};

/// Maps an LMON_SIM_LOG value to a level: debug/info/warn/off/none/0 (and
/// the empty string) are recognised; anything else is nullopt so callers can
/// warn instead of silently disabling logging.
std::optional<LogLevel> parse_log_level(std::string_view text);

/// Streaming helper: LMON_SIM_LOG_AT(Debug, now, "rm") << "launching " << n;
class LogLine {
 public:
  LogLine(LogLevel lv, Time now, std::string_view component)
      : lv_(lv), now_(now), component_(component) {}
  ~LogLine() {
    if (Log::enabled(lv_)) Log::write(lv_, now_, component_, oss_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (Log::enabled(lv_)) oss_ << v;
    return *this;
  }

 private:
  LogLevel lv_;
  Time now_;
  std::string component_;
  std::ostringstream oss_;
};

}  // namespace lmon::sim
