#include "simkernel/rng.hpp"

namespace lmon::sim {

std::uint64_t Rng::next() noexcept {
  state_ += kGamma;
  std::uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Modulo bias is negligible for the small bounds used here.
  return next() % bound;
}

double Rng::next_double() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

double Rng::normal(double mean, double sigma) noexcept {
  double sum = 0.0;
  for (int i = 0; i < 12; ++i) sum += next_double();
  return mean + sigma * (sum - 6.0);
}

}  // namespace lmon::sim
