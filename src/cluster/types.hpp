// types.hpp - basic identifiers for the simulated cluster.
#pragma once

#include <cstdint>
#include <string>

namespace lmon::cluster {

/// Process id, unique across the whole simulated machine (not per node, which
/// keeps RPDTAB entries unambiguous without (host, pid) pairs in tests).
using Pid = std::int64_t;
inline constexpr Pid kInvalidPid = -1;

/// Index of a node within its Machine.
using NodeId = std::int32_t;
inline constexpr NodeId kInvalidNode = -1;

/// TCP-like port number on a node.
using Port = std::uint16_t;

/// Well-known ports used by the substrates (values are arbitrary but stable).
inline constexpr Port kRmControllerPort = 6817;   // SLURM-like slurmctld
inline constexpr Port kRmNodeDaemonPort = 6818;   // SLURM-like slurmd
inline constexpr Port kRshDaemonPort = 514;       // rshd
inline constexpr Port kToolFabricBasePort = 9000; // RM-provided daemon fabric
                                                  // (64 FEs x 64 sessions x 8
                                                  //  ports => 9000..41767)
inline constexpr Port kTbonBasePort = 48000;      // TBON comm-node listeners

/// Process lifecycle states.
enum class ProcState : std::uint8_t {
  Spawning,  ///< fork/exec cost still being charged; on_start not yet run
  Running,
  Stopped,   ///< stopped by a tracer (breakpoint or attach)
  Exited,
};

/// /proc-style per-process statistics, the data Jobsnap gathers (paper Sec. 5.1:
/// personality, state, pc, thread count, memory statistics, rusage counters).
struct ProcStats {
  char state = 'R';                ///< R/S/T/Z like /proc/<pid>/stat
  std::uint64_t program_counter = 0;
  std::uint32_t num_threads = 1;
  std::uint64_t vm_hwm_kb = 0;     ///< virtual memory high watermark
  std::uint64_t vm_rss_kb = 0;
  std::uint64_t vm_lck_kb = 0;     ///< locked memory
  std::uint64_t utime_ms = 0;      ///< user CPU time
  std::uint64_t stime_ms = 0;      ///< system CPU time
  std::uint64_t maj_faults = 0;    ///< major page faults
};

}  // namespace lmon::cluster
