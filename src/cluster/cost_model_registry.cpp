#include "cluster/cost_model_registry.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace lmon::cluster {

namespace {

/// One calibratable CostModel field. Exactly one member pointer is set,
/// matching `kind`; the table below is the single source of truth for the
/// calibration-file vocabulary.
struct Field {
  std::string_view key;
  enum class Kind { Time, Double, Int, U32, Bool } kind;
  sim::Time CostModel::* t = nullptr;
  double CostModel::* d = nullptr;
  int CostModel::* i = nullptr;
  std::uint32_t CostModel::* u = nullptr;
  bool CostModel::* b = nullptr;
};

constexpr Field time_field(std::string_view key, sim::Time CostModel::* m) {
  return {key, Field::Kind::Time, m, nullptr, nullptr, nullptr, nullptr};
}
constexpr Field double_field(std::string_view key, double CostModel::* m) {
  return {key, Field::Kind::Double, nullptr, m, nullptr, nullptr, nullptr};
}
constexpr Field int_field(std::string_view key, int CostModel::* m) {
  return {key, Field::Kind::Int, nullptr, nullptr, m, nullptr, nullptr};
}
constexpr Field u32_field(std::string_view key, std::uint32_t CostModel::* m) {
  return {key, Field::Kind::U32, nullptr, nullptr, nullptr, m, nullptr};
}
constexpr Field bool_field(std::string_view key, bool CostModel::* m) {
  return {key, Field::Kind::Bool, nullptr, nullptr, nullptr, nullptr, m};
}

const std::vector<Field>& fields() {
  static const std::vector<Field> kFields = {
      time_field("fork_cost", &CostModel::fork_cost),
      time_field("exec_base_cost", &CostModel::exec_base_cost),
      time_field("exec_per_mb", &CostModel::exec_per_mb),
      double_field("proc_jitter", &CostModel::proc_jitter),
      time_field("sched_latency", &CostModel::sched_latency),
      time_field("net_latency", &CostModel::net_latency),
      time_field("local_latency", &CostModel::local_latency),
      double_field("bandwidth_bytes_per_sec",
                   &CostModel::bandwidth_bytes_per_sec),
      double_field("net_jitter", &CostModel::net_jitter),
      time_field("connect_cost", &CostModel::connect_cost),
      time_field("proc_read_cost", &CostModel::proc_read_cost),
      time_field("trace_attach_cost", &CostModel::trace_attach_cost),
      time_field("trace_event_latency", &CostModel::trace_event_latency),
      time_field("mem_read_base", &CostModel::mem_read_base),
      time_field("mem_read_per_kb", &CostModel::mem_read_per_kb),
      time_field("rsh_client_fork", &CostModel::rsh_client_fork),
      time_field("rsh_session_cost", &CostModel::rsh_session_cost),
      time_field("rshd_spawn_cost", &CostModel::rshd_spawn_cost),
      int_field("rsh_fork_limit", &CostModel::rsh_fork_limit),
      bool_field("has_remote_access", &CostModel::has_remote_access),
      time_field("rm_controller_rpc", &CostModel::rm_controller_rpc),
      time_field("rm_allocate_cost", &CostModel::rm_allocate_cost),
      time_field("rm_slurmd_handle", &CostModel::rm_slurmd_handle),
      time_field("rm_task_setup", &CostModel::rm_task_setup),
      time_field("rm_launcher_per_node", &CostModel::rm_launcher_per_node),
      time_field("rm_launcher_startup", &CostModel::rm_launcher_startup),
      int_field("rm_launch_fanout", &CostModel::rm_launch_fanout),
      double_field("rm_quadratic_ns_per_node2",
                   &CostModel::rm_quadratic_ns_per_node2),
      int_field("rm_debug_events", &CostModel::rm_debug_events),
      time_field("engine_handler_cost", &CostModel::engine_handler_cost),
      time_field("engine_fixed_cost", &CostModel::engine_fixed_cost),
      time_field("fabric_endpoint_init", &CostModel::fabric_endpoint_init),
      time_field("iccl_msg_handle", &CostModel::iccl_msg_handle),
      time_field("iccl_eager_copy_per_kb", &CostModel::iccl_eager_copy_per_kb),
      time_field("iccl_chunk_handle", &CostModel::iccl_chunk_handle),
      u32_field("iccl_rndv_chunk_bytes", &CostModel::iccl_rndv_chunk_bytes),
      u32_field("iccl_rndv_threshold_bytes",
                &CostModel::iccl_rndv_threshold_bytes),
      time_field("tbon_register_cost", &CostModel::tbon_register_cost),
      time_field("stackwalk_cost", &CostModel::stackwalk_cost),
      time_field("dpcl_parse_per_mb", &CostModel::dpcl_parse_per_mb),
      time_field("dpcl_session_setup", &CostModel::dpcl_session_setup),
      double_field("tool_daemon_image_mb", &CostModel::tool_daemon_image_mb),
      double_field("launcher_image_mb", &CostModel::launcher_image_mb),
      double_field("app_image_mb", &CostModel::app_image_mb),
  };
  return kFields;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

bool parse_double(std::string_view text, double& out) {
  const std::string buf(text);
  char* end = nullptr;
  out = std::strtod(buf.c_str(), &end);
  return end != nullptr && *end == '\0' && end != buf.c_str();
}

/// "250us" / "1.5ms" / "3s" / "900ns"; a bare number is microseconds (the
/// unit most cost_model.hpp defaults are written in).
bool parse_time(std::string_view text, sim::Time& out) {
  double scale = static_cast<double>(sim::kMicrosecond);
  if (text.ends_with("ns")) {
    scale = 1.0;
    text.remove_suffix(2);
  } else if (text.ends_with("us")) {
    scale = static_cast<double>(sim::kMicrosecond);
    text.remove_suffix(2);
  } else if (text.ends_with("ms")) {
    scale = static_cast<double>(sim::kMillisecond);
    text.remove_suffix(2);
  } else if (text.ends_with("s")) {
    scale = static_cast<double>(sim::kSecond);
    text.remove_suffix(1);
  }
  double v = 0;
  if (!parse_double(trim(text), v)) return false;
  out = static_cast<sim::Time>(v * scale);
  return true;
}

Status line_error(int line_no, const std::string& what) {
  return Status(Rc::Ebdarg,
                "calibration line " + std::to_string(line_no) + ": " + what);
}

}  // namespace

CostModel atlas_profile() { return CostModel{}; }

CostModel thunder_profile() {
  // Itanium/Elan-era cluster: the TCP-over-Elan stack has higher small-
  // message latency and less effective bandwidth than Atlas's IB, the rsh
  // stack is slower per session, and the RM forwards its launch tree at a
  // narrower degree. LaunchMON-side constants stay untouched - platform
  // independence of the tool layer is the paper's point.
  CostModel m;
  m.net_latency = sim::us(65);
  m.bandwidth_bytes_per_sec = 0.85e9;
  m.connect_cost = sim::us(240);
  m.rsh_client_fork = sim::ms(3.8);
  m.rsh_session_cost = sim::ms(265);
  m.rshd_spawn_cost = sim::ms(5.0);
  m.rm_launcher_per_node = sim::us(1500);
  m.rm_launcher_startup = sim::ms(24);
  m.rm_launch_fanout = 16;
  m.iccl_eager_copy_per_kb = sim::us(2.6);
  return m;
}

CostModel zeus_profile() {
  // Newer commodity capacity cluster: quick fork/exec and rsh session setup,
  // wide RM fan-out, but a GigE-class fabric - lower bandwidth and higher
  // latency than Atlas, which pushes collective crossovers around.
  CostModel m;
  m.fork_cost = sim::us(180);
  m.net_latency = sim::us(55);
  m.bandwidth_bytes_per_sec = 0.6e9;
  m.rsh_session_cost = sim::ms(190);
  m.rm_launcher_per_node = sim::us(900);
  m.rm_launch_fanout = 64;
  m.iccl_eager_copy_per_kb = sim::us(2.4);
  return m;
}

const CostModelRegistry& CostModelRegistry::builtin() {
  static const CostModelRegistry reg = [] {
    CostModelRegistry r;
    r.add("atlas", atlas_profile());
    r.add("thunder", thunder_profile());
    r.add("zeus", zeus_profile());
    r.add("bluegene", CostModel::bluegene_like());
    return r;
  }();
  return reg;
}

std::optional<CostModel> CostModelRegistry::find(std::string_view name) const {
  auto it = profiles_.find(name);
  if (it == profiles_.end()) return std::nullopt;
  return it->second;
}

bool CostModelRegistry::contains(std::string_view name) const {
  return profiles_.find(name) != profiles_.end();
}

std::vector<std::string> CostModelRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(profiles_.size());
  for (const auto& [name, unused] : profiles_) out.push_back(name);
  return out;
}

void CostModelRegistry::add(std::string name, CostModel model) {
  profiles_.insert_or_assign(std::move(name), model);
}

Status CostModelRegistry::apply_calibration_text(std::string_view text,
                                                 CostModel& model) {
  CostModel staged = model;  // all-or-nothing: no partial calibration
  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? std::string_view::npos
                                           : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    line_no += 1;
    if (const auto hash = line.find('#'); hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return line_error(line_no, "expected key = value, got \"" +
                                     std::string(line) + "\"");
    }
    const std::string_view key = trim(line.substr(0, eq));
    const std::string_view value = trim(line.substr(eq + 1));
    if (key.empty()) return line_error(line_no, "empty key");
    if (value.empty()) return line_error(line_no, "empty value");

    const Field* field = nullptr;
    for (const Field& f : fields()) {
      if (f.key == key) {
        field = &f;
        break;
      }
    }
    if (field == nullptr) {
      return line_error(line_no,
                        "unknown key \"" + std::string(key) + "\"");
    }
    bool ok = false;
    switch (field->kind) {
      case Field::Kind::Time:
        ok = parse_time(value, staged.*(field->t));
        break;
      case Field::Kind::Double:
        ok = parse_double(value, staged.*(field->d));
        break;
      case Field::Kind::Int: {
        double v = 0;
        ok = parse_double(value, v);
        if (ok) staged.*(field->i) = static_cast<int>(v);
        break;
      }
      case Field::Kind::U32: {
        double v = 0;
        ok = parse_double(value, v) && v >= 0;
        if (ok) staged.*(field->u) = static_cast<std::uint32_t>(v);
        break;
      }
      case Field::Kind::Bool:
        if (value == "true" || value == "1") {
          staged.*(field->b) = true;
          ok = true;
        } else if (value == "false" || value == "0") {
          staged.*(field->b) = false;
          ok = true;
        }
        break;
    }
    if (!ok) {
      return line_error(line_no, "bad value \"" + std::string(value) +
                                     "\" for key \"" + std::string(key) +
                                     "\"");
    }
  }
  model = staged;
  return Status::ok();
}

Status CostModelRegistry::apply_calibration_file(const std::string& path,
                                                 CostModel& model) {
  std::ifstream in(path);
  if (!in) {
    return Status(Rc::Esys, "cannot read calibration file: " + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return apply_calibration_text(buf.str(), model);
}

std::string CostModelRegistry::calibration_text(const CostModel& model) {
  std::ostringstream out;
  for (const Field& f : fields()) {
    out << f.key << " = ";
    switch (f.kind) {
      case Field::Kind::Time:
        out << model.*(f.t) << "ns";
        break;
      case Field::Kind::Double: {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.17g", model.*(f.d));
        out << buf;
        break;
      }
      case Field::Kind::Int:
        out << model.*(f.i);
        break;
      case Field::Kind::U32:
        out << model.*(f.u);
        break;
      case Field::Kind::Bool:
        out << (model.*(f.b) ? "true" : "false");
        break;
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace lmon::cluster
