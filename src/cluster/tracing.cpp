#include "cluster/tracing.hpp"

#include <utility>

#include "cluster/machine.hpp"
#include "cluster/process.hpp"

namespace lmon::cluster {

TraceSession::TraceSession(Machine& machine, Pid tracer, Pid target,
                           std::function<void(const DebugEvent&)> handler)
    : machine_(machine),
      tracer_(tracer),
      target_(target),
      handler_(std::move(handler)) {}

Process* TraceSession::live_target() const {
  Process* t = machine_.find_process(target_);
  if (t == nullptr || t->state() == ProcState::Exited) return nullptr;
  return t;
}

void TraceSession::emit(const DebugEvent& ev) {
  if (!handler_) return;
  Machine& m = machine_;
  const Pid tracer_pid = tracer_;
  // Copy the handler: the session may be detached before delivery, but an
  // event already "in the kernel queue" still reaches the tracer.
  auto handler = handler_;
  m.sim().schedule(m.costs().trace_event_latency,
                   [&m, tracer_pid, handler, ev] {
                     Process* tr = m.find_process(tracer_pid);
                     if (tr == nullptr || tr->state() == ProcState::Exited) {
                       return;
                     }
                     tr->deliver([handler, ev] { handler(ev); });
                   });
}

void TraceSession::read_symbol(const std::string& name,
                               std::function<void(Status, Bytes)> cb) {
  Machine& m = machine_;
  const Pid tracer_pid = tracer_;
  const Pid target_pid = target_;

  Process* t = live_target();
  if (t == nullptr) {
    m.sim().schedule(0, [cb] { cb(Status(Rc::Edead, "target exited"), {}); });
    return;
  }
  const Bytes* sym = t->symbols().find(name);
  const std::size_t size = sym != nullptr ? sym->size() : 0;
  const CostModel& c = m.costs();
  const sim::Time cost =
      c.mem_read_base +
      static_cast<sim::Time>(static_cast<double>(size) / 1024.0 *
                             static_cast<double>(c.mem_read_per_kb));

  m.sim().schedule(cost, [&m, tracer_pid, target_pid, name, cb] {
    Process* tr = m.find_process(tracer_pid);
    if (tr == nullptr || tr->state() == ProcState::Exited) return;
    Process* tt = m.find_process(target_pid);
    if (tt == nullptr || tt->state() == ProcState::Exited) {
      tr->deliver([cb] { cb(Status(Rc::Edead, "target exited"), {}); });
      return;
    }
    // Snapshot at completion time, as a real PTRACE_PEEKDATA loop would see.
    const Bytes* data = tt->symbols().find(name);
    if (data == nullptr) {
      tr->deliver([cb, name] {
        cb(Status(Rc::Einval, "no such symbol: " + name), {});
      });
      return;
    }
    Bytes copy = *data;
    tr->deliver([cb, copy = std::move(copy)]() mutable {
      cb(Status::ok(), std::move(copy));
    });
  });
}

void TraceSession::write_symbol(const std::string& name, Bytes data,
                                std::function<void(Status)> cb) {
  Machine& m = machine_;
  const Pid tracer_pid = tracer_;
  const Pid target_pid = target_;
  const CostModel& c = m.costs();
  const sim::Time cost =
      c.mem_read_base +
      static_cast<sim::Time>(static_cast<double>(data.size()) / 1024.0 *
                             static_cast<double>(c.mem_read_per_kb));

  m.sim().schedule(cost, [&m, tracer_pid, target_pid, name,
                          data = std::move(data), cb]() mutable {
    Process* tr = m.find_process(tracer_pid);
    Process* tt = m.find_process(target_pid);
    if (tt == nullptr || tt->state() == ProcState::Exited) {
      if (tr != nullptr && tr->state() != ProcState::Exited) {
        tr->deliver([cb] { cb(Status(Rc::Edead, "target exited")); });
      }
      return;
    }
    tt->symbols().write(name, std::move(data));
    if (tr != nullptr && tr->state() != ProcState::Exited) {
      tr->deliver([cb] { cb(Status::ok()); });
    }
  });
}

void TraceSession::continue_target() {
  Process* t = live_target();
  if (t == nullptr || t->state() != ProcState::Stopped) return;
  t->set_state(ProcState::Running);
  t->stats_.state = 'R';
  std::function<void()> resume = std::move(t->pending_resume_);
  t->pending_resume_ = nullptr;
  t->flush_deferred();
  if (resume) t->post(0, std::move(resume));
}

void TraceSession::detach() {
  if (!attached_) return;
  attached_ = false;
  handler_ = nullptr;
  Process* t = live_target();
  if (t != nullptr && t->tracer_ == this) t->detach_tracer();
}

void TraceSession::kill_target() {
  Process* t = live_target();
  attached_ = false;
  handler_ = nullptr;
  if (t == nullptr) return;
  if (t->tracer_ == this) t->tracer_ = nullptr;
  // SIGKILL: the target dies regardless of stopped state.
  t->set_state(ProcState::Running);  // allow exit() to proceed
  t->exit(9);
}

}  // namespace lmon::cluster
