// channel.hpp - reliable, ordered, bidirectional message channel (TCP-like).
//
// LMONP, the RM control protocol and the TBON all run over these. A channel
// connects exactly two processes; per-direction FIFO ordering is enforced
// even though per-message latency is jittered, matching TCP semantics.
#pragma once

#include <cstdint>
#include <memory>

#include "cluster/message.hpp"
#include "cluster/types.hpp"
#include "simkernel/time.hpp"

namespace lmon::cluster {

class Machine;
class Process;

class Channel : public std::enable_shared_from_this<Channel> {
 public:
  using Id = std::uint64_t;

  Channel(Id id, Machine& machine, Pid a, NodeId a_node, Pid b, NodeId b_node);

  [[nodiscard]] Id id() const noexcept { return id_; }
  [[nodiscard]] bool is_open() const noexcept { return open_; }

  /// The other endpoint's pid as seen from `self`.
  [[nodiscard]] Pid peer_of(Pid self) const;

  /// Sends `msg` from endpoint `self` to its peer. Transfer time is charged
  /// by the machine's network model; delivery invokes the peer program's
  /// on_message. Messages sent on a closed channel are silently dropped
  /// (like writing to a socket racing with close - the tools must tolerate
  /// it, and the failure-injection tests exercise exactly this).
  void send(Pid self, Message msg);

  /// Closes the channel; the peer gets on_channel_closed after one latency.
  void close(Pid closer);

 private:
  friend class Machine;

  struct End {
    Pid pid = kInvalidPid;
    NodeId node = kInvalidNode;
    sim::Time last_arrival = 0;  ///< FIFO watermark for this direction
  };

  End& end_for(Pid pid);
  End& other_end(Pid pid);

  Id id_;
  Machine& machine_;
  End a_, b_;
  bool open_ = true;
};

using ChannelPtr = std::shared_ptr<Channel>;

}  // namespace lmon::cluster
