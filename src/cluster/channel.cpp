#include "cluster/channel.hpp"

#include <cassert>
#include <utility>

#include "cluster/machine.hpp"
#include "cluster/process.hpp"

namespace lmon::cluster {

Channel::Channel(Id id, Machine& machine, Pid a, NodeId a_node, Pid b,
                 NodeId b_node)
    : id_(id), machine_(machine) {
  a_.pid = a;
  a_.node = a_node;
  b_.pid = b;
  b_.node = b_node;
}

Pid Channel::peer_of(Pid self) const {
  return self == a_.pid ? b_.pid : a_.pid;
}

Channel::End& Channel::end_for(Pid pid) {
  assert(pid == a_.pid || pid == b_.pid);
  return pid == a_.pid ? a_ : b_;
}

Channel::End& Channel::other_end(Pid pid) {
  assert(pid == a_.pid || pid == b_.pid);
  return pid == a_.pid ? b_ : a_;
}

void Channel::send(Pid self, Message msg) {
  if (!open_) return;
  End& src = end_for(self);
  End& dst = other_end(self);

  sim::Simulator& simulator = machine_.sim();
  sim::Time arrival =
      simulator.now() +
      machine_.network().transfer_time(src.node, dst.node, msg.size());
  // Per-direction FIFO: a later send never overtakes an earlier one even if
  // its jittered latency came out smaller.
  if (arrival <= dst.last_arrival) arrival = dst.last_arrival + 1;
  dst.last_arrival = arrival;

  // Every message in the simulation crosses this choke point, so this is
  // where the link/channel traffic metrics live.
  if (machine_.metrics() != nullptr) {
    const double size = static_cast<double>(msg.size());
    machine_.count("net.messages_total");
    machine_.count("net.bytes_total", size);
    machine_.count("net.link." + std::to_string(src.node) + "->" +
                       std::to_string(dst.node) + ".bytes",
                   size);
    machine_.count("net.channel." + std::to_string(id_) + ".messages");
    machine_.observe("net.message_bytes", size);
  }
  if (obs::Tracer* tracer = machine_.tracer(); tracer != nullptr) {
    tracer->instant("net.send", "net", static_cast<int>(src.node), src.pid,
                    obs::kNoSpan,
                    "to=" + std::to_string(dst.pid) + " bytes=" +
                        std::to_string(msg.size()));
  }

  auto self_ptr = shared_from_this();
  const Pid dst_pid = dst.pid;
  simulator.schedule_at(
      arrival, [self_ptr, dst_pid, m = std::move(msg)]() mutable {
        if (!self_ptr->open_) return;
        Process* peer = self_ptr->machine_.find_process(dst_pid);
        if (peer == nullptr || peer->state() == ProcState::Exited) return;
        peer->deliver([self_ptr, peer, m = std::move(m)]() mutable {
          peer->dispatch_message(self_ptr, std::move(m));
        });
      });
}

void Channel::close(Pid closer) {
  if (!open_) return;
  open_ = false;

  End& src = end_for(closer);
  End& dst = other_end(closer);
  auto self_ptr = shared_from_this();
  const Pid dst_pid = dst.pid;

  machine_.sim().schedule(
      machine_.network().transfer_time(src.node, dst.node, 0),
      [self_ptr, dst_pid] {
        Process* peer = self_ptr->machine_.find_process(dst_pid);
        if (peer == nullptr || peer->state() == ProcState::Exited) return;
        peer->forget_channel(self_ptr->id());
        peer->deliver(
            [self_ptr, peer] { peer->dispatch_closed(self_ptr); });
      });

  Process* me = machine_.find_process(closer);
  if (me != nullptr) me->forget_channel(id_);
}

}  // namespace lmon::cluster
