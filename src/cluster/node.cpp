#include "cluster/node.hpp"

#include <cassert>
#include <utility>

#include "cluster/machine.hpp"
#include "simkernel/log.hpp"

namespace lmon::cluster {

Node::Node(Machine& machine, NodeId id, std::string hostname)
    : machine_(machine), id_(id), host_(std::move(hostname)) {}

Result<Pid> Node::spawn(std::unique_ptr<Program> program, SpawnOptions opts) {
  return spawn_internal(std::move(program), std::move(opts), kInvalidPid);
}

Result<Pid> Node::spawn_internal(std::unique_ptr<Program> program,
                                 SpawnOptions opts, Pid parent) {
  assert(program != nullptr);
  const CostModel& c = machine_.costs();
  const sim::Time cost = machine_.jittered(
      c.fork_cost + c.exec_base_cost +
      static_cast<sim::Time>(opts.image_mb *
                             static_cast<double>(c.exec_per_mb)) +
      c.sched_latency);

  const Pid pid = machine_.alloc_pid();
  auto proc = std::make_unique<Process>(machine_, *this, pid, parent,
                                        std::move(program), std::move(opts));
  Process* p = proc.get();
  procs_.emplace(pid, std::move(proc));
  machine_.index_process(pid, p);

  if (parent != kInvalidPid) {
    Process* pp = machine_.find_process(parent);
    if (pp != nullptr) pp->children_.push_back(pid);
  }

  sim::LogLine(sim::LogLevel::Debug, machine_.sim().now(), "spawn")
      << host_ << " pid " << pid << " (" << p->program().name() << ")";

  Machine& m = machine_;
  m.sim().schedule(cost, [&m, pid] {
    Process* child = m.find_process(pid);
    if (child == nullptr || child->state() == ProcState::Exited) return;
    child->set_state(ProcState::Running);
    child->program().on_start(*child);
    child->flush_deferred();
    if (child->options().started_callback) {
      auto cb = child->options().started_callback;
      Process* pp = m.find_process(child->parent());
      if (pp != nullptr && pp->state() != ProcState::Exited) {
        pp->deliver([cb, pid] { cb(pid); });
      }
    }
  });
  return {Status::ok(), pid};
}

Process* Node::find(Pid pid) {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : it->second.get();
}

const Process* Node::find(Pid pid) const {
  auto it = procs_.find(pid);
  return it == procs_.end() ? nullptr : it->second.get();
}

std::vector<Process*> Node::live_processes() {
  std::vector<Process*> out;
  out.reserve(procs_.size());
  for (auto& [pid, p] : procs_) {
    if (p->state() != ProcState::Exited) out.push_back(p.get());
  }
  return out;
}

int Node::live_process_count() const {
  int n = 0;
  for (const auto& [pid, p] : procs_) {
    if (p->state() != ProcState::Exited) ++n;
  }
  return n;
}

Status Node::register_listener(Port port, Pid pid,
                               Process::AcceptHandler on_accept) {
  auto [it, inserted] =
      listeners_.emplace(port, Listener{pid, std::move(on_accept)});
  if (!inserted) {
    return Status(Rc::Esys, "bind: address already in use on " + host_);
  }
  return Status::ok();
}

void Node::unregister_listener(Port port, Pid pid) {
  auto it = listeners_.find(port);
  if (it != listeners_.end() && it->second.pid == pid) listeners_.erase(it);
}

const Node::Listener* Node::listener(Port port) const {
  auto it = listeners_.find(port);
  return it == listeners_.end() ? nullptr : &it->second;
}

}  // namespace lmon::cluster
