// cost_model_registry.hpp - named per-platform calibration profiles.
//
// The CostModel defaults are fit to the paper's Atlas measurements, but the
// paper's point (and ours) is that the right launch/collective configuration
// is platform-dependent: the Table 1 clusters differ in interconnect,
// rsh behavior, and RM launch characteristics, and BlueGene-class machines
// have no remote access at all. The registry gives every calibration a name
// so one binary adapts to any machine:
//
//   * shipped profiles: atlas (the defaults), thunder, zeus (Table 1
//     platforms), bluegene (CostModel::bluegene_like());
//   * sessions select one by name (SpawnConfig::platform_profile ->
//     --lmon-platform= plumbing), and the engine's auto-tuner consults the
//     selected profile's constants instead of the machine defaults;
//   * a key=value calibration file can override any constant on top of a
//     profile, so a site can re-fit without recompiling.
//
// The profile changes *model-driven decisions* (auto-tuned strategy,
// topology, rendezvous threshold and the daemons' default threshold); the
// simulated machine keeps charging its own configured costs, which is what
// lets tests pit a mis-calibrated profile against reality.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cost_model.hpp"
#include "common/status.hpp"

namespace lmon::cluster {

class CostModelRegistry {
 public:
  /// The registry of shipped profiles (atlas, thunder, zeus, bluegene).
  /// Built once; treat as immutable.
  [[nodiscard]] static const CostModelRegistry& builtin();

  /// Profile by name, or nullopt for unknown names.
  [[nodiscard]] std::optional<CostModel> find(std::string_view name) const;
  [[nodiscard]] bool contains(std::string_view name) const;
  /// Registered profile names, sorted.
  [[nodiscard]] std::vector<std::string> names() const;

  void add(std::string name, CostModel model);

  // --- calibration files ----------------------------------------------------
  // Format: one "key = value" per line; '#' starts a comment; blank lines
  // ignored. Keys are the CostModel field names (e.g. rsh_session_cost,
  // bandwidth_bytes_per_sec). Time values take an optional ns/us/ms/s
  // suffix (bare numbers are microseconds); bools take true/false/1/0.
  // Unknown keys and malformed lines are rejected with their 1-based line
  // number so a typo cannot silently mis-calibrate a platform.

  /// Applies calibration overrides onto `model` in place.
  [[nodiscard]] static Status apply_calibration_text(std::string_view text,
                                                     CostModel& model);
  /// Reads `path` and applies it onto `model` in place.
  [[nodiscard]] static Status apply_calibration_file(const std::string& path,
                                                     CostModel& model);

  /// Every calibration key of `model` as "key = value" lines; the exact
  /// inverse of apply_calibration_text (round-trip identity, times in ns).
  [[nodiscard]] static std::string calibration_text(const CostModel& model);

 private:
  std::map<std::string, CostModel, std::less<>> profiles_;
};

// --- shipped Table 1 profiles --------------------------------------------------
/// Atlas: the CostModel defaults (every constant in cost_model.hpp is fit to
/// the paper's Atlas measurement points), named so sessions can request it
/// explicitly.
[[nodiscard]] CostModel atlas_profile();
/// Thunder: the older Itanium cluster - slower interconnect and rsh stack,
/// shallower RM launch fan-out.
[[nodiscard]] CostModel thunder_profile();
/// Zeus: the newer commodity capacity cluster - faster session setup, wider
/// RM fan-out, slightly lower effective bandwidth than Atlas's IB.
[[nodiscard]] CostModel zeus_profile();

}  // namespace lmon::cluster
