// cost_model.hpp - calibrated cost constants for the simulated cluster.
//
// Every time charge in the simulation comes from this struct, so the whole
// calibration story lives in one place. Defaults are fit to the published
// measurement points from the paper's Atlas cluster (see DESIGN.md §5):
//
//   * serial rsh launch:   0.77 s @ 4 nodes, 60.8 s @ 256 nodes (~237 ms/node)
//   * rsh hard failure:    front end cannot fork ~512 helpers
//   * launchAndSpawn:      < 1 s @ 128 nodes / 1024 tasks
//   * LaunchMON overhead:  18 ms tracing + 12 ms other, scale-independent
//   * STAT via LaunchMON:  0.46 s @ 4, 3.57 s @ 256, 5.6 s @ 512 daemons
//   * Jobsnap:             < 1.5 s @ 512 daemons, 2.92 s @ 1024 daemons
//   * DPCL APAI access:    ~34 s constant; LaunchMON APAI ~0.6 s constant
#pragma once

#include <cstdint>

#include "simkernel/time.hpp"

namespace lmon::cluster {

struct CostModel {
  using Time = sim::Time;

  // --- process management -------------------------------------------------
  /// fork() on a compute/front-end node.
  Time fork_cost = sim::us(250);
  /// exec() fixed cost (page-table setup, loader) ...
  Time exec_base_cost = sim::us(600);
  /// ... plus per-MB of binary image mapped in.
  Time exec_per_mb = sim::us(15);
  /// Relative jitter applied to fork/exec (sigma as a fraction of the mean).
  double proc_jitter = 0.05;
  /// Scheduling delay before a newly runnable process first executes.
  Time sched_latency = sim::us(120);

  // --- network -------------------------------------------------------------
  /// One-way small-message latency between distinct nodes (IB-like, but with
  /// kernel TCP stacks as LMONP uses TCP/IP).
  Time net_latency = sim::us(45);
  /// One-way latency between processes on the same node (loopback).
  Time local_latency = sim::us(8);
  /// Payload bandwidth, bytes per second (~1.2 GB/s effective).
  double bandwidth_bytes_per_sec = 1.2e9;
  /// Relative latency jitter.
  double net_jitter = 0.08;
  /// Extra cost to establish a connection (SYN/ACK handshake + accept(2)).
  Time connect_cost = sim::us(180);

  // --- /proc and local introspection ----------------------------------------
  /// Reading one process's /proc state (open/read/parse of several files).
  Time proc_read_cost = sim::us(350);

  // --- tracing (ptrace-like) ------------------------------------------------
  /// Attaching to a process as a tracer.
  Time trace_attach_cost = sim::ms(2.5);
  /// Kernel-side cost of delivering one debug event to the tracer.
  Time trace_event_latency = sim::us(80);
  /// Tracer-side cost to read target memory: base ...
  Time mem_read_base = sim::us(60);
  /// ... plus per-KB transferred via the debug interface.
  Time mem_read_per_kb = sim::us(6);

  // --- rsh substrate ---------------------------------------------------------
  /// Client-side fork+exec of the rsh helper binary.
  Time rsh_client_fork = sim::ms(3.0);
  /// Connection setup + authentication + remote shell spawn. Dominates the
  /// serial ad hoc launch: ~230 ms per target reproduces 60.8 s @ 256 nodes.
  Time rsh_session_cost = sim::ms(230);
  /// Remote side: rshd forking the requested command.
  Time rshd_spawn_cost = sim::ms(4.0);
  /// Max concurrent rsh helper children one process may hold before fork()
  /// fails with EAGAIN (models the per-user process/fd limit that makes the
  /// ad hoc MRNet launch "consistently fail" at 512 nodes in the paper).
  int rsh_fork_limit = 500;
  /// Whether compute nodes run remote-access services at all (BG/L and the
  /// Cray XT3 "do not support direct remote access services", paper §2).
  bool has_remote_access = true;

  // --- resource manager -------------------------------------------------------
  /// Controller-side handling of one RPC (allocate, job query, ...).
  Time rm_controller_rpc = sim::ms(1.2);
  /// Scheduling/allocating a job's node set (controller-side credential and
  /// reservation materialization; Moab has already made the policy decision).
  Time rm_allocate_cost = sim::ms(150);
  /// Node-daemon handling of a (tree-forwarded) launch request.
  Time rm_slurmd_handle = sim::us(400);
  /// Node-daemon per-task spawn bookkeeping (credential checks, cgroup-ish
  /// setup), in addition to fork/exec of the task itself.
  Time rm_task_setup = sim::ms(1.1);
  /// Launcher-side per-node bookkeeping when building the launch tree/
  /// proctable (credential per node, hostlist processing; the dominant
  /// linear term in the RM's launch cost).
  Time rm_launcher_per_node = sim::us(1100);
  /// Launcher fixed startup work before contacting the controller.
  Time rm_launcher_startup = sim::ms(18);
  /// Tree fan-out used by the RM's scalable launch (SLURM default-ish).
  int rm_launch_fanout = 32;
  /// Quadratic RM term (ns per node^2) that models the sub-optimal scaling
  /// the paper observed past ~512 daemons (Jobsnap's last doubling).
  double rm_quadratic_ns_per_node2 = 900.0;
  /// Number of debug events a well-designed RM launcher produces while being
  /// traced, independent of scale (paper: SLURM has no events that grow with
  /// scale; total tracing cost 18 ms).
  int rm_debug_events = 12;

  // --- LaunchMON engine ---------------------------------------------------------
  /// Average cost of one engine event-handler invocation (paper model:
  /// tracing cost = #debug events x avg handler cost = 18 ms total).
  Time engine_handler_cost = sim::ms(1.5);
  /// Scale-independent engine/front-end bookkeeping ("all other LaunchMON
  /// costs", 12 ms in the paper).
  Time engine_fixed_cost = sim::ms(12);

  // --- daemon fabric / ICCL -------------------------------------------------------
  /// Per-daemon cost to initialize the RM-provided bootstrap fabric endpoint.
  Time fabric_endpoint_init = sim::us(500);
  /// Per-message handling cost inside a daemon's collective layer (receive,
  /// decode, forward bookkeeping); also serializes fan-out sends.
  Time iccl_msg_handle = sim::us(600);
  /// Eager-protocol per-KB payload copy: the parent memcpys the payload into
  /// each child's send buffer (serialized, so it stretches the fan-out
  /// quantum), and the receiver copies it out of the bounce buffer before
  /// handling. ~500 MB/s effective for the double-copy TCP path.
  Time iccl_eager_copy_per_kb = sim::us(2.0);
  /// Rendezvous per-chunk fixed cost on each side (post one pre-registered
  /// zero-copy chunk / retire one). No per-byte CPU term: the payload is
  /// never staged through a bounce buffer once the CTS arrived.
  Time iccl_chunk_handle = sim::us(60);
  /// Rendezvous pipeline chunk size.
  std::uint32_t iccl_rndv_chunk_bytes = 64 * 1024;
  /// Default eager->rendezvous switch threshold (payload bytes). Deliberately
  /// conservative so stock sessions keep the calibrated eager path; tools
  /// tune it per session (SpawnConfig::rndv_threshold_bytes) with
  /// core::PerfModel::collective_crossover() as the guide.
  std::uint32_t iccl_rndv_threshold_bytes = 1024 * 1024;

  // --- TBON --------------------------------------------------------------------------
  /// Per-child registration work at a TBON node accepting a new link
  /// (accept, peer validation, routing-table update). Serialized at the
  /// parent, so a 1-deep root pays it once per back end - the "MRNet
  /// handshaking protocol" share of STAT's startup in Fig. 6.
  Time tbon_register_cost = sim::ms(3.0);

  // --- tool-side work ---------------------------------------------------------------
  /// STAT: walking one task's call stack (third-party stackwalk on a
  /// stopped process).
  Time stackwalk_cost = sim::ms(1.2);

  // --- DPCL baseline ----------------------------------------------------------------
  /// Full binary parse throughput of the DPCL instrumentation engine. The
  /// paper's O|SS baseline parses the RM launcher binary completely; with a
  /// ~110 MB srun image this yields the ~33 s constant in Table 1.
  Time dpcl_parse_per_mb = sim::ms(300);
  /// DPCL super-daemon session setup (authentication, connection).
  Time dpcl_session_setup = sim::ms(450);

  /// Binary image sizes (MB) used for exec and parse costs.
  double tool_daemon_image_mb = 4.0;
  double launcher_image_mb = 110.0;
  double app_image_mb = 24.0;

  /// Returns a model with all jitter removed (exact analytic expectations);
  /// used by the model-validation tests.
  [[nodiscard]] CostModel deterministic() const {
    CostModel m = *this;
    m.proc_jitter = 0.0;
    m.net_jitter = 0.0;
    return m;
  }

  /// BlueGene/L-like platform profile (paper §4: "We have also ported
  /// LaunchMON to BlueGene/L ... LaunchMON has similar overheads on it.
  /// However, we found that the time for spawning the job tasks and tool
  /// daemons (i.e., T(job) and T(daemon)) by mpirun, the RM on that system,
  /// were significantly higher."). The LaunchMON-side constants are
  /// untouched - that platform independence is the point - while the
  /// mpirun-side launch costs rise and direct remote access is absent
  /// (BG/L compute nodes run no rshd; ad hoc launching is impossible, not
  /// merely slow).
  [[nodiscard]] static CostModel bluegene_like() {
    CostModel m;
    m.rm_launcher_startup = sim::ms(120);      // mpirun front-end cost
    m.rm_launcher_per_node = sim::us(4500);    // slower per-node bring-up
    m.rm_task_setup = sim::ms(4.0);            // CIOD-mediated task spawn
    m.rm_allocate_cost = sim::ms(400);         // partition boot amortized
    m.rm_launch_fanout = 8;                    // shallower service network
    m.has_remote_access = false;               // compute nodes run no rshd
    return m;
  }
};

}  // namespace lmon::cluster
