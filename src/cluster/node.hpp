// node.hpp - one host of the simulated cluster.
#pragma once

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "cluster/process.hpp"
#include "cluster/types.hpp"

namespace lmon::cluster {

class Machine;

class Node {
 public:
  Node(Machine& machine, NodeId id, std::string hostname);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] NodeId id() const noexcept { return id_; }
  [[nodiscard]] const std::string& hostname() const noexcept { return host_; }
  [[nodiscard]] Machine& machine() noexcept { return machine_; }

  /// Spawns a top-level process (no parent) on this node, charging fork/exec
  /// costs before the program's on_start runs.
  Result<Pid> spawn(std::unique_ptr<Program> program, SpawnOptions opts);

  [[nodiscard]] Process* find(Pid pid);
  [[nodiscard]] const Process* find(Pid pid) const;

  /// All live (non-exited) processes - the /proc directory listing, which is
  /// what Jobsnap back ends scan.
  [[nodiscard]] std::vector<Process*> live_processes();
  [[nodiscard]] int live_process_count() const;

  // Listener table (used via Process::listen).
  struct Listener {
    Pid pid = kInvalidPid;
    Process::AcceptHandler on_accept;
  };
  Status register_listener(Port port, Pid pid,
                           Process::AcceptHandler on_accept = nullptr);
  void unregister_listener(Port port, Pid pid);
  [[nodiscard]] const Listener* listener(Port port) const;

 private:
  friend class Process;
  friend class Machine;

  /// Spawn with explicit parent; Process::spawn_child routes here.
  Result<Pid> spawn_internal(std::unique_ptr<Program> program,
                             SpawnOptions opts, Pid parent);

  Machine& machine_;
  NodeId id_;
  std::string host_;
  std::unordered_map<Pid, std::unique_ptr<Process>> procs_;
  std::unordered_map<Port, Listener> listeners_;
};

}  // namespace lmon::cluster
