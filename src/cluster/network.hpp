// network.hpp - latency/bandwidth model for the simulated interconnect.
#pragma once

#include <cstddef>

#include "cluster/cost_model.hpp"
#include "cluster/types.hpp"
#include "simkernel/rng.hpp"
#include "simkernel/time.hpp"

namespace lmon::cluster {

/// Computes message transfer and connection-establishment times.
///
/// The model is the classic alpha-beta (latency + size/bandwidth) form with
/// multiplicative jitter; intra-node traffic uses a lower loopback latency.
/// This is intentionally contention-free: the paper's launch protocols are
/// latency- and serialization-bound, not bandwidth-bound, and a contention
/// model would add noise without changing any of the reported shapes.
class NetworkModel {
 public:
  NetworkModel(const CostModel& costs, sim::Rng rng)
      : costs_(costs), rng_(rng) {}

  /// One-way time for `bytes` from node `a` to node `b`.
  sim::Time transfer_time(NodeId a, NodeId b, std::size_t bytes);

  /// Time to establish a new connection (handshake RTT + accept cost).
  sim::Time connect_time(NodeId a, NodeId b);

 private:
  sim::Time base_latency(NodeId a, NodeId b) const;
  sim::Time jitter(sim::Time base);

  const CostModel& costs_;
  sim::Rng rng_;
};

}  // namespace lmon::cluster
