#include "cluster/process.hpp"

#include <cassert>
#include <utility>

#include "cluster/machine.hpp"
#include "cluster/node.hpp"
#include "cluster/tracing.hpp"
#include "simkernel/log.hpp"

namespace lmon::cluster {

Process::Process(Machine& machine, Node& node, Pid pid, Pid parent,
                 std::unique_ptr<Program> program, SpawnOptions options)
    : machine_(machine),
      node_(node),
      pid_(pid),
      parent_(parent),
      program_(std::move(program)),
      options_(std::move(options)),
      child_limit_(machine.costs().rsh_fork_limit) {
  assert(program_ != nullptr && "a process needs a program");
}

Process::~Process() = default;

sim::Simulator& Process::sim() noexcept { return machine_.sim(); }

void Process::post(sim::Time delay, std::function<void()> fn) {
  if (state_ == ProcState::Exited) return;
  Machine& m = machine_;
  const Pid pid = pid_;
  m.sim().schedule(delay, [&m, pid, fn = std::move(fn)]() mutable {
    Process* p = m.find_process(pid);
    if (p == nullptr || p->state() == ProcState::Exited) return;
    p->deliver(std::move(fn));
  });
}

sim::Time Process::reserve_busy(sim::Time cost) {
  const sim::Time now = sim().now();
  if (busy_until_ < now) busy_until_ = now;
  busy_until_ += cost;
  return busy_until_ - now;
}

void Process::deliver(std::function<void()> fn) {
  switch (state_) {
    case ProcState::Exited:
      return;  // dropped: the process is gone
    case ProcState::Stopped:
    case ProcState::Spawning:
      deferred_.push_back(std::move(fn));
      return;
    case ProcState::Running:
      fn();
      return;
  }
}

void Process::flush_deferred() {
  // Deliveries queued while stopped run in arrival order on resume. New work
  // may be appended while flushing; the loop handles that naturally.
  while (!deferred_.empty() && state_ == ProcState::Running) {
    std::function<void()> fn = std::move(deferred_.front());
    deferred_.erase(deferred_.begin());
    fn();
  }
}

Status Process::listen(Port port, AcceptHandler on_accept) {
  Status st = node_.register_listener(port, pid_, std::move(on_accept));
  if (st.is_ok()) listening_.push_back(port);
  return st;
}

void Process::stop_listening(Port port) {
  node_.unregister_listener(port, pid_);
  std::erase(listening_, port);
}

void Process::connect(const std::string& host, Port port, ConnectCallback cb) {
  machine_.open_connection(*this, host, port, std::move(cb));
}

void Process::send(const ChannelPtr& channel, Message msg) {
  assert(channel != nullptr);
  channel->send(pid_, std::move(msg));
}

void Process::close_channel(const ChannelPtr& channel) {
  assert(channel != nullptr);
  handlers_.erase(channel->id());
  channel->close(pid_);
}

void Process::set_channel_handler(const ChannelPtr& channel,
                                  MessageHandler on_msg,
                                  ClosedHandler on_closed) {
  assert(channel != nullptr);
  handlers_[channel->id()] = {std::move(on_msg), std::move(on_closed)};
}

void Process::clear_channel_handler(Channel::Id id) { handlers_.erase(id); }

void Process::dispatch_message(const ChannelPtr& channel, Message msg) {
  auto it = handlers_.find(channel->id());
  if (it != handlers_.end() && it->second.first) {
    // Copy the handler: it may deregister itself while running.
    auto handler = it->second.first;
    handler(channel, std::move(msg));
    return;
  }
  program_->on_message(*this, channel, std::move(msg));
}

void Process::dispatch_closed(const ChannelPtr& channel) {
  auto it = handlers_.find(channel->id());
  if (it != handlers_.end()) {
    auto handler = it->second.second;
    handlers_.erase(it);
    if (handler) {
      handler(channel);
      return;
    }
    return;  // handled channel with no closed-callback: swallow
  }
  program_->on_channel_closed(*this, channel);
}

Result<Pid> Process::spawn_child(std::unique_ptr<Program> program,
                                 SpawnOptions opts) {
  if (live_children() >= child_limit_) {
    return {Status(Rc::Esys, "fork: resource temporarily unavailable"),
            kInvalidPid};
  }
  return node_.spawn_internal(std::move(program), std::move(opts), pid_);
}

int Process::live_children() const {
  int live = 0;
  for (Pid c : children_) {
    const Process* p = node_.find(c);
    if (p != nullptr && p->state() != ProcState::Exited) ++live;
  }
  return live;
}

void Process::reap_pdeath_children() {
  // Snapshot: a child's exit may recursively reap and must not invalidate
  // this iteration.
  const std::vector<Pid> kids = children_;
  for (Pid child : kids) {
    Process* cp = machine_.find_process(child);
    if (cp != nullptr && cp->state() != ProcState::Exited &&
        cp->options().die_with_parent) {
      cp->exit(9);
    }
  }
}

void Process::exit(int code) {
  if (state_ == ProcState::Exited) return;
  sim::LogLine(sim::LogLevel::Debug, sim().now(), program_->name())
      << "pid " << pid_ << " exit(" << code << ")";
  state_ = ProcState::Exited;
  stats_.state = 'Z';
  deferred_.clear();
  pending_resume_ = nullptr;
  handlers_.clear();

  for (Port port : std::vector<Port>(listening_)) {
    node_.unregister_listener(port, pid_);
  }
  listening_.clear();

  // Close all channels (notifies peers).
  std::vector<ChannelPtr> open_channels;
  open_channels.reserve(channels_.size());
  for (auto& [id, ch] : channels_) open_channels.push_back(ch);
  channels_.clear();
  for (auto& ch : open_channels) ch->close(pid_);

  reap_pdeath_children();

  // Our own trace sessions detach, resuming any stopped targets.
  for (auto& session : trace_sessions_) session->detach();

  // Notify the tracer tracing us.
  if (tracer_ != nullptr) {
    TraceSession* session = tracer_;
    tracer_ = nullptr;
    session->attached_ = false;
    session->emit(DebugEvent{DebugEventType::Exited, pid_, "", code});
  }

  // SIGCHLD to the parent.
  if (parent_ != kInvalidPid) {
    Process* pp = machine_.find_process(parent_);
    if (pp != nullptr && pp->state() != ProcState::Exited) {
      const Pid child = pid_;
      pp->post(machine_.costs().sched_latency,
               [pp, child, code] { pp->program().on_child_exit(*pp, child, code); });
    }
  }
}

void Process::breakpoint(const std::string& symbol,
                         std::function<void()> resume) {
  if (!traced()) {
    post(0, std::move(resume));
    return;
  }
  sim::LogLine(sim::LogLevel::Debug, sim().now(), program_->name())
      << "pid " << pid_ << " stopped at " << symbol;
  state_ = ProcState::Stopped;
  stats_.state = 'T';
  pending_resume_ = std::move(resume);
  tracer_->emit(DebugEvent{DebugEventType::Stopped, pid_, symbol, 0});
}

Result<TraceSession*> Process::trace_attach(Pid target,
                                            DebugEventHandler handler) {
  Process* t = machine_.find_process(target);
  if (t == nullptr || t->state() == ProcState::Exited) {
    return {Status(Rc::Edead, "trace_attach: no such process"), nullptr};
  }
  if (t->traced()) {
    return {Status(Rc::Ebusy, "trace_attach: already traced"), nullptr};
  }
  auto session = std::make_unique<TraceSession>(machine_, pid_, target,
                                                std::move(handler));
  TraceSession* sp = session.get();
  trace_sessions_.push_back(std::move(session));
  t->attach_tracer(sp);

  Machine& m = machine_;
  m.sim().schedule(m.costs().trace_attach_cost, [&m, sp, target] {
    Process* tt = m.find_process(target);
    if (tt == nullptr || tt->state() == ProcState::Exited) return;
    tt->set_state(ProcState::Stopped);
    tt->stats_.state = 'T';
    sp->emit(DebugEvent{DebugEventType::Attached, target, "", 0});
  });
  return {Status::ok(), sp};
}

Result<std::pair<Pid, TraceSession*>> Process::spawn_traced(
    std::unique_ptr<Program> program, SpawnOptions opts,
    DebugEventHandler handler) {
  opts.start_traced = true;
  Result<Pid> spawned = spawn_child(std::move(program), std::move(opts));
  if (!spawned.is_ok()) return {spawned.status, {kInvalidPid, nullptr}};

  auto session = std::make_unique<TraceSession>(machine_, pid_, spawned.value,
                                                std::move(handler));
  TraceSession* sp = session.get();
  trace_sessions_.push_back(std::move(session));
  Process* child = machine_.find_process(spawned.value);
  assert(child != nullptr);
  child->attach_tracer(sp);
  return {Status::ok(), {spawned.value, sp}};
}

void Process::attach_tracer(TraceSession* session) { tracer_ = session; }

void Process::detach_tracer() {
  tracer_ = nullptr;
  if (state_ == ProcState::Stopped) {
    state_ = ProcState::Running;
    stats_.state = 'R';
    std::function<void()> resume = std::move(pending_resume_);
    pending_resume_ = nullptr;
    flush_deferred();
    if (resume) post(0, std::move(resume));
  }
}

void Process::register_channel(const ChannelPtr& ch) {
  channels_[ch->id()] = ch;
}

void Process::forget_channel(Channel::Id id) { channels_.erase(id); }

}  // namespace lmon::cluster
