#include "cluster/network.hpp"

#include <algorithm>

namespace lmon::cluster {

sim::Time NetworkModel::base_latency(NodeId a, NodeId b) const {
  return a == b ? costs_.local_latency : costs_.net_latency;
}

sim::Time NetworkModel::jitter(sim::Time base) {
  if (costs_.net_jitter <= 0.0) return base;
  const double factor =
      rng_.normal(1.0, costs_.net_jitter);
  return std::max<sim::Time>(1, static_cast<sim::Time>(
                                    static_cast<double>(base) * factor));
}

sim::Time NetworkModel::transfer_time(NodeId a, NodeId b, std::size_t bytes) {
  const double wire_ns = static_cast<double>(bytes) /
                         costs_.bandwidth_bytes_per_sec * 1e9;
  return jitter(base_latency(a, b) + static_cast<sim::Time>(wire_ns));
}

sim::Time NetworkModel::connect_time(NodeId a, NodeId b) {
  // Three-way handshake: ~1.5 RTT of small packets, plus accept processing.
  return jitter(3 * base_latency(a, b) + costs_.connect_cost);
}

}  // namespace lmon::cluster
