// machine.hpp - the whole simulated cluster: nodes + network + pid space.
//
// Layout mirrors the paper's Atlas testbed: one front-end/login node whose
// software stack matches the compute nodes, plus N compute nodes; tool front
// ends and RM launchers run on the front-end node, applications and daemons
// on compute nodes. Extra "service" nodes can be reserved for TBON
// communication daemons (the paper's middleware partition).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cluster/cost_model.hpp"
#include "cluster/network.hpp"
#include "cluster/node.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "simkernel/simulator.hpp"
#include "simkernel/stats.hpp"

namespace lmon::cluster {

/// An installed binary: how to instantiate its behaviour and how big its
/// image is (exec cost, DPCL parse cost). The registry stands in for the
/// cluster's shared filesystem - the RM's node daemons and rshd exec
/// programs by name.
struct ProgramImage {
  std::function<std::unique_ptr<Program>(const std::vector<std::string>&)>
      factory;
  double image_mb = 4.0;
};

struct MachineConfig {
  int num_compute_nodes = 16;
  /// Nodes reserved for middleware (TBON comm processes); allocated from the
  /// tail of the compute range by the RM when a tool requests them.
  int num_middleware_nodes = 0;
  std::string host_prefix = "atlas";
  CostModel costs;
};

class Machine {
 public:
  Machine(sim::Simulator& simulator, MachineConfig config);

  Machine(const Machine&) = delete;
  Machine& operator=(const Machine&) = delete;

  [[nodiscard]] sim::Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] const CostModel& costs() const noexcept {
    return config_.costs;
  }
  [[nodiscard]] NetworkModel& network() noexcept { return network_; }
  [[nodiscard]] const MachineConfig& config() const noexcept {
    return config_;
  }

  /// Total node count: 1 front end + compute + middleware.
  [[nodiscard]] int num_nodes() const noexcept {
    return static_cast<int>(nodes_.size());
  }
  [[nodiscard]] int num_compute_nodes() const noexcept {
    return config_.num_compute_nodes;
  }
  [[nodiscard]] int num_middleware_nodes() const noexcept {
    return config_.num_middleware_nodes;
  }

  [[nodiscard]] Node& node(NodeId id) { return *nodes_.at(id); }
  [[nodiscard]] Node& front_end() { return *nodes_.front(); }
  /// i in [0, num_compute_nodes).
  [[nodiscard]] Node& compute_node(int i) { return *nodes_.at(1 + i); }
  /// i in [0, num_middleware_nodes).
  [[nodiscard]] Node& middleware_node(int i) {
    return *nodes_.at(1 + config_.num_compute_nodes + i);
  }

  [[nodiscard]] Node* find_host(std::string_view hostname);
  [[nodiscard]] Process* find_process(Pid pid);

  /// Charged fork/exec jitter draws and per-subsystem rng streams.
  [[nodiscard]] sim::Rng fork_rng() { return sim_.rng().fork(); }

  /// Applies multiplicative jitter from the cost model's proc_jitter.
  [[nodiscard]] sim::Time jittered(sim::Time base);

  Pid alloc_pid() noexcept { return next_pid_++; }
  Channel::Id alloc_channel_id() noexcept { return next_channel_++; }

  /// Establishes a connection from `from` to host:port (async; see
  /// Process::connect). Charges connect time; fails if no listener.
  void open_connection(Process& from, const std::string& host, Port port,
                       ConnectCallback cb);

  // --- program registry (shared filesystem stand-in) -----------------------
  void install_program(const std::string& name, ProgramImage image) {
    programs_[name] = std::move(image);
  }
  [[nodiscard]] const ProgramImage* find_program(const std::string& name) const {
    auto it = programs_.find(name);
    return it == programs_.end() ? nullptr : &it->second;
  }

  // --- instrumentation hooks (benches/tests only) --------------------------
  /// When set, components mark critical-path events (e0..e11 of the paper's
  /// §4 model) and charge component costs; this models the "instrumented
  /// version of LaunchMON" the authors used to fit their model.
  [[nodiscard]] sim::Timeline* timeline() noexcept { return timeline_; }
  void set_timeline(sim::Timeline* t) noexcept { timeline_ = t; }
  [[nodiscard]] sim::CostLedger* ledger() noexcept { return ledger_; }
  void set_ledger(sim::CostLedger* l) noexcept { ledger_ = l; }
  void mark(const std::string& label) {
    if (timeline_ != nullptr) timeline_->mark(label, sim_.now());
    if (tracer_ != nullptr) tracer_->mark(label);
  }
  void charge(const std::string& label, sim::Time amount) {
    if (ledger_ != nullptr) ledger_->charge(label, amount);
    if (tracer_ != nullptr) tracer_->charge(label, amount);
  }

  // --- observability hooks (obs/) ------------------------------------------
  // Purely observational like timeline/ledger above: components record spans
  // and counters through these when attached, never schedule events or
  // charge costs, and skip all work when the hooks are null - so traced and
  // untraced runs of the same seed produce identical simulated timings.
  [[nodiscard]] obs::Tracer* tracer() noexcept { return tracer_; }
  /// Attaches a tracer and names its export tracks/lanes after the cluster's
  /// hostnames and already-running programs (defined in machine.cpp).
  void set_tracer(obs::Tracer* t);
  [[nodiscard]] obs::Metrics* metrics() noexcept { return metrics_; }
  void set_metrics(obs::Metrics* m) noexcept { metrics_ = m; }
  [[nodiscard]] obs::FlightRecorderHub* flight() noexcept { return flight_; }
  void set_flight_recorder(obs::FlightRecorderHub* f) noexcept {
    flight_ = f;
  }
  void count(const std::string& name, double delta = 1) {
    if (metrics_ != nullptr) metrics_->add(name, delta);
  }
  void observe(const std::string& name, double value) {
    if (metrics_ != nullptr) metrics_->observe(name, value);
  }
  void gauge(const std::string& name, double value) {
    if (metrics_ != nullptr) metrics_->set_gauge(name, value);
  }
  void flight_record(Pid pid, std::string component, std::string message) {
    if (flight_ != nullptr) {
      flight_->record(pid, sim_.now(), std::move(component),
                      std::move(message));
    }
  }

  // Bookkeeping used by Process/Node internals (defined in machine.cpp so
  // the tracer can label each new pid's export lane).
  void index_process(Pid pid, Process* p);
  void deindex_process(Pid pid) { pid_index_.erase(pid); }

 private:
  sim::Simulator& sim_;
  MachineConfig config_;
  NetworkModel network_;
  sim::Rng jitter_rng_{0};
  std::vector<std::unique_ptr<Node>> nodes_;
  std::unordered_map<std::string, Node*> host_index_;
  std::unordered_map<Pid, Process*> pid_index_;
  std::unordered_map<std::string, ProgramImage> programs_;
  sim::Timeline* timeline_ = nullptr;
  sim::CostLedger* ledger_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  obs::Metrics* metrics_ = nullptr;
  obs::FlightRecorderHub* flight_ = nullptr;
  Pid next_pid_ = 1000;
  Channel::Id next_channel_ = 1;
};

}  // namespace lmon::cluster
