// process.hpp - simulated processes and the Program model.
//
// A Process is the unit of execution on a Node. Its behaviour is supplied by
// a Program: a passive object whose virtual handlers are invoked by the
// simulator (start, message arrival, connection, child exit). All protocol
// logic in this repository - the RM, rshd, the LaunchMON engine, tool
// daemons - is written as Programs, so it is *real* event-driven protocol
// code; only the clock underneath is simulated.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/channel.hpp"
#include "cluster/types.hpp"
#include "common/bytes.hpp"
#include "common/status.hpp"
#include "simkernel/simulator.hpp"

namespace lmon::cluster {

class Machine;
class Node;
class Process;
class TraceSession;
struct DebugEvent;

/// Status + value pair for fallible operations that must not throw.
template <typename T>
struct Result {
  Status status;
  T value{};
  [[nodiscard]] bool is_ok() const { return status.is_ok(); }
};

/// Named global variables in a process image (MPIR_proctable & friends).
/// Tracers read them through TraceSession with a size-proportional cost.
class SymbolSpace {
 public:
  void write(const std::string& name, Bytes data) {
    syms_[name] = std::move(data);
  }
  [[nodiscard]] const Bytes* find(const std::string& name) const {
    auto it = syms_.find(name);
    return it == syms_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] bool has(const std::string& name) const {
    return syms_.count(name) != 0;
  }

 private:
  std::map<std::string, Bytes> syms_;
};

/// Behaviour of a simulated process. Handlers run to completion atomically
/// (the simulator is single-threaded); long-running work is expressed by
/// posting continuations with Process::post.
class Program {
 public:
  virtual ~Program() = default;

  /// Short name for logs ("srun", "jobsnap_be", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Invoked once the process finishes exec (after fork/exec cost).
  virtual void on_start(Process& self) = 0;

  /// A peer completed connect() to a port this process listens on.
  virtual void on_connection(Process& self, ChannelPtr channel) {
    (void)self;
    (void)channel;
  }

  /// A message arrived on a channel this process owns an end of.
  virtual void on_message(Process& self, const ChannelPtr& channel,
                          Message msg) {
    (void)self;
    (void)channel;
    (void)msg;
  }

  /// The peer closed the channel (or exited).
  virtual void on_channel_closed(Process& self, const ChannelPtr& channel) {
    (void)self;
    (void)channel;
  }

  /// A direct child exited.
  virtual void on_child_exit(Process& self, Pid child, int exit_code) {
    (void)self;
    (void)child;
    (void)exit_code;
  }
};

/// Parameters for spawning a process.
struct SpawnOptions {
  std::string executable = "a.out";       ///< image name (RPDTAB field)
  std::vector<std::string> args;          ///< argv-style parameters
  double image_mb = 4.0;                  ///< drives exec + DPCL-parse costs
  bool start_traced = false;              ///< spawn under the caller's trace
  /// PR_SET_PDEATHSIG-style: the child is killed (exit 9) when its parent
  /// exits. Launch agents use this so ad hoc-launched daemons cannot outlive
  /// the session that started them, even on a hard kill.
  bool die_with_parent = false;
  /// Invoked in the *parent's* context once the child has finished exec and
  /// its on_start ran (i.e. once the fork/exec cost has been paid). This is
  /// how launch substrates account spawn completion without polling.
  std::function<void(Pid)> started_callback;
};

using ConnectCallback = std::function<void(Status, ChannelPtr)>;
using DebugEventHandler = std::function<void(const DebugEvent&)>;

class Process {
 public:
  Process(Machine& machine, Node& node, Pid pid, Pid parent,
          std::unique_ptr<Program> program, SpawnOptions options);
  ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  [[nodiscard]] Pid pid() const noexcept { return pid_; }
  [[nodiscard]] Pid parent() const noexcept { return parent_; }
  [[nodiscard]] Node& node() noexcept { return node_; }
  [[nodiscard]] Machine& machine() noexcept { return machine_; }
  [[nodiscard]] sim::Simulator& sim() noexcept;
  [[nodiscard]] ProcState state() const noexcept { return state_; }
  [[nodiscard]] const SpawnOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] const std::vector<std::string>& args() const noexcept {
    return options_.args;
  }
  [[nodiscard]] Program& program() noexcept { return *program_; }
  [[nodiscard]] ProcStats& stats() noexcept { return stats_; }
  [[nodiscard]] const ProcStats& stats() const noexcept { return stats_; }
  [[nodiscard]] SymbolSpace& symbols() noexcept { return symbols_; }
  [[nodiscard]] const SymbolSpace& symbols() const noexcept {
    return symbols_;
  }

  // --- time ---------------------------------------------------------------
  /// Schedules `fn` after `delay`. If the process is stopped by a tracer at
  /// fire time the continuation is deferred until resume; if it has exited
  /// the continuation is dropped. This gives tracer stop/continue faithful
  /// "the whole process freezes" semantics.
  void post(sim::Time delay, std::function<void()> fn);

  /// Reserves `cost` of serialized CPU time on this process and returns the
  /// delay until that work completes. Consecutive reservations queue behind
  /// each other - used to model blocking operations (e.g. synchronous rsh
  /// invocations) that cannot overlap within one process.
  sim::Time reserve_busy(sim::Time cost);

  // --- networking -----------------------------------------------------------
  /// Starts accepting connections on `port`. When `on_accept` is given, new
  /// channels on this port are delivered to it instead of the Program's
  /// on_connection (socket-style accept callback; protocol libraries use
  /// this to own their listening ports).
  using AcceptHandler = std::function<void(ChannelPtr)>;
  Status listen(Port port, AcceptHandler on_accept = nullptr);
  void stop_listening(Port port);

  /// Asynchronously connects to host:port. The callback receives the new
  /// channel, or a failure Status if nothing listens there.
  void connect(const std::string& host, Port port, ConnectCallback cb);

  /// Sends on a channel owned by this process.
  void send(const ChannelPtr& channel, Message msg);
  void close_channel(const ChannelPtr& channel);

  // --- channel routing ------------------------------------------------------
  /// Registers a per-channel handler pair; while registered, traffic on that
  /// channel bypasses the Program's on_message/on_channel_closed. Protocol
  /// libraries (LaunchMON FE runtime, ICCL, rsh sessions) use this so that a
  /// single process can multiplex several protocols, exactly like callback
  /// registration in an event-loop library.
  using MessageHandler = std::function<void(const ChannelPtr&, Message)>;
  using ClosedHandler = std::function<void(const ChannelPtr&)>;
  void set_channel_handler(const ChannelPtr& channel, MessageHandler on_msg,
                           ClosedHandler on_closed = nullptr);
  void clear_channel_handler(Channel::Id id);

  /// Routes to the per-channel handler if present, else the Program.
  void dispatch_message(const ChannelPtr& channel, Message msg);
  void dispatch_closed(const ChannelPtr& channel);

  // --- process management ------------------------------------------------------
  /// Forks/execs a child on this node. Fails with Rc::Esys once this process
  /// already has `child_limit()` live children (per-user nproc limit - this
  /// is what kills the rsh-based ad hoc launcher at scale).
  Result<Pid> spawn_child(std::unique_ptr<Program> program, SpawnOptions opts);

  [[nodiscard]] int live_children() const;
  [[nodiscard]] int child_limit() const noexcept { return child_limit_; }
  void set_child_limit(int limit) noexcept { child_limit_ = limit; }

  /// Terminates this process; channels close, the parent gets on_child_exit,
  /// the tracer (if any) gets an Exited debug event.
  void exit(int code);

  // --- tracee side -----------------------------------------------------------------
  [[nodiscard]] bool traced() const noexcept { return tracer_ != nullptr; }

  /// Declares a debugger breakpoint. When traced, the process stops, the
  /// tracer receives a Stopped event, and `resume` runs only after the
  /// tracer calls continue_target(). Untraced processes continue immediately.
  void breakpoint(const std::string& symbol, std::function<void()> resume);

  // --- tracer side -------------------------------------------------------------------
  /// Attaches to a running process debugger-style: the target stops and the
  /// handler receives an Attached event. Returns the session (owned by this
  /// process) or an error if the target is unknown/dead.
  Result<TraceSession*> trace_attach(Pid target, DebugEventHandler handler);

  /// Fork/exec a child under trace control (like `srun` under a debugger).
  Result<std::pair<Pid, TraceSession*>> spawn_traced(
      std::unique_ptr<Program> program, SpawnOptions opts,
      DebugEventHandler handler);

 private:
  friend class Node;
  friend class Machine;
  friend class Channel;
  friend class TraceSession;

  void set_state(ProcState s) noexcept { state_ = s; }
  void reap_pdeath_children();
  void deliver(std::function<void()> fn);  // respects Stopped/Exited
  void flush_deferred();
  void attach_tracer(TraceSession* session);
  void detach_tracer();
  void register_channel(const ChannelPtr& ch);
  void forget_channel(Channel::Id id);

  Machine& machine_;
  Node& node_;
  Pid pid_;
  Pid parent_;
  std::unique_ptr<Program> program_;
  SpawnOptions options_;
  ProcState state_ = ProcState::Spawning;
  ProcStats stats_;
  SymbolSpace symbols_;
  int child_limit_;
  std::vector<Pid> children_;
  std::map<Channel::Id, ChannelPtr> channels_;
  std::map<Channel::Id, std::pair<MessageHandler, ClosedHandler>> handlers_;
  std::vector<Port> listening_;
  std::vector<std::function<void()>> deferred_;
  std::vector<std::unique_ptr<TraceSession>> trace_sessions_;
  TraceSession* tracer_ = nullptr;  ///< session tracing *this* process
  std::function<void()> pending_resume_;
  sim::Time busy_until_ = 0;
};

}  // namespace lmon::cluster
