#include "cluster/machine.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace lmon::cluster {

Machine::Machine(sim::Simulator& simulator, MachineConfig config)
    : sim_(simulator),
      config_(std::move(config)),
      network_(config_.costs, simulator.rng().fork()),
      jitter_rng_(simulator.rng().fork()) {
  const int total = 1 + config_.num_compute_nodes + config_.num_middleware_nodes;
  nodes_.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    std::string host = i == 0 ? config_.host_prefix + "-fe"
                              : config_.host_prefix + std::to_string(i);
    nodes_.push_back(
        std::make_unique<Node>(*this, static_cast<NodeId>(i), host));
    host_index_.emplace(nodes_.back()->hostname(), nodes_.back().get());
  }
}

void Machine::set_tracer(obs::Tracer* t) {
  tracer_ = t;
  if (tracer_ == nullptr) return;
  for (const auto& node : nodes_) {
    tracer_->name_track(static_cast<int>(node->id()), node->hostname());
  }
  for (const auto& [pid, proc] : pid_index_) {
    if (proc == nullptr) continue;
    tracer_->name_lane(static_cast<int>(proc->node().id()), pid,
                       std::string(proc->program().name()) + "/" +
                           std::to_string(pid));
  }
}

void Machine::index_process(Pid pid, Process* p) {
  pid_index_[pid] = p;
  if (tracer_ != nullptr && p != nullptr) {
    tracer_->name_lane(static_cast<int>(p->node().id()), pid,
                       std::string(p->program().name()) + "/" +
                           std::to_string(pid));
  }
}

Node* Machine::find_host(std::string_view hostname) {
  auto it = host_index_.find(std::string(hostname));
  return it == host_index_.end() ? nullptr : it->second;
}

Process* Machine::find_process(Pid pid) {
  auto it = pid_index_.find(pid);
  return it == pid_index_.end() ? nullptr : it->second;
}

sim::Time Machine::jittered(sim::Time base) {
  const double j = config_.costs.proc_jitter;
  if (j <= 0.0) return base;
  const double factor = jitter_rng_.normal(1.0, j);
  return std::max<sim::Time>(
      1, static_cast<sim::Time>(static_cast<double>(base) * factor));
}

void Machine::open_connection(Process& from, const std::string& host,
                              Port port, ConnectCallback cb) {
  const Pid from_pid = from.pid();
  Node* target = find_host(host);
  if (target == nullptr) {
    sim_.schedule(config_.costs.net_latency, [this, from_pid, cb, host] {
      Process* fp = find_process(from_pid);
      if (fp == nullptr || fp->state() == ProcState::Exited) return;
      fp->deliver(
          [cb, host] { cb(Status(Rc::Esubcom, "no such host: " + host), nullptr); });
    });
    return;
  }

  const NodeId from_node = from.node().id();
  const NodeId target_node = target->id();
  const sim::Time t = network_.connect_time(from_node, target_node);

  sim_.schedule(t, [this, from_pid, from_node, target_node, port, cb] {
    Process* fp = find_process(from_pid);
    if (fp == nullptr || fp->state() == ProcState::Exited) return;

    Node& tn = node(target_node);
    const Node::Listener* listener = tn.listener(port);
    Process* lp =
        listener == nullptr ? nullptr : find_process(listener->pid);
    if (lp == nullptr || lp->state() == ProcState::Exited) {
      fp->deliver([cb] {
        cb(Status(Rc::Esubcom, "connection refused"), nullptr);
      });
      return;
    }

    auto ch = std::make_shared<Channel>(alloc_channel_id(), *this, from_pid,
                                        from_node, lp->pid(), target_node);
    fp->register_channel(ch);
    lp->register_channel(ch);
    auto accept = listener->on_accept;
    lp->deliver([lp, ch, accept] {
      if (accept) {
        accept(ch);
      } else {
        lp->program().on_connection(*lp, ch);
      }
    });
    fp->deliver([fp, cb, ch] {
      (void)fp;
      cb(Status::ok(), ch);
    });
  });
}

}  // namespace lmon::cluster
