// message.hpp - unit of transfer on a simulated channel.
#pragma once

#include <utility>

#include "common/bytes.hpp"

namespace lmon::cluster {

/// An opaque, already-serialized frame. The network charges transfer time by
/// size() so protocols pay for exactly the bytes they encode.
struct Message {
  lmon::Bytes bytes;

  Message() = default;
  explicit Message(lmon::Bytes b) : bytes(std::move(b)) {}

  [[nodiscard]] std::size_t size() const noexcept { return bytes.size(); }
};

}  // namespace lmon::cluster
