#include "cluster/cost_model.hpp"

// CostModel is a plain aggregate; this TU exists so the library has a home
// for future non-inline calibration helpers and to anchor the vtable-free
// type for ODR purposes.
namespace lmon::cluster {}  // namespace lmon::cluster
