// tracing.hpp - ptrace-like debugger primitives.
//
// The LaunchMON engine's defining trick (paper §3.1) is to trace the RM's
// launcher process: catch its MPIR_Breakpoint stop, read the proctable out
// of its address space, and drive it onward. This header models exactly the
// primitives that requires - attach, stop/continue, symbol-addressed memory
// reads with size-proportional cost, and asynchronous debug events.
#pragma once

#include <functional>
#include <string>

#include "cluster/types.hpp"
#include "common/bytes.hpp"
#include "common/status.hpp"

namespace lmon::cluster {

class Machine;
class Process;

enum class DebugEventType : std::uint8_t {
  Attached,  ///< target stopped after trace_attach
  Stopped,   ///< target hit a breakpoint (symbol names it)
  Exited,    ///< target terminated
};

struct DebugEvent {
  DebugEventType type;
  Pid target = kInvalidPid;
  std::string symbol;  ///< breakpoint symbol for Stopped events
  int exit_code = 0;   ///< for Exited events
};

/// One tracer-to-target attachment. Owned by the tracer Process; all
/// operations are asynchronous and charge the cost model's trace costs.
class TraceSession {
 public:
  TraceSession(Machine& machine, Pid tracer, Pid target,
               std::function<void(const DebugEvent&)> handler);

  [[nodiscard]] Pid target() const noexcept { return target_; }
  [[nodiscard]] Pid tracer() const noexcept { return tracer_; }
  [[nodiscard]] bool attached() const noexcept { return attached_; }

  /// Reads a named symbol from the (stopped or running) target's address
  /// space. Cost: mem_read_base + size * mem_read_per_kb. The callback gets
  /// Rc::Einval if the symbol does not exist, Rc::Edead if the target died.
  void read_symbol(const std::string& name,
                   std::function<void(Status, Bytes)> cb);

  /// Writes a named symbol into the target (e.g. MPIR_being_debugged).
  void write_symbol(const std::string& name, Bytes data,
                    std::function<void(Status)> cb);

  /// Resumes a target stopped at a breakpoint or by attach.
  void continue_target();

  /// Detaches; the target resumes if stopped and the session goes dead.
  void detach();

  /// Kills the target outright.
  void kill_target();

 private:
  friend class Process;

  void emit(const DebugEvent& ev);  // schedules handler in tracer context
  Process* live_target() const;

  Machine& machine_;
  Pid tracer_;
  Pid target_;
  std::function<void(const DebugEvent&)> handler_;
  bool attached_ = true;
};

}  // namespace lmon::cluster
