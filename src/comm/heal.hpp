// heal.hpp - pure subtree-reparent math for self-healing trees.
//
// When a comm daemon dies, the ranks whose parent chain ran through it must
// be re-homed onto survivors. Everything here is a pure function of
// (Topology, dead-set): the live recovery protocol (ICCL Reattach, TBON
// re-Hello) and the planners for elastic grow/shrink share these answers,
// which is what keeps "who adopts whom" testable without booting a fabric.
//
// Two families:
//   - nearest_live_ancestor / reparent_plan: what the live protocol does.
//     Each orphan climbs its own ancestor chain and attaches to the first
//     survivor, so an adoption never changes which subtree a rank's payload
//     transits (the adopter was already on the orphan's root path). This is
//     the invariant the collective-replay rules rely on.
//   - assign_orphan_blocks[_weighted]: block planners for future elastic
//     grow/rebalance, partitioning an orphan list across candidate adopters
//     in contiguous (optionally capacity-weighted) runs, mirroring the
//     split_contiguous/split_weighted placement used at bootstrap.
#pragma once

#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "comm/topology.hpp"

namespace lmon::comm {

/// One orphan -> adopter edge of a recovery plan.
struct Adoption {
  std::uint32_t orphan = 0;
  std::uint32_t new_parent = 0;

  friend bool operator==(const Adoption& a, const Adoption& b) {
    return a.orphan == b.orphan && a.new_parent == b.new_parent;
  }
};

/// Ancestor chain of `rank` from its parent up to (and including) the root,
/// in climb order. Empty for the root and for out-of-range ranks.
[[nodiscard]] std::vector<std::uint32_t> ancestor_chain(const Topology& topo,
                                                        std::uint32_t rank);

/// First ancestor of `rank` (strictly above it) not in `dead`. nullopt when
/// the whole chain up to and including the root is dead, or `rank` is the
/// root / out of range.
[[nodiscard]] std::optional<std::uint32_t> nearest_live_ancestor(
    const Topology& topo, std::uint32_t rank,
    const std::set<std::uint32_t>& dead);

/// Full recovery plan for a dead-set: every live rank whose parent is dead
/// is adopted by its nearest live ancestor. Ranks inside `dead` are skipped
/// (they have nothing to reattach). Sorted by orphan rank. Orphans whose
/// entire ancestor chain is dead (root loss) are omitted - they are
/// unrecoverable without a new root.
[[nodiscard]] std::vector<Adoption> reparent_plan(
    const Topology& topo, const std::set<std::uint32_t>& dead);

/// Partitions `orphans` (in the given order) into contiguous blocks, one per
/// adopter, near-equal length, earlier adopters taking the remainder -
/// split_contiguous applied to a recovery plan. Empty when either side is.
[[nodiscard]] std::vector<Adoption> assign_orphan_blocks(
    const std::vector<std::uint32_t>& orphans,
    const std::vector<std::uint32_t>& adopters);

/// Capacity-weighted variant: block lengths proportional to each adopter's
/// weight (largest-remainder, deterministic; all-zero weights fall back to
/// near-equal). weights.size() must equal adopters.size().
[[nodiscard]] std::vector<Adoption> assign_orphan_blocks_weighted(
    const std::vector<std::uint32_t>& orphans,
    const std::vector<std::uint32_t>& adopters,
    const std::vector<double>& weights);

}  // namespace lmon::comm
