// bootstrap.hpp - the daemon bootstrap payload and its argv wire form.
//
// Every launch strategy (serial rsh, tree rsh, RM bulk launch) ultimately
// has to hand each tool daemon the same bootstrap information: its place in
// the session (rank/size), the fabric tree shape, the per-session port, the
// front-end endpoint for the master's handshake, and the rank-ordered host
// list. The paper's RM integration passes it the way SLURM does - on the
// daemon's argv. This header is the one place that writes and parses that
// argv, so strategies cannot drift apart.
//
// Rank is optional on the wire: bulk launchers that spawn each daemon
// individually pass --lmon-rank explicitly, while broadcast-style launchers
// (the tree-rsh agent hands every daemon an identical command line) omit it
// and the daemon derives its rank from its host's position in the list.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/types.hpp"
#include "comm/topology.hpp"

namespace lmon::comm {

/// Session-wide bootstrap parameters (everything but the per-daemon rank).
struct BootstrapSpec {
  std::uint32_t size = 1;
  TopologySpec topology;
  cluster::Port port = 0;       ///< per-session fabric listen port
  std::string session;          ///< session cookie
  std::string fe_host;          ///< tool front end (master daemon connects)
  cluster::Port fe_port = 0;
  std::vector<std::string> hosts;  ///< daemon hosts in rank order
  /// Eager->rendezvous collective switch threshold in payload bytes;
  /// 0 means "use the platform default" (CostModel::iccl_rndv_threshold_bytes).
  std::uint32_t rndv_threshold = 0;
  /// Platform calibration profile name (cluster::CostModelRegistry); empty
  /// means "the machine's own costs". When set, daemons resolve platform
  /// defaults (the rendezvous threshold above) from the named profile, so
  /// every rank agrees with the engine's tuner about what "default" means.
  std::string platform;
  /// Self-healing: when set, daemons survive comm-daemon death by
  /// reparenting orphaned subtrees onto the nearest live ancestor and
  /// replaying in-flight collective state. Off by default - the historical
  /// behavior (drop the dead subtree) is what non-healing sessions pin.
  bool heal = false;
  /// Grace window (ms) an adopter waits for a dead child's orphans to
  /// reattach before retracting their unclaimed payloads; 0 = default.
  std::uint32_t heal_grace_ms = 0;
  /// Admission bound for the persistent multiplexed service: how many
  /// concurrent virtual sessions this tree accepts (0 = the default cap).
  /// The master daemon enforces it and rejects attaches beyond the bound.
  std::uint32_t max_sessions = 0;
};

/// What a daemon recovers from its argv.
struct BootstrapParams {
  std::uint32_t rank = 0;
  std::uint32_t size = 1;
  TopologySpec topology;
  cluster::Port port = 0;
  std::string session;
  std::string fe_host;
  cluster::Port fe_port = 0;
  std::vector<std::string> hosts;
  std::uint32_t rndv_threshold = 0;  ///< 0 = platform default
  std::string platform;              ///< profile name; empty = machine costs
  bool heal = false;                 ///< self-healing tree recovery enabled
  std::uint32_t heal_grace_ms = 0;   ///< orphan-reattach grace; 0 = default
  std::uint32_t max_sessions = 0;    ///< virtual-session cap; 0 = default
};

/// Emits the "--lmon-*" argv for one daemon. Pass nullopt as `rank` for
/// launchers that cannot vary the command line per daemon; the receiving
/// side then resolves the rank from the host list.
[[nodiscard]] std::vector<std::string> bootstrap_args(
    const BootstrapSpec& spec, std::optional<std::uint32_t> rank);

/// Parses a daemon argv. `self_host` backs the rank-from-host fallback when
/// --lmon-rank is absent; pass the daemon's own hostname (or empty to
/// require an explicit rank). Returns nullopt when required parameters are
/// missing or inconsistent - which is what a daemon started outside
/// LaunchMON sees.
[[nodiscard]] std::optional<BootstrapParams> parse_bootstrap(
    const std::vector<std::string>& args, std::string_view self_host = {});

}  // namespace lmon::comm
