// launch_strategy.hpp - pluggable daemon bootstrap strategies (paper §2/§4).
//
// The paper contrasts three ways of getting tool daemons onto the nodes of
// a job:
//
//   serial-rsh  the tool front end rsh-spawns every daemon sequentially
//               (the baseline "most implementations" use);
//   tree-rsh    daemons the front end launches recursively spawn children
//               ("others employ a tree-based protocol");
//   rm-bulk     LaunchMON's contribution: delegate to the resource
//               manager's scalable native launch.
//
// LaunchStrategy abstracts that choice behind one interface so the engine
// (and benches) can select a strategy per session option instead of
// hard-coding one path per layer. Every strategy delivers the identical
// bootstrap argv (comm/bootstrap.hpp) to the daemons, so a daemon cannot
// tell - and the fabric does not care - how it was launched.
//
// Implementations live with their transports: rsh::SerialRshStrategy and
// rsh::TreeRshStrategy in src/rsh/launchers.*, rm::RmBulkStrategy in
// src/rm/launcher.*. make_launch_strategy() is the one factory.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/process.hpp"
#include "comm/bootstrap.hpp"
#include "common/status.hpp"
#include "rm/types.hpp"

namespace lmon::comm {

enum class LaunchStrategyKind : std::uint8_t {
  RmBulk = 0,
  SerialRsh = 1,
  TreeRsh = 2,
};

[[nodiscard]] std::string_view to_string(LaunchStrategyKind kind);
[[nodiscard]] std::optional<LaunchStrategyKind> launch_strategy_from_string(
    std::string_view name);

/// Every registered strategy, in ablation order (the paper's baselines
/// first, the contribution last). Benches and sweeps iterate this instead
/// of hard-coding kinds, so a new strategy automatically joins every
/// ablation that sweeps "all strategies".
inline constexpr std::array<LaunchStrategyKind, 3> kAllLaunchStrategies = {
    LaunchStrategyKind::SerialRsh,
    LaunchStrategyKind::TreeRsh,
    LaunchStrategyKind::RmBulk,
};

/// One daemon-launch operation. The bootstrap spec names the hosts (rank
/// order) and the fabric shape; the remaining fields parameterize the
/// transport.
struct LaunchRequest {
  std::string daemon_exe;
  std::vector<std::string> daemon_args;  ///< tool args (non-bootstrap)
  BootstrapSpec bootstrap;

  /// Tree degree of the launch protocol itself (tree-rsh agent fan-out and
  /// the RM's node-daemon forwarding); independent of the fabric topology.
  std::uint32_t launch_fanout = 0;

  // --- rm-bulk only -------------------------------------------------------
  rm::JobId jobid = rm::kInvalidJob;  ///< co-locate with this job, or...
  std::uint32_t alloc_nodes = 0;      ///< ...allocate fresh nodes (MW case)
  bool middleware_partition = false;
  cluster::Port report_port = 0;  ///< where the bulk launcher reports back
};

struct LaunchResult {
  Status status;
  /// One entry per started daemon (host/executable/pid/rank).
  std::vector<rm::TaskDesc> daemons;
  /// Job the daemons were co-located with (rm-bulk; kInvalidJob otherwise).
  rm::JobId jobid = rm::kInvalidJob;
};

class LaunchStrategy {
 public:
  using Callback = std::function<void(LaunchResult)>;

  virtual ~LaunchStrategy() = default;

  [[nodiscard]] virtual std::string_view name() const = 0;
  [[nodiscard]] virtual LaunchStrategyKind kind() const = 0;

  /// Starts the daemons. One launch per strategy instance; the instance
  /// keeps whatever state (rsh sessions, report channels) holds the
  /// daemons alive, so it must outlive the session.
  virtual void launch(cluster::Process& self, LaunchRequest req,
                      Callback cb) = 0;

  /// Tears the launched daemons down (drops keepalive sessions or asks the
  /// bulk launcher to kill them). `cb` may fire immediately for strategies
  /// with synchronous teardown.
  virtual void teardown(cluster::Process& self,
                        std::function<void(Status)> cb) = 0;
};

/// Builds a strategy instance. Defined in launch_strategy.cpp, which is the
/// only comm file that links against the rsh and rm transports.
[[nodiscard]] std::unique_ptr<LaunchStrategy> make_launch_strategy(
    LaunchStrategyKind kind);

}  // namespace lmon::comm
