// topology.hpp - the one place that knows tree shapes.
//
// Before this layer existed the k-ary parent/child arithmetic was
// re-implemented in the ICCL (src/core/iccl.cpp), the TBON layout
// (src/tbon/topology.cpp) and the rsh/RM launch fan-out code. comm::Topology
// centralizes it and adds the shapes the paper's ablations want to compare:
//
//   KAry      rank r's children are r*k+1 .. r*k+k (breadth-first heap
//             layout); the shape SLURM-like RMs use for bulk launch.
//   Binomial  rank r's parent clears r's lowest set bit; the classic
//             MPI-collective shape (log2 rounds, no per-level serialization
//             beyond the sends a rank already owns).
//   Flat      1-to-N: every rank hangs off rank 0, the paper's "1-deep"
//             STAT topology and the degenerate case of serial fan-out.
//
// All queries are pure functions of (kind, arity, size, rank): nothing here
// touches processes or sockets, which is what lets five layers share it.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lmon::comm {

enum class TopologyKind : std::uint8_t {
  KAry = 0,
  Binomial = 1,
  Flat = 2,
};

[[nodiscard]] std::string_view to_string(TopologyKind kind);
[[nodiscard]] std::optional<TopologyKind> topology_kind_from_string(
    std::string_view name);

/// Validated wire decode: nullopt for bytes outside the enum range, so a
/// corrupted payload is rejected at decode instead of producing a kind no
/// Topology switch handles.
[[nodiscard]] std::optional<TopologyKind> topology_kind_from_u8(
    std::uint8_t v);

/// Shape parameters: everything a daemon needs (beyond its rank and the
/// session size) to compute its tree neighborhood. `arity` is the tree
/// degree for KAry; Binomial and Flat ignore it. arity==0 means "use the
/// platform default" and is normalized to 1 by Topology.
struct TopologySpec {
  TopologyKind kind = TopologyKind::KAry;
  std::uint32_t arity = 2;

  /// "kary:8", "binomial", "flat" - the argv/CLI wire form.
  [[nodiscard]] std::string to_string() const;
  static std::optional<TopologySpec> parse(std::string_view text);

  friend bool operator==(const TopologySpec& a, const TopologySpec& b) {
    return a.kind == b.kind && a.arity == b.arity;
  }
};

class Topology {
 public:
  Topology(TopologySpec spec, std::uint32_t size);

  [[nodiscard]] const TopologySpec& spec() const noexcept { return spec_; }
  [[nodiscard]] std::uint32_t size() const noexcept { return size_; }

  /// Parent rank, or nullopt for the root (rank 0) and for out-of-range
  /// ranks.
  [[nodiscard]] std::optional<std::uint32_t> parent_of(
      std::uint32_t rank) const;

  /// Direct children of `rank`, ascending.
  [[nodiscard]] std::vector<std::uint32_t> children_of(
      std::uint32_t rank) const;

  /// All ranks in the subtree rooted at `rank` (including `rank`), sorted.
  [[nodiscard]] std::vector<std::uint32_t> subtree_of(
      std::uint32_t rank) const;

  /// Hops from `rank` up to the root; root is 0.
  [[nodiscard]] std::uint32_t depth_of(std::uint32_t rank) const;

  /// Depth of the deepest rank (a singleton tree has depth 0).
  [[nodiscard]] std::uint32_t depth() const;

  /// Total parent->child edges; always size-1 for a connected tree.
  [[nodiscard]] std::uint64_t edge_count() const;

 private:
  TopologySpec spec_;
  std::uint32_t size_;
};

/// Splits `count` items (indices 0..count-1) into up to `fanout` contiguous
/// chunks of near-equal length, earlier chunks taking the remainder. This is
/// the subtree partition used by recursive launch protocols (rsh tree agents
/// and the RM's node-daemon tree forwarding), which hand each child a
/// contiguous slice of the host list rather than a rank-math subtree.
/// Returns (begin, length) pairs; empty when count == 0.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
split_contiguous(std::size_t count, std::uint32_t fanout);

/// Capacity-weighted variant of split_contiguous(): splits `count` items
/// into weights.size() contiguous blocks whose lengths are proportional to
/// the weights (largest-remainder rounding, ties to the lower index, so the
/// partition is deterministic). Zero/negative weights yield empty blocks;
/// all-zero weights fall back to the near-equal split. Used by
/// topology-aware daemon placement to hand a bigger back-end slice to
/// attach points with more local capacity. Returns (begin, length) pairs,
/// one per weight, in order; empty when count == 0 or weights is empty.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>>
split_weighted(std::size_t count, const std::vector<double>& weights);

}  // namespace lmon::comm
