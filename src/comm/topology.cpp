#include "comm/topology.hpp"

#include <algorithm>

namespace lmon::comm {

namespace {

/// Largest power of two dividing `r` (the "lowest set bit"); only called
/// with r != 0.
std::uint32_t low_bit(std::uint32_t r) { return r & (~r + 1u); }

}  // namespace

std::string_view to_string(TopologyKind kind) {
  switch (kind) {
    case TopologyKind::KAry:
      return "kary";
    case TopologyKind::Binomial:
      return "binomial";
    case TopologyKind::Flat:
      return "flat";
  }
  return "kary";
}

std::optional<TopologyKind> topology_kind_from_u8(std::uint8_t v) {
  switch (v) {
    case static_cast<std::uint8_t>(TopologyKind::KAry):
      return TopologyKind::KAry;
    case static_cast<std::uint8_t>(TopologyKind::Binomial):
      return TopologyKind::Binomial;
    case static_cast<std::uint8_t>(TopologyKind::Flat):
      return TopologyKind::Flat;
    default:
      return std::nullopt;
  }
}

std::optional<TopologyKind> topology_kind_from_string(std::string_view name) {
  if (name == "kary" || name == "k-ary") return TopologyKind::KAry;
  if (name == "binomial") return TopologyKind::Binomial;
  if (name == "flat") return TopologyKind::Flat;
  return std::nullopt;
}

std::string TopologySpec::to_string() const {
  std::string out(comm::to_string(kind));
  if (kind == TopologyKind::KAry) {
    out += ':';
    out += std::to_string(arity);
  }
  return out;
}

std::optional<TopologySpec> TopologySpec::parse(std::string_view text) {
  TopologySpec spec;
  const std::size_t colon = text.find(':');
  const std::string_view name = text.substr(0, colon);
  auto kind = topology_kind_from_string(name);
  if (!kind) return std::nullopt;
  spec.kind = *kind;
  // Non-k-ary kinds ignore arity for the fabric shape, but a nonzero value
  // would also suppress the "platform default" launch fan-out
  // normalization - keep it 0 ("default") unless spelled out.
  if (spec.kind != TopologyKind::KAry) spec.arity = 0;
  if (colon != std::string_view::npos) {
    std::uint32_t arity = 0;
    for (char c : text.substr(colon + 1)) {
      if (c < '0' || c > '9') return std::nullopt;
      arity = arity * 10 + static_cast<std::uint32_t>(c - '0');
    }
    spec.arity = arity;
  }
  return spec;
}

Topology::Topology(TopologySpec spec, std::uint32_t size)
    : spec_(spec), size_(size) {
  if (spec_.arity == 0) spec_.arity = 1;
}

std::optional<std::uint32_t> Topology::parent_of(std::uint32_t rank) const {
  if (rank == 0 || rank >= size_) return std::nullopt;
  switch (spec_.kind) {
    case TopologyKind::KAry:
      return (rank - 1) / spec_.arity;
    case TopologyKind::Binomial:
      return rank & (rank - 1);  // clear the lowest set bit
    case TopologyKind::Flat:
      return 0;
  }
  return std::nullopt;
}

std::vector<std::uint32_t> Topology::children_of(std::uint32_t rank) const {
  std::vector<std::uint32_t> out;
  if (rank >= size_) return out;
  switch (spec_.kind) {
    case TopologyKind::KAry:
      for (std::uint32_t i = 1; i <= spec_.arity; ++i) {
        const std::uint64_t c =
            static_cast<std::uint64_t>(rank) * spec_.arity + i;
        if (c >= size_) break;
        out.push_back(static_cast<std::uint32_t>(c));
      }
      break;
    case TopologyKind::Binomial: {
      // Children are rank + 2^j for every 2^j below rank's lowest set bit
      // (the root owns every power of two).
      const std::uint64_t limit = rank == 0 ? size_ : low_bit(rank);
      for (std::uint64_t bit = 1; bit < limit; bit <<= 1) {
        const std::uint64_t c = rank + bit;
        if (c < size_) out.push_back(static_cast<std::uint32_t>(c));
      }
      break;
    }
    case TopologyKind::Flat:
      if (rank == 0) {
        out.reserve(size_ > 0 ? size_ - 1 : 0);
        for (std::uint32_t r = 1; r < size_; ++r) out.push_back(r);
      }
      break;
  }
  return out;
}

std::vector<std::uint32_t> Topology::subtree_of(std::uint32_t rank) const {
  std::vector<std::uint32_t> out;
  if (rank >= size_) return out;
  std::vector<std::uint32_t> frontier{rank};
  while (!frontier.empty()) {
    const std::uint32_t r = frontier.back();
    frontier.pop_back();
    out.push_back(r);
    for (std::uint32_t c : children_of(r)) frontier.push_back(c);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::uint32_t Topology::depth_of(std::uint32_t rank) const {
  std::uint32_t d = 0;
  std::uint32_t cur = rank;
  while (cur != 0 && cur < size_) {
    auto p = parent_of(cur);
    if (!p) break;
    cur = *p;
    d += 1;
  }
  return d;
}

std::uint32_t Topology::depth() const {
  std::uint32_t max_depth = 0;
  for (std::uint32_t r = 1; r < size_; ++r) {
    max_depth = std::max(max_depth, depth_of(r));
  }
  return max_depth;
}

std::uint64_t Topology::edge_count() const {
  std::uint64_t edges = 0;
  for (std::uint32_t r = 0; r < size_; ++r) {
    edges += children_of(r).size();
  }
  return edges;
}

std::vector<std::pair<std::size_t, std::size_t>> split_contiguous(
    std::size_t count, std::uint32_t fanout) {
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  if (count == 0) return chunks;
  const std::size_t nchunks =
      std::min<std::size_t>(fanout == 0 ? 1 : fanout, count);
  chunks.reserve(nchunks);
  const std::size_t base = count / nchunks;
  const std::size_t extra = count % nchunks;
  std::size_t pos = 0;
  for (std::size_t c = 0; c < nchunks; ++c) {
    const std::size_t len = base + (c < extra ? 1 : 0);
    chunks.emplace_back(pos, len);
    pos += len;
  }
  return chunks;
}

std::vector<std::pair<std::size_t, std::size_t>> split_weighted(
    std::size_t count, const std::vector<double>& weights) {
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  if (count == 0 || weights.empty()) return chunks;
  double total = 0;
  for (double w : weights) total += w > 0 ? w : 0;
  if (total <= 0) {
    // Degenerate weights: fall back to the near-equal split, padded with
    // empty blocks so the result still has one entry per weight.
    chunks = split_contiguous(count,
                              static_cast<std::uint32_t>(weights.size()));
    while (chunks.size() < weights.size()) chunks.emplace_back(count, 0);
    return chunks;
  }
  // Largest-remainder apportionment: floor the ideal share, then hand the
  // leftover items to the largest fractional parts (ties to the lower
  // index) - deterministic and exact, no float-accumulation drift.
  std::vector<std::size_t> len(weights.size(), 0);
  std::vector<std::pair<double, std::size_t>> frac;
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0 ? weights[i] : 0;
    const double ideal = static_cast<double>(count) * w / total;
    len[i] = static_cast<std::size_t>(ideal);
    assigned += len[i];
    frac.emplace_back(ideal - static_cast<double>(len[i]), i);
  }
  std::sort(frac.begin(), frac.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  for (std::size_t k = 0; assigned < count; ++k) {
    len[frac[k % frac.size()].second] += 1;
    assigned += 1;
  }
  chunks.reserve(weights.size());
  std::size_t pos = 0;
  for (std::size_t l : len) {
    chunks.emplace_back(pos, l);
    pos += l;
  }
  return chunks;
}

}  // namespace lmon::comm
