#include "comm/bootstrap.hpp"

#include "common/argparse.hpp"

namespace lmon::comm {

std::vector<std::string> bootstrap_args(const BootstrapSpec& spec,
                                        std::optional<std::uint32_t> rank) {
  std::vector<std::string> args;
  if (rank) args.push_back("--lmon-rank=" + std::to_string(*rank));
  args.push_back("--lmon-size=" + std::to_string(spec.size));
  args.push_back("--lmon-topo=" + spec.topology.to_string());
  args.push_back("--lmon-port=" + std::to_string(spec.port));
  if (spec.rndv_threshold != 0) {
    args.push_back("--lmon-rndv-threshold=" +
                   std::to_string(spec.rndv_threshold));
  }
  if (!spec.platform.empty()) {
    args.push_back("--lmon-platform=" + spec.platform);
  }
  if (spec.heal) {
    args.push_back("--lmon-heal=1");
    if (spec.heal_grace_ms != 0) {
      args.push_back("--lmon-heal-grace-ms=" +
                     std::to_string(spec.heal_grace_ms));
    }
  }
  if (spec.max_sessions != 0) {
    args.push_back("--lmon-max-sessions=" +
                   std::to_string(spec.max_sessions));
  }
  args.push_back("--lmon-session=" + spec.session);
  if (!spec.fe_host.empty()) {
    args.push_back("--lmon-fe-host=" + spec.fe_host);
    args.push_back("--lmon-fe-port=" + std::to_string(spec.fe_port));
  }
  args.push_back("--lmon-hosts=" + join_csv(spec.hosts));
  return args;
}

std::optional<BootstrapParams> parse_bootstrap(
    const std::vector<std::string>& args, std::string_view self_host) {
  BootstrapParams p;
  const auto size = arg_int(args, "--lmon-size=");
  const auto port = arg_int(args, "--lmon-port=");
  const auto hosts = arg_value(args, "--lmon-hosts=");
  if (!size || !port || !hosts) return std::nullopt;
  p.size = static_cast<std::uint32_t>(*size);
  p.port = static_cast<cluster::Port>(*port);
  p.hosts = split_csv(*hosts);
  p.session = arg_value(args, "--lmon-session=").value_or("s0");
  p.fe_host = arg_value(args, "--lmon-fe-host=").value_or("");
  p.fe_port = static_cast<cluster::Port>(
      arg_int(args, "--lmon-fe-port=").value_or(0));
  p.rndv_threshold = static_cast<std::uint32_t>(
      arg_int(args, "--lmon-rndv-threshold=").value_or(0));
  p.platform = arg_value(args, "--lmon-platform=").value_or("");
  p.heal = arg_int(args, "--lmon-heal=").value_or(0) != 0;
  p.heal_grace_ms = static_cast<std::uint32_t>(
      arg_int(args, "--lmon-heal-grace-ms=").value_or(0));
  p.max_sessions = static_cast<std::uint32_t>(
      arg_int(args, "--lmon-max-sessions=").value_or(0));

  // Tree shape: the modern "--lmon-topo=kind:arity" form, with the
  // pre-topology "--lmon-fanout=K" spelling still accepted (k-ary).
  if (const auto topo = arg_value(args, "--lmon-topo=")) {
    auto spec = TopologySpec::parse(*topo);
    if (!spec) return std::nullopt;
    p.topology = *spec;
  } else {
    p.topology.kind = TopologyKind::KAry;
    p.topology.arity =
        static_cast<std::uint32_t>(arg_int(args, "--lmon-fanout=").value_or(2));
  }
  if (p.topology.arity == 0) p.topology.arity = 1;

  if (const auto rank = arg_int(args, "--lmon-rank=")) {
    p.rank = static_cast<std::uint32_t>(*rank);
  } else {
    // Broadcast-style launch: every daemon got the same argv; recover the
    // rank from this host's position in the rank-ordered host list.
    if (self_host.empty()) return std::nullopt;
    std::size_t index = p.hosts.size();
    for (std::size_t i = 0; i < p.hosts.size(); ++i) {
      if (p.hosts[i] == self_host) {
        index = i;
        break;
      }
    }
    if (index == p.hosts.size()) return std::nullopt;
    p.rank = static_cast<std::uint32_t>(index);
  }

  if (p.size == 0 || p.rank >= p.size) return std::nullopt;
  if (p.hosts.size() != p.size) return std::nullopt;
  return p;
}

}  // namespace lmon::comm
