#include "comm/heal.hpp"

#include <algorithm>
#include <cassert>

namespace lmon::comm {

std::vector<std::uint32_t> ancestor_chain(const Topology& topo,
                                          std::uint32_t rank) {
  std::vector<std::uint32_t> chain;
  auto up = topo.parent_of(rank);
  while (up) {
    chain.push_back(*up);
    up = topo.parent_of(*up);
  }
  return chain;
}

std::optional<std::uint32_t> nearest_live_ancestor(
    const Topology& topo, std::uint32_t rank,
    const std::set<std::uint32_t>& dead) {
  for (const std::uint32_t a : ancestor_chain(topo, rank)) {
    if (dead.count(a) == 0) return a;
  }
  return std::nullopt;
}

std::vector<Adoption> reparent_plan(const Topology& topo,
                                    const std::set<std::uint32_t>& dead) {
  std::vector<Adoption> plan;
  for (std::uint32_t r = 0; r < topo.size(); ++r) {
    if (dead.count(r) != 0) continue;
    const auto parent = topo.parent_of(r);
    if (!parent || dead.count(*parent) == 0) continue;
    const auto adopter = nearest_live_ancestor(topo, r, dead);
    if (adopter) plan.push_back({r, *adopter});
  }
  return plan;
}

namespace {

std::vector<Adoption> blocks_to_adoptions(
    const std::vector<std::pair<std::size_t, std::size_t>>& blocks,
    const std::vector<std::uint32_t>& orphans,
    const std::vector<std::uint32_t>& adopters) {
  std::vector<Adoption> plan;
  plan.reserve(orphans.size());
  for (std::size_t i = 0; i < blocks.size() && i < adopters.size(); ++i) {
    const auto [begin, len] = blocks[i];
    for (std::size_t j = 0; j < len; ++j) {
      plan.push_back({orphans[begin + j], adopters[i]});
    }
  }
  return plan;
}

}  // namespace

std::vector<Adoption> assign_orphan_blocks(
    const std::vector<std::uint32_t>& orphans,
    const std::vector<std::uint32_t>& adopters) {
  if (orphans.empty() || adopters.empty()) return {};
  return blocks_to_adoptions(
      split_contiguous(orphans.size(),
                       static_cast<std::uint32_t>(adopters.size())),
      orphans, adopters);
}

std::vector<Adoption> assign_orphan_blocks_weighted(
    const std::vector<std::uint32_t>& orphans,
    const std::vector<std::uint32_t>& adopters,
    const std::vector<double>& weights) {
  if (orphans.empty() || adopters.empty()) return {};
  assert(weights.size() == adopters.size());
  return blocks_to_adoptions(split_weighted(orphans.size(), weights), orphans,
                             adopters);
}

}  // namespace lmon::comm
