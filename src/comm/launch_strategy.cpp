#include "comm/launch_strategy.hpp"

#include "rm/launcher.hpp"
#include "rsh/launchers.hpp"

namespace lmon::comm {

std::string_view to_string(LaunchStrategyKind kind) {
  switch (kind) {
    case LaunchStrategyKind::RmBulk:
      return "rm-bulk";
    case LaunchStrategyKind::SerialRsh:
      return "serial-rsh";
    case LaunchStrategyKind::TreeRsh:
      return "tree-rsh";
  }
  return "rm-bulk";
}

std::optional<LaunchStrategyKind> launch_strategy_from_string(
    std::string_view name) {
  if (name == "rm-bulk" || name == "rm") return LaunchStrategyKind::RmBulk;
  if (name == "serial-rsh" || name == "serial") {
    return LaunchStrategyKind::SerialRsh;
  }
  if (name == "tree-rsh" || name == "tree") return LaunchStrategyKind::TreeRsh;
  return std::nullopt;
}

std::unique_ptr<LaunchStrategy> make_launch_strategy(LaunchStrategyKind kind) {
  switch (kind) {
    case LaunchStrategyKind::RmBulk:
      return std::make_unique<rm::RmBulkStrategy>();
    case LaunchStrategyKind::SerialRsh:
      return std::make_unique<rsh::SerialRshStrategy>();
    case LaunchStrategyKind::TreeRsh:
      return std::make_unique<rsh::TreeRshStrategy>();
  }
  return std::make_unique<rm::RmBulkStrategy>();
}

}  // namespace lmon::comm
