// apai.hpp - the Automatic Process Acquisition Interface (MPIR).
//
// The de facto debugger interface the paper builds on (§2): the RM launcher
// exports MPIR_proctable / MPIR_proctable_size symbols and stops at
// MPIR_Breakpoint once the parallel job is up. A tool traces the launcher,
// waits for that stop, and reads the proctable out of its address space.
// Here the proctable is a real serialized byte blob in the launcher's
// SymbolSpace, so tracer reads pay a cost linear in job size - the origin of
// the paper's Region B term.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "cluster/process.hpp"
#include "common/bytes.hpp"
#include "rm/types.hpp"

namespace lmon::rm::apai {

// Canonical MPIR symbol names.
inline constexpr const char* kProctable = "MPIR_proctable";
inline constexpr const char* kProctableSize = "MPIR_proctable_size";
inline constexpr const char* kBeingDebugged = "MPIR_being_debugged";
inline constexpr const char* kDebugState = "MPIR_debug_state";
inline constexpr const char* kBreakpoint = "MPIR_Breakpoint";
/// Real srun exports the job id under this name for tools (TotalView legacy).
inline constexpr const char* kJobId = "totalview_jobid";

// MPIR_debug_state values (subset of the MPIR spec).
inline constexpr std::uint32_t kDebugSpawned = 1;
inline constexpr std::uint32_t kDebugAborting = 2;

/// Serializes a proctable: entry count + MPIR_PROCDESC-like records.
Bytes encode_proctable(const std::vector<TaskDesc>& entries);

/// Parses a proctable blob read from the launcher's address space.
std::optional<std::vector<TaskDesc>> decode_proctable(const Bytes& blob);

/// Publishes the proctable into a launcher process's symbol space, exactly
/// as real srun populates MPIR_proctable before calling MPIR_Breakpoint.
void publish(cluster::Process& launcher, const std::vector<TaskDesc>& entries);

/// Sets MPIR_debug_state in the launcher.
void set_debug_state(cluster::Process& launcher, std::uint32_t state);

}  // namespace lmon::rm::apai
