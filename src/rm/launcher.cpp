#include "rm/launcher.hpp"

#include <cassert>

#include "cluster/machine.hpp"
#include "common/argparse.hpp"
#include "rm/apai.hpp"
#include "simkernel/log.hpp"

namespace lmon::rm {

void Launcher::on_start(cluster::Process& self) {
  const auto& args = self.args();
  const auto mode = arg_value(args, "--mode=");
  mode_ = (mode && *mode == "cospawn") ? Mode::CoSpawn : Mode::Job;

  exe_ = arg_value(args, "--exe=").value_or("mpi_app");
  launch_fanout_ = static_cast<std::uint32_t>(
      arg_int(args, "--fanout=")
          .value_or(self.machine().costs().rm_launch_fanout));

  extra_args_ = arg_list(args, "--app-arg=");
  for (auto& a : arg_list(args, "--daemon-arg=")) {
    extra_args_.push_back(std::move(a));
  }

  // srun startup: option parsing, conf reading, credential setup.
  self.post(self.machine().costs().rm_launcher_startup, [this, &self] {
    if (mode_ == Mode::Job) {
      start_job(self);
    } else {
      start_cospawn(self);
    }
  });
}

void Launcher::start_job(cluster::Process& self) {
  const auto& args = self.args();
  const auto nnodes = arg_int(args, "--nnodes=").value_or(1);
  tpn_ = static_cast<std::uint32_t>(arg_int(args, "--tpn=").value_or(1));
  phase_ = Phase::Allocating;
  self.machine().mark("t_job_begin");
  if (obs::Tracer* tracer = self.machine().tracer(); tracer != nullptr) {
    span_ = tracer->begin_span(
        "rm.job_launch", "rm", static_cast<int>(self.node().id()), self.pid(),
        obs::kNoSpan, "nnodes=" + std::to_string(nnodes));
  }

  const std::string ctrl_host = self.machine().front_end().hostname();
  self.connect(ctrl_host, cluster::kRmControllerPort,
               [this, &self, nnodes](Status st, cluster::ChannelPtr ch) {
                 if (!st.is_ok()) {
                   self.exit(1);
                   return;
                 }
                 ctrl_channel_ = ch;
                 AllocReq req;
                 req.nnodes = static_cast<std::uint32_t>(nnodes);
                 self.send(ch, req.encode());
               });
}

void Launcher::start_cospawn(cluster::Process& self) {
  const auto& args = self.args();
  jobid_ = static_cast<JobId>(arg_int(args, "--jobid=").value_or(0));
  report_host_ = arg_value(args, "--report-host=").value_or("");
  report_port_ =
      static_cast<std::uint16_t>(arg_int(args, "--report-port=").value_or(0));
  fabric_.port = static_cast<cluster::Port>(
      arg_int(args, "--fabric-port=").value_or(cluster::kToolFabricBasePort));
  fabric_.fanout = static_cast<std::uint32_t>(
      arg_int(args, "--fabric-fanout=").value_or(2));
  if (const auto topo = arg_value(args, "--fabric-topo=")) {
    if (const auto spec = comm::TopologySpec::parse(*topo)) {
      fabric_.topo_kind = spec->kind;
      // Only a k-ary fabric ties its arity to the forwarding degree;
      // binomial/flat keep the --fabric-fanout launch degree (their
      // parsed arity is a meaningless default).
      if (spec->kind == comm::TopologyKind::KAry && spec->arity != 0) {
        fabric_.fanout = spec->arity;
      }
    }
  }
  fabric_.fe_host = arg_value(args, "--fe-host=").value_or("");
  fabric_.fe_port =
      static_cast<std::uint16_t>(arg_int(args, "--fe-port=").value_or(0));
  fabric_.session = arg_value(args, "--session=").value_or("s0");
  fabric_.rndv_threshold = static_cast<std::uint32_t>(
      arg_int(args, "--rndv-threshold=").value_or(0));
  fabric_.platform = arg_value(args, "--platform=").value_or("");
  fabric_.heal = arg_int(args, "--heal=").value_or(0) != 0;
  fabric_.heal_grace_ms = static_cast<std::uint32_t>(
      arg_int(args, "--heal-grace-ms=").value_or(0));
  fabric_.max_sessions = static_cast<std::uint32_t>(
      arg_int(args, "--max-tree-sessions=").value_or(0));
  phase_ = Phase::Allocating;

  // Either co-locate with an existing job (--jobid) or request additional
  // nodes for middleware daemons (--alloc-nodes), the paper's "additional
  // compute resources beyond the target program's allocation".
  const auto alloc_nodes = arg_int(args, "--alloc-nodes=");
  const std::string ctrl_host = self.machine().front_end().hostname();
  self.connect(ctrl_host, cluster::kRmControllerPort,
               [this, &self, alloc_nodes](Status st, cluster::ChannelPtr ch) {
                 if (!st.is_ok()) {
                   report_done(self, false, "cannot reach controller");
                   return;
                 }
                 ctrl_channel_ = ch;
                 if (alloc_nodes && *alloc_nodes > 0) {
                   AllocReq req;
                   req.nnodes = static_cast<std::uint32_t>(*alloc_nodes);
                   req.middleware = arg_value(self.args(), "--alloc-partition=")
                                        .value_or("compute") == "mw";
                   self.send(ch, req.encode());
                 } else {
                   JobInfoReq req;
                   req.jobid = jobid_;
                   self.send(ch, req.encode());
                 }
               });
}

void Launcher::on_message(cluster::Process& self,
                          const cluster::ChannelPtr& ch,
                          cluster::Message msg) {
  auto type = peek_type(msg);
  if (!type) return;
  switch (*type) {
    case MsgType::AllocResp: {
      auto resp = AllocResp::decode(msg);
      if (resp) on_alloc_resp(self, *resp);
      break;
    }
    case MsgType::JobInfoResp: {
      auto resp = JobInfoResp::decode(msg);
      if (resp) on_job_info_resp(self, *resp);
      break;
    }
    case MsgType::TreeLaunchAck: {
      auto ack = TreeLaunchAck::decode(msg);
      if (ack) on_launch_ack(self, *ack);
      break;
    }
    case MsgType::KillDaemons: {
      if (KillDaemons::decode(msg)) kill_daemons(self);
      break;
    }
    case MsgType::TreeKillAck: {
      // Daemon teardown complete; release the allocation reference and exit.
      self.exit(0);
      break;
    }
    default:
      break;
  }
  (void)ch;
}

void Launcher::on_channel_closed(cluster::Process& self,
                                 const cluster::ChannelPtr& ch) {
  // Losing the report channel means the tool engine went away: tear down
  // daemons, mirroring srun's session cleanup when its parent dies.
  if (mode_ == Mode::CoSpawn && report_channel_ != nullptr &&
      ch->id() == report_channel_->id() && phase_ == Phase::HoldingDaemons) {
    kill_daemons(self);
  }
}

sim::Time Launcher::per_node_overhead(cluster::Process& self,
                                      std::size_t nnodes) const {
  const auto& costs = self.machine().costs();
  const double n = static_cast<double>(nnodes);
  // Linear bookkeeping plus the super-linear RM term the paper observed past
  // ~512 daemons (Jobsnap's last doubling, §5.1).
  return static_cast<sim::Time>(n * static_cast<double>(
                                        costs.rm_launcher_per_node)) +
         static_cast<sim::Time>(costs.rm_quadratic_ns_per_node2 * n * n);
}

void Launcher::on_alloc_resp(cluster::Process& self, const AllocResp& resp) {
  if (phase_ != Phase::Allocating) return;
  if (!resp.ok) {
    sim::LogLine(sim::LogLevel::Warn, self.sim().now(), "srun")
        << "allocation failed: " << resp.error;
    if (mode_ == Mode::Job) {
      self.exit(1);
    } else {
      report_done(self, false, resp.error);
    }
    return;
  }
  jobid_ = resp.jobid;
  allocation_ = resp.nodes;
  phase_ = Phase::Launching;
  {
    // Export the job id for tools (the totalview_jobid convention).
    ByteWriter w;
    w.u64(jobid_);
    self.symbols().write(apai::kJobId, std::move(w).take());
  }
  if (mode_ == Mode::CoSpawn) {
    // Fresh-allocation daemon launch (middleware case).
    fabric_.total = static_cast<std::uint32_t>(allocation_.size());
    self.machine().mark("t_daemon_begin");
    if (obs::Tracer* tracer = self.machine().tracer(); tracer != nullptr) {
      span_ = tracer->begin_span(
          "rm.daemon_launch", "rm", static_cast<int>(self.node().id()),
          self.pid(), tracer->anchor("cospawn:" + fabric_.session),
          "nodes=" + std::to_string(allocation_.size()));
    }
  }
  self.post(per_node_overhead(self, allocation_.size()),
            [this, &self] { send_tree_launch(self); });
}

void Launcher::on_job_info_resp(cluster::Process& self,
                                const JobInfoResp& resp) {
  if (phase_ != Phase::Allocating || mode_ != Mode::CoSpawn) return;
  if (!resp.ok) {
    report_done(self, false, resp.error);
    return;
  }
  allocation_ = resp.nodes;
  fabric_.total = static_cast<std::uint32_t>(allocation_.size());
  phase_ = Phase::Launching;
  self.machine().mark("t_daemon_begin");
  if (obs::Tracer* tracer = self.machine().tracer(); tracer != nullptr) {
    span_ = tracer->begin_span(
        "rm.daemon_launch", "rm", static_cast<int>(self.node().id()),
        self.pid(), tracer->anchor("cospawn:" + fabric_.session),
        "nodes=" + std::to_string(allocation_.size()));
  }
  self.post(per_node_overhead(self, allocation_.size()),
            [this, &self] { send_tree_launch(self); });
}

void Launcher::send_tree_launch(cluster::Process& self) {
  TreeLaunchReq req;
  req.jobid = jobid_;
  req.seq = 1;
  req.mode = mode_ == Mode::Job ? LaunchMode::Tasks : LaunchMode::Daemons;
  req.executable = exe_;
  req.extra_args = extra_args_;
  req.tasks_per_node = tpn_;
  req.nodes = allocation_;
  req.all_hosts.reserve(allocation_.size());
  for (const auto& n : allocation_) req.all_hosts.push_back(n.host);
  req.fabric = fabric_;
  if (req.fabric.fanout == 0) req.fabric.fanout = launch_fanout_;
  if (mode_ == Mode::Job) req.fabric.fanout = launch_fanout_;

  assert(!allocation_.empty());
  if (obs::Tracer* tracer = self.machine().tracer();
      tracer != nullptr && span_ != obs::kNoSpan) {
    // The tree-root node daemon parents its launch span here.
    tracer->set_anchor(
        "rmtree:" + req.fabric.session + ":" + allocation_.front().host, span_);
  }
  self.connect(allocation_.front().host, cluster::kRmNodeDaemonPort,
               [this, &self, req = std::move(req)](Status st,
                                                   cluster::ChannelPtr ch) {
                 if (!st.is_ok()) {
                   if (mode_ == Mode::Job) {
                     self.exit(1);
                   } else {
                     report_done(self, false, "tree launch connect failed");
                   }
                   return;
                 }
                 tree_channel_ = ch;
                 self.send(ch, req.encode());
               });
}

void Launcher::on_launch_ack(cluster::Process& self,
                             const TreeLaunchAck& ack) {
  if (phase_ != Phase::Launching) return;
  launched_ = ack.entries;
  std::sort(launched_.begin(), launched_.end(),
            [](const TaskDesc& a, const TaskDesc& b) { return a.rank < b.rank; });

  if (mode_ == Mode::Job) {
    self.machine().mark("t_job_end");
    if (obs::Tracer* tracer = self.machine().tracer(); tracer != nullptr) {
      tracer->end_span(span_, ack.ok ? "ok" : "failed: " + ack.error);
    }
    if (!ack.ok) {
      sim::LogLine(sim::LogLevel::Warn, self.sim().now(), "srun")
          << "job launch failed: " << ack.error;
      self.exit(1);
      return;
    }
    phase_ = Phase::RunningJob;
    // Publish the MPIR proctable, then hit the debugger breakpoint; if a
    // tool traces us it now fetches the RPDTAB and co-spawns its daemons.
    apai::publish(self, launched_);
    self.breakpoint(apai::kBreakpoint, [] {
      // Job released; tasks are already running.
    });
    return;
  }

  self.machine().mark("t_daemon_end");
  if (obs::Tracer* tracer = self.machine().tracer(); tracer != nullptr) {
    tracer->end_span(span_,
                     ack.ok ? "daemons=" + std::to_string(launched_.size())
                            : "failed: " + ack.error);
  }
  report_done(self, ack.ok, ack.error);
}

void Launcher::report_done(cluster::Process& self, bool ok,
                           const std::string& error) {
  phase_ = Phase::ReportingDone;
  if (report_host_.empty() || report_port_ == 0) {
    // Nobody to report to (stand-alone use); hold daemons if ok, else exit.
    phase_ = ok ? Phase::HoldingDaemons : Phase::Init;
    if (!ok) self.exit(1);
    return;
  }
  self.connect(report_host_, report_port_,
               [this, &self, ok, error](Status st, cluster::ChannelPtr ch) {
                 if (!st.is_ok()) {
                   self.exit(1);
                   return;
                 }
                 report_channel_ = ch;
                 LaunchDone done;
                 done.ok = ok;
                 done.error = error;
                 done.jobid = jobid_;
                 done.daemons = launched_;
                 self.send(ch, done.encode());
                 phase_ = ok ? Phase::HoldingDaemons : Phase::Init;
                 if (!ok) {
                   self.post(sim::ms(1), [&self] { self.exit(1); });
                 }
               });
}

void Launcher::kill_daemons(cluster::Process& self) {
  if (phase_ == Phase::Killing) return;
  phase_ = Phase::Killing;
  if (allocation_.empty()) {
    self.exit(0);
    return;
  }
  TreeKillReq req;
  req.jobid = jobid_;
  req.seq = 2;
  req.mode = LaunchMode::Daemons;
  req.session = fabric_.session;
  req.nodes = allocation_;
  self.connect(allocation_.front().host, cluster::kRmNodeDaemonPort,
               [this, &self, req = std::move(req)](Status st,
                                                   cluster::ChannelPtr ch) {
                 if (!st.is_ok()) {
                   self.exit(1);
                   return;
                 }
                 tree_channel_ = ch;
                 self.send(ch, req.encode());
               });
}

// --- RmBulkStrategy ----------------------------------------------------------

void RmBulkStrategy::launch(cluster::Process& self, comm::LaunchRequest req,
                            Callback cb) {
  const cluster::ProgramImage* image =
      self.machine().find_program(Launcher::kImageName);
  if (image == nullptr) {
    if (cb) cb(comm::LaunchResult{Status(Rc::Esys, "no srun image installed"),
                                  {}, rm::kInvalidJob});
    return;
  }

  // Accept the co-spawn launcher's report connection; its LaunchDone is the
  // strategy's result.
  const Status lst = self.listen(
      req.report_port, [this, &self, cb](cluster::ChannelPtr ch) {
        report_channel_ = ch;
        self.set_channel_handler(
            ch,
            [cb](const cluster::ChannelPtr&, cluster::Message m) {
              auto done = LaunchDone::decode(m);
              if (!done) return;
              comm::LaunchResult res;
              res.status = done->ok ? Status::ok()
                                    : Status(Rc::Esubcom, done->error);
              res.daemons = std::move(done->daemons);
              res.jobid = done->jobid;
              if (cb) cb(std::move(res));
            },
            [this](const cluster::ChannelPtr&) {
              report_channel_ = nullptr;
              if (kill_cb_) {
                auto k = std::move(kill_cb_);
                kill_cb_ = nullptr;
                k(Status::ok());
              }
            });
      });
  if (!lst.is_ok()) {
    if (cb) cb(comm::LaunchResult{lst, {}, rm::kInvalidJob});
    return;
  }

  cluster::SpawnOptions opts;
  opts.executable = Launcher::kImageName;
  opts.image_mb = image->image_mb;
  opts.args.push_back("--mode=cospawn");
  if (req.jobid != kInvalidJob) {
    opts.args.push_back("--jobid=" + std::to_string(req.jobid));
  } else {
    opts.args.push_back("--alloc-nodes=" + std::to_string(req.alloc_nodes));
    if (req.middleware_partition) {
      opts.args.push_back("--alloc-partition=mw");
    }
  }
  opts.args.push_back("--exe=" + req.daemon_exe);
  opts.args.push_back("--report-host=" + self.node().hostname());
  opts.args.push_back("--report-port=" + std::to_string(req.report_port));
  opts.args.push_back("--fabric-port=" +
                      std::to_string(req.bootstrap.port));
  opts.args.push_back("--fabric-fanout=" +
                      std::to_string(req.launch_fanout != 0
                                         ? req.launch_fanout
                                         : req.bootstrap.topology.arity));
  opts.args.push_back("--fabric-topo=" + req.bootstrap.topology.to_string());
  if (req.bootstrap.rndv_threshold != 0) {
    opts.args.push_back("--rndv-threshold=" +
                        std::to_string(req.bootstrap.rndv_threshold));
  }
  if (!req.bootstrap.platform.empty()) {
    opts.args.push_back("--platform=" + req.bootstrap.platform);
  }
  if (req.bootstrap.heal) {
    opts.args.push_back("--heal=1");
    if (req.bootstrap.heal_grace_ms != 0) {
      opts.args.push_back("--heal-grace-ms=" +
                          std::to_string(req.bootstrap.heal_grace_ms));
    }
  }
  if (req.bootstrap.max_sessions != 0) {
    opts.args.push_back("--max-tree-sessions=" +
                        std::to_string(req.bootstrap.max_sessions));
  }
  opts.args.push_back("--fe-host=" + req.bootstrap.fe_host);
  opts.args.push_back("--fe-port=" + std::to_string(req.bootstrap.fe_port));
  opts.args.push_back("--session=" + req.bootstrap.session);
  for (const auto& a : req.daemon_args) {
    opts.args.push_back("--daemon-arg=" + a);
  }
  auto res = self.spawn_child(image->factory(opts.args), std::move(opts));
  if (!res.is_ok() && cb) {
    cb(comm::LaunchResult{res.status, {}, rm::kInvalidJob});
  }
}

void RmBulkStrategy::teardown(cluster::Process& self,
                              std::function<void(Status)> cb) {
  if (report_channel_ == nullptr) {
    if (cb) cb(Status(Rc::Edead, "no co-spawned daemons"));
    return;
  }
  kill_cb_ = std::move(cb);
  self.send(report_channel_, KillDaemons{}.encode());
}

}  // namespace lmon::rm
