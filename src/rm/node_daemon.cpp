#include "rm/node_daemon.hpp"

#include <algorithm>
#include <cassert>

#include "cluster/machine.hpp"
#include "comm/bootstrap.hpp"
#include "simkernel/log.hpp"

namespace lmon::rm {

void NodeDaemon::on_start(cluster::Process& self) {
  (void)self.listen(cluster::kRmNodeDaemonPort);
}

std::string NodeDaemon::spawn_group(JobId jobid, LaunchMode mode,
                                    const std::string& session) {
  return std::to_string(jobid) + "/" +
         (mode == LaunchMode::Tasks ? "t" : "d") + "/" + session;
}

void NodeDaemon::on_message(cluster::Process& self,
                            const cluster::ChannelPtr& ch,
                            cluster::Message msg) {
  auto type = peek_type(msg);
  if (!type) return;
  const sim::Time handle_cost = self.machine().costs().rm_slurmd_handle;

  switch (*type) {
    case MsgType::TreeLaunchReq: {
      auto req = TreeLaunchReq::decode(msg);
      if (!req) return;
      self.post(handle_cost, [this, &self, ch, req = std::move(*req)] {
        handle_launch(self, ch, req);
      });
      break;
    }
    case MsgType::TreeKillReq: {
      auto req = TreeKillReq::decode(msg);
      if (!req) return;
      self.post(handle_cost, [this, &self, ch, req = std::move(*req)] {
        handle_kill(self, ch, req);
      });
      break;
    }
    case MsgType::TreeLaunchAck: {
      auto ack = TreeLaunchAck::decode(msg);
      if (!ack) return;
      auto it = child_seq_to_key_.find(ack->seq);
      if (it == child_seq_to_key_.end()) return;
      const Key key = it->second;
      child_seq_to_key_.erase(it);
      channel_to_key_.erase(ch->id());
      self.close_channel(const_cast<cluster::ChannelPtr&>(ch));
      auto pit = pending_.find(key);
      if (pit == pending_.end()) return;
      Pending& p = pit->second;
      p.awaiting_children -= 1;
      if (!ack->ok) {
        p.failed = true;
        if (p.error.empty()) p.error = ack->error;
      }
      p.entries.insert(p.entries.end(), ack->entries.begin(),
                       ack->entries.end());
      maybe_complete(self, key);
      break;
    }
    case MsgType::TreeKillAck: {
      auto ack = TreeKillAck::decode(msg);
      if (!ack) return;
      auto it = child_seq_to_key_.find(ack->seq);
      if (it == child_seq_to_key_.end()) return;
      const Key key = it->second;
      child_seq_to_key_.erase(it);
      channel_to_key_.erase(ch->id());
      self.close_channel(const_cast<cluster::ChannelPtr&>(ch));
      auto pit = pending_.find(key);
      if (pit == pending_.end()) return;
      Pending& p = pit->second;
      p.awaiting_children -= 1;
      p.killed += ack->killed;
      if (!ack->ok) p.failed = true;
      maybe_complete(self, key);
      break;
    }
    default:
      break;
  }
}

void NodeDaemon::on_channel_closed(cluster::Process& self,
                                   const cluster::ChannelPtr& ch) {
  auto it = channel_to_key_.find(ch->id());
  if (it == channel_to_key_.end()) return;
  const Key key = it->second;
  channel_to_key_.erase(it);
  child_failed(self, key, "subtree node daemon connection lost");
}

std::vector<std::vector<AllocatedNode>> NodeDaemon::split_subtrees(
    const std::vector<AllocatedNode>& nodes, std::uint32_t fanout) {
  std::vector<std::vector<AllocatedNode>> chunks;
  if (nodes.size() <= 1) return chunks;
  const auto splits = comm::split_contiguous(nodes.size() - 1, fanout);
  chunks.reserve(splits.size());
  for (const auto& [off, len] : splits) {
    const std::size_t pos = 1 + off;
    chunks.emplace_back(nodes.begin() + static_cast<std::ptrdiff_t>(pos),
                        nodes.begin() + static_cast<std::ptrdiff_t>(pos + len));
  }
  return chunks;
}

void NodeDaemon::handle_launch(cluster::Process& self,
                               const cluster::ChannelPtr& ch,
                               const TreeLaunchReq& req) {
  const Key key = next_key_++;
  Pending& p = pending_[key];
  p.reply_seq = req.seq;
  p.reply_to = ch;

  const cluster::CostModel& costs = self.machine().costs();
  cluster::Machine& machine = self.machine();
  assert(!req.nodes.empty());
  const AllocatedNode& local = req.nodes.front();

  machine.count("rm.tree_launch.requests");
  if (obs::Tracer* tracer = machine.tracer(); tracer != nullptr) {
    // Parent chain: the upstream node daemon anchors "rmtree:" per forwarded
    // chunk; the tree root falls back to the engine's co-spawn span.
    obs::SpanId parent =
        tracer->anchor("rmtree:" + req.fabric.session + ":" + local.host);
    if (parent == obs::kNoSpan) {
      parent = tracer->anchor("cospawn:" + req.fabric.session);
    }
    p.span = tracer->begin_span(
        "rm.tree_launch", "rm", static_cast<int>(self.node().id()), self.pid(),
        parent,
        "host=" + local.host + " nodes=" + std::to_string(req.nodes.size()));
    if (req.mode == LaunchMode::Daemons) {
      // The tool daemon spawned here parents its bootstrap span on this.
      tracer->set_anchor("spawn:" + req.fabric.session + ":" + local.host,
                         p.span);
    }
  }

  const cluster::ProgramImage* image = machine.find_program(req.executable);
  if (image == nullptr) {
    p.failed = true;
    p.error = "no such executable: " + req.executable;
    maybe_complete(self, key);
    return;
  }

  const int nlocal =
      req.mode == LaunchMode::Tasks ? static_cast<int>(req.tasks_per_node) : 1;
  p.awaiting_local = nlocal;
  const std::string group = spawn_group(req.jobid, req.mode, req.fabric.session);

  for (int i = 0; i < nlocal; ++i) {
    const std::int32_t rank =
        req.mode == LaunchMode::Tasks
            ? static_cast<std::int32_t>(local.index * req.tasks_per_node) + i
            : static_cast<std::int32_t>(local.index);

    cluster::SpawnOptions opts;
    opts.executable = req.executable;
    opts.image_mb = image->image_mb;
    if (req.mode == LaunchMode::Daemons) {
      comm::BootstrapSpec boot;
      boot.size = req.fabric.total;
      boot.topology = req.fabric.topology();
      boot.port = req.fabric.port;
      boot.session = req.fabric.session;
      boot.fe_host = req.fabric.fe_host;
      boot.fe_port = req.fabric.fe_port;
      boot.hosts = req.all_hosts;
      boot.rndv_threshold = req.fabric.rndv_threshold;
      boot.platform = req.fabric.platform;
      boot.heal = req.fabric.heal;
      boot.heal_grace_ms = req.fabric.heal_grace_ms;
      boot.max_sessions = req.fabric.max_sessions;
      opts.args = comm::bootstrap_args(boot,
                                       static_cast<std::uint32_t>(rank));
    } else {
      opts.args.push_back("--rank=" + std::to_string(rank));
      opts.args.push_back(
          "--size=" +
          std::to_string(req.all_hosts.size() * req.tasks_per_node));
    }
    opts.args.insert(opts.args.end(), req.extra_args.begin(),
                     req.extra_args.end());
    opts.started_callback = [this, &self, key](cluster::Pid) {
      auto it = pending_.find(key);
      if (it == pending_.end()) return;
      it->second.awaiting_local -= 1;
      maybe_complete(self, key);
    };

    // Per-task setup (credentials, cgroups, I/O plumbing) serializes in the
    // node daemon; the fork/exec itself then overlaps.
    const std::string exe = req.executable;
    const std::string host = local.host;
    auto factory = image->factory;
    self.post(static_cast<sim::Time>(i) * costs.rm_task_setup,
              [this, &self, key, exe, host, rank, group, factory,
               opts = std::move(opts)]() mutable {
                auto prog = factory(opts.args);
                auto res = self.spawn_child(std::move(prog), std::move(opts));
                auto it = pending_.find(key);
                if (it == pending_.end()) return;
                if (!res.is_ok()) {
                  it->second.failed = true;
                  it->second.error = res.status.message();
                  it->second.awaiting_local -= 1;
                  maybe_complete(self, key);
                  return;
                }
                spawned_[group].push_back(res.value);
                it->second.entries.push_back(
                    TaskDesc{host, exe, res.value, rank});
              });
  }

  forward_subtrees(self, key, req);
  arm_timeout(self, key);
  // In case there is nothing to do at all (defensive; nlocal >= 1 always).
  maybe_complete(self, key);
}

void NodeDaemon::forward_subtrees(cluster::Process& self, Key key,
                                  const TreeLaunchReq& req) {
  auto chunks = split_subtrees(req.nodes, req.fabric.fanout != 0
                                              ? req.fabric.fanout
                                              : static_cast<std::uint32_t>(
                                                    self.machine()
                                                        .costs()
                                                        .rm_launch_fanout));
  auto it = pending_.find(key);
  assert(it != pending_.end());
  it->second.awaiting_children = static_cast<int>(chunks.size());

  for (auto& chunk : chunks) {
    TreeLaunchReq sub = req;
    sub.nodes = std::move(chunk);
    sub.seq = next_seq_++;
    child_seq_to_key_[sub.seq] = key;
    const std::string target = sub.nodes.front().host;
    self.machine().count("rm.subtrees_forwarded");
    if (obs::Tracer* tracer = self.machine().tracer(); tracer != nullptr) {
      tracer->set_anchor("rmtree:" + req.fabric.session + ":" + target,
                         it->second.span);
    }
    self.connect(target, cluster::kRmNodeDaemonPort,
                 [this, &self, key, sub = std::move(sub)](
                     Status st, cluster::ChannelPtr child_ch) {
                   if (!st.is_ok() || child_ch == nullptr) {
                     child_seq_to_key_.erase(sub.seq);
                     child_failed(self, key,
                                  "connect to subtree failed: " + st.message());
                     return;
                   }
                   channel_to_key_[child_ch->id()] = key;
                   self.send(child_ch, sub.encode());
                 });
  }
}

void NodeDaemon::handle_kill(cluster::Process& self,
                             const cluster::ChannelPtr& ch,
                             const TreeKillReq& req) {
  const Key key = next_key_++;
  Pending& p = pending_[key];
  p.reply_seq = req.seq;
  p.reply_to = ch;
  p.is_kill = true;

  const std::string group = spawn_group(req.jobid, req.mode, req.session);
  auto sit = spawned_.find(group);
  if (sit != spawned_.end()) {
    for (cluster::Pid pid : sit->second) {
      cluster::Process* child = self.machine().find_process(pid);
      if (child != nullptr && child->state() != cluster::ProcState::Exited) {
        child->exit(9);
        p.killed += 1;
      }
    }
    spawned_.erase(sit);
  }
  forward_kill_subtrees(self, key, req);
  arm_timeout(self, key);
  maybe_complete(self, key);
}

void NodeDaemon::forward_kill_subtrees(cluster::Process& self, Key key,
                                       const TreeKillReq& req) {
  auto chunks = split_subtrees(
      req.nodes,
      static_cast<std::uint32_t>(self.machine().costs().rm_launch_fanout));
  auto it = pending_.find(key);
  assert(it != pending_.end());
  it->second.awaiting_children = static_cast<int>(chunks.size());

  for (auto& chunk : chunks) {
    TreeKillReq sub = req;
    sub.nodes = std::move(chunk);
    sub.seq = next_seq_++;
    child_seq_to_key_[sub.seq] = key;
    const std::string target = sub.nodes.front().host;
    self.connect(target, cluster::kRmNodeDaemonPort,
                 [this, &self, key, sub = std::move(sub)](
                     Status st, cluster::ChannelPtr child_ch) {
                   if (!st.is_ok() || child_ch == nullptr) {
                     child_seq_to_key_.erase(sub.seq);
                     child_failed(self, key, "kill forward failed");
                     return;
                   }
                   channel_to_key_[child_ch->id()] = key;
                   self.send(child_ch, sub.encode());
                 });
  }
}

void NodeDaemon::child_failed(cluster::Process& self, Key key,
                              const std::string& why) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  p.failed = true;
  if (p.error.empty()) p.error = why;
  p.awaiting_children -= 1;
  self.machine().count("rm.subtree_failures");
  self.machine().flight_record(self.pid(), "slurmd",
                               "subtree child failed: " + why);
  maybe_complete(self, key);
}

void NodeDaemon::arm_timeout(cluster::Process& self, Key key) {
  self.post(kSubtreeTimeout, [this, &self, key] {
    auto it = pending_.find(key);
    if (it == pending_.end() || it->second.done) return;
    it->second.failed = true;
    self.machine().count("rm.subtree_timeouts");
    self.machine().flight_record(self.pid(), "slurmd",
                                 "subtree launch timeout");
    if (it->second.error.empty()) it->second.error = "subtree launch timeout";
    it->second.awaiting_local = 0;
    it->second.awaiting_children = 0;
    maybe_complete(self, key);
  });
}

void NodeDaemon::maybe_complete(cluster::Process& self, Key key) {
  auto it = pending_.find(key);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (p.done || p.awaiting_local > 0 || p.awaiting_children > 0) return;
  p.done = true;

  if (obs::Tracer* tracer = self.machine().tracer();
      tracer != nullptr && p.span != obs::kNoSpan) {
    tracer->end_span(p.span, p.failed ? "failed: " + p.error : "ok");
  }

  if (p.is_kill) {
    TreeKillAck ack;
    ack.seq = p.reply_seq;
    ack.ok = !p.failed;
    ack.killed = p.killed;
    if (p.reply_to != nullptr && p.reply_to->is_open()) {
      self.send(p.reply_to, ack.encode());
    }
  } else {
    TreeLaunchAck ack;
    ack.seq = p.reply_seq;
    ack.ok = !p.failed;
    ack.error = p.error;
    ack.entries = std::move(p.entries);
    if (p.reply_to != nullptr && p.reply_to->is_open()) {
      self.send(p.reply_to, ack.encode());
    }
  }
  pending_.erase(it);
}

}  // namespace lmon::rm
