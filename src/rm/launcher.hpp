// launcher.hpp - the RM's parallel launcher (srun-like).
//
// Two modes, selected by argv:
//
//   --mode=job      Launch a parallel job: allocate nodes, tree-launch the
//                   tasks, publish the MPIR proctable, stop at
//                   MPIR_Breakpoint if traced. This is the process the
//                   LaunchMON engine runs under its control (paper e2..e6).
//
//   --mode=cospawn  `srun --jobid=<id>`-style: launch one tool daemon per
//                   node of an *existing* job's allocation, passing each
//                   daemon its RM-provided bootstrap parameters, then report
//                   to the tool engine over a local channel.
//
// Argv reference (job):     --nnodes=N --tpn=T --exe=NAME [--fanout=K]
//                           [--app-arg=... repeated]
// Argv reference (cospawn): --jobid=J --exe=NAME --report-host=H
//                           --report-port=P --fabric-port=P --fabric-fanout=K
//                           --fe-host=H --fe-port=P --session=S
//                           [--daemon-arg=... repeated]
#pragma once

#include <string>
#include <vector>

#include "cluster/process.hpp"
#include "comm/launch_strategy.hpp"
#include "obs/trace.hpp"
#include "rm/protocol.hpp"

namespace lmon::rm {

class Launcher : public cluster::Program {
 public:
  [[nodiscard]] std::string_view name() const override { return "srun"; }

  void on_start(cluster::Process& self) override;
  void on_message(cluster::Process& self, const cluster::ChannelPtr& ch,
                  cluster::Message msg) override;
  void on_channel_closed(cluster::Process& self,
                         const cluster::ChannelPtr& ch) override;

  /// Image name under which the facade registers this program.
  static constexpr const char* kImageName = "srun";

 private:
  enum class Mode { Job, CoSpawn };
  enum class Phase {
    Init,
    Allocating,
    Launching,
    RunningJob,     ///< job mode: past MPIR_Breakpoint
    ReportingDone,  ///< cospawn: connecting/reporting to the engine
    HoldingDaemons, ///< cospawn: daemons up, waiting for kill/exit
    Killing,
  };

  void start_job(cluster::Process& self);
  void start_cospawn(cluster::Process& self);
  void send_tree_launch(cluster::Process& self);
  void on_alloc_resp(cluster::Process& self, const AllocResp& resp);
  void on_job_info_resp(cluster::Process& self, const JobInfoResp& resp);
  void on_launch_ack(cluster::Process& self, const TreeLaunchAck& ack);
  void report_done(cluster::Process& self, bool ok, const std::string& error);
  void kill_daemons(cluster::Process& self);

  [[nodiscard]] sim::Time per_node_overhead(cluster::Process& self,
                                            std::size_t nnodes) const;

  Mode mode_ = Mode::Job;
  Phase phase_ = Phase::Init;
  JobId jobid_ = kInvalidJob;
  std::vector<AllocatedNode> allocation_;
  std::vector<TaskDesc> launched_;
  cluster::ChannelPtr ctrl_channel_;
  cluster::ChannelPtr tree_channel_;
  cluster::ChannelPtr report_channel_;
  std::uint32_t tpn_ = 1;
  std::string exe_;
  std::vector<std::string> extra_args_;
  FabricSpec fabric_;
  std::string report_host_;
  std::uint16_t report_port_ = 0;
  std::uint32_t launch_fanout_ = 0;
  /// T(job)/T(daemon) trace span; cospawn launches parent it on the
  /// engine's "cospawn:<session>" anchor.
  obs::SpanId span_ = obs::kNoSpan;
};

/// The paper's contribution as a pluggable strategy: delegate daemon launch
/// to the RM's scalable bulk mechanism by spawning an `srun --jobid`-style
/// co-spawn launcher and collecting its LaunchDone report. Holding the
/// report channel keeps the daemons alive; teardown asks the launcher to
/// kill them.
class RmBulkStrategy final : public comm::LaunchStrategy {
 public:
  [[nodiscard]] std::string_view name() const override { return "rm-bulk"; }
  [[nodiscard]] comm::LaunchStrategyKind kind() const override {
    return comm::LaunchStrategyKind::RmBulk;
  }
  void launch(cluster::Process& self, comm::LaunchRequest req,
              Callback cb) override;
  void teardown(cluster::Process& self,
                std::function<void(Status)> cb) override;

  /// Live link to the co-spawn launcher (null before launch / after exit).
  [[nodiscard]] const cluster::ChannelPtr& report_channel() const {
    return report_channel_;
  }

 private:
  cluster::ChannelPtr report_channel_;
  std::function<void(Status)> kill_cb_;
};

}  // namespace lmon::rm
