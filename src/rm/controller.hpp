// controller.hpp - the RM's central daemon (slurmctld-like).
//
// Tracks node allocation state and job records. The scheduling policy is
// deliberately trivial (first-fit over free compute nodes): in the paper's
// environment Moab has already made the reservation decision and the
// controller merely materializes it, so a richer scheduler would not change
// any launch-path measurement.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/process.hpp"
#include "rm/protocol.hpp"
#include "rm/types.hpp"

namespace lmon::rm {

class Controller : public cluster::Program {
 public:
  [[nodiscard]] std::string_view name() const override { return "slurmctld"; }

  void on_start(cluster::Process& self) override;
  void on_message(cluster::Process& self, const cluster::ChannelPtr& ch,
                  cluster::Message msg) override;

  struct JobRecord {
    JobId jobid = kInvalidJob;
    std::vector<AllocatedNode> nodes;
    bool active = true;
  };

 private:
  void handle_alloc(cluster::Process& self, const cluster::ChannelPtr& ch,
                    const AllocReq& req);
  void handle_job_info(cluster::Process& self, const cluster::ChannelPtr& ch,
                       const JobInfoReq& req);
  void handle_job_free(const JobFreeReq& req);

  std::map<JobId, JobRecord> jobs_;
  std::set<std::string> busy_hosts_;  ///< compute hosts in use
  JobId next_job_ = 1;
};

}  // namespace lmon::rm
