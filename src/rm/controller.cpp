#include "rm/controller.hpp"

#include "cluster/machine.hpp"
#include "simkernel/log.hpp"

namespace lmon::rm {

void Controller::on_start(cluster::Process& self) {
  const Status st = self.listen(cluster::kRmControllerPort);
  (void)st;  // the installer guarantees the port is free
}

void Controller::on_message(cluster::Process& self,
                            const cluster::ChannelPtr& ch,
                            cluster::Message msg) {
  auto type = peek_type(msg);
  if (!type) return;  // malformed frame: drop, like a real server would log+drop

  const sim::Time rpc_cost = self.machine().costs().rm_controller_rpc;
  switch (*type) {
    case MsgType::AllocReq: {
      auto req = AllocReq::decode(msg);
      if (!req) return;
      // Allocation is the expensive controller operation.
      self.post(rpc_cost + self.machine().costs().rm_allocate_cost,
                [this, &self, ch, req = *req] { handle_alloc(self, ch, req); });
      break;
    }
    case MsgType::JobInfoReq: {
      auto req = JobInfoReq::decode(msg);
      if (!req) return;
      self.post(rpc_cost, [this, &self, ch, req = *req] {
        handle_job_info(self, ch, req);
      });
      break;
    }
    case MsgType::JobFreeReq: {
      auto req = JobFreeReq::decode(msg);
      if (!req) return;
      self.post(rpc_cost, [this, req = *req] { handle_job_free(req); });
      break;
    }
    default:
      break;  // not a controller message
  }
}

void Controller::handle_alloc(cluster::Process& self,
                              const cluster::ChannelPtr& ch,
                              const AllocReq& req) {
  cluster::Machine& machine = self.machine();
  AllocResp resp;

  std::vector<std::string> free_hosts;
  if (req.middleware) {
    for (int i = 0; i < machine.num_middleware_nodes(); ++i) {
      const std::string& host = machine.middleware_node(i).hostname();
      if (busy_hosts_.count(host) == 0) free_hosts.push_back(host);
    }
  } else {
    for (int i = 0; i < machine.num_compute_nodes(); ++i) {
      const std::string& host = machine.compute_node(i).hostname();
      if (busy_hosts_.count(host) == 0) free_hosts.push_back(host);
    }
  }
  if (req.nnodes == 0 ||
      free_hosts.size() < static_cast<std::size_t>(req.nnodes)) {
    resp.ok = false;
    resp.error = "allocation failed: insufficient free nodes";
    self.send(ch, resp.encode());
    return;
  }

  JobRecord rec;
  rec.jobid = next_job_++;
  for (std::uint32_t i = 0; i < req.nnodes; ++i) {
    busy_hosts_.insert(free_hosts[i]);
    rec.nodes.push_back(AllocatedNode{free_hosts[i], i});
  }
  jobs_[rec.jobid] = rec;

  resp.ok = true;
  resp.jobid = rec.jobid;
  resp.nodes = rec.nodes;
  sim::LogLine(sim::LogLevel::Info, self.sim().now(), "slurmctld")
      << "allocated job " << rec.jobid << " on " << rec.nodes.size()
      << " nodes";
  self.send(ch, resp.encode());
}

void Controller::handle_job_info(cluster::Process& self,
                                 const cluster::ChannelPtr& ch,
                                 const JobInfoReq& req) {
  JobInfoResp resp;
  auto it = jobs_.find(req.jobid);
  if (it == jobs_.end() || !it->second.active) {
    resp.ok = false;
    resp.error = "no such job";
  } else {
    resp.ok = true;
    resp.jobid = req.jobid;
    resp.nodes = it->second.nodes;
  }
  self.send(ch, resp.encode());
}

void Controller::handle_job_free(const JobFreeReq& req) {
  auto it = jobs_.find(req.jobid);
  if (it == jobs_.end() || !it->second.active) return;
  it->second.active = false;
  for (const auto& n : it->second.nodes) busy_hosts_.erase(n.host);
}

}  // namespace lmon::rm
