#include "rm/protocol.hpp"

namespace lmon::rm {

namespace {

ByteWriter begin(MsgType t) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(t));
  return w;
}

std::optional<ByteReader> open(const cluster::Message& m, MsgType expect) {
  ByteReader r(m.bytes);
  auto t = r.u32();
  if (!t || *t != static_cast<std::uint32_t>(expect)) return std::nullopt;
  return r;
}

cluster::Message finish(ByteWriter&& w) {
  return cluster::Message(std::move(w).take());
}

}  // namespace

std::optional<MsgType> peek_type(const cluster::Message& msg) {
  ByteReader r(msg.bytes);
  auto t = r.u32();
  if (!t) return std::nullopt;
  if (*t < 1 || *t > static_cast<std::uint32_t>(MsgType::JobFreeReq)) {
    return std::nullopt;
  }
  return static_cast<MsgType>(*t);
}

void write_task_desc(ByteWriter& w, const TaskDesc& t) {
  w.str(t.host);
  w.str(t.executable);
  w.i64(t.pid);
  w.i32(t.rank);
}

std::optional<TaskDesc> read_task_desc(ByteReader& r) {
  TaskDesc t;
  auto host = r.str();
  auto exe = r.str();
  auto pid = r.i64();
  auto rank = r.i32();
  if (!host || !exe || !pid || !rank) return std::nullopt;
  t.host = std::move(*host);
  t.executable = std::move(*exe);
  t.pid = *pid;
  t.rank = *rank;
  return t;
}

void write_alloc_node(ByteWriter& w, const AllocatedNode& n) {
  w.str(n.host);
  w.u32(n.index);
}

std::optional<AllocatedNode> read_alloc_node(ByteReader& r) {
  auto host = r.str();
  auto index = r.u32();
  if (!host || !index) return std::nullopt;
  return AllocatedNode{std::move(*host), *index};
}

// --- AllocReq / AllocResp ----------------------------------------------------

cluster::Message AllocReq::encode() const {
  ByteWriter w = begin(MsgType::AllocReq);
  w.u32(nnodes);
  w.boolean(middleware);
  return finish(std::move(w));
}

std::optional<AllocReq> AllocReq::decode(const cluster::Message& m) {
  auto r = open(m, MsgType::AllocReq);
  if (!r) return std::nullopt;
  auto n = r->u32();
  auto mw = r->boolean();
  if (!n || !mw) return std::nullopt;
  return AllocReq{*n, *mw};
}

cluster::Message AllocResp::encode() const {
  ByteWriter w = begin(MsgType::AllocResp);
  w.boolean(ok);
  w.str(error);
  w.u64(jobid);
  w.u32(static_cast<std::uint32_t>(nodes.size()));
  for (const auto& n : nodes) write_alloc_node(w, n);
  return finish(std::move(w));
}

std::optional<AllocResp> AllocResp::decode(const cluster::Message& m) {
  auto r = open(m, MsgType::AllocResp);
  if (!r) return std::nullopt;
  AllocResp out;
  auto ok_f = r->boolean();
  auto err = r->str();
  auto job = r->u64();
  auto count = r->u32();
  if (!ok_f || !err || !job || !count) return std::nullopt;
  out.ok = *ok_f;
  out.error = std::move(*err);
  out.jobid = *job;
  out.nodes.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto n = read_alloc_node(*r);
    if (!n) return std::nullopt;
    out.nodes.push_back(std::move(*n));
  }
  return out;
}

// --- JobInfoReq / JobInfoResp ----------------------------------------------------

cluster::Message JobInfoReq::encode() const {
  ByteWriter w = begin(MsgType::JobInfoReq);
  w.u64(jobid);
  return finish(std::move(w));
}

std::optional<JobInfoReq> JobInfoReq::decode(const cluster::Message& m) {
  auto r = open(m, MsgType::JobInfoReq);
  if (!r) return std::nullopt;
  auto job = r->u64();
  if (!job) return std::nullopt;
  return JobInfoReq{*job};
}

cluster::Message JobInfoResp::encode() const {
  ByteWriter w = begin(MsgType::JobInfoResp);
  w.boolean(ok);
  w.str(error);
  w.u64(jobid);
  w.u32(static_cast<std::uint32_t>(nodes.size()));
  for (const auto& n : nodes) write_alloc_node(w, n);
  return finish(std::move(w));
}

std::optional<JobInfoResp> JobInfoResp::decode(const cluster::Message& m) {
  auto r = open(m, MsgType::JobInfoResp);
  if (!r) return std::nullopt;
  JobInfoResp out;
  auto ok_f = r->boolean();
  auto err = r->str();
  auto job = r->u64();
  auto count = r->u32();
  if (!ok_f || !err || !job || !count) return std::nullopt;
  out.ok = *ok_f;
  out.error = std::move(*err);
  out.jobid = *job;
  out.nodes.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto n = read_alloc_node(*r);
    if (!n) return std::nullopt;
    out.nodes.push_back(std::move(*n));
  }
  return out;
}

cluster::Message JobFreeReq::encode() const {
  ByteWriter w = begin(MsgType::JobFreeReq);
  w.u64(jobid);
  return finish(std::move(w));
}

std::optional<JobFreeReq> JobFreeReq::decode(const cluster::Message& m) {
  auto r = open(m, MsgType::JobFreeReq);
  if (!r) return std::nullopt;
  auto job = r->u64();
  if (!job) return std::nullopt;
  return JobFreeReq{*job};
}

// --- TreeLaunchReq / Ack ------------------------------------------------------------

cluster::Message TreeLaunchReq::encode() const {
  ByteWriter w = begin(MsgType::TreeLaunchReq);
  w.u64(jobid);
  w.u32(seq);
  w.u8(static_cast<std::uint8_t>(mode));
  w.str(executable);
  w.u32(static_cast<std::uint32_t>(extra_args.size()));
  for (const auto& a : extra_args) w.str(a);
  w.u32(tasks_per_node);
  w.u32(static_cast<std::uint32_t>(nodes.size()));
  for (const auto& n : nodes) write_alloc_node(w, n);
  w.u32(static_cast<std::uint32_t>(all_hosts.size()));
  for (const auto& h : all_hosts) w.str(h);
  w.u16(fabric.port);
  w.u32(fabric.fanout);
  w.u32(fabric.total);
  w.str(fabric.fe_host);
  w.u16(fabric.fe_port);
  w.str(fabric.session);
  w.u8(static_cast<std::uint8_t>(fabric.topo_kind));
  w.u32(fabric.rndv_threshold);
  w.str(fabric.platform);
  w.boolean(fabric.heal);
  w.u32(fabric.heal_grace_ms);
  w.u32(fabric.max_sessions);
  return finish(std::move(w));
}

std::optional<TreeLaunchReq> TreeLaunchReq::decode(const cluster::Message& m) {
  auto r = open(m, MsgType::TreeLaunchReq);
  if (!r) return std::nullopt;
  TreeLaunchReq out;
  auto job = r->u64();
  auto seq_f = r->u32();
  auto mode_f = r->u8();
  auto exe = r->str();
  if (!job || !seq_f || !mode_f || !exe) return std::nullopt;
  out.jobid = *job;
  out.seq = *seq_f;
  out.mode = static_cast<LaunchMode>(*mode_f);
  out.executable = std::move(*exe);
  auto nargs = r->u32();
  if (!nargs) return std::nullopt;
  for (std::uint32_t i = 0; i < *nargs; ++i) {
    auto a = r->str();
    if (!a) return std::nullopt;
    out.extra_args.push_back(std::move(*a));
  }
  auto tpn = r->u32();
  auto nnodes = r->u32();
  if (!tpn || !nnodes) return std::nullopt;
  out.tasks_per_node = *tpn;
  for (std::uint32_t i = 0; i < *nnodes; ++i) {
    auto n = read_alloc_node(*r);
    if (!n) return std::nullopt;
    out.nodes.push_back(std::move(*n));
  }
  auto nhosts = r->u32();
  if (!nhosts) return std::nullopt;
  for (std::uint32_t i = 0; i < *nhosts; ++i) {
    auto h = r->str();
    if (!h) return std::nullopt;
    out.all_hosts.push_back(std::move(*h));
  }
  auto fport = r->u16();
  auto ffan = r->u32();
  auto ftotal = r->u32();
  auto fhost = r->str();
  auto ffeport = r->u16();
  auto fsess = r->str();
  auto ftopo = r->u8();
  auto frndv = r->u32();
  auto fplatform = r->str();
  auto fheal = r->boolean();
  auto fheal_grace = r->u32();
  auto fmax_sessions = r->u32();
  if (!fport || !ffan || !ftotal || !fhost || !ffeport || !fsess || !ftopo ||
      !frndv || !fplatform || !fheal || !fheal_grace || !fmax_sessions) {
    return std::nullopt;
  }
  const auto kind = comm::topology_kind_from_u8(*ftopo);
  if (!kind) return std::nullopt;
  out.fabric = FabricSpec{*fport,   *ffan,    *ftotal,
                          std::move(*fhost), *ffeport, std::move(*fsess),
                          *kind,    *frndv,   std::move(*fplatform),
                          *fheal,   *fheal_grace, *fmax_sessions};
  return out;
}

cluster::Message TreeLaunchAck::encode() const {
  ByteWriter w = begin(MsgType::TreeLaunchAck);
  w.u32(seq);
  w.boolean(ok);
  w.str(error);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) write_task_desc(w, e);
  return finish(std::move(w));
}

std::optional<TreeLaunchAck> TreeLaunchAck::decode(const cluster::Message& m) {
  auto r = open(m, MsgType::TreeLaunchAck);
  if (!r) return std::nullopt;
  TreeLaunchAck out;
  auto seq_f = r->u32();
  auto ok_f = r->boolean();
  auto err = r->str();
  auto count = r->u32();
  if (!seq_f || !ok_f || !err || !count) return std::nullopt;
  out.seq = *seq_f;
  out.ok = *ok_f;
  out.error = std::move(*err);
  out.entries.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto e = read_task_desc(*r);
    if (!e) return std::nullopt;
    out.entries.push_back(std::move(*e));
  }
  return out;
}

// --- TreeKillReq / Ack ---------------------------------------------------------------

cluster::Message TreeKillReq::encode() const {
  ByteWriter w = begin(MsgType::TreeKillReq);
  w.u64(jobid);
  w.u32(seq);
  w.u8(static_cast<std::uint8_t>(mode));
  w.str(session);
  w.u32(static_cast<std::uint32_t>(nodes.size()));
  for (const auto& n : nodes) write_alloc_node(w, n);
  return finish(std::move(w));
}

std::optional<TreeKillReq> TreeKillReq::decode(const cluster::Message& m) {
  auto r = open(m, MsgType::TreeKillReq);
  if (!r) return std::nullopt;
  TreeKillReq out;
  auto job = r->u64();
  auto seq_f = r->u32();
  auto mode_f = r->u8();
  auto sess = r->str();
  auto count = r->u32();
  if (!job || !seq_f || !mode_f || !sess || !count) return std::nullopt;
  out.jobid = *job;
  out.seq = *seq_f;
  out.mode = static_cast<LaunchMode>(*mode_f);
  out.session = std::move(*sess);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto n = read_alloc_node(*r);
    if (!n) return std::nullopt;
    out.nodes.push_back(std::move(*n));
  }
  return out;
}

cluster::Message TreeKillAck::encode() const {
  ByteWriter w = begin(MsgType::TreeKillAck);
  w.u32(seq);
  w.boolean(ok);
  w.u32(killed);
  return finish(std::move(w));
}

std::optional<TreeKillAck> TreeKillAck::decode(const cluster::Message& m) {
  auto r = open(m, MsgType::TreeKillAck);
  if (!r) return std::nullopt;
  auto seq_f = r->u32();
  auto ok_f = r->boolean();
  auto killed = r->u32();
  if (!seq_f || !ok_f || !killed) return std::nullopt;
  return TreeKillAck{*seq_f, *ok_f, *killed};
}

// --- LaunchDone / KillDaemons -----------------------------------------------------------

cluster::Message LaunchDone::encode() const {
  ByteWriter w = begin(MsgType::LaunchDone);
  w.boolean(ok);
  w.str(error);
  w.u64(jobid);
  w.u32(static_cast<std::uint32_t>(daemons.size()));
  for (const auto& d : daemons) write_task_desc(w, d);
  return finish(std::move(w));
}

std::optional<LaunchDone> LaunchDone::decode(const cluster::Message& m) {
  auto r = open(m, MsgType::LaunchDone);
  if (!r) return std::nullopt;
  LaunchDone out;
  auto ok_f = r->boolean();
  auto err = r->str();
  auto job = r->u64();
  auto count = r->u32();
  if (!ok_f || !err || !job || !count) return std::nullopt;
  out.ok = *ok_f;
  out.error = std::move(*err);
  out.jobid = *job;
  out.daemons.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto d = read_task_desc(*r);
    if (!d) return std::nullopt;
    out.daemons.push_back(std::move(*d));
  }
  return out;
}

cluster::Message KillDaemons::encode() const {
  ByteWriter w = begin(MsgType::KillDaemons);
  return finish(std::move(w));
}

std::optional<KillDaemons> KillDaemons::decode(const cluster::Message& m) {
  auto r = open(m, MsgType::KillDaemons);
  if (!r) return std::nullopt;
  return KillDaemons{};
}

}  // namespace lmon::rm
