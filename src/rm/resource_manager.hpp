// resource_manager.hpp - facade that boots the RM onto a simulated machine.
#pragma once

#include <string>

#include "cluster/machine.hpp"
#include "common/status.hpp"
#include "rm/types.hpp"

namespace lmon::rm {

/// Installs the SLURM-like resource manager on a machine:
///  * the controller on the front-end node,
///  * a node daemon on every compute node,
///  * the "srun" launcher image in the program registry.
///
/// Returns once the processes are spawned (their on_start completes within
/// a few simulated microseconds; run the simulator briefly before launching
/// jobs, as a real cluster boots its RM before accepting work).
Status install(cluster::Machine& machine);

/// Convenience used by tools/tests that start a job *without* a tool
/// attached (the `attachAndSpawn` scenario): spawns an untraced job-mode
/// launcher on the front end. Returns the launcher pid.
cluster::Result<cluster::Pid> run_job(cluster::Machine& machine,
                                      const JobSpec& spec);

/// Builds the argv for a job-mode launcher from a JobSpec.
std::vector<std::string> job_args(const JobSpec& spec);

}  // namespace lmon::rm
