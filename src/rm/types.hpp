// types.hpp - resource-manager-level data types.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/types.hpp"

namespace lmon::rm {

using JobId = std::uint64_t;
inline constexpr JobId kInvalidJob = 0;

/// One task/daemon descriptor: the unit of the MPIR proctable (and of
/// LaunchMON's RPDTAB, which mirrors it). Paper §2: "RPDTAB ... includes the
/// host name, the executable name and the process ID of each MPI task".
struct TaskDesc {
  std::string host;
  std::string executable;
  cluster::Pid pid = cluster::kInvalidPid;
  std::int32_t rank = -1;

  friend bool operator==(const TaskDesc& a, const TaskDesc& b) {
    return a.host == b.host && a.executable == b.executable &&
           a.pid == b.pid && a.rank == b.rank;
  }
};

/// What a tool asks the RM to run (srun-style).
struct JobSpec {
  int nnodes = 1;
  int tasks_per_node = 1;
  std::string executable = "mpi_app";
  std::vector<std::string> app_args;
};

/// An allocated node, with its index within the job's allocation. The index
/// determines task ranks (block distribution) and daemon fabric positions.
struct AllocatedNode {
  std::string host;
  std::uint32_t index = 0;
};

}  // namespace lmon::rm
