// protocol.hpp - the resource manager's internal control protocol.
//
// Wire format for controller<->launcher and launcher<->node-daemon traffic.
// The tree-launch request/ack pair is the RM's scalable launch mechanism
// (paper §2: "RMs provide native interfaces and runtime services that can
// scalably launch tool daemons on a large number of nodes").
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/message.hpp"
#include "comm/topology.hpp"
#include "common/bytes.hpp"
#include "rm/types.hpp"

namespace lmon::rm {

enum class MsgType : std::uint32_t {
  AllocReq = 1,
  AllocResp,
  JobInfoReq,
  JobInfoResp,
  TreeLaunchReq,
  TreeLaunchAck,
  TreeKillReq,
  TreeKillAck,
  LaunchDone,   ///< co-spawn launcher -> tool engine report
  KillDaemons,  ///< tool engine -> co-spawn launcher
  JobFreeReq,
};

/// Peeks the type tag of an encoded RM message.
std::optional<MsgType> peek_type(const cluster::Message& msg);

// --- controller RPCs ---------------------------------------------------------

struct AllocReq {
  std::uint32_t nnodes = 0;
  /// Allocate from the middleware partition (nodes reserved for TBON
  /// communication daemons) instead of the compute partition.
  bool middleware = false;
  [[nodiscard]] cluster::Message encode() const;
  static std::optional<AllocReq> decode(const cluster::Message& m);
};

struct AllocResp {
  bool ok = false;
  std::string error;
  JobId jobid = kInvalidJob;
  std::vector<AllocatedNode> nodes;
  [[nodiscard]] cluster::Message encode() const;
  static std::optional<AllocResp> decode(const cluster::Message& m);
};

struct JobInfoReq {
  JobId jobid = kInvalidJob;
  [[nodiscard]] cluster::Message encode() const;
  static std::optional<JobInfoReq> decode(const cluster::Message& m);
};

struct JobInfoResp {
  bool ok = false;
  std::string error;
  JobId jobid = kInvalidJob;
  std::vector<AllocatedNode> nodes;
  [[nodiscard]] cluster::Message encode() const;
  static std::optional<JobInfoResp> decode(const cluster::Message& m);
};

struct JobFreeReq {
  JobId jobid = kInvalidJob;
  [[nodiscard]] cluster::Message encode() const;
  static std::optional<JobFreeReq> decode(const cluster::Message& m);
};

// --- tree launch --------------------------------------------------------------

enum class LaunchMode : std::uint8_t { Tasks = 0, Daemons = 1 };

/// Fabric bootstrap parameters handed to every spawned tool daemon; the
/// RM-provided equivalent of PMGR/SLURM's communication setup, consumed by
/// the LaunchMON BE/MW APIs via daemon argv.
struct FabricSpec {
  cluster::Port port = 0;        ///< per-session daemon listen port
  std::uint32_t fanout = 2;      ///< tree degree (fabric arity + launch fan-out)
  std::uint32_t total = 0;       ///< number of daemons in the session
  std::string fe_host;           ///< tool front end address (master connects)
  std::uint16_t fe_port = 0;
  std::string session;           ///< session cookie
  /// Fabric tree shape; KAry uses `fanout` as its arity.
  comm::TopologyKind topo_kind = comm::TopologyKind::KAry;
  /// ICCL eager->rendezvous switch threshold (bytes; 0 = platform default).
  std::uint32_t rndv_threshold = 0;
  /// Platform calibration profile name (cluster::CostModelRegistry); empty
  /// means "the machine's own costs". Daemons use it to resolve defaults
  /// (e.g. the rendezvous threshold) the same way the engine's tuner did.
  std::string platform;
  /// Self-healing daemon trees (reparent orphans onto live ancestors).
  bool heal = false;
  /// Orphan-reattach grace window (ms); 0 = the ICCL default.
  std::uint32_t heal_grace_ms = 0;
  /// Virtual-session admission bound for the daemon tree; 0 = default.
  std::uint32_t max_sessions = 0;

  [[nodiscard]] comm::TopologySpec topology() const {
    return comm::TopologySpec{topo_kind, fanout};
  }
};

struct TreeLaunchReq {
  JobId jobid = kInvalidJob;
  std::uint32_t seq = 0;
  LaunchMode mode = LaunchMode::Tasks;
  std::string executable;
  std::vector<std::string> extra_args;
  std::uint32_t tasks_per_node = 1;
  /// Subtree of allocated nodes this request covers; entry 0 is handled
  /// locally by the receiving node daemon, the rest are fanned out.
  std::vector<AllocatedNode> nodes;
  /// Full allocation host list in index order (daemon mode only; daemons
  /// need it to locate their fabric parent).
  std::vector<std::string> all_hosts;
  FabricSpec fabric;  ///< daemon mode only

  [[nodiscard]] cluster::Message encode() const;
  static std::optional<TreeLaunchReq> decode(const cluster::Message& m);
};

struct TreeLaunchAck {
  std::uint32_t seq = 0;
  bool ok = false;
  std::string error;
  std::vector<TaskDesc> entries;
  [[nodiscard]] cluster::Message encode() const;
  static std::optional<TreeLaunchAck> decode(const cluster::Message& m);
};

struct TreeKillReq {
  JobId jobid = kInvalidJob;
  std::uint32_t seq = 0;
  LaunchMode mode = LaunchMode::Daemons;
  std::string session;  ///< daemon-mode: kill only this session's daemons
  std::vector<AllocatedNode> nodes;
  [[nodiscard]] cluster::Message encode() const;
  static std::optional<TreeKillReq> decode(const cluster::Message& m);
};

struct TreeKillAck {
  std::uint32_t seq = 0;
  bool ok = false;
  std::uint32_t killed = 0;
  [[nodiscard]] cluster::Message encode() const;
  static std::optional<TreeKillAck> decode(const cluster::Message& m);
};

// --- co-spawn launcher <-> engine -------------------------------------------------

struct LaunchDone {
  bool ok = false;
  std::string error;
  JobId jobid = kInvalidJob;
  std::vector<TaskDesc> daemons;
  [[nodiscard]] cluster::Message encode() const;
  static std::optional<LaunchDone> decode(const cluster::Message& m);
};

struct KillDaemons {
  [[nodiscard]] cluster::Message encode() const;
  static std::optional<KillDaemons> decode(const cluster::Message& m);
};

// --- shared encode helpers (used by APAI, tests) -------------------------------------

void write_task_desc(ByteWriter& w, const TaskDesc& t);
std::optional<TaskDesc> read_task_desc(ByteReader& r);
void write_alloc_node(ByteWriter& w, const AllocatedNode& n);
std::optional<AllocatedNode> read_alloc_node(ByteReader& r);

}  // namespace lmon::rm
