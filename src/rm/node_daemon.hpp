// node_daemon.hpp - per-node RM daemon (slurmd-like).
//
// Executes tree-forwarded launch and kill requests: spawns the local tasks
// or tool daemon, fans the remaining node list out to up to `fanout` child
// subtrees, and aggregates acknowledgements (including the per-task
// descriptors that become the MPIR proctable) back toward the launcher.
// This tree is the "efficient platform specific mechanism" LaunchMON rides
// on instead of per-node rsh.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "cluster/process.hpp"
#include "obs/trace.hpp"
#include "rm/protocol.hpp"

namespace lmon::rm {

class NodeDaemon : public cluster::Program {
 public:
  [[nodiscard]] std::string_view name() const override { return "slurmd"; }

  void on_start(cluster::Process& self) override;
  void on_message(cluster::Process& self, const cluster::ChannelPtr& ch,
                  cluster::Message msg) override;
  void on_channel_closed(cluster::Process& self,
                         const cluster::ChannelPtr& ch) override;

  /// How long a node daemon waits for its subtree before failing the launch.
  static constexpr sim::Time kSubtreeTimeout = sim::seconds(60);

 private:
  using Key = std::uint64_t;

  struct Pending {
    std::uint32_t reply_seq = 0;             ///< seq to echo upstream
    cluster::ChannelPtr reply_to;            ///< upstream channel
    bool is_kill = false;
    int awaiting_local = 0;                  ///< local spawns not yet started
    int awaiting_children = 0;               ///< subtree acks outstanding
    bool failed = false;
    std::string error;
    std::vector<TaskDesc> entries;           ///< aggregated descriptors
    std::uint32_t killed = 0;                ///< aggregated kill count
    std::set<cluster::Channel::Id> child_channels;
    bool done = false;
    obs::SpanId span = obs::kNoSpan;         ///< per-level tree-launch span
  };

  void handle_launch(cluster::Process& self, const cluster::ChannelPtr& ch,
                     const TreeLaunchReq& req);
  void handle_kill(cluster::Process& self, const cluster::ChannelPtr& ch,
                   const TreeKillReq& req);
  void forward_subtrees(cluster::Process& self, Key key,
                        const TreeLaunchReq& req);
  void forward_kill_subtrees(cluster::Process& self, Key key,
                             const TreeKillReq& req);
  void child_failed(cluster::Process& self, Key key, const std::string& why);
  void maybe_complete(cluster::Process& self, Key key);
  void arm_timeout(cluster::Process& self, Key key);

  /// Splits nodes[1..] into up to `fanout` contiguous chunks.
  static std::vector<std::vector<AllocatedNode>> split_subtrees(
      const std::vector<AllocatedNode>& nodes, std::uint32_t fanout);

  std::map<Key, Pending> pending_;
  std::map<std::uint32_t, Key> child_seq_to_key_;   ///< downstream seq -> op
  std::map<cluster::Channel::Id, Key> channel_to_key_;
  /// Children we spawned, for kill: (jobid, mode, session) -> pids.
  std::map<std::string, std::vector<cluster::Pid>> spawned_;
  Key next_key_ = 1;
  std::uint32_t next_seq_ = 1;

  static std::string spawn_group(JobId jobid, LaunchMode mode,
                                 const std::string& session);
};

}  // namespace lmon::rm
