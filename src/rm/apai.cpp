#include "rm/apai.hpp"

#include "rm/protocol.hpp"

namespace lmon::rm::apai {

Bytes encode_proctable(const std::vector<TaskDesc>& entries) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& e : entries) write_task_desc(w, e);
  return std::move(w).take();
}

std::optional<std::vector<TaskDesc>> decode_proctable(const Bytes& blob) {
  ByteReader r(blob);
  auto count = r.u32();
  if (!count) return std::nullopt;
  std::vector<TaskDesc> out;
  out.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto e = read_task_desc(r);
    if (!e) return std::nullopt;
    out.push_back(std::move(*e));
  }
  return out;
}

void publish(cluster::Process& launcher, const std::vector<TaskDesc>& entries) {
  launcher.symbols().write(kProctable, encode_proctable(entries));
  ByteWriter size_w;
  size_w.u32(static_cast<std::uint32_t>(entries.size()));
  launcher.symbols().write(kProctableSize, std::move(size_w).take());
  set_debug_state(launcher, kDebugSpawned);
}

void set_debug_state(cluster::Process& launcher, std::uint32_t state) {
  ByteWriter w;
  w.u32(state);
  launcher.symbols().write(kDebugState, std::move(w).take());
}

}  // namespace lmon::rm::apai
