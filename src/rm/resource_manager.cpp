#include "rm/resource_manager.hpp"

#include <memory>

#include "rm/controller.hpp"
#include "rm/launcher.hpp"
#include "rm/node_daemon.hpp"

namespace lmon::rm {

Status install(cluster::Machine& machine) {
  cluster::SpawnOptions ctl_opts;
  ctl_opts.executable = "slurmctld";
  ctl_opts.image_mb = 18.0;
  auto res = machine.front_end().spawn(std::make_unique<Controller>(),
                                       std::move(ctl_opts));
  if (!res.is_ok()) return res.status;

  for (int i = 0; i < machine.num_compute_nodes(); ++i) {
    cluster::SpawnOptions opts;
    opts.executable = "slurmd";
    opts.image_mb = 12.0;
    auto r = machine.compute_node(i).spawn(std::make_unique<NodeDaemon>(),
                                           std::move(opts));
    if (!r.is_ok()) return r.status;
  }

  // Middleware nodes also run a node daemon so the RM can place TBON
  // daemons there (the paper's "additional compute resources beyond the
  // target program's allocation").
  for (int i = 0; i < machine.num_middleware_nodes(); ++i) {
    cluster::SpawnOptions opts;
    opts.executable = "slurmd";
    opts.image_mb = 12.0;
    auto r = machine.middleware_node(i).spawn(std::make_unique<NodeDaemon>(),
                                              std::move(opts));
    if (!r.is_ok()) return r.status;
  }

  cluster::ProgramImage srun_image;
  srun_image.image_mb = machine.costs().launcher_image_mb;
  srun_image.factory = [](const std::vector<std::string>&) {
    return std::make_unique<Launcher>();
  };
  machine.install_program(Launcher::kImageName, std::move(srun_image));
  return Status::ok();
}

std::vector<std::string> job_args(const JobSpec& spec) {
  std::vector<std::string> args;
  args.push_back("--mode=job");
  args.push_back("--nnodes=" + std::to_string(spec.nnodes));
  args.push_back("--tpn=" + std::to_string(spec.tasks_per_node));
  args.push_back("--exe=" + spec.executable);
  for (const auto& a : spec.app_args) args.push_back("--app-arg=" + a);
  return args;
}

cluster::Result<cluster::Pid> run_job(cluster::Machine& machine,
                                      const JobSpec& spec) {
  const cluster::ProgramImage* image =
      machine.find_program(Launcher::kImageName);
  if (image == nullptr) {
    return {Status(Rc::Esys, "RM not installed (no srun image)"),
            cluster::kInvalidPid};
  }
  cluster::SpawnOptions opts;
  opts.executable = Launcher::kImageName;
  opts.image_mb = image->image_mb;
  opts.args = job_args(spec);
  return machine.front_end().spawn(image->factory(opts.args),
                                   std::move(opts));
}

}  // namespace lmon::rm
