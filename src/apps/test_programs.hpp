// test_programs.hpp - small daemon/tool programs shared by tests, examples
// and benches.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "cluster/process.hpp"
#include "core/be_api.hpp"

namespace lmon::apps {

/// A daemon that does nothing but exist (ad hoc launch target).
class SleeperDaemon : public cluster::Program {
 public:
  [[nodiscard]] std::string_view name() const override { return "sleeperd"; }
  void on_start(cluster::Process& self) override { (void)self; }

  static void install(cluster::Machine& machine, double image_mb = 4.0);
};

/// A minimal LaunchMON back-end daemon: initializes the BE API and reports
/// ready. The quickstart example and many integration tests use it.
class HelloBeDaemon : public cluster::Program {
 public:
  [[nodiscard]] std::string_view name() const override { return "hello_be"; }
  void on_start(cluster::Process& self) override;

  static void install(cluster::Machine& machine);

 private:
  std::unique_ptr<core::BackEnd> be_;
};

/// Generic scripted tool front end: tests drive it with a callback run in
/// on_start, so each test writes its FE logic inline.
class ScriptedFrontEnd : public cluster::Program {
 public:
  using Script = std::function<void(cluster::Process&)>;
  explicit ScriptedFrontEnd(Script script) : script_(std::move(script)) {}

  [[nodiscard]] std::string_view name() const override { return "tool_fe"; }
  void on_start(cluster::Process& self) override {
    if (script_) script_(self);
  }

 private:
  Script script_;
};

}  // namespace lmon::apps
