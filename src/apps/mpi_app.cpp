#include "apps/mpi_app.hpp"

#include <memory>

#include "cluster/machine.hpp"
#include "common/argparse.hpp"

namespace lmon::apps {

void MpiApp::on_start(cluster::Process& self) {
  rank_ = static_cast<int>(arg_int(self.args(), "--rank=").value_or(0));
  size_ = static_cast<int>(arg_int(self.args(), "--size=").value_or(1));
  rng_ = sim::Rng(static_cast<std::uint64_t>(rank_) * 7919 + 13);

  auto& st = self.stats();
  st.state = 'R';
  st.num_threads = 1 + static_cast<std::uint32_t>(rng_.next_below(3));
  st.vm_hwm_kb = 150'000 + rng_.next_below(80'000);
  st.vm_rss_kb = st.vm_hwm_kb - rng_.next_below(20'000);
  st.vm_lck_kb = rng_.next_below(4096);
  rebuild_stack();
  tick(self);
}

void MpiApp::rebuild_stack() {
  // A synthetic SPMD application profile: most ranks compute, a few are in
  // MPI communication, rank 0 may sit in I/O. This yields the equivalence-
  // class structure STAT's prefix tree is designed to expose.
  stack_ = {"_start", "main", "solver_loop"};
  const std::uint64_t mode = rng_.next_below(100);
  if (rank_ == 0 && mode < 30) {
    stack_.push_back("write_checkpoint");
    stack_.push_back("io_write");
  } else if (mode < 20) {
    stack_.push_back("exchange_halo");
    stack_.push_back("MPI_Waitall");
  } else if (mode < 28) {
    stack_.push_back("global_reduce");
    stack_.push_back("MPI_Allreduce");
  } else {
    stack_.push_back("compute_kernel");
    stack_.push_back(mode % 2 == 0 ? "stencil_sweep" : "apply_bc");
  }
}

void MpiApp::tick(cluster::Process& self) {
  // Advance /proc state every ~50ms of simulated time.
  self.post(sim::ms(50), [this, &self] {
    ticks_ += 1;
    auto& st = self.stats();
    st.program_counter = 0x400000 + rng_.next_below(0x10000);
    st.utime_ms += 45 + rng_.next_below(5);
    st.stime_ms += rng_.next_below(5);
    if (rng_.next_below(10) == 0) st.maj_faults += 1;
    if (rng_.next_below(20) == 0) {
      st.vm_hwm_kb += rng_.next_below(1024);
      st.vm_rss_kb = st.vm_hwm_kb - rng_.next_below(20'000);
    }
    rebuild_stack();
    tick(self);
  });
}

void MpiApp::install(cluster::Machine& machine) {
  cluster::ProgramImage image;
  image.image_mb = machine.costs().app_image_mb;
  image.factory = [](const std::vector<std::string>&) {
    return std::make_unique<MpiApp>();
  };
  machine.install_program("mpi_app", std::move(image));
}

}  // namespace lmon::apps
