#include "apps/test_programs.hpp"

#include "cluster/machine.hpp"

namespace lmon::apps {

void SleeperDaemon::install(cluster::Machine& machine, double image_mb) {
  cluster::ProgramImage image;
  image.image_mb = image_mb;
  image.factory = [](const std::vector<std::string>&) {
    return std::make_unique<SleeperDaemon>();
  };
  machine.install_program("sleeperd", std::move(image));
}

void HelloBeDaemon::on_start(cluster::Process& self) {
  be_ = std::make_unique<core::BackEnd>(self);
  core::BackEnd::Callbacks cbs;
  cbs.on_init = [](const core::Rpdtab&, const Bytes&,
                   std::function<void(Status)> done) {
    done(Status::ok());
  };
  cbs.on_ready = [](Status) {};
  const Status st = be_->init(std::move(cbs));
  if (!st.is_ok()) self.exit(1);
}

void HelloBeDaemon::install(cluster::Machine& machine) {
  cluster::ProgramImage image;
  image.image_mb = machine.costs().tool_daemon_image_mb;
  image.factory = [](const std::vector<std::string>&) {
    return std::make_unique<HelloBeDaemon>();
  };
  machine.install_program("hello_be", std::move(image));
}

}  // namespace lmon::apps
