// mpi_app.hpp - simulated MPI application task.
//
// Stands in for the parallel application whose processes the tools target.
// Each task keeps /proc-style statistics churning (program counter, memory
// watermarks, CPU time, page faults) so that Jobsnap has realistic state to
// snapshot, and advances through a synthetic call stack that STAT samples.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/process.hpp"
#include "simkernel/rng.hpp"

namespace lmon::apps {

class MpiApp : public cluster::Program {
 public:
  [[nodiscard]] std::string_view name() const override { return "mpi_app"; }
  void on_start(cluster::Process& self) override;

  /// Current synthetic call stack (function name list, outermost first).
  /// STAT back-end daemons read this through node-local access, the way the
  /// real tool uses a stackwalker on a stopped process.
  [[nodiscard]] const std::vector<std::string>& call_stack() const {
    return stack_;
  }
  [[nodiscard]] int rank() const { return rank_; }

  /// Installs the "mpi_app" image into a machine's program registry.
  static void install(cluster::Machine& machine);

 private:
  void tick(cluster::Process& self);
  void rebuild_stack();

  int rank_ = -1;
  int size_ = 0;
  std::uint64_t ticks_ = 0;
  sim::Rng rng_{0};
  std::vector<std::string> stack_;
};

}  // namespace lmon::apps
