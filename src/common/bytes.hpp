// bytes.hpp - little-endian wire serialization helpers.
//
// Every protocol in this repository (LMONP, the RM control protocol, the
// TBON packet format, tool payloads) serializes to real byte buffers so that
// message *sizes* are faithful: the simulated network charges transfer time
// proportional to the encoded size, which is what makes the paper's
// region-B/region-C linear terms (RPDTAB fetch, handshake payloads)
// reproducible.
#pragma once

#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lmon {

using Bytes = std::vector<std::uint8_t>;

/// Appends primitive values and length-prefixed containers to a byte buffer.
///
/// All integers are encoded little-endian with fixed width. Strings and blobs
/// are prefixed with a u32 length. The writer never fails; size is available
/// at any time for cost accounting.
class ByteWriter {
 public:
  ByteWriter() = default;
  explicit ByteWriter(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v) { append_le(v); }
  void u32(std::uint32_t v) { append_le(v); }
  void u64(std::uint64_t v) { append_le(v); }
  void i32(std::int32_t v) { append_le(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { append_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    append_le(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  /// u32 length prefix + raw bytes.
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    raw(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
  }

  /// u32 length prefix + raw bytes.
  void blob(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    raw(b);
  }

  /// Raw bytes, no prefix (caller knows the framing).
  void raw(std::span<const std::uint8_t> b) {
    buf_.insert(buf_.end(), b.begin(), b.end());
  }

  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }
  [[nodiscard]] const Bytes& bytes() const noexcept { return buf_; }
  [[nodiscard]] Bytes take() && noexcept { return std::move(buf_); }

  /// Overwrites previously written bytes at `offset` (e.g. to patch a length
  /// field after the payload is known). `offset + 4` must be <= size().
  void patch_u32(std::size_t offset, std::uint32_t v);

 private:
  template <typename T>
  void append_le(T v) {
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  Bytes buf_;
};

/// Consumes primitive values from a byte buffer written by ByteWriter.
///
/// Every accessor returns std::optional; decoding a malformed buffer yields
/// nullopt instead of UB, so protocol handlers can reject bad frames
/// (exercised by the fuzz-ish property tests).
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit ByteReader(const Bytes& data) : data_(data.data(), data.size()) {}

  std::optional<std::uint8_t> u8() { return take_le<std::uint8_t>(); }
  std::optional<std::uint16_t> u16() { return take_le<std::uint16_t>(); }
  std::optional<std::uint32_t> u32() { return take_le<std::uint32_t>(); }
  std::optional<std::uint64_t> u64() { return take_le<std::uint64_t>(); }
  std::optional<std::int32_t> i32() {
    auto v = take_le<std::uint32_t>();
    if (!v) return std::nullopt;
    return static_cast<std::int32_t>(*v);
  }
  std::optional<std::int64_t> i64() {
    auto v = take_le<std::uint64_t>();
    if (!v) return std::nullopt;
    return static_cast<std::int64_t>(*v);
  }
  std::optional<double> f64() {
    auto bits = take_le<std::uint64_t>();
    if (!bits) return std::nullopt;
    double v;
    std::memcpy(&v, &*bits, sizeof v);
    return v;
  }
  std::optional<bool> boolean() {
    auto v = u8();
    if (!v) return std::nullopt;
    return *v != 0;
  }

  std::optional<std::string> str();
  std::optional<Bytes> blob();

  /// Raw bytes of exactly `n`, no prefix.
  std::optional<Bytes> raw(std::size_t n);

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool exhausted() const noexcept { return remaining() == 0; }

 private:
  template <typename T>
  std::optional<T> take_le() {
    if (remaining() < sizeof(T)) return std::nullopt;
    T v = 0;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(data_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Convenience: byte span view of a string.
inline std::span<const std::uint8_t> as_bytes(std::string_view s) {
  return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

/// Hex encoding, for smuggling binary blobs through argv (the ad hoc TBON
/// startup passes its topology this way, like MRNet's topology file).
std::string to_hex(const Bytes& b);
std::optional<Bytes> from_hex(std::string_view s);

}  // namespace lmon
