// argparse.hpp - minimal "--key=value" argv helpers.
//
// The simulated processes receive argv-style string vectors (daemon
// bootstrap parameters travel as real argv, like SLURM passes them), so
// several programs need the same tiny lookup.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace lmon {

/// Returns the value of "--key=value" for key "--key=", or nullopt. A bare
/// "--key=" counts as absent (callers treat empty as unset); repeatable
/// pass-through options keep empty values via arg_list below.
inline std::optional<std::string> arg_value(
    const std::vector<std::string>& args, std::string_view key_eq) {
  for (const auto& a : args) {
    if (a.size() > key_eq.size() &&
        std::string_view(a).substr(0, key_eq.size()) == key_eq) {
      return a.substr(key_eq.size());
    }
  }
  return std::nullopt;
}

inline std::optional<std::int64_t> arg_int(
    const std::vector<std::string>& args, std::string_view key_eq) {
  auto v = arg_value(args, key_eq);
  if (!v) return std::nullopt;
  try {
    return std::stoll(*v);
  } catch (...) {
    return std::nullopt;
  }
}

/// Collects every occurrence of a repeatable "--key=value" option, in
/// order (e.g. arg_list(args, "--daemon-arg=") for pass-through argv).
/// Empty values are kept: "--daemon-arg=" forwards "" and preserves the
/// daemon's argv positions.
inline std::vector<std::string> arg_list(const std::vector<std::string>& args,
                                         std::string_view key_eq) {
  std::vector<std::string> out;
  for (const auto& a : args) {
    if (a.size() >= key_eq.size() &&
        std::string_view(a).substr(0, key_eq.size()) == key_eq) {
      out.push_back(a.substr(key_eq.size()));
    }
  }
  return out;
}

/// True when the exact flag (e.g. "--verbose") is present.
inline bool arg_flag(const std::vector<std::string>& args,
                     std::string_view flag) {
  for (const auto& a : args) {
    if (a == flag) return true;
  }
  return false;
}

/// Joins strings into a comma-separated list (inverse of split_csv).
inline std::string join_csv(const std::vector<std::string>& parts) {
  std::string out;
  for (const auto& s : parts) {
    if (!out.empty()) out += ',';
    out += s;
  }
  return out;
}

/// Splits a comma-separated list ("host1,host2,host3").
inline std::vector<std::string> split_csv(std::string_view csv) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= csv.size()) {
    const std::size_t comma = csv.find(',', start);
    if (comma == std::string_view::npos) {
      if (start < csv.size()) out.emplace_back(csv.substr(start));
      break;
    }
    if (comma > start) out.emplace_back(csv.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace lmon
