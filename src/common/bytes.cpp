#include "common/bytes.hpp"

#include <cassert>

namespace lmon {

void ByteWriter::patch_u32(std::size_t offset, std::uint32_t v) {
  assert(offset + 4 <= buf_.size());
  for (std::size_t i = 0; i < 4; ++i) {
    buf_[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

std::optional<std::string> ByteReader::str() {
  auto len = u32();
  if (!len || remaining() < *len) return std::nullopt;
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_), *len);
  pos_ += *len;
  return s;
}

std::optional<Bytes> ByteReader::blob() {
  auto len = u32();
  if (!len || remaining() < *len) return std::nullopt;
  return raw(*len);
}

std::optional<Bytes> ByteReader::raw(std::size_t n) {
  if (remaining() < n) return std::nullopt;
  Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
            data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return out;
}

std::string to_hex(const Bytes& b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t byte : b) {
    out.push_back(kDigits[byte >> 4]);
    out.push_back(kDigits[byte & 0x0F]);
  }
  return out;
}

std::optional<Bytes> from_hex(std::string_view s) {
  if (s.size() % 2 != 0) return std::nullopt;
  auto nibble = [](char c) -> int {
    if (c >= '0' && c <= '9') return c - '0';
    if (c >= 'a' && c <= 'f') return c - 'a' + 10;
    if (c >= 'A' && c <= 'F') return c - 'A' + 10;
    return -1;
  };
  Bytes out;
  out.reserve(s.size() / 2);
  for (std::size_t i = 0; i < s.size(); i += 2) {
    const int hi = nibble(s[i]);
    const int lo = nibble(s[i + 1]);
    if (hi < 0 || lo < 0) return std::nullopt;
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

}  // namespace lmon
