#include "common/status.hpp"

namespace lmon {

std::string_view to_string(Rc rc) noexcept {
  switch (rc) {
    case Rc::Ok: return "Ok";
    case Rc::Einval: return "Einval";
    case Rc::Ebdarg: return "Ebdarg";
    case Rc::Esubcom: return "Esubcom";
    case Rc::Esys: return "Esys";
    case Rc::Etout: return "Etout";
    case Rc::Enomem: return "Enomem";
    case Rc::Enosession: return "Enosession";
    case Rc::Ebusy: return "Ebusy";
    case Rc::Edead: return "Edead";
    case Rc::Eunsupported: return "Eunsupported";
  }
  return "Unknown";
}

std::string Status::to_string() const {
  std::string out(lmon::to_string(rc_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace lmon
