// status.hpp - error/result codes used across the LaunchMON reproduction.
//
// Mirrors the spirit of the real LaunchMON `lmon_rc_e` return-code enum:
// every public API call returns a Status rather than throwing, because tool
// front ends must be able to degrade gracefully (e.g. fall back to an ad hoc
// launcher) when an RM service is missing.
#pragma once

#include <string>
#include <string_view>

namespace lmon {

/// Return codes for public LaunchMON-style APIs.
enum class Rc {
  Ok = 0,            ///< success (LMON_OK)
  Einval,            ///< invalid argument (LMON_EINVAL)
  Ebdarg,            ///< bad argument contents (LMON_EBDARG)
  Esubcom,           ///< error in a communication subsystem (LMON_ESUBCOM)
  Esys,              ///< (simulated) system error, e.g. fork failure (LMON_ESYS)
  Etout,             ///< timed out (LMON_ETOUT)
  Enomem,            ///< resource exhaustion (LMON_ENOMEM)
  Enosession,        ///< unknown session handle
  Ebusy,             ///< session already has an operation in flight
  Edead,             ///< target job/daemon exited unexpectedly
  Eunsupported,      ///< operation not supported by this RM adaptation
};

/// Human-readable name for a return code ("Ok", "Esys", ...).
std::string_view to_string(Rc rc) noexcept;

/// A return code plus an optional diagnostic message.
///
/// Cheap to copy when ok (empty message); carries context on failure.
class Status {
 public:
  Status() noexcept : rc_(Rc::Ok) {}
  Status(Rc rc) noexcept : rc_(rc) {}  // NOLINT: implicit by design
  Status(Rc rc, std::string message) : rc_(rc), message_(std::move(message)) {}

  static Status ok() noexcept { return Status(); }

  [[nodiscard]] bool is_ok() const noexcept { return rc_ == Rc::Ok; }
  explicit operator bool() const noexcept { return is_ok(); }

  [[nodiscard]] Rc rc() const noexcept { return rc_; }
  [[nodiscard]] const std::string& message() const noexcept { return message_; }

  /// "Ok" or "Esys: fork failed on node 3".
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) noexcept {
    return a.rc_ == b.rc_;
  }

 private:
  Rc rc_;
  std::string message_;
};

}  // namespace lmon
