#include "core/rm_adapter.hpp"

#include <cassert>

#include "cluster/machine.hpp"
#include "rm/apai.hpp"
#include "rm/launcher.hpp"
#include "rm/resource_manager.hpp"
#include "simkernel/log.hpp"

namespace lmon::core {

cluster::Result<cluster::Pid> SlurmAdapter::launch_job(
    cluster::Process& engine, const rm::JobSpec& spec,
    cluster::DebugEventHandler handler) {
  engine_ = &engine;
  const cluster::ProgramImage* image =
      engine.machine().find_program(rm::Launcher::kImageName);
  if (image == nullptr) {
    return {Status(Rc::Esys, "no srun image installed"), cluster::kInvalidPid};
  }
  cluster::SpawnOptions opts;
  opts.executable = rm::Launcher::kImageName;
  opts.image_mb = image->image_mb;
  opts.args = rm::job_args(spec);
  auto res = engine.spawn_traced(image->factory(opts.args), std::move(opts),
                                 std::move(handler));
  if (!res.is_ok()) return {res.status, cluster::kInvalidPid};
  session_ = res.value.second;
  return {Status::ok(), res.value.first};
}

Status SlurmAdapter::attach_job(cluster::Process& engine,
                                cluster::Pid launcher,
                                cluster::DebugEventHandler handler) {
  engine_ = &engine;
  auto res = engine.trace_attach(launcher, std::move(handler));
  if (!res.is_ok()) return res.status;
  session_ = res.value;
  return Status::ok();
}

void SlurmAdapter::fetch_proctable(std::function<void(Status, Bytes)> cb) {
  assert(session_ != nullptr && "fetch_proctable before attach/launch");
  session_->read_symbol(rm::apai::kProctable, std::move(cb));
}

void SlurmAdapter::fetch_jobid(std::function<void(Status, rm::JobId)> cb) {
  assert(session_ != nullptr && "fetch_jobid before attach/launch");
  session_->read_symbol(
      rm::apai::kJobId, [cb = std::move(cb)](Status st, Bytes data) {
        if (!st.is_ok()) {
          cb(st, rm::kInvalidJob);
          return;
        }
        ByteReader r(data);
        auto jobid = r.u64();
        if (!jobid) {
          cb(Status(Rc::Esubcom, "bad totalview_jobid"), rm::kInvalidJob);
          return;
        }
        cb(Status::ok(), *jobid);
      });
}

void SlurmAdapter::continue_job() {
  if (session_ != nullptr) session_->continue_target();
}

void SlurmAdapter::detach_job() {
  if (session_ != nullptr) {
    session_->detach();
    session_ = nullptr;
  }
}

void SlurmAdapter::kill_job() {
  if (session_ != nullptr) {
    session_->kill_target();
    session_ = nullptr;
  }
}

void SlurmAdapter::kill_tasks(cluster::Process& engine, rm::JobId jobid,
                              const std::vector<std::string>& hosts) {
  if (hosts.empty()) return;
  rm::TreeKillReq req;
  req.jobid = jobid;
  req.seq = 99;
  req.mode = rm::LaunchMode::Tasks;
  req.session = "";  // job-mode spawns register under the empty session
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    req.nodes.push_back(
        rm::AllocatedNode{hosts[i], static_cast<std::uint32_t>(i)});
  }
  engine.connect(hosts.front(), cluster::kRmNodeDaemonPort,
                 [&engine, req = std::move(req)](Status st,
                                                 cluster::ChannelPtr ch) {
                   if (!st.is_ok()) return;  // node gone: nothing to kill
                   engine.send(ch, req.encode());
                   // Ack is informational; the channel closes with the
                   // engine's exit.
                 });
}

Status SlurmAdapter::co_spawn(cluster::Process& engine,
                              const CoSpawnConfig& cfg,
                              std::function<void(rm::LaunchDone)> cb) {
  engine_ = &engine;
  // The RM-bulk path is the paper's contribution; the adapter binds it to
  // this platform by delegating to rm::RmBulkStrategy (the same strategy
  // the engine can select directly through comm::make_launch_strategy).
  comm::LaunchRequest req;
  req.daemon_exe = cfg.daemon_exe;
  req.daemon_args = cfg.daemon_args;
  req.bootstrap.topology = cfg.fabric.topology();
  req.bootstrap.port = cfg.fabric.port;
  req.bootstrap.session = cfg.fabric.session;
  req.bootstrap.fe_host = cfg.fabric.fe_host;
  req.bootstrap.fe_port = cfg.fabric.fe_port;
  req.bootstrap.rndv_threshold = cfg.fabric.rndv_threshold;
  req.bootstrap.heal = cfg.fabric.heal;
  req.bootstrap.heal_grace_ms = cfg.fabric.heal_grace_ms;
  req.bootstrap.max_sessions = cfg.fabric.max_sessions;
  req.launch_fanout = cfg.fabric.fanout;
  req.jobid = cfg.jobid;
  req.alloc_nodes = cfg.alloc_nodes;
  req.middleware_partition = cfg.middleware_partition;
  req.report_port = cfg.report_port;

  auto strategy = std::make_unique<rm::RmBulkStrategy>();
  rm::RmBulkStrategy* raw = strategy.get();
  cospawns_.push_back(std::move(strategy));
  raw->launch(engine, std::move(req),
              [cb = std::move(cb)](comm::LaunchResult res) {
                rm::LaunchDone done;
                done.ok = res.status.is_ok();
                done.error = res.status.message();
                done.jobid = res.jobid;
                done.daemons = std::move(res.daemons);
                if (cb) cb(std::move(done));
              });
  return Status::ok();
}

void SlurmAdapter::kill_daemons(std::function<void(Status)> cb) {
  if (engine_ == nullptr || cospawns_.empty()) {
    if (cb) cb(Status(Rc::Edead, "no co-spawned daemons"));
    return;
  }
  // Tear every co-spawned group down; the callback follows the last one
  // and carries the first failure (e.g. Edead when a launcher is already
  // gone) rather than unconditional success.
  auto remaining = std::make_shared<int>(static_cast<int>(cospawns_.size()));
  auto first_error = std::make_shared<Status>();
  auto shared_cb = std::make_shared<std::function<void(Status)>>(std::move(cb));
  for (auto& strategy : cospawns_) {
    strategy->teardown(*engine_, [remaining, first_error, shared_cb](Status st) {
      if (!st.is_ok() && first_error->is_ok()) *first_error = st;
      *remaining -= 1;
      if (*remaining == 0 && *shared_cb) (*shared_cb)(*first_error);
    });
  }
}

}  // namespace lmon::core
