#include "core/rm_adapter.hpp"

#include <cassert>

#include "cluster/machine.hpp"
#include "rm/apai.hpp"
#include "rm/launcher.hpp"
#include "rm/resource_manager.hpp"
#include "simkernel/log.hpp"

namespace lmon::core {

cluster::Result<cluster::Pid> SlurmAdapter::launch_job(
    cluster::Process& engine, const rm::JobSpec& spec,
    cluster::DebugEventHandler handler) {
  engine_ = &engine;
  const cluster::ProgramImage* image =
      engine.machine().find_program(rm::Launcher::kImageName);
  if (image == nullptr) {
    return {Status(Rc::Esys, "no srun image installed"), cluster::kInvalidPid};
  }
  cluster::SpawnOptions opts;
  opts.executable = rm::Launcher::kImageName;
  opts.image_mb = image->image_mb;
  opts.args = rm::job_args(spec);
  auto res = engine.spawn_traced(image->factory(opts.args), std::move(opts),
                                 std::move(handler));
  if (!res.is_ok()) return {res.status, cluster::kInvalidPid};
  session_ = res.value.second;
  return {Status::ok(), res.value.first};
}

Status SlurmAdapter::attach_job(cluster::Process& engine,
                                cluster::Pid launcher,
                                cluster::DebugEventHandler handler) {
  engine_ = &engine;
  auto res = engine.trace_attach(launcher, std::move(handler));
  if (!res.is_ok()) return res.status;
  session_ = res.value;
  return Status::ok();
}

void SlurmAdapter::fetch_proctable(std::function<void(Status, Bytes)> cb) {
  assert(session_ != nullptr && "fetch_proctable before attach/launch");
  session_->read_symbol(rm::apai::kProctable, std::move(cb));
}

void SlurmAdapter::fetch_jobid(std::function<void(Status, rm::JobId)> cb) {
  assert(session_ != nullptr && "fetch_jobid before attach/launch");
  session_->read_symbol(
      rm::apai::kJobId, [cb = std::move(cb)](Status st, Bytes data) {
        if (!st.is_ok()) {
          cb(st, rm::kInvalidJob);
          return;
        }
        ByteReader r(data);
        auto jobid = r.u64();
        if (!jobid) {
          cb(Status(Rc::Esubcom, "bad totalview_jobid"), rm::kInvalidJob);
          return;
        }
        cb(Status::ok(), *jobid);
      });
}

void SlurmAdapter::continue_job() {
  if (session_ != nullptr) session_->continue_target();
}

void SlurmAdapter::detach_job() {
  if (session_ != nullptr) {
    session_->detach();
    session_ = nullptr;
  }
}

void SlurmAdapter::kill_job() {
  if (session_ != nullptr) {
    session_->kill_target();
    session_ = nullptr;
  }
}

void SlurmAdapter::kill_tasks(cluster::Process& engine, rm::JobId jobid,
                              const std::vector<std::string>& hosts) {
  if (hosts.empty()) return;
  rm::TreeKillReq req;
  req.jobid = jobid;
  req.seq = 99;
  req.mode = rm::LaunchMode::Tasks;
  req.session = "";  // job-mode spawns register under the empty session
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    req.nodes.push_back(
        rm::AllocatedNode{hosts[i], static_cast<std::uint32_t>(i)});
  }
  engine.connect(hosts.front(), cluster::kRmNodeDaemonPort,
                 [&engine, req = std::move(req)](Status st,
                                                 cluster::ChannelPtr ch) {
                   if (!st.is_ok()) return;  // node gone: nothing to kill
                   engine.send(ch, req.encode());
                   // Ack is informational; the channel closes with the
                   // engine's exit.
                 });
}

Status SlurmAdapter::co_spawn(cluster::Process& engine,
                              const CoSpawnConfig& cfg,
                              std::function<void(rm::LaunchDone)> cb) {
  engine_ = &engine;
  const cluster::ProgramImage* image =
      engine.machine().find_program(rm::Launcher::kImageName);
  if (image == nullptr) {
    return Status(Rc::Esys, "no srun image installed");
  }

  // Accept the co-spawn launcher's report connection.
  const Status lst = engine.listen(
      cfg.report_port, [this, &engine, cb](cluster::ChannelPtr ch) {
        cospawn_channel_ = ch;
        engine.set_channel_handler(
            ch,
            [this, cb](const cluster::ChannelPtr&, cluster::Message m) {
              auto done = rm::LaunchDone::decode(m);
              if (done) cb(std::move(*done));
            },
            [this](const cluster::ChannelPtr&) {
              cospawn_channel_ = nullptr;
              if (kill_cb_) {
                auto k = std::move(kill_cb_);
                kill_cb_ = nullptr;
                k(Status::ok());
              }
            });
      });
  if (!lst.is_ok()) return lst;

  cluster::SpawnOptions opts;
  opts.executable = rm::Launcher::kImageName;
  opts.image_mb = image->image_mb;
  opts.args.push_back("--mode=cospawn");
  if (cfg.jobid != rm::kInvalidJob) {
    opts.args.push_back("--jobid=" + std::to_string(cfg.jobid));
  } else {
    opts.args.push_back("--alloc-nodes=" + std::to_string(cfg.alloc_nodes));
    if (cfg.middleware_partition) {
      opts.args.push_back("--alloc-partition=mw");
    }
  }
  opts.args.push_back("--exe=" + cfg.daemon_exe);
  opts.args.push_back("--report-host=" + engine.node().hostname());
  opts.args.push_back("--report-port=" + std::to_string(cfg.report_port));
  opts.args.push_back("--fabric-port=" + std::to_string(cfg.fabric.port));
  opts.args.push_back("--fabric-fanout=" +
                      std::to_string(cfg.fabric.fanout));
  opts.args.push_back("--fe-host=" + cfg.fabric.fe_host);
  opts.args.push_back("--fe-port=" + std::to_string(cfg.fabric.fe_port));
  opts.args.push_back("--session=" + cfg.fabric.session);
  for (const auto& a : cfg.daemon_args) {
    opts.args.push_back("--daemon-arg=" + a);
  }
  auto res = engine.spawn_child(image->factory(opts.args), std::move(opts));
  return res.status;
}

void SlurmAdapter::kill_daemons(std::function<void(Status)> cb) {
  if (cospawn_channel_ == nullptr || engine_ == nullptr) {
    if (cb) cb(Status(Rc::Edead, "no co-spawned daemons"));
    return;
  }
  kill_cb_ = std::move(cb);
  engine_->send(cospawn_channel_, rm::KillDaemons{}.encode());
}

}  // namespace lmon::core
