// be_api.hpp - the LaunchMON Back-End API (paper §3.3).
//
// A tool daemon program constructs a BackEnd in its on_start and calls
// init(); once on_ready fires the daemon knows its rank, the job RPDTAB,
// the tasks co-located with it, and can use the minimal collectives
// (barrier / broadcast / gather / scatter) for tool coordination.
//
// Real-LaunchMON correspondence:
//   LMON_be_init / LMON_be_handshake / LMON_be_ready  -> BackEnd::init
//   LMON_be_getMyProctabSize / ..MyProctab            -> my_entries()
//   LMON_be_amIMaster                                  -> is_master()
//   LMON_be_barrier / broadcast / gather / scatter     -> same names
//   LMON_be_sendUsrData / recvUsrData                  -> send_usrdata_fe /
//                                                         Callbacks::on_usrdata
#pragma once

#include "core/daemon_runtime.hpp"

namespace lmon::core {

class BackEnd : public DaemonRuntime {
 public:
  explicit BackEnd(cluster::Process& self)
      : DaemonRuntime(self, MsgClass::FeBe) {}
};

}  // namespace lmon::core
