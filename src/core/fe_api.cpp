#include "core/fe_api.hpp"

#include <cassert>
#include <cstdlib>

#include "cluster/machine.hpp"
#include "core/engine.hpp"
#include "core/payloads.hpp"
#include "obs/perfetto.hpp"
#include "simkernel/log.hpp"

namespace lmon::core {

namespace {
constexpr cluster::Port kFePortBase = 7050;
constexpr int kFePortSpan = 64;
/// Per-session port block: fabric, engine-report, MW fabric, MW reports.
constexpr int kPortsPerSession = 8;
}  // namespace

FrontEnd::FrontEnd(cluster::Process& self, int max_sessions)
    : self_(self), max_sessions_(max_sessions > 0 ? max_sessions : 1) {
  for (int i = 0; i < kPortSlots; ++i) free_port_slots_.insert(i);
}

FrontEnd::~FrontEnd() {
  if (owned_tracer_ != nullptr &&
      self_.machine().tracer() == owned_tracer_.get()) {
    self_.machine().set_tracer(nullptr);
  }
}

Status FrontEnd::init() {
  for (int i = 0; i < kFePortSpan; ++i) {
    const cluster::Port candidate =
        static_cast<cluster::Port>(kFePortBase + i);
    Status st = self_.listen(
        candidate, [this](cluster::ChannelPtr ch) { on_accept(ch); });
    if (st.is_ok()) {
      port_ = candidate;
      return Status::ok();
    }
  }
  return Status(Rc::Esys, "no free FE port");
}

cluster::Result<int> FrontEnd::create_session() {
  if (port_ == 0) return {Status(Rc::Einval, "FrontEnd::init not called"), -1};
  if (static_cast<int>(sessions_.size()) >= max_sessions_) {
    return {Status(Rc::Enomem, "session table full"), -1};
  }
  // Lowest released id first (LMON_fe_createSession semantics: descriptors
  // are a reusable resource, not a monotonic counter).
  int sid = -1;
  if (!free_ids_.empty()) {
    sid = *free_ids_.begin();
    free_ids_.erase(free_ids_.begin());
  } else {
    sid = next_session_++;
  }
  Session s;
  s.id = sid;
  sessions_.emplace(sid, std::move(s));
  return {Status::ok(), sid};
}

Status FrontEnd::destroy_session(int sid) {
  Session* s = find(sid);
  if (s == nullptr) return Status(Rc::Enosession, "unknown session");
  if (s->state != SessionState::Idle && s->state != SessionState::Failed &&
      s->state != SessionState::Torn) {
    return Status(Rc::Ebusy, "session still live (detach or kill first)");
  }
  if (s->done || s->mw_done || s->teardown_done) {
    return Status(Rc::Ebusy, "operation in flight");
  }
  if (s->infra != nullptr) {
    if (s->vsid != 0) {
      s->infra->vsids.erase(s->vsid);
    } else if (s->infra->owner_sid == sid) {
      // The tree owner is going away: the tree (already torn down or
      // failed) releases its port block for reuse.
      tear_virtuals(*s->infra);
      if (s->infra->port_slot >= 0) {
        free_port_slots_.insert(s->infra->port_slot);
      }
      infra_.erase(sid);
    }
  }
  sessions_.erase(sid);
  free_ids_.insert(sid);
  return Status::ok();
}

FrontEnd::Session* FrontEnd::find(int sid) {
  auto it = sessions_.find(sid);
  return it == sessions_.end() ? nullptr : &it->second;
}

const FrontEnd::Session* FrontEnd::find(int sid) const {
  auto it = sessions_.find(sid);
  return it == sessions_.end() ? nullptr : &it->second;
}

FrontEnd::Session* FrontEnd::find_by_cookie(const std::string& cookie) {
  for (auto& [sid, s] : sessions_) {
    if (s.cookie == cookie) return &s;
  }
  return nullptr;
}

InfraHandle FrontEnd::infra_of(int sid) const {
  const Session* s = find(sid);
  if (s == nullptr || s->infra == nullptr) return InfraHandle{};
  return InfraHandle{s->infra->owner_sid};
}

std::uint32_t FrontEnd::vsid_of(int sid) const {
  const Session* s = find(sid);
  return s == nullptr ? 0 : s->vsid;
}

std::size_t FrontEnd::tree_session_count(int sid) const {
  const Session* s = find(sid);
  if (s == nullptr || s->infra == nullptr) return 0;
  return 1 + s->infra->vsids.size();
}

void FrontEnd::launch_and_spawn(int sid, const rm::JobSpec& job,
                                SpawnConfig cfg, Done done) {
  start_operation(sid, /*attach=*/false, &job, cluster::kInvalidPid,
                  std::move(cfg), std::move(done));
}

void FrontEnd::attach_and_spawn(int sid, cluster::Pid launcher_pid,
                                SpawnConfig cfg, Done done) {
  start_operation(sid, /*attach=*/true, nullptr, launcher_pid, std::move(cfg),
                  std::move(done));
}

void FrontEnd::start_operation(int sid, bool attach, const rm::JobSpec* job,
                               cluster::Pid target, SpawnConfig cfg,
                               Done done) {
  Session* s = find(sid);
  if (s == nullptr) {
    if (done) done(Status(Rc::Enosession, "unknown session"));
    return;
  }
  if (s->state != SessionState::Idle) {
    if (done) done(Status(Rc::Ebusy, "session already used"));
    return;
  }
  if (cfg.attach_to.valid()) {
    s->cfg = std::move(cfg);
    start_virtual_attach(*s, std::move(done));
    return;
  }
  // Trace wiring before e0 so the mark lands inside the capture. The FE
  // only owns a tracer when asked to export and none is attached already
  // (benches/tests attach their own through the machine hooks).
  std::string trace_out = cfg.trace_out;
  if (trace_out.empty()) {
    if (const char* env = std::getenv("LMON_TRACE_OUT")) trace_out = env;
  }
  if (!trace_out.empty() && self_.machine().tracer() == nullptr &&
      owned_tracer_ == nullptr) {
    owned_tracer_ = std::make_unique<obs::Tracer>(self_.sim());
    log_bridge_ = std::make_unique<obs::LogBridge>(*owned_tracer_);
    self_.machine().set_tracer(owned_tracer_.get());
    trace_out_path_ = trace_out;
  }

  // Bind the session's infrastructure record: the tree bootstrap below is
  // what makes it real. Each FE instance owns a disjoint block of fabric/
  // report ports derived from its own LMONP port, so several tool front
  // ends can share a login node without their engines or daemon fabrics
  // colliding; each *tree* consumes one of the FE's 64 slots (virtual
  // sessions consume none).
  if (free_port_slots_.empty()) {
    if (done) done(Status(Rc::Enomem, "no free port block for a new tree"));
    return;
  }
  auto infra = std::make_shared<Infra>();
  infra->owner_sid = sid;
  infra->port_slot = *free_port_slots_.begin();
  free_port_slots_.erase(free_port_slots_.begin());
  const int fe_index = static_cast<int>(port_) - kFePortBase;
  infra->fabric_port = static_cast<cluster::Port>(
      cluster::kToolFabricBasePort + fe_index * kPortSlots * kPortsPerSession +
      infra->port_slot * kPortsPerSession);
  infra->report_port = static_cast<cluster::Port>(infra->fabric_port + 4);
  infra->mw_fabric_port = static_cast<cluster::Port>(infra->fabric_port + 2);
  s->cookie = "s" + std::to_string(sid) + "p" + std::to_string(self_.pid());
  infra->cookie = s->cookie;
  s->infra = infra;
  s->vsid = 0;
  infra_[sid] = infra;

  self_.machine().mark("e0_fe_call");
  s->state = SessionState::EngineStarting;
  s->cfg = std::move(cfg);
  s->done = std::move(done);

  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    s->span = tracer->begin_span(
        "session", "fe", static_cast<int>(self_.node().id()), self_.pid(),
        obs::kNoSpan,
        "cookie=" + s->cookie + (attach ? " op=attach" : " op=launch"));
    tracer->set_anchor("session:" + s->cookie, s->span);
  }

  cluster::SpawnOptions opts;
  opts.executable = "lmon_engine";
  opts.image_mb = 9.0;
  opts.args.push_back(attach ? "--op=attach" : "--op=launch");
  opts.args.push_back("--session=" + s->cookie);
  opts.args.push_back("--fe-host=" + self_.node().hostname());
  opts.args.push_back("--fe-port=" + std::to_string(port_));
  if (attach) {
    opts.args.push_back("--target-pid=" + std::to_string(target));
  } else {
    assert(job != nullptr);
    opts.args.push_back("--nnodes=" + std::to_string(job->nnodes));
    opts.args.push_back("--tpn=" + std::to_string(job->tasks_per_node));
    opts.args.push_back("--exe=" + job->executable);
    for (const auto& a : job->app_args) {
      opts.args.push_back("--app-arg=" + a);
    }
  }
  opts.args.push_back("--daemon-exe=" + s->cfg.daemon_exe);
  for (const auto& a : s->cfg.daemon_args) {
    opts.args.push_back("--daemon-arg=" + a);
  }
  opts.args.push_back("--fabric-port=" +
                      std::to_string(infra->fabric_port));
  // Unset knobs travel as "auto": the engine resolves them against the
  // platform profile once the proctable pins the scale (core::auto_tune).
  if (s->cfg.topology) {
    comm::TopologySpec topo = *s->cfg.topology;
    if (topo.arity == 0) {
      topo.arity = static_cast<std::uint32_t>(
          self_.machine().costs().rm_launch_fanout);
    }
    opts.args.push_back("--fabric-topo=" + topo.to_string());
    opts.args.push_back("--fabric-fanout=" + std::to_string(topo.arity));
  } else {
    opts.args.push_back("--fabric-topo=auto");
  }
  opts.args.push_back(
      "--launch-strategy=" +
      (s->cfg.launch_strategy
           ? std::string(comm::to_string(*s->cfg.launch_strategy))
           : std::string("auto")));
  // Precedence explicit > profile > model: a nonzero legacy byte count is
  // the explicit spelling and wins over the structured setting.
  const RndvSetting rndv =
      s->cfg.rndv_threshold_bytes != 0
          ? RndvSetting{RndvSetting::Mode::Bytes, s->cfg.rndv_threshold_bytes}
          : s->cfg.rndv;
  opts.args.push_back("--rndv=" + rndv.to_string());
  if (!s->cfg.platform_profile.empty()) {
    opts.args.push_back("--platform=" + s->cfg.platform_profile);
  }
  if (!s->cfg.calibration_file.empty()) {
    opts.args.push_back("--calibration=" + s->cfg.calibration_file);
  }
  if (s->cfg.heal) {
    opts.args.push_back("--heal=1");
    if (s->cfg.heal_grace_ms != 0) {
      opts.args.push_back("--heal-grace-ms=" +
                          std::to_string(s->cfg.heal_grace_ms));
    }
  }
  if (s->cfg.max_tree_sessions != 0) {
    opts.args.push_back("--max-tree-sessions=" +
                        std::to_string(s->cfg.max_tree_sessions));
  }
  opts.args.push_back("--report-port=" +
                      std::to_string(infra->report_port));

  auto res = self_.spawn_child(std::make_unique<EngineProgram>(),
                               std::move(opts));
  if (!res.is_ok()) {
    finish(*s, res.status);
    return;
  }
  infra->engine_pid = res.value;
}

void FrontEnd::start_virtual_attach(Session& s, Done done) {
  Session* owner = find(s.cfg.attach_to.owner_sid);
  if (owner == nullptr || owner->infra == nullptr ||
      owner->infra->owner_sid != owner->id) {
    s.state = SessionState::Failed;
    if (done) done(Status(Rc::Enosession, "attach_to names no tree"));
    return;
  }
  InfraPtr infra = owner->infra;
  if (owner->state != SessionState::Ready || infra->be_ch == nullptr) {
    s.state = SessionState::Failed;
    if (done) done(Status(Rc::Esubcom, "tree not ready for attach"));
    return;
  }
  const std::uint32_t vsid = infra->next_vsid++;
  s.infra = infra;
  s.vsid = vsid;
  s.state = SessionState::Handshaking;
  s.done = std::move(done);
  infra->vsids[vsid] = s.id;

  self_.machine().mark("mux_attach_begin");
  self_.machine().count("fe.vattach");
  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    s.span = tracer->begin_span(
        "vsession", "fe", static_cast<int>(self_.node().id()), self_.pid(),
        tracer->anchor("session:" + infra->cookie),
        "cookie=" + infra->cookie + " vsid=" + std::to_string(vsid));
  }
  payload::VirtualAttach req;
  req.vsid = vsid;
  self_.send(infra->be_ch,
             LmonpMessage::fe_daemon(MsgClass::FeBe,
                                     FeDaemonMsg::VirtualAttach, req.encode())
                 .encode());
}

void FrontEnd::on_accept(cluster::ChannelPtr ch) {
  // Every inbound LMONP connection (engine, BE master, MW master)
  // identifies itself with a Hello carrying the session cookie.
  self_.set_channel_handler(
      ch,
      [this](const cluster::ChannelPtr& c, cluster::Message m) {
        auto msg = LmonpMessage::decode(m);
        if (!msg) return;
        auto hello = payload::Hello::decode(msg->lmon_payload);
        if (!hello) return;
        // MW sessions use "<cookie>-mwN" cookies.
        std::string cookie = hello->session;
        const auto mw_pos = cookie.find("-mw");
        if (mw_pos != std::string::npos) cookie = cookie.substr(0, mw_pos);
        Session* s = find_by_cookie(cookie);
        if (s == nullptr) {
          self_.close_channel(const_cast<cluster::ChannelPtr&>(c));
          return;
        }
        switch (msg->msg_class) {
          case MsgClass::FeEngine:
            bind_engine_channel(*s, c);
            break;
          case MsgClass::FeBe:
          case MsgClass::FeMw:
            bind_daemon_channel(*s, c, msg->msg_class);
            break;
        }
      },
      nullptr);
}

void FrontEnd::bind_engine_channel(Session& s, const cluster::ChannelPtr& ch) {
  s.infra->engine_ch = ch;
  const int sid = s.id;
  self_.set_channel_handler(
      ch,
      [this, sid](const cluster::ChannelPtr&, cluster::Message m) {
        Session* sp = find(sid);
        if (sp == nullptr) return;
        auto msg = LmonpMessage::decode(m);
        if (msg) on_engine_message(*sp, *msg);
      },
      [this, sid](const cluster::ChannelPtr&) {
        Session* sp = find(sid);
        if (sp == nullptr) return;
        if (sp->infra != nullptr) sp->infra->engine_ch = nullptr;
        if (sp->teardown_done) {
          sp->state = SessionState::Torn;
          if (sp->infra != nullptr) tear_virtuals(*sp->infra);
          auto cb = std::move(sp->teardown_done);
          sp->teardown_done = nullptr;
          cb(Status::ok());
        } else if (sp->state != SessionState::Ready &&
                   sp->state != SessionState::Torn &&
                   sp->state != SessionState::Failed) {
          finish(*sp, Status(Rc::Edead, "engine exited unexpectedly"));
        }
      });
}

void FrontEnd::bind_daemon_channel(Session& s, const cluster::ChannelPtr& ch,
                                   MsgClass cls) {
  const int sid = s.id;
  if (cls == MsgClass::FeBe) {
    s.infra->be_ch = ch;
    self_.machine().mark("e7_handshake_begin");
  } else {
    s.infra->mw_ch = ch;
  }
  self_.set_channel_handler(
      ch,
      [this, sid, cls](const cluster::ChannelPtr&, cluster::Message m) {
        Session* sp = find(sid);
        if (sp == nullptr) return;
        auto msg = LmonpMessage::decode(m);
        if (msg) on_daemon_message(*sp, cls, *msg);
      },
      [this, sid, cls](const cluster::ChannelPtr&) {
        Session* sp = find(sid);
        if (sp == nullptr || sp->infra == nullptr) return;
        if (cls == MsgClass::FeBe) {
          sp->infra->be_ch = nullptr;
          tear_virtuals(*sp->infra);
        } else {
          sp->infra->mw_ch = nullptr;
        }
      });

  // Kick off the handshake: RPDTAB plus (optionally piggybacked) tool data.
  const SpawnConfig& cfg = cls == MsgClass::FeBe ? s.cfg : s.mw_cfg;
  payload::HandshakeInit init;
  init.rpdtab = s.infra->proctable.pack();
  Bytes usr;
  if (cfg.piggyback) {
    usr = cfg.fe_data_provider ? cfg.fe_data_provider() : cfg.fe_to_be_data;
  }
  self_.send(ch, LmonpMessage::fe_daemon(cls, FeDaemonMsg::HandshakeInit,
                                         init.encode(), std::move(usr))
                     .encode());
  if (s.state == SessionState::Spawning && cls == MsgClass::FeBe) {
    s.state = SessionState::Handshaking;
  }
}

void FrontEnd::on_engine_message(Session& s, const LmonpMessage& msg) {
  switch (static_cast<FeEngineMsg>(msg.type)) {
    case FeEngineMsg::Hello:
      break;  // channel already bound
    case FeEngineMsg::ProctableData: {
      auto table = Rpdtab::unpack(msg.lmon_payload);
      if (table) {
        s.infra->proctable = std::move(*table);
        s.infra->have_proctable = true;
        s.state = SessionState::Spawning;
        self_.machine().mark("fe_proctable_received");
      }
      break;
    }
    case FeEngineMsg::DaemonsSpawned: {
      auto spawned = payload::DaemonsSpawned::decode(msg.lmon_payload);
      if (!spawned) break;
      if (!spawned->ok) {
        finish(s, Status(Rc::Esys, "daemon spawn failed: " + spawned->error));
        break;
      }
      auto table = Rpdtab::unpack(spawned->daemon_table);
      if (table) s.infra->daemon_table = std::move(*table);
      if (!spawned->tuned.empty()) {
        if (auto tuned = TunedConfig::decode(spawned->tuned)) {
          s.infra->tuned = std::move(*tuned);
          s.infra->have_tuned = true;
        }
      }
      s.infra->daemons_spawned = true;
      break;
    }
    case FeEngineMsg::MwSpawned: {
      auto spawned = payload::DaemonsSpawned::decode(msg.lmon_payload);
      if (!spawned) break;
      if (!spawned->ok) {
        finish_mw(s, Status(Rc::Esys, "MW spawn failed: " + spawned->error));
        break;
      }
      auto table = Rpdtab::unpack(spawned->daemon_table);
      if (table) s.infra->mw_table = std::move(*table);
      break;
    }
    case FeEngineMsg::EngineError: {
      auto err = payload::EngineError::decode(msg.lmon_payload);
      const std::string detail =
          err ? err->stage + ": " + err->error : "unknown engine error";
      if (s.mw_done) {
        finish_mw(s, Status(Rc::Esys, detail));
      } else {
        finish(s, Status(Rc::Esys, detail));
      }
      break;
    }
    case FeEngineMsg::StatusEvent:
      break;  // job exit notifications; tools may poll state
    default:
      break;
  }
}

void FrontEnd::on_daemon_message(Session& s, MsgClass cls,
                                 const LmonpMessage& msg) {
  switch (static_cast<FeDaemonMsg>(msg.type)) {
    case FeDaemonMsg::Ready: {
      auto ready = payload::Ready::decode(msg.lmon_payload);
      if (!ready) break;
      if (cls == MsgClass::FeBe) {
        s.ready_usr = msg.usr_payload;
        if (!ready->ok) {
          finish(s, Status(Rc::Esubcom, "daemons failed: " + ready->error));
          break;
        }
        // Non-piggybacked tool data goes out as a separate round trip now.
        if (!s.cfg.piggyback && !s.cfg.fe_to_be_data.empty()) {
          self_.send(s.infra->be_ch,
                     LmonpMessage::fe_daemon(cls, FeDaemonMsg::UsrData, {},
                                             s.cfg.fe_to_be_data)
                         .encode());
        }
        finish(s, Status::ok());
      } else {
        if (!ready->ok) {
          finish_mw(s, Status(Rc::Esubcom, "MW failed: " + ready->error));
          break;
        }
        if (!s.mw_cfg.piggyback && !s.mw_cfg.fe_to_be_data.empty()) {
          self_.send(s.infra->mw_ch,
                     LmonpMessage::fe_daemon(cls, FeDaemonMsg::UsrData, {},
                                             s.mw_cfg.fe_to_be_data)
                         .encode());
        }
        finish_mw(s, Status::ok());
      }
      break;
    }
    case FeDaemonMsg::VirtualReady: {
      if (cls == MsgClass::FeBe && s.infra != nullptr) {
        on_virtual_ready(*s.infra, msg.lmon_payload);
      }
      break;
    }
    case FeDaemonMsg::UsrData: {
      auto& handler =
          cls == MsgClass::FeBe ? s.be_usr_handler : s.mw_usr_handler;
      if (handler) handler(msg.usr_payload);
      break;
    }
    default:
      break;
  }
}

void FrontEnd::on_virtual_ready(Infra& infra, const Bytes& payload) {
  auto ready = payload::VirtualReady::decode(payload);
  if (!ready) return;
  auto it = infra.vsids.find(ready->vsid);
  if (it == infra.vsids.end()) return;
  Session* vs = find(it->second);
  if (vs == nullptr) return;
  if (ready->ok) {
    self_.machine().mark("mux_attach_ready");
    finish(*vs, Status::ok());
    return;
  }
  // Clean admission reject (or bind failure): the descriptor is reusable,
  // the tree unaffected.
  infra.vsids.erase(it);
  vs->infra = nullptr;
  vs->vsid = 0;
  finish(*vs, Status(Rc::Enomem, "virtual attach rejected: " + ready->error));
}

void FrontEnd::tear_virtuals(Infra& infra) {
  for (auto& [vsid, sid] : infra.vsids) {
    Session* vs = find(sid);
    if (vs == nullptr) continue;
    if (vs->done) {
      // Attach still in flight when the tree died.
      finish(*vs, Status(Rc::Edead, "tree torn down during attach"));
    }
    vs->state = SessionState::Torn;
  }
  infra.vsids.clear();
}

void FrontEnd::finish(Session& s, Status st) {
  if (st.is_ok()) {
    s.state = SessionState::Ready;
    self_.machine().mark("e11_return");
  } else {
    s.state = SessionState::Failed;
    sim::LogLine(sim::LogLevel::Warn, self_.sim().now(), "lmon_fe")
        << "session " << s.id << " failed: " << st.to_string();
  }
  if (obs::Tracer* tracer = self_.machine().tracer();
      tracer != nullptr && s.span != obs::kNoSpan) {
    std::string label =
        "cookie=" + (s.infra != nullptr ? s.infra->cookie : s.cookie);
    if (s.vsid != 0) label += " vsid=" + std::to_string(s.vsid);
    tracer->end_span(s.span, st.is_ok()
                                 ? label + " ok"
                                 : label + " failed: " + st.to_string());
  }
  if (owned_tracer_ != nullptr && !trace_out_path_.empty()) {
    Status wr = obs::write_chrome_trace(*owned_tracer_, trace_out_path_);
    if (!wr.is_ok()) {
      sim::LogLine(sim::LogLevel::Warn, self_.sim().now(), "lmon_fe")
          << "trace export failed: " << wr.to_string();
    }
  }
  if (s.done) {
    auto cb = std::move(s.done);
    s.done = nullptr;
    cb(st);
  }
}

void FrontEnd::finish_mw(Session& s, Status st) {
  if (s.mw_done) {
    auto cb = std::move(s.mw_done);
    s.mw_done = nullptr;
    cb(st);
  }
}

void FrontEnd::launch_mw_daemons(int sid, std::uint32_t nnodes,
                                 SpawnConfig cfg, Done done) {
  Session* s = find(sid);
  if (s == nullptr) {
    if (done) done(Status(Rc::Enosession, "unknown session"));
    return;
  }
  if (s->infra == nullptr || s->infra->engine_ch == nullptr ||
      s->vsid != 0) {
    if (done) done(Status(Rc::Einval, "no engine for session"));
    return;
  }
  if (s->mw_done) {
    if (done) done(Status(Rc::Ebusy, "MW launch already in flight"));
    return;
  }
  s->mw_cfg = std::move(cfg);
  s->mw_done = std::move(done);

  payload::LaunchMwReq req;
  req.nnodes = nnodes;
  req.daemon_exe = s->mw_cfg.daemon_exe;
  req.daemon_args = s->mw_cfg.daemon_args;
  req.fabric_port = s->infra->mw_fabric_port;
  // MW fabrics have no tuner pass (they ride the RM's co-spawn); an unset
  // topology falls back to the platform's k-ary RM fan-out directly.
  const comm::TopologySpec mw_topo = s->mw_cfg.topology.value_or(
      comm::TopologySpec{comm::TopologyKind::KAry, 0});
  req.fabric_fanout =
      mw_topo.arity != 0 ? mw_topo.arity
                         : static_cast<std::uint32_t>(
                               self_.machine().costs().rm_launch_fanout);
  req.fabric_topo = mw_topo.kind;
  self_.send(s->infra->engine_ch,
             LmonpMessage::fe_engine(FeEngineMsg::LaunchMwReq, req.encode())
                 .encode());
}

FrontEnd::SessionState FrontEnd::state(int sid) const {
  const Session* s = find(sid);
  return s == nullptr ? SessionState::Torn : s->state;
}

const Rpdtab* FrontEnd::proctable(int sid) const {
  const Session* s = find(sid);
  if (s == nullptr || s->infra == nullptr) return nullptr;
  return s->infra->have_proctable ? &s->infra->proctable : nullptr;
}

const Rpdtab* FrontEnd::daemon_table(int sid) const {
  const Session* s = find(sid);
  if (s == nullptr || s->infra == nullptr) return nullptr;
  return s->infra->daemons_spawned ? &s->infra->daemon_table : nullptr;
}

const Rpdtab* FrontEnd::mw_table(int sid) const {
  const Session* s = find(sid);
  if (s == nullptr || s->infra == nullptr) return nullptr;
  return &s->infra->mw_table;
}

const Bytes* FrontEnd::ready_usrdata(int sid) const {
  const Session* s = find(sid);
  return s != nullptr ? &s->ready_usr : nullptr;
}

const TunedConfig* FrontEnd::tuned_config(int sid) const {
  const Session* s = find(sid);
  if (s == nullptr || s->infra == nullptr) return nullptr;
  return s->infra->have_tuned ? &s->infra->tuned : nullptr;
}

Status FrontEnd::send_usrdata_be(int sid, Bytes data) {
  Session* s = find(sid);
  if (s == nullptr) return Status(Rc::Enosession, "unknown session");
  if (s->infra == nullptr || s->infra->be_ch == nullptr) {
    return Status(Rc::Esubcom, "no BE master link");
  }
  self_.send(s->infra->be_ch,
             LmonpMessage::fe_daemon(MsgClass::FeBe, FeDaemonMsg::UsrData, {},
                                     std::move(data))
                 .encode());
  return Status::ok();
}

Status FrontEnd::send_usrdata_mw(int sid, Bytes data) {
  Session* s = find(sid);
  if (s == nullptr) return Status(Rc::Enosession, "unknown session");
  if (s->infra == nullptr || s->infra->mw_ch == nullptr) {
    return Status(Rc::Esubcom, "no MW master link");
  }
  self_.send(s->infra->mw_ch,
             LmonpMessage::fe_daemon(MsgClass::FeMw, FeDaemonMsg::UsrData, {},
                                     std::move(data))
                 .encode());
  return Status::ok();
}

void FrontEnd::set_be_usrdata_handler(int sid, UsrDataHandler h) {
  Session* s = find(sid);
  if (s != nullptr) s->be_usr_handler = std::move(h);
}

void FrontEnd::set_mw_usrdata_handler(int sid, UsrDataHandler h) {
  Session* s = find(sid);
  if (s != nullptr) s->mw_usr_handler = std::move(h);
}

void FrontEnd::detach(int sid, Done done) {
  Session* s = find(sid);
  if (s == nullptr) {
    if (done) done(Status(Rc::Enosession, "unknown session"));
    return;
  }
  if (s->vsid != 0) {
    // Virtual session: close only this stream; the tree stays up for the
    // owner and its other sessions. The detach is fire-and-forget, like
    // the engine-side DetachReq.
    if (s->infra != nullptr && s->infra->be_ch != nullptr &&
        s->state == SessionState::Ready) {
      payload::VirtualDetach req;
      req.vsid = s->vsid;
      self_.send(s->infra->be_ch,
                 LmonpMessage::fe_daemon(MsgClass::FeBe,
                                         FeDaemonMsg::VirtualDetach,
                                         req.encode())
                     .encode());
      self_.machine().count("fe.vdetach");
    }
    if (s->infra != nullptr) s->infra->vsids.erase(s->vsid);
    s->state = SessionState::Torn;
    if (done) self_.post(sim::ms(0), [done] { done(Status::ok()); });
    return;
  }
  if (s->infra == nullptr || s->infra->engine_ch == nullptr) {
    s->state = SessionState::Torn;
    if (done) done(Status::ok());
    return;
  }
  s->teardown_done = std::move(done);
  self_.send(s->infra->engine_ch,
             LmonpMessage::fe_engine(FeEngineMsg::DetachReq).encode());
}

void FrontEnd::kill(int sid, Done done) {
  Session* s = find(sid);
  if (s == nullptr) {
    if (done) done(Status(Rc::Enosession, "unknown session"));
    return;
  }
  if (s->vsid != 0) {
    // Killing a virtual session cannot kill the shared job; it degrades to
    // a stream detach.
    detach(sid, std::move(done));
    return;
  }
  if (s->infra == nullptr || s->infra->engine_ch == nullptr) {
    s->state = SessionState::Torn;
    if (done) done(Status::ok());
    return;
  }
  s->teardown_done = std::move(done);
  self_.send(s->infra->engine_ch,
             LmonpMessage::fe_engine(FeEngineMsg::KillReq).encode());
}

cluster::Port FrontEnd::fabric_port_of(int sid) const {
  const Session* s = find(sid);
  return (s == nullptr || s->infra == nullptr) ? 0 : s->infra->fabric_port;
}

}  // namespace lmon::core
