// lmonp.hpp - the LMONP application-layer protocol (paper §3.5).
//
// "LMONP has a 16 Byte header and two variably sized payload sections: one
//  for LaunchMON data and one for user data. Besides a message tag and
//  payload attributes, such as length, the header also includes a three bit
//  msg class field that encodes a communication pair."
//
// Header layout (little-endian), 16 bytes:
//
//   byte  0      : msg class (low 3 bits) | protocol version (high 5 bits)
//   byte  1      : message type tag (meaning depends on class)
//   bytes 2-3    : flags (u16)
//   bytes 4-7    : LaunchMON payload length (u32)
//   bytes 8-11   : user payload length (u32)
//   bytes 12-15  : sequence number (u32)
//
// Only point-to-point pairs between component *representatives* are
// supported: (front end, engine), (front end, BE master), (front end, MW
// master). The remaining five class encodings are reserved, exactly as the
// paper leaves them for future (middleware, middleware) links.
#pragma once

#include <cstdint>
#include <optional>

#include "cluster/message.hpp"
#include "common/bytes.hpp"

namespace lmon::core {

inline constexpr std::uint8_t kLmonpVersion = 1;
inline constexpr std::size_t kHeaderSize = 16;

/// The three currently assigned communication pairs (3-bit field).
enum class MsgClass : std::uint8_t {
  FeEngine = 0,
  FeBe = 1,
  FeMw = 2,
  // 3..7 reserved (e.g. future MW-MW bridging across allocations)
};

/// Message tags for the (front end, engine) pair.
enum class FeEngineMsg : std::uint8_t {
  Hello = 1,        ///< engine -> FE: back-connect identification
  ProctableData,    ///< engine -> FE: RPDTAB fetched from the RM
  DaemonsSpawned,   ///< engine -> FE: co-spawn finished (daemon table)
  EngineError,      ///< engine -> FE: operation failed
  DetachReq,        ///< FE -> engine: detach from job, leave daemons
  KillReq,          ///< FE -> engine: kill daemons (and job if launched)
  ShutdownReq,      ///< FE -> engine: engine should exit
  StatusEvent,      ///< engine -> FE: job status change (exit, abort)
  LaunchMwReq,      ///< FE -> engine: launch middleware daemons
  MwSpawned,        ///< engine -> FE: middleware co-spawn finished
};

/// Message tags for the (front end, BE master) and (front end, MW master)
/// pairs; the two classes share tag semantics.
enum class FeDaemonMsg : std::uint8_t {
  Hello = 1,      ///< master -> FE: identification {session}
  HandshakeInit,  ///< FE -> master: RPDTAB + piggybacked tool data
  Ready,          ///< master -> FE: all daemons initialized (+ tool data)
  UsrData,        ///< either direction: tool payload outside startup
  Detach,         ///< FE -> master: tear down daemon-side session
  // Persistent multiplexed service: virtual sessions attach to (and detach
  // from) an already-bootstrapped tree instead of launching their own.
  VirtualAttach,  ///< FE -> master: open virtual session {vsid}
  VirtualReady,   ///< master -> FE: attach outcome {vsid, ok, error}
  VirtualDetach,  ///< FE -> master: close virtual session {vsid}
};

/// A decoded LMONP message. Encoding produces the 16-byte header followed by
/// the LaunchMON payload then the user payload; sizes on the wire are what
/// the simulated network charges for.
struct LmonpMessage {
  MsgClass msg_class = MsgClass::FeEngine;
  std::uint8_t type = 0;
  std::uint16_t flags = 0;
  std::uint32_t seq = 0;
  Bytes lmon_payload;
  Bytes usr_payload;

  [[nodiscard]] cluster::Message encode() const;

  /// Returns nullopt on malformed frames (bad version, truncated payloads,
  /// reserved class values).
  static std::optional<LmonpMessage> decode(const cluster::Message& m);

  /// Total encoded size without re-encoding.
  [[nodiscard]] std::size_t wire_size() const noexcept {
    return kHeaderSize + lmon_payload.size() + usr_payload.size();
  }

  // Convenience constructors.
  static LmonpMessage make(MsgClass cls, std::uint8_t type,
                           Bytes lmon_payload = {}, Bytes usr_payload = {});
  static LmonpMessage fe_engine(FeEngineMsg type, Bytes lmon_payload = {},
                                Bytes usr_payload = {});
  static LmonpMessage fe_daemon(MsgClass cls, FeDaemonMsg type,
                                Bytes lmon_payload = {},
                                Bytes usr_payload = {});
};

}  // namespace lmon::core
