// perf_model.hpp - the analytic launchAndSpawn model of paper §4.
//
// The paper decomposes the critical path e0..e11 into regions:
//   Region A (RM dominant): T(job), T(daemon)+T(setup), T(collective),
//                           plus LaunchMON's tracing cost
//   Region B: RPDTAB fetching (linear in task count)
//   Region C: FE<->master handshaking (linear in daemon count)
//   Other:    scale-independent LaunchMON costs
//
// PerfModel computes each term from the CostModel constants the same way
// the simulated implementation spends them, so bench_fig3 can print modeled
// vs measured stacks and the model-validation tests can assert agreement.
#pragma once

#include <cstdint>

#include "cluster/cost_model.hpp"

namespace lmon::core {

struct LaunchSpawnPrediction {
  // All values in (simulated) seconds.
  double t_job = 0;         ///< Region A: spawning the job tasks
  double t_daemon = 0;      ///< Region A: spawning the tool daemons
  double t_setup = 0;       ///< Region A: inter-daemon fabric setup
  double t_collective = 0;  ///< Region A: handshake bcast/gather collectives
  double tracing = 0;       ///< Region A: LaunchMON tracing cost
  double rpdtab_fetch = 0;  ///< Region B
  double handshake = 0;     ///< Region C
  double other = 0;         ///< scale-independent LaunchMON costs

  [[nodiscard]] double total() const {
    return t_job + t_daemon + t_setup + t_collective + tracing +
           rpdtab_fetch + handshake + other;
  }
  /// LaunchMON's own share (everything but the RM terms), as the paper
  /// reports "about 5.2% of that total time" at 128 nodes.
  [[nodiscard]] double launchmon_share() const {
    return (tracing + rpdtab_fetch + handshake + other) / total();
  }
};

class PerfModel {
 public:
  /// `fanout` is the RM launch/fabric tree degree in effect.
  PerfModel(const cluster::CostModel& costs, std::uint32_t fanout);

  /// Predicts launchAndSpawn for `ndaemons` nodes with `tasks_per_daemon`
  /// MPI tasks per node (the paper sweeps 16..128 daemons at 8 tasks each).
  [[nodiscard]] LaunchSpawnPrediction predict(int ndaemons,
                                              int tasks_per_daemon) const;

  /// Tree depth of the RM launch / fabric tree over n nodes.
  [[nodiscard]] int depth(int n) const;

  /// Approximate encoded RPDTAB entry size (bytes) for payload terms.
  static constexpr double kRpdtabEntryBytes = 44.0;

 private:
  [[nodiscard]] double seconds(sim::Time t) const {
    return sim::to_seconds(t);
  }
  [[nodiscard]] double spawn_cost(double image_mb) const;
  [[nodiscard]] double connect_cost() const;
  [[nodiscard]] double transfer_cost(double bytes) const;

  cluster::CostModel costs_;
  std::uint32_t fanout_;
};

}  // namespace lmon::core
