// perf_model.hpp - the analytic launchAndSpawn model of paper §4, extended
// to a per-strategy family (§2 ablation, Figures 3 and 4).
//
// The paper decomposes the critical path e0..e11 into regions:
//   Region A (RM dominant): T(job), T(daemon)+T(setup), T(collective),
//                           plus LaunchMON's tracing cost
//   Region B: RPDTAB fetching (linear in task count)
//   Region C: FE<->master handshaking (linear in daemon count)
//   Other:    scale-independent LaunchMON costs
//
// Only T(daemon) depends on *how* the daemons reach the nodes, so the model
// family shares every calibration constant and swaps that one term:
//
//   rm-bulk     the RM's native tree launch: per-node bookkeeping plus a
//               depth-bounded forwarding chain - the ~flat Figure 3 curve;
//   serial-rsh  one blocking rsh session per node, fully serialized at the
//               front end: linear in n with a hard fork-limit failure wall;
//   tree-rsh    recursive launch agents; each agent still serializes its
//               k child sessions, so the critical path is depth-dominated
//               (O(k log_k n) sessions instead of n).
//
// PerfModel computes each term from the CostModel constants the same way
// the simulated implementation spends them, so the benches can print
// modeled vs measured stacks, the model-validation tests can assert
// agreement per strategy, and crossover() can solve for the node counts
// where the strategies trade places (the paper's Figure 4 story).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>

#include "cluster/cost_model.hpp"
#include "comm/launch_strategy.hpp"
#include "comm/topology.hpp"

namespace lmon::core {

/// How the ICCL fans a broadcast payload down the fabric tree (iccl.cpp):
/// eager sends each child one full-payload frame (serialized per-child
/// copies, store-and-forward per level); rendezvous runs an RTS/CTS
/// handshake and then pipelines fixed-size zero-copy chunks, so a relay
/// forwards chunk j while its parent still streams j+1.
enum class CollectiveProtocol : std::uint8_t {
  Eager = 0,
  Rendezvous = 1,
};

[[nodiscard]] std::string_view to_string(CollectiveProtocol proto);

struct LaunchSpawnPrediction {
  // All values in (simulated) seconds.
  double t_job = 0;         ///< Region A: spawning the job tasks
  double t_daemon = 0;      ///< Region A: spawning the tool daemons
  double t_setup = 0;       ///< Region A: inter-daemon fabric setup
  double t_collective = 0;  ///< Region A: handshake bcast/gather collectives
  double tracing = 0;       ///< Region A: LaunchMON tracing cost
  double rpdtab_fetch = 0;  ///< Region B
  double handshake = 0;     ///< Region C
  double other = 0;         ///< scale-independent LaunchMON costs

  [[nodiscard]] double total() const {
    return t_job + t_daemon + t_setup + t_collective + tracing +
           rpdtab_fetch + handshake + other;
  }
  /// LaunchMON's own share (everything but the RM terms), as the paper
  /// reports "about 5.2% of that total time" at 128 nodes.
  [[nodiscard]] double launchmon_share() const {
    return (tracing + rpdtab_fetch + handshake + other) / total();
  }
};

class PerfModel {
 public:
  /// `fanout` is the RM launch/fabric tree degree in effect.
  PerfModel(const cluster::CostModel& costs, std::uint32_t fanout);

  /// Predicts launchAndSpawn for `ndaemons` nodes with `tasks_per_daemon`
  /// MPI tasks per node (the paper sweeps 16..128 daemons at 8 tasks each).
  /// Legacy single-strategy entry: rm-bulk over a k-ary fabric of this
  /// model's fanout.
  [[nodiscard]] LaunchSpawnPrediction predict(int ndaemons,
                                              int tasks_per_daemon) const;

  /// Per-strategy entry point: predicts the full launchAndSpawn for
  /// `strategy` bootstrapping `n_nodes` daemons over a `fabric`-shaped
  /// tree, with `procs_per_node` MPI tasks per node. A fabric arity of 0
  /// resolves to the cost model's RM fan-out, mirroring the FE API.
  /// `rndv_threshold_bytes` is the session's wire threshold (0 = the cost
  /// model's platform default): when the handshake RPDTAB payload reaches
  /// it, T(collective) is predicted with the rendezvous broadcast replay
  /// instead of the eager closed form - so auto-tuned thresholds and the
  /// full-scale residual gates see the protocol the fabric will actually
  /// run.
  [[nodiscard]] LaunchSpawnPrediction predict(
      comm::LaunchStrategyKind strategy, const comm::TopologySpec& fabric,
      int n_nodes, int procs_per_node,
      std::uint32_t rndv_threshold_bytes = 0) const;

  /// True when the strategy cannot complete at this scale at all: the
  /// serial front end holds one rsh helper child per node, so past the
  /// per-user fork limit the launch "consistently fails" (paper §5.2);
  /// and on machines without remote-access services (BlueGene-class I/O
  /// node kernels run no rshd) both rsh flavors fail at any scale.
  [[nodiscard]] bool predicts_failure(comm::LaunchStrategyKind strategy,
                                      int n_nodes) const;

  /// Smallest node count in [2, max_nodes] from which `challenger` stays
  /// strictly cheaper than `incumbent` (total launchAndSpawn time), or
  /// nullopt if it never overtakes in range. This solves the paper's
  /// Figure 4 questions: where tree-rsh overtakes serial-rsh, and where
  /// rm-bulk wins outright. The scan evaluates the model per node count
  /// (each O(n)), so keep max_nodes in the thousands.
  [[nodiscard]] std::optional<int> crossover(
      comm::LaunchStrategyKind challenger,
      comm::LaunchStrategyKind incumbent, const comm::TopologySpec& fabric,
      int procs_per_node, int max_nodes = 4096) const;

  /// Tree depth of the RM launch / fabric tree over n nodes (contiguous
  /// chunk splitting with this model's degree: level l reaches ~k^l nodes).
  [[nodiscard]] int depth(int n) const;

  /// Fabric-tree depth as a closed form - comm::Topology::depth() walks
  /// every rank, too slow for crossover scans. Must mirror the heap
  /// k-ary / binomial / flat shapes in comm/topology.cpp (a unit test
  /// pins the two together).
  [[nodiscard]] static int fabric_depth(const comm::TopologySpec& spec,
                                        int n);

  /// Serialized message quanta on the fabric's collective critical path.
  /// A parent's fan-out sends serialize (one iccl_msg_handle each, in
  /// rank order), but levels pipeline: a child starts forwarding the
  /// moment its own copy arrives, while its parent is still serving later
  /// siblings. The critical path is therefore the max over ranks of the
  /// summed sibling positions along the root path - not depth x degree.
  [[nodiscard]] static double fabric_pipeline_quanta(
      const comm::TopologySpec& spec, int n);

  /// Approximate encoded RPDTAB entry size (bytes) for payload terms.
  static constexpr double kRpdtabEntryBytes = 44.0;

  // --- collective protocol family (eager vs rendezvous) ---------------------
  /// Fleet-wide broadcast latency (seconds, root issue to last delivery)
  /// for `payload_bytes` over an n-rank fabric of shape `spec` under
  /// `proto`. Exact per-rank replay of the Iccl event schedule (frame
  /// overheads, serialized fan-out/chunk cursors, per-channel FIFO), so
  /// bench_ablation_iccl can gate model-vs-measured residuals tightly.
  /// O(n * chunks) per call - keep n in the thousands.
  [[nodiscard]] double collective_bcast(CollectiveProtocol proto,
                                        const comm::TopologySpec& spec, int n,
                                        std::size_t payload_bytes) const;

  /// Smallest payload (bytes) in [1 KiB, max_payload] from which rendezvous
  /// never loses to eager again on this fabric, or nullopt when eager still
  /// wins at max_payload. Probes both endpoints of every chunk segment
  /// (both latency curves are affine within a segment, and the gap only
  /// dips where the chunk count steps up) and interpolates the zero
  /// crossing after the last eager win in closed form - ~2 evaluations per
  /// chunk of max_payload. This is the analytic answer to "where should a
  /// session set SpawnConfig::rndv_threshold_bytes".
  [[nodiscard]] std::optional<std::size_t> collective_crossover(
      const comm::TopologySpec& spec, int n,
      std::size_t max_payload = 16u << 20) const;

  /// Fleet-wide gather latency (seconds) for `payload_bytes` contributed
  /// *per rank* over an n-rank fabric of shape `spec` under `proto`,
  /// measured the way the fig5/fig6 gather sweeps measure it: t=0 is the
  /// root issuing an empty release broadcast (the go signal that sequences
  /// bench rounds), each rank contributes the moment its release lands, and
  /// the clock stops when the root delivers the sorted contributions.
  /// Exact per-rank replay of the Iccl upstream schedule: eager replays the
  /// whole-subtree GatherUp frames with their receive-side copy-out;
  /// rendezvous replays the GatherRts announce wave, the per-child CTS
  /// clearances and every node's serialized chunk cursor with cut-through
  /// relay and per-channel FIFO. O(n * chunks * depth) per call.
  [[nodiscard]] double collective_gather(CollectiveProtocol proto,
                                         const comm::TopologySpec& spec,
                                         int n,
                                         std::size_t payload_bytes) const;

  /// Gather twin of collective_crossover(): smallest *per-rank* payload in
  /// [1 KiB, max_payload] from which the rendezvous gather never loses to
  /// eager again on this fabric, nullopt when eager still wins at max.
  /// Same chunk-segment probe geometry and closed-form interpolation.
  [[nodiscard]] std::optional<std::size_t> collective_gather_crossover(
      const comm::TopologySpec& spec, int n,
      std::size_t max_payload = 16u << 20) const;

  /// Fleet-wide scatter latency (seconds) for `payload_bytes` destined to
  /// *each rank* over an n-rank fabric of shape `spec`. t=0 is the root's
  /// Iccl::scatter call; the clock stops when the last rank's own part is
  /// delivered to its scatter handler. Eager is an exact replay of
  /// handle_scatter: every node partitions its inbound frame by child
  /// subtree, pays the serialized per-child quantum (handle + copy of the
  /// part), ships one whole-subtree frame per child, and the receiver pays
  /// handle + copy-out of the full frame before its own handler runs.
  /// Rendezvous is a *hypothetical* protocol the live fabric does not
  /// implement (scatter payloads ride eager frames at every threshold):
  /// RTS/CTS per link, the per-child subtree stream laid out subtree-major
  /// (own entry first, then each child segment), chunks round-robined
  /// through the parent's serialized cursor with per-link FIFO, and
  /// cut-through relay the moment the inbound chunk covering an outbound
  /// range retires. bench_ablation_iccl sweeps this model to report
  /// whether a rendezvous scatter would ever pay off.
  [[nodiscard]] double collective_scatter(CollectiveProtocol proto,
                                          const comm::TopologySpec& spec,
                                          int n,
                                          std::size_t payload_bytes) const;

  /// Scatter twin of collective_crossover(): smallest *per-rank* part in
  /// [1 KiB, max_payload] from which the hypothetical rendezvous scatter
  /// never loses to eager again, nullopt when eager still wins at max.
  [[nodiscard]] std::optional<std::size_t> collective_scatter_crossover(
      const comm::TopologySpec& spec, int n,
      std::size_t max_payload = 16u << 20) const;

 private:
  [[nodiscard]] double seconds(sim::Time t) const {
    return sim::to_seconds(t);
  }
  [[nodiscard]] double spawn_cost(double image_mb) const;
  [[nodiscard]] double connect_cost() const;
  [[nodiscard]] double transfer_cost(double bytes) const;
  [[nodiscard]] int chunk_depth(int n, std::uint32_t fanout) const;

  // --- per-strategy T(daemon) ----------------------------------------------
  /// One level of the RM's tree-forwarded launch (shared by T(job) and
  /// the rm-bulk T(daemon), which ride the same machinery).
  [[nodiscard]] double rm_launch_hop(double n) const;
  /// Launcher-side per-node bookkeeping incl. the super-linear term.
  [[nodiscard]] double rm_bookkeeping(double n) const;
  [[nodiscard]] double rm_bulk_daemons(int n, std::uint32_t launch_fanout)
      const;
  [[nodiscard]] double serial_rsh_daemons(int n) const;
  [[nodiscard]] double tree_rsh_daemons(int n, std::uint32_t launch_fanout)
      const;
  /// Serialized front-of-session cost (helper fork + session setup); the
  /// part of one rsh invocation that cannot overlap within one process.
  [[nodiscard]] double rsh_serialized_cost() const;
  /// Post-serialization tail: connect to rshd, request, remote spawn.
  [[nodiscard]] double rsh_tail_cost(double req_bytes,
                                     double image_mb) const;

  cluster::CostModel costs_;
  std::uint32_t fanout_;
};

}  // namespace lmon::core
