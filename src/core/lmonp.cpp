#include "core/lmonp.hpp"

namespace lmon::core {

cluster::Message LmonpMessage::encode() const {
  ByteWriter w(kHeaderSize + lmon_payload.size() + usr_payload.size());
  const std::uint8_t class_bits =
      static_cast<std::uint8_t>(msg_class) & 0x07u;
  const std::uint8_t version_bits =
      static_cast<std::uint8_t>(kLmonpVersion << 3);
  w.u8(static_cast<std::uint8_t>(class_bits | version_bits));
  w.u8(type);
  w.u16(flags);
  w.u32(static_cast<std::uint32_t>(lmon_payload.size()));
  w.u32(static_cast<std::uint32_t>(usr_payload.size()));
  w.u32(seq);
  w.raw(lmon_payload);
  w.raw(usr_payload);
  return cluster::Message(std::move(w).take());
}

std::optional<LmonpMessage> LmonpMessage::decode(const cluster::Message& m) {
  ByteReader r(m.bytes);
  auto b0 = r.u8();
  auto type = r.u8();
  auto flags = r.u16();
  auto lmon_len = r.u32();
  auto usr_len = r.u32();
  auto seq = r.u32();
  if (!b0 || !type || !flags || !lmon_len || !usr_len || !seq) {
    return std::nullopt;
  }
  const std::uint8_t version = static_cast<std::uint8_t>(*b0 >> 3);
  const std::uint8_t cls = static_cast<std::uint8_t>(*b0 & 0x07u);
  if (version != kLmonpVersion) return std::nullopt;
  if (cls > static_cast<std::uint8_t>(MsgClass::FeMw)) {
    return std::nullopt;  // reserved pair encodings
  }
  if (r.remaining() != *lmon_len + *usr_len) return std::nullopt;

  LmonpMessage out;
  out.msg_class = static_cast<MsgClass>(cls);
  out.type = *type;
  out.flags = *flags;
  out.seq = *seq;
  auto lmon = r.raw(*lmon_len);
  auto usr = r.raw(*usr_len);
  if (!lmon || !usr) return std::nullopt;
  out.lmon_payload = std::move(*lmon);
  out.usr_payload = std::move(*usr);
  return out;
}

LmonpMessage LmonpMessage::make(MsgClass cls, std::uint8_t type,
                                Bytes lmon_payload, Bytes usr_payload) {
  LmonpMessage m;
  m.msg_class = cls;
  m.type = type;
  m.lmon_payload = std::move(lmon_payload);
  m.usr_payload = std::move(usr_payload);
  return m;
}

LmonpMessage LmonpMessage::fe_engine(FeEngineMsg type, Bytes lmon_payload,
                                     Bytes usr_payload) {
  return make(MsgClass::FeEngine, static_cast<std::uint8_t>(type),
              std::move(lmon_payload), std::move(usr_payload));
}

LmonpMessage LmonpMessage::fe_daemon(MsgClass cls, FeDaemonMsg type,
                                     Bytes lmon_payload, Bytes usr_payload) {
  return make(cls, static_cast<std::uint8_t>(type), std::move(lmon_payload),
              std::move(usr_payload));
}

}  // namespace lmon::core
