// iccl.hpp - the Internal Collective Communication Layer (paper §3.3).
//
// "We leverage native communication subsystems that the RM sets up if
//  possible; our layered approach encapsulates interactions with native
//  communication subsystems in the Internal Collective Communication Layer
//  (ICCL). ICCL maps native interfaces to our back-end collective calls;
//  hence it is the only layer with significant platform dependencies."
//
// Here the "RM-provided fabric" is the bootstrap information slurmd hands
// every tool daemon on its argv (rank, size, fanout, per-session port, full
// host list). ICCL wires a k-ary tree over it and offers exactly the
// minimal collectives the paper commits to: barrier, broadcast, gather,
// scatter - deliberately *not* a general TBON (tools needing more should
// stack MRNet on top, which src/tbon does).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cluster/process.hpp"
#include "comm/bootstrap.hpp"
#include "comm/topology.hpp"
#include "common/bytes.hpp"
#include "common/status.hpp"
#include "core/stream_key.hpp"
#include "obs/trace.hpp"

namespace lmon::core {

class Iccl {
 public:
  /// The fabric bootstrap parameters are exactly what every launch strategy
  /// passes on the daemon argv; comm/bootstrap.hpp owns the wire form.
  using Params = comm::BootstrapParams;

  /// Fabric frame kinds (public so protocol tests can assert on the wire
  /// sequence through set_frame_tap()).
  enum class Kind : std::uint8_t {
    Register = 1,  ///< child -> parent: {rank}
    SetupUp,       ///< child -> parent: subtree fully wired
    Bcast,         ///< parent -> child: {tag, data} (eager: full payload)
    GatherUp,      ///< child -> parent: {tag, [(rank, data)...]}
    Scatter,       ///< parent -> child: {tag, [(rank, data)...]}
    RndvRts,       ///< parent -> child: {tag, nchunks, total bytes}
    RndvCts,       ///< child -> parent: {tag} (clear to stream)
    RndvChunk,     ///< parent -> child: {tag, seq, chunk bytes}
    // Upstream (gather) rendezvous: the mirror of RndvRts/Cts/Chunk, but
    // per *origin rank* instead of per chunk sequence - a parent cut-through
    // relays a child's chunks without assembling them, so per-origin order
    // is preserved by channel FIFO + in-order relay, and no seq is needed.
    GatherRts,    ///< child -> parent: {tag, [(origin, total bytes)...]}
    GatherCts,    ///< parent -> child: {tag} (clear to stream upward)
    GatherChunk,  ///< child -> parent: {tag, origin, chunk bytes}
    GatherDrop,   ///< child -> parent: {tag, [(origin, {})...]} origin died
    // Self-healing recovery protocol (heal mode only; see docs/ARCHITECTURE
    // "Self-healing trees"). An orphan that lost its parent climbs its
    // ancestor chain, Registers with the first survivor and follows up with
    // Reattach (climb path, delivered-broadcast ring, open receive offsets)
    // plus re-announces of its in-flight gather rounds; the adopter replays
    // missed broadcast bytes and answers gather re-announces with per-origin
    // resume offsets.
    Reattach,      ///< orphan -> adopter: {via-dead, delivered tags, recvs}
    GatherResume,  ///< adopter -> orphan: {tag, [(origin, u32 offset)...]}
    GatherDone,    ///< root -> down: {tag} delivered; drop replay state
    Leave,         ///< child -> parent: graceful departure (elastic shrink)
  };

  /// Parses the RM-provided "--lmon-*" daemon argv. `self_host` enables the
  /// rank-from-host fallback used by broadcast-style launchers.
  static std::optional<Params> params_from_args(
      const std::vector<std::string>& args, std::string_view self_host = {});

  /// Handlers receive the *within-session* tag; the session id is implied
  /// by which handler set fired (the legacy set_*_handler trio observes the
  /// infrastructure session 0, bind_session() observes one virtual session).
  using BcastHandler = std::function<void(std::uint32_t tag, const Bytes&)>;
  /// Root-side gather completion: contributions sorted by rank.
  using GatherHandler = std::function<void(
      std::uint32_t tag, std::vector<std::pair<std::uint32_t, Bytes>>)>;
  using ScatterHandler = std::function<void(std::uint32_t tag, const Bytes&)>;

  /// Handler set for one virtual session multiplexed over this fabric.
  struct SessionHandlers {
    BcastHandler on_bcast;
    GatherHandler on_gather;
    ScatterHandler on_scatter;
  };

  Iccl(cluster::Process& self, Params params);

  Iccl(const Iccl&) = delete;
  Iccl& operator=(const Iccl&) = delete;

  [[nodiscard]] std::uint32_t rank() const noexcept { return params_.rank; }
  [[nodiscard]] std::uint32_t size() const noexcept { return params_.size; }
  [[nodiscard]] bool is_root() const noexcept { return params_.rank == 0; }
  [[nodiscard]] const Params& params() const noexcept { return params_; }

  /// Wires this node into the fabric tree: listens on the session port,
  /// connects to the parent daemon (with refused-connection retries - the
  /// parent may still be starting). `subtree_ready` fires once this node's
  /// *entire subtree* is connected; at the root that means the whole fabric
  /// is up (the paper's e9).
  void start(std::function<void(Status)> subtree_ready);

  // --- collectives -------------------------------------------------------
  // Every round is keyed by a (session, tag) StreamKey; a bare u32 tag
  // converts implicitly to session 0 (the infrastructure session), so the
  // entire pre-multiplex call surface is unchanged. Rounds in different
  // sessions share the fabric but never share state: maps, rendezvous
  // chunk streams and heal replay rings are all StreamKey-keyed.

  /// Root only: delivers (key, data) to every daemon's bcast handler,
  /// including the root's own.
  void broadcast(StreamKey key, Bytes data);

  /// Gather contribution; every rank must call once per round. The root's
  /// gather handler fires when all `size` contributions arrived.
  void contribute(StreamKey key, Bytes data);

  /// Root only: parts[i] goes to rank i's scatter handler.
  void scatter(StreamKey key, std::vector<Bytes> parts);

  /// Elastic shrink (heal mode): announces a graceful departure to the
  /// parent (so it is accounted as a leave, not a death) and exits shortly
  /// after. Children and in-flight collective state heal through the normal
  /// reparenting path; this node's own gather contributions for open rounds
  /// are the only payloads that depart with it.
  void leave();

  void set_bcast_handler(BcastHandler h) { on_bcast_ = std::move(h); }
  void set_gather_handler(GatherHandler h) { on_gather_ = std::move(h); }
  void set_scatter_handler(ScatterHandler h) { on_scatter_ = std::move(h); }

  /// Routes rounds keyed to a nonzero `session` to this handler set
  /// (handlers see the within-session tag). Rebinding replaces; rounds for
  /// an unbound session are dropped at delivery, never cross-delivered.
  void bind_session(std::uint32_t session, SessionHandlers handlers) {
    session_handlers_[session] = std::move(handlers);
  }
  void unbind_session(std::uint32_t session) {
    session_handlers_.erase(session);
  }

  /// Test-only tap: observes every decoded inbound fabric frame (before the
  /// handling cost is charged). `bytes` is the first entry's payload size.
  /// The legacy tap sees the within-session tag only; the keyed tap sees
  /// the full StreamKey (cross-session isolation tests use it).
  using FrameTap = std::function<void(Kind kind, std::uint32_t tag,
                                      std::uint32_t src, std::size_t bytes)>;
  void set_frame_tap(FrameTap tap) { frame_tap_ = std::move(tap); }
  using KeyedFrameTap = std::function<void(Kind kind, StreamKey key,
                                           std::uint32_t src,
                                           std::size_t bytes)>;
  void set_keyed_frame_tap(KeyedFrameTap tap) {
    keyed_frame_tap_ = std::move(tap);
  }

  /// Effective eager->rendezvous switch threshold (payload bytes): the
  /// session option when set, else the platform default.
  [[nodiscard]] std::uint32_t rndv_threshold() const noexcept {
    return rndv_threshold_;
  }

  /// The fabric tree this daemon is wired into.
  [[nodiscard]] const comm::Topology& topology() const noexcept {
    return topo_;
  }

  /// Self-healing enabled for this session (--lmon-heal=1).
  [[nodiscard]] bool heal_enabled() const noexcept { return heal_; }
  /// Rank this node is currently linked up to (the topology parent until a
  /// reparent moves it; meaningless at the root). Tests assert reparented
  /// topology invariants through this.
  [[nodiscard]] std::uint32_t parent_rank() const noexcept {
    return parent_rank_;
  }
  /// Ranks with live child links (topology children plus adopted orphans).
  [[nodiscard]] std::vector<std::uint32_t> live_children() const {
    std::vector<std::uint32_t> out;
    out.reserve(children_.size());
    for (const auto& [rank, ch] : children_) out.push_back(rank);
    return out;
  }
  /// True when no recovery is in progress here (no open adoption slots, not
  /// mid-climb).
  [[nodiscard]] bool heal_idle() const noexcept {
    return heal_slots_.empty() && !reparenting_;
  }

  // Legacy k-ary helpers; thin forwards to comm::Topology (kept because
  // tools and tests use them as free-standing tree arithmetic).
  static std::vector<std::uint32_t> children_of(std::uint32_t rank,
                                                std::uint32_t size,
                                                std::uint32_t fanout);
  static std::optional<std::uint32_t> parent_of(std::uint32_t rank,
                                                std::uint32_t fanout);
  /// All ranks in the subtree rooted at `rank` (includes `rank`).
  static std::vector<std::uint32_t> subtree_of(std::uint32_t rank,
                                               std::uint32_t size,
                                               std::uint32_t fanout);

 private:
  /// One gather round (keyed by tag). Small rounds run eager: each node
  /// waits for every child's whole-subtree GatherUp frame, appends its own
  /// contribution and forwards one combined frame. Rounds whose *subtree
  /// total* reaches the rendezvous threshold announce per-origin sizes
  /// upward (GatherRts), wait for clearance (GatherCts - the upstream flow
  /// control: a slow parent simply withholds the CTS and its children stay
  /// quiet instead of burying it in buffered payload), then stream 64 KiB
  /// GatherChunk frames. Interior nodes cut-through relay each chunk as it
  /// arrives - they never assemble a child's contribution, so per-level
  /// memory stays O(chunk), not O(payload).
  struct GatherState {
    bool own_done = false;
    /// Children whose announce (eager GatherUp or GatherRts) is still
    /// outstanding. A set (not a count) so a dying child can be forgiven.
    std::set<std::uint32_t> children_pending;
    /// Entries held whole on this node: own contribution + eager children.
    std::vector<std::pair<std::uint32_t, Bytes>> acc;
    // --- rendezvous upstream state ---------------------------------------
    bool announced = false;  ///< GatherRts sent up (non-root only)
    bool streaming = false;  ///< own GatherCts processed; chunks may flow
    std::set<std::uint32_t> rndv_children;  ///< children that sent RTS
    /// Announced origin -> total bytes (origins owned by rndv children).
    std::map<std::uint32_t, std::uint32_t> origin_bytes;
    /// Rendezvous child -> the origins its RTS announced (for drops).
    std::map<std::uint32_t, std::set<std::uint32_t>> child_origins;
    std::map<std::uint32_t, Bytes> assembling;  ///< root only: per origin
    /// Relay only: bytes of each announced origin not yet relayed.
    std::map<std::uint32_t, std::uint32_t> origin_remaining;
    std::set<std::uint32_t> dropped;  ///< origins lost mid-stream
    /// Chunk send queue through the serialized cursor; entries release
    /// their buffer once scheduled (the posted send keeps its own ref).
    std::vector<std::pair<std::uint32_t, std::shared_ptr<const Bytes>>> outq;
    std::size_t next_out = 0;
    sim::Time cursor = 0;  ///< serialized send occupancy (absolute time)
    obs::SpanId span = obs::kNoSpan;
    // --- self-heal replay state (heal mode only) -------------------------
    /// Per-origin copies of everything that entered this round here (own
    /// contribution, eager child entries, relayed chunk bytes). Heal trades
    /// O(payload) memory per retained round for the ability to re-announce
    /// and resume after a reparent; bounded by the retired-round ring.
    std::map<std::uint32_t, Bytes> retained;
    bool retired = false;     ///< forwarded/delivered; kept for heal replay
    bool eager_sent = false;  ///< retired via an eager GatherUp forward
    /// Orphaned mid-stream: chunks must not race ahead of the resume
    /// offsets the new parent will dictate; gather_flush holds until the
    /// GatherResume arrives.
    bool heal_hold = false;
    /// Dead children whose subtree stake is suspended pending orphan
    /// reattach (or the grace expiry). Non-empty blocks flush/delivery.
    std::set<std::uint32_t> healing;
    // --- multiplex fairness (root only) ----------------------------------
    /// Root clearance granted: this round's CTS chain may flow. Always true
    /// immediately when only one session is active; under contention at
    /// most one session holds cleared rounds at a time.
    bool cleared = false;
    /// Child ranks whose GatherRts arrived while another session held the
    /// clearance; flushed with a CTS when this round is cleared.
    std::vector<std::uint32_t> grant_waiters;
  };

  /// Sender side of one rendezvous broadcast round: RTS is out, chunks
  /// stream round-robin across the children once every CTS arrived. Relay
  /// nodes grow `ready` chunk-by-chunk as the payload trickles down; the
  /// root has every chunk ready up front.
  struct RndvSend {
    std::uint32_t nchunks = 0;
    std::uint32_t total = 0;
    std::set<std::uint32_t> cts_pending;  ///< child ranks yet to CTS
    bool streaming = false;               ///< all CTS in, chunks may flow
    std::uint32_t next_seq = 0;           ///< next chunk to schedule
    std::vector<std::shared_ptr<const Bytes>> ready;  ///< chunks, by seq
    sim::Time cursor = 0;  ///< serialized send occupancy (absolute time)
    obs::SpanId span = obs::kNoSpan;  ///< RTS fan-out .. last chunk out
  };

  /// Receiver side: assembles chunks in sequence order (per-channel FIFO
  /// guarantees ordering) and delivers once complete.
  struct RndvRecv {
    std::uint32_t nchunks = 0;
    std::uint32_t received = 0;
    Bytes assembled;
    obs::SpanId span = obs::kNoSpan;  ///< RTS in .. payload assembled
  };

  void connect_parent(int attempts_left);
  void on_fabric_message(const cluster::ChannelPtr& ch, cluster::Message m);
  void handle_register(const cluster::ChannelPtr& ch, std::uint32_t rank);
  void handle_setup_up();
  void handle_bcast(StreamKey tag, Bytes data);
  void handle_gather_up(StreamKey tag, std::uint32_t src,
                        std::vector<std::pair<std::uint32_t, Bytes>> entries);
  void handle_scatter(StreamKey tag,
                      std::vector<std::pair<std::uint32_t, Bytes>> entries);
  void maybe_subtree_ready();
  void flush_gather(StreamKey tag);
  // --- rendezvous gather (upstream data plane) ----------------------------
  /// Sum of all payload bytes this node's subtree contributes this round.
  [[nodiscard]] std::size_t gather_subtree_bytes(const GatherState& st) const;
  /// Announce per-origin sizes upward (GatherRts); the round then waits for
  /// the parent's GatherCts before any payload moves.
  void gather_announce(StreamKey tag, GatherState& st);
  void handle_gather_rts(StreamKey tag, std::uint32_t src,
                         std::vector<std::pair<std::uint32_t, Bytes>> entries);
  void handle_gather_cts(StreamKey tag);
  /// The CTS body (clear children, queue held entries): shared by the
  /// normal clearance and the heal resume path.
  void gather_begin_streaming(StreamKey tag, GatherState& st);
  void handle_gather_chunk(StreamKey tag, std::uint32_t origin,
                           Bytes data);
  void handle_gather_drop(StreamKey tag,
                          const std::vector<std::pair<std::uint32_t, Bytes>>&
                              entries);
  /// Streams every queued-but-unsent gather chunk through the cursor.
  void gather_flush(StreamKey tag, GatherState& st);
  /// Root: delivers the round once every announced origin is complete or
  /// dropped. No-op elsewhere or while contributions are outstanding.
  void gather_check_complete(StreamKey tag);
  /// Relay: retires the round once all announced bytes were forwarded.
  void gather_relay_maybe_done(StreamKey tag);
  /// Marks an origin as lost mid-round (propagates GatherDrop upward).
  void gather_drop_origin(StreamKey tag, GatherState& st,
                          std::uint32_t origin);
  /// Forgets a dead child's stake in one gather round: stops waiting for its
  /// announce and drops every announced origin whose payload never finished.
  /// Returns true if the round referenced the child at all.
  bool gather_forget_child(StreamKey tag, GatherState& st,
                           std::uint32_t child);
  void send_up(cluster::Message m);
  void send_to_child(std::uint32_t child_rank, cluster::Message m);
  GatherState& gather_state(StreamKey tag);

  // --- multiplexed delivery / fairness ------------------------------------
  /// Route a completed round to the owning session's handler set (session 0
  /// -> the legacy trio). Rounds for an unbound session are dropped.
  void deliver_bcast(StreamKey tag, const Bytes& data);
  void deliver_gather(StreamKey tag,
                      std::vector<std::pair<std::uint32_t, Bytes>> entries);
  void deliver_scatter(StreamKey tag, const Bytes& data);
  /// Bumps `iccl.<name>` and, for nonzero sessions, the per-session twin
  /// `iccl.s<session>.<name>` so shared-tree metrics stay attributable.
  void count_mux(StreamKey tag, const char* name, double v = 1.0);
  /// Root: may a new round for `session` enter the cleared set? True unless
  /// some *other* session currently holds cleared open rounds.
  [[nodiscard]] bool mux_can_clear(std::uint32_t session) const;
  /// Root: marks the round cleared and accounts the session as active.
  void mux_mark_cleared(StreamKey tag, GatherState& st);
  /// Root delivery of a cleared round: release the session's hold and
  /// round-robin the clearance to the next session with deferred waiters.
  void mux_release(StreamKey tag);

  // --- self-healing (heal mode only) --------------------------------------
  /// Parent link died post-ready: climb the ancestor chain for a survivor.
  void begin_reparent();
  void try_reattach(std::uint32_t target, int attempts_left);
  void adopt_parent(std::uint32_t target, cluster::ChannelPtr ch);
  /// Re-announce in-flight gather rounds to the new parent (sent right
  /// after Reattach on the same FIFO channel, so the adopter processes the
  /// claim before any re-announce).
  void heal_send_reannounces();
  /// Adopter side: claim bookkeeping, origin-ownership transfer, broadcast
  /// replay for a freshly reattached orphan. Takes the channel because the
  /// orphan joins children_ here (not via Register): the link must carry no
  /// live-stream traffic before the replay runs, or catch-up chunks would
  /// arrive out of order.
  void handle_reattach(const cluster::ChannelPtr& ch, std::uint32_t src,
                       const Bytes& blob);
  void handle_gather_resume(
      StreamKey tag,
      const std::vector<std::pair<std::uint32_t, Bytes>>& entries);
  void handle_gather_done(StreamKey tag);
  void handle_leave(std::uint32_t src);
  /// Adopter side: open a heal slot for a dead child and suspend its stake
  /// in every open gather round until orphans claim it or the grace expires.
  void heal_child_lost(std::uint32_t lost);
  /// Resolves the slot early once every live rank under the dead child is
  /// claimed by a reattached orphan (or reported dead on a climb path).
  void heal_check_slot(std::uint32_t dead);
  void heal_resolve_slot(std::uint32_t dead, bool expired);
  void heal_record_bcast(StreamKey tag,
                         const std::shared_ptr<const Bytes>& payload);
  /// Replays broadcast state a reattached orphan missed: catch-up chunks
  /// for rounds it was mid-assembly on, full replays for rounds it never
  /// saw (it re-fans-out to its own subtree natively).
  void heal_replay_bcasts(
      std::uint32_t orphan,
      const std::map<StreamKey,
                     std::pair<std::uint32_t, std::uint32_t>>& open_recvs,
      const std::set<StreamKey>& delivered);
  /// Retires a finished round instead of erasing it (replay may need it
  /// until the root's GatherDone); bounded by the retired-round ring.
  void heal_retire_gather(StreamKey tag, GatherState& st, bool eager);

  /// This daemon's bootstrap span (the "daemon:<session>:<rank>" anchor),
  /// so collective spans nest under the right parent in exports.
  [[nodiscard]] obs::SpanId trace_parent(obs::Tracer& tracer) const;

  // --- eager/rendezvous protocol switch ----------------------------------
  [[nodiscard]] bool use_rendezvous(std::size_t payload_bytes) const;
  /// Serialized per-KB copy charge (iccl_eager_copy_per_kb scaled to size).
  [[nodiscard]] sim::Time eager_copy_cost(std::size_t bytes) const;
  /// Eager fan-out: one full-payload frame per child, serialized by
  /// (msg-handle + payload-copy) quanta in rank order.
  void eager_fanout(StreamKey tag,
                    const std::shared_ptr<const Bytes>& payload);
  /// Opens a rendezvous round toward this node's children (RTS fan-out).
  RndvSend& rndv_open_send(StreamKey tag, std::uint32_t nchunks,
                           std::uint32_t total);
  void handle_rndv_rts(StreamKey tag, std::uint32_t nchunks,
                       std::uint32_t total);
  void handle_rndv_cts(StreamKey tag, std::uint32_t src);
  void handle_rndv_chunk(StreamKey tag, std::uint32_t seq, Bytes data);
  /// Streams every ready-but-unsent chunk through the serialized cursor.
  void rndv_flush(StreamKey tag, RndvSend& st);
  /// A child link died: drop it from the fan-out and unblock any rendezvous
  /// round still waiting on its CTS.
  void on_child_lost(const cluster::ChannelPtr& ch);

  cluster::Process& self_;
  Params params_;
  comm::Topology topo_;
  std::uint32_t rndv_threshold_ = 0;  ///< resolved (bytes); never 0
  cluster::ChannelPtr parent_;
  std::map<std::uint32_t, cluster::ChannelPtr> children_;  ///< rank -> link
  std::vector<std::uint32_t> expected_children_;
  int setups_pending_ = 0;  ///< SetupUp messages still expected
  bool parent_linked_ = false;
  bool ready_fired_ = false;
  std::function<void(Status)> subtree_ready_;
  BcastHandler on_bcast_;
  GatherHandler on_gather_;
  ScatterHandler on_scatter_;
  /// Nonzero-session handler sets (bind_session); session 0 uses the legacy
  /// trio above.
  std::map<std::uint32_t, SessionHandlers> session_handlers_;
  FrameTap frame_tap_;
  KeyedFrameTap keyed_frame_tap_;
  std::map<StreamKey, GatherState> gathers_;
  std::map<StreamKey, RndvSend> rndv_sends_;  ///< by stream key
  std::map<StreamKey, RndvRecv> rndv_recvs_;  ///< by stream key

  // --- self-heal state -----------------------------------------------------
  bool heal_ = false;
  sim::Time heal_grace_ = 0;    ///< orphan-reattach wait before retraction
  std::uint32_t parent_rank_ = 0;  ///< current upstream rank (see accessor)
  bool reparenting_ = false;    ///< climb in progress
  bool left_ = false;           ///< leave() called; suppress healing
  std::vector<std::uint32_t> heal_via_;  ///< dead ancestors on this climb
  obs::SpanId heal_span_ = obs::kNoSpan;
  /// Delivered-broadcast ring: tag -> payload, insertion-ordered, capped at
  /// kHealHistory. Doubles as the duplicate-delivery guard (a replayed
  /// round whose tag is here is ignored entirely) and as the replay source
  /// for orphans that missed rounds while reattaching. Safe at equal cap on
  /// every node: a descendant's delivery order is a FIFO subsequence of
  /// every ancestor's, so an orphan can never have evicted a tag its
  /// adopter still holds.
  std::map<StreamKey, std::shared_ptr<const Bytes>> bcast_history_;
  std::vector<StreamKey> bcast_history_order_;
  /// Retired gather rounds kept for replay, oldest-first (evicted FIFO).
  std::vector<StreamKey> retired_gather_order_;
  /// One adoption slot per dead child: which orphan ranks reattached here
  /// and which ranks were reported dead on their climb paths.
  struct HealSlot {
    std::set<std::uint32_t> claimed;
    std::set<std::uint32_t> reported_dead;
  };
  std::map<std::uint32_t, HealSlot> heal_slots_;  ///< dead child -> slot

  // --- multiplex fairness state (root only) --------------------------------
  /// Session -> count of cleared-but-undelivered rendezvous gather rounds.
  std::map<std::uint32_t, int> mux_active_;
  /// Last session granted clearance from the waiter scan (round-robin seed).
  std::uint32_t mux_rr_last_ = 0;

  static constexpr int kConnectRetries = 80;
  static constexpr sim::Time kRetryDelay = sim::ms(3);
  static constexpr sim::Time kRetryDelayCap = sim::ms(200);
  /// Reattach targets have been up for the whole session; a refused
  /// connection after a few quick retries means the ancestor is dead too
  /// and the climb continues.
  static constexpr int kHealConnectRetries = 3;
  static constexpr std::size_t kHealHistory = 64;
  static constexpr sim::Time kHealGraceDefault = sim::ms(400);
};

}  // namespace lmon::core
