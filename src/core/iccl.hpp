// iccl.hpp - the Internal Collective Communication Layer (paper §3.3).
//
// "We leverage native communication subsystems that the RM sets up if
//  possible; our layered approach encapsulates interactions with native
//  communication subsystems in the Internal Collective Communication Layer
//  (ICCL). ICCL maps native interfaces to our back-end collective calls;
//  hence it is the only layer with significant platform dependencies."
//
// Here the "RM-provided fabric" is the bootstrap information slurmd hands
// every tool daemon on its argv (rank, size, fanout, per-session port, full
// host list). ICCL wires a k-ary tree over it and offers exactly the
// minimal collectives the paper commits to: barrier, broadcast, gather,
// scatter - deliberately *not* a general TBON (tools needing more should
// stack MRNet on top, which src/tbon does).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "cluster/process.hpp"
#include "comm/bootstrap.hpp"
#include "comm/topology.hpp"
#include "common/bytes.hpp"
#include "common/status.hpp"
#include "obs/trace.hpp"

namespace lmon::core {

class Iccl {
 public:
  /// The fabric bootstrap parameters are exactly what every launch strategy
  /// passes on the daemon argv; comm/bootstrap.hpp owns the wire form.
  using Params = comm::BootstrapParams;

  /// Fabric frame kinds (public so protocol tests can assert on the wire
  /// sequence through set_frame_tap()).
  enum class Kind : std::uint8_t {
    Register = 1,  ///< child -> parent: {rank}
    SetupUp,       ///< child -> parent: subtree fully wired
    Bcast,         ///< parent -> child: {tag, data} (eager: full payload)
    GatherUp,      ///< child -> parent: {tag, [(rank, data)...]}
    Scatter,       ///< parent -> child: {tag, [(rank, data)...]}
    RndvRts,       ///< parent -> child: {tag, nchunks, total bytes}
    RndvCts,       ///< child -> parent: {tag} (clear to stream)
    RndvChunk,     ///< parent -> child: {tag, seq, chunk bytes}
    // Upstream (gather) rendezvous: the mirror of RndvRts/Cts/Chunk, but
    // per *origin rank* instead of per chunk sequence - a parent cut-through
    // relays a child's chunks without assembling them, so per-origin order
    // is preserved by channel FIFO + in-order relay, and no seq is needed.
    GatherRts,    ///< child -> parent: {tag, [(origin, total bytes)...]}
    GatherCts,    ///< parent -> child: {tag} (clear to stream upward)
    GatherChunk,  ///< child -> parent: {tag, origin, chunk bytes}
    GatherDrop,   ///< child -> parent: {tag, [(origin, {})...]} origin died
  };

  /// Parses the RM-provided "--lmon-*" daemon argv. `self_host` enables the
  /// rank-from-host fallback used by broadcast-style launchers.
  static std::optional<Params> params_from_args(
      const std::vector<std::string>& args, std::string_view self_host = {});

  using BcastHandler = std::function<void(std::uint32_t tag, const Bytes&)>;
  /// Root-side gather completion: contributions sorted by rank.
  using GatherHandler = std::function<void(
      std::uint32_t tag, std::vector<std::pair<std::uint32_t, Bytes>>)>;
  using ScatterHandler = std::function<void(std::uint32_t tag, const Bytes&)>;

  Iccl(cluster::Process& self, Params params);

  Iccl(const Iccl&) = delete;
  Iccl& operator=(const Iccl&) = delete;

  [[nodiscard]] std::uint32_t rank() const noexcept { return params_.rank; }
  [[nodiscard]] std::uint32_t size() const noexcept { return params_.size; }
  [[nodiscard]] bool is_root() const noexcept { return params_.rank == 0; }
  [[nodiscard]] const Params& params() const noexcept { return params_; }

  /// Wires this node into the fabric tree: listens on the session port,
  /// connects to the parent daemon (with refused-connection retries - the
  /// parent may still be starting). `subtree_ready` fires once this node's
  /// *entire subtree* is connected; at the root that means the whole fabric
  /// is up (the paper's e9).
  void start(std::function<void(Status)> subtree_ready);

  // --- collectives -------------------------------------------------------
  /// Root only: delivers (tag, data) to every daemon's bcast handler,
  /// including the root's own.
  void broadcast(std::uint32_t tag, Bytes data);

  /// Gather contribution; every rank must call once per round. The root's
  /// gather handler fires when all `size` contributions arrived.
  void contribute(std::uint32_t tag, Bytes data);

  /// Root only: parts[i] goes to rank i's scatter handler.
  void scatter(std::uint32_t tag, std::vector<Bytes> parts);

  void set_bcast_handler(BcastHandler h) { on_bcast_ = std::move(h); }
  void set_gather_handler(GatherHandler h) { on_gather_ = std::move(h); }
  void set_scatter_handler(ScatterHandler h) { on_scatter_ = std::move(h); }

  /// Test-only tap: observes every decoded inbound fabric frame (before the
  /// handling cost is charged). `bytes` is the first entry's payload size.
  using FrameTap = std::function<void(Kind kind, std::uint32_t tag,
                                      std::uint32_t src, std::size_t bytes)>;
  void set_frame_tap(FrameTap tap) { frame_tap_ = std::move(tap); }

  /// Effective eager->rendezvous switch threshold (payload bytes): the
  /// session option when set, else the platform default.
  [[nodiscard]] std::uint32_t rndv_threshold() const noexcept {
    return rndv_threshold_;
  }

  /// The fabric tree this daemon is wired into.
  [[nodiscard]] const comm::Topology& topology() const noexcept {
    return topo_;
  }

  // Legacy k-ary helpers; thin forwards to comm::Topology (kept because
  // tools and tests use them as free-standing tree arithmetic).
  static std::vector<std::uint32_t> children_of(std::uint32_t rank,
                                                std::uint32_t size,
                                                std::uint32_t fanout);
  static std::optional<std::uint32_t> parent_of(std::uint32_t rank,
                                                std::uint32_t fanout);
  /// All ranks in the subtree rooted at `rank` (includes `rank`).
  static std::vector<std::uint32_t> subtree_of(std::uint32_t rank,
                                               std::uint32_t size,
                                               std::uint32_t fanout);

 private:
  /// One gather round (keyed by tag). Small rounds run eager: each node
  /// waits for every child's whole-subtree GatherUp frame, appends its own
  /// contribution and forwards one combined frame. Rounds whose *subtree
  /// total* reaches the rendezvous threshold announce per-origin sizes
  /// upward (GatherRts), wait for clearance (GatherCts - the upstream flow
  /// control: a slow parent simply withholds the CTS and its children stay
  /// quiet instead of burying it in buffered payload), then stream 64 KiB
  /// GatherChunk frames. Interior nodes cut-through relay each chunk as it
  /// arrives - they never assemble a child's contribution, so per-level
  /// memory stays O(chunk), not O(payload).
  struct GatherState {
    bool own_done = false;
    /// Children whose announce (eager GatherUp or GatherRts) is still
    /// outstanding. A set (not a count) so a dying child can be forgiven.
    std::set<std::uint32_t> children_pending;
    /// Entries held whole on this node: own contribution + eager children.
    std::vector<std::pair<std::uint32_t, Bytes>> acc;
    // --- rendezvous upstream state ---------------------------------------
    bool announced = false;  ///< GatherRts sent up (non-root only)
    bool streaming = false;  ///< own GatherCts processed; chunks may flow
    std::set<std::uint32_t> rndv_children;  ///< children that sent RTS
    /// Announced origin -> total bytes (origins owned by rndv children).
    std::map<std::uint32_t, std::uint32_t> origin_bytes;
    /// Rendezvous child -> the origins its RTS announced (for drops).
    std::map<std::uint32_t, std::set<std::uint32_t>> child_origins;
    std::map<std::uint32_t, Bytes> assembling;  ///< root only: per origin
    /// Relay only: bytes of each announced origin not yet relayed.
    std::map<std::uint32_t, std::uint32_t> origin_remaining;
    std::set<std::uint32_t> dropped;  ///< origins lost mid-stream
    /// Chunk send queue through the serialized cursor; entries release
    /// their buffer once scheduled (the posted send keeps its own ref).
    std::vector<std::pair<std::uint32_t, std::shared_ptr<const Bytes>>> outq;
    std::size_t next_out = 0;
    sim::Time cursor = 0;  ///< serialized send occupancy (absolute time)
    obs::SpanId span = obs::kNoSpan;
  };

  /// Sender side of one rendezvous broadcast round: RTS is out, chunks
  /// stream round-robin across the children once every CTS arrived. Relay
  /// nodes grow `ready` chunk-by-chunk as the payload trickles down; the
  /// root has every chunk ready up front.
  struct RndvSend {
    std::uint32_t nchunks = 0;
    std::uint32_t total = 0;
    std::set<std::uint32_t> cts_pending;  ///< child ranks yet to CTS
    bool streaming = false;               ///< all CTS in, chunks may flow
    std::uint32_t next_seq = 0;           ///< next chunk to schedule
    std::vector<std::shared_ptr<const Bytes>> ready;  ///< chunks, by seq
    sim::Time cursor = 0;  ///< serialized send occupancy (absolute time)
    obs::SpanId span = obs::kNoSpan;  ///< RTS fan-out .. last chunk out
  };

  /// Receiver side: assembles chunks in sequence order (per-channel FIFO
  /// guarantees ordering) and delivers once complete.
  struct RndvRecv {
    std::uint32_t nchunks = 0;
    std::uint32_t received = 0;
    Bytes assembled;
    obs::SpanId span = obs::kNoSpan;  ///< RTS in .. payload assembled
  };

  void connect_parent(int attempts_left);
  void on_fabric_message(const cluster::ChannelPtr& ch, cluster::Message m);
  void handle_register(const cluster::ChannelPtr& ch, std::uint32_t rank);
  void handle_setup_up();
  void handle_bcast(std::uint32_t tag, Bytes data);
  void handle_gather_up(std::uint32_t tag, std::uint32_t src,
                        std::vector<std::pair<std::uint32_t, Bytes>> entries);
  void handle_scatter(std::uint32_t tag,
                      std::vector<std::pair<std::uint32_t, Bytes>> entries);
  void maybe_subtree_ready();
  void flush_gather(std::uint32_t tag);
  // --- rendezvous gather (upstream data plane) ----------------------------
  /// Sum of all payload bytes this node's subtree contributes this round.
  [[nodiscard]] std::size_t gather_subtree_bytes(const GatherState& st) const;
  /// Announce per-origin sizes upward (GatherRts); the round then waits for
  /// the parent's GatherCts before any payload moves.
  void gather_announce(std::uint32_t tag, GatherState& st);
  void handle_gather_rts(std::uint32_t tag, std::uint32_t src,
                         std::vector<std::pair<std::uint32_t, Bytes>> entries);
  void handle_gather_cts(std::uint32_t tag);
  void handle_gather_chunk(std::uint32_t tag, std::uint32_t origin,
                           Bytes data);
  void handle_gather_drop(std::uint32_t tag,
                          const std::vector<std::pair<std::uint32_t, Bytes>>&
                              entries);
  /// Streams every queued-but-unsent gather chunk through the cursor.
  void gather_flush(std::uint32_t tag, GatherState& st);
  /// Root: delivers the round once every announced origin is complete or
  /// dropped. No-op elsewhere or while contributions are outstanding.
  void gather_check_complete(std::uint32_t tag);
  /// Relay: retires the round once all announced bytes were forwarded.
  void gather_relay_maybe_done(std::uint32_t tag);
  /// Marks an origin as lost mid-round (propagates GatherDrop upward).
  void gather_drop_origin(std::uint32_t tag, GatherState& st,
                          std::uint32_t origin);
  /// Forgets a dead child's stake in one gather round: stops waiting for its
  /// announce and drops every announced origin whose payload never finished.
  /// Returns true if the round referenced the child at all.
  bool gather_forget_child(std::uint32_t tag, GatherState& st,
                           std::uint32_t child);
  void send_up(cluster::Message m);
  void send_to_child(std::uint32_t child_rank, cluster::Message m);
  GatherState& gather_state(std::uint32_t tag);

  /// This daemon's bootstrap span (the "daemon:<session>:<rank>" anchor),
  /// so collective spans nest under the right parent in exports.
  [[nodiscard]] obs::SpanId trace_parent(obs::Tracer& tracer) const;

  // --- eager/rendezvous protocol switch ----------------------------------
  [[nodiscard]] bool use_rendezvous(std::size_t payload_bytes) const;
  /// Serialized per-KB copy charge (iccl_eager_copy_per_kb scaled to size).
  [[nodiscard]] sim::Time eager_copy_cost(std::size_t bytes) const;
  /// Eager fan-out: one full-payload frame per child, serialized by
  /// (msg-handle + payload-copy) quanta in rank order.
  void eager_fanout(std::uint32_t tag,
                    const std::shared_ptr<const Bytes>& payload);
  /// Opens a rendezvous round toward this node's children (RTS fan-out).
  RndvSend& rndv_open_send(std::uint32_t tag, std::uint32_t nchunks,
                           std::uint32_t total);
  void handle_rndv_rts(std::uint32_t tag, std::uint32_t nchunks,
                       std::uint32_t total);
  void handle_rndv_cts(std::uint32_t tag, std::uint32_t src);
  void handle_rndv_chunk(std::uint32_t tag, std::uint32_t seq, Bytes data);
  /// Streams every ready-but-unsent chunk through the serialized cursor.
  void rndv_flush(std::uint32_t tag, RndvSend& st);
  /// A child link died: drop it from the fan-out and unblock any rendezvous
  /// round still waiting on its CTS.
  void on_child_lost(const cluster::ChannelPtr& ch);

  cluster::Process& self_;
  Params params_;
  comm::Topology topo_;
  std::uint32_t rndv_threshold_ = 0;  ///< resolved (bytes); never 0
  cluster::ChannelPtr parent_;
  std::map<std::uint32_t, cluster::ChannelPtr> children_;  ///< rank -> link
  std::vector<std::uint32_t> expected_children_;
  int setups_pending_ = 0;  ///< SetupUp messages still expected
  bool parent_linked_ = false;
  bool ready_fired_ = false;
  std::function<void(Status)> subtree_ready_;
  BcastHandler on_bcast_;
  GatherHandler on_gather_;
  ScatterHandler on_scatter_;
  FrameTap frame_tap_;
  std::map<std::uint32_t, GatherState> gathers_;
  std::map<std::uint32_t, RndvSend> rndv_sends_;  ///< by tag
  std::map<std::uint32_t, RndvRecv> rndv_recvs_;  ///< by tag

  static constexpr int kConnectRetries = 80;
  static constexpr sim::Time kRetryDelay = sim::ms(3);
  static constexpr sim::Time kRetryDelayCap = sim::ms(200);
};

}  // namespace lmon::core
