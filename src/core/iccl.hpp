// iccl.hpp - the Internal Collective Communication Layer (paper §3.3).
//
// "We leverage native communication subsystems that the RM sets up if
//  possible; our layered approach encapsulates interactions with native
//  communication subsystems in the Internal Collective Communication Layer
//  (ICCL). ICCL maps native interfaces to our back-end collective calls;
//  hence it is the only layer with significant platform dependencies."
//
// Here the "RM-provided fabric" is the bootstrap information slurmd hands
// every tool daemon on its argv (rank, size, fanout, per-session port, full
// host list). ICCL wires a k-ary tree over it and offers exactly the
// minimal collectives the paper commits to: barrier, broadcast, gather,
// scatter - deliberately *not* a general TBON (tools needing more should
// stack MRNet on top, which src/tbon does).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "cluster/process.hpp"
#include "comm/bootstrap.hpp"
#include "comm/topology.hpp"
#include "common/bytes.hpp"
#include "common/status.hpp"

namespace lmon::core {

class Iccl {
 public:
  /// The fabric bootstrap parameters are exactly what every launch strategy
  /// passes on the daemon argv; comm/bootstrap.hpp owns the wire form.
  using Params = comm::BootstrapParams;

  /// Parses the RM-provided "--lmon-*" daemon argv. `self_host` enables the
  /// rank-from-host fallback used by broadcast-style launchers.
  static std::optional<Params> params_from_args(
      const std::vector<std::string>& args, std::string_view self_host = {});

  using BcastHandler = std::function<void(std::uint32_t tag, const Bytes&)>;
  /// Root-side gather completion: contributions sorted by rank.
  using GatherHandler = std::function<void(
      std::uint32_t tag, std::vector<std::pair<std::uint32_t, Bytes>>)>;
  using ScatterHandler = std::function<void(std::uint32_t tag, const Bytes&)>;

  Iccl(cluster::Process& self, Params params);

  Iccl(const Iccl&) = delete;
  Iccl& operator=(const Iccl&) = delete;

  [[nodiscard]] std::uint32_t rank() const noexcept { return params_.rank; }
  [[nodiscard]] std::uint32_t size() const noexcept { return params_.size; }
  [[nodiscard]] bool is_root() const noexcept { return params_.rank == 0; }
  [[nodiscard]] const Params& params() const noexcept { return params_; }

  /// Wires this node into the fabric tree: listens on the session port,
  /// connects to the parent daemon (with refused-connection retries - the
  /// parent may still be starting). `subtree_ready` fires once this node's
  /// *entire subtree* is connected; at the root that means the whole fabric
  /// is up (the paper's e9).
  void start(std::function<void(Status)> subtree_ready);

  // --- collectives -------------------------------------------------------
  /// Root only: delivers (tag, data) to every daemon's bcast handler,
  /// including the root's own.
  void broadcast(std::uint32_t tag, Bytes data);

  /// Gather contribution; every rank must call once per round. The root's
  /// gather handler fires when all `size` contributions arrived.
  void contribute(std::uint32_t tag, Bytes data);

  /// Root only: parts[i] goes to rank i's scatter handler.
  void scatter(std::uint32_t tag, std::vector<Bytes> parts);

  void set_bcast_handler(BcastHandler h) { on_bcast_ = std::move(h); }
  void set_gather_handler(GatherHandler h) { on_gather_ = std::move(h); }
  void set_scatter_handler(ScatterHandler h) { on_scatter_ = std::move(h); }

  /// The fabric tree this daemon is wired into.
  [[nodiscard]] const comm::Topology& topology() const noexcept {
    return topo_;
  }

  // Legacy k-ary helpers; thin forwards to comm::Topology (kept because
  // tools and tests use them as free-standing tree arithmetic).
  static std::vector<std::uint32_t> children_of(std::uint32_t rank,
                                                std::uint32_t size,
                                                std::uint32_t fanout);
  static std::optional<std::uint32_t> parent_of(std::uint32_t rank,
                                                std::uint32_t fanout);
  /// All ranks in the subtree rooted at `rank` (includes `rank`).
  static std::vector<std::uint32_t> subtree_of(std::uint32_t rank,
                                               std::uint32_t size,
                                               std::uint32_t fanout);

 private:
  enum class Kind : std::uint8_t {
    Register = 1,  ///< child -> parent: {rank}
    SetupUp,       ///< child -> parent: subtree fully wired
    Bcast,         ///< parent -> child: {tag, data}
    GatherUp,      ///< child -> parent: {tag, [(rank, data)...]}
    Scatter,       ///< parent -> child: {tag, [(rank, data)...]}
  };

  struct GatherState {
    bool own_done = false;
    int children_pending = 0;
    std::vector<std::pair<std::uint32_t, Bytes>> acc;
  };

  void connect_parent(int attempts_left);
  void on_fabric_message(const cluster::ChannelPtr& ch, cluster::Message m);
  void handle_register(const cluster::ChannelPtr& ch, std::uint32_t rank);
  void handle_setup_up();
  void handle_bcast(std::uint32_t tag, Bytes data);
  void handle_gather_up(std::uint32_t tag,
                        std::vector<std::pair<std::uint32_t, Bytes>> entries);
  void handle_scatter(std::uint32_t tag,
                      std::vector<std::pair<std::uint32_t, Bytes>> entries);
  void maybe_subtree_ready();
  void flush_gather(std::uint32_t tag);
  void send_up(cluster::Message m);
  void send_to_child(std::uint32_t child_rank, cluster::Message m);
  GatherState& gather_state(std::uint32_t tag);

  cluster::Process& self_;
  Params params_;
  comm::Topology topo_;
  cluster::ChannelPtr parent_;
  std::map<std::uint32_t, cluster::ChannelPtr> children_;  ///< rank -> link
  std::vector<std::uint32_t> expected_children_;
  int setups_pending_ = 0;  ///< SetupUp messages still expected
  bool parent_linked_ = false;
  bool ready_fired_ = false;
  std::function<void(Status)> subtree_ready_;
  BcastHandler on_bcast_;
  GatherHandler on_gather_;
  ScatterHandler on_scatter_;
  std::map<std::uint32_t, GatherState> gathers_;

  static constexpr int kConnectRetries = 80;
  static constexpr sim::Time kRetryDelay = sim::ms(3);
  static constexpr sim::Time kRetryDelayCap = sim::ms(200);
};

}  // namespace lmon::core
