#include "core/rpdtab.hpp"

#include <set>

#include "rm/apai.hpp"

namespace lmon::core {

std::vector<std::string> Rpdtab::hosts() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const auto& e : entries_) {
    if (seen.insert(e.host).second) out.push_back(e.host);
  }
  return out;
}

std::vector<rm::TaskDesc> Rpdtab::entries_for_host(
    const std::string& host) const {
  std::vector<rm::TaskDesc> out;
  for (const auto& e : entries_) {
    if (e.host == host) out.push_back(e);
  }
  return out;
}

Bytes Rpdtab::pack() const { return rm::apai::encode_proctable(entries_); }

std::optional<Rpdtab> Rpdtab::unpack(const Bytes& data) {
  auto entries = rm::apai::decode_proctable(data);
  if (!entries) return std::nullopt;
  return Rpdtab(std::move(*entries));
}

std::optional<Rpdtab> Rpdtab::from_proctable_blob(const Bytes& blob) {
  return unpack(blob);
}

}  // namespace lmon::core
