// mw_api.hpp - the LaunchMON Middleware API (paper §3.4).
//
// For TBON communication daemons launched onto additional nodes beyond the
// job's allocation. Each daemon receives a unique "personality handle"
// (rank(), "similar to an MPI rank"), the bootstrap fabric for collective
// and point-to-point startup traffic, and the job's RPDTAB so it can locate
// the target program and back-end daemons. Tool-specific bootstrap data can
// be piggybacked on the FE<->MW-master handshake, which is how src/tbon
// distributes its tree topology.
#pragma once

#include "core/daemon_runtime.hpp"

namespace lmon::core {

class MiddleWare : public DaemonRuntime {
 public:
  explicit MiddleWare(cluster::Process& self)
      : DaemonRuntime(self, MsgClass::FeMw) {}
};

}  // namespace lmon::core
