// daemon_runtime.hpp - shared implementation of the BE and MW APIs.
//
// The paper's BE (§3.3) and MW (§3.4) APIs have deliberately parallel
// requirements: consume the RM-provided bootstrap parameters, wire the
// ICCL fabric, handshake with the front end through one master
// representative, distribute the RPDTAB, and expose minimal collectives.
// DaemonRuntime implements that machinery once; lmon::core::BackEnd and
// lmon::core::MiddleWare (be_api.hpp / mw_api.hpp) bind it to the FeBe and
// FeMw LMONP message classes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "cluster/process.hpp"
#include "core/iccl.hpp"
#include "core/lmonp.hpp"
#include "core/rpdtab.hpp"
#include "obs/trace.hpp"

namespace lmon::core {

class DaemonRuntime {
 public:
  struct Callbacks {
    /// Local tool initialization, invoked on every daemon once the RPDTAB
    /// and piggybacked tool data arrive. Call `done` when the daemon is
    /// operational; the master reports Ready to the FE only after all
    /// daemons have done so.
    std::function<void(const Rpdtab& proctable, const Bytes& usrdata,
                       std::function<void(Status)> done)>
        on_init;
    /// Session became ready (every daemon) or failed (status not ok).
    std::function<void(Status)> on_ready;
    /// Master only: tool data sent by the FE outside the startup exchange.
    std::function<void(const Bytes&)> on_usrdata;
    /// Every daemon: a command the master fanned out with
    /// broadcast_command(). Unlike broadcast(), commands need no matching
    /// call on the receivers, so the master can initiate fleet-wide actions
    /// (e.g. relaying an FE request) at any time.
    std::function<void(const Bytes&)> on_command;
    /// FE asked the session to shut down (default: exit(0)).
    std::function<void()> on_shutdown;
  };

  /// `cls` selects the LMONP pair: FeBe for back ends, FeMw for middleware.
  DaemonRuntime(cluster::Process& self, MsgClass cls);
  ~DaemonRuntime();

  /// Parses the RM-provided argv, wires the fabric and runs the handshake.
  /// Fails fast (Einval) when the argv lacks the bootstrap parameters,
  /// which is what a daemon started outside LaunchMON sees.
  Status init(Callbacks callbacks);

  // --- identity ("personality" in MW terms) --------------------------------
  [[nodiscard]] std::uint32_t rank() const { return iccl_->rank(); }
  [[nodiscard]] std::uint32_t size() const { return iccl_->size(); }
  [[nodiscard]] bool is_master() const { return iccl_->is_root(); }
  [[nodiscard]] const std::string& session() const {
    return iccl_->params().session;
  }

  // --- data from the handshake ------------------------------------------------
  [[nodiscard]] const Rpdtab& proctable() const { return proctable_; }
  /// RPDTAB entries co-located with this daemon.
  [[nodiscard]] std::vector<rm::TaskDesc> my_entries() const;
  [[nodiscard]] const Bytes& usrdata() const { return usrdata_; }

  // --- FE communication (master's representative link) --------------------------
  /// Master only: user payload piggybacked onto the Ready message.
  void set_ready_usr_payload(Bytes b) { ready_usr_ = std::move(b); }
  /// Master only: sends tool data to the FE after startup.
  Status send_usrdata_fe(Bytes b);

  /// Master only: delivers `data` to every daemon's on_command callback
  /// (including the master's own).
  Status broadcast_command(Bytes data);

  // --- minimal collectives (§3.3: "we only support simple barriers,
  // broadcasts, gathers and scatters") -----------------------------------------
  /// SPMD discipline: every daemon must invoke the same sequence of
  /// collective calls; rounds are matched by per-primitive counters.
  void barrier(std::function<void()> done);
  /// All ranks contribute; `at_master` fires on the master only, with the
  /// contributions in rank order.
  void gather(Bytes contribution,
              std::function<void(std::vector<std::pair<std::uint32_t, Bytes>>)>
                  at_master);
  /// Master passes data; everyone's `delivered` fires with it.
  void broadcast(Bytes data, std::function<void(const Bytes&)> delivered);
  /// Master passes size() parts; everyone's `delivered` fires with its own.
  void scatter(std::vector<Bytes> parts,
               std::function<void(const Bytes&)> delivered);

  [[nodiscard]] Iccl& iccl() { return *iccl_; }

 private:
  // Internal collective tags.
  static constexpr std::uint32_t kTagHandshake = 1;
  static constexpr std::uint32_t kTagReadyAck = 2;
  static constexpr std::uint32_t kTagShutdown = 3;
  /// Commands take one tag per round from [kTagCommandBase, kUserBarrier):
  /// the ICCL's rendezvous state is keyed by tag, so two overlapping large
  /// commands must not share one. (Rendezvous rounds with distinct tags may
  /// complete out of issue order; commands are independent fleet actions.)
  static constexpr std::uint32_t kTagCommandBase = 0x0000'0100;
  static constexpr std::uint32_t kUserBarrier = 0x1000'0000;
  static constexpr std::uint32_t kUserGather = 0x2000'0000;
  static constexpr std::uint32_t kUserBcast = 0x3000'0000;
  static constexpr std::uint32_t kUserScatter = 0x4000'0000;

  void on_fabric_ready(Status st);
  void connect_fe();
  void on_fe_message(const cluster::ChannelPtr& ch, cluster::Message m);
  void maybe_run_handshake();
  void on_handshake_bcast(const Bytes& data);
  void on_internal_gather(
      std::uint32_t tag,
      std::vector<std::pair<std::uint32_t, Bytes>> entries);
  void dispatch_bcast(std::uint32_t tag, const Bytes& data);
  void dispatch_scatter(std::uint32_t tag, const Bytes& data);
  void fail(Status st);
  [[nodiscard]] std::string mark_prefix() const {
    return cls_ == MsgClass::FeBe ? "be_" : "mw_";
  }

  cluster::Process& self_;
  MsgClass cls_;
  Callbacks cbs_;
  std::unique_ptr<Iccl> iccl_;
  std::string fe_host_;
  cluster::Port fe_port_ = 0;
  cluster::ChannelPtr fe_channel_;  ///< master only
  Rpdtab proctable_;
  Bytes usrdata_;
  Bytes ready_usr_;
  bool fabric_ready_ = false;
  bool handshake_buffered_ = false;
  Bytes buffered_rpdtab_;
  Bytes buffered_usr_;
  bool handshake_done_ = false;
  bool failed_ = false;
  // Trace spans (kNoSpan when no tracer attached): the daemon's bootstrap
  // span (parented on the launcher's "spawn:<session>:<host>" anchor) and
  // the master's handshake-collective span (t_collective_begin..end).
  obs::SpanId span_ = obs::kNoSpan;
  obs::SpanId collective_span_ = obs::kNoSpan;

  std::map<std::uint32_t, std::function<void(const Bytes&)>> bcast_waiters_;
  std::map<std::uint32_t,
           std::function<void(std::vector<std::pair<std::uint32_t, Bytes>>)>>
      gather_waiters_;
  std::map<std::uint32_t, std::function<void(const Bytes&)>> scatter_waiters_;
  /// SPMD collectives are matched by per-primitive counters, but the fabric
  /// may deliver a round's payload before this rank has issued the matching
  /// call (the rendezvous chunk pipeline can overtake the eager staggered
  /// barrier-release wave at high fan-out). Early arrivals park here and are
  /// consumed when the call registers its waiter.
  std::map<std::uint32_t, Bytes> pending_bcasts_;
  std::map<std::uint32_t, Bytes> pending_scatters_;
  std::uint32_t barrier_count_ = 0;
  std::uint32_t gather_count_ = 0;
  std::uint32_t bcast_count_ = 0;
  std::uint32_t scatter_count_ = 0;
  std::uint32_t command_count_ = 0;
};

}  // namespace lmon::core
