// daemon_runtime.hpp - shared implementation of the BE and MW APIs.
//
// The paper's BE (§3.3) and MW (§3.4) APIs have deliberately parallel
// requirements: consume the RM-provided bootstrap parameters, wire the
// ICCL fabric, handshake with the front end through one master
// representative, distribute the RPDTAB, and expose minimal collectives.
// DaemonRuntime implements that machinery once; lmon::core::BackEnd and
// lmon::core::MiddleWare (be_api.hpp / mw_api.hpp) bind it to the FeBe and
// FeMw LMONP message classes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "cluster/process.hpp"
#include "core/iccl.hpp"
#include "core/lmonp.hpp"
#include "core/rpdtab.hpp"
#include "obs/trace.hpp"

namespace lmon::core {

class DaemonRuntime {
 public:
  struct Callbacks {
    /// Local tool initialization, invoked on every daemon once the RPDTAB
    /// and piggybacked tool data arrive. Call `done` when the daemon is
    /// operational; the master reports Ready to the FE only after all
    /// daemons have done so.
    std::function<void(const Rpdtab& proctable, const Bytes& usrdata,
                       std::function<void(Status)> done)>
        on_init;
    /// Session became ready (every daemon) or failed (status not ok).
    std::function<void(Status)> on_ready;
    /// Master only: tool data sent by the FE outside the startup exchange.
    std::function<void(const Bytes&)> on_usrdata;
    /// Every daemon: a command the master fanned out with
    /// broadcast_command(). Unlike broadcast(), commands need no matching
    /// call on the receivers, so the master can initiate fleet-wide actions
    /// (e.g. relaying an FE request) at any time.
    std::function<void(const Bytes&)> on_command;
    /// FE asked the session to shut down (default: exit(0)).
    std::function<void()> on_shutdown;
    /// Persistent multiplexed service: a virtual session attached to (or
    /// detached from) this tree. Fires on every daemon. Optional.
    std::function<void(std::uint32_t vsid)> on_vsession_attach;
    std::function<void(std::uint32_t vsid)> on_vsession_detach;
  };

  /// `cls` selects the LMONP pair: FeBe for back ends, FeMw for middleware.
  DaemonRuntime(cluster::Process& self, MsgClass cls);
  ~DaemonRuntime();

  /// Parses the RM-provided argv, wires the fabric and runs the handshake.
  /// Fails fast (Einval) when the argv lacks the bootstrap parameters,
  /// which is what a daemon started outside LaunchMON sees.
  Status init(Callbacks callbacks);

  // --- identity ("personality" in MW terms) --------------------------------
  [[nodiscard]] std::uint32_t rank() const { return iccl_->rank(); }
  [[nodiscard]] std::uint32_t size() const { return iccl_->size(); }
  [[nodiscard]] bool is_master() const { return iccl_->is_root(); }
  [[nodiscard]] const std::string& session() const {
    return iccl_->params().session;
  }

  // --- data from the handshake ------------------------------------------------
  [[nodiscard]] const Rpdtab& proctable() const { return proctable_; }
  /// RPDTAB entries co-located with this daemon.
  [[nodiscard]] std::vector<rm::TaskDesc> my_entries() const;
  [[nodiscard]] const Bytes& usrdata() const { return usrdata_; }

  // --- FE communication (master's representative link) --------------------------
  /// Master only: user payload piggybacked onto the Ready message.
  void set_ready_usr_payload(Bytes b) { ready_usr_ = std::move(b); }
  /// Master only: sends tool data to the FE after startup.
  Status send_usrdata_fe(Bytes b);

  /// Master only: delivers `data` to every daemon's on_command callback
  /// (including the master's own).
  Status broadcast_command(Bytes data);

  // --- minimal collectives (§3.3: "we only support simple barriers,
  // broadcasts, gathers and scatters") -----------------------------------------
  /// SPMD discipline: every daemon must invoke the same sequence of
  /// collective calls; rounds are matched by per-primitive counters.
  void barrier(std::function<void()> done);
  /// All ranks contribute; `at_master` fires on the master only, with the
  /// contributions in rank order.
  void gather(Bytes contribution,
              std::function<void(std::vector<std::pair<std::uint32_t, Bytes>>)>
                  at_master);
  /// Master passes data; everyone's `delivered` fires with it.
  void broadcast(Bytes data, std::function<void(const Bytes&)> delivered);
  /// Master passes size() parts; everyone's `delivered` fires with its own.
  void scatter(std::vector<Bytes> parts,
               std::function<void(const Bytes&)> delivered);

  // --- virtual sessions (persistent multiplexed service) ------------------
  // The same collective surface, namespaced to one virtual session that the
  // FE attached over this tree. Rounds of different sessions never collide:
  // they are keyed (vsid, tag) all the way through the fabric.
  /// Per-tree admission bound (bootstrap --lmon-max-sessions; default 64).
  [[nodiscard]] std::uint32_t max_virtual_sessions() const;
  /// Currently attached virtual session ids (ascending).
  [[nodiscard]] std::vector<std::uint32_t> virtual_sessions() const;
  Status vbarrier(std::uint32_t vsid, std::function<void()> done);
  Status vgather(std::uint32_t vsid, Bytes contribution,
                 std::function<
                     void(std::vector<std::pair<std::uint32_t, Bytes>>)>
                     at_master);
  Status vbroadcast(std::uint32_t vsid, Bytes data,
                    std::function<void(const Bytes&)> delivered);
  Status vscatter(std::uint32_t vsid, std::vector<Bytes> parts,
                  std::function<void(const Bytes&)> delivered);

  [[nodiscard]] Iccl& iccl() { return *iccl_; }

 private:
  // Internal collective tags.
  static constexpr std::uint32_t kTagHandshake = 1;
  static constexpr std::uint32_t kTagReadyAck = 2;
  static constexpr std::uint32_t kTagShutdown = 3;
  /// Virtual-session control plane, carried on the infrastructure session:
  /// the master announces attaches/detaches tree-wide; every daemon binds
  /// (or unbinds) the session's fabric handlers on receipt. The attach ack
  /// is a gather on the *new* session's own (vsid, kTagReadyAck) stream.
  static constexpr std::uint32_t kTagVAttach = 4;
  static constexpr std::uint32_t kTagVDetach = 5;
  /// Default admission bound when the bootstrap argv names none.
  static constexpr std::uint32_t kDefaultMaxVSessions = 64;
  /// Commands take one tag per round from [kTagCommandBase, kUserBarrier):
  /// the ICCL's rendezvous state is keyed by tag, so two overlapping large
  /// commands must not share one. (Rendezvous rounds with distinct tags may
  /// complete out of issue order; commands are independent fleet actions.)
  static constexpr std::uint32_t kTagCommandBase = 0x0000'0100;
  static constexpr std::uint32_t kUserBarrier = 0x1000'0000;
  static constexpr std::uint32_t kUserGather = 0x2000'0000;
  static constexpr std::uint32_t kUserBcast = 0x3000'0000;
  static constexpr std::uint32_t kUserScatter = 0x4000'0000;

  /// Per-session collective bookkeeping: waiters, early-arrival buffers and
  /// the SPMD round counters. Session 0 (the infrastructure session) and
  /// every attached virtual session each own one.
  struct VSession {
    std::map<std::uint32_t, std::function<void(const Bytes&)>> bcast_waiters;
    std::map<std::uint32_t,
             std::function<void(std::vector<std::pair<std::uint32_t, Bytes>>)>>
        gather_waiters;
    std::map<std::uint32_t, std::function<void(const Bytes&)>>
        scatter_waiters;
    std::map<std::uint32_t, Bytes> pending_bcasts;
    std::map<std::uint32_t, Bytes> pending_scatters;
    std::uint32_t barrier_count = 0;
    std::uint32_t gather_count = 0;
    std::uint32_t bcast_count = 0;
    std::uint32_t scatter_count = 0;
  };

  void on_fabric_ready(Status st);
  void connect_fe();
  void on_fe_message(const cluster::ChannelPtr& ch, cluster::Message m);
  void maybe_run_handshake();
  void on_handshake_bcast(const Bytes& data);
  void on_internal_gather(
      std::uint32_t tag,
      std::vector<std::pair<std::uint32_t, Bytes>> entries);
  void dispatch_bcast(std::uint32_t tag, const Bytes& data);
  void dispatch_scatter(std::uint32_t tag, const Bytes& data);
  // --- virtual-session plumbing -------------------------------------------
  /// Master: FE asked for a virtual attach; runs admission control and, on
  /// accept, announces the session tree-wide.
  void handle_virtual_attach(std::uint32_t vsid);
  /// Every daemon: create + bind (or unbind + destroy) the session state.
  void vsession_open(std::uint32_t vsid);
  void vsession_close(std::uint32_t vsid);
  void send_virtual_ready(std::uint32_t vsid, bool ok, std::string error,
                          std::uint32_t ndaemons);
  void dispatch_vs_bcast(std::uint32_t vsid, std::uint32_t tag,
                         const Bytes& data);
  void dispatch_vs_scatter(std::uint32_t vsid, std::uint32_t tag,
                           const Bytes& data);
  void on_vs_gather(std::uint32_t vsid, std::uint32_t tag,
                    std::vector<std::pair<std::uint32_t, Bytes>> entries);
  [[nodiscard]] VSession* vsession(std::uint32_t vsid);
  void fail(Status st);
  [[nodiscard]] std::string mark_prefix() const {
    return cls_ == MsgClass::FeBe ? "be_" : "mw_";
  }

  cluster::Process& self_;
  MsgClass cls_;
  Callbacks cbs_;
  std::unique_ptr<Iccl> iccl_;
  std::string fe_host_;
  cluster::Port fe_port_ = 0;
  cluster::ChannelPtr fe_channel_;  ///< master only
  Rpdtab proctable_;
  Bytes usrdata_;
  Bytes ready_usr_;
  bool fabric_ready_ = false;
  bool handshake_buffered_ = false;
  Bytes buffered_rpdtab_;
  Bytes buffered_usr_;
  bool handshake_done_ = false;
  bool failed_ = false;
  // Trace spans (kNoSpan when no tracer attached): the daemon's bootstrap
  // span (parented on the launcher's "spawn:<session>:<host>" anchor) and
  // the master's handshake-collective span (t_collective_begin..end).
  obs::SpanId span_ = obs::kNoSpan;
  obs::SpanId collective_span_ = obs::kNoSpan;

  /// Per-session collective state: session 0 (always present after init)
  /// plus one entry per attached virtual session. SPMD collectives are
  /// matched by per-primitive counters, but the fabric may deliver a
  /// round's payload before this rank has issued the matching call (the
  /// rendezvous chunk pipeline can overtake the eager staggered
  /// barrier-release wave at high fan-out); each session's early arrivals
  /// park in its own pending buffers until the call registers its waiter.
  std::map<std::uint32_t, VSession> sessions_;
  std::uint32_t command_count_ = 0;
};

}  // namespace lmon::core
