#include "core/iccl.hpp"

#include <algorithm>
#include <cassert>

#include "cluster/machine.hpp"
#include "simkernel/log.hpp"

namespace lmon::core {

namespace {

cluster::Message encode_frame(
    std::uint8_t kind, std::uint32_t tag, std::uint32_t src,
    const std::vector<std::pair<std::uint32_t, Bytes>>& entries) {
  ByteWriter w;
  w.u8(kind);
  w.u32(tag);
  w.u32(src);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [rank, data] : entries) {
    w.u32(rank);
    w.blob(data);
  }
  return cluster::Message(std::move(w).take());
}

struct Frame {
  std::uint8_t kind;
  std::uint32_t tag;
  std::uint32_t src;
  std::vector<std::pair<std::uint32_t, Bytes>> entries;
};

std::optional<Frame> decode_frame(const cluster::Message& m) {
  ByteReader r(m.bytes);
  Frame f;
  auto kind = r.u8();
  auto tag = r.u32();
  auto src = r.u32();
  auto count = r.u32();
  if (!kind || !tag || !src || !count) return std::nullopt;
  f.kind = *kind;
  f.tag = *tag;
  f.src = *src;
  f.entries.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto rank = r.u32();
    auto data = r.blob();
    if (!rank || !data) return std::nullopt;
    f.entries.emplace_back(*rank, std::move(*data));
  }
  return f;
}

}  // namespace

std::optional<Iccl::Params> Iccl::params_from_args(
    const std::vector<std::string>& args, std::string_view self_host) {
  return comm::parse_bootstrap(args, self_host);
}

std::vector<std::uint32_t> Iccl::children_of(std::uint32_t rank,
                                             std::uint32_t size,
                                             std::uint32_t fanout) {
  return comm::Topology({comm::TopologyKind::KAry, fanout}, size)
      .children_of(rank);
}

std::optional<std::uint32_t> Iccl::parent_of(std::uint32_t rank,
                                             std::uint32_t fanout) {
  // Size does not matter for a k-ary parent; rank+1 keeps rank in range.
  return comm::Topology({comm::TopologyKind::KAry, fanout}, rank + 1)
      .parent_of(rank);
}

std::vector<std::uint32_t> Iccl::subtree_of(std::uint32_t rank,
                                            std::uint32_t size,
                                            std::uint32_t fanout) {
  return comm::Topology({comm::TopologyKind::KAry, fanout}, size)
      .subtree_of(rank);
}

Iccl::Iccl(cluster::Process& self, Params params)
    : self_(self),
      params_(std::move(params)),
      topo_(params_.topology, params_.size) {
  expected_children_ = topo_.children_of(params_.rank);
  // Every node (including leaves) reports SetupUp; we expect one per child.
  setups_pending_ = static_cast<int>(expected_children_.size());
}

void Iccl::start(std::function<void(Status)> subtree_ready) {
  subtree_ready_ = std::move(subtree_ready);

  // Endpoint initialization cost (socket setup, registration with the
  // RM-provided bootstrap info).
  const sim::Time init_cost = self_.machine().costs().fabric_endpoint_init;
  self_.post(init_cost, [this] {
    if (!expected_children_.empty()) {
      const Status st =
          self_.listen(params_.port, [this](cluster::ChannelPtr ch) {
            // Child link; claim routing, wait for its Register.
            self_.set_channel_handler(
                ch,
                [this](const cluster::ChannelPtr& c, cluster::Message m) {
                  on_fabric_message(c, std::move(m));
                },
                [this](const cluster::ChannelPtr&) {
                  // A lost child link during launch is fatal for the
                  // session; surface once via the ready callback.
                  if (!ready_fired_ && subtree_ready_) {
                    ready_fired_ = true;
                    subtree_ready_(Status(Rc::Esubcom, "fabric child lost"));
                  }
                });
          });
      if (!st.is_ok() && subtree_ready_) {
        ready_fired_ = true;
        subtree_ready_(st);
        return;
      }
    }
    if (is_root()) {
      parent_linked_ = true;
      maybe_subtree_ready();
    } else {
      connect_parent(kConnectRetries);
    }
  });
}

void Iccl::connect_parent(int attempts_left) {
  const auto parent_rank = topo_.parent_of(params_.rank);
  assert(parent_rank.has_value());
  const std::string& host = params_.hosts.at(*parent_rank);
  self_.connect(host, params_.port, [this, attempts_left](
                                        Status st, cluster::ChannelPtr ch) {
    if (!st.is_ok()) {
      if (attempts_left > 0) {
        // Exponential backoff up to a cap: the RM's bulk launch brings all
        // daemons up near-simultaneously, but the ad hoc rsh strategies
        // stagger daemon start times across *seconds* at scale, so a
        // fixed-short window would wrongly declare the parent dead while
        // its subtree is still being rsh-launched. The capped budget
        // (~15 s total) still bounds genuinely-dead-parent detection.
        const int used = kConnectRetries - attempts_left;
        sim::Time delay = kRetryDelay << std::min(used, 8);
        if (delay > kRetryDelayCap) delay = kRetryDelayCap;
        self_.post(delay, [this, attempts_left] {
          connect_parent(attempts_left - 1);
        });
      } else if (subtree_ready_ && !ready_fired_) {
        ready_fired_ = true;
        subtree_ready_(Status(Rc::Esubcom, "cannot reach fabric parent"));
      }
      return;
    }
    parent_ = ch;
    self_.set_channel_handler(
        ch,
        [this](const cluster::ChannelPtr& c, cluster::Message m) {
          on_fabric_message(c, std::move(m));
        },
        [this](const cluster::ChannelPtr&) {
          parent_ = nullptr;  // session teardown: parent went away
        });
    self_.send(ch, encode_frame(static_cast<std::uint8_t>(Kind::Register), 0,
                                params_.rank, {}));
    parent_linked_ = true;
    maybe_subtree_ready();
  });
}

void Iccl::on_fabric_message(const cluster::ChannelPtr& ch,
                             cluster::Message m) {
  auto frame = decode_frame(m);
  if (!frame) return;
  // Per-message handling cost inside the daemon's collective layer.
  self_.post(self_.machine().costs().iccl_msg_handle,
             [this, ch, frame = std::move(*frame)]() mutable {
               switch (static_cast<Kind>(frame.kind)) {
                 case Kind::Register:
                   handle_register(ch, frame.src);
                   break;
                 case Kind::SetupUp:
                   handle_setup_up();
                   break;
                 case Kind::Bcast:
                   if (!frame.entries.empty()) {
                     handle_bcast(frame.tag,
                                  std::move(frame.entries.front().second));
                   }
                   break;
                 case Kind::GatherUp:
                   handle_gather_up(frame.tag, std::move(frame.entries));
                   break;
                 case Kind::Scatter:
                   handle_scatter(frame.tag, std::move(frame.entries));
                   break;
               }
             });
}

void Iccl::handle_register(const cluster::ChannelPtr& ch,
                           std::uint32_t rank) {
  children_[rank] = ch;
  maybe_subtree_ready();
}

void Iccl::handle_setup_up() {
  setups_pending_ -= 1;
  maybe_subtree_ready();
}

void Iccl::maybe_subtree_ready() {
  if (ready_fired_) return;
  if (!parent_linked_) return;
  if (children_.size() != expected_children_.size()) return;
  if (setups_pending_ > 0) return;
  ready_fired_ = true;
  if (!is_root() && parent_ != nullptr) {
    send_up(encode_frame(static_cast<std::uint8_t>(Kind::SetupUp), 0,
                         params_.rank, {}));
  }
  if (subtree_ready_) subtree_ready_(Status::ok());
}

void Iccl::handle_bcast(std::uint32_t tag, Bytes data) {
  // Fan-out sends serialize on this daemon's CPU: the k-th child's copy
  // leaves after k message-handling quanta. This is the per-level cost that
  // makes T(collective) grow with fan-out (swept in bench_ablation_iccl).
  const sim::Time quantum = self_.machine().costs().iccl_msg_handle;
  int k = 0;
  for (auto& [rank, ch] : children_) {
    cluster::ChannelPtr child = ch;
    self_.post(static_cast<sim::Time>(k++) * quantum, [this, child, tag,
                                                       data] {
      self_.send(child, encode_frame(static_cast<std::uint8_t>(Kind::Bcast),
                                     tag, params_.rank, {{0, data}}));
    });
  }
  if (on_bcast_) on_bcast_(tag, data);
}

void Iccl::broadcast(std::uint32_t tag, Bytes data) {
  assert(is_root() && "broadcast must originate at the ICCL root");
  handle_bcast(tag, std::move(data));
}

Iccl::GatherState& Iccl::gather_state(std::uint32_t tag) {
  auto it = gathers_.find(tag);
  if (it == gathers_.end()) {
    GatherState st;
    st.children_pending = static_cast<int>(expected_children_.size());
    it = gathers_.emplace(tag, std::move(st)).first;
  }
  return it->second;
}

void Iccl::contribute(std::uint32_t tag, Bytes data) {
  GatherState& st = gather_state(tag);
  assert(!st.own_done && "one contribution per rank per gather round");
  st.own_done = true;
  st.acc.emplace_back(params_.rank, std::move(data));
  flush_gather(tag);
}

void Iccl::handle_gather_up(
    std::uint32_t tag, std::vector<std::pair<std::uint32_t, Bytes>> entries) {
  GatherState& st = gather_state(tag);
  st.children_pending -= 1;
  for (auto& e : entries) st.acc.push_back(std::move(e));
  flush_gather(tag);
}

void Iccl::flush_gather(std::uint32_t tag) {
  GatherState& st = gather_state(tag);
  if (!st.own_done || st.children_pending > 0) return;
  std::sort(st.acc.begin(), st.acc.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (is_root()) {
    auto acc = std::move(st.acc);
    gathers_.erase(tag);  // round complete; allow reuse of the tag
    if (on_gather_) on_gather_(tag, std::move(acc));
    return;
  }
  send_up(encode_frame(static_cast<std::uint8_t>(Kind::GatherUp), tag,
                       params_.rank, st.acc));
  gathers_.erase(tag);
}

void Iccl::scatter(std::uint32_t tag, std::vector<Bytes> parts) {
  assert(is_root());
  std::vector<std::pair<std::uint32_t, Bytes>> entries;
  entries.reserve(parts.size());
  for (std::uint32_t r = 0; r < parts.size(); ++r) {
    entries.emplace_back(r, std::move(parts[r]));
  }
  handle_scatter(tag, std::move(entries));
}

void Iccl::handle_scatter(
    std::uint32_t tag, std::vector<std::pair<std::uint32_t, Bytes>> entries) {
  // Partition by child subtree; deliver own part locally. Child sends go
  // through the same serialized-send path as broadcast so that collectives
  // issued in one event preserve their issue order on the wire.
  const sim::Time quantum = self_.machine().costs().iccl_msg_handle;
  int k = 0;
  for (std::uint32_t child : expected_children_) {
    auto sub = topo_.subtree_of(child);
    std::vector<std::pair<std::uint32_t, Bytes>> part;
    for (auto& [rank, data] : entries) {
      if (std::binary_search(sub.begin(), sub.end(), rank)) {
        part.emplace_back(rank, data);
      }
    }
    if (!part.empty()) {
      cluster::Message m = encode_frame(
          static_cast<std::uint8_t>(Kind::Scatter), tag, params_.rank, part);
      self_.post(static_cast<sim::Time>(k++) * quantum,
                 [this, child, m = std::move(m)]() mutable {
                   send_to_child(child, std::move(m));
                 });
    }
  }
  for (auto& [rank, data] : entries) {
    if (rank == params_.rank && on_scatter_) on_scatter_(tag, data);
  }
}

void Iccl::send_up(cluster::Message m) {
  if (parent_ != nullptr) self_.send(parent_, std::move(m));
}

void Iccl::send_to_child(std::uint32_t child_rank, cluster::Message m) {
  auto it = children_.find(child_rank);
  if (it != children_.end()) self_.send(it->second, std::move(m));
}

}  // namespace lmon::core
