#include "core/iccl.hpp"

#include <algorithm>
#include <cassert>

#include "cluster/cost_model_registry.hpp"
#include "cluster/machine.hpp"
#include "simkernel/log.hpp"

namespace lmon::core {

namespace {

cluster::Message encode_frame(
    std::uint8_t kind, StreamKey tag, std::uint32_t src,
    const std::vector<std::pair<std::uint32_t, Bytes>>& entries) {
  ByteWriter w;
  w.u8(kind);
  w.u32(tag.session);
  w.u32(tag.tag);
  w.u32(src);
  w.u32(static_cast<std::uint32_t>(entries.size()));
  for (const auto& [rank, data] : entries) {
    w.u32(rank);
    w.blob(data);
  }
  return cluster::Message(std::move(w).take());
}

struct Frame {
  std::uint8_t kind;
  StreamKey tag;
  std::uint32_t src;
  std::vector<std::pair<std::uint32_t, Bytes>> entries;
};

std::optional<Frame> decode_frame(const cluster::Message& m) {
  ByteReader r(m.bytes);
  Frame f;
  auto kind = r.u8();
  auto session = r.u32();
  auto tag = r.u32();
  auto src = r.u32();
  auto count = r.u32();
  if (!kind || !session || !tag || !src || !count) return std::nullopt;
  f.kind = *kind;
  f.tag = StreamKey{*session, *tag};
  f.src = *src;
  f.entries.reserve(*count);
  for (std::uint32_t i = 0; i < *count; ++i) {
    auto rank = r.u32();
    auto data = r.blob();
    if (!rank || !data) return std::nullopt;
    f.entries.emplace_back(*rank, std::move(*data));
  }
  return f;
}

}  // namespace

obs::SpanId Iccl::trace_parent(obs::Tracer& tracer) const {
  return tracer.anchor("daemon:" + params_.session + ":" +
                       std::to_string(params_.rank));
}

std::optional<Iccl::Params> Iccl::params_from_args(
    const std::vector<std::string>& args, std::string_view self_host) {
  return comm::parse_bootstrap(args, self_host);
}

std::vector<std::uint32_t> Iccl::children_of(std::uint32_t rank,
                                             std::uint32_t size,
                                             std::uint32_t fanout) {
  return comm::Topology({comm::TopologyKind::KAry, fanout}, size)
      .children_of(rank);
}

std::optional<std::uint32_t> Iccl::parent_of(std::uint32_t rank,
                                             std::uint32_t fanout) {
  // Size does not matter for a k-ary parent; rank+1 keeps rank in range.
  return comm::Topology({comm::TopologyKind::KAry, fanout}, rank + 1)
      .parent_of(rank);
}

std::vector<std::uint32_t> Iccl::subtree_of(std::uint32_t rank,
                                            std::uint32_t size,
                                            std::uint32_t fanout) {
  return comm::Topology({comm::TopologyKind::KAry, fanout}, size)
      .subtree_of(rank);
}

Iccl::Iccl(cluster::Process& self, Params params)
    : self_(self),
      params_(std::move(params)),
      topo_(params_.topology, params_.size) {
  expected_children_ = topo_.children_of(params_.rank);
  // Every node (including leaves) reports SetupUp; we expect one per child.
  setups_pending_ = static_cast<int>(expected_children_.size());
  // Threshold resolution order: an explicit session threshold wins; else the
  // named platform profile's default (so every daemon agrees with the
  // engine-side tuner about what "platform default" means, even when the
  // machine it runs on is calibrated differently); else this machine's costs.
  if (params_.rndv_threshold != 0) {
    rndv_threshold_ = params_.rndv_threshold;
  } else {
    std::optional<cluster::CostModel> profile;
    if (!params_.platform.empty()) {
      profile = cluster::CostModelRegistry::builtin().find(params_.platform);
    }
    rndv_threshold_ = profile
                          ? profile->iccl_rndv_threshold_bytes
                          : self_.machine().costs().iccl_rndv_threshold_bytes;
  }
  if (rndv_threshold_ == 0) rndv_threshold_ = 1;
  heal_ = params_.heal;
  heal_grace_ = params_.heal_grace_ms != 0 ? sim::ms(params_.heal_grace_ms)
                                           : kHealGraceDefault;
  parent_rank_ = topo_.parent_of(params_.rank).value_or(params_.rank);
}

void Iccl::start(std::function<void(Status)> subtree_ready) {
  subtree_ready_ = std::move(subtree_ready);

  // Endpoint initialization cost (socket setup, registration with the
  // RM-provided bootstrap info).
  const sim::Time init_cost = self_.machine().costs().fabric_endpoint_init;
  self_.post(init_cost, [this] {
    if (!expected_children_.empty()) {
      const Status st =
          self_.listen(params_.port, [this](cluster::ChannelPtr ch) {
            // Child link; claim routing, wait for its Register.
            self_.set_channel_handler(
                ch,
                [this](const cluster::ChannelPtr& c, cluster::Message m) {
                  on_fabric_message(c, std::move(m));
                },
                [this](const cluster::ChannelPtr& c) {
                  // A lost child link during launch is fatal for the
                  // session; surface once via the ready callback. After
                  // ready, drop the child from the fan-out so in-flight
                  // rendezvous rounds do not wait on its CTS forever.
                  if (!ready_fired_ && subtree_ready_) {
                    ready_fired_ = true;
                    subtree_ready_(Status(Rc::Esubcom, "fabric child lost"));
                  }
                  on_child_lost(c);
                });
          });
      if (!st.is_ok() && subtree_ready_) {
        ready_fired_ = true;
        subtree_ready_(st);
        return;
      }
    }
    if (is_root()) {
      parent_linked_ = true;
      maybe_subtree_ready();
    } else {
      connect_parent(kConnectRetries);
    }
  });
}

void Iccl::connect_parent(int attempts_left) {
  const auto parent_rank = topo_.parent_of(params_.rank);
  assert(parent_rank.has_value());
  const std::string& host = params_.hosts.at(*parent_rank);
  self_.connect(host, params_.port, [this, attempts_left,
                                     parent_rank = *parent_rank](
                                        Status st, cluster::ChannelPtr ch) {
    if (!st.is_ok()) {
      if (attempts_left > 0) {
        self_.machine().count("iccl.connect_retries");
        if (obs::Tracer* tracer = self_.machine().tracer();
            tracer != nullptr) {
          tracer->instant("iccl.connect_retry", "iccl",
                          static_cast<int>(self_.node().id()), self_.pid(),
                          obs::kNoSpan,
                          "rank=" + std::to_string(params_.rank) +
                              " left=" + std::to_string(attempts_left - 1));
        }
        // Exponential backoff up to a cap: the RM's bulk launch brings all
        // daemons up near-simultaneously, but the ad hoc rsh strategies
        // stagger daemon start times across *seconds* at scale, so a
        // fixed-short window would wrongly declare the parent dead while
        // its subtree is still being rsh-launched. The capped budget
        // (~15 s total) still bounds genuinely-dead-parent detection.
        const int used = kConnectRetries - attempts_left;
        sim::Time delay = kRetryDelay << std::min(used, 8);
        if (delay > kRetryDelayCap) delay = kRetryDelayCap;
        self_.post(delay, [this, attempts_left] {
          connect_parent(attempts_left - 1);
        });
      } else if (subtree_ready_ && !ready_fired_) {
        ready_fired_ = true;
        subtree_ready_(Status(Rc::Esubcom, "cannot reach fabric parent"));
      }
      return;
    }
    parent_ = ch;
    parent_rank_ = parent_rank;
    self_.set_channel_handler(
        ch,
        [this](const cluster::ChannelPtr& c, cluster::Message m) {
          on_fabric_message(c, std::move(m));
        },
        [this](const cluster::ChannelPtr&) {
          // Session teardown: parent went away. In heal mode a post-ready
          // parent loss is a comm-daemon death to recover from instead.
          parent_ = nullptr;
          if (heal_ && ready_fired_ && !left_) begin_reparent();
        });
    self_.send(ch, encode_frame(static_cast<std::uint8_t>(Kind::Register), 0,
                                params_.rank, {}));
    parent_linked_ = true;
    maybe_subtree_ready();
  });
}

void Iccl::on_fabric_message(const cluster::ChannelPtr& ch,
                             cluster::Message m) {
  auto frame = decode_frame(m);
  if (!frame) return;
  const std::size_t tap_bytes =
      frame->entries.empty() ? 0 : frame->entries.front().second.size();
  if (frame_tap_) {
    frame_tap_(static_cast<Kind>(frame->kind), frame->tag.tag, frame->src,
               tap_bytes);
  }
  if (keyed_frame_tap_) {
    keyed_frame_tap_(static_cast<Kind>(frame->kind), frame->tag, frame->src,
                     tap_bytes);
  }
  // Per-message handling cost inside the daemon's collective layer. Eager
  // payload frames (broadcast, scatter and whole-subtree gather-up alike)
  // additionally pay the bounce-buffer copy-out; rendezvous chunks retire a
  // pre-registered zero-copy buffer instead, which is what makes the chunk
  // path cheap per byte in both directions.
  const auto& costs = self_.machine().costs();
  const Kind kind = static_cast<Kind>(frame->kind);
  sim::Time handle_cost = costs.iccl_msg_handle;
  if (kind == Kind::RndvChunk || kind == Kind::GatherChunk) {
    handle_cost = costs.iccl_chunk_handle;
  } else if (kind == Kind::Bcast || kind == Kind::Scatter ||
             kind == Kind::GatherUp) {
    std::size_t payload_bytes = 0;
    for (const auto& [rank, data] : frame->entries) {
      payload_bytes += data.size();
    }
    handle_cost += eager_copy_cost(payload_bytes);
  }
  self_.post(handle_cost, [this, ch, frame = std::move(*frame)]() mutable {
    switch (static_cast<Kind>(frame.kind)) {
      case Kind::Register:
        handle_register(ch, frame.src);
        break;
      case Kind::SetupUp:
        handle_setup_up();
        break;
      case Kind::Bcast:
        if (!frame.entries.empty()) {
          handle_bcast(frame.tag, std::move(frame.entries.front().second));
        }
        break;
      case Kind::GatherUp:
        handle_gather_up(frame.tag, frame.src, std::move(frame.entries));
        break;
      case Kind::Scatter:
        handle_scatter(frame.tag, std::move(frame.entries));
        break;
      case Kind::RndvRts:
        if (!frame.entries.empty()) {
          ByteReader r(frame.entries.front().second);
          handle_rndv_rts(frame.tag, frame.entries.front().first,
                          r.u32().value_or(0));
        }
        break;
      case Kind::RndvCts:
        handle_rndv_cts(frame.tag, frame.src);
        break;
      case Kind::RndvChunk:
        if (!frame.entries.empty()) {
          handle_rndv_chunk(frame.tag, frame.entries.front().first,
                            std::move(frame.entries.front().second));
        }
        break;
      case Kind::GatherRts:
        handle_gather_rts(frame.tag, frame.src, std::move(frame.entries));
        break;
      case Kind::GatherCts:
        handle_gather_cts(frame.tag);
        break;
      case Kind::GatherChunk:
        if (!frame.entries.empty()) {
          handle_gather_chunk(frame.tag, frame.entries.front().first,
                              std::move(frame.entries.front().second));
        }
        break;
      case Kind::GatherDrop:
        handle_gather_drop(frame.tag, frame.entries);
        break;
      case Kind::Reattach:
        if (!frame.entries.empty()) {
          handle_reattach(ch, frame.src, frame.entries.front().second);
        }
        break;
      case Kind::GatherResume:
        handle_gather_resume(frame.tag, frame.entries);
        break;
      case Kind::GatherDone:
        handle_gather_done(frame.tag);
        break;
      case Kind::Leave:
        handle_leave(frame.src);
        break;
    }
  });
}

void Iccl::handle_register(const cluster::ChannelPtr& ch,
                           std::uint32_t rank) {
  children_[rank] = ch;
  maybe_subtree_ready();
}

void Iccl::handle_setup_up() {
  setups_pending_ -= 1;
  maybe_subtree_ready();
}

void Iccl::maybe_subtree_ready() {
  if (ready_fired_) return;
  if (!parent_linked_) return;
  if (children_.size() != expected_children_.size()) return;
  if (setups_pending_ > 0) return;
  ready_fired_ = true;
  if (!is_root() && parent_ != nullptr) {
    send_up(encode_frame(static_cast<std::uint8_t>(Kind::SetupUp), 0,
                         params_.rank, {}));
  }
  if (subtree_ready_) subtree_ready_(Status::ok());
}

bool Iccl::use_rendezvous(std::size_t payload_bytes) const {
  return payload_bytes >= rndv_threshold_ && payload_bytes > 0;
}

sim::Time Iccl::eager_copy_cost(std::size_t bytes) const {
  const sim::Time per_kb = self_.machine().costs().iccl_eager_copy_per_kb;
  return static_cast<sim::Time>(static_cast<double>(per_kb) *
                                static_cast<double>(bytes) / 1024.0);
}

void Iccl::eager_fanout(StreamKey tag,
                        const std::shared_ptr<const Bytes>& payload) {
  // Fan-out sends serialize on this daemon's CPU: the k-th child's copy
  // leaves after k quanta, and each quantum stretches with the payload
  // (the per-child copy into the send buffer). This is the per-level cost
  // that makes eager T(collective) grow with fan-out and payload size
  // (swept in bench_ablation_iccl; rendezvous exists to beat it).
  const sim::Time quantum = self_.machine().costs().iccl_msg_handle +
                            eager_copy_cost(payload->size());
  count_mux(tag, "eager_frames", static_cast<double>(children_.size()));
  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    tracer->instant("iccl.eager_fanout", "iccl",
                    static_cast<int>(self_.node().id()), self_.pid(),
                    trace_parent(*tracer),
                    "tag=" + tag.str() +
                        " children=" + std::to_string(children_.size()) +
                        " bytes=" + std::to_string(payload->size()));
  }
  int k = 0;
  for (auto& [rank, ch] : children_) {
    cluster::ChannelPtr child = ch;
    self_.post(static_cast<sim::Time>(k++) * quantum, [this, child, tag,
                                                       payload] {
      self_.send(child, encode_frame(static_cast<std::uint8_t>(Kind::Bcast),
                                     tag, params_.rank, {{0, *payload}}));
    });
  }
}

void Iccl::handle_bcast(StreamKey tag, Bytes data) {
  // Heal replay duplicate: this round was already delivered here (and fanned
  // out); drop it entirely so neither the handler nor the subtree sees it
  // twice. Tags are unique per round, so the ring is an exact guard.
  if (heal_ && bcast_history_.count(tag) != 0) return;
  // This node holds the complete payload (root issue, or an eager frame
  // arrived). One shared buffer backs every per-child send lambda.
  auto payload = std::make_shared<const Bytes>(std::move(data));
  if (!children_.empty()) {
    if (use_rendezvous(payload->size())) {
      const std::uint32_t chunk =
          self_.machine().costs().iccl_rndv_chunk_bytes;
      const auto total = static_cast<std::uint32_t>(payload->size());
      const std::uint32_t nchunks = (total + chunk - 1) / chunk;
      RndvSend& st = rndv_open_send(tag, nchunks, total);
      // The root has every chunk ready up front; they stream (round-robin
      // across the children) as soon as the last CTS arrives.
      st.ready.reserve(nchunks);
      for (std::uint32_t seq = 0; seq < nchunks; ++seq) {
        const std::size_t begin = static_cast<std::size_t>(seq) * chunk;
        const std::size_t len = std::min<std::size_t>(chunk,
                                                      total - begin);
        st.ready.push_back(std::make_shared<const Bytes>(
            payload->begin() + static_cast<std::ptrdiff_t>(begin),
            payload->begin() + static_cast<std::ptrdiff_t>(begin + len)));
      }
      rndv_flush(tag, st);
    } else {
      eager_fanout(tag, payload);
    }
  }
  if (heal_) heal_record_bcast(tag, payload);
  deliver_bcast(tag, *payload);
}

void Iccl::broadcast(StreamKey tag, Bytes data) {
  assert(is_root() && "broadcast must originate at the ICCL root");
  handle_bcast(tag, std::move(data));
}

// --- rendezvous (RTS/CTS + pipelined chunks) -----------------------------

Iccl::RndvSend& Iccl::rndv_open_send(StreamKey tag, std::uint32_t nchunks,
                                     std::uint32_t total) {
  RndvSend& st = rndv_sends_[tag] = RndvSend{};
  st.nchunks = nchunks;
  st.total = total;
  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    st.span = tracer->begin_span(
        "iccl.rndv_send", "iccl", static_cast<int>(self_.node().id()),
        self_.pid(), trace_parent(*tracer),
        "tag=" + tag.str() + " chunks=" + std::to_string(nchunks) +
            " bytes=" + std::to_string(total));
  }
  // RTS frames fan out serialized like eager sends (they are ordinary
  // messages), but they are tiny: no payload-copy term.
  const sim::Time quantum = self_.machine().costs().iccl_msg_handle;
  int k = 0;
  for (auto& [rank, ch] : children_) {
    st.cts_pending.insert(rank);
    cluster::ChannelPtr child = ch;
    count_mux(tag, "rts_sent");
    self_.post(static_cast<sim::Time>(k++) * quantum,
               [this, child, tag, nchunks, total] {
                 ByteWriter w;
                 w.u32(total);
                 self_.send(child,
                            encode_frame(
                                static_cast<std::uint8_t>(Kind::RndvRts), tag,
                                params_.rank, {{nchunks, std::move(w).take()}}));
               });
  }
  return st;
}

void Iccl::handle_rndv_rts(StreamKey tag, std::uint32_t nchunks,
                           std::uint32_t total) {
  // Heal replay of a round this node already delivered: ignore it rather
  // than re-opening receive/relay state the subtree already consumed.
  if (heal_ && bcast_history_.count(tag) != 0) return;
  if (nchunks == 0) {
    // Degenerate empty rendezvous: deliver immediately.
    if (heal_) heal_record_bcast(tag, std::make_shared<const Bytes>());
    deliver_bcast(tag, Bytes{});
    return;
  }
  RndvRecv& rc = rndv_recvs_[tag];
  rc.nchunks = nchunks;
  rc.assembled.reserve(total);
  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    rc.span = tracer->begin_span(
        "iccl.rndv_recv", "iccl", static_cast<int>(self_.node().id()),
        self_.pid(), trace_parent(*tracer),
        "tag=" + tag.str() + " chunks=" + std::to_string(nchunks));
  }
  // Cut-through: open the downstream round now so grandchild CTS exchanges
  // overlap the payload still streaming toward this node.
  if (!children_.empty()) rndv_open_send(tag, nchunks, total);
  // Clear the parent to stream.
  count_mux(tag, "cts_sent");
  send_up(encode_frame(static_cast<std::uint8_t>(Kind::RndvCts), tag,
                       params_.rank, {}));
}

void Iccl::handle_rndv_cts(StreamKey tag, std::uint32_t src) {
  auto it = rndv_sends_.find(tag);
  if (it == rndv_sends_.end()) return;
  it->second.cts_pending.erase(src);
  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    tracer->instant("iccl.cts_received", "iccl",
                    static_cast<int>(self_.node().id()), self_.pid(),
                    it->second.span,
                    "tag=" + tag.str() +
                        " from=" + std::to_string(src) + " pending=" +
                        std::to_string(it->second.cts_pending.size()));
  }
  if (it->second.cts_pending.empty()) {
    it->second.streaming = true;
    rndv_flush(tag, it->second);
  }
}

void Iccl::rndv_flush(StreamKey tag, RndvSend& st) {
  if (!st.streaming) return;
  // Serialized chunk posts: each (chunk, child) send occupies the CPU for
  // one chunk-handle quantum, but unlike eager there is no per-byte copy -
  // chunks go out of the one registered payload buffer. Levels overlap
  // because a relay forwards chunk j while its parent still streams j+1.
  const sim::Time occ = self_.machine().costs().iccl_chunk_handle;
  const sim::Time now = self_.sim().now();
  while (st.next_seq < st.ready.size()) {
    const std::uint32_t seq = st.next_seq++;
    std::shared_ptr<const Bytes> chunk = st.ready[seq];
    for (auto& [rank, ch] : children_) {
      cluster::ChannelPtr child = ch;
      sim::Time depart = std::max(st.cursor, now);
      self_.post(depart - now, [this, child, tag, seq, chunk] {
        self_.send(child,
                   encode_frame(static_cast<std::uint8_t>(Kind::RndvChunk),
                                tag, params_.rank, {{seq, *chunk}}));
      });
      st.cursor = depart + occ;
    }
  }
  if (st.next_seq == st.nchunks) {
    if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
      tracer->end_span(st.span);
    }
    rndv_sends_.erase(tag);
  }
}

void Iccl::handle_rndv_chunk(StreamKey tag, std::uint32_t seq,
                             Bytes data) {
  auto it = rndv_recvs_.find(tag);
  if (it == rndv_recvs_.end()) return;
  RndvRecv& rc = it->second;
  if (seq != rc.received) return;  // FIFO channels make this unreachable
  rc.received += 1;
  rc.assembled.insert(rc.assembled.end(), data.begin(), data.end());
  count_mux(tag, "chunks_received");
  // Relay toward this node's own children (cut-through forwarding).
  auto sit = rndv_sends_.find(tag);
  if (sit != rndv_sends_.end()) {
    count_mux(tag, "chunks_relayed");
    if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
      tracer->instant("iccl.chunk_relay", "iccl",
                      static_cast<int>(self_.node().id()), self_.pid(),
                      sit->second.span,
                      "tag=" + tag.str() +
                          " seq=" + std::to_string(seq));
    }
    sit->second.ready.push_back(
        std::make_shared<const Bytes>(std::move(data)));
    rndv_flush(tag, sit->second);
  }
  if (rc.received == rc.nchunks) {
    Bytes assembled = std::move(rc.assembled);
    if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
      tracer->end_span(rc.span,
                       "bytes=" + std::to_string(assembled.size()));
    }
    rndv_recvs_.erase(it);
    if (heal_) {
      auto payload = std::make_shared<const Bytes>(std::move(assembled));
      heal_record_bcast(tag, payload);
      deliver_bcast(tag, *payload);
      return;
    }
    deliver_bcast(tag, assembled);
  }
}

void Iccl::on_child_lost(const cluster::ChannelPtr& ch) {
  std::optional<std::uint32_t> lost;
  for (const auto& [rank, link] : children_) {
    if (link == ch) {
      lost = rank;
      break;
    }
  }
  if (!lost) return;
  children_.erase(*lost);
  self_.machine().count("iccl.children_lost");
  self_.machine().flight_record(self_.pid(), "iccl",
                                "child rank " + std::to_string(*lost) +
                                    " lost");
  // Any rendezvous round still waiting on the dead child's CTS must not
  // stall the surviving children.
  for (auto it = rndv_sends_.begin(); it != rndv_sends_.end();) {
    RndvSend& st = it->second;
    st.cts_pending.erase(*lost);
    if (!st.streaming && st.cts_pending.empty()) {
      st.streaming = true;
      const StreamKey tag = it->first;
      rndv_flush(tag, st);
      // rndv_flush may erase the state; restart iteration defensively.
      it = rndv_sends_.upper_bound(tag);
    } else {
      ++it;
    }
  }
  // Heal mode: do not drop the dead child's subtree yet. Open a heal slot
  // and give its orphans a grace window to reattach; only what stays
  // unclaimed when the slot resolves is retracted.
  if (heal_ && ready_fired_) {
    heal_child_lost(*lost);
    return;
  }
  // Gather rounds: forgive the child's announce, and drop any of its
  // announced origins whose payload did not finish arriving - surviving
  // contributions must still be delivered.
  for (auto it = gathers_.begin(); it != gathers_.end();) {
    const StreamKey tag = it->first;
    GatherState& st = it->second;
    if (gather_forget_child(tag, st, *lost)) {
      // May announce, forward an eager frame, deliver at the root, or
      // retire a relay - all of which can erase the state.
      flush_gather(tag);
      gather_relay_maybe_done(tag);
      it = gathers_.upper_bound(tag);
    } else {
      ++it;
    }
  }
}

Iccl::GatherState& Iccl::gather_state(StreamKey tag) {
  auto it = gathers_.find(tag);
  if (it == gathers_.end()) {
    GatherState st;
    // Seed from the *live* children: a child that already died must not be
    // waited for (its whole subtree's contributions are gone with it).
    for (const auto& [rank, ch] : children_) st.children_pending.insert(rank);
    // Open heal slots gate new rounds too: the dead child's orphans may
    // reattach and contribute to this round before the slot resolves.
    for (const auto& [dead, slot] : heal_slots_) st.healing.insert(dead);
    it = gathers_.emplace(tag, std::move(st)).first;
  }
  return it->second;
}

void Iccl::contribute(StreamKey tag, Bytes data) {
  GatherState& st = gather_state(tag);
  assert(!st.own_done && "one contribution per rank per gather round");
  st.own_done = true;
  // Injected-once accounting: gather payload enters the fabric exactly here
  // (relay hops count iccl.gather_bytes_relayed instead; see metrics.hpp).
  count_mux(tag, "gather_contributions");
  count_mux(tag, "gather_bytes_contributed",
            static_cast<double>(data.size()));
  st.acc.emplace_back(params_.rank, std::move(data));
  if (heal_) st.retained[params_.rank] = st.acc.back().second;
  flush_gather(tag);
}

void Iccl::handle_gather_up(
    StreamKey tag, std::uint32_t src,
    std::vector<std::pair<std::uint32_t, Bytes>> entries) {
  GatherState& st = gather_state(tag);
  st.children_pending.erase(src);
  if (heal_) {
    // Re-sent eager accumulation from a reattached orphan: keep only the
    // origins this node has not seen yet (a prior partial path may have
    // delivered some already via a different route).
    entries.erase(
        std::remove_if(entries.begin(), entries.end(),
                       [&](const auto& e) {
                         return st.retained.count(e.first) != 0 ||
                                st.origin_bytes.count(e.first) != 0 ||
                                st.assembling.count(e.first) != 0 ||
                                st.dropped.count(e.first) != 0;
                       }),
        entries.end());
    if (st.retired && entries.empty()) return;
    for (auto& e : entries) {
      st.retained[e.first] = e.second;
      st.acc.push_back(std::move(e));
    }
  } else {
    for (auto& e : entries) st.acc.push_back(std::move(e));
  }
  flush_gather(tag);
}

std::size_t Iccl::gather_subtree_bytes(const GatherState& st) const {
  std::size_t total = 0;
  for (const auto& [rank, data] : st.acc) total += data.size();
  for (const auto& [origin, sz] : st.origin_bytes) total += sz;
  return total;
}

void Iccl::flush_gather(StreamKey tag) {
  auto it = gathers_.find(tag);
  if (it == gathers_.end()) return;
  GatherState& st = it->second;
  if (!st.own_done || !st.children_pending.empty() || !st.healing.empty()) {
    return;
  }
  if (is_root()) {
    gather_check_complete(tag);
    return;
  }
  if (st.announced) return;  // rendezvous round already in flight
  if (st.retired) return;    // kept only for heal replay
  // Protocol decision on the *subtree total*: any rendezvous child implies
  // the subtree already crossed the threshold (totals are monotone up the
  // tree), so the eager branch only ever carries whole-entry accumulations.
  if (!st.rndv_children.empty() ||
      use_rendezvous(gather_subtree_bytes(st))) {
    gather_announce(tag, st);
    return;
  }
  std::sort(st.acc.begin(), st.acc.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  send_up(encode_frame(static_cast<std::uint8_t>(Kind::GatherUp), tag,
                       params_.rank, st.acc));
  if (heal_) {
    heal_retire_gather(tag, st, /*eager=*/true);
  } else {
    gathers_.erase(it);
  }
}

// --- rendezvous gather (upstream RTS/CTS + cut-through chunk relay) ------

void Iccl::gather_announce(StreamKey tag, GatherState& st) {
  st.announced = true;
  std::sort(st.acc.begin(), st.acc.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  // RTS carries (origin, total bytes) for every origin in this subtree:
  // the locally-held entries plus everything rendezvous children announced.
  std::vector<std::pair<std::uint32_t, Bytes>> origins;
  origins.reserve(st.acc.size() + st.origin_bytes.size());
  for (const auto& [rank, data] : st.acc) {
    ByteWriter w;
    w.u32(static_cast<std::uint32_t>(data.size()));
    origins.emplace_back(rank, std::move(w).take());
  }
  for (const auto& [origin, sz] : st.origin_bytes) {
    ByteWriter w;
    w.u32(sz);
    origins.emplace_back(origin, std::move(w).take());
  }
  std::sort(origins.begin(), origins.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  count_mux(tag, "gather_rts_sent");
  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    st.span = tracer->begin_span(
        "iccl.gather_stream", "iccl", static_cast<int>(self_.node().id()),
        self_.pid(), trace_parent(*tracer),
        "tag=" + tag.str() +
            " origins=" + std::to_string(origins.size()) + " bytes=" +
            std::to_string(gather_subtree_bytes(st)));
  }
  send_up(encode_frame(static_cast<std::uint8_t>(Kind::GatherRts), tag,
                       params_.rank, origins));
}

void Iccl::handle_gather_rts(
    StreamKey tag, std::uint32_t src,
    std::vector<std::pair<std::uint32_t, Bytes>> entries) {
  GatherState& st = gather_state(tag);
  st.children_pending.erase(src);
  st.rndv_children.insert(src);
  std::set<std::uint32_t>& owned = st.child_origins[src];
  // A re-announce (reattached orphan repeating its RTS) must not reset the
  // receive progress of origins whose bytes partially arrived via the old
  // route; collect resume offsets for them instead.
  bool reannounce = false;
  if (heal_) {
    for (const auto& [origin, blob] : entries) {
      if (st.origin_bytes.count(origin) != 0) {
        reannounce = true;
        break;
      }
    }
  }
  std::vector<std::pair<std::uint32_t, Bytes>> resume;
  for (const auto& [origin, blob] : entries) {
    ByteReader r(blob);
    const std::uint32_t sz = r.u32().value_or(0);
    std::uint32_t got = 0;
    if (heal_ && st.origin_bytes.count(origin) != 0) {
      owned.insert(origin);
      if (is_root()) {
        auto a = st.assembling.find(origin);
        got = a == st.assembling.end()
                  ? 0
                  : static_cast<std::uint32_t>(a->second.size());
      } else {
        auto rem = st.origin_remaining.find(origin);
        const std::uint32_t left =
            rem == st.origin_remaining.end() ? sz : rem->second;
        got = sz - std::min(sz, left);
      }
    } else {
      st.origin_bytes[origin] = sz;
      st.origin_remaining[origin] = sz;
      owned.insert(origin);
    }
    if (reannounce) {
      ByteWriter w;
      w.u32(got);
      resume.emplace_back(origin, std::move(w).take());
    }
  }
  if (heal_ && ready_fired_ && heal_slots_.count(src) != 0) {
    // The announce raced this child's own death (frames already in the
    // per-direction FIFO when the link dropped). The heal slot owns the
    // cleanup; just make this round wait for the slot's resolution.
    st.healing.insert(src);
    flush_gather(tag);
    return;
  }
  if (children_.count(src) == 0) {
    // The announce was still in flight when the child's link died: the
    // on_child_lost sweep found nothing to drop, and a CTS would go into a
    // void. Drop the announced-but-unstreamed origins right now instead of
    // waiting for chunks that can never arrive.
    gather_forget_child(tag, st, src);
    flush_gather(tag);
    gather_relay_maybe_done(tag);
    return;
  }
  if (reannounce && (is_root() || st.streaming)) {
    // Resume subsumes CTS: the reattached orphan must continue each origin
    // from the byte offset this node already has, never restart - so it gets
    // a GatherResume (with per-origin offsets) instead of a normal CTS. A
    // fully-retired round answers with offset == size: nothing to re-send.
    for (auto& [origin, blob] : resume) {
      if (st.retired) {
        ByteWriter w;
        w.u32(st.origin_bytes.count(origin) != 0 ? st.origin_bytes[origin]
                                                 : 0);
        blob = std::move(w).take();
      }
    }
    self_.machine().count("iccl.heal.gather_resumes_sent");
    send_to_child(src,
                  encode_frame(static_cast<std::uint8_t>(Kind::GatherResume),
                               tag, params_.rank, resume));
  } else if (is_root()) {
    // The root is the sink: clear this child the moment its announce is
    // processed (no upstream clearance to wait for). Interior nodes instead
    // defer their children's CTS until their own arrives - that chain is
    // the back-pressure that keeps a slow parent from being buried.
    //
    // On a multiplexed tree the clearance is also the fairness gate: with
    // several sessions contending, at most one session's rounds stream at a
    // time and the root hands the clearance round-robin across sessions on
    // round delivery. A single active session always clears immediately.
    if (obs::Tracer* tracer = self_.machine().tracer();
        tracer != nullptr && st.span == obs::kNoSpan) {
      st.span = tracer->begin_span(
          "iccl.gather_assemble", "iccl", static_cast<int>(self_.node().id()),
          self_.pid(), trace_parent(*tracer), "tag=" + tag.str());
    }
    if (st.cleared || mux_can_clear(tag.session)) {
      mux_mark_cleared(tag, st);
      count_mux(tag, "gather_cts_sent");
      send_to_child(src,
                    encode_frame(static_cast<std::uint8_t>(Kind::GatherCts),
                                 tag, params_.rank, {}));
    } else {
      st.grant_waiters.push_back(src);
      count_mux(tag, "mux.cts_deferred");
    }
  }
  flush_gather(tag);
}

void Iccl::handle_gather_cts(StreamKey tag) {
  auto it = gathers_.find(tag);
  if (it == gathers_.end()) return;
  GatherState& st = it->second;
  if (!st.announced || st.streaming) return;
  gather_begin_streaming(tag, st);
  gather_flush(tag, st);
  gather_relay_maybe_done(tag);
}

void Iccl::gather_begin_streaming(StreamKey tag, GatherState& st) {
  st.streaming = true;
  // Clear own rendezvous children (ascending rank; CTS frames are ordinary
  // staggered sends). All children announced before this node did, so the
  // set is final.
  const sim::Time quantum = self_.machine().costs().iccl_msg_handle;
  int k = 0;
  for (std::uint32_t child : st.rndv_children) {
    count_mux(tag, "gather_cts_sent");
    self_.post(static_cast<sim::Time>(k++) * quantum, [this, child, tag] {
      send_to_child(child,
                    encode_frame(static_cast<std::uint8_t>(Kind::GatherCts),
                                 tag, params_.rank, {}));
    });
  }
  // Queue the locally-held entries as chunks (rank order); relayed chunks
  // join the queue behind them as they trickle in.
  const std::uint32_t chunk = self_.machine().costs().iccl_rndv_chunk_bytes;
  for (auto& [rank, data] : st.acc) {
    const auto total = static_cast<std::uint32_t>(data.size());
    for (std::uint32_t begin = 0; begin < total; begin += chunk) {
      const std::uint32_t len = std::min(chunk, total - begin);
      st.outq.emplace_back(
          rank, std::make_shared<const Bytes>(
                    data.begin() + static_cast<std::ptrdiff_t>(begin),
                    data.begin() + static_cast<std::ptrdiff_t>(begin + len)));
    }
  }
  st.acc.clear();
}

void Iccl::gather_flush(StreamKey tag, GatherState& st) {
  if (!st.streaming || st.heal_hold) return;
  // Serialized chunk posts, same cursor discipline as the downstream
  // rendezvous: each send occupies the CPU for one chunk-handle quantum and
  // goes out of a registered buffer (no per-byte copy).
  const sim::Time occ = self_.machine().costs().iccl_chunk_handle;
  const sim::Time now = self_.sim().now();
  // Heal mode pins each posted send to the parent link that existed at
  // schedule time: a chunk scheduled before an adoption must die with the
  // old link, not leak onto the new parent at a stale offset (the resume
  // handshake re-sends it at the right position instead).
  cluster::ChannelPtr up = heal_ ? parent_ : nullptr;
  while (st.next_out < st.outq.size()) {
    auto& [origin, chunk] = st.outq[st.next_out++];
    const sim::Time depart = std::max(st.cursor, now);
    if (heal_) {
      self_.post(depart - now,
                 [this, up, tag, origin = origin, chunk = std::move(chunk)] {
                   if (up != nullptr) {
                     self_.send(up, encode_frame(
                                        static_cast<std::uint8_t>(
                                            Kind::GatherChunk),
                                        tag, params_.rank, {{origin, *chunk}}));
                   }
                 });
    } else {
      self_.post(depart - now,
                 [this, tag, origin = origin, chunk = std::move(chunk)] {
                   send_up(encode_frame(
                       static_cast<std::uint8_t>(Kind::GatherChunk), tag,
                       params_.rank, {{origin, *chunk}}));
                 });
    }
    st.cursor = depart + occ;
  }
}

void Iccl::handle_gather_chunk(StreamKey tag, std::uint32_t origin,
                               Bytes data) {
  auto it = gathers_.find(tag);
  if (it == gathers_.end()) return;  // round retired (late chunk after drop)
  GatherState& st = it->second;
  if (st.dropped.count(origin) != 0) return;
  count_mux(tag, "gather_chunks_received");
  if (is_root()) {
    Bytes& buf = st.assembling[origin];
    buf.insert(buf.end(), data.begin(), data.end());
    gather_check_complete(tag);
    return;
  }
  // Cut-through relay: forward the chunk as-is instead of assembling the
  // child's contribution. These bytes were already counted as contributed
  // at their origin; here they count only as relay traffic.
  count_mux(tag, "gather_chunks_relayed");
  count_mux(tag, "gather_bytes_relayed", static_cast<double>(data.size()));
  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    tracer->instant("iccl.gather_chunk_relay", "iccl",
                    static_cast<int>(self_.node().id()), self_.pid(), st.span,
                    "tag=" + tag.str() +
                        " origin=" + std::to_string(origin) +
                        " bytes=" + std::to_string(data.size()));
  }
  auto rem = st.origin_remaining.find(origin);
  if (rem != st.origin_remaining.end()) {
    rem->second -= std::min(rem->second,
                            static_cast<std::uint32_t>(data.size()));
  }
  if (heal_) {
    // Retain relayed bytes so a future reparent can re-stream them from
    // this node's own copy (the resume handshake asks for a byte offset).
    Bytes& keep = st.retained[origin];
    keep.insert(keep.end(), data.begin(), data.end());
  }
  st.outq.emplace_back(origin,
                       std::make_shared<const Bytes>(std::move(data)));
  gather_flush(tag, st);
  gather_relay_maybe_done(tag);
}

void Iccl::gather_check_complete(StreamKey tag) {
  auto it = gathers_.find(tag);
  if (it == gathers_.end() || !is_root()) return;
  GatherState& st = it->second;
  if (st.retired) return;  // already delivered; kept only for heal replay
  if (!st.own_done || !st.children_pending.empty() || !st.healing.empty()) {
    return;
  }
  for (const auto& [origin, sz] : st.origin_bytes) {
    if (st.dropped.count(origin) != 0) continue;
    auto a = st.assembling.find(origin);
    const std::size_t got = a == st.assembling.end() ? 0 : a->second.size();
    if (got != sz) return;
  }
  std::vector<std::pair<std::uint32_t, Bytes>> out = std::move(st.acc);
  for (auto& [origin, bytes] : st.assembling) {
    if (st.dropped.count(origin) == 0) out.emplace_back(origin,
                                                        std::move(bytes));
  }
  for (const auto& [origin, sz] : st.origin_bytes) {
    // Zero-byte origins stream nothing; they still contributed.
    if (sz == 0 && st.dropped.count(origin) == 0) out.emplace_back(origin,
                                                                   Bytes{});
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    tracer->end_span(st.span, "entries=" + std::to_string(out.size()));
    st.span = obs::kNoSpan;
  }
  mux_release(tag);
  if (heal_) {
    // Tell the tree the round is over so retired replay copies can be freed
    // and a late-reattaching orphan does not re-announce a delivered round.
    for (auto& [rank, ch] : children_) {
      self_.send(ch, encode_frame(static_cast<std::uint8_t>(Kind::GatherDone),
                                  tag, params_.rank, {}));
    }
    heal_retire_gather(tag, st, /*eager=*/false);
  } else {
    gathers_.erase(it);  // round complete; allow reuse of the tag
  }
  deliver_gather(tag, std::move(out));
}

void Iccl::gather_relay_maybe_done(StreamKey tag) {
  auto it = gathers_.find(tag);
  if (it == gathers_.end() || is_root()) return;
  GatherState& st = it->second;
  if (st.retired) return;
  if (!st.announced || !st.streaming || st.heal_hold) return;
  if (!st.healing.empty()) return;
  for (const auto& [origin, remaining] : st.origin_remaining) {
    if (remaining > 0 && st.dropped.count(origin) == 0) return;
  }
  // Everything this subtree announced is scheduled (posted sends keep their
  // own chunk refs); the round state can retire.
  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    tracer->end_span(st.span);
    st.span = obs::kNoSpan;
  }
  if (heal_) {
    heal_retire_gather(tag, st, /*eager=*/false);
  } else {
    gathers_.erase(it);
  }
}

bool Iccl::gather_forget_child(StreamKey tag, GatherState& st,
                               std::uint32_t child) {
  bool touched = st.children_pending.erase(child) > 0;
  if (st.rndv_children.erase(child) > 0) {
    touched = true;
    auto co = st.child_origins.find(child);
    if (co != st.child_origins.end()) {
      for (std::uint32_t origin : co->second) {
        bool complete = false;
        if (is_root()) {
          auto a = st.assembling.find(origin);
          const std::size_t got =
              a == st.assembling.end() ? 0 : a->second.size();
          complete = got == st.origin_bytes[origin];
        } else {
          auto rem = st.origin_remaining.find(origin);
          complete = rem == st.origin_remaining.end() || rem->second == 0;
        }
        if (!complete) gather_drop_origin(tag, st, origin);
      }
      st.child_origins.erase(co);
    }
  }
  return touched;
}

void Iccl::gather_drop_origin(StreamKey tag, GatherState& st,
                              std::uint32_t origin) {
  if (!st.dropped.insert(origin).second) return;
  count_mux(tag, "gather_drops");
  self_.machine().flight_record(self_.pid(), "iccl",
                                "gather tag " + tag.str() +
                                    " dropped origin " +
                                    std::to_string(origin));
  if (is_root()) {
    st.assembling.erase(origin);
    return;
  }
  if (st.announced) {
    // Parent knows about this origin; retract it. The drop frame may
    // overtake chunks still queued behind the cursor - receivers ignore
    // chunks for dropped origins, so the race is benign.
    auto rem = st.origin_remaining.find(origin);
    if (rem != st.origin_remaining.end()) rem->second = 0;
    send_up(encode_frame(static_cast<std::uint8_t>(Kind::GatherDrop), tag,
                         params_.rank, {{origin, Bytes{}}}));
  } else {
    // Not yet announced: the parent never heard of the origin; just forget
    // it so the eventual RTS excludes it.
    st.origin_bytes.erase(origin);
    st.origin_remaining.erase(origin);
  }
}

void Iccl::handle_gather_drop(
    StreamKey tag,
    const std::vector<std::pair<std::uint32_t, Bytes>>& entries) {
  auto it = gathers_.find(tag);
  if (it == gathers_.end()) return;
  GatherState& st = it->second;
  for (const auto& [origin, unused] : entries) {
    gather_drop_origin(tag, st, origin);
  }
  if (is_root()) {
    gather_check_complete(tag);
  } else {
    gather_relay_maybe_done(tag);
  }
}

void Iccl::scatter(StreamKey tag, std::vector<Bytes> parts) {
  assert(is_root());
  std::vector<std::pair<std::uint32_t, Bytes>> entries;
  entries.reserve(parts.size());
  for (std::uint32_t r = 0; r < parts.size(); ++r) {
    entries.emplace_back(r, std::move(parts[r]));
  }
  handle_scatter(tag, std::move(entries));
}

void Iccl::handle_scatter(
    StreamKey tag, std::vector<std::pair<std::uint32_t, Bytes>> entries) {
  // Partition by child subtree; deliver own part locally. Child sends go
  // through the same serialized-send path as broadcast so that collectives
  // issued in one event preserve their issue order on the wire. The
  // subtrees partition the ranks, so each entry is *moved* into exactly one
  // child's part (no per-level payload copies); the serialized quantum
  // still charges the copy into that child's send buffer.
  sim::Time offset = 0;
  for (auto& [child, link] : children_) {
    auto sub = topo_.subtree_of(child);
    std::vector<std::pair<std::uint32_t, Bytes>> part;
    std::size_t part_bytes = 0;
    for (auto& [rank, data] : entries) {
      if (std::binary_search(sub.begin(), sub.end(), rank)) {
        part_bytes += data.size();
        part.emplace_back(rank, std::move(data));
      }
    }
    if (!part.empty()) {
      cluster::Message m = encode_frame(
          static_cast<std::uint8_t>(Kind::Scatter), tag, params_.rank, part);
      self_.post(offset, [this, child, m = std::move(m)]() mutable {
        send_to_child(child, std::move(m));
      });
      offset += self_.machine().costs().iccl_msg_handle +
                eager_copy_cost(part_bytes);
    }
  }
  for (auto& [rank, data] : entries) {
    if (rank == params_.rank) deliver_scatter(tag, data);
  }
}

// --- self-healing recovery (heal mode only) -------------------------------

void Iccl::heal_record_bcast(StreamKey tag,
                             const std::shared_ptr<const Bytes>& payload) {
  if (!bcast_history_.emplace(tag, payload).second) return;
  bcast_history_order_.push_back(tag);
  while (bcast_history_order_.size() > kHealHistory) {
    bcast_history_.erase(bcast_history_order_.front());
    bcast_history_order_.erase(bcast_history_order_.begin());
  }
}

void Iccl::heal_retire_gather(StreamKey tag, GatherState& st,
                              bool eager) {
  if (st.retired) return;
  st.retired = true;
  st.eager_sent = eager;
  st.heal_hold = false;
  st.acc.clear();
  st.outq.clear();
  st.next_out = 0;
  if (std::find(retired_gather_order_.begin(), retired_gather_order_.end(),
                tag) == retired_gather_order_.end()) {
    retired_gather_order_.push_back(tag);
  }
  while (retired_gather_order_.size() > kHealHistory) {
    const StreamKey old = retired_gather_order_.front();
    retired_gather_order_.erase(retired_gather_order_.begin());
    auto it = gathers_.find(old);
    if (it != gathers_.end() && it->second.retired) gathers_.erase(it);
  }
}

void Iccl::heal_child_lost(std::uint32_t lost) {
  self_.machine().flight_record(
      self_.pid(), "iccl",
      "heal: child rank " + std::to_string(lost) +
          " died; holding its subtree's stake for orphan reattach");
  // Rendezvous broadcast rounds must not wait on the dead child's CTS;
  // same forgiveness as the non-heal path.
  for (auto it = rndv_sends_.begin(); it != rndv_sends_.end();) {
    RndvSend& st = it->second;
    st.cts_pending.erase(lost);
    if (!st.streaming && st.cts_pending.empty()) {
      st.streaming = true;
      const StreamKey tag = it->first;
      rndv_flush(tag, st);
      it = rndv_sends_.upper_bound(tag);
    } else {
      ++it;
    }
  }
  // Open (or join) the adoption slot, and suspend the dead child's stake in
  // every open gather round until the slot resolves.
  const bool fresh = heal_slots_.count(lost) == 0;
  if (fresh) {
    heal_slots_[lost];
    self_.machine().count("iccl.heal.slots_opened");
  }
  for (auto& [tag, st] : gathers_) {
    if (st.retired) continue;
    if (st.children_pending.erase(lost) != 0 ||
        st.rndv_children.count(lost) != 0) {
      st.healing.insert(lost);
    }
  }
  heal_check_slot(lost);
  if (fresh && heal_slots_.count(lost) != 0) {
    self_.post(heal_grace_, [this, lost] {
      if (heal_slots_.count(lost) == 0) return;
      self_.machine().count("iccl.heal.grace_expired");
      heal_resolve_slot(lost, /*expired=*/true);
    });
  }
}

void Iccl::heal_check_slot(std::uint32_t dead) {
  auto it = heal_slots_.find(dead);
  if (it == heal_slots_.end()) return;
  const HealSlot& slot = it->second;
  // The slot resolves early once every rank under the dead child is
  // accounted for: reattached here (or under a reattached orphan), or
  // reported dead on some orphan's climb path. A dead leaf resolves in the
  // same event it was lost - its subtree is just itself.
  for (std::uint32_t r : topo_.subtree_of(dead)) {
    if (r == dead || slot.reported_dead.count(r) != 0) continue;
    bool claimed = false;
    for (std::uint32_t c : slot.claimed) {
      const auto sub = topo_.subtree_of(c);
      if (std::binary_search(sub.begin(), sub.end(), r)) {
        claimed = true;
        break;
      }
    }
    if (!claimed) return;
  }
  heal_resolve_slot(dead, /*expired=*/false);
}

void Iccl::heal_resolve_slot(std::uint32_t dead, bool expired) {
  heal_slots_.erase(dead);
  self_.machine().count("iccl.heal.slots_resolved");
  self_.machine().flight_record(
      self_.pid(), "iccl",
      "heal: slot for dead child " + std::to_string(dead) +
          (expired ? " resolved by grace expiry" : " resolved by coverage"));
  // Whatever stake of the dead child's subtree was not claimed by a
  // reattached orphan is now retracted, exactly like the non-heal path.
  for (auto it = gathers_.begin(); it != gathers_.end();) {
    const StreamKey tag = it->first;
    GatherState& st = it->second;
    const bool touched =
        st.healing.erase(dead) != 0 || st.rndv_children.count(dead) != 0;
    if (!touched) {
      ++it;
      continue;
    }
    gather_forget_child(tag, st, dead);
    flush_gather(tag);
    gather_relay_maybe_done(tag);
    it = gathers_.upper_bound(tag);
  }
}

void Iccl::begin_reparent() {
  if (reparenting_ || left_) return;
  reparenting_ = true;
  heal_via_.clear();
  self_.machine().count("iccl.heal.orphaned");
  self_.machine().flight_record(self_.pid(), "iccl",
                                "heal: parent rank " +
                                    std::to_string(parent_rank_) +
                                    " lost; climbing ancestor chain");
  if (obs::Tracer* tracer = self_.machine().tracer(); tracer != nullptr) {
    heal_span_ = tracer->begin_span(
        "iccl.heal", "iccl", static_cast<int>(self_.node().id()), self_.pid(),
        trace_parent(*tracer),
        "rank=" + std::to_string(params_.rank) +
            " lost_parent=" + std::to_string(parent_rank_));
  }
  // Freeze upstream gather streaming: chunks must not race ahead of the
  // per-origin resume offsets the adopter will dictate.
  for (auto& [tag, st] : gathers_) {
    if (!st.retired && st.announced && st.streaming) st.heal_hold = true;
  }
  heal_via_.push_back(parent_rank_);
  const auto target = topo_.parent_of(parent_rank_);
  if (!target) {
    // The dead parent was the root: nothing above to heal onto.
    self_.machine().count("iccl.heal.give_ups");
    if (obs::Tracer* tracer = self_.machine().tracer();
        tracer != nullptr && heal_span_ != obs::kNoSpan) {
      tracer->end_span(heal_span_, "give_up=root_dead");
      heal_span_ = obs::kNoSpan;
    }
    reparenting_ = false;
    return;
  }
  try_reattach(*target, kHealConnectRetries);
}

void Iccl::try_reattach(std::uint32_t target, int attempts_left) {
  if (left_) return;
  self_.connect(
      params_.hosts.at(target), params_.port,
      [this, target, attempts_left](Status st, cluster::ChannelPtr ch) {
        if (left_) return;
        if (st.is_ok()) {
          adopt_parent(target, std::move(ch));
          return;
        }
        if (attempts_left > 0) {
          self_.machine().count("iccl.heal.reattach_retries");
          self_.post(kRetryDelay, [this, target, attempts_left] {
            try_reattach(target, attempts_left - 1);
          });
          return;
        }
        // This ancestor is dead too: record it for the adopter's coverage
        // bookkeeping and keep climbing.
        heal_via_.push_back(target);
        const auto next = topo_.parent_of(target);
        if (!next) {
          // Even the root is unreachable - session teardown, not a failure
          // to heal. Give up quietly so a dissolving tree does not spin.
          self_.machine().count("iccl.heal.give_ups");
          self_.machine().flight_record(
              self_.pid(), "iccl",
              "heal: no live ancestor reachable; giving up");
          if (obs::Tracer* tracer = self_.machine().tracer();
              tracer != nullptr && heal_span_ != obs::kNoSpan) {
            tracer->end_span(heal_span_, "give_up=no_live_ancestor");
            heal_span_ = obs::kNoSpan;
          }
          reparenting_ = false;
          return;
        }
        try_reattach(*next, kHealConnectRetries);
      });
}

void Iccl::adopt_parent(std::uint32_t target, cluster::ChannelPtr ch) {
  parent_ = ch;
  parent_rank_ = target;
  reparenting_ = false;
  self_.machine().count("iccl.heal.reattaches");
  self_.machine().flight_record(self_.pid(), "iccl",
                                "heal: reattached under rank " +
                                    std::to_string(target));
  if (obs::Tracer* tracer = self_.machine().tracer();
      tracer != nullptr && heal_span_ != obs::kNoSpan) {
    tracer->end_span(heal_span_, "adopted_by=" + std::to_string(target));
    heal_span_ = obs::kNoSpan;
  }
  self_.set_channel_handler(
      ch,
      [this](const cluster::ChannelPtr& c, cluster::Message m) {
        on_fabric_message(c, std::move(m));
      },
      [this](const cluster::ChannelPtr&) {
        parent_ = nullptr;
        if (heal_ && ready_fired_ && !left_) begin_reparent();
      });
  // One Reattach frame carries everything the adopter needs: the dead
  // ancestors seen on the climb, the delivered-broadcast ring (duplicate
  // suppression baseline) and per-round receive offsets for catch-up.
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(heal_via_.size()));
  for (std::uint32_t r : heal_via_) w.u32(r);
  w.u32(static_cast<std::uint32_t>(bcast_history_order_.size()));
  for (const StreamKey& t : bcast_history_order_) {
    w.u32(t.session);
    w.u32(t.tag);
  }
  w.u32(static_cast<std::uint32_t>(rndv_recvs_.size()));
  for (const auto& [tag, rc] : rndv_recvs_) {
    w.u32(tag.session);
    w.u32(tag.tag);
    w.u32(rc.received);
    w.u32(rc.nchunks);
  }
  self_.send(ch, encode_frame(static_cast<std::uint8_t>(Kind::Reattach), 0,
                              params_.rank, {{0, std::move(w).take()}}));
  heal_send_reannounces();
}

void Iccl::heal_send_reannounces() {
  for (auto& [tag, st] : gathers_) {
    if (st.retired && st.eager_sent) {
      // The eager combined frame may have died with the old parent's inbox;
      // re-send it from the retained copies (the receiver keeps only the
      // origins it has not seen).
      std::vector<std::pair<std::uint32_t, Bytes>> entries;
      entries.reserve(st.retained.size());
      for (const auto& [origin, data] : st.retained) {
        entries.emplace_back(origin, data);
      }
      self_.machine().count("iccl.heal.gather_reannounces");
      send_up(encode_frame(static_cast<std::uint8_t>(Kind::GatherUp), tag,
                           params_.rank, entries));
      continue;
    }
    if (!st.announced) continue;
    // Rendezvous round (mid-stream or relay-retired): repeat the RTS with
    // every origin this subtree owns. Dropped origins stay listed - their
    // retraction follows immediately so the adopter's bookkeeping matches.
    std::map<std::uint32_t, std::uint32_t> sizes;
    for (const auto& [origin, data] : st.retained) {
      sizes[origin] = static_cast<std::uint32_t>(data.size());
    }
    for (const auto& [origin, sz] : st.origin_bytes) sizes[origin] = sz;
    std::vector<std::pair<std::uint32_t, Bytes>> origins;
    origins.reserve(sizes.size());
    for (const auto& [origin, sz] : sizes) {
      ByteWriter w;
      w.u32(sz);
      origins.emplace_back(origin, std::move(w).take());
    }
    self_.machine().count("iccl.heal.gather_reannounces");
    send_up(encode_frame(static_cast<std::uint8_t>(Kind::GatherRts), tag,
                         params_.rank, origins));
    if (!st.dropped.empty()) {
      std::vector<std::pair<std::uint32_t, Bytes>> drops;
      drops.reserve(st.dropped.size());
      for (std::uint32_t origin : st.dropped) {
        drops.emplace_back(origin, Bytes{});
      }
      send_up(encode_frame(static_cast<std::uint8_t>(Kind::GatherDrop), tag,
                           params_.rank, drops));
    }
  }
}

void Iccl::handle_reattach(const cluster::ChannelPtr& ch, std::uint32_t src,
                           const Bytes& blob) {
  ByteReader r(blob);
  std::set<std::uint32_t> via;
  const std::uint32_t nvia = r.u32().value_or(0);
  for (std::uint32_t i = 0; i < nvia; ++i) via.insert(r.u32().value_or(0));
  std::set<StreamKey> delivered;
  const std::uint32_t ndel = r.u32().value_or(0);
  for (std::uint32_t i = 0; i < ndel; ++i) {
    const std::uint32_t session = r.u32().value_or(0);
    const std::uint32_t t = r.u32().value_or(0);
    delivered.insert(StreamKey{session, t});
  }
  std::map<StreamKey, std::pair<std::uint32_t, std::uint32_t>> open;
  const std::uint32_t nrecv = r.u32().value_or(0);
  for (std::uint32_t i = 0; i < nrecv; ++i) {
    const std::uint32_t session = r.u32().value_or(0);
    const std::uint32_t t = r.u32().value_or(0);
    const std::uint32_t received = r.u32().value_or(0);
    const std::uint32_t nchunks = r.u32().value_or(0);
    open[StreamKey{session, t}] = {received, nchunks};
  }
  children_[src] = ch;
  self_.machine().count("iccl.heal.adoptions");
  self_.machine().flight_record(
      self_.pid(), "iccl",
      "heal: adopted orphan rank " + std::to_string(src) + " (climbed past " +
          std::to_string(via.size()) + " dead)");
  // Which of this node's dead children does the orphan descend from? Walk
  // the orphan's topology ancestor chain until it meets this rank.
  std::uint32_t dead_child = src;
  for (auto up = topo_.parent_of(dead_child); up && *up != params_.rank;
       up = topo_.parent_of(dead_child)) {
    dead_child = *up;
  }
  auto slot_it = heal_slots_.find(dead_child);
  if (slot_it == heal_slots_.end()) {
    // The orphan's Reattach beat this node's own notice of the child's
    // death (close callbacks pay a link latency). Open the slot now; the
    // close handler's sweep finds it already open.
    slot_it = heal_slots_.emplace(dead_child, HealSlot{}).first;
    self_.machine().count("iccl.heal.slots_opened");
    self_.post(heal_grace_, [this, dead_child] {
      if (heal_slots_.count(dead_child) == 0) return;
      self_.machine().count("iccl.heal.grace_expired");
      heal_resolve_slot(dead_child, /*expired=*/true);
    });
  }
  slot_it->second.claimed.insert(src);
  for (std::uint32_t v : via) {
    if (v != params_.rank) slot_it->second.reported_dead.insert(v);
  }
  // Transfer the orphan's subtree share of the dead child's gather stake:
  // announced origins under the orphan belong to its re-announce now, and
  // rounds suspended on the dead child wait for the orphan instead.
  const auto osub = topo_.subtree_of(src);
  for (auto& [tag, st] : gathers_) {
    if (st.healing.count(dead_child) != 0) st.children_pending.insert(src);
    auto co = st.child_origins.find(dead_child);
    if (co == st.child_origins.end()) continue;
    std::vector<std::uint32_t> moved;
    for (auto oit = co->second.begin(); oit != co->second.end();) {
      if (std::binary_search(osub.begin(), osub.end(), *oit)) {
        moved.push_back(*oit);
        oit = co->second.erase(oit);
      } else {
        ++oit;
      }
    }
    if (!moved.empty()) {
      st.child_origins[src].insert(moved.begin(), moved.end());
      st.rndv_children.insert(src);
    }
  }
  heal_replay_bcasts(src, open, delivered);
  heal_check_slot(dead_child);
}

void Iccl::heal_replay_bcasts(
    std::uint32_t orphan,
    const std::map<StreamKey,
                   std::pair<std::uint32_t, std::uint32_t>>& open_recvs,
    const std::set<StreamKey>& delivered) {
  const std::uint32_t chunk = self_.machine().costs().iccl_rndv_chunk_bytes;
  // Live rendezvous rounds first: the orphan catches up to this node's
  // scheduled sequence from its own receive offset and rides the ongoing
  // stream from there (it is in children_ now, so chunks scheduled after
  // this event reach it natively and in order).
  for (const auto& [tag, snd] : rndv_sends_) {
    if (delivered.count(tag) != 0) continue;
    auto open = open_recvs.find(tag);
    const std::uint32_t from =
        open != open_recvs.end() ? open->second.first : 0;
    if (open == open_recvs.end()) {
      ByteWriter w;
      w.u32(snd.total);
      send_to_child(orphan, encode_frame(
                                static_cast<std::uint8_t>(Kind::RndvRts), tag,
                                params_.rank, {{snd.nchunks,
                                                std::move(w).take()}}));
    }
    self_.machine().count("iccl.heal.bcast_replays");
    for (std::uint32_t seq = from; seq < snd.next_seq; ++seq) {
      send_to_child(orphan,
                    encode_frame(static_cast<std::uint8_t>(Kind::RndvChunk),
                                 tag, params_.rank, {{seq, *snd.ready[seq]}}));
      self_.machine().count("iccl.heal.bcast_replay_bytes",
                            static_cast<double>(snd.ready[seq]->size()));
    }
  }
  // Delivered history: rounds the orphan missed entirely, or was mid-
  // receive on when the live send state already retired here. The orphan's
  // own history guard makes a replay of an already-delivered round inert.
  for (StreamKey tag : bcast_history_order_) {
    if (delivered.count(tag) != 0) continue;
    if (rndv_sends_.count(tag) != 0) continue;  // caught up above
    const std::shared_ptr<const Bytes>& payload = bcast_history_.at(tag);
    const auto total = static_cast<std::uint32_t>(payload->size());
    auto open = open_recvs.find(tag);
    self_.machine().count("iccl.heal.bcast_replays");
    if (open != open_recvs.end()) {
      // The orphan already assembled a prefix; finish its chunk stream.
      for (std::uint32_t seq = open->second.first; seq < open->second.second;
           ++seq) {
        const std::size_t begin = static_cast<std::size_t>(seq) * chunk;
        const std::size_t len = std::min<std::size_t>(chunk, total - begin);
        Bytes piece(
            payload->begin() + static_cast<std::ptrdiff_t>(begin),
            payload->begin() + static_cast<std::ptrdiff_t>(begin + len));
        send_to_child(orphan,
                      encode_frame(static_cast<std::uint8_t>(Kind::RndvChunk),
                                   tag, params_.rank,
                                   {{seq, std::move(piece)}}));
        self_.machine().count("iccl.heal.bcast_replay_bytes",
                              static_cast<double>(len));
      }
    } else if (use_rendezvous(payload->size())) {
      const std::uint32_t nchunks = (total + chunk - 1) / chunk;
      ByteWriter w;
      w.u32(total);
      send_to_child(orphan, encode_frame(
                                static_cast<std::uint8_t>(Kind::RndvRts), tag,
                                params_.rank, {{nchunks,
                                                std::move(w).take()}}));
      for (std::uint32_t seq = 0; seq < nchunks; ++seq) {
        const std::size_t begin = static_cast<std::size_t>(seq) * chunk;
        const std::size_t len = std::min<std::size_t>(chunk, total - begin);
        Bytes piece(
            payload->begin() + static_cast<std::ptrdiff_t>(begin),
            payload->begin() + static_cast<std::ptrdiff_t>(begin + len));
        send_to_child(orphan,
                      encode_frame(static_cast<std::uint8_t>(Kind::RndvChunk),
                                   tag, params_.rank,
                                   {{seq, std::move(piece)}}));
      }
      self_.machine().count("iccl.heal.bcast_replay_bytes",
                            static_cast<double>(total));
    } else {
      send_to_child(orphan,
                    encode_frame(static_cast<std::uint8_t>(Kind::Bcast), tag,
                                 params_.rank, {{0, *payload}}));
      self_.machine().count("iccl.heal.bcast_replay_bytes",
                            static_cast<double>(total));
    }
  }
  // Anything the orphan was mid-receive on that this node can no longer
  // source (evicted from the ring) stays incomplete there; surface it.
  for (const auto& [tag, prog] : open_recvs) {
    if (delivered.count(tag) != 0 || rndv_sends_.count(tag) != 0 ||
        bcast_history_.count(tag) != 0) {
      continue;
    }
    self_.machine().flight_record(
        self_.pid(), "iccl",
        "heal: cannot replay bcast tag " + tag.str() +
            " for orphan " + std::to_string(orphan) + " (history evicted)");
  }
}

void Iccl::handle_gather_resume(
    StreamKey tag,
    const std::vector<std::pair<std::uint32_t, Bytes>>& entries) {
  auto it = gathers_.find(tag);
  if (it == gathers_.end()) return;
  GatherState& st = it->second;
  if (!st.announced) return;
  st.heal_hold = false;
  st.retired = false;  // a retired relay may need to re-send; re-retires below
  if (!st.streaming) gather_begin_streaming(tag, st);
  self_.machine().count("iccl.heal.gather_resumes");
  const std::uint32_t chunk = self_.machine().costs().iccl_rndv_chunk_bytes;
  for (const auto& [origin, blob] : entries) {
    ByteReader r(blob);
    const std::uint32_t from = r.u32().value_or(0);
    // Unscheduled queue entries for this origin are superseded: the
    // retained copy re-queued below covers them from the adopter's offset.
    st.outq.erase(
        std::remove_if(
            st.outq.begin() + static_cast<std::ptrdiff_t>(st.next_out),
            st.outq.end(),
            [origin = origin](const auto& e) { return e.first == origin; }),
        st.outq.end());
    auto ret = st.retained.find(origin);
    if (ret == st.retained.end()) continue;
    const auto total = static_cast<std::uint32_t>(ret->second.size());
    for (std::uint32_t begin = from; begin < total; begin += chunk) {
      const std::uint32_t len = std::min(chunk, total - begin);
      st.outq.emplace_back(
          origin,
          std::make_shared<const Bytes>(
              ret->second.begin() + static_cast<std::ptrdiff_t>(begin),
              ret->second.begin() + static_cast<std::ptrdiff_t>(begin + len)));
      self_.machine().count("iccl.heal.gather_requeued_bytes",
                            static_cast<double>(len));
    }
  }
  gather_flush(tag, st);
  gather_relay_maybe_done(tag);
}

void Iccl::handle_gather_done(StreamKey tag) {
  // Propagate: every descendant can free its replay copy of the round.
  for (auto& [rank, ch] : children_) {
    self_.send(ch, encode_frame(static_cast<std::uint8_t>(Kind::GatherDone),
                                tag, params_.rank, {}));
  }
  auto it = gathers_.find(tag);
  if (it != gathers_.end()) {
    if (obs::Tracer* tracer = self_.machine().tracer();
        tracer != nullptr && it->second.span != obs::kNoSpan) {
      tracer->end_span(it->second.span);
    }
    gathers_.erase(it);
  }
  retired_gather_order_.erase(std::remove(retired_gather_order_.begin(),
                                          retired_gather_order_.end(), tag),
                              retired_gather_order_.end());
}

void Iccl::leave() {
  if (left_) return;
  left_ = true;
  self_.machine().count("iccl.heal.leaves");
  self_.machine().flight_record(self_.pid(), "iccl",
                                "heal: rank " + std::to_string(params_.rank) +
                                    " leaving the session");
  if (!is_root() && parent_ != nullptr) {
    send_up(encode_frame(static_cast<std::uint8_t>(Kind::Leave), 0,
                         params_.rank, {}));
  }
  // Give the frame a head start, then exit. Children notice the closed
  // links and heal onto an ancestor through the normal reparent path.
  self_.post(sim::ms(2), [this] { self_.exit(0); });
}

void Iccl::handle_leave(std::uint32_t src) {
  self_.machine().count("iccl.heal.leaves_observed");
  self_.machine().flight_record(self_.pid(), "iccl",
                                "heal: child rank " + std::to_string(src) +
                                    " left gracefully");
  auto it = children_.find(src);
  if (it == children_.end()) return;
  // Run the lost-child bookkeeping now; the close callback that follows
  // finds the rank already erased and no-ops.
  on_child_lost(it->second);
}

// --- multiplexed delivery / fairness --------------------------------------

void Iccl::deliver_bcast(StreamKey tag, const Bytes& data) {
  if (tag.session == 0) {
    if (on_bcast_) on_bcast_(tag.tag, data);
    return;
  }
  auto it = session_handlers_.find(tag.session);
  if (it == session_handlers_.end() || !it->second.on_bcast) {
    self_.machine().count("iccl.mux.unbound_drops");
    return;
  }
  it->second.on_bcast(tag.tag, data);
}

void Iccl::deliver_gather(
    StreamKey tag, std::vector<std::pair<std::uint32_t, Bytes>> entries) {
  if (tag.session == 0) {
    if (on_gather_) on_gather_(tag.tag, std::move(entries));
    return;
  }
  auto it = session_handlers_.find(tag.session);
  if (it == session_handlers_.end() || !it->second.on_gather) {
    self_.machine().count("iccl.mux.unbound_drops");
    return;
  }
  it->second.on_gather(tag.tag, std::move(entries));
}

void Iccl::deliver_scatter(StreamKey tag, const Bytes& data) {
  if (tag.session == 0) {
    if (on_scatter_) on_scatter_(tag.tag, data);
    return;
  }
  auto it = session_handlers_.find(tag.session);
  if (it == session_handlers_.end() || !it->second.on_scatter) {
    self_.machine().count("iccl.mux.unbound_drops");
    return;
  }
  it->second.on_scatter(tag.tag, data);
}

void Iccl::count_mux(StreamKey tag, const char* name, double v) {
  self_.machine().count(std::string("iccl.") + name, v);
  if (tag.session != 0) {
    self_.machine().count(
        "iccl.s" + std::to_string(tag.session) + "." + name, v);
  }
}

bool Iccl::mux_can_clear(std::uint32_t session) const {
  for (const auto& [s, open] : mux_active_) {
    if (open > 0 && s != session) return false;
  }
  return true;
}

void Iccl::mux_mark_cleared(StreamKey tag, GatherState& st) {
  if (st.cleared) return;
  st.cleared = true;
  mux_active_[tag.session] += 1;
  mux_rr_last_ = tag.session;
  // Announces that queued while another session held the clearance get
  // their CTS now.
  for (std::uint32_t child : st.grant_waiters) {
    count_mux(tag, "gather_cts_sent");
    send_to_child(child,
                  encode_frame(static_cast<std::uint8_t>(Kind::GatherCts),
                               tag, params_.rank, {}));
  }
  st.grant_waiters.clear();
}

void Iccl::mux_release(StreamKey tag) {
  auto it = gathers_.find(tag);
  if (it == gathers_.end() || !it->second.cleared) return;
  auto act = mux_active_.find(tag.session);
  if (act != mux_active_.end() && --act->second <= 0) mux_active_.erase(act);
  if (!mux_active_.empty()) return;  // the holder still has open rounds
  // Clearance is free: grant the next session with deferred announces,
  // scanning session ids round-robin from the last holder.
  std::map<std::uint32_t, std::vector<StreamKey>> waiting;
  for (const auto& [key, st] : gathers_) {
    if (!st.cleared && !st.grant_waiters.empty()) {
      waiting[key.session].push_back(key);
    }
  }
  if (waiting.empty()) return;
  auto next = waiting.upper_bound(mux_rr_last_);
  if (next == waiting.end()) next = waiting.begin();
  self_.machine().count("iccl.mux.rr_grants");
  for (const StreamKey& key : next->second) {
    mux_mark_cleared(key, gathers_.at(key));
  }
}

void Iccl::send_up(cluster::Message m) {
  if (parent_ != nullptr) self_.send(parent_, std::move(m));
}

void Iccl::send_to_child(std::uint32_t child_rank, cluster::Message m) {
  auto it = children_.find(child_rank);
  if (it != children_.end()) self_.send(it->second, std::move(m));
}

}  // namespace lmon::core
