// fe_api.hpp - the LaunchMON Front-End API (paper §3.2).
//
// The FE runtime lives inside a tool front-end process and provides the
// seven capabilities the paper derives for FE APIs:
//   1. launch or attach to an RM process        -> launch_and_spawn /
//                                                  attach_and_spawn
//   2. co-locate back-end daemons               -> same calls (combined "by
//                                                  design": the paper keeps
//                                                  attachAndSpawn and
//                                                  launchAndSpawn fused)
//   3. launch middleware daemons                -> launch_mw_daemons
//   4. fetch data such as the RPDTAB            -> proctable()
//   5. transfer tool data FE<->daemons          -> piggybacked handshake
//                                                  payloads + send_usrdata_*
//   6. control a job or daemons                 -> detach / kill
//   7. bind commands to a job/daemon group      -> the session handle every
//                                                  call takes
//
// Persistent multiplexed service: a session is split into two halves. The
// *infrastructure* half (engine, daemon tree, fabric channels, cached
// RPDTAB/TunedConfig, port block) is a persistent resource created by one
// bootstrapping session; the *virtual* half (tag namespace, completion
// callbacks, trace span, tool binding) is cheap per-session state. Further
// sessions can attach to an existing tree through SpawnConfig::attach_to
// (an InfraHandle) in O(1) — one LMONP round trip plus one tree broadcast/
// gather — instead of re-launching engine + daemons.
//
// All operations are asynchronous (completion callbacks) because the tool
// front end is an event-driven simulated process; the real library's
// blocking calls map 1:1 onto these.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>

#include "cluster/process.hpp"
#include "comm/launch_strategy.hpp"
#include "comm/topology.hpp"
#include "core/auto_tune.hpp"
#include "core/lmonp.hpp"
#include "core/rpdtab.hpp"
#include "obs/trace.hpp"
#include "rm/types.hpp"

namespace lmon::core {

/// Opaque handle naming a persistent daemon tree: the infrastructure half
/// of a Ready session. Obtain one with FrontEnd::infra_of() and pass it in
/// SpawnConfig::attach_to to multiplex a new virtual session onto that tree
/// instead of bootstrapping a fresh one.
struct InfraHandle {
  int owner_sid = -1;  ///< session that bootstrapped (and owns) the tree
  [[nodiscard]] bool valid() const noexcept { return owner_sid >= 0; }
};

class FrontEnd {
 public:
  /// How daemons should be spawned and what rides along.
  struct SpawnConfig {
    std::string daemon_exe;
    std::vector<std::string> daemon_args;
    /// Bootstrap-fabric tree shape. Unset (nullopt, the default) lets the
    /// engine's auto-tuner pick the kind and fan-out from the PerfModel;
    /// KAry with arity 0 uses the platform's RM fan-out; Binomial/Flat
    /// ignore arity.
    std::optional<comm::TopologySpec> topology;
    /// How the daemons get onto the nodes: unset (default) lets the
    /// auto-tuner choose (it never picks a strategy whose model predicts
    /// failure); explicit values force the RM's scalable bulk launch or one
    /// of the paper's §2 ad hoc rsh baselines.
    std::optional<comm::LaunchStrategyKind> launch_strategy;
    /// ICCL eager->rendezvous switch: auto (default, model-driven via
    /// PerfModel::collective_crossover on the tuned fabric),
    /// platform-default, always-eager, always-rndv, or an explicit byte
    /// count. Overrides rndv_threshold_bytes semantics below.
    RndvSetting rndv;
    /// Legacy spelling of an explicit threshold (payload bytes). Nonzero
    /// takes precedence over `rndv`; 0 defers to it. UINT32_MAX pins the
    /// session to eager, 1 pins it to rendezvous (benches ablate both).
    std::uint32_t rndv_threshold_bytes = 0;
    /// Platform calibration profile consulted by the auto-tuner and the
    /// daemons' ICCL ("atlas", "thunder", "zeus", "bluegene" - see
    /// cluster::CostModelRegistry). Empty = the machine's own cost model.
    std::string platform_profile;
    /// Optional key=value calibration file overlaid on the profile
    /// (engine-side, rejected with line numbers on malformed input).
    std::string calibration_file;
    /// Self-healing daemon trees: daemons survive comm-daemon death by
    /// reparenting orphaned subtrees onto the nearest live ancestor and
    /// replaying in-flight collective state (docs/ARCHITECTURE.md
    /// "Self-healing trees"). Off by default: the historical drop-the-
    /// subtree semantics stay bit-identical for non-healing sessions.
    bool heal = false;
    /// Orphan-reattach grace window in milliseconds (how long an adopter
    /// suspends a dead child's collective stake waiting for its orphans);
    /// 0 = the ICCL default.
    std::uint32_t heal_grace_ms = 0;
    /// Persistent multiplexed service: when valid, this operation attaches
    /// a *virtual* session to the named tree (O(1): no engine, no RM, no
    /// daemon spawn) instead of bootstrapping. The daemon master enforces
    /// the tree's admission bound and rejects cleanly beyond it. Every
    /// other spawn knob above is ignored on this path.
    InfraHandle attach_to;
    /// Virtual-session admission bound advertised to the daemon tree this
    /// session bootstraps (--lmon-max-sessions); 0 = the daemons' default.
    std::uint32_t max_tree_sessions = 0;
    /// Tool data piggybacked on the FE->master handshake (paper §3.2:
    /// "enables piggybacking of the tool's data with the LaunchMON front
    /// end's handshaking exchanges").
    Bytes fe_to_be_data;
    /// Ablation knob: when false the tool data travels in a separate
    /// UsrData round trip after Ready instead of piggybacking.
    bool piggyback = true;
    /// The paper's LMON_fe_regPackForFeToBe: when set, invoked at
    /// handshake time (after the RPDTAB is known) to produce the
    /// piggybacked tool data; overrides fe_to_be_data. STAT uses this to
    /// pack a TBON topology built over the proctable's hosts.
    std::function<Bytes()> fe_data_provider;
    /// When set (or LMON_TRACE_OUT is in the environment), the FE attaches
    /// an obs::Tracer to the machine for this session and writes a
    /// Chrome/Perfetto trace-event JSON file here when the operation
    /// completes. Purely observational: simulated timings are unchanged.
    std::string trace_out;
  };

  using Done = std::function<void(Status)>;
  using UsrDataHandler = std::function<void(const Bytes&)>;

  enum class SessionState {
    Idle,
    EngineStarting,
    Spawning,
    Handshaking,
    Ready,
    Failed,
    Torn,
  };

  /// Default bound on concurrently existing session descriptors.
  static constexpr int kDefaultMaxSessions = 64;

  /// `max_sessions` bounds the session table (create_session rejects with
  /// Enomem beyond it). Virtual sessions count against it too, but only
  /// bootstrapping sessions consume one of the 64 per-FE port blocks, so a
  /// bound above 64 is usable when the surplus multiplexes existing trees.
  explicit FrontEnd(cluster::Process& self,
                    int max_sessions = kDefaultMaxSessions);
  ~FrontEnd();

  FrontEnd(const FrontEnd&) = delete;
  FrontEnd& operator=(const FrontEnd&) = delete;

  /// Binds the FE's LMONP listening port. Call once before any session.
  Status init();
  [[nodiscard]] cluster::Port port() const noexcept { return port_; }

  /// Creates a session descriptor (LMON_fe_createSession). Ids are reused:
  /// the lowest id freed by destroy_session() is handed out first.
  cluster::Result<int> create_session();

  /// Frees a session descriptor (LMON_fe_destroySession). The session must
  /// be Idle, Failed or Torn - tear a live session down with detach()/
  /// kill() first. Destroying a tree owner releases its port block and
  /// unregisters the infrastructure.
  Status destroy_session(int sid);

  /// Launches a new job under tool control and co-locates daemons with it
  /// (LMON_fe_launchAndSpawnDaemons).
  void launch_and_spawn(int sid, const rm::JobSpec& job, SpawnConfig cfg,
                        Done done);

  /// Attaches to a running job via its RM launcher pid and co-locates
  /// daemons (LMON_fe_attachAndSpawnDaemons).
  void attach_and_spawn(int sid, cluster::Pid launcher_pid, SpawnConfig cfg,
                        Done done);

  /// Launches `nnodes` middleware daemons onto a fresh allocation
  /// (LMON_fe_launchMwDaemons). Requires a session whose engine is up.
  void launch_mw_daemons(int sid, std::uint32_t nnodes, SpawnConfig cfg,
                         Done done);

  // --- persistent multiplexed service ----------------------------------------
  /// Handle of the daemon tree `sid` is bound to (invalid if none). Pass to
  /// SpawnConfig::attach_to on another session to share the tree.
  [[nodiscard]] InfraHandle infra_of(int sid) const;
  /// Virtual-session id of `sid` on its tree (0 = bootstrapping owner).
  [[nodiscard]] std::uint32_t vsid_of(int sid) const;
  /// Number of sessions (owner + virtual) currently bound to `sid`'s tree.
  [[nodiscard]] std::size_t tree_session_count(int sid) const;

  // --- session data -----------------------------------------------------------
  [[nodiscard]] SessionState state(int sid) const;
  [[nodiscard]] const Rpdtab* proctable(int sid) const;
  [[nodiscard]] const Rpdtab* daemon_table(int sid) const;
  [[nodiscard]] const Rpdtab* mw_table(int sid) const;
  /// Tool data the BE master piggybacked on Ready.
  [[nodiscard]] const Bytes* ready_usrdata(int sid) const;
  /// The configuration the engine's auto-tuner resolved for this session
  /// (strategy/topology/threshold plus the model evidence), or nullptr
  /// before DaemonsSpawned arrives. Virtual sessions see the shared tree's
  /// cached record - the tuner does not run again on attach.
  [[nodiscard]] const TunedConfig* tuned_config(int sid) const;

  // --- tool data transfer ---------------------------------------------------------
  Status send_usrdata_be(int sid, Bytes data);
  Status send_usrdata_mw(int sid, Bytes data);
  void set_be_usrdata_handler(int sid, UsrDataHandler h);
  void set_mw_usrdata_handler(int sid, UsrDataHandler h);

  // --- control ---------------------------------------------------------------------
  /// Detach: daemons torn down, job left running (LMON_fe_detach). For a
  /// virtual session this closes only the virtual stream; the tree stays.
  void detach(int sid, Done done);
  /// Kill: daemons and job torn down (LMON_fe_kill).
  void kill(int sid, Done done);

  /// Ports used by a session (exposed for tests). Virtual sessions report
  /// their tree's fabric port.
  [[nodiscard]] cluster::Port fabric_port_of(int sid) const;

 private:
  /// The persistent half of a session: one bootstrapped engine + daemon
  /// tree, shared (via shared_ptr) by the owning session and every virtual
  /// session attached to it. Cached RPDTAB / daemon table / TunedConfig
  /// live here so attaching sessions reuse them without refetching.
  struct Infra {
    int owner_sid = -1;
    std::string cookie;
    cluster::Pid engine_pid = cluster::kInvalidPid;
    cluster::ChannelPtr engine_ch;
    cluster::ChannelPtr be_ch;
    cluster::ChannelPtr mw_ch;
    Rpdtab proctable;
    Rpdtab daemon_table;
    Rpdtab mw_table;
    TunedConfig tuned;
    bool have_tuned = false;
    bool have_proctable = false;
    bool daemons_spawned = false;
    cluster::Port fabric_port = 0;
    cluster::Port report_port = 0;
    cluster::Port mw_fabric_port = 0;
    int port_slot = -1;  ///< index into the FE's 64-slot port block
    std::uint32_t next_vsid = 1;
    /// Attached virtual sessions: vsid -> FE session id (for routing
    /// VirtualReady and for teardown fan-out).
    std::map<std::uint32_t, int> vsids;
  };
  using InfraPtr = std::shared_ptr<Infra>;

  /// The virtual half: callbacks, tool binding and trace identity.
  struct Session {
    int id = -1;
    std::string cookie;  ///< set on bootstrapping sessions only
    SessionState state = SessionState::Idle;
    SpawnConfig cfg;
    SpawnConfig mw_cfg;
    InfraPtr infra;          ///< null until an operation binds a tree
    std::uint32_t vsid = 0;  ///< 0 = bootstrapping owner of `infra`
    Bytes ready_usr;
    Done done;
    Done mw_done;
    Done teardown_done;
    UsrDataHandler be_usr_handler;
    UsrDataHandler mw_usr_handler;
    /// Root span of the whole operation (e0..e11); anchored under
    /// "session:<cookie>" so the engine and daemons can parent onto it.
    obs::SpanId span = obs::kNoSpan;
  };

  void start_operation(int sid, bool attach, const rm::JobSpec* job,
                       cluster::Pid target, SpawnConfig cfg, Done done);
  /// O(1) attach of a virtual session onto an existing tree.
  void start_virtual_attach(Session& s, Done done);
  void on_accept(cluster::ChannelPtr ch);
  void bind_engine_channel(Session& s, const cluster::ChannelPtr& ch);
  void bind_daemon_channel(Session& s, const cluster::ChannelPtr& ch,
                           MsgClass cls);
  void on_engine_message(Session& s, const LmonpMessage& msg);
  void on_daemon_message(Session& s, MsgClass cls, const LmonpMessage& msg);
  void on_virtual_ready(Infra& infra, const Bytes& payload);
  /// Marks every virtual session of `infra` Torn (tree going away).
  void tear_virtuals(Infra& infra);
  void finish(Session& s, Status st);
  void finish_mw(Session& s, Status st);
  Session* find(int sid);
  [[nodiscard]] const Session* find(int sid) const;
  Session* find_by_cookie(const std::string& cookie);

  cluster::Process& self_;
  cluster::Port port_ = 0;
  std::map<int, Session> sessions_;
  int next_session_ = 0;
  std::set<int> free_ids_;  ///< ids released by destroy_session
  int max_sessions_ = kDefaultMaxSessions;
  std::set<int> free_port_slots_;  ///< unassigned per-FE port-block slots
  /// Registry of persistent trees by owner session id (InfraHandle lookup).
  std::map<int, InfraPtr> infra_;
  /// Tracer owned by this FE when SpawnConfig::trace_out / LMON_TRACE_OUT
  /// asked for an export and no external tracer was already attached.
  std::unique_ptr<obs::Tracer> owned_tracer_;
  std::unique_ptr<obs::LogBridge> log_bridge_;
  std::string trace_out_path_;
  /// Fixed per-FE port-block geometry: 64 slots regardless of the session
  /// bound, so several FEs' blocks never overlap (see create_session).
  static constexpr int kPortSlots = 64;
};

}  // namespace lmon::core
