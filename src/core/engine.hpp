// engine.hpp - the LaunchMON Engine (paper §3.1).
//
// The engine is a separate process, co-locatable with the RM launcher it
// traces, acting as the FE's proxy toward the RM. Its internals follow the
// paper's modular decomposition:
//
//   * EventManager  - "polling the target RM process via an OS interface":
//                     receives native debug events and queues them.
//   * EventDecoder  - converts native events into LaunchMON events.
//   * EventHandlerTable - per-event handlers.
//   * Driver        - organizes the main loop: pump EventManager, decode,
//                     dispatch.
//   * RmAdapter     - platform adaptation (see rm_adapter.hpp).
//
// Argv (assembled by the FE runtime):
//   --op=launch|attach --session=S --fe-host=H --fe-port=P
//   launch: --nnodes=N --tpn=T --exe=NAME [--app-arg=...]
//   attach: --target-pid=P
//   daemons: --daemon-exe=NAME [--daemon-arg=...] --fabric-port=P
//            --fabric-topo=kary:K|binomial|flat|auto --report-port=P
//            --launch-strategy=rm-bulk|serial-rsh|tree-rsh|auto
//            [--rndv=auto|platform-default|always-eager|always-rndv|N]
//            [--platform=NAME] [--calibration=FILE]
//   "auto" knobs are resolved at co-spawn time by core::auto_tune against
//   the --platform profile (default: the machine's own cost model),
//   optionally overlaid with a --calibration key=value file.
#pragma once

#include <deque>
#include <memory>
#include <optional>
#include <string>

#include "cluster/process.hpp"
#include "cluster/tracing.hpp"
#include "comm/launch_strategy.hpp"
#include "core/auto_tune.hpp"
#include "core/lmonp.hpp"
#include "core/rm_adapter.hpp"
#include "core/rpdtab.hpp"
#include "obs/trace.hpp"

namespace lmon::core {

/// LaunchMON-level events, decoded from native debug events.
enum class LmonEventType {
  JobStoppedAtBreakpoint,  ///< launcher hit MPIR_Breakpoint
  AttachComplete,          ///< attach stop delivered
  JobExited,               ///< launcher terminated
  Ignored,                 ///< benign native event (signals etc.)
};

struct LmonEvent {
  LmonEventType type = LmonEventType::Ignored;
  cluster::DebugEvent native;
};

/// Queues native debug events (the "OS interface poll" results).
class EventManager {
 public:
  void push(cluster::DebugEvent ev) { queue_.push_back(std::move(ev)); }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  cluster::DebugEvent pop();

 private:
  std::deque<cluster::DebugEvent> queue_;
};

/// Maps native debug events to LaunchMON events.
class EventDecoder {
 public:
  [[nodiscard]] LmonEvent decode(const cluster::DebugEvent& native) const;
};

class EngineProgram : public cluster::Program {
 public:
  /// Factory for tests that want a custom adapter (e.g. a fault-injecting
  /// one); default builds a SlurmAdapter.
  using AdapterFactory = std::function<std::unique_ptr<RmAdapter>()>;

  EngineProgram() = default;
  explicit EngineProgram(AdapterFactory factory)
      : adapter_factory_(std::move(factory)) {}

  [[nodiscard]] std::string_view name() const override {
    return "lmon_engine";
  }
  void on_start(cluster::Process& self) override;
  void on_message(cluster::Process& self, const cluster::ChannelPtr& ch,
                  cluster::Message msg) override;
  void on_child_exit(cluster::Process& self, cluster::Pid child,
                     int exit_code) override;

 private:
  enum class Phase {
    Init,
    WaitingForJob,   ///< launch/attach issued, waiting for the stop event
    FetchingTable,
    Spawning,        ///< co-spawn in flight
    Running,         ///< daemons up, proxying
    Dead,
  };

  // Driver loop: pump -> decode -> dispatch (paper's central Driver class).
  void drive(cluster::Process& self);
  void handle_event(cluster::Process& self, const LmonEvent& ev);
  void handle_job_stopped(cluster::Process& self);
  void handle_job_exited(cluster::Process& self, int code);

  void start_operation(cluster::Process& self);
  void fetch_and_ship_proctable(cluster::Process& self);
  /// Resolves any session knobs the FE left on "auto" against the selected
  /// platform profile (core::auto_tune), records the decision in the
  /// trace/metrics plane and fills strategy_kind_/fabric_topo_/
  /// launch_fanout_/rndv_threshold_ with the tuned values. Returns false
  /// (after send_error) when the platform/calibration selection is invalid.
  bool tune_session(cluster::Process& self);
  void co_spawn_daemons(cluster::Process& self);
  void on_daemons_launched(cluster::Process& self, comm::LaunchResult res);
  /// Tears down BE daemons (whatever strategy launched them) and any MW
  /// sessions the adapter co-spawned.
  void teardown_daemons(cluster::Process& self);
  void on_fe_message(cluster::Process& self, const cluster::ChannelPtr& ch,
                     cluster::Message m);
  void handle_launch_mw(cluster::Process& self, const Bytes& payload);
  void send_fe(cluster::Process& self, LmonpMessage msg);
  void send_error(cluster::Process& self, const std::string& stage,
                  const std::string& error);

  AdapterFactory adapter_factory_;
  std::unique_ptr<RmAdapter> adapter_;
  /// Selected by --launch-strategy (or the tuner); owns the BE daemons'
  /// bootstrap.
  std::unique_ptr<comm::LaunchStrategy> strategy_;
  comm::LaunchStrategyKind strategy_kind_ = comm::LaunchStrategyKind::RmBulk;
  comm::TopologySpec fabric_topo_;
  std::uint32_t launch_fanout_ = 2;  ///< launch-protocol tree degree
  std::uint32_t rndv_threshold_ = 0;  ///< ICCL eager/rendezvous switch
  // Pre-tuning knob state ("auto" spellings stay unset until the proctable
  // tells us the scale) plus the platform/calibration selection.
  std::optional<comm::LaunchStrategyKind> strategy_opt_;
  std::optional<comm::TopologySpec> topo_opt_;
  RndvSetting rndv_setting_;
  std::string platform_;
  std::string calibration_;
  bool heal_ = false;  ///< self-healing daemon trees for this session
  std::uint32_t heal_grace_ms_ = 0;  ///< orphan-reattach grace (0 = default)
  std::uint32_t max_tree_sessions_ = 0;  ///< vsession admission bound (0 = default)
  TunedConfig tuned_;
  bool tuned_valid_ = false;
  EventManager event_manager_;
  EventDecoder decoder_;
  Phase phase_ = Phase::Init;
  bool attach_mode_ = false;
  std::string session_;
  std::string fe_host_;
  cluster::Port fe_port_ = 0;
  cluster::ChannelPtr fe_channel_;
  cluster::Pid launcher_pid_ = cluster::kInvalidPid;
  rm::JobId jobid_ = rm::kInvalidJob;
  Rpdtab proctable_;
  bool tracing_cost_charged_ = false;
  int mw_sessions_ = 0;
  // Trace spans (kNoSpan when no tracer is attached). The engine span is
  // parented on the FE's "session:<cookie>" anchor; "cospawn:<cookie>" in
  // turn anchors the launch strategies' per-level spans.
  obs::SpanId span_ = obs::kNoSpan;
  obs::SpanId rm_span_ = obs::kNoSpan;
  obs::SpanId rpdtab_span_ = obs::kNoSpan;
  obs::SpanId cospawn_span_ = obs::kNoSpan;
};

}  // namespace lmon::core
