// rm_adapter.hpp - the engine's platform adaptation layer.
//
// Paper §3.1: "The LaunchMON engine is designed using a modular class
// hierarchy that encapsulates all key components as separate abstract
// entities. We can use this to port it to new platforms by simply
// parameterizing and inheriting key abstract classes." RmAdapter is that
// abstraction: everything the engine needs from a resource manager, behind
// virtuals. SlurmAdapter binds it to the SLURM-like RM in src/rm; a port to
// another RM (the paper's BlueGene mpirun) would subclass this only.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/process.hpp"
#include "cluster/tracing.hpp"
#include "comm/launch_strategy.hpp"
#include "rm/launcher.hpp"
#include "rm/protocol.hpp"
#include "rm/types.hpp"

namespace lmon::core {

class RmAdapter {
 public:
  virtual ~RmAdapter() = default;

  [[nodiscard]] virtual std::string_view rm_name() const = 0;

  /// Starts the RM's parallel launcher under the engine's trace control
  /// (paper e2). Debug events flow to `handler`.
  virtual cluster::Result<cluster::Pid> launch_job(
      cluster::Process& engine, const rm::JobSpec& spec,
      cluster::DebugEventHandler handler) = 0;

  /// Attaches to an already-running launcher.
  virtual Status attach_job(cluster::Process& engine, cluster::Pid launcher,
                            cluster::DebugEventHandler handler) = 0;

  /// Reads the RPDTAB (MPIR proctable) from the traced launcher's address
  /// space; cost is linear in job size (Region B).
  virtual void fetch_proctable(
      std::function<void(Status, Bytes)> cb) = 0;

  /// Reads the job id exported by the launcher (totalview_jobid).
  virtual void fetch_jobid(std::function<void(Status, rm::JobId)> cb) = 0;

  /// Resumes the launcher stopped at MPIR_Breakpoint.
  virtual void continue_job() = 0;

  /// Detaches from the launcher, leaving the job running.
  virtual void detach_job() = 0;

  /// Kills the launcher (and thereby the job).
  virtual void kill_job() = 0;

  /// Kills the job's application tasks through the RM's node daemons
  /// (scancel-like); the launcher alone cannot reap them since the tasks
  /// are children of the node daemons.
  virtual void kill_tasks(cluster::Process& engine, rm::JobId jobid,
                          const std::vector<std::string>& hosts) = 0;

  struct CoSpawnConfig {
    rm::JobId jobid = rm::kInvalidJob;  ///< co-locate with this job, or...
    std::uint32_t alloc_nodes = 0;      ///< ...allocate fresh nodes (MW case)
    bool middleware_partition = false;  ///< fresh nodes from the MW pool
    std::string daemon_exe;
    std::vector<std::string> daemon_args;
    rm::FabricSpec fabric;
    std::string report_host;
    cluster::Port report_port = 0;
  };

  /// Launches tool daemons through the RM's scalable mechanism (paper e5);
  /// `cb` fires with the RM's aggregated result (e6).
  virtual Status co_spawn(cluster::Process& engine, const CoSpawnConfig& cfg,
                          std::function<void(rm::LaunchDone)> cb) = 0;

  /// Tears down daemons previously co-spawned.
  virtual void kill_daemons(std::function<void(Status)> cb) = 0;
};

/// Adapter for the SLURM-like RM in src/rm.
class SlurmAdapter final : public RmAdapter {
 public:
  [[nodiscard]] std::string_view rm_name() const override {
    return "slurm-like";
  }

  cluster::Result<cluster::Pid> launch_job(
      cluster::Process& engine, const rm::JobSpec& spec,
      cluster::DebugEventHandler handler) override;
  Status attach_job(cluster::Process& engine, cluster::Pid launcher,
                    cluster::DebugEventHandler handler) override;
  void fetch_proctable(std::function<void(Status, Bytes)> cb) override;
  void fetch_jobid(std::function<void(Status, rm::JobId)> cb) override;
  void continue_job() override;
  void detach_job() override;
  void kill_job() override;
  void kill_tasks(cluster::Process& engine, rm::JobId jobid,
                  const std::vector<std::string>& hosts) override;
  Status co_spawn(cluster::Process& engine, const CoSpawnConfig& cfg,
                  std::function<void(rm::LaunchDone)> cb) override;
  void kill_daemons(std::function<void(Status)> cb) override;

 private:
  cluster::TraceSession* session_ = nullptr;
  cluster::Process* engine_ = nullptr;
  /// One bulk-launch strategy per co-spawn call (BE session, MW sessions);
  /// each holds the report channel that keeps its daemons alive.
  std::vector<std::unique_ptr<rm::RmBulkStrategy>> cospawns_;
};

}  // namespace lmon::core
