// stream_key.hpp - the namespaced (session, tag) collective stream key.
//
// PR 5 keyed every ICCL round by a bare std::uint32_t tag, which is enough
// when one tool session owns the whole daemon tree. A persistent
// multiplexed tree (docs/ARCHITECTURE.md "Persistent multiplexed service")
// carries many concurrent virtual sessions over one fabric, so every
// round - broadcast, gather, scatter, rendezvous chunk stream, heal replay
// entry - is keyed by (session, tag) instead. Session 0 is the
// *infrastructure session*: the bootstrap handshake, shutdown and command
// fan-outs, and every legacy single-session tool. Virtual sessions get
// nonzero ids allocated by the front end per tree.
//
// The key is deliberately implicit-constructible from a bare tag so the
// entire pre-multiplex API surface (tools, tests, benches that speak
// `broadcast(tag, ...)`) keeps compiling unchanged, pinned to session 0.
#pragma once

#include <compare>
#include <cstdint>
#include <string>

namespace lmon::core {

struct StreamKey {
  std::uint32_t session = 0;
  std::uint32_t tag = 0;

  constexpr StreamKey() = default;
  // NOLINTNEXTLINE(google-explicit-constructor): legacy tags are session 0.
  constexpr StreamKey(std::uint32_t t) : session(0), tag(t) {}
  constexpr StreamKey(std::uint32_t s, std::uint32_t t)
      : session(s), tag(t) {}

  auto operator<=>(const StreamKey&) const = default;

  /// Single-integer form used where a scalar key is required (TBON round
  /// maps, hashes). Lossless: session in the high half.
  [[nodiscard]] constexpr std::uint64_t packed() const {
    return (static_cast<std::uint64_t>(session) << 32) | tag;
  }
  static constexpr StreamKey unpack(std::uint64_t v) {
    return {static_cast<std::uint32_t>(v >> 32),
            static_cast<std::uint32_t>(v)};
  }

  /// "tag" for the infrastructure session, "session/tag" otherwise - the
  /// spelling trace span details and metric labels use.
  [[nodiscard]] std::string str() const {
    return session == 0 ? std::to_string(tag)
                        : std::to_string(session) + "/" + std::to_string(tag);
  }
};

}  // namespace lmon::core
