#include "core/engine.hpp"

#include <algorithm>
#include <cassert>

#include "cluster/cost_model_registry.hpp"
#include "cluster/machine.hpp"
#include "common/argparse.hpp"
#include "core/payloads.hpp"
#include "obs/metrics.hpp"
#include "rm/apai.hpp"
#include "rsh/launchers.hpp"
#include "simkernel/log.hpp"

namespace lmon::core {

cluster::DebugEvent EventManager::pop() {
  assert(!queue_.empty());
  cluster::DebugEvent ev = std::move(queue_.front());
  queue_.pop_front();
  return ev;
}

LmonEvent EventDecoder::decode(const cluster::DebugEvent& native) const {
  LmonEvent ev;
  ev.native = native;
  switch (native.type) {
    case cluster::DebugEventType::Stopped:
      ev.type = native.symbol == rm::apai::kBreakpoint
                    ? LmonEventType::JobStoppedAtBreakpoint
                    : LmonEventType::Ignored;
      break;
    case cluster::DebugEventType::Attached:
      ev.type = LmonEventType::AttachComplete;
      break;
    case cluster::DebugEventType::Exited:
      ev.type = LmonEventType::JobExited;
      break;
  }
  return ev;
}

void EngineProgram::on_start(cluster::Process& self) {
  const auto& args = self.args();
  session_ = arg_value(args, "--session=").value_or("s0");
  fe_host_ = arg_value(args, "--fe-host=").value_or("");
  fe_port_ =
      static_cast<cluster::Port>(arg_int(args, "--fe-port=").value_or(0));
  attach_mode_ = arg_value(args, "--op=").value_or("launch") == "attach";

  // Session options: which strategy bootstraps the daemons and what shape
  // their fabric tree takes. "auto" knobs stay unset here - the tuner
  // resolves them once the proctable tells us the scale (tune_session).
  const std::string strategy_arg =
      arg_value(args, "--launch-strategy=").value_or("auto");
  strategy_opt_ = strategy_arg == "auto"
                      ? std::nullopt
                      : comm::launch_strategy_from_string(strategy_arg);
  const std::string topo_arg =
      arg_value(args, "--fabric-topo=").value_or("auto");
  if (topo_arg == "auto") {
    topo_opt_ = std::nullopt;
  } else if (auto spec = comm::TopologySpec::parse(topo_arg)) {
    topo_opt_ = *spec;
    // TopologySpec::to_string() drops the arity for non-k-ary kinds, so the
    // FE ships the launch-protocol degree separately in --fabric-fanout=;
    // fold it back in so an explicit fan-out survives the argv round trip.
    if (const auto fanout = arg_int(args, "--fabric-fanout=");
        fanout && topo_opt_->arity == 0) {
      topo_opt_->arity = static_cast<std::uint32_t>(*fanout);
    }
  } else if (const auto fanout = arg_int(args, "--fabric-fanout=")) {
    topo_opt_ = comm::TopologySpec{comm::TopologyKind::KAry,
                                   static_cast<std::uint32_t>(*fanout)};
  }
  if (const auto rndv = arg_value(args, "--rndv=")) {
    rndv_setting_ = RndvSetting::parse(*rndv).value_or(RndvSetting{});
  } else if (const auto legacy = arg_int(args, "--rndv-threshold=");
             legacy && *legacy != 0) {
    rndv_setting_ = RndvSetting{RndvSetting::Mode::Bytes,
                                static_cast<std::uint32_t>(*legacy)};
  }
  platform_ = arg_value(args, "--platform=").value_or("");
  calibration_ = arg_value(args, "--calibration=").value_or("");
  heal_ = arg_int(args, "--heal=").value_or(0) != 0;
  heal_grace_ms_ = static_cast<std::uint32_t>(
      arg_int(args, "--heal-grace-ms=").value_or(0));
  max_tree_sessions_ = static_cast<std::uint32_t>(
      arg_int(args, "--max-tree-sessions=").value_or(0));

  // Pre-tuning placeholders; tune_session() overwrites all four. The launch
  // protocol's fan-out is independent of the fabric family: binomial/flat
  // fabrics still forward the bulk launch (and tree-rsh agents) at the
  // configured degree, not at the spec's unused arity.
  strategy_kind_ = strategy_opt_.value_or(comm::LaunchStrategyKind::RmBulk);
  fabric_topo_ = topo_opt_.value_or(comm::TopologySpec{
      comm::TopologyKind::KAry, 0});
  launch_fanout_ = static_cast<std::uint32_t>(
      arg_int(args, "--fabric-fanout=").value_or(fabric_topo_.arity));
  rndv_threshold_ = static_cast<std::uint32_t>(
      arg_int(args, "--rndv-threshold=").value_or(0));

  adapter_ = adapter_factory_ ? adapter_factory_()
                              : std::make_unique<SlurmAdapter>();

  self.machine().mark("e1_engine_start");
  if (obs::Tracer* tracer = self.machine().tracer(); tracer != nullptr) {
    span_ = tracer->begin_span(
        "engine", "engine", static_cast<int>(self.node().id()), self.pid(),
        tracer->anchor("session:" + session_), "session=" + session_);
  }
  // Scale-independent engine bookkeeping ("all other LaunchMON costs").
  const sim::Time fixed = self.machine().costs().engine_fixed_cost;
  self.machine().charge("other", fixed);
  self.post(fixed, [this, &self] {
    self.connect(fe_host_, fe_port_,
                 [this, &self](Status st, cluster::ChannelPtr ch) {
                   if (!st.is_ok()) {
                     self.exit(1);  // nothing to report to
                     return;
                   }
                   fe_channel_ = ch;
                   self.set_channel_handler(
                       ch,
                       [this, &self](const cluster::ChannelPtr& c,
                                     cluster::Message m) {
                         on_fe_message(self, c, std::move(m));
                       },
                       [this, &self](const cluster::ChannelPtr&) {
                         // FE died: clean up the session.
                         teardown_daemons(self);
                         adapter_->detach_job();
                         self.exit(0);
                       });
                   payload::Hello hello;
                   hello.session = session_;
                   hello.pid = self.pid();
                   hello.host = self.node().hostname();
                   send_fe(self, LmonpMessage::fe_engine(FeEngineMsg::Hello,
                                                         hello.encode()));
                   start_operation(self);
                 });
  });
}

void EngineProgram::start_operation(cluster::Process& self) {
  phase_ = Phase::WaitingForJob;
  auto handler = [this, &self](const cluster::DebugEvent& ev) {
    event_manager_.push(ev);
    drive(self);
  };

  if (attach_mode_) {
    const auto target = arg_int(self.args(), "--target-pid=");
    if (!target) {
      send_error(self, "attach", "no --target-pid");
      return;
    }
    launcher_pid_ = static_cast<cluster::Pid>(*target);
    self.machine().mark("e2_rm_launcher");
    if (obs::Tracer* tracer = self.machine().tracer(); tracer != nullptr) {
      rm_span_ = tracer->begin_span(
          "engine.rm_attach", "engine", static_cast<int>(self.node().id()),
          self.pid(), span_, "target=" + std::to_string(launcher_pid_));
    }
    Status st = adapter_->attach_job(self, launcher_pid_, handler);
    if (!st.is_ok()) send_error(self, "attach", st.message());
    return;
  }

  rm::JobSpec spec;
  spec.nnodes = static_cast<int>(
      arg_int(self.args(), "--nnodes=").value_or(1));
  spec.tasks_per_node =
      static_cast<int>(arg_int(self.args(), "--tpn=").value_or(1));
  spec.executable = arg_value(self.args(), "--exe=").value_or("mpi_app");
  spec.app_args = arg_list(self.args(), "--app-arg=");
  self.machine().mark("e2_rm_launcher");
  if (obs::Tracer* tracer = self.machine().tracer(); tracer != nullptr) {
    rm_span_ = tracer->begin_span(
        "engine.rm_launch", "engine", static_cast<int>(self.node().id()),
        self.pid(), span_, "nnodes=" + std::to_string(spec.nnodes));
  }
  auto res = adapter_->launch_job(self, spec, handler);
  if (!res.is_ok()) {
    send_error(self, "launch", res.status.message());
    return;
  }
  launcher_pid_ = res.value;
}

void EngineProgram::drive(cluster::Process& self) {
  while (!event_manager_.empty()) {
    const LmonEvent ev = decoder_.decode(event_manager_.pop());
    handle_event(self, ev);
  }
}

void EngineProgram::handle_event(cluster::Process& self,
                                 const LmonEvent& ev) {
  switch (ev.type) {
    case LmonEventType::JobStoppedAtBreakpoint:
    case LmonEventType::AttachComplete:
      if (phase_ == Phase::WaitingForJob) handle_job_stopped(self);
      break;
    case LmonEventType::JobExited:
      handle_job_exited(self, ev.native.exit_code);
      break;
    case LmonEventType::Ignored:
      break;
  }
}

void EngineProgram::handle_job_stopped(cluster::Process& self) {
  phase_ = Phase::FetchingTable;
  // Total event-handling cost across the RM trace: #debug events times the
  // average handler cost (paper: "18 ms at any scale" on SLURM, because a
  // well designed RM has no events that grow with job size).
  const auto& costs = self.machine().costs();
  const sim::Time tracing =
      static_cast<sim::Time>(costs.rm_debug_events) *
      costs.engine_handler_cost;
  if (!tracing_cost_charged_) {
    tracing_cost_charged_ = true;
    self.machine().charge("tracing", tracing);
  }
  self.post(tracing, [this, &self] {
    self.machine().mark("e3_mpir_breakpoint");
    if (obs::Tracer* tracer = self.machine().tracer(); tracer != nullptr) {
      tracer->end_span(rm_span_);
    }
    fetch_and_ship_proctable(self);
  });
}

void EngineProgram::fetch_and_ship_proctable(cluster::Process& self) {
  const sim::Time fetch_begin = self.sim().now();
  if (obs::Tracer* tracer = self.machine().tracer(); tracer != nullptr) {
    rpdtab_span_ = tracer->begin_span("engine.rpdtab_fetch", "engine",
                                      static_cast<int>(self.node().id()),
                                      self.pid(), span_);
  }
  adapter_->fetch_proctable([this, &self, fetch_begin](Status st,
                                                       Bytes blob) {
    if (!st.is_ok()) {
      send_error(self, "rpdtab-fetch", st.message());
      return;
    }
    self.machine().mark("e4_rpdtab_fetched");
    self.machine().charge("rpdtab_fetch", self.sim().now() - fetch_begin);
    if (obs::Tracer* tracer = self.machine().tracer(); tracer != nullptr) {
      tracer->end_span(rpdtab_span_,
                       "bytes=" + std::to_string(blob.size()));
    }
    auto table = Rpdtab::from_proctable_blob(blob);
    if (!table) {
      send_error(self, "rpdtab-fetch", "malformed proctable");
      return;
    }
    proctable_ = std::move(*table);
    send_fe(self, LmonpMessage::fe_engine(FeEngineMsg::ProctableData,
                                          proctable_.pack()));
    // Recover the job id (totalview_jobid convention) for `srun --jobid`-
    // style co-location, then launch the daemons.
    adapter_->fetch_jobid([this, &self](Status jst, rm::JobId jobid) {
      if (!jst.is_ok()) {
        send_error(self, "jobid-fetch", jst.message());
        return;
      }
      jobid_ = jobid;
      co_spawn_daemons(self);
    });
  });
}

bool EngineProgram::tune_session(cluster::Process& self) {
  // Cost base: the machine's own calibration, replaced by a named platform
  // profile when the session selected one, overlaid by a calibration file.
  cluster::CostModel costs = self.machine().costs();
  if (!platform_.empty()) {
    const auto profile =
        cluster::CostModelRegistry::builtin().find(platform_);
    if (!profile) {
      send_error(self, "auto-tune",
                 "unknown platform profile: " + platform_);
      return false;
    }
    costs = *profile;
  }
  if (!calibration_.empty()) {
    Status st = cluster::CostModelRegistry::apply_calibration_file(
        calibration_, costs);
    if (!st.is_ok()) {
      send_error(self, "auto-tune", st.message());
      return false;
    }
  }

  AutoTuneRequest req;
  req.strategy = strategy_opt_;
  req.topology = topo_opt_;
  req.rndv = rndv_setting_;
  req.platform = platform_;
  const std::size_t nhosts = proctable_.hosts().size();
  req.n_nodes = static_cast<int>(nhosts == 0 ? 1 : nhosts);
  req.tasks_per_node = static_cast<int>(std::max<std::size_t>(
      1, nhosts == 0 ? 1 : proctable_.size() / nhosts));

  obs::Tracer* tracer = self.machine().tracer();
  obs::SpanId tune_span = obs::kNoSpan;
  if (tracer != nullptr) {
    tune_span = tracer->begin_span(
        "engine.autotune", "engine", static_cast<int>(self.node().id()),
        self.pid(), span_,
        "n=" + std::to_string(req.n_nodes) +
            (platform_.empty() ? std::string() : " platform=" + platform_));
  }
  tuned_ = auto_tune(costs, req);
  tuned_.heal = heal_;
  tuned_valid_ = true;
  strategy_kind_ = tuned_.strategy;
  fabric_topo_ = tuned_.topology;
  launch_fanout_ = tuned_.topology.arity;
  rndv_threshold_ = tuned_.rndv_threshold;
  if (tracer != nullptr) {
    tracer->end_span(
        tune_span,
        "strategy=" + std::string(comm::to_string(tuned_.strategy)) +
            " topo=" + tuned_.topology.to_string() +
            " rndv=" + std::to_string(tuned_.rndv_threshold) +
            " predicted_s=" + std::to_string(tuned_.predicted_total_s));
  }
  if (obs::Metrics* metrics = self.machine().metrics(); metrics != nullptr) {
    metrics->set_gauge("autotune.predicted_total_s",
                       tuned_.predicted_total_s);
    metrics->set_gauge("autotune.strategy",
                       static_cast<double>(tuned_.strategy));
    metrics->set_gauge("autotune.fabric_arity",
                       static_cast<double>(tuned_.topology.arity));
    metrics->set_gauge("autotune.rndv_threshold_bytes",
                       static_cast<double>(tuned_.rndv_threshold));
    metrics->set_gauge("autotune.bcast_crossover_bytes",
                       static_cast<double>(tuned_.bcast_crossover));
    metrics->set_gauge("autotune.gather_crossover_bytes",
                       static_cast<double>(tuned_.gather_crossover));
    metrics->set_gauge("autotune.heal", tuned_.heal ? 1.0 : 0.0);
  }
  return true;
}

void EngineProgram::co_spawn_daemons(cluster::Process& self) {
  phase_ = Phase::Spawning;
  const auto& args = self.args();
  if (!tune_session(self)) return;

  comm::LaunchRequest req;
  req.daemon_exe = arg_value(args, "--daemon-exe=").value_or("");
  req.daemon_args = arg_list(args, "--daemon-arg=");
  req.bootstrap.topology = fabric_topo_;
  req.bootstrap.port = static_cast<cluster::Port>(
      arg_int(args, "--fabric-port=").value_or(cluster::kToolFabricBasePort));
  req.bootstrap.session = session_;
  req.bootstrap.fe_host = fe_host_;
  req.bootstrap.fe_port = fe_port_;
  req.bootstrap.hosts = proctable_.hosts();
  req.bootstrap.size =
      static_cast<std::uint32_t>(req.bootstrap.hosts.size());
  req.bootstrap.rndv_threshold = rndv_threshold_;
  req.bootstrap.platform = platform_;
  req.bootstrap.heal = heal_;
  req.bootstrap.heal_grace_ms = heal_grace_ms_;
  req.bootstrap.max_sessions = max_tree_sessions_;
  req.launch_fanout = launch_fanout_;
  req.jobid = jobid_;
  req.report_port = static_cast<cluster::Port>(
      arg_int(args, "--report-port=").value_or(0));

  if (req.daemon_exe.empty()) {
    // Pure job-control session (no daemons requested): job is usable now.
    phase_ = Phase::Running;
    if (obs::Tracer* tracer = self.machine().tracer(); tracer != nullptr) {
      tracer->end_span(span_, "no daemons");
    }
    adapter_->continue_job();
    payload::DaemonsSpawned spawned;
    spawned.ok = true;
    if (tuned_valid_) spawned.tuned = tuned_.encode();
    send_fe(self, LmonpMessage::fe_engine(FeEngineMsg::DaemonsSpawned,
                                          spawned.encode()));
    return;
  }

  // The strategy is a session option: the RM's scalable bulk launch by
  // default, with the paper's §2 ad hoc baselines available for ablation.
  strategy_ = comm::make_launch_strategy(strategy_kind_);
  self.machine().mark("e5_cospawn_invoked");
  if (obs::Tracer* tracer = self.machine().tracer(); tracer != nullptr) {
    cospawn_span_ = tracer->begin_span(
        "engine.cospawn", "engine", static_cast<int>(self.node().id()),
        self.pid(), span_,
        "strategy=" + std::string(comm::to_string(strategy_kind_)) +
            " hosts=" + std::to_string(req.bootstrap.hosts.size()));
    tracer->set_anchor("cospawn:" + session_, cospawn_span_);
  }
  strategy_->launch(self, std::move(req),
                    [this, &self](comm::LaunchResult res) {
                      on_daemons_launched(self, std::move(res));
                    });
}

void EngineProgram::on_daemons_launched(cluster::Process& self,
                                        comm::LaunchResult res) {
  self.machine().mark("e6_daemons_spawned");
  if (obs::Tracer* tracer = self.machine().tracer(); tracer != nullptr) {
    tracer->end_span(cospawn_span_,
                     "daemons=" + std::to_string(res.daemons.size()));
    tracer->end_span(span_);
  }
  if (res.jobid != rm::kInvalidJob) jobid_ = res.jobid;
  payload::DaemonsSpawned spawned;
  spawned.ok = res.status.is_ok();
  spawned.error = res.status.message();
  spawned.daemon_table = Rpdtab(std::move(res.daemons)).pack();
  if (tuned_valid_) spawned.tuned = tuned_.encode();
  send_fe(self, LmonpMessage::fe_engine(FeEngineMsg::DaemonsSpawned,
                                        spawned.encode()));
  phase_ = Phase::Running;
  // Release the job: the tool daemons are in place.
  adapter_->continue_job();
}

void EngineProgram::teardown_daemons(cluster::Process& self) {
  if (strategy_ != nullptr) strategy_->teardown(self, nullptr);
  // MW sessions are always RM-bulk via the adapter.
  adapter_->kill_daemons(nullptr);
}

void EngineProgram::handle_job_exited(cluster::Process& self, int code) {
  if (phase_ == Phase::WaitingForJob || phase_ == Phase::FetchingTable) {
    send_error(self, "job", "RM launcher exited before daemon launch");
    return;
  }
  payload::StatusEvent ev;
  ev.kind = payload::StatusEvent::JobExited;
  ev.code = code;
  send_fe(self,
          LmonpMessage::fe_engine(FeEngineMsg::StatusEvent, ev.encode()));
}

void EngineProgram::on_fe_message(cluster::Process& self,
                                  const cluster::ChannelPtr& ch,
                                  cluster::Message m) {
  (void)ch;
  auto msg = LmonpMessage::decode(m);
  if (!msg || msg->msg_class != MsgClass::FeEngine) return;
  switch (static_cast<FeEngineMsg>(msg->type)) {
    case FeEngineMsg::DetachReq:
      teardown_daemons(self);
      adapter_->detach_job();
      self.post(sim::ms(1), [&self] { self.exit(0); });
      break;
    case FeEngineMsg::KillReq:
      teardown_daemons(self);
      adapter_->kill_tasks(self, jobid_, proctable_.hosts());
      adapter_->kill_job();
      // Give the kill requests time to leave before tearing down.
      self.post(sim::ms(50), [&self] { self.exit(0); });
      break;
    case FeEngineMsg::ShutdownReq:
      adapter_->detach_job();
      self.exit(0);
      break;
    case FeEngineMsg::LaunchMwReq:
      handle_launch_mw(self, msg->lmon_payload);
      break;
    default:
      break;
  }
}

void EngineProgram::handle_launch_mw(cluster::Process& self,
                                     const Bytes& b) {
  auto req = payload::LaunchMwReq::decode(b);
  if (!req) return;
  RmAdapter::CoSpawnConfig cfg;
  cfg.alloc_nodes = req->nnodes;
  cfg.middleware_partition = true;
  cfg.daemon_exe = req->daemon_exe;
  cfg.daemon_args = req->daemon_args;
  cfg.fabric.port = req->fabric_port;
  cfg.fabric.fanout = req->fabric_fanout;
  cfg.fabric.topo_kind = req->fabric_topo;
  cfg.fabric.rndv_threshold = rndv_threshold_;
  cfg.fabric.platform = platform_;
  cfg.fabric.heal = heal_;
  cfg.fabric.heal_grace_ms = heal_grace_ms_;
  cfg.fabric.max_sessions = max_tree_sessions_;
  cfg.fabric.fe_host = fe_host_;
  cfg.fabric.fe_port = fe_port_;
  cfg.fabric.session = session_ + "-mw" + std::to_string(mw_sessions_);
  cfg.report_host = self.node().hostname();
  // Distinct report port per MW launch, next to the BE report port.
  const auto base = arg_int(self.args(), "--report-port=").value_or(0);
  cfg.report_port =
      static_cast<cluster::Port>(base + 1 + mw_sessions_);
  mw_sessions_ += 1;

  Status st = adapter_->co_spawn(self, cfg, [this, &self](rm::LaunchDone done) {
    payload::DaemonsSpawned spawned;
    spawned.ok = done.ok;
    spawned.error = done.error;
    spawned.daemon_table = Rpdtab(done.daemons).pack();
    send_fe(self, LmonpMessage::fe_engine(FeEngineMsg::MwSpawned,
                                          spawned.encode()));
  });
  if (!st.is_ok()) send_error(self, "mw-spawn", st.message());
}

void EngineProgram::on_message(cluster::Process& self,
                               const cluster::ChannelPtr& ch,
                               cluster::Message msg) {
  // Tree-rsh launches report back over plain connections; hand those acks
  // to the launcher. Everything else the engine speaks flows over channels
  // with dedicated handlers.
  (void)rsh::TreeRshLauncher::handle_report(self, ch, msg);
}

void EngineProgram::on_child_exit(cluster::Process& self, cluster::Pid child,
                                  int exit_code) {
  (void)self;
  (void)child;
  (void)exit_code;
  // Co-spawn launchers report over their channel; exits are routine.
}

void EngineProgram::send_fe(cluster::Process& self, LmonpMessage msg) {
  if (fe_channel_ != nullptr) self.send(fe_channel_, msg.encode());
}

void EngineProgram::send_error(cluster::Process& self,
                               const std::string& stage,
                               const std::string& error) {
  sim::LogLine(sim::LogLevel::Warn, self.sim().now(), "lmon_engine")
      << stage << " failed: " << error;
  if (obs::Tracer* tracer = self.machine().tracer(); tracer != nullptr) {
    tracer->end_span(span_, stage + " failed: " + error);
  }
  payload::EngineError err;
  err.stage = stage;
  err.error = error;
  send_fe(self,
          LmonpMessage::fe_engine(FeEngineMsg::EngineError, err.encode()));
}

}  // namespace lmon::core
