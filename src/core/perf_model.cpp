#include "core/perf_model.hpp"

#include <algorithm>
#include <cmath>

namespace lmon::core {

PerfModel::PerfModel(const cluster::CostModel& costs, std::uint32_t fanout)
    : costs_(costs), fanout_(fanout == 0 ? 2 : fanout) {}

int PerfModel::depth(int n) const {
  if (n <= 1) return 0;
  // Contiguous chunk splitting with degree k: level l reaches ~k^l nodes.
  int levels = 0;
  double reached = 1.0;
  while (reached < static_cast<double>(n)) {
    reached *= static_cast<double>(fanout_);
    levels += 1;
  }
  return levels;
}

double PerfModel::spawn_cost(double image_mb) const {
  return seconds(costs_.fork_cost + costs_.exec_base_cost +
                 static_cast<sim::Time>(
                     image_mb * static_cast<double>(costs_.exec_per_mb)) +
                 costs_.sched_latency);
}

double PerfModel::connect_cost() const {
  return seconds(3 * costs_.net_latency + costs_.connect_cost);
}

double PerfModel::transfer_cost(double bytes) const {
  return seconds(costs_.net_latency) +
         bytes / costs_.bandwidth_bytes_per_sec;
}

LaunchSpawnPrediction PerfModel::predict(int ndaemons,
                                         int tasks_per_daemon) const {
  LaunchSpawnPrediction p;
  const double n = static_cast<double>(ndaemons);
  const double ntasks = n * static_cast<double>(tasks_per_daemon);
  const int d = depth(ndaemons);
  const double dd = static_cast<double>(d);

  // Per-level tree-launch request size is dominated by the host list.
  const double hostlist_bytes = 16.0 * n;
  const double launch_hop =
      connect_cost() + transfer_cost(hostlist_bytes) +
      seconds(costs_.rm_slurmd_handle);
  const double quadratic =
      costs_.rm_quadratic_ns_per_node2 * n * n * 1e-9;
  const double per_node_bookkeeping =
      n * seconds(costs_.rm_launcher_per_node) + quadratic;

  // --- T(job): allocate + tree-launch the application tasks ----------------
  const double task_ack_bytes = kRpdtabEntryBytes * ntasks;
  p.t_job = seconds(costs_.rm_launcher_startup) + connect_cost() +
            seconds(costs_.rm_controller_rpc + costs_.rm_allocate_cost) +
            per_node_bookkeeping + dd * launch_hop +
            static_cast<double>(tasks_per_daemon) *
                seconds(costs_.rm_task_setup) +
            spawn_cost(costs_.app_image_mb) +
            dd * (transfer_cost(task_ack_bytes) +
                  seconds(costs_.rm_slurmd_handle));

  // --- T(daemon): co-spawn launcher + tree-launch one daemon per node -------
  const double daemon_ack_bytes = kRpdtabEntryBytes * n;
  p.t_daemon = spawn_cost(costs_.launcher_image_mb) +
               seconds(costs_.rm_launcher_startup) + connect_cost() +
               seconds(costs_.rm_controller_rpc) + per_node_bookkeeping +
               dd * launch_hop + seconds(costs_.rm_task_setup) +
               spawn_cost(costs_.tool_daemon_image_mb) +
               dd * (transfer_cost(daemon_ack_bytes) +
                     seconds(costs_.rm_slurmd_handle));

  // --- T(setup): daemon fabric wiring (register wave down, SetupUp wave up)
  p.t_setup = seconds(costs_.fabric_endpoint_init) +
              dd * (connect_cost() + seconds(costs_.iccl_msg_handle)) +
              dd * (transfer_cost(24.0) + seconds(costs_.iccl_msg_handle));

  // --- T(collective): RPDTAB broadcast down + ready-ack gather up -----------
  // Fan-out sends serialize per level (k message quanta at each internal
  // node) and each level receives fanout_ gathered acks.
  const double rpdtab_bytes = kRpdtabEntryBytes * ntasks;
  const double per_level_fanout =
      static_cast<double>(std::min<std::uint32_t>(
          fanout_, ndaemons > 1 ? static_cast<std::uint32_t>(ndaemons - 1)
                                : 1)) *
      seconds(costs_.iccl_msg_handle);
  p.t_collective =
      dd * (transfer_cost(rpdtab_bytes) + per_level_fanout) +
      dd * (transfer_cost(16.0 * n) + per_level_fanout);

  // --- LaunchMON terms -------------------------------------------------------
  p.tracing = static_cast<double>(costs_.rm_debug_events) *
              seconds(costs_.engine_handler_cost);
  p.rpdtab_fetch =
      seconds(costs_.mem_read_base) +
      rpdtab_bytes / 1024.0 * seconds(costs_.mem_read_per_kb);
  p.handshake = connect_cost() + transfer_cost(rpdtab_bytes) +
                transfer_cost(64.0) + transfer_cost(64.0);
  p.other = seconds(costs_.engine_fixed_cost) + spawn_cost(9.0) +
            connect_cost();
  return p;
}

}  // namespace lmon::core
