#include "core/perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <vector>

namespace lmon::core {

std::string_view to_string(CollectiveProtocol proto) {
  return proto == CollectiveProtocol::Eager ? "eager" : "rendezvous";
}

int PerfModel::fabric_depth(const comm::TopologySpec& spec, int n) {
  if (n <= 1) return 0;
  switch (spec.kind) {
    case comm::TopologyKind::KAry: {
      const double k = static_cast<double>(spec.arity == 0 ? 1 : spec.arity);
      if (k <= 1.0) return n - 1;  // degenerate chain
      // Heap layout: a depth-d tree holds (k^(d+1)-1)/(k-1) ranks.
      int d = 0;
      double capacity = 1.0;
      double level = 1.0;
      while (capacity < static_cast<double>(n)) {
        level *= k;
        capacity += level;
        d += 1;
      }
      return d;
    }
    case comm::TopologyKind::Binomial: {
      // depth_of(r) = popcount(r); the deepest rank below n has
      // floor(log2(n)) set bits (2^b - 1 <= n - 1).
      int b = 0;
      while ((1ll << (b + 1)) - 1 <= static_cast<long long>(n) - 1) b += 1;
      return b;
    }
    case comm::TopologyKind::Flat:
      return 1;
  }
  return 1;
}

double PerfModel::fabric_pipeline_quanta(const comm::TopologySpec& spec,
                                         int n) {
  if (n <= 1) return 0.0;
  switch (spec.kind) {
    case comm::TopologyKind::Flat:
      return static_cast<double>(n - 1);
    case comm::TopologyKind::KAry: {
      const std::uint32_t k = spec.arity == 0 ? 1 : spec.arity;
      std::vector<double> arrival(static_cast<std::size_t>(n), 0.0);
      double worst = 0.0;
      for (int r = 1; r < n; ++r) {
        const int parent = (r - 1) / static_cast<int>(k);
        const double pos =
            static_cast<double>((r - 1) % static_cast<int>(k) + 1);
        arrival[static_cast<std::size_t>(r)] =
            arrival[static_cast<std::size_t>(parent)] + pos;
        worst = std::max(worst, arrival[static_cast<std::size_t>(r)]);
      }
      return worst;
    }
    case comm::TopologyKind::Binomial: {
      std::vector<double> arrival(static_cast<std::size_t>(n), 0.0);
      double worst = 0.0;
      for (int r = 1; r < n; ++r) {
        const int parent = r & (r - 1);  // clear the lowest set bit
        const int bit = r - parent;
        int pos = 1;
        while ((1 << (pos - 1)) < bit) pos += 1;  // children ascend by bit
        arrival[static_cast<std::size_t>(r)] =
            arrival[static_cast<std::size_t>(parent)] +
            static_cast<double>(pos);
        worst = std::max(worst, arrival[static_cast<std::size_t>(r)]);
      }
      return worst;
    }
  }
  return 0.0;
}

PerfModel::PerfModel(const cluster::CostModel& costs, std::uint32_t fanout)
    : costs_(costs), fanout_(fanout == 0 ? 2 : fanout) {}

int PerfModel::chunk_depth(int n, std::uint32_t fanout) const {
  if (n <= 1) return 0;
  // Contiguous chunk splitting with degree k: level l reaches ~k^l nodes.
  const std::uint32_t k = fanout == 0 ? 2 : fanout;
  if (k == 1) return n - 1;  // degenerate chain: one forward per level
  int levels = 0;
  double reached = 1.0;
  while (reached < static_cast<double>(n)) {
    reached *= static_cast<double>(k);
    levels += 1;
  }
  return levels;
}

int PerfModel::depth(int n) const { return chunk_depth(n, fanout_); }

double PerfModel::spawn_cost(double image_mb) const {
  return seconds(costs_.fork_cost + costs_.exec_base_cost +
                 static_cast<sim::Time>(
                     image_mb * static_cast<double>(costs_.exec_per_mb)) +
                 costs_.sched_latency);
}

double PerfModel::connect_cost() const {
  return seconds(3 * costs_.net_latency + costs_.connect_cost);
}

double PerfModel::transfer_cost(double bytes) const {
  return seconds(costs_.net_latency) +
         bytes / costs_.bandwidth_bytes_per_sec;
}

// --- per-strategy T(daemon) ---------------------------------------------------

double PerfModel::rsh_serialized_cost() const {
  // The rsh invocation blocks its caller (Process::reserve_busy): helper
  // fork plus session establishment serialize within one launching process.
  return seconds(costs_.rsh_client_fork + costs_.rsh_session_cost);
}

double PerfModel::rsh_tail_cost(double req_bytes, double image_mb) const {
  // After the session is up: connect to rshd, ship the exec request, rshd
  // authenticates and forks the command, which then finishes its own exec.
  return connect_cost() + transfer_cost(req_bytes) +
         seconds(costs_.rshd_spawn_cost) + spawn_cost(image_mb);
}

double PerfModel::rm_launch_hop(double n) const {
  // One level of the RM's tree-forwarded launch: connect to the next node
  // daemon, ship the host list, and let it handle the request.
  return connect_cost() + transfer_cost(16.0 * n) +
         seconds(costs_.rm_slurmd_handle);
}

double PerfModel::rm_bookkeeping(double n) const {
  // Launcher-side linear per-node work plus the super-linear RM term the
  // paper observed past ~512 daemons (mirrors Launcher::per_node_overhead).
  return n * seconds(costs_.rm_launcher_per_node) +
         costs_.rm_quadratic_ns_per_node2 * n * n * 1e-9;
}

double PerfModel::rm_bulk_daemons(int n, std::uint32_t launch_fanout) const {
  const double nn = static_cast<double>(n);
  const double dd = static_cast<double>(chunk_depth(n, launch_fanout));
  const double daemon_ack_bytes = kRpdtabEntryBytes * nn;
  return spawn_cost(costs_.launcher_image_mb) +
         seconds(costs_.rm_launcher_startup) + connect_cost() +
         seconds(costs_.rm_controller_rpc) + rm_bookkeeping(nn) +
         dd * rm_launch_hop(nn) + seconds(costs_.rm_task_setup) +
         spawn_cost(costs_.tool_daemon_image_mb) +
         dd * (transfer_cost(daemon_ack_bytes) +
               seconds(costs_.rm_slurmd_handle));
}

double PerfModel::serial_rsh_daemons(int n) const {
  // One blocking session per node, in order: the next target starts only
  // after the previous ExecResp arrived. The daemon argv carries the full
  // bootstrap host list, so the request grows (mildly) with n.
  const double req_bytes = 16.0 * static_cast<double>(n) + 128.0;
  const double per_target =
      rsh_serialized_cost() + connect_cost() + transfer_cost(req_bytes) +
      seconds(costs_.rshd_spawn_cost) + transfer_cost(64.0);
  return static_cast<double>(n) * per_target;
}

double PerfModel::tree_rsh_daemons(int n, std::uint32_t launch_fanout) const {
  // Mirrors the recursive agent protocol in rsh/launchers.cpp: an agent
  // covering m hosts spawns its local daemon (off the ack critical path),
  // rsh-starts one agent per contiguous chunk of the remaining m-1 hosts
  // (the k session costs serialize at that agent), and acks upward once
  // every child acked. The launching front end does the same over all n
  // hosts. Critical path: the *last* chunk at each level waits for k
  // serialized sessions, so cost is depth-dominated at O(k log_k n).
  const std::uint32_t k = launch_fanout == 0 ? 2 : launch_fanout;
  const double ser = rsh_serialized_cost();
  const double req_bytes = 16.0 * static_cast<double>(n) + 128.0;
  const double agent_tail = rsh_tail_cost(req_bytes, 2.0);  // agent image

  // T(m): agent start -> its TreeAck delivered at the parent.
  std::map<int, double> memo;
  auto subtree_time = [&](auto&& self, int m) -> double {
    if (m <= 0) return 0.0;
    auto it = memo.find(m);
    if (it != memo.end()) return it->second;
    double children_done = 0.0;
    const auto chunks =
        comm::split_contiguous(static_cast<std::size_t>(m - 1), k);
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      const double child = static_cast<double>(i + 1) * ser + agent_tail +
                           self(self, static_cast<int>(chunks[i].second));
      children_done = std::max(children_done, child);
    }
    const double ack_bytes = 24.0 * static_cast<double>(m) + 64.0;
    const double done =
        children_done + connect_cost() + transfer_cost(ack_bytes);
    memo.emplace(m, done);
    return done;
  };

  // Front-end side: all n hosts are split (the FE itself runs no daemon).
  double total = 0.0;
  const auto root_chunks =
      comm::split_contiguous(static_cast<std::size_t>(n), k);
  for (std::size_t i = 0; i < root_chunks.size(); ++i) {
    const double chunk_done =
        static_cast<double>(i + 1) * ser + agent_tail +
        subtree_time(subtree_time, static_cast<int>(root_chunks[i].second));
    total = std::max(total, chunk_done);
  }
  return total;
}

// --- launchAndSpawn ------------------------------------------------------------

LaunchSpawnPrediction PerfModel::predict(
    comm::LaunchStrategyKind strategy, const comm::TopologySpec& fabric,
    int n_nodes, int procs_per_node,
    std::uint32_t rndv_threshold_bytes) const {
  LaunchSpawnPrediction p;
  const double n = static_cast<double>(n_nodes);
  const double ntasks = n * static_cast<double>(procs_per_node);

  // Resolve the fabric shape the way the FE API does: a k-ary arity of 0
  // means "the platform's RM fan-out". The launch protocol's degree (rsh
  // agents, RM node-daemon forwarding) follows the resolved arity.
  comm::TopologySpec resolved = fabric;
  if (resolved.kind == comm::TopologyKind::KAry && resolved.arity == 0) {
    resolved.arity = static_cast<std::uint32_t>(costs_.rm_launch_fanout);
  }
  const std::uint32_t launch_fanout =
      resolved.arity != 0
          ? resolved.arity
          : static_cast<std::uint32_t>(costs_.rm_launch_fanout);

  // --- T(job): allocate + tree-launch the application tasks; always the
  // RM's native path (at its own fan-out), whatever bootstraps the daemons.
  const std::uint32_t job_fanout =
      static_cast<std::uint32_t>(costs_.rm_launch_fanout);
  const double dj = static_cast<double>(chunk_depth(n_nodes, job_fanout));
  const double task_ack_bytes = kRpdtabEntryBytes * ntasks;
  p.t_job = seconds(costs_.rm_launcher_startup) + connect_cost() +
            seconds(costs_.rm_controller_rpc + costs_.rm_allocate_cost) +
            rm_bookkeeping(n) + dj * rm_launch_hop(n) +
            static_cast<double>(procs_per_node) *
                seconds(costs_.rm_task_setup) +
            spawn_cost(costs_.app_image_mb) +
            dj * (transfer_cost(task_ack_bytes) +
                  seconds(costs_.rm_slurmd_handle));

  // --- T(daemon): the strategy-dependent term -------------------------------
  switch (strategy) {
    case comm::LaunchStrategyKind::RmBulk:
      p.t_daemon = rm_bulk_daemons(n_nodes, launch_fanout);
      break;
    case comm::LaunchStrategyKind::SerialRsh:
      p.t_daemon = serial_rsh_daemons(n_nodes);
      break;
    case comm::LaunchStrategyKind::TreeRsh:
      p.t_daemon = tree_rsh_daemons(n_nodes, launch_fanout);
      break;
  }

  // --- T(setup): daemon fabric wiring (register wave down, SetupUp wave up)
  const double df = static_cast<double>(fabric_depth(resolved, n_nodes));
  p.t_setup = seconds(costs_.fabric_endpoint_init) +
              df * (connect_cost() + seconds(costs_.iccl_msg_handle)) +
              df * (transfer_cost(24.0) + seconds(costs_.iccl_msg_handle));

  // --- T(collective): RPDTAB broadcast down + ready-ack gather up -----------
  // The downward fan-out serializes per sibling but pipelines across
  // levels (see fabric_pipeline_quanta); the upward gather overlaps the
  // tail of the broadcast, so one pipelined pass dominates, plus the
  // payload transfers and per-hop receive handling along the deepest path.
  // Which protocol the broadcast rides follows the session threshold: below
  // it each sibling quantum carries the per-child payload copy and each hop
  // pays the receive-side copy-out (eager); at or above it the exact
  // rendezvous replay prices the RTS/CTS waves and chunk pipeline instead.
  const double rpdtab_bytes = kRpdtabEntryBytes * ntasks;
  const std::uint32_t eff_threshold =
      rndv_threshold_bytes != 0 ? rndv_threshold_bytes
                                : costs_.iccl_rndv_threshold_bytes;
  const double ack_path = df * (transfer_cost(16.0 * n) +
                                seconds(costs_.iccl_msg_handle));
  if (rpdtab_bytes >= static_cast<double>(eff_threshold)) {
    p.t_collective =
        collective_bcast(CollectiveProtocol::Rendezvous, resolved, n_nodes,
                         static_cast<std::size_t>(rpdtab_bytes)) +
        ack_path;
  } else {
    const double eager_copy =
        rpdtab_bytes / 1024.0 * seconds(costs_.iccl_eager_copy_per_kb);
    const double pipeline_cost =
        fabric_pipeline_quanta(resolved, n_nodes) *
        (seconds(costs_.iccl_msg_handle) + eager_copy);
    p.t_collective = pipeline_cost +
                     df * (transfer_cost(rpdtab_bytes) + eager_copy) +
                     ack_path;
  }

  // --- LaunchMON terms -------------------------------------------------------
  p.tracing = static_cast<double>(costs_.rm_debug_events) *
              seconds(costs_.engine_handler_cost);
  p.rpdtab_fetch =
      seconds(costs_.mem_read_base) +
      rpdtab_bytes / 1024.0 * seconds(costs_.mem_read_per_kb);
  p.handshake = connect_cost() + transfer_cost(rpdtab_bytes) +
                transfer_cost(64.0) + transfer_cost(64.0);
  p.other = seconds(costs_.engine_fixed_cost) + spawn_cost(9.0) +
            connect_cost();
  return p;
}

LaunchSpawnPrediction PerfModel::predict(int ndaemons,
                                         int tasks_per_daemon) const {
  return predict(comm::LaunchStrategyKind::RmBulk,
                 comm::TopologySpec{comm::TopologyKind::KAry, fanout_},
                 ndaemons, tasks_per_daemon);
}

bool PerfModel::predicts_failure(comm::LaunchStrategyKind strategy,
                                 int n_nodes) const {
  // Serial rsh pins one helper child (and one open session) per node at the
  // front end for the whole launch, so the per-user fork limit is a hard
  // wall. The tree variant holds at most `fanout` helpers per agent and the
  // RM path forks a single srun: neither exhausts the limit. On machines
  // whose compute/IO nodes run no remote-access services at all
  // (BlueGene-class lightweight kernels), every rsh flavor is dead on
  // arrival - only the RM's own launch path can place daemons.
  if (!costs_.has_remote_access &&
      strategy != comm::LaunchStrategyKind::RmBulk) {
    return true;
  }
  return strategy == comm::LaunchStrategyKind::SerialRsh &&
         n_nodes > costs_.rsh_fork_limit;
}

// --- collective protocol family (eager vs rendezvous) ------------------------
//
// Both forms replay the Iccl event schedule rank by rank in integral
// nanoseconds - same casts, same frame overheads, same per-channel FIFO
// clamp - so the bench's model-vs-measured residuals compare expectation
// against expectation, exactly like the launch models above.

namespace {

/// Encoded frame overhead: kind(1) + tag(4) + src(4) + count(4) per frame,
/// plus rank(4) + length(4) per entry (see iccl.cpp encode_frame).
constexpr double kFrameBytes = 13.0;
constexpr double kEntryBytes = 8.0;

sim::Time scaled_per_kb(sim::Time per_kb, double bytes) {
  return static_cast<sim::Time>(static_cast<double>(per_kb) * bytes /
                                1024.0);
}

/// Shared probe geometry for the protocol-crossover solvers: both latency
/// curves are affine within a chunk segment, so probing both endpoints of
/// every segment up to max_payload finds the last eager win exactly, and
/// the zero crossing interpolates in closed form. `gap` is eager minus
/// rendezvous at a payload.
std::optional<std::size_t> crossover_from_gap(
    std::size_t chunk_bytes, std::size_t max_payload,
    const std::function<double(std::size_t)>& gap) {
  constexpr std::size_t kMin = 1024;
  if (max_payload < kMin) return std::nullopt;
  const std::size_t C = chunk_bytes;
  std::vector<std::size_t> probes{kMin};
  for (std::size_t m = kMin / C;; ++m) {
    const std::size_t begin = m * C + 1;
    if (begin > max_payload) break;
    const std::size_t end = (m + 1) * C;
    if (begin > kMin) probes.push_back(begin);
    if (end > kMin && end <= max_payload) probes.push_back(end);
  }
  if (probes.back() != max_payload) probes.push_back(max_payload);

  std::vector<double> f(probes.size());
  std::ptrdiff_t last_loss = -1;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    f[i] = gap(probes[i]);
    if (f[i] <= 0.0) last_loss = static_cast<std::ptrdiff_t>(i);
  }
  if (last_loss < 0) return kMin;  // cheaper from the smallest payload on
  if (last_loss + 1 == static_cast<std::ptrdiff_t>(probes.size())) {
    return std::nullopt;  // eager still wins at max_payload
  }
  const auto i = static_cast<std::size_t>(last_loss);
  const double p0 = static_cast<double>(probes[i]);
  const double p1 = static_cast<double>(probes[i + 1]);
  if (f[i + 1] - f[i] <= 0.0) return probes[i + 1];
  const double s = p0 + (0.0 - f[i]) * (p1 - p0) / (f[i + 1] - f[i]);
  return static_cast<std::size_t>(std::llround(s));
}

}  // namespace

double PerfModel::collective_bcast(CollectiveProtocol proto,
                                   const comm::TopologySpec& spec, int n,
                                   std::size_t payload_bytes) const {
  if (n <= 1) return 0.0;
  comm::TopologySpec resolved = spec;
  if (resolved.kind == comm::TopologyKind::KAry && resolved.arity == 0) {
    resolved.arity = static_cast<std::uint32_t>(costs_.rm_launch_fanout);
  }
  const comm::Topology topo(resolved, static_cast<std::uint32_t>(n));
  const sim::Time L = costs_.net_latency;
  const sim::Time h = costs_.iccl_msg_handle;
  const double bw = costs_.bandwidth_bytes_per_sec;
  auto wire = [&](double bytes) {
    return L + static_cast<sim::Time>(bytes / bw * 1e9);
  };
  const double S = static_cast<double>(payload_bytes);

  if (proto == CollectiveProtocol::Eager) {
    // Store-and-forward: a node starts its own fan-out only once the full
    // payload arrived and the receive copy-out is paid.
    const sim::Time q = h + scaled_per_kb(costs_.iccl_eager_copy_per_kb, S);
    const sim::Time recv =
        h + scaled_per_kb(costs_.iccl_eager_copy_per_kb, S);
    const sim::Time frame_wire = wire(kFrameBytes + kEntryBytes + S);
    std::vector<sim::Time> start(static_cast<std::size_t>(n), 0);
    sim::Time worst = 0;
    for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(n); ++r) {
      const auto children = topo.children_of(r);
      for (std::size_t i = 0; i < children.size(); ++i) {
        const sim::Time send = start[r] + static_cast<sim::Time>(i) * q;
        start[children[i]] = send + frame_wire + recv;
        worst = std::max(worst, start[children[i]]);
      }
    }
    return seconds(worst);
  }

  // Rendezvous: RTS wave down (eager-style stagger, tiny frames), CTS back,
  // then chunks stream round-robin through each parent's serialized cursor
  // while relays forward cut-through.
  const std::uint32_t C = costs_.iccl_rndv_chunk_bytes;
  const std::uint32_t m = static_cast<std::uint32_t>(
      (payload_bytes + C - 1) / C);
  const sim::Time c_h = costs_.iccl_chunk_handle;
  const sim::Time rts_wire = wire(kFrameBytes + kEntryBytes + 4.0);
  const sim::Time cts_wire = wire(kFrameBytes);

  // H[r]: time rank r's RTS is processed (root: issue time 0).
  // P[r][j]: time chunk j is processed (ready to deliver/forward) at r.
  std::vector<sim::Time> H(static_cast<std::size_t>(n), 0);
  std::vector<std::vector<sim::Time>> P(static_cast<std::size_t>(n));
  P[0].assign(m, 0);  // the root holds every chunk at issue time
  sim::Time worst = 0;
  for (std::uint32_t r = 0; r < static_cast<std::uint32_t>(n); ++r) {
    const auto children = topo.children_of(r);
    if (children.empty()) continue;
    // RTS fan-out and the CTS collection gate.
    std::vector<sim::Time> last_arrival(children.size());
    sim::Time cts_done = 0;
    for (std::size_t i = 0; i < children.size(); ++i) {
      const sim::Time rts_arr =
          H[r] + static_cast<sim::Time>(i) * h + rts_wire;
      last_arrival[i] = rts_arr;
      H[children[i]] = rts_arr + h;
      cts_done = std::max(cts_done, H[children[i]] + cts_wire + h);
      if (m == 0) worst = std::max(worst, H[children[i]]);
    }
    if (m == 0) continue;
    for (auto c : children) P[c].assign(m, 0);
    // Serialized chunk cursor, round-robin across the children.
    sim::Time cursor = 0;
    for (std::uint32_t j = 0; j < m; ++j) {
      const double chunk_bytes =
          j + 1 == m ? S - static_cast<double>(j) * C
                     : static_cast<double>(C);
      const sim::Time ready = std::max(P[r][j], cts_done);
      const sim::Time chunk_wire =
          wire(kFrameBytes + kEntryBytes + chunk_bytes);
      for (std::size_t i = 0; i < children.size(); ++i) {
        const sim::Time depart = std::max(cursor, ready);
        sim::Time arr = depart + chunk_wire;
        if (arr <= last_arrival[i]) arr = last_arrival[i] + 1;  // FIFO
        last_arrival[i] = arr;
        P[children[i]][j] = arr + c_h;
        cursor = depart + c_h;
      }
    }
    for (auto c : children) worst = std::max(worst, P[c][m - 1]);
  }
  return seconds(worst);
}

std::optional<std::size_t> PerfModel::collective_crossover(
    const comm::TopologySpec& spec, int n, std::size_t max_payload) const {
  // Definition: the smallest payload above which rendezvous never loses
  // again in [1 KiB, max_payload]; see crossover_from_gap for the segment
  // probe geometry. bench_ablation_iccl measures the same definition on
  // the same probe geometry.
  return crossover_from_gap(
      costs_.iccl_rndv_chunk_bytes, max_payload, [&](std::size_t s) {
        return collective_bcast(CollectiveProtocol::Eager, spec, n, s) -
               collective_bcast(CollectiveProtocol::Rendezvous, spec, n, s);
      });
}

double PerfModel::collective_gather(CollectiveProtocol proto,
                                    const comm::TopologySpec& spec, int n,
                                    std::size_t payload_bytes) const {
  if (n <= 1) return 0.0;
  comm::TopologySpec resolved = spec;
  if (resolved.kind == comm::TopologyKind::KAry && resolved.arity == 0) {
    resolved.arity = static_cast<std::uint32_t>(costs_.rm_launch_fanout);
  }
  const comm::Topology topo(resolved, static_cast<std::uint32_t>(n));
  const sim::Time L = costs_.net_latency;
  const sim::Time h = costs_.iccl_msg_handle;
  const double bw = costs_.bandwidth_bytes_per_sec;
  auto wire = [&](double bytes) {
    return L + static_cast<sim::Time>(bytes / bw * 1e9);
  };
  const double S = static_cast<double>(payload_bytes);
  const auto nn = static_cast<std::uint32_t>(n);

  // Release wave: the root broadcasts an empty go frame (eager; 21 wire
  // bytes, handle-only quanta); rank r's contribution is issued the moment
  // its release frame is processed. A[0] = 0: the root issues the release
  // and contributes in the same event.
  std::vector<sim::Time> A(nn, 0);
  {
    const sim::Time frame_wire = wire(kFrameBytes + kEntryBytes);
    for (std::uint32_t r = 0; r < nn; ++r) {
      const auto children = topo.children_of(r);
      for (std::size_t i = 0; i < children.size(); ++i) {
        A[children[i]] = A[r] + static_cast<sim::Time>(i) * h + frame_wire + h;
      }
    }
  }
  // Subtree sizes (parent < child in every fabric family).
  std::vector<std::uint32_t> sz(nn, 1);
  for (std::uint32_t r = nn - 1; r >= 1; --r) {
    sz[*topo.parent_of(r)] += sz[r];
  }

  if (proto == CollectiveProtocol::Eager || payload_bytes == 0) {
    // Store-and-forward: each node waits for every child's whole-subtree
    // GatherUp, then forwards one combined frame; the receiver pays the
    // handle plus the bounce-buffer copy-out of the full frame payload.
    std::vector<sim::Time> U(nn, 0);
    for (std::uint32_t r = nn; r-- > 0;) {
      sim::Time t = A[r];
      for (std::uint32_t c : topo.children_of(r)) {
        const double entry_bytes =
            static_cast<double>(sz[c]) * (kEntryBytes + S);
        const sim::Time processed =
            U[c] + wire(kFrameBytes + entry_bytes) + h +
            scaled_per_kb(costs_.iccl_eager_copy_per_kb,
                          static_cast<double>(sz[c]) * S);
        t = std::max(t, processed);
      }
      U[r] = t;
    }
    return seconds(U[0]);
  }

  // Rendezvous: announce wave up (GatherRts, one 12-byte origin record per
  // subtree rank), per-child CTS clearances gated on the parent's own
  // clearance (the flow-control chain), then chunks stream through each
  // node's serialized cursor with cut-through relay.
  const std::uint32_t C = costs_.iccl_rndv_chunk_bytes;
  const sim::Time c_h = costs_.iccl_chunk_handle;
  const sim::Time cts_wire = wire(kFrameBytes);

  // R[r]: rank r's announce time; rts_arr[c]: c's RTS arrival at its parent.
  std::vector<sim::Time> R(nn, 0);
  std::vector<sim::Time> rts_arr(nn, 0);
  for (std::uint32_t r = nn; r-- > 0;) {
    sim::Time t = A[r];
    for (std::uint32_t c : topo.children_of(r)) {
      rts_arr[c] = R[c] + wire(kFrameBytes + 12.0 * sz[c]);
      t = std::max(t, rts_arr[c] + h);
    }
    R[r] = t;  // at the root: last announce processed (>= own contribute)
  }
  // G[c]: time child c's clearance (GatherCts) is processed at c. The root
  // clears each child the moment its RTS is processed; an interior node
  // clears its children (ascending rank, staggered handle quanta) only
  // after its own clearance arrives.
  std::vector<sim::Time> G(nn, 0);
  for (std::uint32_t r = 0; r < nn; ++r) {
    const auto children = topo.children_of(r);
    for (std::size_t i = 0; i < children.size(); ++i) {
      const sim::Time depart =
          r == 0 ? rts_arr[children[i]] + h
                 : G[r] + static_cast<sim::Time>(i) * h;
      G[children[i]] = depart + cts_wire + h;
    }
  }
  // Chunk pattern of one per-rank contribution.
  const auto m = static_cast<std::uint32_t>((payload_bytes + C - 1) / C);
  auto chunk_size = [&](std::uint32_t j) {
    return j + 1 == m ? S - static_cast<double>(j) * C
                      : static_cast<double>(C);
  };
  // sched[r]: rank r's upstream chunk departures (time, bytes), built
  // children-first so relays merge their children's processed chunks with
  // their own (enqueued all at once at G[r]) through the cursor.
  std::vector<std::vector<std::pair<sim::Time, double>>> sched(nn);
  for (std::uint32_t r = nn; r-- > 1;) {
    std::vector<std::pair<sim::Time, double>> ready;
    ready.reserve(m + 1);
    for (std::uint32_t j = 0; j < m; ++j) {
      ready.emplace_back(G[r], chunk_size(j));
    }
    for (std::uint32_t c : topo.children_of(r)) {
      sim::Time last_arrival = rts_arr[c];
      for (const auto& [dep, bytes] : sched[c]) {
        sim::Time arr = dep + wire(kFrameBytes + kEntryBytes + bytes);
        if (arr <= last_arrival) arr = last_arrival + 1;  // FIFO
        last_arrival = arr;
        ready.emplace_back(arr + c_h, bytes);
      }
    }
    std::stable_sort(ready.begin(), ready.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });
    auto& out = sched[r];
    out.reserve(ready.size());
    sim::Time cursor = 0;
    for (const auto& [t, bytes] : ready) {
      const sim::Time depart = std::max(cursor, t);
      out.emplace_back(depart, bytes);
      cursor = depart + c_h;
    }
  }
  // Root delivery: own contribution and every announce processed (R[0]),
  // plus the last chunk of every child stream processed.
  sim::Time done = R[0];
  for (std::uint32_t c : topo.children_of(0)) {
    sim::Time last_arrival = rts_arr[c];
    for (const auto& [dep, bytes] : sched[c]) {
      sim::Time arr = dep + wire(kFrameBytes + kEntryBytes + bytes);
      if (arr <= last_arrival) arr = last_arrival + 1;  // FIFO
      last_arrival = arr;
      done = std::max(done, arr + c_h);
    }
  }
  return seconds(done);
}

std::optional<std::size_t> PerfModel::collective_gather_crossover(
    const comm::TopologySpec& spec, int n, std::size_t max_payload) const {
  return crossover_from_gap(
      costs_.iccl_rndv_chunk_bytes, max_payload, [&](std::size_t s) {
        return collective_gather(CollectiveProtocol::Eager, spec, n, s) -
               collective_gather(CollectiveProtocol::Rendezvous, spec, n, s);
      });
}

double PerfModel::collective_scatter(CollectiveProtocol proto,
                                     const comm::TopologySpec& spec, int n,
                                     std::size_t payload_bytes) const {
  if (n <= 1) return 0.0;
  comm::TopologySpec resolved = spec;
  if (resolved.kind == comm::TopologyKind::KAry && resolved.arity == 0) {
    resolved.arity = static_cast<std::uint32_t>(costs_.rm_launch_fanout);
  }
  const comm::Topology topo(resolved, static_cast<std::uint32_t>(n));
  const sim::Time L = costs_.net_latency;
  const sim::Time h = costs_.iccl_msg_handle;
  const double bw = costs_.bandwidth_bytes_per_sec;
  auto wire = [&](double bytes) {
    return L + static_cast<sim::Time>(bytes / bw * 1e9);
  };
  const double S = static_cast<double>(payload_bytes);
  const auto nn = static_cast<std::uint32_t>(n);

  // Subtree sizes (parent < child in every fabric family).
  std::vector<std::uint32_t> sz(nn, 1);
  for (std::uint32_t r = nn - 1; r >= 1; --r) {
    sz[*topo.parent_of(r)] += sz[r];
  }

  if (proto == CollectiveProtocol::Eager) {
    // Exact replay of handle_scatter: start[r] is when rank r's handler
    // runs (its whole subtree frame processed); its own part is delivered
    // in that same event. Child i's frame departs after the serialized
    // quanta of the parts queued before it.
    std::vector<sim::Time> start(nn, 0);
    sim::Time worst = 0;
    for (std::uint32_t r = 0; r < nn; ++r) {
      const auto children = topo.children_of(r);
      sim::Time offset = 0;
      for (const std::uint32_t c : children) {
        const double part_data = static_cast<double>(sz[c]) * S;
        const double frame_bytes =
            kFrameBytes + static_cast<double>(sz[c]) * (kEntryBytes + S);
        start[c] = start[r] + offset + wire(frame_bytes) + h +
                   scaled_per_kb(costs_.iccl_eager_copy_per_kb, part_data);
        worst = std::max(worst, start[c]);
        offset += h + scaled_per_kb(costs_.iccl_eager_copy_per_kb, part_data);
      }
    }
    return seconds(worst);
  }

  // Hypothetical rendezvous scatter. Each link carries the child's whole
  // subtree stream, laid out subtree-major: the child's own entry first,
  // then each grandchild segment in children order (recursively). A relay
  // cut-through-forwards an outbound chunk the moment the inbound chunk
  // covering its byte range retires; the root holds everything at t=0.
  const std::uint32_t C = costs_.iccl_rndv_chunk_bytes;
  const sim::Time c_h = costs_.iccl_chunk_handle;
  const sim::Time rts_wire = wire(kFrameBytes + kEntryBytes + 4.0);
  const sim::Time cts_wire = wire(kFrameBytes);
  const double entry = kEntryBytes + S;
  auto stream_bytes = [&](std::uint32_t r) {
    return static_cast<double>(sz[r]) * entry;
  };
  auto chunks_of = [&](double bytes) {
    return static_cast<std::uint32_t>(
        (static_cast<std::size_t>(bytes) + C - 1) / C);
  };

  // H[r]: rank r's RTS processed; P[r][k]: inbound chunk k retired at r.
  // delivered[r]: r's own entry handed to its scatter handler (the chunk
  // covering stream bytes [0, entry) - the head of its inbound stream).
  std::vector<sim::Time> H(nn, 0);
  std::vector<std::vector<sim::Time>> P(nn);
  std::vector<sim::Time> delivered(nn, 0);
  sim::Time worst = 0;
  for (std::uint32_t r = 0; r < nn; ++r) {
    const auto children = topo.children_of(r);
    if (children.empty()) continue;
    // RTS fan-out and the CTS collection gate, as in the bcast replay.
    std::vector<sim::Time> last_arrival(children.size());
    sim::Time cts_done = 0;
    for (std::size_t i = 0; i < children.size(); ++i) {
      const sim::Time rts_arr =
          H[r] + static_cast<sim::Time>(i) * h + rts_wire;
      last_arrival[i] = rts_arr;
      H[children[i]] = rts_arr + h;
      cts_done = std::max(cts_done, H[children[i]] + cts_wire + h);
    }
    // Offset of child i's segment within r's own inbound stream (own entry
    // first, then prior siblings' segments). The root reads from the
    // caller's buffer: every byte is available at t=0.
    double seg_off = entry;
    std::vector<std::uint32_t> m_of(children.size());
    std::vector<double> off_of(children.size());
    std::uint32_t m_max = 0;
    for (std::size_t i = 0; i < children.size(); ++i) {
      off_of[i] = seg_off;
      m_of[i] = chunks_of(stream_bytes(children[i]));
      m_max = std::max(m_max, m_of[i]);
      seg_off += stream_bytes(children[i]);
    }
    for (std::size_t i = 0; i < children.size(); ++i) {
      P[children[i]].assign(m_of[i], 0);
    }
    // Serialized chunk cursor, round-robin across the children.
    sim::Time cursor = 0;
    for (std::uint32_t j = 0; j < m_max; ++j) {
      for (std::size_t i = 0; i < children.size(); ++i) {
        if (j >= m_of[i]) continue;
        const double B = stream_bytes(children[i]);
        const double chunk_bytes =
            j + 1 == m_of[i] ? B - static_cast<double>(j) * C
                             : static_cast<double>(C);
        // Cut-through gate: the inbound chunk covering the *last* byte of
        // this outbound range must have retired.
        sim::Time avail = 0;
        if (r != 0) {
          const double last_byte =
              off_of[i] + static_cast<double>(j) * C + chunk_bytes - 1.0;
          const auto k = static_cast<std::size_t>(last_byte /
                                                  static_cast<double>(C));
          avail = P[r][std::min(k, P[r].size() - 1)];
        }
        const sim::Time ready = std::max(avail, cts_done);
        const sim::Time chunk_wire =
            wire(kFrameBytes + kEntryBytes + chunk_bytes);
        const sim::Time depart = std::max(cursor, ready);
        sim::Time arr = depart + chunk_wire;
        if (arr <= last_arrival[i]) arr = last_arrival[i] + 1;  // FIFO
        last_arrival[i] = arr;
        P[children[i]][j] = arr + c_h;
        cursor = depart + c_h;
      }
    }
    for (std::size_t i = 0; i < children.size(); ++i) {
      const auto head = static_cast<std::size_t>((entry - 1.0) /
                                                 static_cast<double>(C));
      const std::uint32_t c = children[i];
      delivered[c] = P[c][std::min(head, P[c].size() - 1)];
      worst = std::max(worst, delivered[c]);
    }
  }
  return seconds(worst);
}

std::optional<std::size_t> PerfModel::collective_scatter_crossover(
    const comm::TopologySpec& spec, int n, std::size_t max_payload) const {
  return crossover_from_gap(
      costs_.iccl_rndv_chunk_bytes, max_payload, [&](std::size_t s) {
        return collective_scatter(CollectiveProtocol::Eager, spec, n, s) -
               collective_scatter(CollectiveProtocol::Rendezvous, spec, n, s);
      });
}

std::optional<int> PerfModel::crossover(
    comm::LaunchStrategyKind challenger, comm::LaunchStrategyKind incumbent,
    const comm::TopologySpec& fabric, int procs_per_node,
    int max_nodes) const {
  // Walk n upward and report the first n from which the challenger stays
  // cheaper. Launch-tree depth steps make the cost curves piecewise, so a
  // single sign change is not enough: require the lead to survive the next
  // depth step (doubling) before declaring the crossover.
  for (int n = 2; n <= max_nodes; ++n) {
    if (predicts_failure(incumbent, n) && !predicts_failure(challenger, n)) {
      return n;  // incumbent cannot even run here
    }
    if (predicts_failure(challenger, n)) continue;
    const double c = predict(challenger, fabric, n, procs_per_node).total();
    const double i = predict(incumbent, fabric, n, procs_per_node).total();
    if (c >= i) continue;
    bool holds = true;
    for (int probe = n + 1; probe <= std::min(max_nodes, 2 * n); ++probe) {
      if (predicts_failure(incumbent, probe)) break;
      const double cp =
          predict(challenger, fabric, probe, procs_per_node).total();
      const double ip =
          predict(incumbent, fabric, probe, procs_per_node).total();
      if (cp >= ip) {
        holds = false;
        break;
      }
    }
    if (holds) return n;
  }
  return std::nullopt;
}

}  // namespace lmon::core
