// auto_tune.hpp - model-driven session configuration (the ROADMAP's
// "self-tuning sessions": close the loop from PerfModel to the engine).
//
// PRs 4-7 built exact analytic solvers - predict()/predicts_failure() for
// the launch strategies, collective_crossover()/collective_gather_crossover()
// for the eager/rendezvous switch - with sub-percent residuals against the
// sim. This header is where those solvers become decisions: at session
// setup the engine calls auto_tune() with whatever knobs the SpawnConfig
// left unset, and the tuner sweeps the candidate space against the selected
// platform profile's CostModel.
//
// Precedence (per knob): explicit > profile > model.
//   * explicit  - the SpawnConfig named a strategy/topology/threshold;
//                 the tuner passes it through untouched.
//   * profile   - RndvSetting::PlatformDefault takes the named platform
//                 profile's calibrated iccl_rndv_threshold_bytes.
//   * model     - unset knobs are chosen by minimizing predict().total()
//                 (strategy x topology, skipping predicted failures) and by
//                 the collective crossover solvers (threshold).
//
// Ties in the sweep keep the *first* candidate, and the candidate order
// starts from the platform defaults (rm-bulk, k-ary at the RM fan-out), so
// auto-tuning never churns a session's shape without a predicted win.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "cluster/cost_model.hpp"
#include "comm/launch_strategy.hpp"
#include "comm/topology.hpp"
#include "common/bytes.hpp"

namespace lmon::core {

/// Session eager/rendezvous threshold setting. This replaces the bare
/// "0 means platform default" sentinel that made eager-always unreachable
/// (a session could pin rendezvous with threshold=1 but had no spelling for
/// "never switch").
struct RndvSetting {
  enum class Mode : std::uint8_t {
    Auto = 0,         ///< model-driven: collective_crossover on the tuned fabric
    PlatformDefault,  ///< the platform profile's iccl_rndv_threshold_bytes
    AlwaysEager,      ///< pin eager (threshold above any payload)
    AlwaysRndv,       ///< pin rendezvous (threshold 1)
    Bytes,            ///< explicit threshold in payload bytes
  };
  Mode mode = Mode::Auto;
  std::uint32_t bytes = 0;  ///< Mode::Bytes only

  /// "auto" | "platform-default" | "always-eager" | "always-rndv" | "<N>".
  [[nodiscard]] std::string to_string() const;
  static std::optional<RndvSetting> parse(std::string_view text);

  friend bool operator==(const RndvSetting& a, const RndvSetting& b) {
    return a.mode == b.mode && a.bytes == b.bytes;
  }
};

/// What the tuner decided for one session - the resolved knobs plus the
/// model evidence behind them, recorded to the trace/metrics plane and
/// reported back to the FE so tools (and the ablation bench) can audit the
/// decision.
struct TunedConfig {
  comm::LaunchStrategyKind strategy = comm::LaunchStrategyKind::RmBulk;
  /// Resolved fabric shape (arity never 0).
  comm::TopologySpec topology{comm::TopologyKind::KAry, 2};
  /// Resolved wire threshold (never 0; UINT32_MAX pins eager, 1 rendezvous).
  std::uint32_t rndv_threshold = 1;
  /// Which knobs the model picked (false = explicit/profile override).
  bool strategy_from_model = false;
  bool topology_from_model = false;
  bool rndv_from_model = false;
  /// Predicted launchAndSpawn total (seconds) for the chosen configuration.
  double predicted_total_s = 0;
  /// Solver evidence: smallest payload from which rendezvous stays ahead on
  /// the chosen fabric (0 = eager wins through the whole probe range).
  std::uint32_t bcast_crossover = 0;
  std::uint32_t gather_crossover = 0;
  /// Profile the tuner consulted ("" = the machine's own costs).
  std::string platform;
  /// Self-healing daemon trees enabled for the session (a session option,
  /// not a model decision; recorded so the FE/tools see the effective knob).
  bool heal = false;

  [[nodiscard]] Bytes encode() const;
  static std::optional<TunedConfig> decode(const Bytes& b);
};

/// The unset-vs-explicit knob state auto_tune() resolves.
struct AutoTuneRequest {
  std::optional<comm::LaunchStrategyKind> strategy;  ///< nullopt = model picks
  std::optional<comm::TopologySpec> topology;        ///< nullopt = model picks
  RndvSetting rndv;
  int n_nodes = 1;
  int tasks_per_node = 1;
  std::string platform;  ///< recorded into the TunedConfig (profile name)
};

/// Resolves every knob against `costs` (the selected platform profile).
/// Pure function of its arguments - the engine, the tests and the ablation
/// bench all call the same tuner, which is what makes the bench's
/// "auto matches the best hand-picked configuration" gate meaningful.
[[nodiscard]] TunedConfig auto_tune(const cluster::CostModel& costs,
                                    const AutoTuneRequest& req);

}  // namespace lmon::core
