#include "core/auto_tune.hpp"

#include <algorithm>
#include <charconv>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/perf_model.hpp"

namespace lmon::core {

namespace {

constexpr std::uint32_t kPinEager = std::numeric_limits<std::uint32_t>::max();
constexpr std::uint32_t kPinRndv = 1;

}  // namespace

std::string RndvSetting::to_string() const {
  switch (mode) {
    case Mode::Auto:
      return "auto";
    case Mode::PlatformDefault:
      return "platform-default";
    case Mode::AlwaysEager:
      return "always-eager";
    case Mode::AlwaysRndv:
      return "always-rndv";
    case Mode::Bytes:
      return std::to_string(bytes);
  }
  return "auto";
}

std::optional<RndvSetting> RndvSetting::parse(std::string_view text) {
  if (text == "auto") return RndvSetting{Mode::Auto, 0};
  if (text == "platform-default") return RndvSetting{Mode::PlatformDefault, 0};
  if (text == "always-eager") return RndvSetting{Mode::AlwaysEager, 0};
  if (text == "always-rndv") return RndvSetting{Mode::AlwaysRndv, 0};
  std::uint32_t v = 0;
  const auto* end = text.data() + text.size();
  const auto [p, ec] = std::from_chars(text.data(), end, v);
  if (ec != std::errc{} || p != end || text.empty()) return std::nullopt;
  // "0" would resurrect the old sentinel; map it to its actual meaning.
  if (v == 0) return RndvSetting{Mode::PlatformDefault, 0};
  return RndvSetting{Mode::Bytes, v};
}

Bytes TunedConfig::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(strategy));
  w.u8(static_cast<std::uint8_t>(topology.kind));
  w.u32(topology.arity);
  w.u32(rndv_threshold);
  w.boolean(strategy_from_model);
  w.boolean(topology_from_model);
  w.boolean(rndv_from_model);
  w.f64(predicted_total_s);
  w.u32(bcast_crossover);
  w.u32(gather_crossover);
  w.str(platform);
  w.boolean(heal);
  return std::move(w).take();
}

std::optional<TunedConfig> TunedConfig::decode(const Bytes& b) {
  ByteReader r(b);
  const auto strat = r.u8();
  const auto kind_raw = r.u8();
  const auto arity = r.u32();
  const auto rndv = r.u32();
  const auto sm = r.boolean();
  const auto tm = r.boolean();
  const auto rm = r.boolean();
  const auto total = r.f64();
  const auto bx = r.u32();
  const auto gx = r.u32();
  auto platform = r.str();
  const auto heal_f = r.boolean();
  if (!strat || !kind_raw || !arity || !rndv || !sm || !tm || !rm || !total ||
      !bx || !gx || !platform || !heal_f) {
    return std::nullopt;
  }
  if (*strat > static_cast<std::uint8_t>(comm::LaunchStrategyKind::TreeRsh)) {
    return std::nullopt;
  }
  const auto kind = comm::topology_kind_from_u8(*kind_raw);
  if (!kind) return std::nullopt;
  TunedConfig cfg;
  cfg.strategy = static_cast<comm::LaunchStrategyKind>(*strat);
  cfg.topology = {*kind, *arity};
  cfg.rndv_threshold = *rndv;
  cfg.strategy_from_model = *sm;
  cfg.topology_from_model = *tm;
  cfg.rndv_from_model = *rm;
  cfg.predicted_total_s = *total;
  cfg.bcast_crossover = *bx;
  cfg.gather_crossover = *gx;
  cfg.platform = std::move(*platform);
  cfg.heal = *heal_f;
  return cfg;
}

TunedConfig auto_tune(const cluster::CostModel& costs,
                      const AutoTuneRequest& req) {
  const int n = std::max(1, req.n_nodes);
  const int tpn = std::max(1, req.tasks_per_node);
  const auto rm_fanout = static_cast<std::uint32_t>(costs.rm_launch_fanout);
  const PerfModel model(costs, rm_fanout);

  // Candidate fabrics, platform default first so a tie keeps the shape a
  // hand-configured session would have gotten. An explicit topology (arity 0
  // resolved against the profile's fan-out, mirroring the FE API) collapses
  // the set to one.
  std::vector<comm::TopologySpec> topologies;
  if (req.topology) {
    comm::TopologySpec t = *req.topology;
    if (t.arity == 0) t.arity = rm_fanout;
    topologies.push_back(t);
  } else {
    topologies.push_back({comm::TopologyKind::KAry, rm_fanout});
    for (std::uint32_t k : {2u, 4u, 8u, 16u, 32u}) {
      const comm::TopologySpec cand{comm::TopologyKind::KAry, k};
      if (std::find(topologies.begin(), topologies.end(), cand) ==
          topologies.end()) {
        topologies.push_back(cand);
      }
    }
    topologies.push_back({comm::TopologyKind::Binomial, rm_fanout});
    topologies.push_back({comm::TopologyKind::Flat, rm_fanout});
  }

  std::vector<comm::LaunchStrategyKind> strategies;
  if (req.strategy) {
    strategies.push_back(*req.strategy);
  } else {
    // Default-first ordering again: rm-bulk is the incumbent everywhere the
    // model ties.
    strategies = {comm::LaunchStrategyKind::RmBulk,
                  comm::LaunchStrategyKind::TreeRsh,
                  comm::LaunchStrategyKind::SerialRsh};
  }

  TunedConfig cfg;
  cfg.platform = req.platform;
  cfg.strategy_from_model = !req.strategy;
  cfg.topology_from_model = !req.topology;

  bool found = false;
  double best = 0;
  for (const auto strat : strategies) {
    // A predicted-failure strategy is never selected by the model; an
    // explicit request for one is honored (the user overrode the model).
    if (!req.strategy && model.predicts_failure(strat, n)) continue;
    for (const auto& topo : topologies) {
      const double total = model.predict(strat, topo, n, tpn).total();
      if (!found || total < best) {
        found = true;
        best = total;
        cfg.strategy = strat;
        cfg.topology = topo;
      }
    }
  }
  if (!found) {
    // Every candidate predicts failure (tiny fork limits on a no-remote-
    // access machine with rm-bulk excluded explicitly can get here only via
    // contradictory explicit knobs); fall back to the platform default shape
    // rather than inventing one.
    cfg.strategy = req.strategy.value_or(comm::LaunchStrategyKind::RmBulk);
    cfg.topology = topologies.front();
    best = model.predict(cfg.strategy, cfg.topology, n, tpn).total();
  }

  // Solver evidence for the decision record, computed on the *chosen*
  // fabric: the handshake RPDTAB broadcast and the tool gathers run there.
  // The probe range is capped well above every crossover the calibrated
  // platforms exhibit - the solvers replay the fabric per candidate payload
  // (O(n x chunks)) and probe two payloads per chunk segment, so both the
  // byte range and the segment count must be bounded for session setup to
  // stay cheap (tests shrink iccl_rndv_chunk_bytes to a few bytes to force
  // chunk streaming; an uncapped probe would grind for minutes there).
  constexpr std::size_t kProbeMaxBytes = 4u << 20;
  constexpr std::size_t kProbeMaxSegments = 256;
  const std::size_t probe_max = std::min<std::size_t>(
      kProbeMaxBytes,
      std::max<std::size_t>(1, costs.iccl_rndv_chunk_bytes) *
          kProbeMaxSegments);
  cfg.bcast_crossover = static_cast<std::uint32_t>(
      model.collective_crossover(cfg.topology, n, probe_max).value_or(0));
  cfg.gather_crossover = static_cast<std::uint32_t>(
      model.collective_gather_crossover(cfg.topology, n, probe_max)
          .value_or(0));

  switch (req.rndv.mode) {
    case RndvSetting::Mode::Bytes:
      cfg.rndv_threshold = req.rndv.bytes != 0 ? req.rndv.bytes
                                               : costs.iccl_rndv_threshold_bytes;
      break;
    case RndvSetting::Mode::AlwaysEager:
      cfg.rndv_threshold = kPinEager;
      break;
    case RndvSetting::Mode::AlwaysRndv:
      cfg.rndv_threshold = kPinRndv;
      break;
    case RndvSetting::Mode::PlatformDefault:
      cfg.rndv_threshold = costs.iccl_rndv_threshold_bytes;
      break;
    case RndvSetting::Mode::Auto:
      cfg.rndv_from_model = true;
      // Crossover solver: smallest payload from which rendezvous stays
      // ahead. No crossover in the probe range means eager wins at every
      // payload the fabric will see - pin eager.
      cfg.rndv_threshold =
          cfg.bcast_crossover != 0 ? cfg.bcast_crossover : kPinEager;
      break;
  }
  if (cfg.rndv_threshold == 0) cfg.rndv_threshold = kPinRndv;

  cfg.predicted_total_s =
      model.predict(cfg.strategy, cfg.topology, n, tpn, cfg.rndv_threshold)
          .total();
  return cfg;
}

}  // namespace lmon::core
