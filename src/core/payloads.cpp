#include "core/payloads.hpp"

namespace lmon::core::payload {

Bytes Hello::encode() const {
  ByteWriter w;
  w.str(session);
  w.u32(rank);
  w.i64(pid);
  w.str(host);
  return std::move(w).take();
}

std::optional<Hello> Hello::decode(const Bytes& b) {
  ByteReader r(b);
  Hello out;
  auto session = r.str();
  auto rank = r.u32();
  auto pid = r.i64();
  auto host = r.str();
  if (!session || !rank || !pid || !host) return std::nullopt;
  out.session = std::move(*session);
  out.rank = *rank;
  out.pid = *pid;
  out.host = std::move(*host);
  return out;
}

Bytes DaemonsSpawned::encode() const {
  ByteWriter w;
  w.boolean(ok);
  w.str(error);
  w.blob(daemon_table);
  w.blob(tuned);
  return std::move(w).take();
}

std::optional<DaemonsSpawned> DaemonsSpawned::decode(const Bytes& b) {
  ByteReader r(b);
  DaemonsSpawned out;
  auto ok_f = r.boolean();
  auto err = r.str();
  auto table = r.blob();
  if (!ok_f || !err || !table) return std::nullopt;
  out.ok = *ok_f;
  out.error = std::move(*err);
  out.daemon_table = std::move(*table);
  // Tuning record: absent on pre-tuner senders (same-repo MW paths).
  if (auto tuned = r.blob()) out.tuned = std::move(*tuned);
  return out;
}

Bytes EngineError::encode() const {
  ByteWriter w;
  w.str(stage);
  w.str(error);
  return std::move(w).take();
}

std::optional<EngineError> EngineError::decode(const Bytes& b) {
  ByteReader r(b);
  auto stage = r.str();
  auto error = r.str();
  if (!stage || !error) return std::nullopt;
  return EngineError{std::move(*stage), std::move(*error)};
}

Bytes HandshakeInit::encode() const {
  ByteWriter w;
  w.blob(rpdtab);
  return std::move(w).take();
}

std::optional<HandshakeInit> HandshakeInit::decode(const Bytes& b) {
  ByteReader r(b);
  auto table = r.blob();
  if (!table) return std::nullopt;
  return HandshakeInit{std::move(*table)};
}

Bytes Ready::encode() const {
  ByteWriter w;
  w.boolean(ok);
  w.str(error);
  w.u32(ndaemons);
  return std::move(w).take();
}

std::optional<Ready> Ready::decode(const Bytes& b) {
  ByteReader r(b);
  auto ok_f = r.boolean();
  auto err = r.str();
  auto n = r.u32();
  if (!ok_f || !err || !n) return std::nullopt;
  return Ready{*ok_f, std::move(*err), *n};
}

Bytes LaunchMwReq::encode() const {
  ByteWriter w;
  w.u32(nnodes);
  w.str(daemon_exe);
  w.u32(static_cast<std::uint32_t>(daemon_args.size()));
  for (const auto& a : daemon_args) w.str(a);
  w.u16(fabric_port);
  w.u32(fabric_fanout);
  w.u8(static_cast<std::uint8_t>(fabric_topo));
  return std::move(w).take();
}

std::optional<LaunchMwReq> LaunchMwReq::decode(const Bytes& b) {
  ByteReader r(b);
  LaunchMwReq out;
  auto n = r.u32();
  auto exe = r.str();
  auto nargs = r.u32();
  if (!n || !exe || !nargs) return std::nullopt;
  out.nnodes = *n;
  out.daemon_exe = std::move(*exe);
  for (std::uint32_t i = 0; i < *nargs; ++i) {
    auto a = r.str();
    if (!a) return std::nullopt;
    out.daemon_args.push_back(std::move(*a));
  }
  auto port = r.u16();
  auto fanout = r.u32();
  auto topo = r.u8();
  if (!port || !fanout || !topo) return std::nullopt;
  const auto kind = comm::topology_kind_from_u8(*topo);
  if (!kind) return std::nullopt;
  out.fabric_port = *port;
  out.fabric_fanout = *fanout;
  out.fabric_topo = *kind;
  return out;
}

Bytes VirtualAttach::encode() const {
  ByteWriter w;
  w.u32(vsid);
  return std::move(w).take();
}

std::optional<VirtualAttach> VirtualAttach::decode(const Bytes& b) {
  ByteReader r(b);
  auto vsid = r.u32();
  if (!vsid) return std::nullopt;
  return VirtualAttach{*vsid};
}

Bytes VirtualReady::encode() const {
  ByteWriter w;
  w.u32(vsid);
  w.boolean(ok);
  w.str(error);
  w.u32(ndaemons);
  return std::move(w).take();
}

std::optional<VirtualReady> VirtualReady::decode(const Bytes& b) {
  ByteReader r(b);
  auto vsid = r.u32();
  auto ok_f = r.boolean();
  auto err = r.str();
  auto n = r.u32();
  if (!vsid || !ok_f || !err || !n) return std::nullopt;
  return VirtualReady{*vsid, *ok_f, std::move(*err), *n};
}

Bytes VirtualDetach::encode() const {
  ByteWriter w;
  w.u32(vsid);
  return std::move(w).take();
}

std::optional<VirtualDetach> VirtualDetach::decode(const Bytes& b) {
  ByteReader r(b);
  auto vsid = r.u32();
  if (!vsid) return std::nullopt;
  return VirtualDetach{*vsid};
}

Bytes StatusEvent::encode() const {
  ByteWriter w;
  w.u8(kind);
  w.i32(code);
  return std::move(w).take();
}

std::optional<StatusEvent> StatusEvent::decode(const Bytes& b) {
  ByteReader r(b);
  auto kind = r.u8();
  auto code = r.i32();
  if (!kind || !code) return std::nullopt;
  StatusEvent out;
  out.kind = *kind;
  out.code = *code;
  return out;
}

}  // namespace lmon::core::payload
