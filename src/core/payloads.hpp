// payloads.hpp - LaunchMON-payload schemas carried inside LMONP messages.
//
// These occupy the "LaunchMON data" section of an LMONP frame; tool data
// rides in the separate user section (piggybacking, paper §3.2/§3.4).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "cluster/types.hpp"
#include "comm/topology.hpp"
#include "common/bytes.hpp"

namespace lmon::core::payload {

/// Engine or daemon-master identification on back-connect.
struct Hello {
  std::string session;
  std::uint32_t rank = 0;
  cluster::Pid pid = cluster::kInvalidPid;
  std::string host;

  [[nodiscard]] Bytes encode() const;
  static std::optional<Hello> decode(const Bytes& b);
};

/// engine -> FE after co-spawn: the daemon table (a packed RPDTAB of
/// daemons) or the failure reason.
struct DaemonsSpawned {
  bool ok = false;
  std::string error;
  Bytes daemon_table;  ///< packed Rpdtab of the spawned daemons
  /// Encoded core::TunedConfig the engine's auto-tuner resolved for this
  /// session (empty when the spawn path never tuned, e.g. MW launches).
  Bytes tuned;

  [[nodiscard]] Bytes encode() const;
  static std::optional<DaemonsSpawned> decode(const Bytes& b);
};

/// engine -> FE on any failed stage.
struct EngineError {
  std::string stage;
  std::string error;

  [[nodiscard]] Bytes encode() const;
  static std::optional<EngineError> decode(const Bytes& b);
};

/// FE -> daemon master: everything daemons need to initialize. The user
/// payload of the same LMONP frame carries the piggybacked tool data.
struct HandshakeInit {
  Bytes rpdtab;  ///< packed job RPDTAB

  [[nodiscard]] Bytes encode() const;
  static std::optional<HandshakeInit> decode(const Bytes& b);
};

/// daemon master -> FE: all daemons initialized.
struct Ready {
  bool ok = false;
  std::string error;
  std::uint32_t ndaemons = 0;

  [[nodiscard]] Bytes encode() const;
  static std::optional<Ready> decode(const Bytes& b);
};

/// FE -> engine: launch middleware daemons onto a fresh allocation.
struct LaunchMwReq {
  std::uint32_t nnodes = 0;
  std::string daemon_exe;
  std::vector<std::string> daemon_args;
  cluster::Port fabric_port = 0;
  std::uint32_t fabric_fanout = 2;
  comm::TopologyKind fabric_topo = comm::TopologyKind::KAry;

  [[nodiscard]] Bytes encode() const;
  static std::optional<LaunchMwReq> decode(const Bytes& b);
};

/// FE -> BE master: open a virtual session on an already-running tree.
struct VirtualAttach {
  std::uint32_t vsid = 0;  ///< virtual session id (nonzero)

  [[nodiscard]] Bytes encode() const;
  static std::optional<VirtualAttach> decode(const Bytes& b);
};

/// BE master -> FE: outcome of a VirtualAttach (admission + tree binding).
struct VirtualReady {
  std::uint32_t vsid = 0;
  bool ok = false;
  std::string error;
  std::uint32_t ndaemons = 0;

  [[nodiscard]] Bytes encode() const;
  static std::optional<VirtualReady> decode(const Bytes& b);
};

/// FE -> BE master: close a virtual session (tree stays up).
struct VirtualDetach {
  std::uint32_t vsid = 0;

  [[nodiscard]] Bytes encode() const;
  static std::optional<VirtualDetach> decode(const Bytes& b);
};

/// engine -> FE: job status transition (exit/abort), for tool awareness.
struct StatusEvent {
  enum Kind : std::uint8_t { JobExited = 0, JobAborted = 1 };
  std::uint8_t kind = JobExited;
  std::int32_t code = 0;

  [[nodiscard]] Bytes encode() const;
  static std::optional<StatusEvent> decode(const Bytes& b);
};

}  // namespace lmon::core::payload
